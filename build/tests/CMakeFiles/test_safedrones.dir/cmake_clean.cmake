file(REMOVE_RECURSE
  "CMakeFiles/test_safedrones.dir/test_safedrones.cpp.o"
  "CMakeFiles/test_safedrones.dir/test_safedrones.cpp.o.d"
  "test_safedrones"
  "test_safedrones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_safedrones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
