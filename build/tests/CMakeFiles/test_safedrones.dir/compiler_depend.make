# Empty compiler generated dependencies file for test_safedrones.
# This may be replaced when dependencies are built.
