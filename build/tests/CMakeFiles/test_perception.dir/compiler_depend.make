# Empty compiler generated dependencies file for test_perception.
# This may be replaced when dependencies are built.
