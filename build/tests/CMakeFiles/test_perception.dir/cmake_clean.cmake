file(REMOVE_RECURSE
  "CMakeFiles/test_perception.dir/test_perception.cpp.o"
  "CMakeFiles/test_perception.dir/test_perception.cpp.o.d"
  "test_perception"
  "test_perception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
