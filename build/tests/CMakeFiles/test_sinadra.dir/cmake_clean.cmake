file(REMOVE_RECURSE
  "CMakeFiles/test_sinadra.dir/test_sinadra.cpp.o"
  "CMakeFiles/test_sinadra.dir/test_sinadra.cpp.o.d"
  "test_sinadra"
  "test_sinadra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sinadra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
