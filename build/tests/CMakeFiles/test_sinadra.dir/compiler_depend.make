# Empty compiler generated dependencies file for test_sinadra.
# This may be replaced when dependencies are built.
