file(REMOVE_RECURSE
  "CMakeFiles/test_sar.dir/test_sar.cpp.o"
  "CMakeFiles/test_sar.dir/test_sar.cpp.o.d"
  "test_sar"
  "test_sar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
