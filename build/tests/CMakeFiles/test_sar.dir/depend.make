# Empty dependencies file for test_sar.
# This may be replaced when dependencies are built.
