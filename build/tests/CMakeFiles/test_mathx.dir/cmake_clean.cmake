file(REMOVE_RECURSE
  "CMakeFiles/test_mathx.dir/test_mathx.cpp.o"
  "CMakeFiles/test_mathx.dir/test_mathx.cpp.o.d"
  "test_mathx"
  "test_mathx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mathx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
