file(REMOVE_RECURSE
  "CMakeFiles/test_security.dir/test_security.cpp.o"
  "CMakeFiles/test_security.dir/test_security.cpp.o.d"
  "test_security"
  "test_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
