# Empty dependencies file for test_fta.
# This may be replaced when dependencies are built.
