file(REMOVE_RECURSE
  "CMakeFiles/test_fta.dir/test_fta.cpp.o"
  "CMakeFiles/test_fta.dir/test_fta.cpp.o.d"
  "test_fta"
  "test_fta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
