file(REMOVE_RECURSE
  "CMakeFiles/test_eddi.dir/test_eddi.cpp.o"
  "CMakeFiles/test_eddi.dir/test_eddi.cpp.o.d"
  "test_eddi"
  "test_eddi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eddi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
