# Empty compiler generated dependencies file for test_eddi.
# This may be replaced when dependencies are built.
