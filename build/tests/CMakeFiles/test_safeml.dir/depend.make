# Empty dependencies file for test_safeml.
# This may be replaced when dependencies are built.
