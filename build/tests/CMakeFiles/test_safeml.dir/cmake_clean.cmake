file(REMOVE_RECURSE
  "CMakeFiles/test_safeml.dir/test_safeml.cpp.o"
  "CMakeFiles/test_safeml.dir/test_safeml.cpp.o.d"
  "test_safeml"
  "test_safeml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_safeml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
