file(REMOVE_RECURSE
  "CMakeFiles/test_conserts.dir/test_conserts.cpp.o"
  "CMakeFiles/test_conserts.dir/test_conserts.cpp.o.d"
  "test_conserts"
  "test_conserts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conserts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
