# Empty dependencies file for test_conserts.
# This may be replaced when dependencies are built.
