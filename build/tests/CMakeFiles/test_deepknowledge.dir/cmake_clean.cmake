file(REMOVE_RECURSE
  "CMakeFiles/test_deepknowledge.dir/test_deepknowledge.cpp.o"
  "CMakeFiles/test_deepknowledge.dir/test_deepknowledge.cpp.o.d"
  "test_deepknowledge"
  "test_deepknowledge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deepknowledge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
