# Empty dependencies file for test_deepknowledge.
# This may be replaced when dependencies are built.
