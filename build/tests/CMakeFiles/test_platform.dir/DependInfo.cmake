
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_platform.cpp" "tests/CMakeFiles/test_platform.dir/test_platform.cpp.o" "gcc" "tests/CMakeFiles/test_platform.dir/test_platform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sesame_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_eddi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_conserts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_safedrones.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_fta.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_safeml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_sinadra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_bayes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_sar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_perception.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_deepknowledge.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_localization.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_security.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_mathx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_mw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
