# Empty compiler generated dependencies file for test_mw.
# This may be replaced when dependencies are built.
