file(REMOVE_RECURSE
  "CMakeFiles/test_mw.dir/test_mw.cpp.o"
  "CMakeFiles/test_mw.dir/test_mw.cpp.o.d"
  "test_mw"
  "test_mw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
