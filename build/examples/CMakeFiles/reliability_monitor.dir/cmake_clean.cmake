file(REMOVE_RECURSE
  "CMakeFiles/reliability_monitor.dir/reliability_monitor.cpp.o"
  "CMakeFiles/reliability_monitor.dir/reliability_monitor.cpp.o.d"
  "reliability_monitor"
  "reliability_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
