# Empty dependencies file for reliability_monitor.
# This may be replaced when dependencies are built.
