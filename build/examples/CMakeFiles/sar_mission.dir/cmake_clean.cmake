file(REMOVE_RECURSE
  "CMakeFiles/sar_mission.dir/sar_mission.cpp.o"
  "CMakeFiles/sar_mission.dir/sar_mission.cpp.o.d"
  "sar_mission"
  "sar_mission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sar_mission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
