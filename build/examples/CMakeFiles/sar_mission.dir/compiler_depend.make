# Empty compiler generated dependencies file for sar_mission.
# This may be replaced when dependencies are built.
