# Empty dependencies file for spoofing_response.
# This may be replaced when dependencies are built.
