file(REMOVE_RECURSE
  "CMakeFiles/spoofing_response.dir/spoofing_response.cpp.o"
  "CMakeFiles/spoofing_response.dir/spoofing_response.cpp.o.d"
  "spoofing_response"
  "spoofing_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spoofing_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
