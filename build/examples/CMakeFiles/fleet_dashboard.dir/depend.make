# Empty dependencies file for fleet_dashboard.
# This may be replaced when dependencies are built.
