file(REMOVE_RECURSE
  "CMakeFiles/fleet_dashboard.dir/fleet_dashboard.cpp.o"
  "CMakeFiles/fleet_dashboard.dir/fleet_dashboard.cpp.o.d"
  "fleet_dashboard"
  "fleet_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
