# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sar_mission "/root/repo/build/examples/sar_mission")
set_tests_properties(example_sar_mission PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spoofing_response "/root/repo/build/examples/spoofing_response")
set_tests_properties(example_spoofing_response PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_reliability_monitor "/root/repo/build/examples/reliability_monitor")
set_tests_properties(example_reliability_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fleet_dashboard "/root/repo/build/examples/fleet_dashboard")
set_tests_properties(example_fleet_dashboard PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scenario_cli "/root/repo/build/examples/scenario_cli")
set_tests_properties(example_scenario_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
