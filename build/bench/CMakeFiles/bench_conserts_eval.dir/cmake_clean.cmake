file(REMOVE_RECURSE
  "CMakeFiles/bench_conserts_eval.dir/bench_conserts_eval.cpp.o"
  "CMakeFiles/bench_conserts_eval.dir/bench_conserts_eval.cpp.o.d"
  "bench_conserts_eval"
  "bench_conserts_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conserts_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
