# Empty compiler generated dependencies file for bench_conserts_eval.
# This may be replaced when dependencies are built.
