file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_spoofing.dir/bench_fig6_spoofing.cpp.o"
  "CMakeFiles/bench_fig6_spoofing.dir/bench_fig6_spoofing.cpp.o.d"
  "bench_fig6_spoofing"
  "bench_fig6_spoofing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_spoofing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
