# Empty dependencies file for bench_ablation_cl_accuracy.
# This may be replaced when dependencies are built.
