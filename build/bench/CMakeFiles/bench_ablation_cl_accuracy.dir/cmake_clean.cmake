file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cl_accuracy.dir/bench_ablation_cl_accuracy.cpp.o"
  "CMakeFiles/bench_ablation_cl_accuracy.dir/bench_ablation_cl_accuracy.cpp.o.d"
  "bench_ablation_cl_accuracy"
  "bench_ablation_cl_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cl_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
