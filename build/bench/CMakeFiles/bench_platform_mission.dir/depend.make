# Empty dependencies file for bench_platform_mission.
# This may be replaced when dependencies are built.
