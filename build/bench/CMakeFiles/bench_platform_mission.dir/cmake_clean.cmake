file(REMOVE_RECURSE
  "CMakeFiles/bench_platform_mission.dir/bench_platform_mission.cpp.o"
  "CMakeFiles/bench_platform_mission.dir/bench_platform_mission.cpp.o.d"
  "bench_platform_mission"
  "bench_platform_mission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_platform_mission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
