file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_safeml_measures.dir/bench_ablation_safeml_measures.cpp.o"
  "CMakeFiles/bench_ablation_safeml_measures.dir/bench_ablation_safeml_measures.cpp.o.d"
  "bench_ablation_safeml_measures"
  "bench_ablation_safeml_measures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_safeml_measures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
