# Empty compiler generated dependencies file for bench_sar_accuracy.
# This may be replaced when dependencies are built.
