file(REMOVE_RECURSE
  "CMakeFiles/bench_sar_accuracy.dir/bench_sar_accuracy.cpp.o"
  "CMakeFiles/bench_sar_accuracy.dir/bench_sar_accuracy.cpp.o.d"
  "bench_sar_accuracy"
  "bench_sar_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sar_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
