# Empty compiler generated dependencies file for bench_fig5_battery_failure.
# This may be replaced when dependencies are built.
