file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_battery_failure.dir/bench_fig5_battery_failure.cpp.o"
  "CMakeFiles/bench_fig5_battery_failure.dir/bench_fig5_battery_failure.cpp.o.d"
  "bench_fig5_battery_failure"
  "bench_fig5_battery_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_battery_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
