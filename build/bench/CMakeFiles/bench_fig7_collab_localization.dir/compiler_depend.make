# Empty compiler generated dependencies file for bench_fig7_collab_localization.
# This may be replaced when dependencies are built.
