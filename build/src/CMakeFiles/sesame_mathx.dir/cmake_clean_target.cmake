file(REMOVE_RECURSE
  "libsesame_mathx.a"
)
