# Empty dependencies file for sesame_mathx.
# This may be replaced when dependencies are built.
