file(REMOVE_RECURSE
  "CMakeFiles/sesame_mathx.dir/mathx/matrix.cpp.o"
  "CMakeFiles/sesame_mathx.dir/mathx/matrix.cpp.o.d"
  "CMakeFiles/sesame_mathx.dir/mathx/rng.cpp.o"
  "CMakeFiles/sesame_mathx.dir/mathx/rng.cpp.o.d"
  "CMakeFiles/sesame_mathx.dir/mathx/stats.cpp.o"
  "CMakeFiles/sesame_mathx.dir/mathx/stats.cpp.o.d"
  "libsesame_mathx.a"
  "libsesame_mathx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sesame_mathx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
