# Empty compiler generated dependencies file for sesame_mw.
# This may be replaced when dependencies are built.
