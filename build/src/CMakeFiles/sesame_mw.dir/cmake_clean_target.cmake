file(REMOVE_RECURSE
  "libsesame_mw.a"
)
