file(REMOVE_RECURSE
  "CMakeFiles/sesame_mw.dir/mw/bus.cpp.o"
  "CMakeFiles/sesame_mw.dir/mw/bus.cpp.o.d"
  "CMakeFiles/sesame_mw.dir/mw/node.cpp.o"
  "CMakeFiles/sesame_mw.dir/mw/node.cpp.o.d"
  "libsesame_mw.a"
  "libsesame_mw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sesame_mw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
