
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mw/bus.cpp" "src/CMakeFiles/sesame_mw.dir/mw/bus.cpp.o" "gcc" "src/CMakeFiles/sesame_mw.dir/mw/bus.cpp.o.d"
  "/root/repo/src/mw/node.cpp" "src/CMakeFiles/sesame_mw.dir/mw/node.cpp.o" "gcc" "src/CMakeFiles/sesame_mw.dir/mw/node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
