file(REMOVE_RECURSE
  "CMakeFiles/sesame_safeml.dir/safeml/calibration.cpp.o"
  "CMakeFiles/sesame_safeml.dir/safeml/calibration.cpp.o.d"
  "CMakeFiles/sesame_safeml.dir/safeml/distances.cpp.o"
  "CMakeFiles/sesame_safeml.dir/safeml/distances.cpp.o.d"
  "CMakeFiles/sesame_safeml.dir/safeml/drift.cpp.o"
  "CMakeFiles/sesame_safeml.dir/safeml/drift.cpp.o.d"
  "CMakeFiles/sesame_safeml.dir/safeml/monitor.cpp.o"
  "CMakeFiles/sesame_safeml.dir/safeml/monitor.cpp.o.d"
  "libsesame_safeml.a"
  "libsesame_safeml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sesame_safeml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
