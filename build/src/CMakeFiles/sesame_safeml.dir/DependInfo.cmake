
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/safeml/calibration.cpp" "src/CMakeFiles/sesame_safeml.dir/safeml/calibration.cpp.o" "gcc" "src/CMakeFiles/sesame_safeml.dir/safeml/calibration.cpp.o.d"
  "/root/repo/src/safeml/distances.cpp" "src/CMakeFiles/sesame_safeml.dir/safeml/distances.cpp.o" "gcc" "src/CMakeFiles/sesame_safeml.dir/safeml/distances.cpp.o.d"
  "/root/repo/src/safeml/drift.cpp" "src/CMakeFiles/sesame_safeml.dir/safeml/drift.cpp.o" "gcc" "src/CMakeFiles/sesame_safeml.dir/safeml/drift.cpp.o.d"
  "/root/repo/src/safeml/monitor.cpp" "src/CMakeFiles/sesame_safeml.dir/safeml/monitor.cpp.o" "gcc" "src/CMakeFiles/sesame_safeml.dir/safeml/monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sesame_mathx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
