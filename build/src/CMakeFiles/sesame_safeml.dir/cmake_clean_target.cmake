file(REMOVE_RECURSE
  "libsesame_safeml.a"
)
