# Empty dependencies file for sesame_safeml.
# This may be replaced when dependencies are built.
