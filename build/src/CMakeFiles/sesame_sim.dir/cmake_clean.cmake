file(REMOVE_RECURSE
  "CMakeFiles/sesame_sim.dir/sim/battery.cpp.o"
  "CMakeFiles/sesame_sim.dir/sim/battery.cpp.o.d"
  "CMakeFiles/sesame_sim.dir/sim/camera.cpp.o"
  "CMakeFiles/sesame_sim.dir/sim/camera.cpp.o.d"
  "CMakeFiles/sesame_sim.dir/sim/comm_link.cpp.o"
  "CMakeFiles/sesame_sim.dir/sim/comm_link.cpp.o.d"
  "CMakeFiles/sesame_sim.dir/sim/gps.cpp.o"
  "CMakeFiles/sesame_sim.dir/sim/gps.cpp.o.d"
  "CMakeFiles/sesame_sim.dir/sim/uav.cpp.o"
  "CMakeFiles/sesame_sim.dir/sim/uav.cpp.o.d"
  "CMakeFiles/sesame_sim.dir/sim/world.cpp.o"
  "CMakeFiles/sesame_sim.dir/sim/world.cpp.o.d"
  "libsesame_sim.a"
  "libsesame_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sesame_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
