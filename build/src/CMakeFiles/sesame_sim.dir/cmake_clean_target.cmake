file(REMOVE_RECURSE
  "libsesame_sim.a"
)
