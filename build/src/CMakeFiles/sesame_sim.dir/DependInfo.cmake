
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/battery.cpp" "src/CMakeFiles/sesame_sim.dir/sim/battery.cpp.o" "gcc" "src/CMakeFiles/sesame_sim.dir/sim/battery.cpp.o.d"
  "/root/repo/src/sim/camera.cpp" "src/CMakeFiles/sesame_sim.dir/sim/camera.cpp.o" "gcc" "src/CMakeFiles/sesame_sim.dir/sim/camera.cpp.o.d"
  "/root/repo/src/sim/comm_link.cpp" "src/CMakeFiles/sesame_sim.dir/sim/comm_link.cpp.o" "gcc" "src/CMakeFiles/sesame_sim.dir/sim/comm_link.cpp.o.d"
  "/root/repo/src/sim/gps.cpp" "src/CMakeFiles/sesame_sim.dir/sim/gps.cpp.o" "gcc" "src/CMakeFiles/sesame_sim.dir/sim/gps.cpp.o.d"
  "/root/repo/src/sim/uav.cpp" "src/CMakeFiles/sesame_sim.dir/sim/uav.cpp.o" "gcc" "src/CMakeFiles/sesame_sim.dir/sim/uav.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/CMakeFiles/sesame_sim.dir/sim/world.cpp.o" "gcc" "src/CMakeFiles/sesame_sim.dir/sim/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sesame_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_mw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_mathx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
