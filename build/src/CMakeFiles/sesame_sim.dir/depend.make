# Empty dependencies file for sesame_sim.
# This may be replaced when dependencies are built.
