file(REMOVE_RECURSE
  "libsesame_conserts.a"
)
