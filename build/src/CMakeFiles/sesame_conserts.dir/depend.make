# Empty dependencies file for sesame_conserts.
# This may be replaced when dependencies are built.
