file(REMOVE_RECURSE
  "CMakeFiles/sesame_conserts.dir/conserts/assurance_trace.cpp.o"
  "CMakeFiles/sesame_conserts.dir/conserts/assurance_trace.cpp.o.d"
  "CMakeFiles/sesame_conserts.dir/conserts/consert.cpp.o"
  "CMakeFiles/sesame_conserts.dir/conserts/consert.cpp.o.d"
  "CMakeFiles/sesame_conserts.dir/conserts/uav_network.cpp.o"
  "CMakeFiles/sesame_conserts.dir/conserts/uav_network.cpp.o.d"
  "libsesame_conserts.a"
  "libsesame_conserts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sesame_conserts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
