file(REMOVE_RECURSE
  "libsesame_fta.a"
)
