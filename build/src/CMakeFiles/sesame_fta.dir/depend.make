# Empty dependencies file for sesame_fta.
# This may be replaced when dependencies are built.
