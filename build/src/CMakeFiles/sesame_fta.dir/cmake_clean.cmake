file(REMOVE_RECURSE
  "CMakeFiles/sesame_fta.dir/fta/fault_tree.cpp.o"
  "CMakeFiles/sesame_fta.dir/fta/fault_tree.cpp.o.d"
  "libsesame_fta.a"
  "libsesame_fta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sesame_fta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
