file(REMOVE_RECURSE
  "libsesame_localization.a"
)
