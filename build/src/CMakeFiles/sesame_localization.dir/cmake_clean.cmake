file(REMOVE_RECURSE
  "CMakeFiles/sesame_localization.dir/localization/collaborative.cpp.o"
  "CMakeFiles/sesame_localization.dir/localization/collaborative.cpp.o.d"
  "libsesame_localization.a"
  "libsesame_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sesame_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
