# Empty dependencies file for sesame_localization.
# This may be replaced when dependencies are built.
