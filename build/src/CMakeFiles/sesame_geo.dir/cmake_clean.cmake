file(REMOVE_RECURSE
  "CMakeFiles/sesame_geo.dir/geo/fix.cpp.o"
  "CMakeFiles/sesame_geo.dir/geo/fix.cpp.o.d"
  "CMakeFiles/sesame_geo.dir/geo/geodesy.cpp.o"
  "CMakeFiles/sesame_geo.dir/geo/geodesy.cpp.o.d"
  "libsesame_geo.a"
  "libsesame_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sesame_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
