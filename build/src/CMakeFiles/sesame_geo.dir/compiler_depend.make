# Empty compiler generated dependencies file for sesame_geo.
# This may be replaced when dependencies are built.
