file(REMOVE_RECURSE
  "libsesame_geo.a"
)
