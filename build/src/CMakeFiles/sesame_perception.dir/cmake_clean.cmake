file(REMOVE_RECURSE
  "CMakeFiles/sesame_perception.dir/perception/detector.cpp.o"
  "CMakeFiles/sesame_perception.dir/perception/detector.cpp.o.d"
  "CMakeFiles/sesame_perception.dir/perception/tracker.cpp.o"
  "CMakeFiles/sesame_perception.dir/perception/tracker.cpp.o.d"
  "libsesame_perception.a"
  "libsesame_perception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sesame_perception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
