# Empty dependencies file for sesame_perception.
# This may be replaced when dependencies are built.
