
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perception/detector.cpp" "src/CMakeFiles/sesame_perception.dir/perception/detector.cpp.o" "gcc" "src/CMakeFiles/sesame_perception.dir/perception/detector.cpp.o.d"
  "/root/repo/src/perception/tracker.cpp" "src/CMakeFiles/sesame_perception.dir/perception/tracker.cpp.o" "gcc" "src/CMakeFiles/sesame_perception.dir/perception/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sesame_mathx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_deepknowledge.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_mw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
