file(REMOVE_RECURSE
  "libsesame_perception.a"
)
