file(REMOVE_RECURSE
  "libsesame_eddi.a"
)
