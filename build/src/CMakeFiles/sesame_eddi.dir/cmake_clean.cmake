file(REMOVE_RECURSE
  "CMakeFiles/sesame_eddi.dir/eddi/consert_ode.cpp.o"
  "CMakeFiles/sesame_eddi.dir/eddi/consert_ode.cpp.o.d"
  "CMakeFiles/sesame_eddi.dir/eddi/ode.cpp.o"
  "CMakeFiles/sesame_eddi.dir/eddi/ode.cpp.o.d"
  "CMakeFiles/sesame_eddi.dir/eddi/uav_eddi.cpp.o"
  "CMakeFiles/sesame_eddi.dir/eddi/uav_eddi.cpp.o.d"
  "libsesame_eddi.a"
  "libsesame_eddi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sesame_eddi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
