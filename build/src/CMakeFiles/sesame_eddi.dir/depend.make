# Empty dependencies file for sesame_eddi.
# This may be replaced when dependencies are built.
