# Empty compiler generated dependencies file for sesame_deepknowledge.
# This may be replaced when dependencies are built.
