file(REMOVE_RECURSE
  "CMakeFiles/sesame_deepknowledge.dir/deepknowledge/analysis.cpp.o"
  "CMakeFiles/sesame_deepknowledge.dir/deepknowledge/analysis.cpp.o.d"
  "CMakeFiles/sesame_deepknowledge.dir/deepknowledge/mlp.cpp.o"
  "CMakeFiles/sesame_deepknowledge.dir/deepknowledge/mlp.cpp.o.d"
  "CMakeFiles/sesame_deepknowledge.dir/deepknowledge/test_selection.cpp.o"
  "CMakeFiles/sesame_deepknowledge.dir/deepknowledge/test_selection.cpp.o.d"
  "libsesame_deepknowledge.a"
  "libsesame_deepknowledge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sesame_deepknowledge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
