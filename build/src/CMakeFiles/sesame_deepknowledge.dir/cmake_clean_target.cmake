file(REMOVE_RECURSE
  "libsesame_deepknowledge.a"
)
