file(REMOVE_RECURSE
  "libsesame_sar.a"
)
