# Empty compiler generated dependencies file for sesame_sar.
# This may be replaced when dependencies are built.
