file(REMOVE_RECURSE
  "CMakeFiles/sesame_sar.dir/sar/coverage.cpp.o"
  "CMakeFiles/sesame_sar.dir/sar/coverage.cpp.o.d"
  "CMakeFiles/sesame_sar.dir/sar/coverage_tracker.cpp.o"
  "CMakeFiles/sesame_sar.dir/sar/coverage_tracker.cpp.o.d"
  "CMakeFiles/sesame_sar.dir/sar/mission.cpp.o"
  "CMakeFiles/sesame_sar.dir/sar/mission.cpp.o.d"
  "libsesame_sar.a"
  "libsesame_sar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sesame_sar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
