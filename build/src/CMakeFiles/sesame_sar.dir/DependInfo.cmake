
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sar/coverage.cpp" "src/CMakeFiles/sesame_sar.dir/sar/coverage.cpp.o" "gcc" "src/CMakeFiles/sesame_sar.dir/sar/coverage.cpp.o.d"
  "/root/repo/src/sar/coverage_tracker.cpp" "src/CMakeFiles/sesame_sar.dir/sar/coverage_tracker.cpp.o" "gcc" "src/CMakeFiles/sesame_sar.dir/sar/coverage_tracker.cpp.o.d"
  "/root/repo/src/sar/mission.cpp" "src/CMakeFiles/sesame_sar.dir/sar/mission.cpp.o" "gcc" "src/CMakeFiles/sesame_sar.dir/sar/mission.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sesame_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_perception.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_mw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_deepknowledge.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sesame_mathx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
