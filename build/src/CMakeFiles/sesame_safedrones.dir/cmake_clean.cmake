file(REMOVE_RECURSE
  "CMakeFiles/sesame_safedrones.dir/safedrones/models.cpp.o"
  "CMakeFiles/sesame_safedrones.dir/safedrones/models.cpp.o.d"
  "CMakeFiles/sesame_safedrones.dir/safedrones/uav_reliability.cpp.o"
  "CMakeFiles/sesame_safedrones.dir/safedrones/uav_reliability.cpp.o.d"
  "libsesame_safedrones.a"
  "libsesame_safedrones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sesame_safedrones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
