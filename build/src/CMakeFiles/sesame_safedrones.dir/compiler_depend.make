# Empty compiler generated dependencies file for sesame_safedrones.
# This may be replaced when dependencies are built.
