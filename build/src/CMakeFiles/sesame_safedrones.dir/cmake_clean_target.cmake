file(REMOVE_RECURSE
  "libsesame_safedrones.a"
)
