# Empty dependencies file for sesame_bayes.
# This may be replaced when dependencies are built.
