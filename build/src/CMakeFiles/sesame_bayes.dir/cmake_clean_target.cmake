file(REMOVE_RECURSE
  "libsesame_bayes.a"
)
