file(REMOVE_RECURSE
  "CMakeFiles/sesame_bayes.dir/bayes/network.cpp.o"
  "CMakeFiles/sesame_bayes.dir/bayes/network.cpp.o.d"
  "libsesame_bayes.a"
  "libsesame_bayes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sesame_bayes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
