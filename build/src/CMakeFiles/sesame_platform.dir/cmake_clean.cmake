file(REMOVE_RECURSE
  "CMakeFiles/sesame_platform.dir/platform/config_io.cpp.o"
  "CMakeFiles/sesame_platform.dir/platform/config_io.cpp.o.d"
  "CMakeFiles/sesame_platform.dir/platform/database.cpp.o"
  "CMakeFiles/sesame_platform.dir/platform/database.cpp.o.d"
  "CMakeFiles/sesame_platform.dir/platform/gcs.cpp.o"
  "CMakeFiles/sesame_platform.dir/platform/gcs.cpp.o.d"
  "CMakeFiles/sesame_platform.dir/platform/gps_watchdog.cpp.o"
  "CMakeFiles/sesame_platform.dir/platform/gps_watchdog.cpp.o.d"
  "CMakeFiles/sesame_platform.dir/platform/managers.cpp.o"
  "CMakeFiles/sesame_platform.dir/platform/managers.cpp.o.d"
  "CMakeFiles/sesame_platform.dir/platform/mission_runner.cpp.o"
  "CMakeFiles/sesame_platform.dir/platform/mission_runner.cpp.o.d"
  "CMakeFiles/sesame_platform.dir/platform/report.cpp.o"
  "CMakeFiles/sesame_platform.dir/platform/report.cpp.o.d"
  "libsesame_platform.a"
  "libsesame_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sesame_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
