# Empty compiler generated dependencies file for sesame_platform.
# This may be replaced when dependencies are built.
