file(REMOVE_RECURSE
  "libsesame_platform.a"
)
