file(REMOVE_RECURSE
  "libsesame_security.a"
)
