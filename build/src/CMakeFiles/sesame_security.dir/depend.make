# Empty dependencies file for sesame_security.
# This may be replaced when dependencies are built.
