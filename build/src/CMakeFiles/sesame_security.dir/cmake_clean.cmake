file(REMOVE_RECURSE
  "CMakeFiles/sesame_security.dir/security/attack_tree.cpp.o"
  "CMakeFiles/sesame_security.dir/security/attack_tree.cpp.o.d"
  "CMakeFiles/sesame_security.dir/security/ids.cpp.o"
  "CMakeFiles/sesame_security.dir/security/ids.cpp.o.d"
  "CMakeFiles/sesame_security.dir/security/security_eddi.cpp.o"
  "CMakeFiles/sesame_security.dir/security/security_eddi.cpp.o.d"
  "libsesame_security.a"
  "libsesame_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sesame_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
