file(REMOVE_RECURSE
  "CMakeFiles/sesame_sinadra.dir/sinadra/filter.cpp.o"
  "CMakeFiles/sesame_sinadra.dir/sinadra/filter.cpp.o.d"
  "CMakeFiles/sesame_sinadra.dir/sinadra/risk.cpp.o"
  "CMakeFiles/sesame_sinadra.dir/sinadra/risk.cpp.o.d"
  "libsesame_sinadra.a"
  "libsesame_sinadra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sesame_sinadra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
