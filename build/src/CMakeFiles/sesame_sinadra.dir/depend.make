# Empty dependencies file for sesame_sinadra.
# This may be replaced when dependencies are built.
