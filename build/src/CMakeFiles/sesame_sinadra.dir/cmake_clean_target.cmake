file(REMOVE_RECURSE
  "libsesame_sinadra.a"
)
