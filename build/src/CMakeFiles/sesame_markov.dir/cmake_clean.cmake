file(REMOVE_RECURSE
  "CMakeFiles/sesame_markov.dir/markov/ctmc.cpp.o"
  "CMakeFiles/sesame_markov.dir/markov/ctmc.cpp.o.d"
  "CMakeFiles/sesame_markov.dir/markov/simulate.cpp.o"
  "CMakeFiles/sesame_markov.dir/markov/simulate.cpp.o.d"
  "libsesame_markov.a"
  "libsesame_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sesame_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
