file(REMOVE_RECURSE
  "libsesame_markov.a"
)
