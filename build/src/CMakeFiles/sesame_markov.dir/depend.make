# Empty dependencies file for sesame_markov.
# This may be replaced when dependencies are built.
