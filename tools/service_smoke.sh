#!/usr/bin/env bash
# End-to-end smoke for the campaign service daemon (docs/SERVICE.md).
#
# Drives the real binaries the way an operator would and checks the
# headline contracts:
#   1. the daemon comes up and answers /healthz;
#   2. a campaign submitted over HTTP returns report bytes identical to
#      campaign_cli --json for the same (preset, config, runs, seed);
#   3. the same submission over the framed wire transport returns the
#      same bytes (and hits the result cache);
#   4. SIGTERM drains gracefully: in-flight work is spooled, the daemon
#      exits 0, and a restarted daemon replays the spool.
#
# Usage: tools/service_smoke.sh <build-dir>   (e.g. ./build)
set -euo pipefail

BUILD=${1:?usage: service_smoke.sh <build-dir>}
DAEMON="$BUILD/examples/campaign_service"
SUBMIT="$BUILD/examples/campaign_submit"
CLI="$BUILD/examples/campaign_cli"

WORK=$(mktemp -d)
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

cat > "$WORK/cfg.json" <<'EOF'
{"n_uavs": 2, "n_persons": 2, "max_time_s": 150.0}
EOF

# --- 1. daemon up -----------------------------------------------------------
"$DAEMON" --http-port 0 --wire-port 0 --executors 2 --spool "$WORK/spool" \
  > "$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 50); do
  grep -q '^listening' "$WORK/daemon.log" && break
  sleep 0.2
done
HTTP_PORT=$(grep -oE 'http=[0-9]+' "$WORK/daemon.log" | cut -d= -f2)
WIRE_PORT=$(grep -oE 'wire=[0-9]+' "$WORK/daemon.log" | cut -d= -f2)
[ -n "$HTTP_PORT" ] && [ -n "$WIRE_PORT" ] || fail "daemon did not bind"
curl -fsS "http://127.0.0.1:$HTTP_PORT/healthz" >/dev/null || fail "healthz"
echo "ok: daemon up (http=$HTTP_PORT wire=$WIRE_PORT)"

# --- 2. HTTP submission is byte-identical to campaign_cli -------------------
"$CLI" --preset nominal --config "$WORK/cfg.json" --runs 2 --seed 7 --jobs 2 \
  --json "$WORK/cli.json" >/dev/null
"$SUBMIT" --port "$HTTP_PORT" --preset nominal --config "$WORK/cfg.json" \
  --runs 2 --seed 7 --out "$WORK/http.json" 2>/dev/null
cmp "$WORK/cli.json" "$WORK/http.json" \
  || fail "HTTP report differs from campaign_cli bytes"
echo "ok: HTTP report byte-identical to campaign_cli"

# --- 3. wire submission: same bytes, served from the cache ------------------
"$SUBMIT" --port "$WIRE_PORT" --transport wire --preset nominal \
  --config "$WORK/cfg.json" --runs 2 --seed 7 \
  --out "$WORK/wire.json" 2> "$WORK/wire.log"
cmp "$WORK/cli.json" "$WORK/wire.json" \
  || fail "wire report differs from campaign_cli bytes"
grep -q cache_hit "$WORK/wire.log" \
  || fail "repeat submission did not hit the result cache"
curl -fsS "http://127.0.0.1:$HTTP_PORT/metrics" \
  | grep -q sesame_service_cache_hits_total || fail "cache metric missing"
echo "ok: wire report byte-identical and cache hit recorded"

# --- 4. graceful drain spools in-flight work --------------------------------
curl -fsS -X POST "http://127.0.0.1:$HTTP_PORT/api/v1/campaigns" \
  -d '{"preset": "nominal", "runs": 500, "seed": 99}' >/dev/null
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || fail "daemon exited non-zero on SIGTERM"
DAEMON_PID=""
ls "$WORK/spool/"*.json >/dev/null 2>&1 || fail "drain left no spool file"
echo "ok: drain spooled the in-flight campaign"

"$DAEMON" --http-port 0 --wire-port 0 --spool "$WORK/spool" \
  > "$WORK/daemon2.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 50); do
  grep -q '^listening' "$WORK/daemon2.log" && break
  sleep 0.2
done
grep -q 'replayed 1 spooled' "$WORK/daemon2.log" \
  || fail "restart did not replay the spool"
kill -TERM "$DAEMON_PID" && wait "$DAEMON_PID" || true
DAEMON_PID=""
echo "ok: restart replayed the spool"

echo "service smoke passed"
