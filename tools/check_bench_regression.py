#!/usr/bin/env python3
"""Gate benchmark throughput against a committed baseline.

Compares `items_per_second` for selected benchmarks between a fresh
`--json` bench report and the committed baseline (BENCH_*.json). Fails
(exit 1) when a gated benchmark's throughput drops by more than the
allowed fraction; improvements and small wobble pass. Benchmarks present
in only one of the two files are reported but never fatal, so adding or
renaming a bench does not brick CI before the baseline is refreshed.

Usage:
  check_bench_regression.py --baseline BENCH_bus_publish.json \
      --current bus.json --gate BM_BusPublishSteadyState \
      [--gate NAME ...] [--max-regression 0.20]

Several suites can be gated in one invocation with repeatable
`--compare BASELINE:CURRENT` pairs (equivalent to one --baseline/--current
run per pair, sharing --gate and --max-regression):

  check_bench_regression.py \
      --compare BENCH_bus_publish.json:bus.json \
      --compare BENCH_wire.json:wire.json \
      --gate BM_BusPublishSteadyState --gate BM_BridgeFederation

The committed baseline carries `before`/`after` sections (the optimisation
record); a plain bench report is also accepted. The `after` section is
what CI gates against.
"""

import argparse
import json
import sys


def load_results(path):
    """Returns {benchmark name: items_per_second} from a bench JSON file.

    Accepts either a raw bench report ({"benchmarks": [...]}) or the
    committed baseline shape ({"after": {"benchmarks": [...]}, ...}).
    """
    with open(path) as f:
        doc = json.load(f)
    if "after" in doc and "benchmarks" in doc.get("after", {}):
        doc = doc["after"]
    if "benchmarks" not in doc:
        raise SystemExit(f"{path}: no 'benchmarks' array (not a bench report?)")
    out = {}
    for i, b in enumerate(doc["benchmarks"]):
        if "items_per_second" not in b:
            continue
        if "name" not in b:
            raise SystemExit(
                f"{path}: benchmarks[{i}] has items_per_second but no 'name' "
                f"(malformed report — regenerate it)")
        try:
            out[b["name"]] = float(b["items_per_second"])
        except (TypeError, ValueError):
            raise SystemExit(
                f"{path}: benchmarks[{i}] ('{b['name']}') has a non-numeric "
                f"items_per_second: {b['items_per_second']!r}")
    return out


def check_pair(baseline_path, current_path, gate_names, max_regression):
    """Gates one baseline/current report pair; returns True on failure."""
    baseline = load_results(baseline_path)
    current = load_results(current_path)
    gates = gate_names or sorted(set(baseline) & set(current))

    print(f"{baseline_path} vs {current_path}:")
    failed = False
    for name in gates:
        if name not in baseline:
            print(f"  SKIP {name}: not in baseline (refresh {baseline_path})")
            continue
        if name not in current:
            print(f"  SKIP {name}: not in current report")
            continue
        base, cur = baseline[name], current[name]
        if base <= 0.0:
            raise SystemExit(
                f"{baseline_path}: {name} has a zero or negative baseline "
                f"items_per_second ({base}); the gate cannot compute a ratio "
                f"— refresh the baseline from a real bench run")
        ratio = cur / base
        verdict = "ok"
        if ratio < 1.0 - max_regression:
            verdict = "REGRESSION"
            failed = True
        print(f"  {verdict:>10}  {name}: {cur:,.0f} vs baseline {base:,.0f} "
              f"items/s ({ratio:.2f}x)")
    if failed:
        print(f"FAIL: throughput dropped more than "
              f"{max_regression:.0%} vs {baseline_path}")
    return failed


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", help="single-pair form (with --current)")
    ap.add_argument("--current", help="single-pair form (with --baseline)")
    ap.add_argument("--compare", action="append", default=[],
                    metavar="BASELINE:CURRENT",
                    help="baseline:current report pair (repeatable; may be "
                         "combined with --baseline/--current)")
    ap.add_argument("--gate", action="append", default=[],
                    help="benchmark name to gate (repeatable); names absent "
                         "from a pair are skipped there; default: all "
                         "benchmarks present in both files of each pair")
    ap.add_argument("--max-regression", type=float, default=0.20,
                    help="fatal fractional throughput drop (default 0.20)")
    args = ap.parse_args()

    pairs = []
    if args.baseline or args.current:
        if not (args.baseline and args.current):
            ap.error("--baseline and --current must be given together")
        pairs.append((args.baseline, args.current))
    for spec in args.compare:
        baseline, sep, current = spec.partition(":")
        if not sep or not baseline or not current:
            ap.error(f"--compare expects BASELINE:CURRENT, got '{spec}'")
        pairs.append((baseline, current))
    if not pairs:
        ap.error("nothing to do: give --baseline/--current or --compare")

    failed = False
    for baseline_path, current_path in pairs:
        failed |= check_pair(baseline_path, current_path, args.gate,
                             args.max_regression)
    if failed:
        return 1
    print("bench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
