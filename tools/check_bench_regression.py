#!/usr/bin/env python3
"""Gate benchmark throughput against a committed baseline.

Compares `items_per_second` for selected benchmarks between a fresh
`--json` bench report and the committed baseline (BENCH_*.json). Fails
(exit 1) when a gated benchmark's throughput drops by more than the
allowed fraction; improvements and small wobble pass. Benchmarks present
in only one of the two files are reported but never fatal, so adding or
renaming a bench does not brick CI before the baseline is refreshed.

Usage:
  check_bench_regression.py --baseline BENCH_bus_publish.json \
      --current bus.json --gate BM_BusPublishSteadyState \
      [--gate NAME ...] [--max-regression 0.20]

The committed baseline carries `before`/`after` sections (the optimisation
record); a plain bench report is also accepted. The `after` section is
what CI gates against.
"""

import argparse
import json
import sys


def load_results(path):
    """Returns {benchmark name: items_per_second} from a bench JSON file.

    Accepts either a raw bench report ({"benchmarks": [...]}) or the
    committed baseline shape ({"after": {"benchmarks": [...]}, ...}).
    """
    with open(path) as f:
        doc = json.load(f)
    if "after" in doc and "benchmarks" in doc.get("after", {}):
        doc = doc["after"]
    if "benchmarks" not in doc:
        raise SystemExit(f"{path}: no 'benchmarks' array (not a bench report?)")
    out = {}
    for b in doc["benchmarks"]:
        if "items_per_second" in b:
            out[b["name"]] = float(b["items_per_second"])
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--gate", action="append", default=[],
                    help="benchmark name to gate (repeatable); default: all "
                         "benchmarks present in both files")
    ap.add_argument("--max-regression", type=float, default=0.20,
                    help="fatal fractional throughput drop (default 0.20)")
    args = ap.parse_args()

    baseline = load_results(args.baseline)
    current = load_results(args.current)
    gates = args.gate or sorted(set(baseline) & set(current))

    failed = False
    for name in gates:
        if name not in baseline:
            print(f"  SKIP {name}: not in baseline (refresh {args.baseline})")
            continue
        if name not in current:
            print(f"  SKIP {name}: not in current report")
            continue
        base, cur = baseline[name], current[name]
        ratio = cur / base
        verdict = "ok"
        if ratio < 1.0 - args.max_regression:
            verdict = "REGRESSION"
            failed = True
        print(f"  {verdict:>10}  {name}: {cur:,.0f} vs baseline {base:,.0f} "
              f"items/s ({ratio:.2f}x)")

    if failed:
        print(f"FAIL: throughput dropped more than "
              f"{args.max_regression:.0%} vs {args.baseline}")
        return 1
    print("bench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
