#!/usr/bin/env python3
"""Unit tests for check_bench_regression.py.

The checker gates CI perf regressions (bus publish, wire federation, fleet
scaling); a crash or silent pass in the checker disables those gates, so
the checker itself is under test. Run directly or via ctest:

  python3 tools/test_check_bench_regression.py
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_bench_regression as cbr  # noqa: E402


def write_report(dirname, name, benchmarks, wrap_after=False):
    doc = {"benchmarks": benchmarks}
    if wrap_after:
        doc = {"note": "baseline", "after": {"benchmarks": benchmarks}}
    path = os.path.join(dirname, name)
    with open(path, "w") as f:
        json.dump(doc, f)
    return path


def bench(name, items_per_second):
    b = {"items_per_second": items_per_second}
    if name is not None:
        b["name"] = name
    return b


class LoadResultsTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def test_raw_report_shape(self):
        path = write_report(self.tmp.name, "raw.json", [bench("BM_A", 100.0)])
        self.assertEqual(cbr.load_results(path), {"BM_A": 100.0})

    def test_committed_baseline_shape(self):
        path = write_report(self.tmp.name, "base.json", [bench("BM_A", 250.0)],
                            wrap_after=True)
        self.assertEqual(cbr.load_results(path), {"BM_A": 250.0})

    def test_entries_without_items_per_second_are_skipped(self):
        path = write_report(self.tmp.name, "mixed.json",
                            [{"name": "BM_NoItems", "real_time": 5.0},
                             bench("BM_A", 10.0)])
        self.assertEqual(cbr.load_results(path), {"BM_A": 10.0})

    def test_missing_name_fails_with_clear_message(self):
        path = write_report(self.tmp.name, "noname.json", [bench(None, 10.0)])
        with self.assertRaises(SystemExit) as ctx:
            cbr.load_results(path)
        self.assertIn("no 'name'", str(ctx.exception))
        self.assertIn(path, str(ctx.exception))

    def test_non_numeric_items_per_second_fails(self):
        path = write_report(self.tmp.name, "nan.json",
                            [bench("BM_A", "fast")])
        with self.assertRaises(SystemExit) as ctx:
            cbr.load_results(path)
        self.assertIn("non-numeric", str(ctx.exception))

    def test_missing_benchmarks_array_fails(self):
        path = os.path.join(self.tmp.name, "junk.json")
        with open(path, "w") as f:
            json.dump({"not_benchmarks": []}, f)
        with self.assertRaises(SystemExit) as ctx:
            cbr.load_results(path)
        self.assertIn("benchmarks", str(ctx.exception))


class CheckPairTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def pair(self, base_benchmarks, cur_benchmarks):
        base = write_report(self.tmp.name, "base.json", base_benchmarks,
                            wrap_after=True)
        cur = write_report(self.tmp.name, "cur.json", cur_benchmarks)
        return base, cur

    def test_within_tolerance_passes(self):
        base, cur = self.pair([bench("BM_A", 100.0)], [bench("BM_A", 85.0)])
        self.assertFalse(cbr.check_pair(base, cur, ["BM_A"], 0.20))

    def test_regression_fails(self):
        base, cur = self.pair([bench("BM_A", 100.0)], [bench("BM_A", 70.0)])
        self.assertTrue(cbr.check_pair(base, cur, ["BM_A"], 0.20))

    def test_improvement_passes(self):
        base, cur = self.pair([bench("BM_A", 100.0)], [bench("BM_A", 500.0)])
        self.assertFalse(cbr.check_pair(base, cur, ["BM_A"], 0.20))

    def test_zero_baseline_fails_with_clear_message_not_crash(self):
        base, cur = self.pair([bench("BM_A", 0.0)], [bench("BM_A", 10.0)])
        with self.assertRaises(SystemExit) as ctx:
            cbr.check_pair(base, cur, ["BM_A"], 0.20)
        msg = str(ctx.exception)
        self.assertIn("BM_A", msg)
        self.assertIn("zero", msg)

    def test_negative_baseline_fails_with_clear_message(self):
        base, cur = self.pair([bench("BM_A", -5.0)], [bench("BM_A", 10.0)])
        with self.assertRaises(SystemExit) as ctx:
            cbr.check_pair(base, cur, ["BM_A"], 0.20)
        self.assertIn("BM_A", str(ctx.exception))

    def test_gate_absent_from_baseline_is_skipped_not_fatal(self):
        base, cur = self.pair([bench("BM_A", 100.0)],
                              [bench("BM_A", 95.0), bench("BM_New", 1.0)])
        self.assertFalse(cbr.check_pair(base, cur, ["BM_A", "BM_New"], 0.20))

    def test_gate_absent_from_current_is_skipped_not_fatal(self):
        base, cur = self.pair([bench("BM_A", 100.0), bench("BM_Old", 1.0)],
                              [bench("BM_A", 95.0)])
        self.assertFalse(cbr.check_pair(base, cur, ["BM_A", "BM_Old"], 0.20))

    def test_default_gates_all_common_benchmarks(self):
        base, cur = self.pair(
            [bench("BM_A", 100.0), bench("BM_B", 100.0)],
            [bench("BM_A", 95.0), bench("BM_B", 10.0)])
        self.assertTrue(cbr.check_pair(base, cur, [], 0.20))


if __name__ == "__main__":
    unittest.main()
