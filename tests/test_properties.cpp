// Property-based parameterized suites (TEST_P) sweeping invariants across
// the stack: distance-measure axioms, Markov/fault-tree probability laws,
// geometry round-trips, detector monotonicity, reliability monotonicity,
// and ConSert evaluation determinism.
#include <cmath>
#include <limits>
#include <utility>

#include <gtest/gtest.h>

#include "sesame/bayes/network.hpp"
#include "sesame/conserts/uav_network.hpp"
#include "sesame/perception/tracker.hpp"
#include "sesame/sar/coverage_tracker.hpp"
#include "sesame/sim/comm_link.hpp"
#include "sesame/eddi/ode.hpp"
#include "sesame/mw/bus.hpp"
#include "sesame/fta/fault_tree.hpp"
#include "sesame/geo/geodesy.hpp"
#include "sesame/markov/ctmc.hpp"
#include "sesame/mathx/rng.hpp"
#include "sesame/perception/detector.hpp"
#include "sesame/safedrones/models.hpp"
#include "sesame/safeml/distances.hpp"

namespace {

using namespace sesame;

// ---------------------------------------------------------------------------
// SafeML distance measures: metric-like axioms for every measure.
// ---------------------------------------------------------------------------

class DistanceMeasureProperties
    : public ::testing::TestWithParam<safeml::Measure> {};

TEST_P(DistanceMeasureProperties, NonNegative) {
  mathx::Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a, b;
    for (int i = 0; i < 50; ++i) {
      a.push_back(rng.normal(0.0, 1.0));
      b.push_back(rng.normal(rng.uniform(-2.0, 2.0), rng.uniform(0.5, 2.0)));
    }
    EXPECT_GE(safeml::distance(GetParam(), a, b), 0.0);
  }
}

TEST_P(DistanceMeasureProperties, SymmetricUpToTolerance) {
  mathx::Rng rng(103);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a, b;
    for (int i = 0; i < 40; ++i) a.push_back(rng.normal(0.0, 1.0));
    for (int i = 0; i < 60; ++i) b.push_back(rng.normal(1.0, 1.5));
    EXPECT_NEAR(safeml::distance(GetParam(), a, b),
                safeml::distance(GetParam(), b, a), 1e-9);
  }
}

TEST_P(DistanceMeasureProperties, IdentityOfIndiscernibles) {
  mathx::Rng rng(107);
  std::vector<double> a;
  for (int i = 0; i < 80; ++i) a.push_back(rng.normal(0.0, 1.0));
  EXPECT_NEAR(safeml::distance(GetParam(), a, a), 0.0, 1e-12);
}

TEST_P(DistanceMeasureProperties, TranslationInvariantOfEqualShift) {
  // d(X + c, Y + c) == d(X, Y): all measures act on relative ECDF geometry.
  mathx::Rng rng(109);
  std::vector<double> a, b, ac, bc;
  const double c = 17.5;
  for (int i = 0; i < 64; ++i) {
    const double x = rng.normal(0.0, 1.0);
    const double y = rng.normal(0.6, 1.2);
    a.push_back(x);
    b.push_back(y);
    ac.push_back(x + c);
    bc.push_back(y + c);
  }
  EXPECT_NEAR(safeml::distance(GetParam(), a, b),
              safeml::distance(GetParam(), ac, bc), 1e-9);
}

TEST_P(DistanceMeasureProperties, DetectsLargeShiftOverNoise) {
  mathx::Rng rng(113);
  std::vector<double> ref, same, shifted;
  for (int i = 0; i < 200; ++i) ref.push_back(rng.normal(0.0, 1.0));
  for (int i = 0; i < 64; ++i) {
    same.push_back(rng.normal(0.0, 1.0));
    shifted.push_back(rng.normal(3.0, 1.0));
  }
  EXPECT_GT(safeml::distance(GetParam(), ref, shifted),
            safeml::distance(GetParam(), ref, same));
}

INSTANTIATE_TEST_SUITE_P(
    AllMeasures, DistanceMeasureProperties,
    ::testing::ValuesIn(safeml::all_measures()),
    [](const ::testing::TestParamInfo<safeml::Measure>& info) {
      return safeml::measure_name(info.param);
    });

// ---------------------------------------------------------------------------
// Markov chains: probability laws across chain sizes.
// ---------------------------------------------------------------------------

class CtmcSizeProperties : public ::testing::TestWithParam<std::size_t> {
 protected:
  markov::Ctmc random_chain(mathx::Rng& rng) const {
    const std::size_t n = GetParam();
    markov::CtmcBuilder b;
    for (std::size_t i = 0; i < n; ++i) b.add_state("s" + std::to_string(i));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i != j && rng.bernoulli(0.4)) {
          b.add_transition(i, j, rng.uniform(0.01, 1.0));
        }
      }
    }
    return b.build();
  }
};

TEST_P(CtmcSizeProperties, TransientRemainsDistribution) {
  mathx::Rng rng(211);
  const auto chain = random_chain(rng);
  std::vector<double> pi0(chain.num_states(), 0.0);
  pi0[0] = 1.0;
  for (double t : {0.01, 0.5, 5.0, 50.0}) {
    const auto pi = chain.transient(pi0, t);
    double sum = 0.0;
    for (double p : pi) {
      EXPECT_GE(p, -1e-9);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-8);
  }
}

TEST_P(CtmcSizeProperties, ChapmanKolmogorov) {
  // pi(t1 + t2) == transient(transient(pi0, t1), t2).
  mathx::Rng rng(223);
  const auto chain = random_chain(rng);
  std::vector<double> pi0(chain.num_states(), 0.0);
  pi0[0] = 1.0;
  const auto direct = chain.transient(pi0, 7.0);
  const auto stepped = chain.transient(chain.transient(pi0, 3.0), 4.0);
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], stepped[i], 1e-8);
  }
}

TEST_P(CtmcSizeProperties, AgreesWithMatrixExponential) {
  mathx::Rng rng(227);
  const auto chain = random_chain(rng);
  std::vector<double> pi0(chain.num_states(), 0.0);
  pi0[0] = 1.0;
  const auto uni = chain.transient(pi0, 2.5);
  const auto exact =
      mathx::expm(chain.generator() * 2.5).apply_transposed(pi0);
  for (std::size_t i = 0; i < uni.size(); ++i) {
    EXPECT_NEAR(uni[i], exact[i], 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(ChainSizes, CtmcSizeProperties,
                         ::testing::Values(2, 3, 5, 8, 13, 21));

// ---------------------------------------------------------------------------
// Fault trees: coherence (monotonicity) of every gate type.
// ---------------------------------------------------------------------------

struct GateCase {
  const char* name;
  std::function<fta::NodePtr(std::vector<fta::NodePtr>)> make;
};

class GateCoherence : public ::testing::TestWithParam<GateCase> {};

TEST_P(GateCoherence, MonotoneInEveryLeaf) {
  // Coherent fault trees: raising any leaf probability cannot lower the
  // top-event probability.
  mathx::Rng rng(307);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> ps;
    std::vector<fta::NodePtr> leaves;
    for (int i = 0; i < 4; ++i) {
      ps.push_back(rng.uniform());
      leaves.push_back(fta::make_basic("e" + std::to_string(i), ps.back()));
    }
    const auto gate = GetParam().make(leaves);
    const double base = gate->probability(0.0);
    for (int i = 0; i < 4; ++i) {
      auto bumped_leaves = leaves;
      bumped_leaves[static_cast<std::size_t>(i)] = fta::make_basic(
          "e" + std::to_string(i), std::min(1.0, ps[static_cast<std::size_t>(i)] + 0.1));
      EXPECT_GE(GetParam().make(bumped_leaves)->probability(0.0),
                base - 1e-12);
    }
  }
}

TEST_P(GateCoherence, BoundedByZeroOne) {
  mathx::Rng rng(311);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<fta::NodePtr> leaves;
    for (int i = 0; i < 4; ++i) {
      leaves.push_back(fta::make_basic("e" + std::to_string(i), rng.uniform()));
    }
    const double p = GetParam().make(leaves)->probability(0.0);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST_P(GateCoherence, CertainLeavesGiveCertainTop) {
  std::vector<fta::NodePtr> all_fail, none_fail;
  for (int i = 0; i < 4; ++i) {
    all_fail.push_back(fta::make_basic("a" + std::to_string(i), 1.0));
    none_fail.push_back(fta::make_basic("n" + std::to_string(i), 0.0));
  }
  EXPECT_DOUBLE_EQ(GetParam().make(all_fail)->probability(0.0), 1.0);
  EXPECT_DOUBLE_EQ(GetParam().make(none_fail)->probability(0.0), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, GateCoherence,
    ::testing::Values(
        GateCase{"And", [](std::vector<fta::NodePtr> c) {
                   return fta::make_and("g", std::move(c));
                 }},
        GateCase{"Or", [](std::vector<fta::NodePtr> c) {
                   return fta::make_or("g", std::move(c));
                 }},
        GateCase{"TwoOfN", [](std::vector<fta::NodePtr> c) {
                   return fta::make_k_of_n("g", 2, std::move(c));
                 }},
        GateCase{"ThreeOfN", [](std::vector<fta::NodePtr> c) {
                   return fta::make_k_of_n("g", 3, std::move(c));
                 }}),
    [](const ::testing::TestParamInfo<GateCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Geodesy: destination/bearing/haversine round-trips across the globe.
// ---------------------------------------------------------------------------

class GeodesyRoundTrip
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(GeodesyRoundTrip, DestinationInvertsHaversine) {
  const geo::GeoPoint origin{GetParam().first, GetParam().second, 0.0};
  mathx::Rng rng(401);
  for (int i = 0; i < 25; ++i) {
    const double bearing = rng.uniform(0.0, 360.0);
    const double dist = rng.uniform(1.0, 20000.0);
    const geo::GeoPoint p = geo::destination(origin, bearing, dist);
    EXPECT_NEAR(geo::haversine_m(origin, p), dist, dist * 1e-6 + 0.01);
  }
}

TEST_P(GeodesyRoundTrip, LocalFrameIsConsistent) {
  const geo::GeoPoint origin{GetParam().first, GetParam().second, 0.0};
  const geo::LocalFrame frame(origin);
  mathx::Rng rng(409);
  for (int i = 0; i < 25; ++i) {
    geo::EnuPoint e{rng.uniform(-3000.0, 3000.0), rng.uniform(-3000.0, 3000.0),
                    rng.uniform(0.0, 200.0)};
    const auto back = frame.to_enu(frame.to_geo(e));
    EXPECT_NEAR(back.east_m, e.east_m, 1e-5);
    EXPECT_NEAR(back.north_m, e.north_m, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Latitudes, GeodesyRoundTrip,
    ::testing::Values(std::pair{0.0, 0.0},        // equator
                      std::pair{35.19, 33.38},    // Cyprus (mission area)
                      std::pair{-33.86, 151.21},  // southern hemisphere
                      std::pair{64.15, -21.94},   // high latitude
                      std::pair{35.0, 179.9}));   // antimeridian

// ---------------------------------------------------------------------------
// Perception: detection quality monotone in altitude for any config.
// ---------------------------------------------------------------------------

class DetectorAltitudeProperty : public ::testing::TestWithParam<double> {};

TEST_P(DetectorAltitudeProperty, ProbabilityWithinBoundsAndMonotone) {
  perception::DetectorConfig cfg;
  cfg.gsd_falloff = GetParam();
  perception::PersonDetector det{cfg};
  double prev = 1.1;
  for (double alt = 5.0; alt <= 150.0; alt += 5.0) {
    const double p = det.detection_probability(alt);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(FalloffSteepness, DetectorAltitudeProperty,
                         ::testing::Values(20.0, 40.0, 80.0, 160.0));

// ---------------------------------------------------------------------------
// SafeDrones: reliability monotone in stress for every airframe.
// ---------------------------------------------------------------------------

class AirframeProperties
    : public ::testing::TestWithParam<safedrones::Airframe> {};

TEST_P(AirframeProperties, FailureProbabilityMonotoneInTime) {
  safedrones::PropulsionConfig cfg;
  cfg.airframe = GetParam();
  cfg.motor_failure_rate = 5e-5;
  safedrones::PropulsionModel model(cfg);
  double prev = -1.0;
  for (double t = 0.0; t <= 20000.0; t += 1000.0) {
    const double p = model.failure_probability(t);
    EXPECT_GE(p, prev - 1e-12);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST_P(AirframeProperties, ReconfigurationNeverHurts) {
  safedrones::PropulsionConfig with;
  with.airframe = GetParam();
  with.motor_failure_rate = 5e-5;
  with.reconfiguration = true;
  auto without = with;
  without.reconfiguration = false;
  safedrones::PropulsionModel m_with(with), m_without(without);
  for (double t : {100.0, 1000.0, 10000.0}) {
    EXPECT_LE(m_with.failure_probability(t),
              m_without.failure_probability(t) + 1e-12);
  }
}

TEST_P(AirframeProperties, MoreInitialFailuresNeverSafer) {
  safedrones::PropulsionConfig cfg;
  cfg.airframe = GetParam();
  cfg.motor_failure_rate = 5e-5;
  safedrones::PropulsionModel model(cfg);
  for (std::size_t k = 0; k + 1 < 3; ++k) {
    EXPECT_LE(model.failure_probability(2000.0, k),
              model.failure_probability(2000.0, k + 1) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Airframes, AirframeProperties,
                         ::testing::Values(safedrones::Airframe::kQuad,
                                           safedrones::Airframe::kHexa,
                                           safedrones::Airframe::kOcta),
                         [](const auto& info) {
                           switch (info.param) {
                             case safedrones::Airframe::kQuad: return "Quad";
                             case safedrones::Airframe::kHexa: return "Hexa";
                             case safedrones::Airframe::kOcta: return "Octa";
                           }
                           return "Unknown";
                         });

// ---------------------------------------------------------------------------
// Battery tracker: cumulative failure probability is monotone regardless
// of the telemetry trajectory thrown at it.
// ---------------------------------------------------------------------------

class BatteryTrackerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatteryTrackerProperty, CumulativeProbabilityMonotone) {
  mathx::Rng rng(GetParam());
  safedrones::BatteryRuntimeTracker tracker;
  double soc = 1.0;
  double prev = 0.0;
  for (int step = 0; step < 300; ++step) {
    soc = std::max(0.05, soc - rng.uniform(0.0, 0.01));
    if (rng.bernoulli(0.02)) soc = std::max(0.05, soc - 0.3);  // fault drops
    const double temp = rng.uniform(20.0, 80.0);
    tracker.observe_soc(soc);
    tracker.advance(rng.uniform(0.1, 5.0), temp);
    const double p = tracker.failure_probability();
    EXPECT_GE(p, prev - 1e-10);
    EXPECT_LE(p, 1.0 + 1e-12);
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatteryTrackerProperty,
                         ::testing::Values(1, 7, 42, 1234, 99991));

// ---------------------------------------------------------------------------
// ConSerts: evaluation is deterministic and monotone in evidence.
// ---------------------------------------------------------------------------

class ConsertEvidenceProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ConsertEvidenceProperty, AddingEvidenceNeverRemovesGrants) {
  // Granting more evidence can only keep or add guarantees (conditions are
  // monotone: no negations in the Fig. 1 network).
  conserts::ConSertNetwork net;
  conserts::add_uav_conserts(net, "u");

  const unsigned mask = GetParam();
  auto evidence_of = [](unsigned m) {
    conserts::UavEvidence e;
    e.gps_quality_good = m & 1u;
    e.no_security_attack = m & 2u;
    e.vision_sensor_healthy = m & 4u;
    e.safeml_confidence_high = m & 8u;
    e.comm_link_good = m & 16u;
    e.nearby_uav_available = m & 32u;
    e.reliability_high = m & 64u;
    return e;
  };

  conserts::EvaluationContext base_ctx;
  conserts::apply_evidence(base_ctx, "u", evidence_of(mask));
  const auto base = net.evaluate(base_ctx);

  for (unsigned bit = 0; bit < 7; ++bit) {
    const unsigned super = mask | (1u << bit);
    conserts::EvaluationContext ctx;
    conserts::apply_evidence(ctx, "u", evidence_of(super));
    const auto more = net.evaluate(ctx);
    for (const auto& grant : base.grants) {
      EXPECT_TRUE(more.grants.count(grant))
          << "grant lost when adding evidence bit " << bit;
    }
  }
}

TEST_P(ConsertEvidenceProperty, EvaluationIsDeterministic) {
  conserts::ConSertNetwork net;
  conserts::add_uav_conserts(net, "u");
  conserts::UavEvidence e;
  e.gps_quality_good = GetParam() & 1u;
  e.no_security_attack = GetParam() & 2u;
  e.reliability_high = GetParam() & 64u;
  conserts::EvaluationContext ctx;
  conserts::apply_evidence(ctx, "u", e);
  const auto a = net.evaluate(ctx);
  const auto b = net.evaluate(ctx);
  EXPECT_EQ(a.grants, b.grants);
  EXPECT_EQ(a.best, b.best);
}

INSTANTIATE_TEST_SUITE_P(EvidenceMasks, ConsertEvidenceProperty,
                         ::testing::Values(0u, 3u, 64u, 67u, 96u, 127u, 21u,
                                           106u));

}  // namespace

// ---------------------------------------------------------------------------
// Bayesian networks: law of total probability across evidence patterns.
// ---------------------------------------------------------------------------

namespace {

class BayesMarginalization : public ::testing::TestWithParam<int> {};

TEST_P(BayesMarginalization, PosteriorMixesBackToPrior) {
  // P(target) == sum_e P(target | E=e) * P(E=e) for any evidence variable.
  mathx::Rng rng(static_cast<std::uint64_t>(GetParam()));
  bayes::Network net;
  const auto a = net.add_variable("a", {"0", "1"});
  const auto b = net.add_variable("b", {"0", "1", "2"});
  const auto c = net.add_variable("c", {"0", "1"});
  // Random priors/CPTs.
  const auto random_row = [&](std::size_t k) {
    std::vector<double> row(k);
    double total = 0.0;
    for (auto& x : row) {
      x = rng.uniform(0.05, 1.0);
      total += x;
    }
    for (auto& x : row) x /= total;
    return row;
  };
  net.set_prior(a, random_row(2));
  {
    std::vector<double> cpt;
    for (int r = 0; r < 2; ++r) {
      const auto row = random_row(3);
      cpt.insert(cpt.end(), row.begin(), row.end());
    }
    net.set_cpt(b, {a}, cpt);
  }
  {
    std::vector<double> cpt;
    for (int r = 0; r < 6; ++r) {
      const auto row = random_row(2);
      cpt.insert(cpt.end(), row.begin(), row.end());
    }
    net.set_cpt(c, {a, b}, cpt);
  }

  const auto prior_c = net.query(c);
  const auto prior_b = net.query(b);
  std::vector<double> mixed(2, 0.0);
  for (std::size_t e = 0; e < 3; ++e) {
    const auto posterior = net.query(c, {{b, e}});
    for (std::size_t k = 0; k < 2; ++k) mixed[k] += posterior[k] * prior_b[e];
  }
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_NEAR(mixed[k], prior_c[k], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomNetworks, BayesMarginalization,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// ---------------------------------------------------------------------------
// ODE JSON: random documents round-trip byte-identically.
// ---------------------------------------------------------------------------

class OdeFuzzRoundTrip : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  eddi::ode::Value random_value(mathx::Rng& rng, int depth) {
    const double r = rng.uniform();
    if (depth <= 0 || r < 0.25) {
      switch (rng.uniform_index(4)) {
        case 0: return eddi::ode::Value(nullptr);
        case 1: return eddi::ode::Value(rng.bernoulli(0.5));
        case 2: return eddi::ode::Value(rng.uniform(-1000.0, 1000.0));
        default: {
          std::string s;
          const char* alphabet = "abc \"\\\n\tXYZ/";
          for (int i = 0; i < 8; ++i) {
            s.push_back(alphabet[rng.uniform_index(12)]);
          }
          return eddi::ode::Value(std::move(s));
        }
      }
    }
    if (r < 0.6) {
      eddi::ode::Value arr{eddi::ode::Value::Array{}};
      const auto n = rng.uniform_index(4);
      for (std::size_t i = 0; i < n; ++i) {
        arr.push_back(random_value(rng, depth - 1));
      }
      return arr;
    }
    eddi::ode::Value obj{eddi::ode::Value::Object{}};
    const auto n = rng.uniform_index(4);
    for (std::size_t i = 0; i < n; ++i) {
      obj["k" + std::to_string(i)] = random_value(rng, depth - 1);
    }
    return obj;
  }
};

TEST_P(OdeFuzzRoundTrip, SerializeParseSerializeIsStable) {
  mathx::Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    const auto doc = random_value(rng, 4);
    const std::string once = doc.to_json();
    const std::string twice = eddi::ode::parse_json(once).to_json();
    EXPECT_EQ(once, twice);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OdeFuzzRoundTrip,
                         ::testing::Values(11u, 22u, 33u, 44u));

// ---------------------------------------------------------------------------
// Middleware: random pub/sub traffic conserves delivery counts.
// ---------------------------------------------------------------------------

class BusTrafficProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BusTrafficProperty, DeliveryCountsMatchPublications) {
  mathx::Rng rng(GetParam());
  mw::Bus bus;
  const std::vector<std::string> topics{"a", "b", "c", "d"};
  std::map<std::string, int> delivered;
  std::vector<mw::Subscription> subs;
  for (const auto& t : topics) {
    subs.push_back(bus.subscribe<int>(
        t, [&delivered, t](const mw::MessageHeader&, const int&) {
          ++delivered[t];
        }));
  }
  int tapped = 0;
  auto tap = bus.add_tap(
      [&](const mw::MessageHeader&, const std::any&, std::type_index) {
        ++tapped;
      });

  std::map<std::string, int> published;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const auto& topic = topics[rng.uniform_index(topics.size())];
    bus.publish(topic, i, "fuzzer", static_cast<double>(i));
    ++published[topic];
  }
  EXPECT_EQ(tapped, n);
  for (const auto& t : topics) {
    EXPECT_EQ(delivered[t], published[t]) << t;
  }
  EXPECT_EQ(bus.messages_published(), static_cast<std::uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BusTrafficProperty,
                         ::testing::Values(3u, 17u, 170u));

}  // namespace

// ---------------------------------------------------------------------------
// Comm link: quality profile properties across configurations.
// ---------------------------------------------------------------------------

namespace {

class CommLinkProperties
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(CommLinkProperties, QualityMonotoneAndBounded) {
  sim::CommLinkConfig cfg;
  cfg.nominal_range_m = GetParam().first;
  cfg.max_range_m = GetParam().second;
  sim::CommLink link(cfg);
  double prev = 1.0;
  for (double d = 0.0; d <= cfg.max_range_m * 1.2; d += cfg.max_range_m / 50) {
    const double q = link.quality(d);
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
    EXPECT_LE(q, prev + 1e-12);
    prev = q;
  }
  const double r = link.usable_range_m();
  EXPECT_GT(r, cfg.nominal_range_m);
  EXPECT_LT(r, cfg.max_range_m);
  EXPECT_NEAR(link.quality(r), cfg.usable_threshold, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RangeConfigs, CommLinkProperties,
                         ::testing::Values(std::pair{100.0, 300.0},
                                           std::pair{500.0, 1500.0},
                                           std::pair{50.0, 5000.0}));

// ---------------------------------------------------------------------------
// Coverage tracker: marking is monotone and idempotent across cell sizes.
// ---------------------------------------------------------------------------

class CoverageTrackerProperties : public ::testing::TestWithParam<double> {};

TEST_P(CoverageTrackerProperties, MonotoneAndIdempotent) {
  mathx::Rng rng(881);
  sar::CoverageTracker tracker({0.0, 200.0, 0.0, 200.0}, GetParam());
  double prev = 0.0;
  for (int i = 0; i < 40; ++i) {
    sim::Footprint fp;
    fp.center_east_m = rng.uniform(0.0, 200.0);
    fp.center_north_m = rng.uniform(0.0, 200.0);
    fp.half_width_m = rng.uniform(5.0, 40.0);
    fp.half_height_m = rng.uniform(5.0, 40.0);
    tracker.mark(fp);
    const double now = tracker.fraction_covered();
    EXPECT_GE(now, prev - 1e-12);  // marking never un-covers
    const std::size_t covered = tracker.cells_covered();
    tracker.mark(fp);  // idempotent
    EXPECT_EQ(tracker.cells_covered(), covered);
    prev = now;
  }
  EXPECT_LE(prev, 1.0);
}

INSTANTIATE_TEST_SUITE_P(CellSizes, CoverageTrackerProperties,
                         ::testing::Values(2.0, 5.0, 12.5, 33.0));

// ---------------------------------------------------------------------------
// Person tracker: invariants under random detection streams.
// ---------------------------------------------------------------------------

class TrackerStreamProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrackerStreamProperties, HitsBoundConfirmationAndIdsUnique) {
  mathx::Rng rng(GetParam());
  perception::TrackerConfig cfg;
  cfg.confirm_hits = 3;
  perception::PersonTracker tracker(cfg);
  for (int frame = 0; frame < 80; ++frame) {
    std::vector<perception::Detection> dets;
    const auto n = rng.uniform_index(4);
    for (std::size_t i = 0; i < n; ++i) {
      perception::Detection d;
      d.confidence = rng.uniform(0.1, 0.99);
      d.estimated_position = {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0),
                              0.0};
      dets.push_back(d);
    }
    tracker.update(dets);
    std::set<std::size_t> ids;
    for (const auto& t : tracker.tracks()) {
      EXPECT_TRUE(ids.insert(t.id).second) << "duplicate track id";
      EXPECT_GE(t.hits, 1u);
      if (t.confirmed) {
        EXPECT_GE(t.hits, cfg.confirm_hits);
      } else {
        EXPECT_LE(t.misses, cfg.max_misses + 1);
      }
    }
  }
  EXPECT_EQ(tracker.frames_processed(), 80u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackerStreamProperties,
                         ::testing::Values(5u, 55u, 555u));

}  // namespace

// ---------------------------------------------------------------------------
// Histogram quantiles vs. exact sample quantiles.
//
// A bucketed histogram only knows which bucket each sample fell into, so its
// quantile estimate can never be more than one bucket width away from the
// exact empirical quantile over the same samples — provided the bucket edges
// are clamped to the observed min/max (the PR-3 bugfix). These properties
// sweep random sample sets, including negative values and all-overflow mass.
// ---------------------------------------------------------------------------
#include "sesame/mathx/stats.hpp"
#include "sesame/obs/metrics.hpp"

namespace {

class HistogramQuantileProperties : public ::testing::TestWithParam<unsigned> {};

TEST_P(HistogramQuantileProperties, WithinOneBucketWidthOfExactQuantile) {
  sesame::mathx::Rng rng(GetParam());
  const std::vector<double> bounds = {-5.0, -2.0, 0.0, 2.0, 5.0};
  sesame::obs::Histogram h(bounds);

  std::vector<double> samples;
  for (int i = 0; i < 400; ++i) {
    // Uniform over [-9, 9]: exercises every finite bucket plus the
    // underflow-below-first-bound and overflow-above-last-bound regions.
    const double x = rng.uniform(-9.0, 9.0);
    samples.push_back(x);
    h.observe(x);
  }

  // Worst-case bucket width once edges are clamped to [min, max]: walk the
  // effective edge list {min, bounds..., max} exactly as quantile() does.
  const double lo_edge = h.min_observed();
  const double hi_edge = h.max_observed();
  std::vector<double> edges = {lo_edge};
  for (double b : bounds) {
    if (b > lo_edge && b < hi_edge) edges.push_back(b);
  }
  edges.push_back(hi_edge);
  double max_width = 0.0;
  for (std::size_t i = 1; i < edges.size(); ++i) {
    max_width = std::max(max_width, edges[i] - edges[i - 1]);
  }

  for (double q : {0.0, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    const double exact = sesame::mathx::quantile(samples, q);
    const double est = h.quantile(q);
    EXPECT_NEAR(est, exact, max_width + 1e-9)
        << "q=" << q << " seed=" << GetParam();
    // The estimate must also stay inside the observed range.
    EXPECT_GE(est, h.min_observed());
    EXPECT_LE(est, h.max_observed());
  }
}

TEST_P(HistogramQuantileProperties, AllOverflowMassStaysInObservedRange) {
  sesame::mathx::Rng rng(GetParam());
  sesame::obs::Histogram h({1.0, 2.0});  // every sample lands past the bounds
  std::vector<double> samples;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(50.0, 60.0);
    samples.push_back(x);
    h.observe(x);
  }
  for (double q : {0.0, 0.5, 0.9, 1.0}) {
    const double exact = sesame::mathx::quantile(samples, q);
    // One bucket: [min, max]. The estimate interpolates inside it, so it can
    // differ from exact by at most the observed spread — never by the old
    // bug's answer of bounds.back() (2.0) regardless of the data.
    EXPECT_NEAR(h.quantile(q), exact, h.max_observed() - h.min_observed() + 1e-9);
    EXPECT_GE(h.quantile(q), 50.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramQuantileProperties,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace

// ---------------------------------------------------------------------------
// Histogram merge vs. the concatenated-sample oracle.
//
// merge(a, b) must leave the histogram in exactly the state it would have
// reached by observing a's and b's samples directly: same bucket counts,
// same observed extremes, same quantiles. The sweeps include an empty side
// (must be a perfect no-op on extremes) and all-overflow mass (extremes far
// beyond the last bucket bound must survive the merge).
// ---------------------------------------------------------------------------
namespace {

class HistogramMergeProperties : public ::testing::TestWithParam<unsigned> {};

TEST_P(HistogramMergeProperties, MergeMatchesConcatenatedSampleOracle) {
  sesame::mathx::Rng rng(GetParam());
  const std::vector<double> bounds = {-2.0, 0.0, 3.0, 8.0};

  // Random split sizes, including deliberately empty and one-sided splits.
  for (const auto& [na, nb] : {std::pair<int, int>{60, 40},
                              {0, 50},
                              {50, 0},
                              {1, 99},
                              {0, 0}}) {
    sesame::obs::Histogram a(bounds);
    sesame::obs::Histogram b(bounds);
    sesame::obs::Histogram oracle(bounds);
    for (int i = 0; i < na; ++i) {
      const double x = rng.uniform(-12.0, 12.0);
      a.observe(x);
      oracle.observe(x);
    }
    for (int i = 0; i < nb; ++i) {
      const double x = rng.uniform(-12.0, 12.0);
      b.observe(x);
      oracle.observe(x);
    }

    a.merge(b);
    EXPECT_EQ(a.count(), oracle.count());
    EXPECT_EQ(a.bucket_counts(), oracle.bucket_counts());
    EXPECT_DOUBLE_EQ(a.min_observed(), oracle.min_observed())
        << "na=" << na << " nb=" << nb << " seed=" << GetParam();
    EXPECT_DOUBLE_EQ(a.max_observed(), oracle.max_observed());
    EXPECT_NEAR(a.sum(), oracle.sum(), 1e-9);
    for (double q : {0.0, 0.1, 0.5, 0.9, 1.0}) {
      EXPECT_DOUBLE_EQ(a.quantile(q), oracle.quantile(q)) << "q=" << q;
    }
  }
}

TEST_P(HistogramMergeProperties, AllOverflowSideKeepsExtremesPastBounds) {
  sesame::mathx::Rng rng(GetParam());
  const std::vector<double> bounds = {1.0, 2.0};
  sesame::obs::Histogram overflow_only(bounds);
  sesame::obs::Histogram empty(bounds);
  sesame::obs::Histogram oracle(bounds);

  double true_min = std::numeric_limits<double>::infinity();
  double true_max = -true_min;
  for (int i = 0; i < 40; ++i) {
    const double x = rng.uniform(100.0, 200.0);
    overflow_only.observe(x);
    oracle.observe(x);
    true_min = std::min(true_min, x);
    true_max = std::max(true_max, x);
  }

  // Merging the empty histogram in either direction must not pull the
  // extremes back to the bucket bounds (the 0-defaults of an empty sample).
  overflow_only.merge(empty);
  EXPECT_DOUBLE_EQ(overflow_only.min_observed(), true_min);
  EXPECT_DOUBLE_EQ(overflow_only.max_observed(), true_max);

  empty.merge(overflow_only);
  EXPECT_DOUBLE_EQ(empty.min_observed(), true_min);
  EXPECT_DOUBLE_EQ(empty.max_observed(), true_max);
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(empty.quantile(q), oracle.quantile(q));
    EXPECT_GE(empty.quantile(q), true_min);  // never the 2.0 bucket edge
  }
}

TEST_P(HistogramMergeProperties, RegistrySnapshotMergeMatchesOracleBothOrders) {
  sesame::mathx::Rng rng(GetParam());
  const std::vector<double> bounds = {0.0, 5.0};

  sesame::obs::MetricsRegistry run1;
  sesame::obs::MetricsRegistry run2;
  sesame::obs::Histogram oracle(bounds);
  for (int i = 0; i < 30; ++i) {
    const double x = rng.uniform(-20.0, 20.0);
    (i % 2 == 0 ? run1 : run2).histogram("m", {}, bounds).observe(x);
    oracle.observe(x);
  }
  run1.histogram("only_in_run1", {}, bounds);  // registered but empty

  for (const bool reversed : {false, true}) {
    sesame::obs::MetricsRegistry merged;
    merged.merge(reversed ? run2.snapshot() : run1.snapshot());
    merged.merge(reversed ? run1.snapshot() : run2.snapshot());
    const auto snap = merged.snapshot();
    const auto* h = snap.find("m");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->observations, oracle.count());
    EXPECT_DOUBLE_EQ(h->min_observed, oracle.min_observed())
        << "reversed=" << reversed << " seed=" << GetParam();
    EXPECT_DOUBLE_EQ(h->max_observed, oracle.max_observed());
    const auto* e = snap.find("only_in_run1");
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->observations, 0u);
    EXPECT_DOUBLE_EQ(e->min_observed, 0.0);  // empty-sample convention
    EXPECT_DOUBLE_EQ(e->max_observed, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramMergeProperties,
                         ::testing::Values(7u, 77u, 777u));

}  // namespace
