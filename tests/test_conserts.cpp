// Tests for the ConSerts engine: condition algebra, guarantee selection,
// network composition/topological evaluation, the paper's Fig. 1 UAV
// network, and the mission decider.
#include <gtest/gtest.h>

#include "sesame/conserts/consert.hpp"
#include "sesame/conserts/uav_network.hpp"

namespace cs = sesame::conserts;
namespace g = sesame::conserts::guarantees;

TEST(Condition, EvidenceLeaf) {
  cs::EvaluationContext ctx;
  auto c = cs::Condition::evidence("x");
  EXPECT_FALSE(c->evaluate(ctx));  // unset evidence is false
  ctx.set_evidence("x", true);
  EXPECT_TRUE(c->evaluate(ctx));
  ctx.set_evidence("x", false);
  EXPECT_FALSE(c->evaluate(ctx));
}

TEST(Condition, DemandLeaf) {
  cs::EvaluationContext ctx;
  auto c = cs::Condition::demand("nav", "accurate");
  EXPECT_FALSE(c->evaluate(ctx));
  ctx.grant("nav", "accurate");
  EXPECT_TRUE(c->evaluate(ctx));
  ctx.clear_grants();
  EXPECT_FALSE(c->evaluate(ctx));
}

TEST(Condition, GatesAndConstants) {
  cs::EvaluationContext ctx;
  ctx.set_evidence("a", true);
  ctx.set_evidence("b", false);
  auto a = cs::Condition::evidence("a");
  auto b = cs::Condition::evidence("b");
  EXPECT_FALSE(cs::Condition::all_of({a, b})->evaluate(ctx));
  EXPECT_TRUE(cs::Condition::any_of({a, b})->evaluate(ctx));
  EXPECT_TRUE(cs::Condition::negate(b)->evaluate(ctx));
  EXPECT_TRUE(cs::Condition::constant(true)->evaluate(ctx));
  EXPECT_FALSE(cs::Condition::constant(false)->evaluate(ctx));
  EXPECT_THROW(cs::Condition::all_of({}), std::invalid_argument);
  EXPECT_THROW(cs::Condition::negate(nullptr), std::invalid_argument);
}

TEST(Condition, CollectsReferences) {
  auto c = cs::Condition::all_of(
      {cs::Condition::evidence("e1"),
       cs::Condition::any_of({cs::Condition::evidence("e2"),
                              cs::Condition::demand("cs1", "g1")})});
  std::set<std::string> evidence;
  c->collect_evidence(evidence);
  EXPECT_EQ(evidence.size(), 2u);
  std::set<std::pair<std::string, std::string>> demands;
  c->collect_demands(demands);
  ASSERT_EQ(demands.size(), 1u);
  EXPECT_EQ(demands.begin()->first, "cs1");
}

TEST(ConSert, GuaranteeSelectionByRank) {
  cs::ConSert c("nav");
  c.add_guarantee("strong", 0, cs::Condition::evidence("good"));
  c.add_guarantee("weak", 5, cs::Condition::constant(true));
  cs::EvaluationContext ctx;
  EXPECT_EQ(c.best(ctx), "weak");
  ctx.set_evidence("good", true);
  EXPECT_EQ(c.best(ctx), "strong");
  EXPECT_EQ(c.satisfied(ctx).size(), 2u);
}

TEST(ConSert, NoGuaranteeSatisfied) {
  cs::ConSert c("x");
  c.add_guarantee("g", 0, cs::Condition::evidence("never"));
  cs::EvaluationContext ctx;
  EXPECT_FALSE(c.best(ctx).has_value());
  EXPECT_TRUE(c.satisfied(ctx).empty());
}

TEST(ConSert, Validation) {
  EXPECT_THROW(cs::ConSert(""), std::invalid_argument);
  cs::ConSert c("x");
  c.add_guarantee("g", 0, cs::Condition::constant(true));
  EXPECT_THROW(c.add_guarantee("g", 1, cs::Condition::constant(true)),
               std::invalid_argument);
  EXPECT_THROW(c.add_guarantee("h", 1, nullptr), std::invalid_argument);
  EXPECT_TRUE(c.has_guarantee("g"));
  EXPECT_FALSE(c.has_guarantee("h"));
}

TEST(ConSertNetwork, EvaluatesDependenciesFirst) {
  cs::ConSertNetwork net;
  cs::ConSert leafc("leaf");
  leafc.add_guarantee("ok", 0, cs::Condition::evidence("sensor_ok"));
  net.add(std::move(leafc));
  cs::ConSert top("top");
  top.add_guarantee("safe", 0, cs::Condition::demand("leaf", "ok"));
  net.add(std::move(top));

  cs::EvaluationContext ctx;
  ctx.set_evidence("sensor_ok", true);
  const auto eval = net.evaluate(ctx);
  EXPECT_TRUE(eval.grants.count({"leaf", "ok"}));
  EXPECT_TRUE(eval.grants.count({"top", "safe"}));
  EXPECT_EQ(eval.best.at("top"), "safe");
  // Dependency order respected.
  ASSERT_EQ(eval.order.size(), 2u);
  EXPECT_EQ(eval.order[0], "leaf");
}

TEST(ConSertNetwork, UnknownDemandThrows) {
  cs::ConSertNetwork net;
  cs::ConSert top("top");
  top.add_guarantee("g", 0, cs::Condition::demand("ghost", "x"));
  net.add(std::move(top));
  cs::EvaluationContext ctx;
  EXPECT_THROW(net.evaluate(ctx), std::runtime_error);
}

TEST(ConSertNetwork, CycleDetection) {
  cs::ConSertNetwork net;
  cs::ConSert a("a"), b("b");
  a.add_guarantee("ga", 0, cs::Condition::demand("b", "gb"));
  b.add_guarantee("gb", 0, cs::Condition::demand("a", "ga"));
  net.add(std::move(a));
  net.add(std::move(b));
  cs::EvaluationContext ctx;
  EXPECT_THROW(net.evaluate(ctx), std::runtime_error);
}

TEST(ConSertNetwork, DuplicateNameRejected) {
  cs::ConSertNetwork net;
  net.add(cs::ConSert("x"));
  EXPECT_THROW(net.add(cs::ConSert("x")), std::invalid_argument);
  EXPECT_TRUE(net.contains("x"));
  EXPECT_THROW(net.at("y"), std::out_of_range);
}

namespace {

/// Evaluates the Fig. 1 network for one UAV under the given evidence.
cs::UavAction evaluate_uav(const cs::UavEvidence& e) {
  cs::ConSertNetwork net;
  cs::add_uav_conserts(net, "u1");
  cs::EvaluationContext ctx;
  cs::apply_evidence(ctx, "u1", e);
  const auto eval = net.evaluate(ctx);
  return cs::uav_action(eval, "u1");
}

cs::UavEvidence nominal_evidence() {
  cs::UavEvidence e;
  e.gps_quality_good = true;
  e.no_security_attack = true;
  e.vision_sensor_healthy = true;
  e.safeml_confidence_high = true;
  e.comm_link_good = true;
  e.nearby_uav_available = true;
  e.reliability_high = true;
  return e;
}

}  // namespace

TEST(UavNetwork, NominalEvidenceContinuesExtended) {
  EXPECT_EQ(evaluate_uav(nominal_evidence()), cs::UavAction::kContinueExtended);
}

TEST(UavNetwork, MediumReliabilityStillContinues) {
  auto e = nominal_evidence();
  e.reliability_high = false;
  e.reliability_medium = true;
  EXPECT_EQ(evaluate_uav(e), cs::UavAction::kContinue);
}

TEST(UavNetwork, SecurityAttackRemovesGpsNavigation) {
  auto e = nominal_evidence();
  e.no_security_attack = false;  // Security EDDI flags an attack
  // Collaborative navigation remains -> continue (not extended).
  EXPECT_EQ(evaluate_uav(e), cs::UavAction::kContinue);
}

TEST(UavNetwork, AttackWithoutCommFallsBackToVision) {
  auto e = nominal_evidence();
  e.no_security_attack = false;
  e.comm_link_good = false;  // no collaborative channel
  // Vision navigation (<1 m) + high reliability -> hold (nav too weak to
  // continue the mission, strong enough to wait).
  EXPECT_EQ(evaluate_uav(e), cs::UavAction::kHold);
}

TEST(UavNetwork, LowReliabilityDegradesToHold) {
  auto e = nominal_evidence();
  e.reliability_high = false;
  e.reliability_low = true;
  EXPECT_EQ(evaluate_uav(e), cs::UavAction::kHold);
}

TEST(UavNetwork, NavigationOnlyReturnsToBase) {
  auto e = nominal_evidence();
  e.reliability_high = false;  // no reliability estimate at all
  EXPECT_EQ(evaluate_uav(e), cs::UavAction::kReturnToBase);
}

TEST(UavNetwork, NothingSatisfiedEmergencyLands) {
  cs::UavEvidence e;  // everything false
  EXPECT_EQ(evaluate_uav(e), cs::UavAction::kEmergencyLand);
}

TEST(UavNetwork, ThreeUavNetworkEvaluates) {
  cs::ConSertNetwork net;
  for (const auto* name : {"u1", "u2", "u3"}) {
    cs::add_uav_conserts(net, name);
  }
  EXPECT_EQ(net.size(), 18u);
  cs::EvaluationContext ctx;
  cs::apply_evidence(ctx, "u1", nominal_evidence());
  auto degraded = nominal_evidence();
  degraded.reliability_high = false;
  degraded.reliability_low = true;
  cs::apply_evidence(ctx, "u2", degraded);
  cs::apply_evidence(ctx, "u3", cs::UavEvidence{});
  const auto eval = net.evaluate(ctx);
  EXPECT_EQ(cs::uav_action(eval, "u1"), cs::UavAction::kContinueExtended);
  EXPECT_EQ(cs::uav_action(eval, "u2"), cs::UavAction::kHold);
  EXPECT_EQ(cs::uav_action(eval, "u3"), cs::UavAction::kEmergencyLand);
}

TEST(MissionDecider, AllContinuingCompletesAsPlanned) {
  EXPECT_EQ(cs::decide_mission({cs::UavAction::kContinue,
                                cs::UavAction::kContinueExtended,
                                cs::UavAction::kContinue}),
            cs::MissionDecision::kCompleteAsPlanned);
}

TEST(MissionDecider, DropoutWithTakerRedistributes) {
  EXPECT_EQ(cs::decide_mission({cs::UavAction::kContinueExtended,
                                cs::UavAction::kEmergencyLand,
                                cs::UavAction::kContinue}),
            cs::MissionDecision::kRedistributeTasks);
}

TEST(MissionDecider, DropoutWithoutTakerCannotComplete) {
  EXPECT_EQ(cs::decide_mission({cs::UavAction::kContinue,
                                cs::UavAction::kReturnToBase,
                                cs::UavAction::kContinue}),
            cs::MissionDecision::kCannotComplete);
}

TEST(MissionDecider, EmptyFleetCannotComplete) {
  EXPECT_EQ(cs::decide_mission({}), cs::MissionDecision::kCannotComplete);
}

TEST(ActionNames, Distinct) {
  std::set<std::string> names;
  for (auto a : {cs::UavAction::kContinueExtended, cs::UavAction::kContinue,
                 cs::UavAction::kHold, cs::UavAction::kReturnToBase,
                 cs::UavAction::kEmergencyLand}) {
    names.insert(cs::uav_action_name(a));
  }
  EXPECT_EQ(names.size(), 5u);
  EXPECT_EQ(cs::mission_decision_name(cs::MissionDecision::kRedistributeTasks),
            "RedistributeTasks");
}

TEST(ExplainGuarantee, ListsMissingEvidenceAndDemands) {
  cs::ConSertNetwork net;
  cs::add_uav_conserts(net, "u1");
  auto e = nominal_evidence();
  e.gps_quality_good = false;       // breaks the GPS localization guarantee
  e.no_security_attack = false;
  cs::EvaluationContext ctx;
  cs::apply_evidence(ctx, "u1", e);
  net.evaluate(ctx);  // populate grants

  const auto names = cs::uav_consert_names("u1");
  const auto gps_expl = cs::explain_guarantee(
      net.at(names.gps_localization), g::kGpsAccurate, ctx);
  EXPECT_FALSE(gps_expl.satisfied);
  ASSERT_EQ(gps_expl.missing_evidence.size(), 2u);
  EXPECT_TRUE(gps_expl.missing_demands.empty());

  // The navigation high-performance guarantee fails through its demand.
  const auto nav_expl = cs::explain_guarantee(
      net.at(names.navigation), g::kNavHighPerformance, ctx);
  EXPECT_FALSE(nav_expl.satisfied);
  ASSERT_EQ(nav_expl.missing_demands.size(), 1u);
  EXPECT_EQ(nav_expl.missing_demands[0].first, names.gps_localization);
}

TEST(ExplainGuarantee, SatisfiedGuaranteeHasNothingMissing) {
  cs::ConSertNetwork net;
  cs::add_uav_conserts(net, "u1");
  cs::EvaluationContext ctx;
  cs::apply_evidence(ctx, "u1", nominal_evidence());
  net.evaluate(ctx);
  const auto names = cs::uav_consert_names("u1");
  const auto expl = cs::explain_guarantee(net.at(names.uav),
                                          g::kContinueExtended, ctx);
  EXPECT_TRUE(expl.satisfied);
  EXPECT_TRUE(expl.missing_evidence.empty());
  EXPECT_TRUE(expl.missing_demands.empty());
}

TEST(ExplainGuarantee, UnknownGuaranteeThrows) {
  cs::ConSert c("x");
  c.add_guarantee("g", 0, cs::Condition::constant(true));
  cs::EvaluationContext ctx;
  EXPECT_THROW(cs::explain_guarantee(c, "nope", ctx), std::invalid_argument);
}

#include "sesame/conserts/assurance_trace.hpp"

TEST(AssuranceTrace, RecordsGuaranteeTransitions) {
  cs::ConSertNetwork net;
  cs::add_uav_conserts(net, "u1");
  cs::AssuranceTrace trace(net);

  auto evaluate_with = [&](const cs::UavEvidence& e, double t) {
    cs::EvaluationContext ctx;
    cs::apply_evidence(ctx, "u1", e);
    trace.evaluate(ctx, t);
  };

  evaluate_with(nominal_evidence(), 0.0);
  evaluate_with(nominal_evidence(), 5.0);  // steady: no new transitions
  auto degraded = nominal_evidence();
  degraded.reliability_high = false;
  degraded.reliability_medium = true;
  evaluate_with(degraded, 10.0);

  const auto names = cs::uav_consert_names("u1");
  const auto uav_transitions = trace.transitions_of(names.uav);
  ASSERT_EQ(uav_transitions.size(), 2u);
  // Initial grant, then the degradation at t=10.
  EXPECT_EQ(uav_transitions[0].from, "");
  EXPECT_EQ(uav_transitions[0].to, g::kContinueExtended);
  EXPECT_DOUBLE_EQ(uav_transitions[1].time_s, 10.0);
  EXPECT_EQ(uav_transitions[1].to, g::kContinue);
  EXPECT_EQ(trace.current(names.uav), g::kContinue);
  EXPECT_EQ(trace.evaluations(), 3u);
}

TEST(AssuranceTrace, LossOfAllGuaranteesRecordedAsEmpty) {
  cs::ConSertNetwork net;
  cs::add_uav_conserts(net, "u1");
  cs::AssuranceTrace trace(net);
  cs::EvaluationContext ctx;
  cs::apply_evidence(ctx, "u1", nominal_evidence());
  trace.evaluate(ctx, 0.0);
  cs::EvaluationContext empty_ctx;
  cs::apply_evidence(empty_ctx, "u1", cs::UavEvidence{});
  trace.evaluate(empty_ctx, 1.0);
  const auto names = cs::uav_consert_names("u1");
  EXPECT_EQ(trace.current(names.uav), "");
  const auto ts = trace.transitions_of(names.uav);
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts[1].to, "");

  trace.clear();
  EXPECT_TRUE(trace.transitions().empty());
  EXPECT_EQ(trace.evaluations(), 0u);
}

#include "sesame/conserts/evaluation_cache.hpp"

namespace {

/// Helper: evaluation results must agree field-by-field.
void expect_same_evaluation(const cs::NetworkEvaluation& a,
                            const cs::NetworkEvaluation& b) {
  EXPECT_EQ(a.grants, b.grants);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.order, b.order);
}

}  // namespace

TEST(ConSertNetwork, EvaluationOrderIsCachedAndInvalidatedByAdd) {
  cs::ConSertNetwork net;
  cs::ConSert leafc("leaf");
  leafc.add_guarantee("ok", 0, cs::Condition::evidence("sensor_ok"));
  net.add(std::move(leafc));
  const auto& order1 = net.evaluation_order();
  ASSERT_EQ(order1.size(), 1u);
  // Same object on repeated calls (cache, not a fresh vector).
  EXPECT_EQ(&net.evaluation_order(), &order1);

  cs::ConSert top("top");
  top.add_guarantee("safe", 0, cs::Condition::demand("leaf", "ok"));
  net.add(std::move(top));
  const auto& order2 = net.evaluation_order();
  ASSERT_EQ(order2.size(), 2u);
  EXPECT_EQ(order2[0], "leaf");
  EXPECT_EQ(order2[1], "top");
}

TEST(CachedNetworkEvaluator, MatchesUncachedAcrossEvidenceSweep) {
  // The real Fig. 1 network: every evidence combination toggled one at a
  // time must produce identical grants/best/order through the cache.
  cs::ConSertNetwork net;
  cs::add_uav_conserts(net, "u1");
  cs::CachedNetworkEvaluator cached(net);

  std::vector<cs::UavEvidence> cases;
  cases.push_back(nominal_evidence());
  cases.push_back(cs::UavEvidence{});
  for (int bit = 0; bit < 6; ++bit) {
    auto e = nominal_evidence();
    switch (bit) {
      case 0: e.gps_quality_good = false; break;
      case 1: e.no_security_attack = false; break;
      case 2: e.vision_sensor_healthy = false; break;
      case 3: e.safeml_confidence_high = false; break;
      case 4: e.comm_link_good = false; break;
      case 5:
        e.reliability_high = false;
        e.reliability_low = true;
        break;
    }
    cases.push_back(e);
  }
  // Revisit earlier cases so the cache sees both hits and evidence flips.
  cases.push_back(nominal_evidence());
  cases.push_back(cases[3]);

  for (const auto& e : cases) {
    cs::EvaluationContext ctx_cached, ctx_plain;
    cs::apply_evidence(ctx_cached, "u1", e);
    cs::apply_evidence(ctx_plain, "u1", e);
    expect_same_evaluation(cached.evaluate(ctx_cached),
                           net.evaluate(ctx_plain));
  }
  EXPECT_GT(cached.hits(), 0u);
  EXPECT_GT(cached.misses(), 0u);
}

TEST(CachedNetworkEvaluator, UnchangedFootprintIsAllHits) {
  cs::ConSertNetwork net;
  cs::add_uav_conserts(net, "u1");
  cs::CachedNetworkEvaluator cached(net);

  cs::EvaluationContext ctx;
  cs::apply_evidence(ctx, "u1", nominal_evidence());
  (void)cached.evaluate(ctx);
  EXPECT_EQ(cached.hits(), 0u);
  EXPECT_EQ(cached.misses(), net.size());

  // Same evidence again: every ConSert replays its cached result.
  const auto again = cached.evaluate(ctx);
  EXPECT_EQ(cached.hits(), net.size());
  EXPECT_EQ(cached.misses(), net.size());
  EXPECT_FALSE(again.best.empty());
}

TEST(CachedNetworkEvaluator, EvidenceFlipPropagatesThroughDemands) {
  // leaf <- mid <- top demand chain: flipping the leaf's evidence must
  // re-derive the whole chain (the demand grants are part of each node's
  // input footprint).
  cs::ConSertNetwork net;
  cs::ConSert leafc("leaf");
  leafc.add_guarantee("ok", 0, cs::Condition::evidence("sensor_ok"));
  net.add(std::move(leafc));
  cs::ConSert mid("mid");
  mid.add_guarantee("ready", 0, cs::Condition::demand("leaf", "ok"));
  net.add(std::move(mid));
  cs::ConSert top("top");
  top.add_guarantee("safe", 0, cs::Condition::demand("mid", "ready"));
  net.add(std::move(top));

  cs::CachedNetworkEvaluator cached(net);
  cs::EvaluationContext ctx;
  ctx.set_evidence("sensor_ok", true);
  auto eval = cached.evaluate(ctx);
  EXPECT_TRUE(eval.grants.count({"top", "safe"}));

  ctx.set_evidence("sensor_ok", false);
  eval = cached.evaluate(ctx);
  EXPECT_FALSE(eval.grants.count({"leaf", "ok"}));
  EXPECT_FALSE(eval.grants.count({"mid", "ready"}));
  EXPECT_FALSE(eval.grants.count({"top", "safe"}));
  EXPECT_TRUE(eval.best.empty());
}

TEST(CachedNetworkEvaluator, InvalidateRebuildsAfterNetworkGrowth) {
  cs::ConSertNetwork net;
  cs::ConSert leafc("leaf");
  leafc.add_guarantee("ok", 0, cs::Condition::evidence("sensor_ok"));
  net.add(std::move(leafc));
  cs::CachedNetworkEvaluator cached(net);

  cs::EvaluationContext ctx;
  ctx.set_evidence("sensor_ok", true);
  (void)cached.evaluate(ctx);

  cs::ConSert top("top");
  top.add_guarantee("safe", 0, cs::Condition::demand("leaf", "ok"));
  net.add(std::move(top));
  cached.invalidate();

  const auto eval = cached.evaluate(ctx);
  ASSERT_EQ(eval.order.size(), 2u);
  EXPECT_TRUE(eval.grants.count({"top", "safe"}));
}

TEST(AssuranceTrace, CachedAndUncachedTracesAgree) {
  cs::ConSertNetwork net;
  cs::add_uav_conserts(net, "u1");
  cs::AssuranceTrace cached_trace(net, /*cache_evaluations=*/true);
  cs::AssuranceTrace plain_trace(net, /*cache_evaluations=*/false);

  auto degraded = nominal_evidence();
  degraded.reliability_high = false;
  degraded.reliability_low = true;
  const std::vector<cs::UavEvidence> timeline{
      nominal_evidence(), nominal_evidence(), degraded, degraded,
      nominal_evidence()};

  double t = 0.0;
  for (const auto& e : timeline) {
    cs::EvaluationContext ctx_a, ctx_b;
    cs::apply_evidence(ctx_a, "u1", e);
    cs::apply_evidence(ctx_b, "u1", e);
    expect_same_evaluation(cached_trace.evaluate(ctx_a, t),
                           plain_trace.evaluate(ctx_b, t));
    t += 5.0;
  }

  ASSERT_EQ(cached_trace.transitions().size(), plain_trace.transitions().size());
  for (std::size_t i = 0; i < cached_trace.transitions().size(); ++i) {
    const auto& a = cached_trace.transitions()[i];
    const auto& b = plain_trace.transitions()[i];
    EXPECT_EQ(a.time_s, b.time_s);
    EXPECT_EQ(a.consert, b.consert);
    EXPECT_EQ(a.from, b.from);
    EXPECT_EQ(a.to, b.to);
  }
  // The repeated-evidence steps hit the cache; the uncached trace reports 0.
  EXPECT_GT(cached_trace.cache_hits(), 0u);
  EXPECT_EQ(plain_trace.cache_hits(), 0u);
  EXPECT_EQ(plain_trace.cache_misses(), 0u);
}
