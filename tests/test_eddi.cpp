// Tests for the EDDI layer: ODE JSON round-trips, UavEddi integration of
// all monitors, uncertainty calibration, and ConSert evidence derivation.
#include <limits>

#include <gtest/gtest.h>

#include "sesame/eddi/consert_ode.hpp"
#include "sesame/eddi/ode.hpp"
#include "sesame/eddi/uav_eddi.hpp"
#include "sesame/mathx/rng.hpp"
#include "sesame/mw/bus.hpp"
#include "sesame/security/attack_tree.hpp"
#include "sesame/security/ids.hpp"

namespace eddi = sesame::eddi;
namespace ode = sesame::eddi::ode;
namespace mx = sesame::mathx;

namespace {

std::vector<std::vector<double>> make_reference(mx::Rng& rng) {
  std::vector<std::vector<double>> ref(3);
  for (int i = 0; i < 200; ++i) {
    ref[0].push_back(rng.normal(1.0, 0.1));
    ref[1].push_back(rng.normal(0.8, 0.05));
    ref[2].push_back(rng.normal(25.0, 2.0));
  }
  return ref;
}

eddi::EddiInputs nominal_inputs(mx::Rng& rng) {
  eddi::EddiInputs in;
  in.telemetry.battery_soc = 0.9;
  in.telemetry.battery_temp_c = 30.0;
  in.frame_features = {rng.normal(1.0, 0.1), rng.normal(0.8, 0.05),
                       rng.normal(25.0, 2.0)};
  in.altitude_band = sesame::sinadra::AltitudeBand::kLow;
  in.visibility = sesame::sinadra::Visibility::kGood;
  in.density = sesame::sinadra::PersonDensity::kSparse;
  in.nearby_uav_available = true;
  return in;
}

eddi::UavEddiConfig small_window_config() {
  eddi::UavEddiConfig cfg;
  cfg.safeml.window = 16;
  return cfg;
}

}  // namespace

TEST(Ode, ScalarSerialization) {
  EXPECT_EQ(ode::Value(nullptr).to_json(), "null");
  EXPECT_EQ(ode::Value(true).to_json(), "true");
  EXPECT_EQ(ode::Value(42).to_json(), "42");
  EXPECT_EQ(ode::Value(2.5).to_json(), "2.5");
  EXPECT_EQ(ode::Value("hi").to_json(), "\"hi\"");
}

TEST(Ode, NonFiniteNumbersSerializeAsNull) {
  // RFC 8259 has no NaN/Inf token; the writer clamps to null so every
  // emitted document re-parses (parse_json rejects bare "nan").
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(ode::Value(nan).to_json(), "null");
  EXPECT_EQ(ode::Value(inf).to_json(), "null");
  EXPECT_EQ(ode::Value(-inf).to_json(), "null");
  ode::Value doc;
  doc["stddev"] = nan;
  EXPECT_EQ(doc.to_json(), "{\"stddev\":null}");
  EXPECT_TRUE(ode::parse_json(doc.to_json()).at("stddev").is_null());
}

TEST(Ode, StringEscaping) {
  EXPECT_EQ(ode::Value("a\"b\\c\nd").to_json(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(Ode, ObjectAndArrayComposition) {
  ode::Value doc;
  doc["name"] = "eddi";
  doc["version"] = 1;
  ode::Value arr;
  arr.push_back("a");
  arr.push_back(2);
  doc["items"] = arr;
  EXPECT_EQ(doc.to_json(), "{\"items\":[\"a\",2],\"name\":\"eddi\",\"version\":1}");
  EXPECT_EQ(doc.at("name").as_string(), "eddi");
  EXPECT_THROW(doc.at("missing"), std::out_of_range);
}

TEST(Ode, ParseRoundTrip) {
  ode::Value doc;
  doc["models"] = ode::Value::Array{ode::Value("fta"), ode::Value(3.5)};
  doc["nested"] = ode::Value::Object{{"flag", ode::Value(true)},
                                     {"null_field", ode::Value(nullptr)}};
  const std::string json = doc.to_json();
  const ode::Value parsed = ode::parse_json(json);
  EXPECT_EQ(parsed.to_json(), json);
  EXPECT_TRUE(parsed.at("nested").at("flag").as_bool());
  EXPECT_TRUE(parsed.at("nested").at("null_field").is_null());
}

TEST(Ode, ParseHandlesWhitespaceAndEscapes) {
  const auto v = ode::parse_json(R"(  { "a" : [ 1 , -2.5e1 ] , "s" : "x\ny" } )");
  EXPECT_EQ(v.at("a").as_array()[1].as_number(), -25.0);
  EXPECT_EQ(v.at("s").as_string(), "x\ny");
}

TEST(Ode, ParseUnicodeEscape) {
  const auto v = ode::parse_json(R"("é")");
  EXPECT_EQ(v.as_string(), "\xc3\xa9");  // UTF-8 e-acute
}

TEST(Ode, ParseRejectsMalformed) {
  EXPECT_THROW(ode::parse_json("{"), std::runtime_error);
  EXPECT_THROW(ode::parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW(ode::parse_json("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(ode::parse_json("tru"), std::runtime_error);
  EXPECT_THROW(ode::parse_json("1 2"), std::runtime_error);
}

TEST(UavEddi, ValidatesConstruction) {
  mx::Rng rng(3);
  auto ref = make_reference(rng);
  EXPECT_THROW(eddi::UavEddi("", {}, ref), std::invalid_argument);
  eddi::UavEddiConfig bad;
  bad.uncertainty_floor = 0.9;
  bad.uncertainty_span = 0.5;  // floor + span > 1
  EXPECT_THROW(eddi::UavEddi("u1", bad, ref), std::invalid_argument);
  bad = {};
  bad.reliability_horizon_s = 0.0;
  EXPECT_THROW(eddi::UavEddi("u1", bad, ref), std::invalid_argument);
}

TEST(UavEddi, EvidenceRequiresTick) {
  mx::Rng rng(5);
  eddi::UavEddi e("u1", small_window_config(), make_reference(rng));
  EXPECT_THROW(e.consert_evidence(), std::logic_error);
}

TEST(UavEddi, NominalTickYieldsHealthyEvidence) {
  mx::Rng rng(7);
  eddi::UavEddi e("u1", small_window_config(), make_reference(rng));
  for (int i = 0; i < 20; ++i) e.tick(nominal_inputs(rng));
  const auto& a = e.assessment();
  EXPECT_EQ(a.reliability.level, sesame::safedrones::ReliabilityLevel::kHigh);
  ASSERT_TRUE(a.safeml.has_value());
  EXPECT_EQ(a.safeml->level, sesame::safeml::ConfidenceLevel::kHigh);

  const auto ev = e.consert_evidence();
  EXPECT_TRUE(ev.gps_quality_good);
  EXPECT_TRUE(ev.no_security_attack);  // no security EDDI attached
  EXPECT_TRUE(ev.safeml_confidence_high);
  EXPECT_TRUE(ev.reliability_high);
  EXPECT_FALSE(ev.reliability_low);
}

TEST(UavEddi, BatteryFaultRaisesCumulativeFailureProbability) {
  // The battery term is cumulative: P(fail) rises monotonically with time
  // spent in the hot/low-charge regime (the Fig. 5 curve).
  mx::Rng rng(9);
  eddi::UavEddi e("u1", small_window_config(), make_reference(rng));
  auto in = nominal_inputs(rng);
  in.telemetry.battery_soc = 0.2;   // critical band
  in.telemetry.battery_temp_c = 75.0;
  in.dt_s = 5.0;
  double prev = -1.0;
  for (int i = 0; i < 60; ++i) {  // 300 s in the faulted regime
    e.tick(in);
    const double p = e.assessment().reliability.probability_of_failure;
    EXPECT_GE(p, prev - 1e-9);
    prev = p;
  }
  const auto ev = e.consert_evidence();
  EXPECT_FALSE(ev.reliability_high);
  EXPECT_TRUE(ev.reliability_low || ev.reliability_medium);
  EXPECT_GT(prev, 0.5);
  EXPECT_TRUE(e.assessment().reliability.abort_recommended);
}

TEST(UavEddi, ShiftedFeaturesRaiseUncertainty) {
  mx::Rng rng(11);
  eddi::UavEddi e("u1", small_window_config(), make_reference(rng));
  for (int i = 0; i < 20; ++i) e.tick(nominal_inputs(rng));
  const double nominal_u = e.assessment().sar_uncertainty;

  // Shift the frame features hard (high-altitude regime).
  for (int i = 0; i < 20; ++i) {
    auto in = nominal_inputs(rng);
    in.frame_features = {rng.normal(0.3, 0.1), rng.normal(0.4, 0.05),
                         rng.normal(8.0, 2.0)};
    in.altitude_band = sesame::sinadra::AltitudeBand::kHigh;
    e.tick(in);
  }
  const double shifted_u = e.assessment().sar_uncertainty;
  EXPECT_GT(shifted_u, nominal_u + 0.05);
  EXPECT_GT(shifted_u, 0.9);  // paper: exceeds the 90% threshold up high
  EXPECT_TRUE(e.assessment().uncertainty_exceeded);
  EXPECT_FALSE(e.consert_evidence().safeml_confidence_high);
}

TEST(UavEddi, NominalUncertaintyNearPaperFloor) {
  // After descending, the paper reports ~75% uncertainty: nominal inputs
  // should sit near the calibrated floor, below the 90% threshold.
  mx::Rng rng(13);
  eddi::UavEddi e("u1", small_window_config(), make_reference(rng));
  for (int i = 0; i < 30; ++i) e.tick(nominal_inputs(rng));
  EXPECT_LT(e.assessment().sar_uncertainty, 0.85);
  EXPECT_GT(e.assessment().sar_uncertainty, 0.70);
  EXPECT_FALSE(e.assessment().uncertainty_exceeded);
}

TEST(UavEddi, DeepKnowledgeAttachment) {
  mx::Rng rng(17);
  auto model = std::make_shared<sesame::deepknowledge::Mlp>(
      std::vector<std::size_t>{4, 8, 1}, rng);
  std::vector<std::vector<double>> train, shifted;
  for (int i = 0; i < 100; ++i) {
    train.push_back({rng.normal(1.0, 0.2), rng.normal(0.9, 0.05),
                     rng.normal(25.0, 3.0), rng.normal(0.8, 0.05)});
    shifted.push_back({rng.normal(3.0, 0.2), rng.normal(0.4, 0.05),
                       rng.normal(8.0, 3.0), rng.normal(0.4, 0.05)});
  }
  auto analyzer = std::make_shared<sesame::deepknowledge::Analyzer>(
      *model, train, shifted);

  eddi::UavEddi e("u1", small_window_config(), make_reference(rng));
  EXPECT_THROW(e.attach_deepknowledge(nullptr, analyzer), std::invalid_argument);
  e.attach_deepknowledge(model, analyzer, 8);

  for (int i = 0; i < 20; ++i) {
    auto in = nominal_inputs(rng);
    in.detection_features = {train[static_cast<std::size_t>(i) % train.size()]};
    e.tick(in);
  }
  ASSERT_TRUE(e.assessment().deepknowledge.has_value());
  EXPECT_LE(e.assessment().deepknowledge->uncertainty, 1.0);
}

TEST(UavEddi, SecurityAttachmentDrivesEvidence) {
  mx::Rng rng(19);
  sesame::mw::Bus bus;
  sesame::security::IntrusionDetectionSystem ids(bus);
  ids.authorize("uav/u1/position_fix", "collaborative_localization");
  auto security = std::make_shared<sesame::security::SecurityEddi>(
      bus, sesame::security::make_spoofing_attack_tree());

  eddi::UavEddi e("u1", small_window_config(), make_reference(rng));
  e.attach_security(security);
  e.tick(nominal_inputs(rng));
  EXPECT_TRUE(e.consert_evidence().no_security_attack);

  // Attack traffic arrives.
  bus.publish("uav/u1/position_fix", sesame::geo::GeoPoint{}, "attacker", 1.0);
  EXPECT_TRUE(e.attack_detected());
  EXPECT_FALSE(e.consert_evidence().no_security_attack);
}

TEST(UavEddi, OdeExportListsModels) {
  mx::Rng rng(23);
  eddi::UavEddi e("uav7", small_window_config(), make_reference(rng));
  const auto doc = e.to_ode();
  EXPECT_EQ(doc.at("system").as_string(), "uav7");
  EXPECT_EQ(doc.at("artefact").as_string(), "EDDI");
  const auto& models = doc.at("models").as_array();
  ASSERT_GE(models.size(), 3u);  // SafeDrones, SafeML, SINADRA at minimum
  // Round-trips through the parser.
  const auto parsed = ode::parse_json(doc.to_json());
  EXPECT_EQ(parsed.to_json(), doc.to_json());
}

TEST(ConsertOde, ExportsFullUavNetwork) {
  sesame::conserts::ConSertNetwork net;
  sesame::conserts::add_uav_conserts(net, "uav1");
  const auto doc = sesame::eddi::consert_network_to_ode(net);
  EXPECT_EQ(doc.at("artefact").as_string(), "ConSertNetwork");
  EXPECT_EQ(doc.at("consert_count").as_number(), 6.0);
  const auto& conserts = doc.at("conserts").as_array();
  ASSERT_EQ(conserts.size(), 6u);
  // The navigation ConSert demands localization guarantees.
  bool found_nav = false;
  for (const auto& c : conserts) {
    if (c.at("name").as_string() != "uav1/navigation") continue;
    found_nav = true;
    const auto& guarantees = c.at("guarantees").as_array();
    EXPECT_EQ(guarantees.size(), 4u);
    bool has_demand = false;
    for (const auto& g : guarantees) {
      if (!g.at("demands").as_array().empty()) has_demand = true;
    }
    EXPECT_TRUE(has_demand);
  }
  EXPECT_TRUE(found_nav);
  // Round-trips through the parser.
  const auto parsed = sesame::eddi::ode::parse_json(doc.to_json());
  EXPECT_EQ(parsed.to_json(), doc.to_json());
}

TEST(ConsertOde, EmptyNetworkExports) {
  sesame::conserts::ConSertNetwork net;
  const auto doc = sesame::eddi::consert_network_to_ode(net);
  EXPECT_EQ(doc.at("consert_count").as_number(), 0.0);
  EXPECT_TRUE(doc.at("conserts").as_array().empty());
}

TEST(ConsertOde, AssuranceTraceExport) {
  std::vector<sesame::conserts::GuaranteeTransition> transitions{
      {0.0, "u1/uav", "", "continue_mission_take_over_tasks"},
      {42.0, "u1/uav", "continue_mission_take_over_tasks", ""},
  };
  const auto doc = sesame::eddi::assurance_trace_to_ode(transitions);
  EXPECT_EQ(doc.at("artefact").as_string(), "AssuranceTrace");
  EXPECT_EQ(doc.at("transition_count").as_number(), 2.0);
  const auto& items = doc.at("transitions").as_array();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_TRUE(items[0].at("from").is_null());   // empty -> null
  EXPECT_TRUE(items[1].at("to").is_null());
  EXPECT_DOUBLE_EQ(items[1].at("time_s").as_number(), 42.0);
  // Round-trips.
  const auto parsed = sesame::eddi::ode::parse_json(doc.to_json());
  EXPECT_EQ(parsed.to_json(), doc.to_json());
}

TEST(Ode, ControlCharacterRoundTrip) {
  ode::Value v(std::string("bell\x07tab\tend"));
  const std::string json = v.to_json();
  EXPECT_NE(json.find("\\u0007"), std::string::npos);
  EXPECT_EQ(ode::parse_json(json).as_string(), "bell\x07tab\tend");
}

TEST(Ode, DeeplyNestedStructuresParse) {
  std::string json = "1";
  for (int i = 0; i < 60; ++i) json = "[" + json + "]";
  auto v = ode::parse_json(json);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(v.is_array());
    ASSERT_EQ(v.as_array().size(), 1u);
    ode::Value inner = v.as_array()[0];  // copy before reassigning v
    v = std::move(inner);
  }
  EXPECT_DOUBLE_EQ(v.as_number(), 1.0);
}
