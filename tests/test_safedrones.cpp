// Tests for SafeDrones: propulsion Markov model with reconfiguration,
// temperature-accelerated battery model, processor/comms models, and the
// UAV-level reliability monitor with its fault-tree composition.
#include <cmath>

#include <gtest/gtest.h>

#include "sesame/safedrones/models.hpp"
#include "sesame/safedrones/uav_reliability.hpp"

namespace sd = sesame::safedrones;

TEST(Airframe, RotorCounts) {
  EXPECT_EQ(sd::rotor_count(sd::Airframe::kQuad), 4u);
  EXPECT_EQ(sd::rotor_count(sd::Airframe::kHexa), 6u);
  EXPECT_EQ(sd::rotor_count(sd::Airframe::kOcta), 8u);
}

TEST(Airframe, TolerableFailures) {
  EXPECT_EQ(sd::tolerable_motor_failures(sd::Airframe::kQuad, true), 0u);
  EXPECT_EQ(sd::tolerable_motor_failures(sd::Airframe::kHexa, true), 1u);
  EXPECT_EQ(sd::tolerable_motor_failures(sd::Airframe::kOcta, true), 2u);
  EXPECT_EQ(sd::tolerable_motor_failures(sd::Airframe::kOcta, false), 0u);
}

TEST(Propulsion, QuadMatchesClosedForm) {
  // A quad without tolerance fails when any of 4 motors fails:
  // P(t) = 1 - exp(-4 lambda t).
  sd::PropulsionConfig cfg;
  cfg.airframe = sd::Airframe::kQuad;
  cfg.motor_failure_rate = 1e-5;
  sd::PropulsionModel m(cfg);
  for (double t : {100.0, 1000.0, 10000.0}) {
    EXPECT_NEAR(m.failure_probability(t), 1.0 - std::exp(-4e-5 * t), 1e-9);
  }
}

TEST(Propulsion, ReconfigurationExtendsSurvival) {
  sd::PropulsionConfig with;
  with.airframe = sd::Airframe::kHexa;
  with.motor_failure_rate = 1e-4;
  with.reconfiguration = true;
  sd::PropulsionConfig without = with;
  without.reconfiguration = false;
  sd::PropulsionModel m_with(with), m_without(without);
  for (double t : {500.0, 2000.0}) {
    EXPECT_LT(m_with.failure_probability(t), m_without.failure_probability(t));
  }
  EXPECT_GT(m_with.mttf(), m_without.mttf());
}

TEST(Propulsion, OctaMoreTolerantThanHexa) {
  sd::PropulsionConfig hexa;
  hexa.airframe = sd::Airframe::kHexa;
  hexa.motor_failure_rate = 1e-4;
  sd::PropulsionConfig octa = hexa;
  octa.airframe = sd::Airframe::kOcta;
  EXPECT_LT(sd::PropulsionModel(octa).failure_probability(2000.0),
            sd::PropulsionModel(hexa).failure_probability(2000.0));
}

TEST(Propulsion, InitialFailuresRaiseRisk) {
  sd::PropulsionConfig cfg;
  cfg.airframe = sd::Airframe::kOcta;
  cfg.motor_failure_rate = 1e-4;
  sd::PropulsionModel m(cfg);
  EXPECT_LT(m.failure_probability(1000.0, 0), m.failure_probability(1000.0, 1));
  EXPECT_LT(m.failure_probability(1000.0, 1), m.failure_probability(1000.0, 2));
  // Starting in the absorbing state means already failed.
  EXPECT_DOUBLE_EQ(m.failure_probability(0.0, 99), 1.0);
}

TEST(Propulsion, RejectsNegativeRate) {
  sd::PropulsionConfig cfg;
  cfg.motor_failure_rate = -1.0;
  EXPECT_THROW(sd::PropulsionModel{cfg}, std::invalid_argument);
}

TEST(BatteryBands, SocMapping) {
  EXPECT_EQ(sd::battery_band_from_soc(0.9), sd::BatteryBand::kHealthy);
  EXPECT_EQ(sd::battery_band_from_soc(0.4), sd::BatteryBand::kLow);
  EXPECT_EQ(sd::battery_band_from_soc(0.1), sd::BatteryBand::kCritical);
  EXPECT_EQ(sd::battery_band_from_soc(0.0), sd::BatteryBand::kFailed);
}

TEST(BatteryModel, FailedBandIsCertain) {
  sd::BatteryModel m;
  EXPECT_DOUBLE_EQ(m.failure_probability(sd::BatteryBand::kFailed, 25.0, 10.0),
                   1.0);
}

TEST(BatteryModel, WorseBandsRiskier) {
  sd::BatteryModel m;
  const double h = m.failure_probability(sd::BatteryBand::kHealthy, 25.0, 300.0);
  const double l = m.failure_probability(sd::BatteryBand::kLow, 25.0, 300.0);
  const double c = m.failure_probability(sd::BatteryBand::kCritical, 25.0, 300.0);
  EXPECT_LT(h, l);
  EXPECT_LT(l, c);
}

TEST(BatteryModel, TemperatureAcceleratesFailure) {
  sd::BatteryModel m;
  const double cool = m.failure_probability(sd::BatteryBand::kLow, 25.0, 300.0);
  const double hot = m.failure_probability(sd::BatteryBand::kLow, 70.0, 300.0);
  EXPECT_GT(hot, cool * 2.0);
}

TEST(BatteryModel, ZeroHorizonZeroRisk) {
  sd::BatteryModel m;
  EXPECT_DOUBLE_EQ(m.failure_probability(sd::BatteryBand::kHealthy, 25.0, 0.0),
                   0.0);
  EXPECT_THROW(m.failure_probability(sd::BatteryBand::kHealthy, 25.0, -1.0),
               std::invalid_argument);
}

TEST(BatteryModel, ChainStructure) {
  sd::BatteryModel m;
  const auto chain = m.chain_at(25.0);
  EXPECT_EQ(chain.num_states(), 4u);
  EXPECT_TRUE(chain.is_absorbing(3));
  EXPECT_FALSE(chain.is_absorbing(0));
}

TEST(ProcessorModel, TemperatureAcceleration) {
  sd::ProcessorModel m;
  EXPECT_GT(m.failure_probability(85.0, 600.0), m.failure_probability(25.0, 600.0));
  EXPECT_DOUBLE_EQ(m.failure_probability(25.0, 0.0), 0.0);
}

TEST(CommsModel, ExponentialForm) {
  sd::CommsModelConfig cfg;
  cfg.failure_rate = 1e-4;
  sd::CommsModel m(cfg);
  EXPECT_NEAR(m.failure_probability(1000.0), 1.0 - std::exp(-0.1), 1e-12);
}

TEST(ReliabilityMonitor, ValidatesThresholds) {
  sd::ReliabilityConfig cfg;
  cfg.medium_threshold = 0.8;
  cfg.low_threshold = 0.5;
  EXPECT_THROW(sd::ReliabilityMonitor{cfg}, std::invalid_argument);
}

TEST(ReliabilityMonitor, HealthyUavHighReliability) {
  sd::ReliabilityMonitor mon;
  sd::TelemetrySnapshot t;  // defaults: full battery, cool, no motor loss
  const auto e = mon.evaluate(t, 600.0);
  EXPECT_EQ(e.level, sd::ReliabilityLevel::kHigh);
  EXPECT_FALSE(e.abort_recommended);
  EXPECT_LT(e.probability_of_failure, 0.3);
}

TEST(ReliabilityMonitor, FaultyBatteryDegradesReliability) {
  sd::ReliabilityMonitor mon;
  sd::TelemetrySnapshot t;
  t.battery_soc = 0.40;       // the Fig. 5 collapsed level
  t.battery_temp_c = 70.0;    // thermal fault
  const auto e = mon.evaluate(t, 600.0);
  EXPECT_GT(e.probability_of_failure, 0.5);
  EXPECT_NE(e.level, sd::ReliabilityLevel::kHigh);
  EXPECT_GT(e.p_battery, e.p_propulsion);
}

TEST(ReliabilityMonitor, ProbabilityMonotoneInHorizon) {
  sd::ReliabilityMonitor mon;
  sd::TelemetrySnapshot t;
  t.battery_soc = 0.40;
  t.battery_temp_c = 70.0;
  double prev = -1.0;
  for (double horizon = 0.0; horizon <= 600.0; horizon += 60.0) {
    const auto e = mon.evaluate(t, horizon);
    EXPECT_GE(e.probability_of_failure, prev);
    prev = e.probability_of_failure;
  }
}

TEST(ReliabilityMonitor, AbortThresholdReached) {
  sd::ReliabilityMonitor mon;
  sd::TelemetrySnapshot t;
  t.battery_soc = 0.10;
  t.battery_temp_c = 80.0;
  const auto e = mon.evaluate(t, 900.0);
  EXPECT_TRUE(e.abort_recommended);
  EXPECT_EQ(e.level, sd::ReliabilityLevel::kLow);
}

TEST(ReliabilityMonitor, ValidatesInputs) {
  sd::ReliabilityMonitor mon;
  sd::TelemetrySnapshot t;
  EXPECT_THROW(mon.evaluate(t, -1.0), std::invalid_argument);
  t.battery_soc = 1.2;
  EXPECT_THROW(mon.evaluate(t, 10.0), std::invalid_argument);
}

TEST(ReliabilityMonitor, DesignTimeTreeStructure) {
  sd::ReliabilityMonitor mon;
  const auto tree = mon.design_time_tree(1800.0);
  const auto events = tree.basic_events();
  EXPECT_EQ(events.size(), 4u);
  EXPECT_TRUE(events.count("battery_failure"));
  EXPECT_TRUE(events.count("propulsion_loss"));
  // Single-event minimal cut sets: any subsystem loss fails the UAV.
  const auto cuts = tree.minimal_cut_sets();
  EXPECT_EQ(cuts.size(), 4u);
  for (const auto& c : cuts) EXPECT_EQ(c.size(), 1u);
  EXPECT_THROW(mon.design_time_tree(0.0), std::invalid_argument);
}

TEST(ReliabilityMonitor, BatteryDominatesImportance) {
  // With default rates the battery chain is the fastest branch, so it
  // should carry the largest Fussell-Vesely importance at mission scale.
  sd::ReliabilityMonitor mon;
  const auto tree = mon.design_time_tree(1800.0);
  const double fv_batt = tree.fussell_vesely_importance("battery_failure", 1800.0);
  const double fv_comms = tree.fussell_vesely_importance("comms_loss", 1800.0);
  EXPECT_GT(fv_batt, fv_comms);
}

TEST(ReliabilityLevelNames, AllDistinct) {
  EXPECT_EQ(sd::reliability_level_name(sd::ReliabilityLevel::kHigh), "High");
  EXPECT_EQ(sd::reliability_level_name(sd::ReliabilityLevel::kMedium), "Medium");
  EXPECT_EQ(sd::reliability_level_name(sd::ReliabilityLevel::kLow), "Low");
}

TEST(FleetReliability, ValidatesArguments) {
  sd::ReliabilityMonitor m;
  EXPECT_THROW(sd::fleet_mission_reliability({}, 1, 100.0),
               std::invalid_argument);
  EXPECT_THROW(sd::fleet_mission_reliability({&m}, 0, 100.0),
               std::invalid_argument);
  EXPECT_THROW(sd::fleet_mission_reliability({&m}, 2, 100.0),
               std::invalid_argument);
  EXPECT_THROW(sd::fleet_mission_reliability({nullptr}, 1, 100.0),
               std::invalid_argument);
}

TEST(FleetReliability, RedundancyImprovesMissionReliability) {
  sd::ReliabilityMonitor m;
  const double t = 1800.0;
  // Needing 2 capable UAVs: a 3-UAV fleet beats a 2-UAV fleet.
  const double two_of_two = sd::fleet_mission_reliability({&m, &m}, 2, t);
  const double two_of_three =
      sd::fleet_mission_reliability({&m, &m, &m}, 2, t);
  EXPECT_GT(two_of_three, two_of_two);
  // And requiring fewer capable UAVs can only help.
  const double one_of_three =
      sd::fleet_mission_reliability({&m, &m, &m}, 1, t);
  EXPECT_GE(one_of_three, two_of_three);
}

TEST(FleetReliability, MatchesClosedFormForIdenticalUavs) {
  sd::ReliabilityMonitor m;
  const double t = 3600.0;
  const double p = m.nominal_failure_probability(t);
  // min_capable = 2 of 3: mission lost when >= 2 of 3 fail.
  const double p_loss = 3 * p * p * (1 - p) + p * p * p;
  EXPECT_NEAR(sd::fleet_mission_reliability({&m, &m, &m}, 2, t),
              1.0 - p_loss, 1e-9);
}

TEST(FleetReliability, MonotoneDecliningInMissionTime) {
  sd::ReliabilityMonitor m;
  double prev = 1.1;
  for (double t = 600.0; t <= 7200.0; t += 600.0) {
    const double r = sd::fleet_mission_reliability({&m, &m, &m}, 2, t);
    EXPECT_LE(r, prev + 1e-12);
    EXPECT_GE(r, 0.0);
    prev = r;
  }
}

TEST(BatteryModel, ChainAtMatchesDirectlyBuiltRates) {
  // chain_at is now derived by scaling a base chain; the generator must be
  // bit-identical to building with pre-scaled rates (the pre-optimisation
  // construction).
  const sd::BatteryModelConfig cfg;
  const sd::BatteryModel model(cfg);
  for (const double temp_c : {25.0, 40.0, 70.0, 10.0}) {
    const double accel =
        std::exp(cfg.temp_accel_per_c * (temp_c - cfg.reference_temp_c));
    const auto chain = model.chain_at(temp_c);
    EXPECT_EQ(chain.generator()(0, 1), cfg.rate_healthy_to_low * accel);
    EXPECT_EQ(chain.generator()(0, 0), -(cfg.rate_healthy_to_low * accel));
    EXPECT_EQ(chain.generator()(1, 2), cfg.rate_low_to_critical * accel);
    EXPECT_EQ(chain.generator()(2, 3), cfg.rate_critical_to_failed * accel);
  }
}

TEST(PropulsionModel, MemoisedFailureProbabilityIsStable) {
  sd::PropulsionConfig cfg;
  const sd::PropulsionModel model(cfg);
  const double first = model.failure_probability(600.0, 0);
  // Memo hit: same arguments, same result.
  EXPECT_EQ(model.failure_probability(600.0, 0), first);
  // Different arguments still recompute correctly.
  const double later = model.failure_probability(1200.0, 0);
  EXPECT_GT(later, first);
  const double degraded = model.failure_probability(600.0, 1);
  EXPECT_GT(degraded, first);
  // And the original pair evaluates identically after evictions.
  EXPECT_EQ(model.failure_probability(600.0, 0), first);
}

TEST(BatteryRuntimeTracker, CachedChainMatchesFreshTracker) {
  // Two trackers fed the same temperature trajectory must agree exactly;
  // one sees a constant-temperature stretch (cache hits), the other is
  // rebuilt fresh each segment.
  sd::BatteryRuntimeTracker warm;
  sd::BatteryRuntimeTracker reference;
  for (int i = 0; i < 50; ++i) {
    warm.advance(1.0, 25.0);
    reference.advance(1.0, 25.0);
  }
  for (int i = 0; i < 50; ++i) {
    warm.advance(1.0, 70.0);  // thermal fault: cache must invalidate
    reference.advance(1.0, 70.0);
  }
  ASSERT_EQ(warm.distribution().size(), reference.distribution().size());
  for (std::size_t i = 0; i < warm.distribution().size(); ++i) {
    EXPECT_EQ(warm.distribution()[i], reference.distribution()[i]);
  }
  EXPECT_GT(warm.failure_probability(), 0.0);
}

TEST(ReliabilityMonitor, EvaluateProspectiveDropsOnlyBatteryTerm) {
  const sd::ReliabilityMonitor monitor;
  sd::TelemetrySnapshot telemetry;
  telemetry.battery_soc = 0.9;
  telemetry.battery_temp_c = 30.0;
  telemetry.processor_temp_c = 45.0;

  const auto full = monitor.evaluate(telemetry, 600.0);
  const auto prospective = monitor.evaluate_prospective(telemetry, 600.0);
  EXPECT_EQ(prospective.p_propulsion, full.p_propulsion);
  EXPECT_EQ(prospective.p_processor, full.p_processor);
  EXPECT_EQ(prospective.p_comms, full.p_comms);
  EXPECT_EQ(prospective.p_battery, 0.0);

  // Composing the battery term back reproduces evaluate() exactly — the
  // identity UavEddi::tick relies on.
  const auto recomposed =
      monitor.compose(prospective.p_propulsion, full.p_battery,
                      prospective.p_processor, prospective.p_comms);
  EXPECT_EQ(recomposed.probability_of_failure, full.probability_of_failure);
  EXPECT_EQ(recomposed.level, full.level);
}
