// Tests for the security stack: attack-tree algebra and metadata, IDS
// rules over bus traffic, and the Security EDDI's leaf-to-root tracing.
#include <gtest/gtest.h>

#include "sesame/security/attack_tree.hpp"
#include "sesame/security/ids.hpp"
#include "sesame/security/security_eddi.hpp"

namespace sec = sesame::security;
namespace mw = sesame::mw;
namespace geo = sesame::geo;

namespace {

const geo::GeoPoint kBase{35.1856, 33.3823, 0.0};

sec::AttackStepInfo step(const std::string& capec, const std::string& title,
                         sec::Severity sev = sec::Severity::kMedium) {
  sec::AttackStepInfo s;
  s.capec_id = capec;
  s.title = title;
  s.severity = sev;
  return s;
}

}  // namespace

TEST(AttackTree, LeafTriggering) {
  auto tree = sec::AttackTree(
      "t", sec::AttackNode::leaf(step("CAPEC-1", "single step")));
  EXPECT_FALSE(tree.goal_achieved());
  EXPECT_TRUE(tree.trigger("CAPEC-1"));
  EXPECT_TRUE(tree.goal_achieved());
  EXPECT_FALSE(tree.trigger("CAPEC-99"));
  tree.reset();
  EXPECT_FALSE(tree.goal_achieved());
}

TEST(AttackTree, AndRequiresAllChildren) {
  auto tree = sec::AttackTree(
      "t", sec::AttackNode::and_node(
               "goal", {sec::AttackNode::leaf(step("CAPEC-1", "a")),
                        sec::AttackNode::leaf(step("CAPEC-2", "b"))}));
  tree.trigger("CAPEC-1");
  EXPECT_FALSE(tree.goal_achieved());
  tree.trigger("CAPEC-2");
  EXPECT_TRUE(tree.goal_achieved());
}

TEST(AttackTree, OrRequiresAnyChild) {
  auto tree = sec::AttackTree(
      "t", sec::AttackNode::or_node(
               "goal", {sec::AttackNode::leaf(step("CAPEC-1", "a")),
                        sec::AttackNode::leaf(step("CAPEC-2", "b"))}));
  tree.trigger("CAPEC-2");
  EXPECT_TRUE(tree.goal_achieved());
}

TEST(AttackTree, ActivePathListsAchievedNodes) {
  auto tree = sec::AttackTree(
      "t", sec::AttackNode::or_node(
               "goal", {sec::AttackNode::leaf(step("CAPEC-1", "left")),
                        sec::AttackNode::leaf(step("CAPEC-2", "right"))}));
  tree.trigger("CAPEC-1");
  const auto path = tree.active_path();
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], "goal");
  EXPECT_EQ(path[1], "left");
}

TEST(AttackTree, SeverityAndMitigations) {
  auto low = step("CAPEC-1", "a", sec::Severity::kLow);
  low.mitigation = "patch a";
  auto crit = step("CAPEC-2", "b", sec::Severity::kCritical);
  crit.mitigation = "patch b";
  auto tree = sec::AttackTree(
      "t", sec::AttackNode::or_node("goal", {sec::AttackNode::leaf(low),
                                             sec::AttackNode::leaf(crit)}));
  EXPECT_FALSE(tree.max_triggered_severity().has_value());
  tree.trigger("CAPEC-1");
  EXPECT_EQ(tree.max_triggered_severity(), sec::Severity::kLow);
  tree.trigger("CAPEC-2");
  EXPECT_EQ(tree.max_triggered_severity(), sec::Severity::kCritical);
  const auto mits = tree.mitigations();
  ASSERT_EQ(mits.size(), 2u);
}

TEST(AttackTree, ConstructionValidation) {
  EXPECT_THROW(sec::AttackNode::and_node("g", {}), std::invalid_argument);
  EXPECT_THROW(sec::AttackNode::leaf(sec::AttackStepInfo{}), std::invalid_argument);
  EXPECT_THROW(sec::AttackTree("t", nullptr), std::invalid_argument);
  auto gate = sec::AttackNode::or_node(
      "g", {sec::AttackNode::leaf(step("CAPEC-1", "a"))});
  EXPECT_THROW(gate->set_triggered(true), std::logic_error);
}

TEST(SpoofingTree, StructureAndLeaves) {
  auto tree = sec::make_spoofing_attack_tree();
  EXPECT_EQ(tree.name(), "ros_message_spoofing");
  EXPECT_NE(tree.find_leaf("CAPEC-151"), nullptr);
  EXPECT_NE(tree.find_leaf("CAPEC-594"), nullptr);
  EXPECT_NE(tree.find_leaf("CAPEC-627"), nullptr);
  EXPECT_NE(tree.find_leaf("CAPEC-125"), nullptr);
  EXPECT_EQ(tree.find_leaf("CAPEC-999"), nullptr);
  // Injection alone is not enough for the AND branch.
  tree.trigger("CAPEC-594");
  EXPECT_FALSE(tree.goal_achieved());
  tree.trigger("CAPEC-151");
  EXPECT_TRUE(tree.goal_achieved());
}

TEST(Ids, ValidatesConfig) {
  mw::Bus bus;
  sec::IdsConfig cfg;
  cfg.max_speed_mps = 0.0;
  EXPECT_THROW(sec::IntrusionDetectionSystem(bus, cfg), std::invalid_argument);
}

TEST(Ids, UnauthorizedSourceAlert) {
  mw::Bus bus;
  sec::IntrusionDetectionSystem ids(bus);
  ids.authorize("uav/u1/position_fix", "u1");
  std::vector<sec::IdsAlert> alerts;
  auto sub = bus.subscribe<sec::IdsAlert>(
      sec::ids_alert_topic(),
      [&](const mw::MessageHeader&, const sec::IdsAlert& a) {
        alerts.push_back(a);
      });
  bus.publish("uav/u1/position_fix", kBase, "u1", 0.0);  // legit
  EXPECT_TRUE(alerts.empty());
  bus.publish("uav/u1/position_fix", kBase, "attacker", 1.0);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "unauthorized_source");
  EXPECT_EQ(alerts[0].capec_id, "CAPEC-594");
  EXPECT_EQ(alerts[0].source, "attacker");
}

TEST(Ids, PositionJumpAlert) {
  mw::Bus bus;
  sec::IdsConfig cfg;
  cfg.max_speed_mps = 25.0;
  sec::IntrusionDetectionSystem ids(bus, cfg);
  ids.track_position_topic("uav/u1/position_fix");
  std::vector<sec::IdsAlert> alerts;
  auto sub = bus.subscribe<sec::IdsAlert>(
      sec::ids_alert_topic(),
      [&](const mw::MessageHeader&, const sec::IdsAlert& a) {
        alerts.push_back(a);
      });
  bus.publish("uav/u1/position_fix", kBase, "u1", 0.0);
  // 10 m in 1 s: plausible.
  bus.publish("uav/u1/position_fix", geo::destination(kBase, 90.0, 10.0), "u1",
              1.0);
  EXPECT_TRUE(alerts.empty());
  // 500 m in 1 s: impossible -> CAPEC-627.
  bus.publish("uav/u1/position_fix", geo::destination(kBase, 90.0, 510.0), "u1",
              2.0);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "position_jump");
  EXPECT_EQ(alerts[0].capec_id, "CAPEC-627");
}

TEST(Ids, FloodingAlert) {
  mw::Bus bus;
  sec::IdsConfig cfg;
  cfg.flood_threshold = 10;
  cfg.flood_window_s = 1.0;
  sec::IntrusionDetectionSystem ids(bus, cfg);
  std::vector<sec::IdsAlert> alerts;
  auto sub = bus.subscribe<sec::IdsAlert>(
      sec::ids_alert_topic(),
      [&](const mw::MessageHeader&, const sec::IdsAlert& a) {
        alerts.push_back(a);
      });
  for (int i = 0; i < 15; ++i) {
    bus.publish("cmd", i, "attacker", 0.01 * i);
  }
  ASSERT_GE(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "flooding");
  // Slow traffic never alerts.
  alerts.clear();
  for (int i = 0; i < 15; ++i) {
    bus.publish("cmd", i, "operator", 10.0 + i);
  }
  EXPECT_TRUE(alerts.empty());
}

TEST(Ids, DoesNotInspectOwnAlerts) {
  mw::Bus bus;
  sec::IdsConfig cfg;
  cfg.flood_threshold = 2;
  sec::IntrusionDetectionSystem ids(bus, cfg);
  // Flood from one source; the alerts themselves come from source "ids"
  // and must not recursively alert.
  for (int i = 0; i < 10; ++i) bus.publish("cmd", i, "attacker", 0.0);
  EXPECT_GT(ids.alerts_raised(), 0u);
  EXPECT_LT(ids.alerts_raised(), 6u);  // no alert storm
}

TEST(SecurityEddi, DetectsInjectionPath) {
  mw::Bus bus;
  sec::IntrusionDetectionSystem ids(bus);
  ids.authorize("uav/u1/position_fix", "u1");
  sec::SecurityEddi eddi(bus, sec::make_spoofing_attack_tree());

  std::vector<sec::SecurityEvent> events;
  auto sub = bus.subscribe<sec::SecurityEvent>(
      sec::security_event_topic(),
      [&](const mw::MessageHeader&, const sec::SecurityEvent& e) {
        events.push_back(e);
      });

  EXPECT_FALSE(eddi.attack_detected());
  bus.publish("uav/u1/position_fix", kBase, "attacker", 5.0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(eddi.attack_detected());
  EXPECT_EQ(events[0].tree, "ros_message_spoofing");
  EXPECT_DOUBLE_EQ(events[0].time_s, 5.0);
  ASSERT_FALSE(events[0].suspicious_sources.empty());
  EXPECT_EQ(events[0].suspicious_sources[0], "attacker");
  EXPECT_FALSE(events[0].attack_path.empty());
  EXPECT_FALSE(events[0].mitigations.empty());
}

TEST(SecurityEddi, ReportsGoalOnlyOnce) {
  mw::Bus bus;
  sec::IntrusionDetectionSystem ids(bus);
  ids.authorize("t", "legit");
  sec::SecurityEddi eddi(bus, sec::make_spoofing_attack_tree());
  bus.publish("t", 1, "attacker", 0.0);
  bus.publish("t", 2, "attacker", 1.0);
  EXPECT_EQ(eddi.events_raised(), 1u);
  EXPECT_GE(eddi.alerts_consumed(), 2u);
  eddi.reset();
  EXPECT_FALSE(eddi.tree().goal_achieved());
  bus.publish("t", 3, "attacker", 2.0);
  EXPECT_EQ(eddi.events_raised(), 2u);
}

TEST(SecurityEddi, CallbackInvoked) {
  mw::Bus bus;
  sec::IntrusionDetectionSystem ids(bus);
  ids.track_position_topic("uav/u1/position_fix");
  sec::SecurityEddi eddi(bus, sec::make_spoofing_attack_tree());
  int called = 0;
  eddi.on_event([&](const sec::SecurityEvent&) { ++called; });
  bus.publish("uav/u1/position_fix", kBase, "u1", 0.0);
  bus.publish("uav/u1/position_fix", geo::destination(kBase, 0.0, 900.0), "u1",
              1.0);
  EXPECT_EQ(called, 1);
}

TEST(SecurityEddi, IgnoresAlertsOutsideItsTree) {
  mw::Bus bus;
  sec::SecurityEddi eddi(
      bus, sec::AttackTree("other",
                           sec::AttackNode::leaf(step("CAPEC-777", "x"))));
  sec::IdsAlert alert;
  alert.capec_id = "CAPEC-594";  // not in this tree
  bus.publish(sec::ids_alert_topic(), alert, "ids", 0.0);
  EXPECT_FALSE(eddi.attack_detected());
  EXPECT_EQ(eddi.alerts_consumed(), 1u);
}

TEST(SeverityNames, Distinct) {
  EXPECT_EQ(sec::severity_name(sec::Severity::kLow), "Low");
  EXPECT_EQ(sec::severity_name(sec::Severity::kCritical), "Critical");
}

TEST(JammingTree, StructureAndIndependentEddis) {
  // One Security EDDI per attack tree, running side by side on one bus.
  mw::Bus bus;
  sec::SecurityEddi spoof_eddi(bus, sec::make_spoofing_attack_tree());
  sec::SecurityEddi jam_eddi(bus, sec::make_jamming_attack_tree());

  // A jamming alert (physical-layer sensor) reaches only the jamming tree.
  sec::IdsAlert jam;
  jam.rule = "gps_fix_lost";
  jam.capec_id = "CAPEC-601";
  jam.source = "gps_watchdog";
  jam.time_s = 12.0;
  bus.publish(sec::ids_alert_topic(), jam, "gps_watchdog", 12.0);
  EXPECT_TRUE(jam_eddi.attack_detected());
  EXPECT_FALSE(spoof_eddi.attack_detected());
}

TEST(JammingTree, FloodingReachesBothTrees) {
  // CAPEC-125 appears in both trees: one alert fires both EDDIs.
  mw::Bus bus;
  sec::SecurityEddi spoof_eddi(bus, sec::make_spoofing_attack_tree());
  sec::SecurityEddi jam_eddi(bus, sec::make_jamming_attack_tree());
  sec::IdsAlert flood;
  flood.rule = "flooding";
  flood.capec_id = "CAPEC-125";
  flood.source = "attacker";
  bus.publish(sec::ids_alert_topic(), flood, "ids", 1.0);
  EXPECT_TRUE(spoof_eddi.attack_detected());
  EXPECT_TRUE(jam_eddi.attack_detected());
}

TEST(JammingTree, MitigationsNameLocalizationFallback) {
  auto tree = sec::make_jamming_attack_tree();
  tree.trigger("CAPEC-601");
  ASSERT_TRUE(tree.goal_achieved());
  const auto mits = tree.mitigations();
  ASSERT_EQ(mits.size(), 1u);
  EXPECT_NE(mits[0].find("collaborative"), std::string::npos);
}

// --- WireMonitor (sesame.wire.* counters as IDS evidence) ------------------

#include "sesame/mw/framing.hpp"
#include "sesame/obs/observability.hpp"
#include "sesame/security/wire_monitor.hpp"

namespace {

/// Framing handshake pump for the wire-evidence tests.
void pump_framing(mw::Framing& a, mw::Framing& b) {
  const mw::Framing::MessageSink drop = [](std::span<const std::uint8_t>,
                                           std::uint64_t) {};
  for (int i = 0; i < 64; ++i) {
    const auto fa = a.take_outbound();
    const auto fb = b.take_outbound();
    if (fa.empty() && fb.empty()) return;
    if (!fa.empty()) b.feed(fa, drop);
    if (!fb.empty()) a.feed(fb, drop);
  }
  FAIL() << "link did not quiesce";
}

}  // namespace

TEST(WireMonitor, RejectsZeroThresholds) {
  mw::Bus bus;
  sec::WireMonitorConfig cfg;
  cfg.tamper_threshold = 0;
  EXPECT_THROW(sec::WireMonitor(bus, "c2", cfg), std::invalid_argument);
}

// The ROADMAP item 1 gap, end to end: a frame replayed at the framing
// layer must reach the Security EDDI as CAPEC-594 evidence and achieve the
// spoofing tree's root (594 implies the 151 access leaf — the injection
// AND-branch completes from wire evidence alone).
TEST(WireMonitor, ReplayedFrameAchievesSpoofingTreeRoot) {
  mw::Framing a, b;
  a.start();
  b.start();
  pump_framing(a, b);

  a.send_message(std::vector<std::uint8_t>{1, 2, 3});
  const auto wire = a.take_outbound();
  const mw::Framing::MessageSink drop = [](std::span<const std::uint8_t>,
                                           std::uint64_t) {};
  b.feed(wire, drop);
  b.feed(wire, drop);  // verbatim replay: rejected + counted by Framing
  ASSERT_GE(b.counters().replays_rejected, 1u);

  mw::Bus bus;
  sec::SecurityEddi eddi(bus, sec::make_spoofing_attack_tree());
  std::vector<sec::IdsAlert> alerts;
  auto sub = bus.subscribe<sec::IdsAlert>(
      sec::ids_alert_topic(),
      [&](const mw::MessageHeader&, const sec::IdsAlert& al) {
        alerts.push_back(al);
      });

  sec::WireMonitor monitor(bus, "c2");
  monitor.observe(b.counters(), 7.5);

  ASSERT_EQ(monitor.alerts_raised(), 1u);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "wire_replay");
  EXPECT_EQ(alerts[0].capec_id, "CAPEC-594");
  EXPECT_EQ(alerts[0].source, "wire/c2");
  EXPECT_DOUBLE_EQ(alerts[0].time_s, 7.5);
  EXPECT_TRUE(eddi.attack_detected());

  // Quiet polls afterwards stay silent (evidence was consumed).
  monitor.observe(b.counters(), 8.5);
  EXPECT_EQ(monitor.alerts_raised(), 1u);
}

TEST(WireMonitor, TamperEvidenceAccumulatesToThresholdWithLatency) {
  mw::Bus bus;
  sec::WireMonitor monitor(bus, "serial0");  // tamper_threshold = 3
  sesame::obs::Observability o;
  monitor.set_observability(&o);

  std::vector<sec::IdsAlert> alerts;
  auto sub = bus.subscribe<sec::IdsAlert>(
      sec::ids_alert_topic(),
      [&](const mw::MessageHeader&, const sec::IdsAlert& al) {
        alerts.push_back(al);
      });

  mw::LinkCounters c;
  c.crc_errors = 1;
  monitor.observe(c, 10.0);  // first evidence: below threshold, no alert
  EXPECT_TRUE(alerts.empty());
  c.crc_errors = 2;
  c.malformed_frames = 1;  // cumulative tampering = 3: threshold reached
  monitor.observe(c, 14.0);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "wire_tampering");
  EXPECT_EQ(alerts[0].capec_id, "CAPEC-94");

  // Detection latency = first evidence (10 s) -> alerting poll (14 s).
  const auto snap = o.metrics.snapshot();
  const auto* lat = snap.find("sesame.security.wire_detection_latency_s",
                              {{"link", "serial0"}});
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->observations, 1u);
  EXPECT_DOUBLE_EQ(lat->value, 4.0);  // histogram sum
  const auto* total = snap.find("sesame.security.wire_alerts_total",
                                {{"rule", "wire_tampering"}});
  ASSERT_NE(total, nullptr);
  EXPECT_DOUBLE_EQ(total->value, 1.0);

  // CAPEC-94 is a leaf of the spoofing tree in its own right.
  auto tree = sec::make_spoofing_attack_tree();
  EXPECT_NE(tree.find_leaf("CAPEC-94"), nullptr);
  EXPECT_TRUE(tree.trigger("CAPEC-94"));
  EXPECT_TRUE(tree.goal_achieved());
}
