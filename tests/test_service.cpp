// Tests for the campaign service: submission parsing and cache digests,
// the service core (byte-identity vs the campaign layer, result cache,
// admission control, graceful drain), the HTTP adapter, the framed wire
// transport, and the shared SIGINT/SIGTERM drain latch.
//
// The headline contract is byte-identity (docs/SERVICE.md): a report
// fetched from the service — over any transport, at any executor count,
// under multi-tenant concurrency — is exactly campaign_json() of the same
// (scenario, runs, seed), i.e. the bytes campaign_cli --json writes.
#include <csignal>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sesame/campaign/campaign.hpp"
#include "sesame/campaign/report.hpp"
#include "sesame/eddi/ode.hpp"
#include "sesame/mw/bus.hpp"
#include "sesame/platform/config_io.hpp"
#include "sesame/service/drain.hpp"
#include "sesame/service/http.hpp"
#include "sesame/service/service.hpp"
#include "sesame/service/submission.hpp"
#include "sesame/service/wire.hpp"

namespace campaign = sesame::campaign;
namespace platform = sesame::platform;
namespace service = sesame::service;
namespace ode = sesame::eddi::ode;

namespace {

/// A scenario small enough to run many campaigns in the test suite.
std::string tiny_config_json(std::size_t n_uavs, std::size_t n_persons) {
  platform::RunnerConfig config =
      campaign::ScenarioFactory::default_scenario();
  config.n_uavs = n_uavs;
  config.area = {0.0, 150.0, 0.0, 150.0};
  config.n_persons = n_persons;
  config.max_time_s = 150.0;
  config.sesame_enabled = false;
  return platform::config_to_json(config).to_json();
}

service::Submission tiny_submission(const std::string& tenant,
                                    std::uint64_t seed, std::size_t runs = 3,
                                    std::size_t n_uavs = 2) {
  service::Submission s;
  s.tenant = tenant;
  s.config_json = tiny_config_json(n_uavs, 3);
  s.runs = runs;
  s.seed = seed;
  return s;
}

/// The reference bytes: what campaign_cli --json would write for the same
/// submission (resolved identically, run in-process).
std::string expected_report_bytes(const service::Submission& s) {
  service::ResolvedCampaign resolved = service::resolve(s);
  resolved.config.jobs = 2;  // any worker count: determinism contract
  return campaign::campaign_json(
      campaign::run_campaign(resolved.factory, resolved.config));
}

/// Moves bytes between a wire client and a server session until neither
/// side has anything left to say.
void pump(service::WireSession& server, service::WireClient& client) {
  for (int i = 0; i < 64; ++i) {
    bool moved = false;
    if (client.has_outbound()) {
      server.feed(client.take_outbound());
      moved = true;
    }
    if (server.has_outbound()) {
      client.feed(server.take_outbound());
      moved = true;
    }
    if (!moved) return;
  }
  FAIL() << "wire pump did not quiesce";
}

}  // namespace

TEST(Submission, CanonicalJsonRoundTrips) {
  service::Submission s = tiny_submission("alpha", 42);
  s.chaos = false;
  const std::string canonical = service::submission_to_json(s);
  const service::Submission back = service::submission_from_json(canonical);
  EXPECT_EQ(service::submission_to_json(back), canonical);
  EXPECT_EQ(service::resolve(back).digest, service::resolve(s).digest);
}

TEST(Submission, RejectsMalformedDocuments) {
  EXPECT_THROW(service::submission_from_json("not json"), std::runtime_error);
  EXPECT_THROW(service::submission_from_json("[1,2]"), std::runtime_error);
  // A typo must not silently become a default.
  EXPECT_THROW(service::submission_from_json(R"({"rnus": 4})"),
               std::runtime_error);
  EXPECT_THROW(service::submission_from_json(R"({"runs": 0})"),
               std::invalid_argument);
  // Bad presets are rejected at submit time, not minutes later on an
  // executor.
  EXPECT_ANY_THROW(
      service::submission_from_json(R"({"preset": "no_such_preset"})"));
}

TEST(Submission, DigestIgnoresFormattingButNotSemantics) {
  const std::string config = tiny_config_json(2, 3);
  const auto digest_of = [&](const std::string& text) {
    return service::resolve(service::submission_from_json(text)).digest;
  };
  // Key order and whitespace cannot split the cache...
  const std::string a =
      R"({"runs": 4, "seed": "7", "config": )" + config + "}";
  const std::string b =
      R"({  "config": )" + config + R"(, "seed": 7, "runs": 4})";
  EXPECT_EQ(digest_of(a), digest_of(b));
  // ...but every identity-bearing field does.
  const std::string other_seed =
      R"({"runs": 4, "seed": "8", "config": )" + config + "}";
  const std::string other_runs =
      R"({"runs": 5, "seed": "7", "config": )" + config + "}";
  EXPECT_NE(digest_of(a), digest_of(other_seed));
  EXPECT_NE(digest_of(a), digest_of(other_runs));
}

TEST(Service, ConcurrentTenantsGetCampaignCliBytes) {
  // Three tenants, three distinct campaigns, all in flight at once; each
  // report must be byte-identical to the same campaign run via the
  // campaign layer directly (what campaign_cli --json writes).
  const std::vector<service::Submission> submissions = {
      tiny_submission("alpha", 7, 3, 2),
      tiny_submission("bravo", 11, 4, 2),
      tiny_submission("carol", 13, 3, 3),
  };

  service::ServiceLimits limits;
  limits.executors = 3;
  service::CampaignService svc(limits);
  std::vector<std::uint64_t> jobs;
  for (const auto& s : submissions) {
    const auto outcome = svc.submit(s);
    ASSERT_TRUE(outcome.accepted) << outcome.reject_reason;
    jobs.push_back(outcome.job_id);
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto status = svc.wait(jobs[i]);
    ASSERT_EQ(status.state, service::JobState::kCompleted) << status.error;
    EXPECT_EQ(status.runs_completed, submissions[i].runs);
    EXPECT_EQ(svc.report(jobs[i]), expected_report_bytes(submissions[i]))
        << "tenant " << submissions[i].tenant;
  }
}

TEST(Service, CacheHitReturnsIdenticalBytesWithoutRerunning) {
  service::CampaignService svc;
  const service::Submission s = tiny_submission("alpha", 21);
  const auto first = svc.submit(s);
  ASSERT_TRUE(first.accepted);
  ASSERT_EQ(svc.wait(first.job_id).state, service::JobState::kCompleted);

  // Different tenant, differently formatted document, same resolved
  // campaign: completes synchronously from the cache.
  service::Submission again = s;
  again.tenant = "bravo";
  const auto second = svc.submit(again);
  ASSERT_TRUE(second.accepted);
  const auto status = svc.status(second.job_id);
  EXPECT_EQ(status.state, service::JobState::kCompleted);
  EXPECT_TRUE(status.cache_hit);
  EXPECT_EQ(svc.cache_hits(), 1u);
  EXPECT_EQ(svc.report(second.job_id), svc.report(first.job_id));

  // The event log records the cache hit instead of fabricating runs.
  bool saw_cache_hit = false;
  for (const auto& line : svc.events(second.job_id, 0)) {
    if (ode::parse_json(line).at("event").as_string() == "cache_hit") {
      saw_cache_hit = true;
    }
  }
  EXPECT_TRUE(saw_cache_hit);
}

TEST(Service, AdmissionRejectsOverCapsAndWhileDraining) {
  service::ServiceLimits limits;
  limits.max_runs_per_campaign = 4;
  service::CampaignService svc(limits);

  const auto too_big = svc.submit(tiny_submission("alpha", 3, /*runs=*/5));
  EXPECT_FALSE(too_big.accepted);
  EXPECT_EQ(too_big.reject_reason, "runs_cap");

  svc.drain();
  const auto while_drained = svc.submit(tiny_submission("alpha", 3));
  EXPECT_FALSE(while_drained.accepted);
  EXPECT_EQ(while_drained.reject_reason, "draining");
}

TEST(Service, DrainHandsBackEveryUnfinishedSubmission) {
  service::ServiceLimits limits;
  limits.executors = 1;
  service::CampaignService svc(limits);

  // One long campaign occupies the only executor; two more queue behind.
  std::vector<std::uint64_t> jobs;
  jobs.push_back(svc.submit(tiny_submission("alpha", 5, /*runs=*/400)).job_id);
  jobs.push_back(svc.submit(tiny_submission("alpha", 6)).job_id);
  jobs.push_back(svc.submit(tiny_submission("bravo", 7)).job_id);

  const auto spooled = svc.drain();

  // No orphans: every job either completed or came back for spooling, and
  // nothing is left queued or running.
  std::size_t completed = 0;
  for (const auto id : jobs) {
    const auto status = svc.status(id);
    ASSERT_TRUE(status.state == service::JobState::kCompleted ||
                status.state == service::JobState::kDrained)
        << job_state_name(status.state);
    if (status.state == service::JobState::kCompleted) ++completed;
  }
  EXPECT_EQ(spooled.size(), jobs.size() - completed);
  EXPECT_GE(spooled.size(), 2u);  // at most the running job finished

  // Spooled submissions survive the round trip to the spool directory.
  for (const auto& s : spooled) {
    const auto back =
        service::submission_from_json(service::submission_to_json(s));
    EXPECT_EQ(service::resolve(back).digest, service::resolve(s).digest);
  }
  // A second drain is a no-op.
  EXPECT_TRUE(svc.drain().empty());
}

TEST(Service, EventLogIsCursorPollable) {
  service::CampaignService svc;
  const auto outcome = svc.submit(tiny_submission("alpha", 31));
  ASSERT_TRUE(outcome.accepted);
  ASSERT_EQ(svc.wait(outcome.job_id).state, service::JobState::kCompleted);

  const auto all = svc.events(outcome.job_id, 0);
  ASSERT_GE(all.size(), 3u);  // queued, started, runs..., completed
  EXPECT_EQ(ode::parse_json(all.front()).at("event").as_string(), "queued");
  EXPECT_EQ(ode::parse_json(all.back()).at("event").as_string(), "completed");
  for (const auto& line : all) {
    EXPECT_NO_THROW(ode::parse_json(line)) << line;
  }
  // Cursor semantics: a caller that consumed N lines sees only the tail.
  EXPECT_EQ(svc.events(outcome.job_id, all.size()).size(), 0u);
  EXPECT_EQ(svc.events(outcome.job_id, all.size() - 1).size(), 1u);

  // Service-side metrics stay on their own surface, never in reports.
  const std::string prom = svc.metrics_prometheus();
  EXPECT_NE(prom.find("sesame_service_submissions_total"), std::string::npos);
  EXPECT_EQ(svc.report(outcome.job_id).find("sesame.service."),
            std::string::npos);
}

TEST(Http, IncrementalParserReassemblesSplitRequests) {
  const std::string raw =
      "POST /api/v1/campaigns?x=1 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Length: 11\r\n"
      "\r\n"
      "{\"runs\": 4}";
  service::HttpConnection conn;
  // Feed one byte at a time: the request must assemble exactly once.
  std::optional<service::HttpRequest> req;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    auto got = conn.feed(raw.data() + i, 1);
    if (got) {
      EXPECT_EQ(i, raw.size() - 1);
      req = std::move(got);
    }
  }
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "POST");
  EXPECT_EQ(req->path, "/api/v1/campaigns");
  EXPECT_EQ(req->query, "x=1");
  EXPECT_EQ(req->headers.at("content-length"), "11");
  EXPECT_EQ(req->body, "{\"runs\": 4}");

  service::HttpConnection bad;
  bad.feed("garbage\r\n\r\n", 11);
  EXPECT_TRUE(bad.failed());
}

TEST(Http, RoutesTheFullJobLifecycle) {
  service::CampaignService svc;
  const service::Submission s = tiny_submission("alpha", 77);

  const auto respond = [&](const std::string& method, const std::string& path,
                           const std::string& body = "",
                           const std::string& query = "") {
    service::HttpRequest req;
    req.method = method;
    req.path = path;
    req.query = query;
    req.body = body;
    return service::handle_request(svc, req);
  };

  // Submit.
  const auto accepted =
      respond("POST", "/api/v1/campaigns", service::submission_to_json(s));
  ASSERT_EQ(accepted.status, 202) << accepted.body;
  const auto job = static_cast<std::uint64_t>(
      ode::parse_json(accepted.body).at("job").as_number());
  const std::string base = "/api/v1/jobs/" + std::to_string(job);

  // Malformed and misrouted requests map to protocol errors.
  EXPECT_EQ(respond("POST", "/api/v1/campaigns", "{oops").status, 400);
  EXPECT_EQ(respond("GET", "/api/v1/campaigns").status, 405);
  EXPECT_EQ(respond("GET", "/api/v1/jobs/999999").status, 404);
  EXPECT_EQ(respond("GET", "/nope").status, 404);
  EXPECT_EQ(respond("GET", base + "/nope").status, 404);

  ASSERT_EQ(svc.wait(job).state, service::JobState::kCompleted);

  const auto status = respond("GET", base);
  EXPECT_EQ(status.status, 200);
  EXPECT_EQ(ode::parse_json(status.body).at("state").as_string(),
            "completed");

  const auto events = respond("GET", base + "/events", "", "cursor=0");
  EXPECT_EQ(events.status, 200);
  EXPECT_GE(ode::parse_json(events.body).at("events").as_array().size(), 3u);

  // The report route returns the byte-identity surface verbatim.
  const auto report = respond("GET", base + "/report");
  EXPECT_EQ(report.status, 200);
  EXPECT_EQ(report.body, svc.report(job));
  EXPECT_EQ(report.body, expected_report_bytes(s));

  const auto health = respond("GET", "/healthz");
  EXPECT_EQ(health.status, 200);
  const auto metrics = respond("GET", "/metrics");
  EXPECT_NE(metrics.body.find("sesame_service_jobs_completed_total"),
            std::string::npos);

  svc.drain();
  EXPECT_EQ(
      respond("POST", "/api/v1/campaigns", service::submission_to_json(s))
          .status,
      503);
}

TEST(Wire, LoopbackSessionDeliversByteIdenticalReport) {
  service::CampaignService svc;
  sesame::mw::Bus alert_bus;
  service::WireSession server(svc, alert_bus, "test_link");
  service::WireClient client;
  server.start();
  client.start();

  const service::Submission s = tiny_submission("alpha", 55);
  client.submit(s);
  pump(server, client);

  ASSERT_TRUE(client.established());
  ASSERT_TRUE(client.has_response());
  const auto accepted = ode::parse_json(client.pop_response());
  ASSERT_EQ(accepted.at("type").as_string(), "accepted") << accepted.to_json();
  const auto job =
      static_cast<std::uint64_t>(accepted.at("job").as_number());

  ASSERT_EQ(svc.wait(job).state, service::JobState::kCompleted);

  client.poll_events(job, 0);
  pump(server, client);

  // The poll of a completed job streams the events, announces the report,
  // and ships the raw bytes as one frame.
  ASSERT_TRUE(client.has_response());
  const auto events = ode::parse_json(client.pop_response());
  EXPECT_EQ(events.at("type").as_string(), "events");
  EXPECT_GE(events.at("events").as_array().size(), 3u);
  ASSERT_TRUE(client.report_received());
  EXPECT_EQ(client.report(), expected_report_bytes(s));

  // A clean session raises no wire-security alerts.
  server.poll_security(1.0);
  EXPECT_EQ(server.counters().crc_errors, 0u);
  EXPECT_EQ(server.counters().replays_rejected, 0u);
}

TEST(Wire, BadRequestsGetStructuredErrors) {
  service::CampaignService svc;
  sesame::mw::Bus alert_bus;
  service::WireSession server(svc, alert_bus, "test_link");
  service::WireClient client;
  server.start();
  client.start();

  client.request_status(404);  // no such job
  pump(server, client);
  ASSERT_TRUE(client.has_response());
  const auto reply = ode::parse_json(client.pop_response());
  EXPECT_EQ(reply.at("type").as_string(), "error");
  EXPECT_NE(reply.at("error").as_string().find("no such job"),
            std::string::npos);
}

TEST(Drain, SignalLatchTripsOnceAndIsExclusive) {
  service::DrainSignal drain;
  EXPECT_FALSE(drain.requested());
  EXPECT_FALSE(drain.flag()->load());

  // Only one latch may own the process-wide handlers at a time.
  EXPECT_THROW(service::DrainSignal(), std::logic_error);

  std::raise(SIGTERM);  // the installed handler only flips the latch
  EXPECT_TRUE(drain.requested());
  EXPECT_TRUE(drain.flag()->load());

  drain.reset();
  EXPECT_FALSE(drain.requested());
}
