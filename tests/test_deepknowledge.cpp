// Tests for DeepKnowledge: MLP forward/backward correctness, training
// convergence on a separable problem, TK-neuron selection, and the
// coverage/uncertainty behaviour under domain shift.
#include <cmath>

#include <gtest/gtest.h>

#include "sesame/deepknowledge/analysis.hpp"
#include "sesame/deepknowledge/mlp.hpp"
#include "sesame/mathx/rng.hpp"

namespace dk = sesame::deepknowledge;
namespace mx = sesame::mathx;

namespace {

/// Two-moon-ish separable dataset: label = 1 when x0 + x1 > 0.
void make_dataset(mx::Rng& rng, std::size_t n, double shift,
                  std::vector<std::vector<double>>& inputs,
                  std::vector<std::vector<double>>& targets) {
  inputs.clear();
  targets.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.normal(shift, 1.0);
    const double x1 = rng.normal(0.0, 1.0);
    inputs.push_back({x0, x1});
    targets.push_back({x0 + x1 > 0.0 ? 1.0 : 0.0});
  }
}

}  // namespace

TEST(Mlp, ConstructionValidation) {
  mx::Rng rng(1);
  EXPECT_THROW(dk::Mlp({4}, rng), std::invalid_argument);
  EXPECT_THROW(dk::Mlp({4, 0, 1}, rng), std::invalid_argument);
  dk::Mlp net({3, 5, 2}, rng);
  EXPECT_EQ(net.input_size(), 3u);
  EXPECT_EQ(net.output_size(), 2u);
  EXPECT_EQ(net.num_hidden_layers(), 1u);
  EXPECT_EQ(net.hidden_size(0), 5u);
  EXPECT_EQ(net.num_hidden_neurons(), 5u);
}

TEST(Mlp, ForwardOutputsInUnitInterval) {
  mx::Rng rng(2);
  dk::Mlp net({2, 8, 1}, rng);
  for (int i = 0; i < 20; ++i) {
    const auto out = net.forward({rng.normal(), rng.normal()});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_GT(out[0], 0.0);
    EXPECT_LT(out[0], 1.0);
  }
}

TEST(Mlp, ForwardRejectsBadInput) {
  mx::Rng rng(3);
  dk::Mlp net({2, 4, 1}, rng);
  EXPECT_THROW(net.forward({1.0}), std::invalid_argument);
}

TEST(Mlp, TracedForwardCapturesHiddenLayers) {
  mx::Rng rng(4);
  dk::Mlp net({2, 6, 4, 1}, rng);
  dk::ActivationTrace trace;
  net.forward_traced({0.5, -0.5}, trace);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].size(), 6u);
  EXPECT_EQ(trace[1].size(), 4u);
  for (const auto& layer : trace) {
    for (double a : layer) EXPECT_GE(a, 0.0);  // ReLU output
  }
}

TEST(Mlp, DeterministicGivenSeed) {
  mx::Rng r1(7), r2(7);
  dk::Mlp a({2, 4, 1}, r1), b({2, 4, 1}, r2);
  const auto oa = a.forward({0.3, 0.7});
  const auto ob = b.forward({0.3, 0.7});
  EXPECT_DOUBLE_EQ(oa[0], ob[0]);
}

TEST(Mlp, TrainingReducesLossAndLearnsSeparableTask) {
  mx::Rng rng(11);
  std::vector<std::vector<double>> inputs, targets;
  make_dataset(rng, 400, 0.0, inputs, targets);
  dk::Mlp net({2, 8, 1}, rng);
  const double initial_loss = net.train_epoch(inputs, targets, 0.05, rng);
  double final_loss = initial_loss;
  for (int e = 0; e < 30; ++e) {
    final_loss = net.train_epoch(inputs, targets, 0.05, rng);
  }
  EXPECT_LT(final_loss, initial_loss * 0.5);
  EXPECT_GT(net.accuracy(inputs, targets), 0.95);
}

TEST(Mlp, TrainEpochValidatesDataset) {
  mx::Rng rng(13);
  dk::Mlp net({2, 4, 1}, rng);
  std::vector<std::vector<double>> inputs{{1.0, 2.0}};
  EXPECT_THROW(net.train_epoch(inputs, {}, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(net.train_epoch(inputs, {{1.0, 0.0}}, 0.1, rng),
               std::invalid_argument);
  EXPECT_THROW(net.accuracy({}, {}), std::invalid_argument);
}

TEST(Analyzer, ConstructionValidation) {
  mx::Rng rng(17);
  dk::Mlp net({2, 4, 1}, rng);
  std::vector<std::vector<double>> data{{0.0, 0.0}};
  EXPECT_THROW(dk::Analyzer(net, {}, data), std::invalid_argument);
  EXPECT_THROW(dk::Analyzer(net, data, {}), std::invalid_argument);
  dk::AnalysisConfig bad;
  bad.top_k = 0;
  EXPECT_THROW(dk::Analyzer(net, data, data, bad), std::invalid_argument);
  dk::Mlp shallow({2, 1}, rng);
  EXPECT_THROW(dk::Analyzer(shallow, data, data), std::invalid_argument);
}

TEST(Analyzer, ProfilesCoverAllHiddenNeurons) {
  mx::Rng rng(19);
  dk::Mlp net({2, 6, 4, 1}, rng);
  std::vector<std::vector<double>> train, targets;
  make_dataset(rng, 100, 0.0, train, targets);
  std::vector<std::vector<double>> shifted, _t;
  make_dataset(rng, 100, 2.0, shifted, _t);
  dk::Analyzer an(net, train, shifted);
  EXPECT_EQ(an.profiles().size(), net.num_hidden_neurons());
  // Profiles sorted descending by transfer score.
  for (std::size_t i = 1; i < an.profiles().size(); ++i) {
    EXPECT_GE(an.profiles()[i - 1].transfer_score,
              an.profiles()[i].transfer_score);
  }
}

TEST(Analyzer, TkSelectionRespectsTopK) {
  mx::Rng rng(23);
  dk::Mlp net({2, 10, 1}, rng);
  std::vector<std::vector<double>> train, targets, shifted, _t;
  make_dataset(rng, 100, 0.0, train, targets);
  make_dataset(rng, 100, 1.0, shifted, _t);
  dk::AnalysisConfig cfg;
  cfg.top_k = 3;
  dk::Analyzer an(net, train, shifted, cfg);
  EXPECT_EQ(an.tk_neurons().size(), 3u);
  // TK neurons have the highest scores among all profiles.
  EXPECT_DOUBLE_EQ(an.tk_neurons()[0].transfer_score,
                   an.profiles()[0].transfer_score);
}

TEST(Analyzer, NoShiftGivesLowGeneralisationShift) {
  mx::Rng rng(29);
  dk::Mlp net({2, 8, 1}, rng);
  std::vector<std::vector<double>> train, targets, same, _t;
  make_dataset(rng, 400, 0.0, train, targets);
  make_dataset(rng, 400, 0.0, same, _t);
  std::vector<std::vector<double>> far, _t2;
  make_dataset(rng, 400, 3.0, far, _t2);
  dk::Analyzer an_same(net, train, same);
  dk::Analyzer an_far(net, train, far);
  EXPECT_LT(an_same.generalisation_shift(), an_far.generalisation_shift());
}

TEST(Analyzer, InDistributionWindowLowUncertainty) {
  mx::Rng rng(31);
  std::vector<std::vector<double>> train, targets;
  make_dataset(rng, 500, 0.0, train, targets);
  dk::Mlp net({2, 8, 1}, rng);
  for (int e = 0; e < 10; ++e) net.train_epoch(train, targets, 0.05, rng);
  std::vector<std::vector<double>> shifted, _t;
  make_dataset(rng, 500, 2.0, shifted, _t);
  dk::Analyzer an(net, train, shifted);

  std::vector<std::vector<double>> window, _t2;
  make_dataset(rng, 64, 0.0, window, _t2);
  const auto in_dist = an.assess(net, window);

  std::vector<std::vector<double>> far_window, _t3;
  make_dataset(rng, 64, 6.0, far_window, _t3);
  const auto out_dist = an.assess(net, far_window);

  EXPECT_LT(in_dist.uncertainty, out_dist.uncertainty);
  EXPECT_GT(in_dist.coverage, 0.0);
  EXPECT_GT(out_dist.out_of_range, in_dist.out_of_range);
}

TEST(Analyzer, AssessRejectsEmptyWindow) {
  mx::Rng rng(37);
  dk::Mlp net({2, 4, 1}, rng);
  std::vector<std::vector<double>> train, targets;
  make_dataset(rng, 50, 0.0, train, targets);
  dk::Analyzer an(net, train, train);
  EXPECT_THROW(an.assess(net, {}), std::invalid_argument);
}

TEST(Analyzer, ReportFieldsWithinRanges) {
  mx::Rng rng(41);
  std::vector<std::vector<double>> train, targets;
  make_dataset(rng, 200, 0.0, train, targets);
  dk::Mlp net({2, 6, 1}, rng);
  dk::Analyzer an(net, train, train);
  for (double shift : {0.0, 1.0, 4.0, 10.0}) {
    std::vector<std::vector<double>> window, _t;
    make_dataset(rng, 32, shift, window, _t);
    const auto r = an.assess(net, window);
    EXPECT_GE(r.coverage, 0.0);
    EXPECT_LE(r.coverage, 1.0);
    EXPECT_GE(r.out_of_range, 0.0);
    EXPECT_LE(r.out_of_range, 1.0);
    EXPECT_GE(r.uncertainty, 0.0);
    EXPECT_LE(r.uncertainty, 1.0);
    EXPECT_EQ(r.window_size, 32u);
  }
}

#include "sesame/deepknowledge/test_selection.hpp"

TEST(TestSelection, ValidatesArguments) {
  mx::Rng rng(201);
  dk::Mlp net({2, 4, 1}, rng);
  std::vector<std::vector<double>> data;
  make_dataset(rng, 50, 0.0, data, data);
  std::vector<std::vector<double>> inputs, targets;
  make_dataset(rng, 50, 0.0, inputs, targets);
  dk::Analyzer an(net, inputs, inputs);
  EXPECT_THROW(dk::select_tests(an, net, {}, 4), std::invalid_argument);
  EXPECT_THROW(dk::select_tests(an, net, inputs, 0), std::invalid_argument);
}

TEST(TestSelection, GreedyRankingIsMonotone) {
  mx::Rng rng(203);
  std::vector<std::vector<double>> train, targets;
  make_dataset(rng, 300, 0.0, train, targets);
  dk::Mlp net({2, 8, 1}, rng);
  for (int e = 0; e < 5; ++e) net.train_epoch(train, targets, 0.05, rng);
  std::vector<std::vector<double>> shifted, _t;
  make_dataset(rng, 300, 1.5, shifted, _t);
  dk::Analyzer an(net, train, shifted);

  std::vector<std::vector<double>> pool, _t2;
  make_dataset(rng, 120, 0.5, pool, _t2);
  const auto ranking = dk::select_tests(an, net, pool, 20);
  ASSERT_FALSE(ranking.empty());
  for (std::size_t i = 1; i < ranking.size(); ++i) {
    // Greedy gains are non-increasing; cumulative coverage non-decreasing.
    EXPECT_LE(ranking[i].new_buckets, ranking[i - 1].new_buckets);
    EXPECT_GE(ranking[i].cumulative_coverage,
              ranking[i - 1].cumulative_coverage);
    EXPECT_GT(ranking[i].new_buckets, 0u);
  }
}

TEST(TestSelection, SelectedSubsetBeatsRandomPrefix) {
  mx::Rng rng(207);
  std::vector<std::vector<double>> train, targets;
  make_dataset(rng, 300, 0.0, train, targets);
  dk::Mlp net({2, 8, 1}, rng);
  std::vector<std::vector<double>> shifted, _t;
  make_dataset(rng, 300, 1.5, shifted, _t);
  dk::Analyzer an(net, train, shifted);

  std::vector<std::vector<double>> pool, _t2;
  make_dataset(rng, 200, 0.8, pool, _t2);
  const std::size_t budget = 10;
  const auto ranking = dk::select_tests(an, net, pool, budget);
  std::vector<std::vector<double>> selected, prefix;
  for (const auto& r : ranking) selected.push_back(pool[r.pool_index]);
  for (std::size_t i = 0; i < budget && i < pool.size(); ++i) {
    prefix.push_back(pool[i]);
  }
  EXPECT_GE(dk::suite_coverage(an, net, selected),
            dk::suite_coverage(an, net, prefix));
}

TEST(TestSelection, StopsWhenNothingAddsCoverage) {
  mx::Rng rng(211);
  std::vector<std::vector<double>> train, targets;
  make_dataset(rng, 100, 0.0, train, targets);
  dk::Mlp net({2, 4, 1}, rng);
  dk::Analyzer an(net, train, train);
  // A pool of identical inputs: the second copy adds nothing.
  std::vector<std::vector<double>> pool(10, train[0]);
  const auto ranking = dk::select_tests(an, net, pool, 10);
  EXPECT_EQ(ranking.size(), 1u);
  EXPECT_DOUBLE_EQ(dk::suite_coverage(an, net, {}), 0.0);
}
