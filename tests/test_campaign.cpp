// Tests for the Monte Carlo campaign layer: seed derivation, scenario
// presets, outcome extraction, summary statistics, report writers, and the
// headline determinism contract — campaign results are bit-identical
// regardless of how many worker threads executed them.
#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include <gtest/gtest.h>

#include "sesame/campaign/campaign.hpp"
#include "sesame/campaign/report.hpp"
#include "sesame/mathx/stats.hpp"

namespace campaign = sesame::campaign;
namespace platform = sesame::platform;

namespace {

/// A scenario small enough for the test suite: two UAVs, 150 m square,
/// 200 s budget. Baseline arm (no monitor calibration) unless stated.
platform::RunnerConfig small_scenario() {
  platform::RunnerConfig config = campaign::ScenarioFactory::default_scenario();
  config.n_uavs = 2;
  config.area = {0.0, 150.0, 0.0, 150.0};
  config.n_persons = 3;
  config.max_time_s = 200.0;
  config.sesame_enabled = false;
  return config;
}

campaign::CampaignConfig small_campaign(std::size_t runs, std::size_t jobs) {
  campaign::CampaignConfig config;
  config.runs = runs;
  config.jobs = jobs;
  config.seed = 99;
  return config;
}

}  // namespace

TEST(SeedDerivation, IsAPureFunctionOfSeedAndIndex) {
  const std::uint64_t a = campaign::derive_run_seed(42, 0);
  EXPECT_EQ(a, campaign::derive_run_seed(42, 0));
  EXPECT_NE(a, campaign::derive_run_seed(42, 1));
  EXPECT_NE(a, campaign::derive_run_seed(43, 0));
  // Run 0 must not echo the campaign seed itself: a campaign and a manual
  // single run seeded S must not share a random stream.
  EXPECT_NE(campaign::derive_run_seed(42, 0), 42u);
}

TEST(SeedDerivation, NeighbouringRunsGetDistinctSeeds) {
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    seen.insert(campaign::derive_run_seed(7, i));
  }
  EXPECT_EQ(seen.size(), 10000u);  // no collisions across a large campaign
}

TEST(ScenarioFactory, PresetsCoverThePaperScenarios) {
  for (const auto& name : campaign::ScenarioFactory::preset_names()) {
    EXPECT_NO_THROW(campaign::ScenarioFactory::preset(name)) << name;
  }
  EXPECT_TRUE(campaign::ScenarioFactory::preset("battery_fault")
                  .base()
                  .battery_fault.has_value());
  EXPECT_TRUE(
      campaign::ScenarioFactory::preset("spoofing").base().spoofing.has_value());
  EXPECT_TRUE(
      campaign::ScenarioFactory::preset("spoofing_lossy").base().lossy_links);
  EXPECT_FALSE(
      campaign::ScenarioFactory::preset("baseline").base().sesame_enabled);
  const auto fleet = campaign::ScenarioFactory::preset("fleet_1024");
  EXPECT_EQ(fleet.base().n_uavs, 1024u);
  EXPECT_FALSE(fleet.base().sesame_enabled);
  // Chaos-capable: every run gets a seed-derived failure schedule with the
  // recovery subsystem active.
  const auto fleet_run = fleet.config_for_run(1, 0);
  EXPECT_TRUE(fleet_run.failure_schedule.has_value());
  EXPECT_TRUE(fleet_run.recovery_enabled);
  EXPECT_THROW(campaign::ScenarioFactory::preset("nope"),
               std::invalid_argument);
}

TEST(ScenarioFactory, ConfigForRunOverridesOnlyTheSeed) {
  const campaign::ScenarioFactory factory(small_scenario());
  const auto config = factory.config_for_run(99, 3);
  EXPECT_EQ(config.seed, campaign::derive_run_seed(99, 3));
  EXPECT_EQ(config.n_uavs, factory.base().n_uavs);
  EXPECT_DOUBLE_EQ(config.max_time_s, factory.base().max_time_s);
  EXPECT_EQ(config.sesame_enabled, factory.base().sesame_enabled);
}

// The acceptance criterion: byte-identical reports for --jobs 1 vs --jobs 8
// at a fixed campaign seed (run-claiming order and thread interleaving must
// never leak into results).
TEST(Campaign, ReportsAreBitIdenticalAcrossJobCounts) {
  const campaign::ScenarioFactory factory(small_scenario());
  const auto r1 = campaign::run_campaign(factory, small_campaign(6, 1));
  const auto r8 = campaign::run_campaign(factory, small_campaign(6, 8));

  EXPECT_EQ(r8.jobs_used, 6u);  // clamped to the number of runs
  EXPECT_EQ(campaign::campaign_json(r1), campaign::campaign_json(r8));

  std::ostringstream csv1, csv8, sum1, sum8;
  campaign::write_runs_csv(r1, csv1);
  campaign::write_runs_csv(r8, csv8);
  campaign::write_summary_csv(r1, sum1);
  campaign::write_summary_csv(r8, sum8);
  EXPECT_EQ(csv1.str(), csv8.str());
  EXPECT_EQ(sum1.str(), sum8.str());
}

// Same contract with the full stack engaged: SESAME monitors, a message
// fault plan and the distance-dependent lossy C2 radio.
TEST(Campaign, DeterminismHoldsUnderFaultsAndMonitors) {
  platform::RunnerConfig scenario = small_scenario();
  scenario.sesame_enabled = true;
  scenario.lossy_links = true;
  scenario.fault_plan = sesame::mw::FaultPlan::telemetry_stress();
  const campaign::ScenarioFactory factory(scenario);
  const auto r1 = campaign::run_campaign(factory, small_campaign(3, 1));
  const auto r4 = campaign::run_campaign(factory, small_campaign(3, 4));
  EXPECT_EQ(campaign::campaign_json(r1), campaign::campaign_json(r4));
  // Faults actually fired (the determinism is not vacuous).
  std::uint64_t dropped = 0;
  for (const auto& o : r1.outcomes) dropped += o.faults_dropped;
  EXPECT_GT(dropped, 0u);
}

TEST(Campaign, OutcomesCarryPerRunSeedsAndScalars) {
  const campaign::ScenarioFactory factory(small_scenario());
  const auto result = campaign::run_campaign(factory, small_campaign(4, 2));
  ASSERT_EQ(result.outcomes.size(), 4u);
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const auto& o = result.outcomes[i];
    EXPECT_EQ(o.run_index, i);
    EXPECT_EQ(o.seed, campaign::derive_run_seed(99, i));
    EXPECT_GT(o.total_time_s, 0.0);
    EXPECT_GE(o.availability, 0.0);
    EXPECT_LE(o.availability, 1.0);
    EXPECT_GT(o.min_soc, 0.0);
    EXPECT_LE(o.min_soc, 1.0);
    EXPECT_EQ(o.persons_total, 3u);
  }
}

TEST(Campaign, SummariesAgreeWithMathxOverOutcomes) {
  const campaign::ScenarioFactory factory(small_scenario());
  const auto result = campaign::run_campaign(factory, small_campaign(5, 2));

  std::vector<double> availability;
  for (const auto& o : result.outcomes) availability.push_back(o.availability);

  const campaign::StatSummary* row = nullptr;
  for (const auto& s : result.summaries) {
    if (s.metric == "availability") row = &s;
  }
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->count, 5u);
  EXPECT_DOUBLE_EQ(row->mean, sesame::mathx::mean(availability));
  EXPECT_DOUBLE_EQ(row->p90, sesame::mathx::quantile(availability, 0.9));
  EXPECT_LE(row->ci95_lo, row->mean);
  EXPECT_GE(row->ci95_hi, row->mean);
}

TEST(Campaign, MergedMetricsRollUpAcrossRuns) {
  const campaign::ScenarioFactory factory(small_scenario());
  const auto result = campaign::run_campaign(factory, small_campaign(3, 3));
  // Every run publishes telemetry for uav1; the merged counter is the sum
  // over all runs, so it must exceed any single run's step count.
  const auto* published = result.metrics.find(
      "sesame.mw.publish_total", {{"topic", "uav/uav1/telemetry"}});
  ASSERT_NE(published, nullptr);
  double total_steps = 0.0;
  for (const auto& o : result.outcomes) total_steps += o.total_time_s;
  EXPECT_DOUBLE_EQ(published->value, total_steps);  // dt = 1 s: one per step
}

TEST(Campaign, WorkerExceptionsPropagate) {
  platform::RunnerConfig bad = small_scenario();
  bad.n_uavs = 0;  // MissionRunner rejects this in its constructor
  const campaign::ScenarioFactory factory(bad);
  EXPECT_THROW(campaign::run_campaign(factory, small_campaign(4, 2)),
               std::invalid_argument);
}

TEST(Report, WallClockFamiliesAreExcluded) {
  EXPECT_FALSE(campaign::deterministic_metric("sesame.sim.step_duration_seconds"));
  EXPECT_FALSE(
      campaign::deterministic_metric("sesame.mw.delivery_latency_seconds"));
  EXPECT_TRUE(campaign::deterministic_metric("sesame.sim.time_s"));
  EXPECT_TRUE(campaign::deterministic_metric("sesame.mw.publish_total"));

  const campaign::ScenarioFactory factory(small_scenario());
  const auto result = campaign::run_campaign(factory, small_campaign(2, 1));
  const std::string json = campaign::campaign_json(result);
  EXPECT_EQ(json.find("_seconds"), std::string::npos);
  EXPECT_NE(json.find("sesame.mw.publish_total"), std::string::npos);
}

// The evaluation-cache contract, end to end: routing ConSert evaluation
// through CachedNetworkEvaluator must not change a single byte of any
// campaign artefact, even in the scenario that exercises every monitor
// (spoofing under the lossy C2 radio).
TEST(Campaign, EvaluationCacheDoesNotChangeResults) {
  platform::RunnerConfig scenario =
      campaign::ScenarioFactory::preset("spoofing_lossy").base();
  scenario.max_time_s = 400.0;  // enough to cover the attack + response

  platform::RunnerConfig uncached = scenario;
  uncached.consert_eval_cache = false;
  ASSERT_TRUE(scenario.consert_eval_cache);  // cache is the default

  const campaign::ScenarioFactory with(scenario);
  const campaign::ScenarioFactory without(uncached);
  const auto r_cached = campaign::run_campaign(with, small_campaign(2, 1));
  const auto r_plain = campaign::run_campaign(without, small_campaign(2, 1));

  EXPECT_EQ(campaign::campaign_json(r_cached), campaign::campaign_json(r_plain));
  std::ostringstream csv_c, csv_p, sum_c, sum_p;
  campaign::write_runs_csv(r_cached, csv_c);
  campaign::write_runs_csv(r_plain, csv_p);
  campaign::write_summary_csv(r_cached, sum_c);
  campaign::write_summary_csv(r_plain, sum_p);
  EXPECT_EQ(csv_c.str(), csv_p.str());
  EXPECT_EQ(sum_c.str(), sum_p.str());

  // The comparison is not vacuous: the scenario detects the attack.
  bool any_detected = false;
  for (const auto& o : r_cached.outcomes) any_detected |= o.attack_detected;
  EXPECT_TRUE(any_detected);
}

// ---------------------------------------------------------------------------
// Chaos campaigns (docs/ROBUSTNESS.md): every run draws a seed-derived
// vehicle-failure schedule with the recovery subsystem active. The
// determinism contract is unchanged — byte-identical reports for any
// worker count — and the chaos stream is independent of the world stream.

#include "sesame/sim/failure_schedule.hpp"

namespace {

campaign::ScenarioFactory chaos_factory() {
  // Chaos profile squeezed into the 200 s test scenario (the defaults
  // target full-length missions).
  sesame::sim::ChaosProfile profile;
  profile.earliest_time_s = 20.0;
  profile.latest_time_s = 120.0;
  profile.min_duration_s = 10.0;
  profile.max_duration_s = 30.0;
  campaign::ScenarioFactory factory(small_scenario());
  factory.enable_chaos(profile);
  return factory;
}

}  // namespace

TEST(Campaign, ChaosReportsAreBitIdenticalAcrossJobCounts) {
  const auto factory = chaos_factory();
  const auto r1 = campaign::run_campaign(factory, small_campaign(6, 1));
  const auto r4 = campaign::run_campaign(factory, small_campaign(6, 4));
  const auto r8 = campaign::run_campaign(factory, small_campaign(6, 8));

  EXPECT_EQ(campaign::campaign_json(r1), campaign::campaign_json(r4));
  EXPECT_EQ(campaign::campaign_json(r1), campaign::campaign_json(r8));
  std::ostringstream csv1, csv8, sum1, sum8;
  campaign::write_runs_csv(r1, csv1);
  campaign::write_runs_csv(r8, csv8);
  campaign::write_summary_csv(r1, sum1);
  campaign::write_summary_csv(r8, sum8);
  EXPECT_EQ(csv1.str(), csv8.str());
  EXPECT_EQ(sum1.str(), sum8.str());

  // The chaos actually bit (non-vacuous determinism), and the platform
  // weathered it without a single safety-invariant violation.
  std::size_t pings = 0, violations = 0;
  for (const auto& o : r1.outcomes) {
    pings += o.recovery_pings;
    violations += o.invariant_violations;
  }
  EXPECT_GT(pings, 0u);
  EXPECT_EQ(violations, 0u);
}

TEST(Campaign, FleetScaleChaosRunIsDeterministicAndInvariantClean) {
  // Fleet-scale integration: 256 vehicles sweep a 2x2 km area under a
  // seed-derived chaos schedule with the recovery subsystem active. The
  // run must stay byte-identical across worker counts and weather the
  // faults without a single safety-invariant violation.
  platform::RunnerConfig scenario = campaign::ScenarioFactory::default_scenario();
  scenario.sesame_enabled = false;  // baseline firmware: focus on the fleet
  scenario.n_uavs = 256;
  scenario.area = {0.0, 2000.0, 0.0, 2000.0};
  scenario.n_persons = 32;
  scenario.max_time_s = 60.0;  // enough for onset + escalation, not a sweep
  sesame::sim::ChaosProfile profile;
  profile.earliest_time_s = 10.0;
  profile.latest_time_s = 35.0;
  profile.min_duration_s = 8.0;
  profile.max_duration_s = 20.0;
  campaign::ScenarioFactory factory(scenario);
  factory.enable_chaos(profile);

  campaign::CampaignConfig cc;
  cc.runs = 1;
  cc.seed = 2026;
  cc.jobs = 1;
  const auto r1 = campaign::run_campaign(factory, cc);
  cc.jobs = 8;
  const auto r8 = campaign::run_campaign(factory, cc);

  EXPECT_EQ(campaign::campaign_json(r1), campaign::campaign_json(r8));
  ASSERT_EQ(r1.outcomes.size(), 1u);
  EXPECT_EQ(r1.outcomes[0].invariant_violations, 0u);
  // Non-vacuous: with 256 vehicles the schedule reliably silences someone,
  // so the recovery escalation must actually have fired.
  EXPECT_GT(r1.outcomes[0].recovery_pings, 0u);
}

TEST(ScenarioFactory, ChaosSchedulesAreSeedDerivedPerRun) {
  const auto factory = chaos_factory();
  const auto a = factory.config_for_run(7, 0);
  const auto b = factory.config_for_run(7, 0);
  const auto c = factory.config_for_run(7, 1);
  ASSERT_TRUE(a.failure_schedule.has_value());
  EXPECT_TRUE(a.recovery_enabled);
  ASSERT_TRUE(b.failure_schedule.has_value());

  // Same (campaign seed, run index): the identical schedule.
  ASSERT_EQ(a.failure_schedule->events.size(),
            b.failure_schedule->events.size());
  for (std::size_t i = 0; i < a.failure_schedule->events.size(); ++i) {
    EXPECT_EQ(a.failure_schedule->events[i].uav,
              b.failure_schedule->events[i].uav);
    EXPECT_EQ(a.failure_schedule->events[i].mode,
              b.failure_schedule->events[i].mode);
    EXPECT_DOUBLE_EQ(a.failure_schedule->events[i].time_s,
                     b.failure_schedule->events[i].time_s);
  }
  // The chaos stream is salted: a run's schedule is not the one a naive
  // derivation straight from the run seed would produce, so fault draws
  // never echo the world RNG stream.
  const auto signature = [](const sesame::sim::FailureSchedule& s) {
    std::string sig;
    for (const auto& e : s.events) {
      sig += e.uav + "/" + sesame::sim::failure_mode_name(e.mode) + "@" +
             std::to_string(e.time_s) + ";";
    }
    return sig;
  };
  sesame::sim::ChaosProfile profile;
  profile.earliest_time_s = 20.0;
  profile.latest_time_s = 120.0;
  profile.min_duration_s = 10.0;
  profile.max_duration_s = 30.0;
  const auto unsalted = sesame::sim::FailureSchedule::chaos(
      campaign::derive_run_seed(7, 1), {"uav1", "uav2"}, profile);
  ASSERT_TRUE(c.failure_schedule.has_value());
  EXPECT_NE(signature(*c.failure_schedule), signature(unsalted));
}

// ---------------------------------------------------------------------------
// Report validity (schema /3): statistics that are undefined for small run
// counts must never leak a bare "nan"/"inf" token into JSON (RFC 8259 has
// none) or a misleading zero into CSV. Regression for the n=1 campaign bug.

#include "sesame/eddi/ode.hpp"

TEST(Report, SingleRunReportIsValidJsonWithNullSpread) {
  const campaign::ScenarioFactory factory(small_scenario());
  const auto result = campaign::run_campaign(factory, small_campaign(1, 1));
  const std::string json = campaign::campaign_json(result);

  // parse_json rejects bare nan/inf tokens, so a successful parse proves
  // the document is RFC 8259-clean.
  const auto doc = sesame::eddi::ode::parse_json(json);
  EXPECT_EQ(doc.at("campaign").at("schema").as_string(),
            "sesame.campaign.report/3");

  bool checked = false;
  for (const auto& row : doc.at("summary").as_array()) {
    if (row.at("metric").as_string() != "availability") continue;
    checked = true;
    EXPECT_EQ(row.at("count").as_number(), 1.0);
    EXPECT_TRUE(row.at("mean").is_number());
    EXPECT_TRUE(row.at("min").is_number());
    // One sample: spread statistics are undefined, not zero.
    EXPECT_TRUE(row.at("stddev").is_null());
    EXPECT_TRUE(row.at("ci95_lo").is_null());
    EXPECT_TRUE(row.at("ci95_hi").is_null());
  }
  EXPECT_TRUE(checked);

  // Zero-contribution columns (no attack in this scenario) are all null.
  for (const auto& row : doc.at("summary").as_array()) {
    if (row.at("metric").as_string() != "attack_detection_latency_s") continue;
    EXPECT_EQ(row.at("count").as_number(), 0.0);
    EXPECT_TRUE(row.at("mean").is_null());
    EXPECT_TRUE(row.at("max").is_null());
  }
}

TEST(Report, SingleRunSummaryCsvLeavesUndefinedCellsEmpty) {
  const campaign::ScenarioFactory factory(small_scenario());
  const auto result = campaign::run_campaign(factory, small_campaign(1, 1));
  std::ostringstream out;
  campaign::write_summary_csv(result, out);
  const std::string csv = out.str();
  EXPECT_EQ(csv.find("nan"), std::string::npos);
  EXPECT_EQ(csv.find("inf"), std::string::npos);
  // availability row: count=1, mean present, stddev/ci95 cells empty.
  const auto pos = csv.find("availability,1,");
  ASSERT_NE(pos, std::string::npos);
  const std::string row = csv.substr(pos, csv.find('\n', pos) - pos);
  EXPECT_NE(row.find(",,,"), std::string::npos) << row;
}

TEST(Report, SummariesStayDefinedAndFiniteForMultiRunCampaigns) {
  const campaign::ScenarioFactory factory(small_scenario());
  const auto result = campaign::run_campaign(factory, small_campaign(3, 1));
  const auto doc = sesame::eddi::ode::parse_json(campaign::campaign_json(result));
  for (const auto& row : doc.at("summary").as_array()) {
    if (row.at("count").as_number() < 2.0) continue;
    EXPECT_TRUE(row.at("stddev").is_number())
        << row.at("metric").as_string();
    EXPECT_TRUE(row.at("ci95_lo").is_number());
    EXPECT_TRUE(row.at("ci95_hi").is_number());
  }
}

TEST(ScenarioFactory, ChaosPresetIsRegistered) {
  const auto names = campaign::ScenarioFactory::preset_names();
  bool found = false;
  for (const auto& n : names) found = found || n == "chaos";
  EXPECT_TRUE(found);
  const auto preset = campaign::ScenarioFactory::preset("chaos");
  EXPECT_TRUE(preset.chaos_enabled());
  EXPECT_TRUE(preset.base().recovery_enabled);
  EXPECT_TRUE(preset.config_for_run(1, 0).failure_schedule.has_value());
}
