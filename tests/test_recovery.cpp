// Unit tests for the fleet recovery state machine and the safety-invariant
// checker (docs/ROBUSTNESS.md). Both are pure components — no world, no
// bus — so the tests drive them with hand-rolled staleness signals.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "sesame/platform/invariants.hpp"
#include "sesame/platform/recovery.hpp"

namespace pf = sesame::platform;
namespace sim = sesame::sim;

namespace {

/// Records every hook invocation as "event:uav" in call order.
struct HookLog {
  std::vector<std::string> calls;
  pf::RecoveryHooks hooks() {
    pf::RecoveryHooks h;
    h.ping = [this](const std::string& u) { calls.push_back("ping:" + u); };
    h.demote = [this](const std::string& u) { calls.push_back("demote:" + u); };
    h.command_rth = [this](const std::string& u) {
      calls.push_back("rth:" + u);
    };
    h.declare_lost = [this](const std::string& u) {
      calls.push_back("lost:" + u);
    };
    h.recovered = [this](const std::string& u) {
      calls.push_back("recovered:" + u);
    };
    return h;
  }
};

pf::RecoveryConfig default_config() { return pf::RecoveryConfig{}; }

/// Staleness that grows linearly from a silence-onset time (contact is
/// fresh before onset, then nothing ever arrives again).
pf::RecoveryManager::StalenessFn silent_since(double onset_s, double* now_s) {
  return [onset_s, now_s](const std::string&) {
    return *now_s < onset_s ? 0.0 : *now_s - onset_s;
  };
}

}  // namespace

TEST(RecoveryManager, EscalatesThroughAllStatesWhenSilent) {
  HookLog log;
  double now = 0.0;
  pf::RecoveryManager mgr({"u1"}, default_config(), log.hooks());
  const auto staleness = silent_since(0.0, &now);

  // Defaults: window 5, ping 2 s backed off x2 (2 pings), grace 5, RTH 20.
  // Escalation timeline for silence from t=0, stepping at 1 Hz:
  //   t=6  staleness 6 > 5   -> ping #1 (deadline t=8)
  //   t=8  unanswered        -> ping #2 (deadline t=8+2*2=12)
  //   t=12 unanswered        -> demoted (grace until 17)
  //   t=17 grace over        -> RTH commanded (timeout 37)
  //   t=37 never came home   -> lost
  const std::map<double, pf::RecoveryState> expect = {
      {5.0, pf::RecoveryState::kHealthy},
      {6.0, pf::RecoveryState::kPinging},
      {11.0, pf::RecoveryState::kPinging},
      {12.0, pf::RecoveryState::kDemoted},
      {16.0, pf::RecoveryState::kDemoted},
      {17.0, pf::RecoveryState::kRthCommanded},
      {36.0, pf::RecoveryState::kRthCommanded},
      {37.0, pf::RecoveryState::kLost},
  };
  for (now = 1.0; now <= 40.0; now += 1.0) {
    mgr.step(now, staleness);
    if (const auto it = expect.find(now); it != expect.end()) {
      EXPECT_EQ(mgr.state("u1"), it->second) << "at t=" << now;
    }
  }

  EXPECT_EQ(log.calls, (std::vector<std::string>{
                           "ping:u1", "ping:u1", "demote:u1", "rth:u1",
                           "lost:u1"}));
  EXPECT_EQ(mgr.pings_sent(), 2u);
  EXPECT_EQ(mgr.demotions(), 1u);
  EXPECT_EQ(mgr.rth_commands(), 1u);
  EXPECT_EQ(mgr.lost_uavs(), std::vector<std::string>{"u1"});
  EXPECT_DOUBLE_EQ(mgr.times("u1").detect_s, 6.0);
  EXPECT_DOUBLE_EQ(mgr.times("u1").lost_s, 37.0);
}

TEST(RecoveryManager, RecoversWithSingleReArmMidEscalation) {
  HookLog log;
  double now = 0.0;
  pf::RecoveryManager mgr({"u1"}, default_config(), log.hooks());

  // Silent from t=0 until contact resumes at t=13 (vehicle was demoted at
  // t=12); staleness then drops back to zero.
  const auto staleness = [&now](const std::string&) {
    return now < 13.0 ? now : 0.0;
  };
  for (now = 1.0; now <= 20.0; now += 1.0) mgr.step(now, staleness);

  EXPECT_EQ(mgr.state("u1"), pf::RecoveryState::kHealthy);
  EXPECT_EQ(mgr.recoveries(), 1u);
  // Exactly one recovered event: the re-arm must not repeat every tick.
  int recovered = 0;
  for (const auto& c : log.calls) recovered += (c == "recovered:u1");
  EXPECT_EQ(recovered, 1);
  EXPECT_TRUE(mgr.lost_uavs().empty());
}

TEST(RecoveryManager, LostIsTerminalEvenIfContactResumes) {
  HookLog log;
  double now = 0.0;
  pf::RecoveryManager mgr({"u1"}, default_config(), log.hooks());
  // Silent long enough to be written off, then the radio comes back.
  const auto staleness = [&now](const std::string&) {
    return now < 50.0 ? now : 0.0;
  };
  for (now = 1.0; now <= 80.0; now += 1.0) mgr.step(now, staleness);
  EXPECT_EQ(mgr.state("u1"), pf::RecoveryState::kLost);
  EXPECT_EQ(mgr.recoveries(), 0u);
}

TEST(RecoveryManager, EscalationIsPerVehicle) {
  HookLog log;
  double now = 0.0;
  pf::RecoveryManager mgr({"u1", "u2"}, default_config(), log.hooks());
  // Only u2 goes silent.
  const auto staleness = [&now](const std::string& u) {
    return u == "u2" ? now : 0.0;
  };
  for (now = 1.0; now <= 40.0; now += 1.0) mgr.step(now, staleness);
  EXPECT_EQ(mgr.state("u1"), pf::RecoveryState::kHealthy);
  EXPECT_EQ(mgr.state("u2"), pf::RecoveryState::kLost);
  EXPECT_EQ(mgr.lost_uavs(), std::vector<std::string>{"u2"});
}

TEST(RecoveryManager, PingBackoffIsBounded) {
  HookLog log;
  double now = 0.0;
  pf::RecoveryConfig cfg;
  cfg.max_pings = 4;
  cfg.ping_backoff = 2.0;
  pf::RecoveryManager mgr({"u1"}, cfg, log.hooks());
  const auto staleness = silent_since(0.0, &now);
  for (now = 0.5; now <= 120.0; now += 0.5) mgr.step(now, staleness);
  // Never more pings than the budget, no matter how long the silence.
  EXPECT_EQ(mgr.pings_sent(), 4u);
  EXPECT_EQ(mgr.state("u1"), pf::RecoveryState::kLost);
}

TEST(RecoveryManager, RejectsBadConfig) {
  pf::RecoveryHooks hooks;
  pf::RecoveryConfig bad = default_config();
  bad.ping_backoff = 0.5;  // backoff < 1 would shrink the retry window
  EXPECT_THROW(pf::RecoveryManager({"u1"}, bad, hooks), std::invalid_argument);
  bad = default_config();
  bad.staleness_window_s = 0.0;
  EXPECT_THROW(pf::RecoveryManager({"u1"}, bad, hooks), std::invalid_argument);
  EXPECT_THROW(pf::RecoveryManager({}, default_config(), hooks),
               std::invalid_argument);
  pf::RecoveryManager mgr({"u1"}, default_config(), hooks);
  EXPECT_THROW(mgr.state("nope"), std::out_of_range);
}

TEST(InvariantChecker, MinSocFloorFiresOnlyWhileServing) {
  pf::InvariantChecker checker{pf::InvariantConfig{}};
  checker.check_min_soc(10.0, "u1", 0.5, sim::FlightMode::kMission);
  EXPECT_EQ(checker.total(), 0u);
  checker.check_min_soc(11.0, "u1", 0.01, sim::FlightMode::kMission);
  EXPECT_EQ(checker.total(), 1u);
  // A landed or returning vehicle may legitimately be nearly empty.
  checker.check_min_soc(12.0, "u1", 0.01, sim::FlightMode::kLanded);
  checker.check_min_soc(13.0, "u1", 0.01, sim::FlightMode::kReturnToBase);
  EXPECT_EQ(checker.total(), 1u);
  EXPECT_EQ(checker.violations()[0].invariant, "min_soc_floor");
}

TEST(InvariantChecker, LostUavMustNotServe) {
  pf::InvariantChecker checker{pf::InvariantConfig{}};
  checker.check_lost_uav_inactive(5.0, "u1", /*declared_lost=*/false,
                                  sim::FlightMode::kMission,
                                  /*mission_active=*/true);
  EXPECT_EQ(checker.total(), 0u);
  checker.check_lost_uav_inactive(6.0, "u1", /*declared_lost=*/true,
                                  sim::FlightMode::kCrashed,
                                  /*mission_active=*/false);
  EXPECT_EQ(checker.total(), 0u);  // lost and inert: fine
  checker.check_lost_uav_inactive(7.0, "u1", /*declared_lost=*/true,
                                  sim::FlightMode::kMission,
                                  /*mission_active=*/true);
  EXPECT_EQ(checker.total(), 2u);  // still active AND still flying tasks
  EXPECT_EQ(checker.violations()[0].invariant, "lost_uav_serving");
}

TEST(InvariantChecker, DetectionsNeverFromBlindOrCrashedSensor) {
  pf::InvariantChecker checker{pf::InvariantConfig{}};
  checker.check_detection_source(1.0, "u1", /*vision_healthy=*/true,
                                 sim::FlightMode::kMission);
  EXPECT_EQ(checker.total(), 0u);
  checker.check_detection_source(2.0, "u1", /*vision_healthy=*/false,
                                 sim::FlightMode::kMission);
  EXPECT_EQ(checker.total(), 1u);
  checker.check_detection_source(3.0, "u1", /*vision_healthy=*/true,
                                 sim::FlightMode::kCrashed);
  EXPECT_EQ(checker.total(), 2u);
  EXPECT_EQ(checker.violations()[1].invariant, "blind_detection");
}

TEST(InvariantChecker, EvidenceMustBeFresh) {
  pf::InvariantChecker checker{pf::InvariantConfig{}};
  checker.check_evidence_fresh(1.0, "u1", /*comm_evidence_good=*/true,
                               /*staleness_s=*/2.0);
  EXPECT_EQ(checker.total(), 0u);
  // Stale telemetry with the evidence already withdrawn is fine...
  checker.check_evidence_fresh(2.0, "u1", false, 60.0);
  EXPECT_EQ(checker.total(), 0u);
  // ...but asserting good comms on dead-silent telemetry is the violation.
  checker.check_evidence_fresh(3.0, "u1", true, 60.0);
  EXPECT_EQ(checker.total(), 1u);
  EXPECT_EQ(checker.violations()[0].invariant, "stale_evidence");
}

TEST(InvariantChecker, RejectsBadConfig) {
  pf::InvariantConfig bad;
  bad.min_soc_floor = 1.5;
  EXPECT_THROW(pf::InvariantChecker{bad}, std::invalid_argument);
  bad = {};
  bad.max_evidence_age_s = 0.0;
  EXPECT_THROW(pf::InvariantChecker{bad}, std::invalid_argument);
}
