// Tests for geodesy and position-fix estimation.
#include <cmath>

#include <gtest/gtest.h>

#include "sesame/geo/fix.hpp"
#include "sesame/geo/geodesy.hpp"
#include "sesame/mathx/rng.hpp"

namespace geo = sesame::geo;

namespace {
// Nicosia-area origin used across the SAR scenarios.
const geo::GeoPoint kOrigin{35.1856, 33.3823, 0.0};
}  // namespace

TEST(Haversine, ZeroForIdenticalPoints) {
  EXPECT_DOUBLE_EQ(geo::haversine_m(kOrigin, kOrigin), 0.0);
}

TEST(Haversine, KnownCityPairDistance) {
  // Paris <-> London great-circle distance is ~343.5 km.
  geo::GeoPoint paris{48.8566, 2.3522, 0.0};
  geo::GeoPoint london{51.5074, -0.1278, 0.0};
  EXPECT_NEAR(geo::haversine_m(paris, london), 343500.0, 1500.0);
}

TEST(Haversine, Symmetric) {
  geo::GeoPoint a{35.0, 33.0, 0.0};
  geo::GeoPoint b{35.01, 33.02, 0.0};
  EXPECT_DOUBLE_EQ(geo::haversine_m(a, b), geo::haversine_m(b, a));
}

TEST(SlantRange, IncludesAltitude) {
  geo::GeoPoint a = kOrigin;
  geo::GeoPoint b = kOrigin;
  b.alt_m = 30.0;
  EXPECT_NEAR(geo::slant_range_m(a, b), 30.0, 1e-9);
}

TEST(Bearing, CardinalDirections) {
  geo::GeoPoint north = geo::destination(kOrigin, 0.0, 1000.0);
  geo::GeoPoint east = geo::destination(kOrigin, 90.0, 1000.0);
  EXPECT_NEAR(geo::bearing_deg(kOrigin, north), 0.0, 0.1);
  EXPECT_NEAR(geo::bearing_deg(kOrigin, east), 90.0, 0.1);
}

TEST(Destination, RoundTripsDistanceAndBearing) {
  sesame::mathx::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const double brg = rng.uniform(0.0, 360.0);
    const double dist = rng.uniform(10.0, 5000.0);
    const geo::GeoPoint p = geo::destination(kOrigin, brg, dist);
    EXPECT_NEAR(geo::haversine_m(kOrigin, p), dist, 0.01);
    EXPECT_NEAR(std::fmod(geo::bearing_deg(kOrigin, p) - brg + 540.0, 360.0) - 180.0,
                0.0, 0.05);
  }
}

TEST(LocalFrame, RoundTripsGeoEnu) {
  geo::LocalFrame frame(kOrigin);
  sesame::mathx::Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    geo::EnuPoint e{rng.uniform(-2000.0, 2000.0), rng.uniform(-2000.0, 2000.0),
                    rng.uniform(0.0, 120.0)};
    const geo::GeoPoint g = frame.to_geo(e);
    const geo::EnuPoint back = frame.to_enu(g);
    EXPECT_NEAR(back.east_m, e.east_m, 1e-6);
    EXPECT_NEAR(back.north_m, e.north_m, 1e-6);
    EXPECT_NEAR(back.up_m, e.up_m, 1e-9);
  }
}

TEST(LocalFrame, EnuDistanceMatchesHaversineLocally) {
  geo::LocalFrame frame(kOrigin);
  const geo::GeoPoint p = geo::destination(kOrigin, 45.0, 800.0);
  const double enu =
      geo::enu_ground_distance_m(frame.to_enu(kOrigin), frame.to_enu(p));
  EXPECT_NEAR(enu, 800.0, 0.5);
}

TEST(FuseRangeBearing, SingleObservationProjectsDirectly) {
  geo::RangeBearingObservation o;
  o.observer = kOrigin;
  o.range_m = 500.0;
  o.bearing_deg = 90.0;
  o.range_sigma_m = 2.0;
  const auto fix = geo::fuse_range_bearing({o});
  const geo::GeoPoint expected = geo::destination(kOrigin, 90.0, 500.0);
  EXPECT_NEAR(geo::haversine_m(fix.position, expected), 0.0, 0.01);
  EXPECT_DOUBLE_EQ(fix.rms_residual_m, 0.0);
}

TEST(FuseRangeBearing, WeightsBySigma) {
  // Two observers disagree; the tighter sigma should dominate.
  const geo::GeoPoint target = geo::destination(kOrigin, 0.0, 1000.0);
  geo::RangeBearingObservation good;
  good.observer = kOrigin;
  good.range_m = 1000.0;
  good.bearing_deg = 0.0;
  good.range_sigma_m = 1.0;
  geo::RangeBearingObservation bad;
  bad.observer = kOrigin;
  bad.range_m = 1200.0;  // 200 m error
  bad.bearing_deg = 0.0;
  bad.range_sigma_m = 10.0;
  const auto fix = geo::fuse_range_bearing({good, bad});
  // Inverse-variance weight ratio 100:1 -> fused error ~2 m.
  EXPECT_LT(geo::haversine_m(fix.position, target), 5.0);
}

TEST(FuseRangeBearing, EmptyThrows) {
  EXPECT_THROW(geo::fuse_range_bearing({}), std::invalid_argument);
}

TEST(FuseRangeBearing, NonPositiveSigmaThrows) {
  geo::RangeBearingObservation o;
  o.observer = kOrigin;
  o.range_sigma_m = 0.0;
  EXPECT_THROW(geo::fuse_range_bearing({o}), std::invalid_argument);
}

TEST(Trilaterate, ExactRangesRecoverTarget) {
  const geo::GeoPoint target = geo::destination(kOrigin, 30.0, 700.0);
  std::vector<geo::RangeObservation> obs;
  for (double brg : {0.0, 120.0, 240.0}) {
    geo::RangeObservation o;
    o.observer = geo::destination(kOrigin, brg, 900.0);
    o.range_m = geo::haversine_m(o.observer, target);
    o.range_sigma_m = 1.0;
    obs.push_back(o);
  }
  const auto fix = geo::trilaterate(obs);
  ASSERT_TRUE(fix.has_value());
  EXPECT_TRUE(fix->converged);
  // Sub-decimetre: residual error is the tangent-plane vs great-circle
  // projection mismatch at ~1 km ranges, not solver error.
  EXPECT_LT(geo::haversine_m(fix->position, target), 0.2);
  EXPECT_LT(fix->rms_residual_m, 0.2);
}

TEST(Trilaterate, NoisyRangesStayAccurate) {
  sesame::mathx::Rng rng(21);
  const geo::GeoPoint target = geo::destination(kOrigin, 200.0, 400.0);
  std::vector<geo::RangeObservation> obs;
  for (double brg : {10.0, 100.0, 190.0, 280.0}) {
    geo::RangeObservation o;
    o.observer = geo::destination(kOrigin, brg, 800.0);
    o.range_m = geo::haversine_m(o.observer, target) + rng.normal(0.0, 2.0);
    o.range_sigma_m = 2.0;
    obs.push_back(o);
  }
  const auto fix = geo::trilaterate(obs);
  ASSERT_TRUE(fix.has_value());
  EXPECT_LT(geo::haversine_m(fix->position, target), 10.0);
}

TEST(Trilaterate, TooFewObservationsRejected) {
  geo::RangeObservation o;
  o.observer = kOrigin;
  o.range_m = 10.0;
  EXPECT_FALSE(geo::trilaterate({o, o}).has_value());
}

TEST(Trilaterate, RejectsNonPositiveSigma) {
  std::vector<geo::RangeObservation> obs(3);
  for (auto& o : obs) {
    o.observer = kOrigin;
    o.range_m = 100.0;
    o.range_sigma_m = -1.0;
  }
  EXPECT_FALSE(geo::trilaterate(obs).has_value());
}

TEST(Destination, HighLatitudeRoundTrip) {
  const geo::GeoPoint arctic{80.0, 10.0, 0.0};
  sesame::mathx::Rng rng(61);
  for (int i = 0; i < 30; ++i) {
    const double brg = rng.uniform(0.0, 360.0);
    const double dist = rng.uniform(10.0, 3000.0);
    const geo::GeoPoint p = geo::destination(arctic, brg, dist);
    EXPECT_NEAR(geo::haversine_m(arctic, p), dist, 0.05);
  }
}

TEST(Destination, AntimeridianLongitudeNormalized) {
  const geo::GeoPoint near_dateline{10.0, 179.999, 0.0};
  const geo::GeoPoint east = geo::destination(near_dateline, 90.0, 5000.0);
  EXPECT_GE(east.lon_deg, -180.0);
  EXPECT_LT(east.lon_deg, 180.0);
  EXPECT_LT(east.lon_deg, 0.0);  // wrapped to the western hemisphere
}

TEST(Bearing, WrapsIntoZeroTo360) {
  const geo::GeoPoint origin{35.0, 33.0, 0.0};
  sesame::mathx::Rng rng(67);
  for (int i = 0; i < 50; ++i) {
    const geo::GeoPoint p =
        geo::destination(origin, rng.uniform(0.0, 360.0), 500.0);
    const double b = geo::bearing_deg(origin, p);
    EXPECT_GE(b, 0.0);
    EXPECT_LT(b, 360.0);
  }
}
