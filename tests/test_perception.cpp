// Tests for the synthetic person detector: the altitude/quality
// relationship the SAR-accuracy experiment relies on, detection and
// false-alarm behaviour, and feature generation for SafeML/DeepKnowledge.
#include <gtest/gtest.h>

#include "sesame/mathx/stats.hpp"
#include "sesame/perception/detector.hpp"

namespace pc = sesame::perception;
namespace geo = sesame::geo;
namespace mx = sesame::mathx;

namespace {

std::vector<sesame::sim::Person> one_person_below() {
  return {sesame::sim::Person{{0.0, 0.0, 0.0}, false}};
}

}  // namespace

TEST(Detector, ValidatesConfig) {
  pc::DetectorConfig cfg;
  cfg.gsd_ref_m = 0.0;
  EXPECT_THROW((pc::PersonDetector{cfg}), std::invalid_argument);
  cfg = {};
  cfg.peak_detection_probability = 1.5;
  EXPECT_THROW((pc::PersonDetector{cfg}), std::invalid_argument);
  cfg = {};
  cfg.false_alarm_rate = 1.0;
  EXPECT_THROW((pc::PersonDetector{cfg}), std::invalid_argument);
}

TEST(Detector, PeakProbabilityAtLowAltitude) {
  pc::PersonDetector det{pc::DetectorConfig{}};
  // Near the reference GSD (about 18 m altitude) detection is ~99.8%.
  EXPECT_NEAR(det.detection_probability(15.0), 0.998, 0.004);
  EXPECT_DOUBLE_EQ(det.detection_probability(0.0), 0.0);
  EXPECT_DOUBLE_EQ(det.detection_probability(-5.0), 0.0);
}

TEST(Detector, ProbabilityMonotoneDecreasingInAltitude) {
  pc::PersonDetector det{pc::DetectorConfig{}};
  double prev = 1.1;
  for (double alt = 10.0; alt <= 120.0; alt += 10.0) {
    const double p = det.detection_probability(alt);
    EXPECT_LE(p, prev + 1e-12) << "alt=" << alt;
    EXPECT_GE(p, 0.0);
    prev = p;
  }
  // High altitude is materially worse than low altitude.
  EXPECT_GT(det.detection_probability(20.0), 0.99);
  EXPECT_LT(det.detection_probability(80.0), 0.6);
}

TEST(Detector, DetectsPersonInFootprint) {
  pc::PersonDetector det{pc::DetectorConfig{}};
  mx::Rng rng(3);
  const auto persons = one_person_below();
  int hits = 0;
  const int frames = 2000;
  for (int i = 0; i < frames; ++i) {
    for (const auto& d : det.detect({0.0, 0.0, 20.0}, persons, rng)) {
      if (d.person_index == 0u) ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / frames,
              det.detection_probability(20.0), 0.02);
}

TEST(Detector, MissesPersonOutsideFootprint) {
  pc::PersonDetector det{pc::DetectorConfig{}};
  mx::Rng rng(5);
  std::vector<sesame::sim::Person> persons{{{1000.0, 0.0, 0.0}, false}};
  for (int i = 0; i < 100; ++i) {
    for (const auto& d : det.detect({0.0, 0.0, 20.0}, persons, rng)) {
      EXPECT_FALSE(d.person_index.has_value());  // only false alarms possible
    }
  }
}

TEST(Detector, NoDetectionsOnGround) {
  pc::PersonDetector det{pc::DetectorConfig{}};
  mx::Rng rng(7);
  EXPECT_TRUE(det.detect({0.0, 0.0, 0.0}, one_person_below(), rng).empty());
}

TEST(Detector, CandidateSubsetMatchesFullScanBitForBit) {
  // The spatial-index path hands detect() a pre-filtered ascending
  // candidate list. Any superset of the persons actually inside the
  // footprint must reproduce the full scan exactly — same RNG draws, same
  // detections — because out-of-footprint persons draw nothing.
  pc::PersonDetector det{pc::DetectorConfig{}};
  std::vector<sesame::sim::Person> persons;
  for (int i = 0; i < 24; ++i) {
    // Mix of in-footprint (near origin) and far-away persons.
    const double east = (i % 3 == 0) ? 0.5 * i : 500.0 + 10.0 * i;
    persons.push_back({{east, 0.25 * i, 0.0}, false});
  }
  const geo::EnuPoint uav_pos{0.0, 0.0, 20.0};
  const auto fp = det.camera().footprint(uav_pos);

  std::vector<std::uint32_t> in_footprint;
  std::vector<std::uint32_t> superset;
  for (std::uint32_t i = 0; i < persons.size(); ++i) {
    superset.push_back(i);
    if (fp.contains(persons[i].position)) in_footprint.push_back(i);
  }
  ASSERT_FALSE(in_footprint.empty());
  ASSERT_LT(in_footprint.size(), persons.size());

  for (int frame = 0; frame < 50; ++frame) {
    mx::Rng full_rng(100 + frame);
    mx::Rng tight_rng(100 + frame);
    mx::Rng super_rng(100 + frame);
    const auto full = det.detect(uav_pos, persons, full_rng);
    const auto tight = det.detect(uav_pos, persons, in_footprint, tight_rng);
    const auto super = det.detect(uav_pos, persons, superset, super_rng);
    for (const auto* other : {&tight, &super}) {
      ASSERT_EQ(full.size(), other->size());
      for (std::size_t d = 0; d < full.size(); ++d) {
        EXPECT_EQ(full[d].person_index, (*other)[d].person_index);
        EXPECT_DOUBLE_EQ(full[d].confidence, (*other)[d].confidence);
        EXPECT_DOUBLE_EQ(full[d].estimated_position.east_m,
                         (*other)[d].estimated_position.east_m);
        EXPECT_DOUBLE_EQ(full[d].estimated_position.north_m,
                         (*other)[d].estimated_position.north_m);
      }
    }
  }
}

TEST(Detector, FalseAlarmRateApproximatelyConfigured) {
  pc::DetectorConfig cfg;
  cfg.false_alarm_rate = 0.10;
  pc::PersonDetector det{cfg};
  mx::Rng rng(9);
  int false_alarms = 0;
  const int frames = 5000;
  const std::vector<sesame::sim::Person> nobody;
  for (int i = 0; i < frames; ++i) {
    for (const auto& d : det.detect({0.0, 0.0, 30.0}, nobody, rng)) {
      if (!d.person_index.has_value()) ++false_alarms;
    }
  }
  EXPECT_NEAR(static_cast<double>(false_alarms) / frames, 0.10, 0.02);
}

TEST(Detector, LocalizationNoiseGrowsWithAltitude) {
  pc::PersonDetector det{pc::DetectorConfig{}};
  mx::Rng rng(11);
  const auto persons = one_person_below();
  auto rms_error = [&](double alt) {
    double ss = 0.0;
    int n = 0;
    for (int i = 0; i < 3000; ++i) {
      for (const auto& d : det.detect({0.0, 0.0, alt}, persons, rng)) {
        if (!d.person_index) continue;
        ss += d.estimated_position.east_m * d.estimated_position.east_m +
              d.estimated_position.north_m * d.estimated_position.north_m;
        ++n;
      }
    }
    return n ? std::sqrt(ss / n) : 0.0;
  };
  EXPECT_LT(rms_error(15.0), rms_error(70.0));
}

TEST(Detector, ConfidenceWithinBounds) {
  pc::PersonDetector det{pc::DetectorConfig{}};
  mx::Rng rng(13);
  const auto persons = one_person_below();
  for (int i = 0; i < 500; ++i) {
    for (const auto& d : det.detect({0.0, 0.0, 40.0}, persons, rng)) {
      EXPECT_GT(d.confidence, 0.0);
      EXPECT_LT(d.confidence, 1.0);
    }
  }
}

TEST(FrameFeatures, ShiftWithAltitude) {
  pc::PersonDetector det{pc::DetectorConfig{}};
  mx::Rng rng(17);
  mx::RunningStats sharp_low, sharp_high, scale_low, scale_high;
  for (int i = 0; i < 200; ++i) {
    const auto lo = det.frame_features(18.0, rng);
    const auto hi = det.frame_features(70.0, rng);
    sharp_low.add(lo.sharpness);
    sharp_high.add(hi.sharpness);
    scale_low.add(lo.target_scale);
    scale_high.add(hi.target_scale);
  }
  EXPECT_GT(sharp_low.mean(), sharp_high.mean());
  EXPECT_GT(scale_low.mean(), scale_high.mean());
}

TEST(FrameFeatures, VectorHasDeclaredArity) {
  pc::PersonDetector det{pc::DetectorConfig{}};
  mx::Rng rng(19);
  const auto f = det.frame_features(30.0, rng);
  EXPECT_EQ(f.as_vector().size(), pc::FrameFeatures::kNumFeatures);
}

TEST(DetectionFeatures, ArityAndAltitudeSensitivity) {
  pc::PersonDetector det{pc::DetectorConfig{}};
  mx::Rng rng(23);
  pc::Detection d;
  d.confidence = 0.9;
  const auto lo = det.detection_features(d, 18.0, rng);
  const auto hi = det.detection_features(d, 70.0, rng);
  EXPECT_EQ(lo.size(), pc::PersonDetector::kDetectionFeatureCount);
  EXPECT_LT(lo[0], hi[0]);  // normalized GSD grows with altitude
  EXPECT_DOUBLE_EQ(lo[1], 0.9);
}

#include "sesame/perception/tracker.hpp"

namespace {
pc::Detection det_at(double e, double n, double conf = 0.9) {
  pc::Detection d;
  d.person_index = 0;
  d.confidence = conf;
  d.estimated_position = {e, n, 0.0};
  return d;
}
}  // namespace

TEST(Tracker, ValidatesConfig) {
  pc::TrackerConfig cfg;
  cfg.gate_m = 0.0;
  EXPECT_THROW((pc::PersonTracker{cfg}), std::invalid_argument);
  cfg = {};
  cfg.confirm_hits = 0;
  EXPECT_THROW((pc::PersonTracker{cfg}), std::invalid_argument);
}

TEST(Tracker, ConfirmsAfterRepeatedHits) {
  pc::PersonTracker tracker;  // confirm after 3 hits
  tracker.update({det_at(10.0, 10.0)});
  tracker.update({det_at(10.5, 9.8)});
  EXPECT_TRUE(tracker.confirmed().empty());  // 2 hits: still tentative
  tracker.update({det_at(9.7, 10.2)});
  const auto confirmed = tracker.confirmed();
  ASSERT_EQ(confirmed.size(), 1u);
  EXPECT_EQ(confirmed[0].hits, 3u);
  // Averaged position near the true point.
  EXPECT_NEAR(confirmed[0].position.east_m, 10.0, 0.5);
  EXPECT_NEAR(confirmed[0].position.north_m, 10.0, 0.5);
}

TEST(Tracker, IsolatedFalseAlarmDiesOut) {
  pc::TrackerConfig cfg;
  cfg.max_misses = 3;
  pc::PersonTracker tracker(cfg);
  tracker.update({det_at(50.0, 50.0, 0.3)});  // single spurious hit
  for (int i = 0; i < 5; ++i) tracker.update({});
  EXPECT_TRUE(tracker.tracks().empty());
}

TEST(Tracker, SeparatePersonsGetSeparateTracks) {
  pc::PersonTracker tracker;
  for (int i = 0; i < 4; ++i) {
    tracker.update({det_at(0.0, 0.0), det_at(100.0, 0.0)});
  }
  EXPECT_EQ(tracker.confirmed().size(), 2u);
}

TEST(Tracker, ConfirmedTracksPersistThroughGaps) {
  pc::PersonTracker tracker;
  for (int i = 0; i < 3; ++i) tracker.update({det_at(5.0, 5.0)});
  ASSERT_EQ(tracker.confirmed().size(), 1u);
  for (int i = 0; i < 50; ++i) tracker.update({});  // long occlusion
  EXPECT_EQ(tracker.confirmed().size(), 1u);  // persons do not vanish
}

TEST(Tracker, NearestConfirmedRespectsGate) {
  pc::PersonTracker tracker;
  for (int i = 0; i < 3; ++i) tracker.update({det_at(20.0, 20.0)});
  EXPECT_TRUE(tracker.nearest_confirmed({21.0, 20.0, 0.0}).has_value());
  EXPECT_FALSE(tracker.nearest_confirmed({80.0, 20.0, 0.0}).has_value());
}

TEST(Tracker, EndToEndSuppressesFalseAlarms) {
  // Run the real detector over a person for many frames: the tracker
  // confirms exactly one track even though raw detections include false
  // alarms scattered across the footprint.
  pc::DetectorConfig dcfg;
  dcfg.false_alarm_rate = 0.2;
  pc::PersonDetector det{dcfg};
  mx::Rng rng(91);
  std::vector<sesame::sim::Person> persons{{{0.0, 0.0, 0.0}, false}};
  pc::TrackerConfig tcfg;
  tcfg.confirm_hits = 5;
  pc::PersonTracker tracker(tcfg);
  for (int f = 0; f < 60; ++f) {
    tracker.update(det.detect({0.0, 0.0, 20.0}, persons, rng));
  }
  const auto confirmed = tracker.confirmed();
  ASSERT_GE(confirmed.size(), 1u);
  // The dominant confirmed track sits on the person.
  EXPECT_LT(geo::enu_ground_distance_m(confirmed[0].position, {0.0, 0.0, 0.0}),
            2.0);
  // Scattered false alarms (each at a random spot) must not confirm.
  EXPECT_LE(confirmed.size(), 2u);
}
