// Tests for the CTMC/DTMC engines: transient analysis correctness against
// closed-form results, absorbing-state behaviour, builder validation.
#include <cmath>

#include <gtest/gtest.h>

#include "sesame/markov/ctmc.hpp"
#include "sesame/mathx/rng.hpp"

namespace mk = sesame::markov;
namespace mx = sesame::mathx;

namespace {

/// Two-state birth-death: healthy -> failed at rate lambda.
mk::Ctmc simple_failure_chain(double lambda) {
  mk::CtmcBuilder b;
  const auto healthy = b.add_state("healthy");
  const auto failed = b.add_state("failed");
  b.add_transition(healthy, failed, lambda);
  return b.build();
}

}  // namespace

TEST(Ctmc, RejectsBadGenerators) {
  EXPECT_THROW(mk::Ctmc(mx::Matrix(2, 3)), std::invalid_argument);
  // Row does not sum to zero.
  EXPECT_THROW(mk::Ctmc(mx::Matrix{{-1.0, 0.5}, {0.0, 0.0}}), std::invalid_argument);
  // Negative off-diagonal.
  EXPECT_THROW(mk::Ctmc(mx::Matrix{{1.0, -1.0}, {0.0, 0.0}}), std::invalid_argument);
}

TEST(Ctmc, TwoStateMatchesClosedForm) {
  const double lambda = 0.01;
  auto chain = simple_failure_chain(lambda);
  for (double t : {0.0, 10.0, 100.0, 500.0}) {
    const auto pi = chain.transient({1.0, 0.0}, t);
    EXPECT_NEAR(pi[1], 1.0 - std::exp(-lambda * t), 1e-9) << "t=" << t;
    EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-9);
  }
}

TEST(Ctmc, RepairableMachineMatchesClosedForm) {
  // healthy <-> failed with rates lambda, mu. Availability
  // A(t) = mu/(l+m) + l/(l+m) e^{-(l+m)t} starting healthy.
  const double lambda = 0.02, mu = 0.05;
  mk::CtmcBuilder b;
  const auto up = b.add_state("up");
  const auto down = b.add_state("down");
  b.add_transition(up, down, lambda).add_transition(down, up, mu);
  auto chain = b.build();
  for (double t : {1.0, 20.0, 200.0}) {
    const auto pi = chain.transient({1.0, 0.0}, t);
    const double expected =
        mu / (lambda + mu) + lambda / (lambda + mu) * std::exp(-(lambda + mu) * t);
    EXPECT_NEAR(pi[0], expected, 1e-9) << "t=" << t;
  }
}

TEST(Ctmc, TransientValidatesInput) {
  auto chain = simple_failure_chain(0.1);
  EXPECT_THROW(chain.transient({0.5, 0.2}, 1.0), std::invalid_argument);
  EXPECT_THROW(chain.transient({1.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(chain.transient({1.0, 0.0}, -1.0), std::invalid_argument);
}

TEST(Ctmc, AbsorbingStateDetection) {
  auto chain = simple_failure_chain(0.1);
  EXPECT_FALSE(chain.is_absorbing(0));
  EXPECT_TRUE(chain.is_absorbing(1));
  const auto abs = chain.absorbing_states();
  ASSERT_EQ(abs.size(), 1u);
  EXPECT_EQ(abs[0], 1u);
}

TEST(Ctmc, ProbabilityInSubset) {
  auto chain = simple_failure_chain(0.01);
  const double p = chain.probability_in({1.0, 0.0}, 100.0, {1});
  EXPECT_NEAR(p, 1.0 - std::exp(-1.0), 1e-9);
}

TEST(Ctmc, MeanTimeToAbsorptionSingleStage) {
  auto chain = simple_failure_chain(0.25);
  EXPECT_NEAR(chain.mean_time_to_absorption(0), 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(chain.mean_time_to_absorption(1), 0.0);
}

TEST(Ctmc, MeanTimeToAbsorptionErlangStages) {
  // Three sequential stages each at rate 2 -> MTTA = 1.5.
  mk::CtmcBuilder b;
  const auto s0 = b.add_state("s0");
  const auto s1 = b.add_state("s1");
  const auto s2 = b.add_state("s2");
  const auto dead = b.add_state("dead");
  b.add_transition(s0, s1, 2.0).add_transition(s1, s2, 2.0).add_transition(s2, dead,
                                                                           2.0);
  EXPECT_NEAR(b.build().mean_time_to_absorption(s0), 1.5, 1e-9);
}

TEST(Ctmc, LongHorizonUsesExpmFallback) {
  // Large lambda*t exercises the expm fallback path (lt > 5000).
  auto chain = simple_failure_chain(100.0);
  const auto pi = chain.transient({1.0, 0.0}, 100.0);
  EXPECT_NEAR(pi[1], 1.0, 1e-9);
}

TEST(Ctmc, UniformizationMatchesExpmOnRandomChains) {
  mx::Rng rng(43);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 5;
    mx::Matrix q(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      double row = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        q(i, j) = rng.uniform(0.0, 0.3);
        row += q(i, j);
      }
      q(i, i) = -row;
    }
    mk::Ctmc chain(q);
    std::vector<double> pi0(n, 0.0);
    pi0[0] = 1.0;
    const double t = rng.uniform(0.5, 20.0);
    const auto uni = chain.transient(pi0, t);
    const auto exact = mx::expm(q * t).apply_transposed(pi0);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(uni[i], exact[i], 1e-8) << "state " << i;
    }
  }
}

TEST(CtmcBuilder, RejectsInvalidEdges) {
  mk::CtmcBuilder b;
  const auto a = b.add_state("a");
  const auto c = b.add_state("b");
  EXPECT_THROW(b.add_transition(a, a, 1.0), std::invalid_argument);
  EXPECT_THROW(b.add_transition(a, 5, 1.0), std::out_of_range);
  EXPECT_THROW(b.add_transition(a, c, -2.0), std::invalid_argument);
}

TEST(CtmcBuilder, NamesArePreserved) {
  mk::CtmcBuilder b;
  b.add_state("alpha");
  b.add_state("omega");
  auto chain = b.build();
  EXPECT_EQ(chain.state_name(0), "alpha");
  EXPECT_EQ(chain.state_name(1), "omega");
}

TEST(Dtmc, RejectsNonStochastic) {
  EXPECT_THROW(mk::Dtmc(mx::Matrix{{0.5, 0.4}, {0.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(mk::Dtmc(mx::Matrix{{1.5, -0.5}, {0.0, 1.0}}), std::invalid_argument);
}

TEST(Dtmc, StepEvolution) {
  mk::Dtmc chain(mx::Matrix{{0.0, 1.0}, {1.0, 0.0}});
  const auto pi1 = chain.step({1.0, 0.0}, 1);
  EXPECT_DOUBLE_EQ(pi1[1], 1.0);
  const auto pi2 = chain.step({1.0, 0.0}, 2);
  EXPECT_DOUBLE_EQ(pi2[0], 1.0);
}

TEST(Dtmc, StationaryDistribution) {
  mk::Dtmc chain(mx::Matrix{{0.9, 0.1}, {0.5, 0.5}});
  const auto pi = chain.stationary();
  // Solve pi = pi P -> pi = (5/6, 1/6).
  EXPECT_NEAR(pi[0], 5.0 / 6.0, 1e-9);
  EXPECT_NEAR(pi[1], 1.0 / 6.0, 1e-9);
}

// Property: transient distributions remain valid probability vectors.
TEST(CtmcProperty, TransientIsDistribution) {
  mx::Rng rng(47);
  for (int trial = 0; trial < 10; ++trial) {
    mk::CtmcBuilder b;
    const std::size_t n = 4 + trial % 3;
    for (std::size_t i = 0; i < n; ++i) b.add_state("s" + std::to_string(i));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i != j && rng.bernoulli(0.5)) {
          b.add_transition(i, j, rng.uniform(0.01, 2.0));
        }
      }
    }
    auto chain = b.build();
    std::vector<double> pi0(n, 0.0);
    pi0[rng.uniform_index(n)] = 1.0;
    for (double t : {0.1, 1.0, 10.0, 100.0}) {
      const auto pi = chain.transient(pi0, t);
      double sum = 0.0;
      for (double p : pi) {
        EXPECT_GE(p, -1e-10);
        sum += p;
      }
      EXPECT_NEAR(sum, 1.0, 1e-8);
    }
  }
}

// Property: failure probability of a pure-death chain is monotone in time.
TEST(CtmcProperty, AbsorptionProbabilityMonotone) {
  auto chain = simple_failure_chain(0.005);
  double prev = -1.0;
  for (double t = 0.0; t <= 1000.0; t += 50.0) {
    const double p = chain.probability_in({1.0, 0.0}, t, {1});
    EXPECT_GE(p, prev);
    prev = p;
  }
}

#include "sesame/markov/simulate.hpp"

TEST(Simulate, TrajectoryRespectsChainStructure) {
  mk::CtmcBuilder b;
  const auto a = b.add_state("a");
  const auto c = b.add_state("b");
  const auto d = b.add_state("dead");
  b.add_transition(a, c, 1.0).add_transition(c, d, 1.0);
  const auto chain = b.build();
  mx::Rng rng(71);
  for (int i = 0; i < 50; ++i) {
    const auto traj = mk::sample_trajectory(chain, a, 100.0, rng);
    ASSERT_FALSE(traj.states.empty());
    EXPECT_EQ(traj.states.front(), a);
    // Visits are in chain order a -> b -> dead (no skipping).
    for (std::size_t k = 1; k < traj.states.size(); ++k) {
      EXPECT_EQ(traj.states[k], traj.states[k - 1] + 1);
      EXPECT_GE(traj.entry_times[k], traj.entry_times[k - 1]);
    }
    if (traj.absorbed) {
      EXPECT_EQ(traj.states.back(), d);
    }
  }
}

TEST(Simulate, TrajectoryValidation) {
  auto chain = simple_failure_chain(0.1);
  mx::Rng rng(1);
  EXPECT_THROW(mk::sample_trajectory(chain, 9, 1.0, rng), std::out_of_range);
  EXPECT_THROW(mk::sample_trajectory(chain, 0, -1.0, rng),
               std::invalid_argument);
  EXPECT_THROW(mk::estimate_transient(chain, 0, 1.0, 0, rng),
               std::invalid_argument);
}

TEST(Simulate, MonteCarloMatchesAnalyticTransient) {
  const double lambda = 0.05;
  auto chain = simple_failure_chain(lambda);
  mx::Rng rng(73);
  const double t = 20.0;
  const auto mc = mk::estimate_transient(chain, 0, t, 20000, rng);
  const double analytic = 1.0 - std::exp(-lambda * t);
  EXPECT_NEAR(mc[1], analytic, 0.02);
}

TEST(Simulate, FirstPassageMatchesMtta) {
  // Single-stage chain: first-passage time is Exp(lambda), mean 1/lambda.
  const double lambda = 0.2;
  auto chain = simple_failure_chain(lambda);
  mx::Rng rng(79);
  const auto stats = mk::estimate_first_passage(chain, 0, {1}, 1000.0, 5000, rng);
  EXPECT_GT(stats.hit_fraction, 0.99);
  EXPECT_NEAR(stats.mean_time, 1.0 / lambda, 0.2);
}

TEST(Simulate, FirstPassageFromTargetIsZero) {
  auto chain = simple_failure_chain(0.1);
  mx::Rng rng(83);
  const auto hit = mk::sample_first_passage(chain, 1, {1}, 10.0, rng);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 0.0);
}

TEST(Simulate, HorizonLimitsHits) {
  auto chain = simple_failure_chain(0.001);  // slow failures
  mx::Rng rng(89);
  const auto stats = mk::estimate_first_passage(chain, 0, {1}, 1.0, 2000, rng);
  EXPECT_LT(stats.hit_fraction, 0.05);  // ~0.1% expected
  EXPECT_THROW(mk::sample_first_passage(chain, 0, {}, 1.0, rng),
               std::invalid_argument);
}

TEST(Occupancy, TwoStateMatchesClosedForm) {
  // healthy -> failed at rate l: E[time healthy over [0,T]] =
  // (1 - e^{-lT})/l; occupancy entries sum to T.
  const double lambda = 0.05;
  auto chain = simple_failure_chain(lambda);
  const double horizon = 40.0;
  const auto occ = chain.expected_occupancy({1.0, 0.0}, horizon);
  const double healthy = (1.0 - std::exp(-lambda * horizon)) / lambda;
  EXPECT_NEAR(occ[0], healthy, 1e-6);
  EXPECT_NEAR(occ[0] + occ[1], horizon, 1e-6);
}

TEST(Occupancy, ValidatesInputs) {
  auto chain = simple_failure_chain(0.1);
  EXPECT_THROW(chain.expected_occupancy({1.0, 0.0}, -1.0),
               std::invalid_argument);
  EXPECT_THROW(chain.expected_occupancy({1.0, 0.0}, 1.0, 0),
               std::invalid_argument);
  const auto zero = chain.expected_occupancy({1.0, 0.0}, 0.0);
  EXPECT_DOUBLE_EQ(zero[0], 0.0);
}

TEST(Occupancy, RepairableSteadyStateShare) {
  // Fast-mixing repairable machine: occupancy over a long horizon
  // approaches the stationary split mu/(l+mu), l/(l+mu).
  mk::CtmcBuilder b;
  const auto up = b.add_state("up");
  const auto down = b.add_state("down");
  b.add_transition(up, down, 0.5).add_transition(down, up, 1.5);
  const auto chain = b.build();
  const double horizon = 200.0;
  const auto occ = chain.expected_occupancy({1.0, 0.0}, horizon, 200);
  EXPECT_NEAR(occ[0] / horizon, 0.75, 0.01);
  EXPECT_NEAR(occ[1] / horizon, 0.25, 0.01);
}

TEST(EmbeddedDtmc, JumpProbabilitiesNormalized) {
  mk::CtmcBuilder b;
  const auto s0 = b.add_state("s0");
  const auto s1 = b.add_state("s1");
  const auto s2 = b.add_state("s2");
  b.add_transition(s0, s1, 2.0).add_transition(s0, s2, 6.0);
  b.add_transition(s1, s0, 1.0);
  const auto jump = b.build().embedded_dtmc();
  // From s0: P(->s1) = 2/8, P(->s2) = 6/8.
  EXPECT_NEAR(jump.transition()(s0, s1), 0.25, 1e-12);
  EXPECT_NEAR(jump.transition()(s0, s2), 0.75, 1e-12);
  // s2 is absorbing -> self-loop.
  EXPECT_DOUBLE_EQ(jump.transition()(s2, s2), 1.0);
  // Names carried over.
  EXPECT_EQ(jump.state_name(1), "s1");
}

TEST(EmbeddedDtmc, AbsorptionProbabilityMatchesCtmc) {
  // Competing risks from s0: absorb in a (rate 1) or b (rate 3). The
  // CTMC's eventual absorption split equals the jump chain's first step.
  mk::CtmcBuilder b;
  const auto s0 = b.add_state("s0");
  const auto a = b.add_state("a");
  const auto c = b.add_state("b");
  b.add_transition(s0, a, 1.0).add_transition(s0, c, 3.0);
  const auto chain = b.build();
  const auto ctmc_split = chain.transient({1.0, 0.0, 0.0}, 1e4);
  const auto jump_split = chain.embedded_dtmc().step({1.0, 0.0, 0.0}, 1);
  EXPECT_NEAR(ctmc_split[a], jump_split[a], 1e-9);
  EXPECT_NEAR(ctmc_split[c], jump_split[c], 1e-9);
  EXPECT_NEAR(jump_split[a], 0.25, 1e-12);
}

TEST(Ctmc, ScaledRatesMatchesRebuiltChain) {
  mk::CtmcBuilder b;
  const auto h = b.add_state("healthy");
  const auto l = b.add_state("low");
  const auto f = b.add_state("failed");
  b.add_transition(h, l, 1.0 / 7200.0);
  b.add_transition(l, f, 1.0 / 1800.0);
  const mk::Ctmc base = b.build();

  const double factor = 3.7;
  const mk::Ctmc scaled = base.scaled_rates(factor);

  mk::CtmcBuilder b2;
  const auto h2 = b2.add_state("healthy");
  const auto l2 = b2.add_state("low");
  const auto f2 = b2.add_state("failed");
  b2.add_transition(h2, l2, (1.0 / 7200.0) * factor);
  b2.add_transition(l2, f2, (1.0 / 1800.0) * factor);
  const mk::Ctmc rebuilt = b2.build();

  // Bit-identical generators: (-r)*f == -(r*f) in IEEE arithmetic for the
  // single-exit rows these models use.
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(scaled.generator()(i, j), rebuilt.generator()(i, j))
          << "entry (" << i << "," << j << ")";
    }
  }
  EXPECT_EQ(scaled.state_name(0), "healthy");

  // Transient results follow bit-for-bit.
  const std::vector<double> pi0{1.0, 0.0, 0.0};
  const auto a = scaled.transient(pi0, 600.0);
  const auto c = rebuilt.transient(pi0, 600.0);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(a[i], c[i]);
}

TEST(Ctmc, ScaledRatesRejectsNonPositiveFactor) {
  const mk::Ctmc chain = simple_failure_chain(1e-3);
  EXPECT_THROW(chain.scaled_rates(0.0), std::invalid_argument);
  EXPECT_THROW(chain.scaled_rates(-1.0), std::invalid_argument);
  EXPECT_NO_THROW(chain.scaled_rates(1.0));
}
