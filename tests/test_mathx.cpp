// Unit and property tests for the mathx substrate: matrices, expm, RNG,
// statistics, ECDF.
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "sesame/mathx/matrix.hpp"
#include "sesame/mathx/rng.hpp"
#include "sesame/mathx/stats.hpp"

namespace mx = sesame::mathx;

TEST(Matrix, InitializerListAndAccess) {
  mx::Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((mx::Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndDiagonal) {
  auto id = mx::Matrix::identity(3);
  EXPECT_DOUBLE_EQ(id(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
  auto d = mx::Matrix::diagonal({2.0, 5.0});
  EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 0.0);
}

TEST(Matrix, ArithmeticOperators) {
  mx::Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  mx::Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  auto sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 6.0);
  auto diff = b - a;
  EXPECT_DOUBLE_EQ(diff(1, 1), 4.0);
  auto scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
}

TEST(Matrix, DimensionMismatchThrows) {
  mx::Matrix a(2, 3);
  mx::Matrix b(2, 2);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, Product) {
  mx::Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  mx::Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  auto p = a * b;
  EXPECT_DOUBLE_EQ(p(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(p(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 3.0);
}

TEST(Matrix, ApplyVector) {
  mx::Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  auto v = a.apply({1.0, 1.0});
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
  auto vt = a.apply_transposed({1.0, 1.0});
  EXPECT_DOUBLE_EQ(vt[0], 4.0);
  EXPECT_DOUBLE_EQ(vt[1], 6.0);
}

TEST(Matrix, Transpose) {
  mx::Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  auto t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, Norms) {
  mx::Matrix a{{1.0, -2.0}, {-3.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.norm_inf(), 7.0);
  EXPECT_DOUBLE_EQ(a.norm_max(), 4.0);
}

TEST(SolveLinear, SolvesSystem) {
  mx::Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  auto x = mx::solve_linear(a, {3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(SolveLinear, SingularThrows) {
  mx::Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(mx::solve_linear(a, {1.0, 2.0}), std::runtime_error);
}

TEST(SolveLinear, PivotingHandlesZeroDiagonal) {
  mx::Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  auto x = mx::solve_linear(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Expm, ZeroMatrixGivesIdentity) {
  mx::Matrix z(3, 3);
  auto e = mx::expm(z);
  EXPECT_TRUE(e.approx_equal(mx::Matrix::identity(3), 1e-12));
}

TEST(Expm, DiagonalMatchesScalarExp) {
  auto d = mx::Matrix::diagonal({-1.0, 2.0, 0.5});
  auto e = mx::expm(d);
  EXPECT_NEAR(e(0, 0), std::exp(-1.0), 1e-10);
  EXPECT_NEAR(e(1, 1), std::exp(2.0), 1e-9);
  EXPECT_NEAR(e(2, 2), std::exp(0.5), 1e-10);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-12);
}

TEST(Expm, NilpotentMatrixExact) {
  // exp([[0,1],[0,0]]) = [[1,1],[0,1]]
  mx::Matrix n{{0.0, 1.0}, {0.0, 0.0}};
  auto e = mx::expm(n);
  EXPECT_NEAR(e(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(e(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(e(1, 0), 0.0, 1e-12);
  EXPECT_NEAR(e(1, 1), 1.0, 1e-12);
}

TEST(Expm, RotationMatrix) {
  // exp(theta * [[0,-1],[1,0]]) is a rotation by theta.
  const double theta = std::numbers::pi / 3.0;
  mx::Matrix g{{0.0, -theta}, {theta, 0.0}};
  auto e = mx::expm(g);
  EXPECT_NEAR(e(0, 0), std::cos(theta), 1e-10);
  EXPECT_NEAR(e(1, 0), std::sin(theta), 1e-10);
}

TEST(Expm, LargeNormScalingPath) {
  auto d = mx::Matrix::diagonal({-40.0, -80.0});
  auto e = mx::expm(d);
  EXPECT_NEAR(e(0, 0), std::exp(-40.0), 1e-22);
  EXPECT_NEAR(e(1, 1), std::exp(-80.0), 1e-30);
}

TEST(Rng, DeterministicForSeed) {
  mx::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  mx::Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  mx::Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanApproxHalf) {
  mx::Rng r(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += r.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  mx::Rng r(13);
  mx::RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(r.normal(3.0, 2.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  mx::Rng r(17);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += r.exponential(4.0);
  EXPECT_NEAR(acc / n, 0.25, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  mx::Rng r(1);
  EXPECT_THROW(r.exponential(0.0), std::invalid_argument);
}

TEST(Rng, BernoulliFrequency) {
  mx::Rng r(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerateProbabilities) {
  mx::Rng r(1);
  EXPECT_FALSE(r.bernoulli(0.0));
  EXPECT_TRUE(r.bernoulli(1.0));
}

TEST(Rng, CategoricalRespectWeights) {
  mx::Rng r(23);
  std::vector<int> counts(3, 0);
  const int n = 90000;
  for (int i = 0; i < n; ++i) ++counts[r.categorical({1.0, 2.0, 3.0})];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 1.0 / 6, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 2.0 / 6, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 3.0 / 6, 0.01);
}

TEST(Rng, CategoricalRejectsBadWeights) {
  mx::Rng r(1);
  EXPECT_THROW(r.categorical({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(r.categorical({1.0, -1.0}), std::invalid_argument);
}

TEST(Rng, UniformIndexCoversRange) {
  mx::Rng r(29);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 5000; ++i) ++seen[r.uniform_index(5)];
  for (int c : seen) EXPECT_GT(c, 0);
  EXPECT_THROW(r.uniform_index(0), std::invalid_argument);
}

TEST(Stats, MeanVarianceMedian) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mx::mean(xs), 2.5);
  EXPECT_NEAR(mx::variance(xs), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(mx::median(xs), 2.5);
  EXPECT_DOUBLE_EQ(mx::median({5.0, 1.0, 9.0}), 5.0);
}

TEST(Stats, EmptyInputsThrow) {
  EXPECT_THROW(mx::mean({}), std::invalid_argument);
  EXPECT_THROW(mx::variance({1.0}), std::invalid_argument);
  EXPECT_THROW(mx::median({}), std::invalid_argument);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(mx::quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(mx::quantile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(mx::quantile(xs, 1.0), 10.0);
  EXPECT_THROW(mx::quantile(xs, 1.5), std::invalid_argument);
}

TEST(Stats, Pearson) {
  std::vector<double> xs{1.0, 2.0, 3.0};
  std::vector<double> up{2.0, 4.0, 6.0};
  std::vector<double> down{6.0, 4.0, 2.0};
  EXPECT_NEAR(mx::pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(mx::pearson(xs, down), -1.0, 1e-12);
  EXPECT_THROW(mx::pearson(xs, {1.0, 1.0, 1.0}), std::invalid_argument);
}

TEST(Stats, RunningStatsMatchesBatch) {
  std::vector<double> xs{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  mx::RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_NEAR(s.mean(), mx::mean(xs), 1e-12);
  EXPECT_NEAR(s.variance(), mx::variance(xs), 1e-12);
}

TEST(Ecdf, StepFunctionValues) {
  mx::Ecdf f({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(f(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0), 0.25);
  EXPECT_DOUBLE_EQ(f(2.5), 0.5);
  EXPECT_DOUBLE_EQ(f(4.0), 1.0);
  EXPECT_DOUBLE_EQ(f(9.0), 1.0);
}

TEST(Ecdf, InverseQuantiles) {
  mx::Ecdf f({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(f.inverse(0.0), 10.0);
  EXPECT_DOUBLE_EQ(f.inverse(0.25), 10.0);
  EXPECT_DOUBLE_EQ(f.inverse(0.5), 20.0);
  EXPECT_DOUBLE_EQ(f.inverse(1.0), 40.0);
  EXPECT_THROW(mx::Ecdf({}), std::invalid_argument);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(mx::normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(mx::normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(mx::normal_cdf(-1.96), 0.025, 1e-3);
}

TEST(NormalQuantile, InvertsCdf) {
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(mx::normal_cdf(mx::normal_quantile(p)), p, 1e-6) << p;
  }
  EXPECT_THROW(mx::normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(mx::normal_quantile(1.0), std::invalid_argument);
}

TEST(Histogram, BinningAndDensity) {
  mx::Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(25.0);  // clamps into last bin
  h.add(-3.0);  // clamps into first bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_DOUBLE_EQ(h.density(0), 0.5);
  EXPECT_NEAR(h.bin_center(0), 0.5, 1e-12);
  EXPECT_THROW(mx::Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(mx::Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// Property: expm(Q)*expm(-Q) == I for random small matrices.
TEST(ExpmProperty, InverseOfNegation) {
  mx::Rng r(31);
  for (int trial = 0; trial < 20; ++trial) {
    mx::Matrix a(3, 3);
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) a(i, j) = r.uniform(-1.0, 1.0);
    }
    auto prod = mx::expm(a) * mx::expm(a * -1.0);
    EXPECT_TRUE(prod.approx_equal(mx::Matrix::identity(3), 1e-8));
  }
}

// Property: rows of expm(Q) for a generator Q sum to 1 (stochastic matrix).
TEST(ExpmProperty, GeneratorExponentialIsStochastic) {
  mx::Rng r(37);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 4;
    mx::Matrix q(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      double row = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        q(i, j) = r.uniform(0.0, 2.0);
        row += q(i, j);
      }
      q(i, i) = -row;
    }
    auto e = mx::expm(q * r.uniform(0.1, 5.0));
    for (std::size_t i = 0; i < n; ++i) {
      double row = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_GE(e(i, j), -1e-9);
        row += e(i, j);
      }
      EXPECT_NEAR(row, 1.0, 1e-9);
    }
  }
}

TEST(Matrix, ToStringRendersRows) {
  mx::Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const std::string s = m.to_string();
  EXPECT_NE(s.find("[1, 2]"), std::string::npos);
  EXPECT_NE(s.find("[3, 4]"), std::string::npos);
}

TEST(Matrix, ApplyDimensionMismatchThrows) {
  mx::Matrix m(2, 3);
  EXPECT_THROW(m.apply({1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(m.apply_transposed({1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(SolveLinear, RandomSystemsHaveSmallResidual) {
  mx::Rng rng(401);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.uniform_index(6);
    mx::Matrix a(n, n);
    std::vector<double> b(n);
    for (std::size_t i = 0; i < n; ++i) {
      b[i] = rng.uniform(-5.0, 5.0);
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-3.0, 3.0);
      a(i, i) += 10.0;  // diagonally dominant: well conditioned
    }
    const auto x = mx::solve_linear(a, b);
    const auto ax = a.apply(x);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(ax[i], b[i], 1e-9);
    }
  }
}

TEST(Stats, QuantileSingleElement) {
  EXPECT_DOUBLE_EQ(mx::quantile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(mx::quantile({7.0}, 1.0), 7.0);
}

TEST(Stats, MinMaxValues) {
  const std::vector<double> xs{3.0, -1.0, 9.0};
  EXPECT_DOUBLE_EQ(mx::min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(mx::max_value(xs), 9.0);
  EXPECT_THROW(mx::min_value({}), std::invalid_argument);
}

TEST(Rng, NormalQuantileMonotone) {
  double prev = -1e18;
  for (double p = 0.01; p < 1.0; p += 0.01) {
    const double q = mx::normal_quantile(p);
    EXPECT_GT(q, prev);
    prev = q;
  }
}
