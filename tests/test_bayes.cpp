// Tests for the Bayesian-network engine: factor algebra, variable
// elimination against hand-computed posteriors, evidence handling.
#include <gtest/gtest.h>

#include "sesame/bayes/network.hpp"

namespace bn = sesame::bayes;

namespace {

/// Classic sprinkler network: Cloudy -> Sprinkler, Cloudy -> Rain,
/// {Sprinkler, Rain} -> WetGrass.
struct Sprinkler {
  bn::Network net;
  bn::VarId cloudy, sprinkler, rain, wet;

  Sprinkler() {
    cloudy = net.add_variable("cloudy", {"F", "T"});
    sprinkler = net.add_variable("sprinkler", {"F", "T"});
    rain = net.add_variable("rain", {"F", "T"});
    wet = net.add_variable("wet", {"F", "T"});
    net.set_prior(cloudy, {0.5, 0.5});
    net.set_cpt(sprinkler, {cloudy}, {0.5, 0.5,    // cloudy=F
                                      0.9, 0.1});  // cloudy=T
    net.set_cpt(rain, {cloudy}, {0.8, 0.2,    // cloudy=F
                                 0.2, 0.8});  // cloudy=T
    net.set_cpt(wet, {sprinkler, rain},
                {1.0, 0.0,     // s=F r=F
                 0.1, 0.9,     // s=F r=T
                 0.1, 0.9,     // s=T r=F
                 0.01, 0.99}); // s=T r=T
  }
};

}  // namespace

TEST(Factor, ConstructionValidation) {
  EXPECT_THROW(bn::Factor({0}, {2}, {0.5}), std::invalid_argument);
  EXPECT_THROW(bn::Factor({0}, {0}, {}), std::invalid_argument);
  EXPECT_THROW(bn::Factor({0}, {2}, {0.5, -0.1}), std::invalid_argument);
  EXPECT_THROW(bn::Factor({0, 1}, {2}, {0.5, 0.5}), std::invalid_argument);
}

TEST(Factor, MultiplyDisjointVars) {
  bn::Factor fa({0}, {2}, {0.3, 0.7});
  bn::Factor fb({1}, {2}, {0.6, 0.4});
  const auto prod = fa.multiply(fb);
  ASSERT_EQ(prod.vars().size(), 2u);
  // Layout: var 0 slow, var 1 fast.
  EXPECT_NEAR(prod.values()[0], 0.18, 1e-12);
  EXPECT_NEAR(prod.values()[1], 0.12, 1e-12);
  EXPECT_NEAR(prod.values()[2], 0.42, 1e-12);
  EXPECT_NEAR(prod.values()[3], 0.28, 1e-12);
}

TEST(Factor, MultiplySharedVar) {
  bn::Factor fa({0}, {2}, {0.3, 0.7});
  bn::Factor fb({0}, {2}, {0.5, 0.2});
  const auto prod = fa.multiply(fb);
  ASSERT_EQ(prod.vars().size(), 1u);
  EXPECT_NEAR(prod.values()[0], 0.15, 1e-12);
  EXPECT_NEAR(prod.values()[1], 0.14, 1e-12);
}

TEST(Factor, MarginalizeSumsOut) {
  bn::Factor f({0, 1}, {2, 2}, {0.1, 0.2, 0.3, 0.4});
  const auto m = f.marginalize(1);
  ASSERT_EQ(m.vars().size(), 1u);
  EXPECT_EQ(m.vars()[0], 0u);
  EXPECT_NEAR(m.values()[0], 0.3, 1e-12);
  EXPECT_NEAR(m.values()[1], 0.7, 1e-12);
  EXPECT_THROW(f.marginalize(9), std::out_of_range);
}

TEST(Factor, MarginalizeToScalar) {
  bn::Factor f({3}, {2}, {0.25, 0.5});
  const auto s = f.marginalize(3);
  EXPECT_TRUE(s.vars().empty());
  EXPECT_NEAR(s.values()[0], 0.75, 1e-12);
}

TEST(Factor, ReduceFixesState) {
  bn::Factor f({0, 1}, {2, 2}, {0.1, 0.2, 0.3, 0.4});
  const auto r = f.reduce(0, 1);
  ASSERT_EQ(r.vars().size(), 1u);
  EXPECT_EQ(r.vars()[0], 1u);
  EXPECT_NEAR(r.values()[0], 0.3, 1e-12);
  EXPECT_NEAR(r.values()[1], 0.4, 1e-12);
  EXPECT_THROW(f.reduce(0, 5), std::out_of_range);
  EXPECT_THROW(f.reduce(7, 0), std::out_of_range);
}

TEST(Factor, NormalizeSumsToOne) {
  bn::Factor f({0}, {2}, {2.0, 6.0});
  f.normalize();
  EXPECT_NEAR(f.values()[0], 0.25, 1e-12);
  EXPECT_NEAR(f.values()[1], 0.75, 1e-12);
}

TEST(Network, ConstructionValidation) {
  bn::Network net;
  EXPECT_THROW(net.add_variable("x", {"only"}), std::invalid_argument);
  const auto a = net.add_variable("a", {"F", "T"});
  EXPECT_THROW(net.add_variable("a", {"F", "T"}), std::invalid_argument);
  EXPECT_THROW(net.set_prior(a, {0.5, 0.6}), std::invalid_argument);
  EXPECT_THROW(net.set_cpt(a, {a}, {1.0, 0.0, 0.0, 1.0}), std::invalid_argument);
}

TEST(Network, FindAndStateIndex) {
  bn::Network net;
  const auto a = net.add_variable("alpha", {"lo", "hi"});
  EXPECT_EQ(net.find("alpha"), a);
  EXPECT_FALSE(net.find("beta").has_value());
  EXPECT_EQ(net.state_index(a, "hi"), 1u);
  EXPECT_THROW(net.state_index(a, "mid"), std::invalid_argument);
}

TEST(Network, PriorOnlyQuery) {
  bn::Network net;
  const auto a = net.add_variable("a", {"F", "T"});
  net.set_prior(a, {0.3, 0.7});
  const auto p = net.query(a);
  EXPECT_NEAR(p[0], 0.3, 1e-12);
  EXPECT_NEAR(p[1], 0.7, 1e-12);
}

TEST(Network, MissingCptThrows) {
  bn::Network net;
  const auto a = net.add_variable("a", {"F", "T"});
  net.add_variable("b", {"F", "T"});
  net.set_prior(a, {0.5, 0.5});
  EXPECT_THROW(net.query(a), std::logic_error);
}

TEST(Network, ChainPosterior) {
  // a -> b with known tables; P(b=T) = 0.3*0.9 + 0.7*0.2 = 0.41.
  bn::Network net;
  const auto a = net.add_variable("a", {"F", "T"});
  const auto b = net.add_variable("b", {"F", "T"});
  net.set_prior(a, {0.7, 0.3});
  net.set_cpt(b, {a}, {0.8, 0.2,    // a=F
                       0.1, 0.9});  // a=T
  const auto pb = net.query(b);
  EXPECT_NEAR(pb[1], 0.41, 1e-12);
  // Bayes: P(a=T | b=T) = 0.27 / 0.41.
  const auto pa = net.query(a, {{b, 1}});
  EXPECT_NEAR(pa[1], 0.27 / 0.41, 1e-12);
}

TEST(Network, SprinklerMarginals) {
  Sprinkler s;
  // P(rain=T) = 0.5*0.2 + 0.5*0.8 = 0.5
  EXPECT_NEAR(s.net.query(s.rain)[1], 0.5, 1e-12);
  // P(sprinkler=T) = 0.5*0.5 + 0.5*0.1 = 0.3
  EXPECT_NEAR(s.net.query(s.sprinkler)[1], 0.3, 1e-12);
}

TEST(Network, SprinklerPosteriorGivenWet) {
  Sprinkler s;
  // Known result for these tables: P(sprinkler=T | wet=T) ~= 0.4298,
  // P(rain=T | wet=T) ~= 0.7079.
  const auto ev = bn::Network::Evidence{{s.wet, 1}};
  EXPECT_NEAR(s.net.query(s.sprinkler, ev)[1], 0.4298, 5e-4);
  EXPECT_NEAR(s.net.query(s.rain, ev)[1], 0.7079, 5e-4);
}

TEST(Network, ExplainingAway) {
  Sprinkler s;
  // Observing rain lowers the sprinkler posterior (explaining away).
  const auto only_wet = bn::Network::Evidence{{s.wet, 1}};
  const auto wet_and_rain = bn::Network::Evidence{{s.wet, 1}, {s.rain, 1}};
  EXPECT_GT(s.net.query(s.sprinkler, only_wet)[1],
            s.net.query(s.sprinkler, wet_and_rain)[1]);
}

TEST(Network, QueryObservedVariableIsPointMass) {
  Sprinkler s;
  const auto p = s.net.query(s.rain, {{s.rain, 1}});
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 1.0);
}

TEST(Network, MakeEvidenceByName) {
  Sprinkler s;
  const auto ev = s.net.make_evidence({{"wet", "T"}, {"rain", "F"}});
  EXPECT_EQ(ev.at(s.wet), 1u);
  EXPECT_EQ(ev.at(s.rain), 0u);
  EXPECT_THROW(s.net.make_evidence({{"nope", "T"}}), std::invalid_argument);
}

TEST(Network, ZeroProbabilityEvidenceThrows) {
  bn::Network net;
  const auto a = net.add_variable("a", {"F", "T"});
  const auto b = net.add_variable("b", {"F", "T"});
  net.set_prior(a, {1.0, 0.0});
  net.set_cpt(b, {a}, {1.0, 0.0, 0.0, 1.0});
  // b=T requires a=T which has prior 0.
  EXPECT_THROW(net.query(a, {{b, 1}}), std::runtime_error);
}

TEST(Network, ThreeStateVariables) {
  bn::Network net;
  const auto risk = net.add_variable("risk", {"low", "medium", "high"});
  const auto alarm = net.add_variable("alarm", {"off", "on"});
  net.set_prior(risk, {0.6, 0.3, 0.1});
  net.set_cpt(alarm, {risk}, {0.95, 0.05,
                              0.7, 0.3,
                              0.2, 0.8});
  const auto p = net.query(risk, {{alarm, 1}});
  const double denom = 0.6 * 0.05 + 0.3 * 0.3 + 0.1 * 0.8;
  EXPECT_NEAR(p[0], 0.6 * 0.05 / denom, 1e-12);
  EXPECT_NEAR(p[2], 0.1 * 0.8 / denom, 1e-12);
}

// Property: posteriors are valid distributions for random evidence patterns.
TEST(NetworkProperty, PosteriorsAreDistributions) {
  Sprinkler s;
  for (std::size_t mask = 0; mask < 8; ++mask) {
    bn::Network::Evidence ev;
    if (mask & 1) ev[s.cloudy] = mask & 4 ? 1 : 0;
    if (mask & 2) ev[s.wet] = 1;
    for (bn::VarId target : {s.cloudy, s.sprinkler, s.rain, s.wet}) {
      const auto p = s.net.query(target, ev);
      double sum = 0.0;
      for (double x : p) {
        EXPECT_GE(x, -1e-12);
        sum += x;
      }
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

TEST(Network, JointProbabilityChainRule) {
  Sprinkler s;
  std::map<bn::VarId, std::size_t> assignment{
      {s.cloudy, 1}, {s.sprinkler, 0}, {s.rain, 1}, {s.wet, 1}};
  // P = P(c=T) P(s=F|c=T) P(r=T|c=T) P(w=T|s=F,r=T)
  EXPECT_NEAR(s.net.joint_probability(assignment), 0.5 * 0.9 * 0.8 * 0.9,
              1e-12);
  assignment.erase(s.wet);
  EXPECT_THROW(s.net.joint_probability(assignment), std::invalid_argument);
}

TEST(Network, MpeWithoutEvidenceIsJointMode) {
  Sprinkler s;
  const auto mpe = s.net.most_probable_explanation();
  // Verify by brute force over all 16 assignments.
  double best = -1.0;
  std::map<bn::VarId, std::size_t> best_assign;
  for (std::size_t mask = 0; mask < 16; ++mask) {
    std::map<bn::VarId, std::size_t> a{{s.cloudy, mask & 1u},
                                       {s.sprinkler, (mask >> 1) & 1u},
                                       {s.rain, (mask >> 2) & 1u},
                                       {s.wet, (mask >> 3) & 1u}};
    const double p = s.net.joint_probability(a);
    if (p > best) {
      best = p;
      best_assign = a;
    }
  }
  EXPECT_EQ(mpe, best_assign);
}

TEST(Network, MpeRespectsEvidence) {
  Sprinkler s;
  const auto mpe = s.net.most_probable_explanation({{s.wet, 1}});
  EXPECT_EQ(mpe.at(s.wet), 1u);  // evidence kept
  // Given wet grass, rain is the dominant explanation in these tables.
  EXPECT_EQ(mpe.at(s.rain), 1u);
}

TEST(Network, MpeZeroProbabilityEvidenceThrows) {
  bn::Network net;
  const auto a = net.add_variable("a", {"F", "T"});
  const auto b = net.add_variable("b", {"F", "T"});
  net.set_prior(a, {1.0, 0.0});
  net.set_cpt(b, {a}, {1.0, 0.0, 0.0, 1.0});
  EXPECT_THROW(net.most_probable_explanation({{b, 1}}), std::runtime_error);
}
