// Tests for the observability layer: metric registry semantics, histogram
// bucketing and quantile estimation, Prometheus rendering, span nesting,
// and both trace sinks.
#include <algorithm>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "sesame/obs/metrics.hpp"
#include "sesame/obs/observability.hpp"
#include "sesame/obs/sinks.hpp"
#include "sesame/obs/trace.hpp"

namespace obs = sesame::obs;

TEST(Counter, IncrementsAndReads) {
  obs::Counter c;
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  c.inc();
  c.inc(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
}

TEST(Counter, RaiseToIsMonotone) {
  obs::Counter c;
  c.raise_to(5.0);
  EXPECT_DOUBLE_EQ(c.value(), 5.0);
  c.raise_to(3.0);  // never goes backwards
  EXPECT_DOUBLE_EQ(c.value(), 5.0);
  c.raise_to(8.0);
  EXPECT_DOUBLE_EQ(c.value(), 8.0);
  c.inc();  // mixing with inc keeps the running value
  EXPECT_DOUBLE_EQ(c.value(), 9.0);
}

TEST(Gauge, SetAndAdd) {
  obs::Gauge g;
  g.set(10.0);
  g.add(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(Registry, SameNameAndLabelsReturnsSameInstance) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("sesame.test.total", {{"topic", "t1"}});
  obs::Counter& b = reg.counter("sesame.test.total", {{"topic", "t1"}});
  EXPECT_EQ(&a, &b);
  obs::Counter& c = reg.counter("sesame.test.total", {{"topic", "t2"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.series_count(), 2u);
}

TEST(Registry, LabelOrderDoesNotMatter) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("m", {{"a", "1"}, {"b", "2"}});
  obs::Counter& b = reg.counter("m", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(Registry, KindConflictThrows) {
  obs::MetricsRegistry reg;
  reg.counter("sesame.test.metric");
  EXPECT_THROW(reg.gauge("sesame.test.metric"), std::logic_error);
  EXPECT_THROW(reg.histogram("sesame.test.metric"), std::logic_error);
}

TEST(Registry, SnapshotFindsSeries) {
  obs::MetricsRegistry reg;
  reg.counter("sesame.mw.publish_total", {{"topic", "a"}}).inc(4.0);
  reg.gauge("sesame.sim.time_s").set(12.0);
  const auto snap = reg.snapshot();
  const auto* c = snap.find("sesame.mw.publish_total", {{"topic", "a"}});
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->value, 4.0);
  EXPECT_EQ(c->kind, obs::MetricKind::kCounter);
  const auto* g = snap.find("sesame.sim.time_s");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->value, 12.0);
  EXPECT_EQ(snap.find("nope"), nullptr);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(obs::Histogram({}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, BucketsObservations) {
  obs::Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);   // bucket 0 (le 1)
  h.observe(1.0);   // bucket 0 (le is inclusive)
  h.observe(1.5);   // bucket 1
  h.observe(3.0);   // bucket 2
  h.observe(100.0); // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.0);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
}

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  obs::Histogram h({1.0, 2.0, 4.0});
  for (int i = 0; i < 10; ++i) h.observe(0.5);  // all at one point
  // Every sample sits at 0.5, so every quantile is 0.5: the bucket's
  // interpolation range collapses to [min, max].
  EXPECT_NEAR(h.quantile(0.5), 0.5, 1e-9);
  EXPECT_NEAR(h.quantile(1.0), 0.5, 1e-9);
  obs::Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  // A spread within one bucket interpolates across [min, bound].
  obs::Histogram spread({1.0, 2.0, 4.0});
  spread.observe(0.2);
  spread.observe(0.6);
  spread.observe(1.0);
  EXPECT_NEAR(spread.quantile(0.0), 0.2, 1e-9);
  EXPECT_NEAR(spread.quantile(1.0), 1.0, 1e-9);
}

TEST(Histogram, TracksObservedMinMax) {
  obs::Histogram h({0.0, 10.0});
  EXPECT_DOUBLE_EQ(h.min_observed(), 0.0);  // empty: 0 by convention
  EXPECT_DOUBLE_EQ(h.max_observed(), 0.0);
  h.observe(3.0);
  h.observe(-7.0);
  h.observe(42.0);
  EXPECT_DOUBLE_EQ(h.min_observed(), -7.0);
  EXPECT_DOUBLE_EQ(h.max_observed(), 42.0);
}

// Regression: overflow-bucket mass used to clamp every upper quantile to
// the largest finite bound, underreporting p99 of a saturating series.
TEST(Histogram, OverflowQuantilesInterpolateUpToObservedMax) {
  obs::Histogram h({1.0, 2.0});
  h.observe(50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 50.0);  // was 2.0 before the fix

  // Half the mass saturates: upper quantiles walk (2, max], not clamp.
  obs::Histogram sat({1.0, 2.0});
  for (int i = 0; i < 50; ++i) sat.observe(0.5);
  for (int i = 0; i < 50; ++i) sat.observe(10.0);
  EXPECT_GT(sat.quantile(0.99), 2.0);
  EXPECT_LE(sat.quantile(0.99), 10.0);
  EXPECT_DOUBLE_EQ(sat.quantile(1.0), 10.0);
}

// Regression: the first bucket's lower edge was hard-coded to 0, so
// quantiles of negative-valued series (signed error gauges) were wrong —
// q=0 of an all-negative series reported 0.
TEST(Histogram, NegativeSeriesQuantilesUseObservedMin) {
  obs::Histogram h({-5.0, 0.0, 5.0});
  h.observe(-9.0);
  h.observe(-8.0);
  h.observe(-7.0);
  h.observe(-6.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), -9.0);  // was 0 before the fix
  EXPECT_LE(h.quantile(0.5), -5.0);
  EXPECT_GE(h.quantile(0.5), -9.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), -6.0);  // observed max, not bucket edge
}

TEST(Histogram, MergeAddsCountsAndExtremes) {
  obs::Histogram a({1.0, 2.0});
  obs::Histogram b({1.0, 2.0});
  a.observe(0.5);
  a.observe(1.5);
  b.observe(9.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 11.0);
  EXPECT_EQ(a.bucket_counts()[0], 1u);
  EXPECT_EQ(a.bucket_counts()[1], 1u);
  EXPECT_EQ(a.bucket_counts()[2], 1u);
  EXPECT_DOUBLE_EQ(a.min_observed(), 0.5);
  EXPECT_DOUBLE_EQ(a.max_observed(), 9.0);

  obs::Histogram other_bounds({1.0, 3.0});
  EXPECT_THROW(a.merge(other_bounds), std::invalid_argument);

  // Merging an empty histogram is a no-op (does not corrupt min/max).
  obs::Histogram empty({1.0, 2.0});
  a.merge(empty);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min_observed(), 0.5);
}

TEST(Registry, MergeSanitizesDefaultedExtremesFromExternalSamples) {
  // A wire peer or hand-built sample: bucket mass present (all overflow),
  // min/max left at their 0 defaults. Trusting them would drag the merged
  // extremes to 0 and collapse quantile bracketing onto [0, bounds].
  obs::MetricSample s;
  s.name = "ext.lat";
  s.kind = obs::MetricKind::kHistogram;
  s.bucket_bounds = {1.0, 2.0};
  s.bucket_counts = {0, 0, 5};
  s.observations = 5;
  s.value = 250.0;
  obs::MetricsSnapshot snap;
  snap.samples.push_back(s);

  obs::MetricsRegistry reg;
  reg.merge(snap);
  const auto out = reg.snapshot();
  const auto* h = out.find("ext.lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->observations, 5u);
  // Extremes fall back to the occupied bucket's finite edge (the last
  // bound), the tightest honest claim available, instead of the bogus 0s.
  EXPECT_DOUBLE_EQ(h->min_observed, 2.0);
  EXPECT_DOUBLE_EQ(h->max_observed, 2.0);
}

TEST(Registry, MergeRejectsObservationsWithoutBucketMass) {
  obs::MetricSample s;
  s.name = "ext.lat";
  s.kind = obs::MetricKind::kHistogram;
  s.bucket_bounds = {1.0, 2.0};
  s.bucket_counts = {0, 0, 0};
  s.observations = 3;  // claims samples that are in no bucket
  obs::MetricsSnapshot snap;
  snap.samples.push_back(s);

  obs::MetricsRegistry reg;
  EXPECT_THROW(reg.merge(snap), std::invalid_argument);
}

TEST(Registry, MergeOfEmptyHistogramSampleKeepsExtremesUntouched) {
  obs::MetricsRegistry run_empty;
  run_empty.histogram("lat", {}, {1.0, 2.0});  // registered, never observed

  obs::MetricsRegistry run_full;
  run_full.histogram("lat", {}, {1.0, 2.0}).observe(50.0);  // overflow mass

  // Either merge order: the empty side must not clamp the extremes to the
  // bucket bounds (or to 0, the empty-sample encoding of min/max).
  for (const bool empty_first : {true, false}) {
    obs::MetricsRegistry merged;
    merged.merge(empty_first ? run_empty.snapshot() : run_full.snapshot());
    merged.merge(empty_first ? run_full.snapshot() : run_empty.snapshot());
    const auto snap = merged.snapshot();
    const auto* h = snap.find("lat");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->observations, 1u);
    EXPECT_DOUBLE_EQ(h->min_observed, 50.0) << "empty_first=" << empty_first;
    EXPECT_DOUBLE_EQ(h->max_observed, 50.0) << "empty_first=" << empty_first;
  }
}

TEST(Registry, MergeRollsUpSnapshots) {
  obs::MetricsRegistry run1;
  run1.counter("sesame.mw.publish_total", {{"topic", "a"}}).inc(3.0);
  run1.gauge("sesame.sim.time_s").set(100.0);
  run1.histogram("sesame.platform.staleness_s", {}, {1.0, 5.0}).observe(0.5);

  obs::MetricsRegistry run2;
  run2.counter("sesame.mw.publish_total", {{"topic", "a"}}).inc(4.0);
  run2.counter("sesame.mw.publish_total", {{"topic", "b"}}).inc(1.0);
  run2.gauge("sesame.sim.time_s").set(250.0);
  run2.histogram("sesame.platform.staleness_s", {}, {1.0, 5.0}).observe(7.0);

  obs::MetricsRegistry campaign;
  campaign.merge(run1.snapshot());
  campaign.merge(run2.snapshot());

  const auto snap = campaign.snapshot();
  const auto* c = snap.find("sesame.mw.publish_total", {{"topic", "a"}});
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->value, 7.0);  // counters add
  const auto* cb = snap.find("sesame.mw.publish_total", {{"topic", "b"}});
  ASSERT_NE(cb, nullptr);
  EXPECT_DOUBLE_EQ(cb->value, 1.0);  // absent series are created
  const auto* g = snap.find("sesame.sim.time_s");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->value, 250.0);  // gauges: last merge wins
  const auto* h = snap.find("sesame.platform.staleness_s");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->observations, 2u);  // histograms add buckets
  EXPECT_DOUBLE_EQ(h->min_observed, 0.5);
  EXPECT_DOUBLE_EQ(h->max_observed, 7.0);

  // Kind clash across snapshots surfaces, like direct registration.
  obs::MetricsRegistry clash;
  clash.gauge("sesame.mw.publish_total");
  EXPECT_THROW(clash.merge(run1.snapshot()), std::logic_error);
}

TEST(Registry, StampedGaugeMergeTakesHighestStamp) {
  obs::MetricsRegistry run_a;
  run_a.gauge("sesame.sim.time_s").set(400.0);
  obs::MetricsRegistry run_b;
  run_b.gauge("sesame.sim.time_s").set(120.0);

  // Completion order (b then a) disagrees with run order (a = run 7,
  // b = run 2): the higher-stamped value must win regardless.
  obs::MetricsRegistry merged;
  merged.merge(run_b.snapshot(), 3);
  merged.merge(run_a.snapshot(), 8);
  EXPECT_DOUBLE_EQ(merged.snapshot().find("sesame.sim.time_s")->value, 400.0);

  obs::MetricsRegistry reversed;
  reversed.merge(run_a.snapshot(), 8);
  reversed.merge(run_b.snapshot(), 3);
  EXPECT_DOUBLE_EQ(reversed.snapshot().find("sesame.sim.time_s")->value, 400.0);

  // A snapshot of the merged registry remembers the winning stamp.
  EXPECT_EQ(merged.snapshot().find("sesame.sim.time_s")->gauge_stamp, 8u);
}

// The service-tenant property (the bug this pins): folding one fixed set of
// stamped per-run snapshots must produce bit-identical merged state under
// EVERY merge permutation — concurrent tenants see runs complete in
// arbitrary order. Exhaustive over all 4! permutations of 4 runs.
TEST(Registry, StampedGaugeMergeIsPermutationInvariant) {
  std::vector<obs::MetricsSnapshot> snaps;
  for (int run = 0; run < 4; ++run) {
    obs::MetricsRegistry reg;
    reg.gauge("sesame.sim.time_s").set(100.0 * (3 - run));
    reg.gauge("sesame.platform.fleet_availability")
        .set(0.25 * (run % 2 ? run : 4 - run));
    reg.counter("sesame.mw.publish_total").inc(run + 1.0);
    snaps.push_back(reg.snapshot());
  }

  std::string reference;
  std::vector<std::size_t> order{0, 1, 2, 3};
  do {
    obs::MetricsRegistry merged;
    for (const std::size_t i : order) merged.merge(snaps[i], i + 1);
    const std::string rendered = obs::render_prometheus(merged.snapshot());
    if (reference.empty()) {
      reference = rendered;
    } else {
      EXPECT_EQ(rendered, reference)
          << "order " << order[0] << order[1] << order[2] << order[3];
    }
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(Registry, UnstampedMergeKeepsLastWinsForInOrderCallers) {
  obs::MetricsRegistry a;
  a.gauge("g").set(1.0);
  obs::MetricsRegistry b;
  b.gauge("g").set(-5.0);  // smaller value, later merge: must still win
  obs::MetricsRegistry merged;
  merged.merge(a.snapshot());
  merged.merge(b.snapshot());
  EXPECT_DOUBLE_EQ(merged.snapshot().find("g")->value, -5.0);
}

TEST(Prometheus, RendersCountersGaugesWithSanitizedNames) {
  obs::MetricsRegistry reg;
  reg.counter("sesame.mw.publish_total", {{"topic", "uav/uav1/telemetry"}})
      .inc(42.0);
  reg.gauge("sesame.sim.time_s").set(3.5);
  const std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("# TYPE sesame_mw_publish_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("sesame_mw_publish_total{topic=\"uav/uav1/telemetry\"}"
                      " 42"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sesame_sim_time_s gauge"), std::string::npos);
  EXPECT_NE(text.find("sesame_sim_time_s 3.5"), std::string::npos);
}

TEST(Prometheus, RendersCumulativeHistogramBuckets) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat", {}, {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);
  const std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("lat_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("lat_sum 11"), std::string::npos);
  EXPECT_NE(text.find("lat_count 3"), std::string::npos);
}

TEST(Prometheus, EscapesLabelValues) {
  obs::MetricsRegistry reg;
  reg.counter("m", {{"k", "quote\"back\\slash"}}).inc();
  const std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("m{k=\"quote\\\"back\\\\slash\"} 1"), std::string::npos);
}

TEST(Tracer, DisabledTracerEmitsNothingCheaply) {
  obs::Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  {
    obs::Span s = tracer.start_span("anything");
    EXPECT_FALSE(s.recording());
    s.set_attribute("k", "v");  // must be a no-op, not a crash
  }
  tracer.event("anything");  // no sink: dropped
}

TEST(Tracer, SpansNestByIdAndRestoreParent) {
  obs::MemorySink sink;
  obs::Tracer tracer;
  tracer.set_sink(&sink);
  {
    obs::Span root = tracer.start_span("root");
    {
      obs::Span child = tracer.start_span("child");
      obs::Span grandchild = tracer.start_span("grandchild");
      grandchild.end();
      child.end();
    }
    obs::Span sibling = tracer.start_span("sibling");
  }
  // Events arrive in *end* order: grandchild, child, sibling, root.
  ASSERT_EQ(sink.events().size(), 4u);
  const auto root = sink.named("root").at(0);
  const auto child = sink.named("child").at(0);
  const auto grandchild = sink.named("grandchild").at(0);
  const auto sibling = sink.named("sibling").at(0);
  EXPECT_EQ(root.parent_id, 0u);
  EXPECT_EQ(child.parent_id, root.span_id);
  EXPECT_EQ(grandchild.parent_id, child.span_id);
  EXPECT_EQ(sibling.parent_id, root.span_id);  // parent restored after child
  EXPECT_GE(root.duration_us, child.duration_us);
}

TEST(Tracer, EventsInheritTheOpenSpan) {
  obs::MemorySink sink;
  obs::Tracer tracer;
  tracer.set_sink(&sink);
  tracer.event("orphan");
  {
    obs::Span s = tracer.start_span("phase", {{"phase", "search"}});
    tracer.event("alert", {{"rule", "position_jump"}});
  }
  const auto orphan = sink.named("orphan").at(0);
  EXPECT_EQ(orphan.parent_id, 0u);
  EXPECT_EQ(orphan.kind, obs::TraceEvent::Kind::kEvent);
  const auto alert = sink.named("alert").at(0);
  const auto phase = sink.named("phase").at(0);
  EXPECT_EQ(alert.parent_id, phase.span_id);
  ASSERT_EQ(alert.attributes.size(), 1u);
  EXPECT_EQ(alert.attributes[0].second, "position_jump");
}

TEST(Tracer, SpanAttributesSurviveToTheSink) {
  obs::MemorySink sink;
  obs::Tracer tracer;
  tracer.set_sink(&sink);
  {
    obs::Span s = tracer.start_span("run", {{"uavs", "3"}});
    s.set_attribute("availability", 0.915);
  }
  const auto e = sink.named("run").at(0);
  ASSERT_EQ(e.attributes.size(), 2u);
  EXPECT_EQ(e.attributes[0].first, "uavs");
  EXPECT_EQ(e.attributes[1].second, "0.915");
}

TEST(Tracer, EndIsIdempotentAndMoveSafe) {
  obs::MemorySink sink;
  obs::Tracer tracer;
  tracer.set_sink(&sink);
  obs::Span s = tracer.start_span("once");
  obs::Span moved = std::move(s);
  s.end();      // moved-from: no-op
  moved.end();
  moved.end();  // second end: no-op
  EXPECT_EQ(sink.named("once").size(), 1u);
}

TEST(JsonLines, SerializesSpansAndEvents) {
  obs::TraceEvent e;
  e.kind = obs::TraceEvent::Kind::kSpan;
  e.name = "sesame.mission.phase";
  e.span_id = 2;
  e.parent_id = 1;
  e.start_us = 10.5;
  e.duration_us = 99.5;
  e.attributes = {{"phase", "search"}};
  EXPECT_EQ(obs::to_json_line(e),
            "{\"kind\":\"span\",\"name\":\"sesame.mission.phase\","
            "\"span_id\":2,\"parent_id\":1,\"start_us\":10.5,"
            "\"duration_us\":99.5,\"attrs\":{\"phase\":\"search\"}}");
  e.kind = obs::TraceEvent::Kind::kEvent;
  EXPECT_EQ(obs::to_json_line(e).find("\"duration_us\""), std::string::npos);
}

TEST(JsonLines, EscapesStrings) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(obs::json_escape(std::string("x\x01y")), "x\\u0001y");
}

TEST(JsonLines, SinkWritesOneLinePerEvent) {
  std::ostringstream out;
  obs::JsonLinesSink sink(out);
  obs::Tracer tracer;
  tracer.set_sink(&sink);
  tracer.event("a");
  { obs::Span s = tracer.start_span("b"); }
  EXPECT_EQ(sink.events_written(), 2u);
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_NE(text.find("\"kind\":\"event\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"span\""), std::string::npos);
}

TEST(Observability, BundleComposes) {
  obs::Observability o;
  obs::MemorySink sink;
  o.tracer.set_sink(&sink);
  o.metrics.counter("sesame.test.total").inc();
  o.tracer.event("sesame.test.event");
  EXPECT_EQ(o.metrics.series_count(), 1u);
  EXPECT_EQ(sink.events().size(), 1u);
}
