// Tests for SAR coverage planning and mission bookkeeping/redistribution.
#include <gtest/gtest.h>

#include "sesame/sar/coverage.hpp"
#include "sesame/sar/mission.hpp"

namespace sar = sesame::sar;
namespace sim = sesame::sim;
namespace geo = sesame::geo;

namespace {

const geo::GeoPoint kOrigin{35.1856, 33.3823, 0.0};

sar::Area test_area() { return {0.0, 300.0, 0.0, 200.0}; }

sim::UavConfig fast_uav(const std::string& name) {
  sim::UavConfig cfg;
  cfg.name = name;
  cfg.cruise_speed_mps = 12.0;
  cfg.gps.noise_sigma_m = 0.0;
  return cfg;
}

}  // namespace

TEST(Coverage, ValidatesInput) {
  sar::CoverageConfig cfg;
  EXPECT_THROW(sar::plan_coverage({0, 0, 0, 10}, 2, cfg), std::invalid_argument);
  EXPECT_THROW(sar::plan_coverage(test_area(), 0, cfg), std::invalid_argument);
  cfg.lane_spacing_m = 0.0;
  EXPECT_THROW(sar::plan_coverage(test_area(), 2, cfg), std::invalid_argument);
}

TEST(Coverage, StripsPartitionAreaWithoutOverlap) {
  sar::CoverageConfig cfg;
  const auto plans = sar::plan_coverage(test_area(), 3, cfg);
  ASSERT_EQ(plans.size(), 3u);
  double covered = 0.0;
  for (const auto& p : plans) covered += p.strip.width();
  EXPECT_NEAR(covered, test_area().width(), 1e-9);
  EXPECT_NEAR(plans[0].strip.east_max, plans[1].strip.east_min, 1e-9);
  EXPECT_NEAR(plans[1].strip.east_max, plans[2].strip.east_min, 1e-9);
}

TEST(Coverage, WaypointsStayInsideStripAndAltitude) {
  sar::CoverageConfig cfg;
  cfg.altitude_m = 42.0;
  const auto plans = sar::plan_coverage(test_area(), 2, cfg);
  for (const auto& p : plans) {
    ASSERT_FALSE(p.waypoints.empty());
    for (const auto& wp : p.waypoints) {
      EXPECT_GE(wp.east_m, p.strip.east_min - 1e-9);
      EXPECT_LE(wp.east_m, p.strip.east_max + 1e-9);
      EXPECT_GE(wp.north_m, test_area().north_min - 1e-9);
      EXPECT_LE(wp.north_m, test_area().north_max + 1e-9);
      EXPECT_DOUBLE_EQ(wp.up_m, 42.0);
    }
  }
}

TEST(Coverage, LanesCoverStripWidth) {
  sar::CoverageConfig cfg;
  cfg.lane_spacing_m = 30.0;
  const auto plans = sar::plan_coverage(test_area(), 1, cfg);
  // Lane east coordinates should reach both strip edges.
  double min_east = 1e18, max_east = -1e18;
  for (const auto& wp : plans[0].waypoints) {
    min_east = std::min(min_east, wp.east_m);
    max_east = std::max(max_east, wp.east_m);
  }
  EXPECT_NEAR(min_east, test_area().east_min, 1e-9);
  EXPECT_NEAR(max_east, test_area().east_max, 1e-9);
}

TEST(Coverage, SerpentineAlternatesDirection) {
  sar::CoverageConfig cfg;
  cfg.lane_spacing_m = 100.0;
  cfg.along_track_spacing_m = 500.0;  // only endpoints per lane
  const auto plans = sar::plan_coverage({0, 200, 0, 100}, 1, cfg);
  const auto& wps = plans[0].waypoints;
  ASSERT_GE(wps.size(), 4u);
  // First lane goes north, second lane south.
  EXPECT_LT(wps[0].north_m, wps[1].north_m);
  EXPECT_GT(wps[2].north_m, wps[3].north_m);
}

TEST(Coverage, PlanLengthPositiveAndScalesWithArea) {
  sar::CoverageConfig cfg;
  const auto small = sar::plan_coverage({0, 100, 0, 100}, 1, cfg);
  const auto large = sar::plan_coverage({0, 300, 0, 300}, 1, cfg);
  EXPECT_GT(sar::plan_length_m(small[0]), 0.0);
  EXPECT_GT(sar::plan_length_m(large[0]), sar::plan_length_m(small[0]) * 2.0);
}

TEST(Coverage, CoverageFraction) {
  sar::CoverageConfig cfg;
  cfg.lane_spacing_m = 25.0;
  EXPECT_DOUBLE_EQ(sar::coverage_fraction(cfg, 30.0), 1.0);
  EXPECT_NEAR(sar::coverage_fraction(cfg, 12.5), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(sar::coverage_fraction(cfg, 0.0), 0.0);
}

TEST(Mission, ValidatesSetup) {
  sim::World world(kOrigin);
  world.add_uav(fast_uav("u1"), kOrigin);
  sar::CoverageConfig cfg;
  auto plans = sar::plan_coverage(test_area(), 2, cfg);
  EXPECT_THROW(sar::SarMission(world, {"u1"}, plans), std::invalid_argument);
}

TEST(Mission, AssignsWaypointsToUavs) {
  sim::World world(kOrigin);
  world.add_uav(fast_uav("u1"), kOrigin);
  world.add_uav(fast_uav("u2"), kOrigin);
  sar::CoverageConfig cfg;
  auto plans = sar::plan_coverage(test_area(), 2, cfg);
  sar::SarMission mission(world, {"u1", "u2"}, plans);
  EXPECT_EQ(mission.remaining_waypoints("u1"), plans[0].waypoints.size());
  EXPECT_EQ(mission.total_remaining(),
            plans[0].waypoints.size() + plans[1].waypoints.size());
  EXPECT_FALSE(mission.complete());
}

TEST(Mission, DetectsPersonsDuringSweep) {
  sim::World world(kOrigin, 31);
  world.add_uav(fast_uav("u1"), kOrigin);
  // Persons along the first sweep lane.
  world.add_person({5.0, 50.0, 0.0});
  world.add_person({5.0, 120.0, 0.0});
  sar::CoverageConfig cfg;
  cfg.altitude_m = 25.0;
  auto plans = sar::plan_coverage({0.0, 60.0, 0.0, 160.0}, 1, cfg);
  sar::SarMission mission(world, {"u1"}, plans);
  world.uav_by_name("u1").command_takeoff();
  for (int t = 0; t < 400 && !mission.complete(); ++t) {
    world.step(1.0);
    mission.tick();
  }
  EXPECT_TRUE(mission.complete());
  EXPECT_EQ(world.persons_detected(), 2u);
  EXPECT_EQ(mission.stats().persons_found, 2u);
  EXPECT_GT(mission.stats().true_detections, 2u);  // repeated frames
  // Persons are only in the footprint for a handful of frames, so the 1%
  // per-frame false-alarm rate caps precision well below 1.
  EXPECT_GT(mission.stats().precision(), 0.5);
  EXPECT_LT(mission.stats().false_alarms, mission.stats().frames / 20);
  EXPECT_DOUBLE_EQ(mission.stats().recall(), 1.0);
}

TEST(Mission, RedistributeMovesRemainingWaypoints) {
  sim::World world(kOrigin);
  world.add_uav(fast_uav("u1"), kOrigin);
  world.add_uav(fast_uav("u2"), kOrigin);
  sar::CoverageConfig cfg;
  auto plans = sar::plan_coverage(test_area(), 2, cfg);
  sar::SarMission mission(world, {"u1", "u2"}, plans);
  const std::size_t before_u2 = mission.remaining_waypoints("u2");
  const std::size_t from_u1 = mission.remaining_waypoints("u1");
  const std::size_t moved = mission.redistribute("u1", "u2");
  EXPECT_EQ(moved, from_u1);
  EXPECT_EQ(mission.remaining_waypoints("u2"), before_u2 + from_u1);
  ASSERT_EQ(mission.active_uavs().size(), 1u);
  EXPECT_EQ(mission.active_uavs()[0], "u2");
  // Total preserved.
  EXPECT_EQ(mission.total_remaining(), before_u2 + from_u1);
}

TEST(Mission, RedistributeValidation) {
  sim::World world(kOrigin);
  world.add_uav(fast_uav("u1"), kOrigin);
  world.add_uav(fast_uav("u2"), kOrigin);
  sar::CoverageConfig cfg;
  auto plans = sar::plan_coverage(test_area(), 2, cfg);
  sar::SarMission mission(world, {"u1", "u2"}, plans);
  EXPECT_THROW(mission.redistribute("zz", "u2"), std::invalid_argument);
  EXPECT_THROW(mission.redistribute("u1", "u1"), std::invalid_argument);
  EXPECT_THROW(mission.redistribute("u1", "zz"), std::invalid_argument);
}

TEST(Mission, StatsDefaults) {
  sar::DetectionStats s;
  EXPECT_DOUBLE_EQ(s.precision(), 1.0);
  EXPECT_DOUBLE_EQ(s.recall(), 1.0);
  s.persons_total = 4;
  s.persons_found = 1;
  EXPECT_DOUBLE_EQ(s.recall(), 0.25);
  s.true_detections = 3;
  s.false_alarms = 1;
  EXPECT_DOUBLE_EQ(s.precision(), 0.75);
}

TEST(CoverageTracker, ValidatesConstruction) {
  EXPECT_THROW(sar::CoverageTracker({0, 0, 0, 10}, 5.0), std::invalid_argument);
  EXPECT_THROW(sar::CoverageTracker(test_area(), 0.0), std::invalid_argument);
}

TEST(CoverageTracker, GridDimensions) {
  sar::CoverageTracker tracker({0, 100, 0, 50}, 10.0);
  EXPECT_EQ(tracker.cells_east(), 10u);
  EXPECT_EQ(tracker.cells_north(), 5u);
  EXPECT_EQ(tracker.cells_total(), 50u);
  EXPECT_DOUBLE_EQ(tracker.fraction_covered(), 0.0);
}

TEST(CoverageTracker, MarksFootprintCells) {
  sar::CoverageTracker tracker({0, 100, 0, 100}, 10.0);
  sesame::sim::Footprint fp;
  fp.center_east_m = 50.0;
  fp.center_north_m = 50.0;
  fp.half_width_m = 15.0;   // covers cell centres in [35, 65] inclusive
  fp.half_height_m = 15.0;
  tracker.mark(fp);
  EXPECT_EQ(tracker.cells_covered(), 16u);  // 4x4 block of 10 m cells
  EXPECT_TRUE(tracker.covered_at({50.0, 50.0, 0.0}));
  EXPECT_FALSE(tracker.covered_at({5.0, 5.0, 0.0}));
  EXPECT_FALSE(tracker.covered_at({500.0, 50.0, 0.0}));  // outside area
  // Re-marking the same footprint adds nothing.
  tracker.mark(fp);
  EXPECT_EQ(tracker.cells_covered(), 16u);
}

TEST(CoverageTracker, ZeroAreaFootprintIgnored) {
  sar::CoverageTracker tracker({0, 100, 0, 100}, 10.0);
  sesame::sim::Footprint grounded;  // zero half-extents
  tracker.mark(grounded);
  EXPECT_EQ(tracker.cells_covered(), 0u);
}

TEST(CoverageTracker, FootprintOverhangingAreaIsClamped) {
  sar::CoverageTracker tracker({0, 50, 0, 50}, 10.0);
  sesame::sim::Footprint fp;
  fp.center_east_m = 0.0;  // half outside the west edge
  fp.center_north_m = 25.0;
  fp.half_width_m = 30.0;
  fp.half_height_m = 30.0;
  tracker.mark(fp);
  EXPECT_GT(tracker.cells_covered(), 0u);
  EXPECT_LE(tracker.cells_covered(), tracker.cells_total());
}

TEST(CoverageTracker, PartialEdgeCellsWeightedByTrueArea) {
  // 25 x 17 m area with 10 m cells: 3x2 grid whose last column is 5 m wide
  // and last row 7 m tall. Covering everything must report exactly 1.0, and
  // covering only the full-size corner cell must report its true area share
  // (100 / 425), not 1/6 of the cell count.
  sar::CoverageTracker tracker({0, 25, 0, 17}, 10.0);
  EXPECT_EQ(tracker.cells_east(), 3u);
  EXPECT_EQ(tracker.cells_north(), 2u);

  sesame::sim::Footprint corner;
  corner.center_east_m = 5.0;
  corner.center_north_m = 5.0;
  corner.half_width_m = 5.0;
  corner.half_height_m = 5.0;
  tracker.mark(corner);
  EXPECT_EQ(tracker.cells_covered(), 1u);
  EXPECT_DOUBLE_EQ(tracker.covered_area_m2(), 100.0);
  EXPECT_DOUBLE_EQ(tracker.fraction_covered(), 100.0 / 425.0);

  sesame::sim::Footprint all;
  all.center_east_m = 12.5;
  all.center_north_m = 8.5;
  all.half_width_m = 50.0;
  all.half_height_m = 50.0;
  tracker.mark(all);
  EXPECT_EQ(tracker.cells_covered(), tracker.cells_total());
  EXPECT_DOUBLE_EQ(tracker.covered_area_m2(), 425.0);
  EXPECT_DOUBLE_EQ(tracker.fraction_covered(), 1.0);
}

TEST(CoverageTracker, PartialEdgeCellCentreStaysInsideArea) {
  // A 10 m-cell grid over a 25 x 17 m area: the old nominal-centre rule
  // placed the last column's centre at east 25 (on the boundary) and the
  // last row's at north 25 (outside entirely). A footprint hugging the
  // area's far edges must still be able to mark those edge cells.
  sar::CoverageTracker tracker({0, 25, 0, 17}, 10.0);
  sesame::sim::Footprint edge;
  edge.center_east_m = 23.0;  // clipped east cell spans [20, 25]: centre 22.5
  edge.center_north_m = 15.0;  // clipped north cell spans [10, 17]: centre 13.5
  edge.half_width_m = 1.6;
  edge.half_height_m = 1.6;
  tracker.mark(edge);
  EXPECT_EQ(tracker.cells_covered(), 1u);
  EXPECT_TRUE(tracker.covered_at({22.0, 14.0, 0.0}));
}

TEST(CoverageTracker, SharedRegionQueriesDoNotDoubleCountOverlap) {
  sar::CoverageTracker tracker({0, 100, 0, 100}, 10.0);
  sesame::sim::Footprint fp;
  fp.center_east_m = 50.0;
  fp.center_north_m = 50.0;
  fp.half_width_m = 50.0;
  fp.half_height_m = 50.0;
  tracker.mark(fp);  // everything covered
  EXPECT_DOUBLE_EQ(tracker.fraction_covered(), 1.0);

  // Two overlapping sweep strips: each fully covered on its own, and the
  // global figure stays 1.0 — the 20 m overlap band is credited once.
  const sar::Area left{0, 60, 0, 100};
  const sar::Area right{40, 100, 0, 100};
  EXPECT_DOUBLE_EQ(tracker.fraction_covered(left), 1.0);
  EXPECT_DOUBLE_EQ(tracker.fraction_covered(right), 1.0);

  // A disjoint partition's region areas weight back to the global fraction.
  tracker.reset();
  fp.center_east_m = 25.0;  // cover only the west half
  fp.half_width_m = 25.0;
  tracker.mark(fp);
  const sar::Area west{0, 50, 0, 100};
  const sar::Area east{50, 100, 0, 100};
  EXPECT_DOUBLE_EQ(tracker.fraction_covered(west), 1.0);
  EXPECT_DOUBLE_EQ(tracker.fraction_covered(east), 0.0);
  EXPECT_DOUBLE_EQ(tracker.fraction_covered(), 0.5);

  // Region queries clip to the tracked area; a region half outside still
  // reports the covered share of its inside part, and a disjoint region 0.
  const sar::Area overhang{-50, 50, 0, 100};
  EXPECT_DOUBLE_EQ(tracker.fraction_covered(overhang), 1.0);
  const sar::Area outside{200, 300, 0, 100};
  EXPECT_DOUBLE_EQ(tracker.fraction_covered(outside), 0.0);
}

TEST(CoverageTracker, ResetClears) {
  sar::CoverageTracker tracker({0, 100, 0, 100}, 10.0);
  sesame::sim::Footprint fp;
  fp.center_east_m = 50.0;
  fp.center_north_m = 50.0;
  fp.half_width_m = 50.0;
  fp.half_height_m = 50.0;
  tracker.mark(fp);
  EXPECT_GT(tracker.fraction_covered(), 0.9);
  tracker.reset();
  EXPECT_DOUBLE_EQ(tracker.fraction_covered(), 0.0);
}

TEST(Mission, SweepCoversAreaWhenLaneSpacingMatchesFootprint) {
  sim::World world(kOrigin, 61);
  world.add_uav(fast_uav("u1"), kOrigin);
  sar::CoverageConfig cfg;
  cfg.altitude_m = 30.0;
  // Footprint width at 30 m with the default camera is ~41 m; 30 m lanes
  // give full overlap.
  cfg.lane_spacing_m = 30.0;
  const sar::Area area{0.0, 90.0, 0.0, 120.0};
  auto plans = sar::plan_coverage(area, 1, cfg);
  sar::SarMission mission(world, {"u1"}, plans);
  mission.enable_coverage_tracking(area, 5.0);
  ASSERT_NE(mission.coverage(), nullptr);
  world.uav_by_name("u1").command_takeoff();
  for (int t = 0; t < 400 && !mission.complete(); ++t) {
    world.step(1.0);
    mission.tick();
  }
  ASSERT_TRUE(mission.complete());
  EXPECT_GT(mission.coverage()->fraction_covered(), 0.95);
}

TEST(Mission, WideLaneSpacingLeavesGaps) {
  sim::World world(kOrigin, 67);
  world.add_uav(fast_uav("u1"), kOrigin);
  sar::CoverageConfig cfg;
  cfg.altitude_m = 20.0;  // footprint ~27 m wide
  cfg.lane_spacing_m = 80.0;  // big gaps between lanes
  const sar::Area area{0.0, 160.0, 0.0, 120.0};
  auto plans = sar::plan_coverage(area, 1, cfg);
  sar::SarMission mission(world, {"u1"}, plans);
  mission.enable_coverage_tracking(area, 5.0);
  world.uav_by_name("u1").command_takeoff();
  for (int t = 0; t < 400 && !mission.complete(); ++t) {
    world.step(1.0);
    mission.tick();
  }
  EXPECT_LT(mission.coverage()->fraction_covered(), 0.8);
}

TEST(Mission, PersonTrackerConfirmsFoundPersons) {
  sim::World world(kOrigin, 71);
  sim::UavConfig cfg = fast_uav("u1");
  cfg.cruise_speed_mps = 4.0;  // slow pass: plenty of frames per person
  world.add_uav(cfg, kOrigin);
  world.add_person({5.0, 40.0, 0.0});
  sar::CoverageConfig ccfg;
  ccfg.altitude_m = 20.0;
  auto plans = sar::plan_coverage({0.0, 40.0, 0.0, 80.0}, 1, ccfg);
  sar::SarMission mission(world, {"u1"}, plans);
  world.uav_by_name("u1").command_takeoff();
  for (int t = 0; t < 300 && !mission.complete(); ++t) {
    world.step(1.0);
    mission.tick();
  }
  const auto confirmed = mission.person_tracker().confirmed();
  ASSERT_GE(confirmed.size(), 1u);
  EXPECT_LT(geo::enu_ground_distance_m(confirmed[0].position,
                                       {5.0, 40.0, 0.0}),
            3.0);
}

TEST(Mission, ProgressAndEta) {
  sim::World world(kOrigin);
  world.add_uav(fast_uav("u1"), kOrigin);
  sar::CoverageConfig cfg;
  cfg.altitude_m = 25.0;
  auto plans = sar::plan_coverage({0.0, 60.0, 0.0, 160.0}, 1, cfg);
  sar::SarMission mission(world, {"u1"}, plans);
  EXPECT_DOUBLE_EQ(mission.progress(), 0.0);
  const double eta0 = mission.eta_s(12.0);
  EXPECT_GT(eta0, 0.0);
  EXPECT_THROW(mission.eta_s(0.0), std::invalid_argument);

  world.uav_by_name("u1").command_takeoff();
  double prev_progress = 0.0;
  for (int t = 0; t < 400 && !mission.complete(); ++t) {
    world.step(1.0);
    mission.tick();
    EXPECT_GE(mission.progress(), prev_progress - 1e-12);
    prev_progress = mission.progress();
  }
  ASSERT_TRUE(mission.complete());
  EXPECT_DOUBLE_EQ(mission.progress(), 1.0);
  EXPECT_DOUBLE_EQ(mission.eta_s(12.0), 0.0);
  // The initial ETA was a sane forecast of the actual duration.
  EXPECT_GT(eta0, 10.0);
  EXPECT_LT(eta0, 400.0);
}
