// Tests for the world simulator: battery discharge and fault injection,
// GPS spoofing effects, UAV flight modes and navigation, camera geometry,
// and world/bus wiring.
#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "sesame/mathx/stats.hpp"
#include "sesame/sim/camera.hpp"
#include "sesame/sim/comm_link.hpp"
#include "sesame/sim/failure_schedule.hpp"
#include "sesame/sim/world.hpp"

namespace sim = sesame::sim;
namespace geo = sesame::geo;

namespace {

const geo::GeoPoint kOrigin{35.1856, 33.3823, 0.0};

sim::UavConfig test_uav(const std::string& name) {
  sim::UavConfig cfg;
  cfg.name = name;
  cfg.gps.noise_sigma_m = 0.0;  // deterministic navigation in unit tests
  return cfg;
}

}  // namespace

TEST(Battery, DischargesUnderLoad) {
  sim::Battery b;
  const double initial = b.soc();
  b.step(60.0, sim::BatteryLoad::kCruise);
  EXPECT_LT(b.soc(), initial);
  EXPECT_GT(b.soc(), 0.9);  // one minute should not drain much
}

TEST(Battery, IdleDrawIsSmall) {
  sim::Battery idle, cruise;
  idle.step(600.0, sim::BatteryLoad::kIdle);
  cruise.step(600.0, sim::BatteryLoad::kCruise);
  EXPECT_GT(idle.soc(), cruise.soc());
}

TEST(Battery, HeatsUpUnderLoadCoolsAtIdle) {
  sim::Battery b;
  for (int i = 0; i < 600; ++i) b.step(1.0, sim::BatteryLoad::kHover);
  EXPECT_GT(b.temperature_c(), 30.0);
  for (int i = 0; i < 1200; ++i) b.step(1.0, sim::BatteryLoad::kIdle);
  EXPECT_LT(b.temperature_c(), 27.0);
}

TEST(Battery, ThermalFaultCollapsesSoc) {
  sim::Battery b;
  b.step(100.0, sim::BatteryLoad::kCruise);
  b.inject_thermal_fault(0.40, 70.0);
  EXPECT_NEAR(b.soc(), 0.40, 1e-12);
  EXPECT_NEAR(b.temperature_c(), 70.0, 1e-12);
  EXPECT_TRUE(b.fault_active());
  EXPECT_THROW(b.inject_thermal_fault(1.5, 70.0), std::invalid_argument);
}

TEST(Battery, FaultDoesNotRaiseSoc) {
  sim::BatteryConfig cfg;
  cfg.initial_soc = 0.3;
  sim::Battery b(cfg);
  b.inject_thermal_fault(0.4, 70.0);
  EXPECT_NEAR(b.soc(), 0.3, 1e-12);  // min(current, fault level)
}

TEST(Battery, SwapRestoresFullCharge) {
  sim::Battery b;
  b.inject_thermal_fault(0.4, 70.0);
  b.swap();
  EXPECT_DOUBLE_EQ(b.soc(), 1.0);
  EXPECT_FALSE(b.fault_active());
}

TEST(Battery, ValidatesConfig) {
  sim::BatteryConfig cfg;
  cfg.capacity_wh = 0.0;
  EXPECT_THROW(sim::Battery{cfg}, std::invalid_argument);
  cfg.capacity_wh = 100.0;
  cfg.initial_soc = 1.5;
  EXPECT_THROW(sim::Battery{cfg}, std::invalid_argument);
}

TEST(Gps, HealthyFixNearTruth) {
  sesame::mathx::Rng rng(3);
  sim::GpsConfig cfg;
  cfg.noise_sigma_m = 0.4;
  sim::Gps gps(cfg, rng);
  for (int i = 0; i < 50; ++i) {
    const auto fix = gps.read(kOrigin, 0.1);
    ASSERT_TRUE(fix.has_value());
    EXPECT_LT(geo::haversine_m(fix->position, kOrigin), 3.0);
    EXPECT_EQ(fix->satellites, cfg.healthy_satellites);
  }
}

TEST(Gps, SpoofingWalksFixAway) {
  sesame::mathx::Rng rng(5);
  sim::GpsConfig cfg;
  cfg.noise_sigma_m = 0.0;
  cfg.spoof_drift_m_per_s = 2.0;
  sim::Gps gps(cfg, rng);
  gps.start_spoofing();
  std::optional<sim::GpsFix> fix;
  for (int i = 0; i < 100; ++i) fix = gps.read(kOrigin, 1.0);
  ASSERT_TRUE(fix.has_value());
  // 100 s at 2 m/s -> 200 m of offset.
  EXPECT_NEAR(geo::haversine_m(fix->position, kOrigin), 200.0, 1.0);
  EXPECT_NEAR(gps.spoof_offset_m(), 200.0, 1e-9);
  gps.stop_spoofing();
  EXPECT_DOUBLE_EQ(gps.spoof_offset_m(), 0.0);
  const auto clean = gps.read(kOrigin, 1.0);
  EXPECT_LT(geo::haversine_m(clean->position, kOrigin), 1.0);
}

TEST(Gps, SpoofedFixStillClaimsGoodQuality) {
  // The receiver's self-reported quality does not reveal the attack.
  sesame::mathx::Rng rng(7);
  sim::Gps gps(sim::GpsConfig{}, rng);
  gps.start_spoofing();
  const auto fix = gps.read(kOrigin, 10.0);
  ASSERT_TRUE(fix.has_value());
  EXPECT_EQ(fix->satellites, sim::GpsConfig{}.healthy_satellites);
}

TEST(Gps, SignalLossAndDisable) {
  sesame::mathx::Rng rng(9);
  sim::Gps gps(sim::GpsConfig{}, rng);
  gps.set_signal_lost(true);
  EXPECT_FALSE(gps.read(kOrigin, 0.1).has_value());
  gps.set_signal_lost(false);
  gps.set_disabled(true);
  EXPECT_FALSE(gps.read(kOrigin, 0.1).has_value());
  gps.set_disabled(false);
  EXPECT_TRUE(gps.read(kOrigin, 0.1).has_value());
}

TEST(Uav, TakeoffReachesMissionAltitude) {
  sim::World world(kOrigin);
  world.add_uav(test_uav("u1"), kOrigin);
  auto& uav = world.uav(0);
  uav.command_takeoff();
  world.run(30, 1.0);
  EXPECT_NEAR(uav.true_position().up_m, uav.estimated_position().up_m, 0.1);
  EXPECT_GE(uav.true_position().up_m, 29.0);
  EXPECT_EQ(uav.mode(), sim::FlightMode::kHold);  // no waypoints queued
}

TEST(Uav, FliesWaypointsAndHolds) {
  sim::World world(kOrigin);
  world.add_uav(test_uav("u1"), kOrigin);
  auto& uav = world.uav(0);
  uav.add_waypoint({100.0, 0.0, 30.0});
  uav.add_waypoint({100.0, 100.0, 30.0});
  uav.command_takeoff();
  world.run(60, 1.0);
  EXPECT_EQ(uav.waypoints_remaining(), 0u);
  EXPECT_EQ(uav.mode(), sim::FlightMode::kHold);
  EXPECT_NEAR(uav.true_position().east_m, 100.0, 5.0);
  EXPECT_NEAR(uav.true_position().north_m, 100.0, 5.0);
}

TEST(Uav, ReturnToBaseLands) {
  sim::World world(kOrigin);
  world.add_uav(test_uav("u1"), kOrigin);
  auto& uav = world.uav(0);
  uav.add_waypoint({50.0, 0.0, 30.0});
  uav.command_takeoff();
  world.run(30, 1.0);
  uav.command_return_to_base();
  world.run(60, 1.0);
  EXPECT_EQ(uav.mode(), sim::FlightMode::kLanded);
  EXPECT_LT(geo::enu_ground_distance_m(uav.true_position(), {0.0, 0.0, 0.0}),
            5.0);
  EXPECT_FALSE(uav.airborne());
}

TEST(Uav, EmergencyLandDescendsInPlace) {
  sim::World world(kOrigin);
  world.add_uav(test_uav("u1"), kOrigin);
  auto& uav = world.uav(0);
  uav.add_waypoint({80.0, 0.0, 30.0});
  uav.command_takeoff();
  world.run(20, 1.0);
  const double east_before = uav.true_position().east_m;
  uav.command_emergency_land();
  world.run(40, 1.0);
  EXPECT_EQ(uav.mode(), sim::FlightMode::kLanded);
  EXPECT_NEAR(uav.true_position().east_m, east_before, 3.0);
  EXPECT_LE(uav.true_position().up_m, 0.1);
}

TEST(Uav, SpoofingDeviatesTrueTrajectory) {
  sim::World world(kOrigin);
  auto cfg = test_uav("u1");
  cfg.gps.spoof_drift_m_per_s = 1.5;
  cfg.gps.spoof_bearing_deg = 90.0;  // fix walks east
  world.add_uav(cfg, kOrigin);
  auto& uav = world.uav(0);
  uav.add_waypoint({0.0, 300.0, 30.0});  // mission heads due north
  uav.command_takeoff();
  world.run(15, 1.0);
  uav.gps().start_spoofing();
  world.run(60, 1.0);
  // The estimate is dragged east, so the true vehicle is pushed west.
  EXPECT_LT(uav.true_position().east_m, -20.0);
  EXPECT_GT(uav.estimation_error_m(), 20.0);
}

TEST(Uav, DeadReckoningDriftsWithWind) {
  sim::World world(kOrigin);
  world.add_uav(test_uav("u1"), kOrigin);
  world.wind().east_mps = 1.0;  // steady breeze the estimator cannot see
  auto& uav = world.uav(0);
  uav.add_waypoint({0.0, 200.0, 30.0});
  uav.command_takeoff();
  world.run(15, 1.0);
  uav.gps().set_signal_lost(true);
  world.run(30, 1.0);
  // 30 s of unobserved 1 m/s wind -> ~30 m estimation error.
  EXPECT_GT(uav.estimation_error_m(), 20.0);
}

TEST(Uav, CorrectEstimateRestoresAccuracy) {
  sim::World world(kOrigin);
  world.add_uav(test_uav("u1"), kOrigin);
  world.wind().east_mps = 1.0;
  auto& uav = world.uav(0);
  uav.add_waypoint({0.0, 200.0, 30.0});
  uav.command_takeoff();
  world.run(15, 1.0);
  uav.gps().set_signal_lost(true);
  world.run(30, 1.0);
  ASSERT_GT(uav.estimation_error_m(), 10.0);
  uav.correct_estimate(uav.true_geo());
  EXPECT_LT(uav.estimation_error_m(), 0.1);
}

TEST(Uav, BatteryDepletionForcesEmergencyLand) {
  sim::World world(kOrigin);
  auto cfg = test_uav("u1");
  cfg.battery.initial_soc = 0.002;  // nearly empty
  world.add_uav(cfg, kOrigin);
  auto& uav = world.uav(0);
  uav.add_waypoint({500.0, 0.0, 30.0});
  uav.command_takeoff();
  world.run(120, 1.0);
  EXPECT_TRUE(uav.mode() == sim::FlightMode::kEmergencyLand ||
              uav.mode() == sim::FlightMode::kLanded);
}

TEST(Uav, OdometerAccumulates) {
  sim::World world(kOrigin);
  world.add_uav(test_uav("u1"), kOrigin);
  auto& uav = world.uav(0);
  uav.add_waypoint({100.0, 0.0, 30.0});
  uav.command_takeoff();
  world.run(40, 1.0);
  EXPECT_GT(uav.odometer_m(), 100.0);  // climb + cruise
}

TEST(Camera, FootprintScalesWithAltitude) {
  sim::Camera cam;
  const auto low = cam.footprint({0.0, 0.0, 10.0});
  const auto high = cam.footprint({0.0, 0.0, 40.0});
  EXPECT_NEAR(high.half_width_m, 4.0 * low.half_width_m, 1e-9);
  EXPECT_GT(high.area_m2(), low.area_m2());
  const auto grounded = cam.footprint({0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(grounded.area_m2(), 0.0);
}

TEST(Camera, GsdGrowsWithAltitude) {
  sim::Camera cam;
  EXPECT_GT(cam.ground_sample_distance_m(60.0),
            cam.ground_sample_distance_m(20.0));
  EXPECT_DOUBLE_EQ(cam.ground_sample_distance_m(0.0), 0.0);
}

TEST(Camera, VisibleFiltersByFootprint) {
  sim::Camera cam;
  std::vector<geo::EnuPoint> pts{{0.0, 0.0, 0.0},    // directly below
                                 {5.0, 5.0, 0.0},    // nearby
                                 {500.0, 0.0, 0.0}}; // far outside
  const auto vis = cam.visible({0.0, 0.0, 30.0}, pts);
  ASSERT_EQ(vis.size(), 2u);
  EXPECT_EQ(vis[0], 0u);
  EXPECT_EQ(vis[1], 1u);
}

TEST(Camera, ValidatesConfig) {
  sim::CameraConfig cfg;
  cfg.hfov_deg = 0.0;
  EXPECT_THROW(sim::Camera{cfg}, std::invalid_argument);
  cfg.hfov_deg = 69.0;
  cfg.image_width_px = 0;
  EXPECT_THROW(sim::Camera{cfg}, std::invalid_argument);
}

TEST(World, RejectsDuplicateUavNames) {
  sim::World world(kOrigin);
  world.add_uav(test_uav("u1"), kOrigin);
  EXPECT_THROW(world.add_uav(test_uav("u1"), kOrigin), std::invalid_argument);
}

TEST(World, UavByName) {
  sim::World world(kOrigin);
  world.add_uav(test_uav("alpha"), kOrigin);
  world.add_uav(test_uav("beta"), kOrigin);
  EXPECT_EQ(world.uav_by_name("beta").name(), "beta");
  EXPECT_THROW(world.uav_by_name("gamma"), std::out_of_range);
}

TEST(World, PublishesTelemetryEachStep) {
  sim::World world(kOrigin);
  world.add_uav(test_uav("u1"), kOrigin);
  int count = 0;
  sim::Telemetry last;
  auto sub = world.bus().subscribe<sim::Telemetry>(
      sim::telemetry_topic("u1"),
      [&](const sesame::mw::MessageHeader&, const sim::Telemetry& t) {
        ++count;
        last = t;
      });
  world.run(5, 1.0);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(last.uav, "u1");
  EXPECT_DOUBLE_EQ(last.time_s, 5.0);
  EXPECT_TRUE(last.gps_fix);
}

TEST(World, PositionFixChannelIsTrusted) {
  // Publishing a falsified fix on the position_fix topic shifts the UAV's
  // estimate — the vulnerability the spoofing scenario uses.
  sim::World world(kOrigin);
  world.add_uav(test_uav("u1"), kOrigin);
  auto& uav = world.uav(0);
  uav.gps().set_signal_lost(true);  // otherwise the next GPS read overwrites
  const geo::GeoPoint fake = geo::destination(kOrigin, 90.0, 250.0);
  world.bus().publish(sim::position_fix_topic("u1"), fake, "attacker", 0.0);
  EXPECT_GT(uav.estimation_error_m(), 200.0);
}

TEST(World, PersonsBookkeeping) {
  sim::World world(kOrigin);
  world.add_person({10.0, 10.0, 0.0});
  world.add_person({20.0, 20.0, 0.0});
  EXPECT_EQ(world.persons().size(), 2u);
  EXPECT_EQ(world.persons_detected(), 0u);
  world.persons()[1].detected = true;
  EXPECT_EQ(world.persons_detected(), 1u);
}

TEST(World, ClockAdvances) {
  sim::World world(kOrigin);
  world.run(10, 0.5);
  EXPECT_NEAR(world.time_s(), 5.0, 1e-12);
  EXPECT_THROW(world.step(0.0), std::invalid_argument);
}

TEST(World, DeterministicAcrossSeeds) {
  auto run_once = [] {
    sim::World world(kOrigin, 99);
    auto cfg = test_uav("u1");
    cfg.gps.noise_sigma_m = 0.5;
    world.add_uav(cfg, kOrigin);
    auto& uav = world.uav(0);
    uav.add_waypoint({120.0, 80.0, 30.0});
    uav.command_takeoff();
    world.run(50, 1.0);
    return uav.true_position();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.east_m, b.east_m);
  EXPECT_DOUBLE_EQ(a.north_m, b.north_m);
}

TEST(Uav, ToleratedMotorFailureDegradesSpeed) {
  sim::World world(kOrigin);
  world.add_uav(test_uav("u1"), kOrigin);
  auto& uav = world.uav(0);
  EXPECT_DOUBLE_EQ(uav.effective_cruise_speed(), 8.0);
  uav.fail_motor();
  EXPECT_EQ(uav.motors_failed(), 1u);
  EXPECT_NEAR(uav.effective_cruise_speed(), 8.0 * 0.7, 1e-12);
  EXPECT_NE(uav.mode(), sim::FlightMode::kEmergencyLand);
}

TEST(Uav, ExceedingMotorToleranceForcesEmergencyLanding) {
  sim::World world(kOrigin);
  world.add_uav(test_uav("u1"), kOrigin);
  auto& uav = world.uav(0);
  uav.add_waypoint({100.0, 0.0, 30.0});
  uav.command_takeoff();
  world.run(20, 1.0);
  ASSERT_TRUE(uav.airborne());
  uav.fail_motor();  // tolerated (hexa default: 1)
  EXPECT_EQ(uav.mode(), sim::FlightMode::kMission);
  uav.fail_motor();  // loss of control
  EXPECT_EQ(uav.mode(), sim::FlightMode::kEmergencyLand);
  world.run(40, 1.0);
  EXPECT_EQ(uav.mode(), sim::FlightMode::kLanded);
}

TEST(Uav, DegradedVehicleStillReachesWaypoint) {
  sim::World world(kOrigin);
  world.add_uav(test_uav("u1"), kOrigin);
  auto& uav = world.uav(0);
  uav.fail_motor();
  uav.add_waypoint({80.0, 0.0, 30.0});
  uav.command_takeoff();
  world.run(60, 1.0);
  EXPECT_EQ(uav.waypoints_remaining(), 0u);
}

TEST(CommLink, ValidatesConfig) {
  sim::CommLinkConfig cfg;
  cfg.nominal_range_m = 0.0;
  EXPECT_THROW(sim::CommLink{cfg}, std::invalid_argument);
  cfg = {};
  cfg.max_range_m = cfg.nominal_range_m;  // max must exceed nominal
  EXPECT_THROW(sim::CommLink{cfg}, std::invalid_argument);
  cfg = {};
  cfg.usable_threshold = 1.0;
  EXPECT_THROW(sim::CommLink{cfg}, std::invalid_argument);
}

TEST(CommLink, QualityProfile) {
  sim::CommLink link;
  EXPECT_DOUBLE_EQ(link.quality(0.0), 1.0);
  EXPECT_DOUBLE_EQ(link.quality(500.0), 1.0);   // nominal edge
  EXPECT_DOUBLE_EQ(link.quality(1500.0), 0.0);  // max edge
  EXPECT_DOUBLE_EQ(link.quality(5000.0), 0.0);
  // Monotone non-increasing between the edges.
  double prev = 1.0;
  for (double d = 500.0; d <= 1500.0; d += 100.0) {
    const double q = link.quality(d);
    EXPECT_LE(q, prev + 1e-12);
    prev = q;
  }
  EXPECT_THROW(link.quality(-1.0), std::invalid_argument);
}

TEST(CommLink, UsableRangeConsistent) {
  sim::CommLink link;
  const double r = link.usable_range_m();
  EXPECT_GT(r, link.config().nominal_range_m);
  EXPECT_LT(r, link.config().max_range_m);
  EXPECT_TRUE(link.usable(r - 1.0));
  EXPECT_FALSE(link.usable(r + 1.0));
}

TEST(CommLink, FadingJitterBoundedAndCentred) {
  sim::CommLinkConfig cfg;
  cfg.fading_sigma = 0.1;
  sim::CommLink link(cfg);
  sesame::mathx::Rng rng(77);
  sesame::mathx::RunningStats stats;
  for (int i = 0; i < 2000; ++i) {
    const double q = link.sample_quality(800.0, rng);
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
    stats.add(q);
  }
  EXPECT_NEAR(stats.mean(), link.quality(800.0), 0.01);
}

TEST(Uav, CommandsIgnoredInWrongStates) {
  sim::World world(kOrigin);
  world.add_uav(test_uav("u1"), kOrigin);
  auto& uav = world.uav(0);
  // Grounded vehicle ignores airborne-only commands.
  uav.command_hold();
  EXPECT_EQ(uav.mode(), sim::FlightMode::kIdle);
  uav.command_return_to_base();
  EXPECT_EQ(uav.mode(), sim::FlightMode::kIdle);
  uav.command_emergency_land();
  EXPECT_EQ(uav.mode(), sim::FlightMode::kIdle);
  // Takeoff works from idle, is idempotent while airborne.
  uav.command_takeoff();
  EXPECT_EQ(uav.mode(), sim::FlightMode::kTakeoff);
  uav.command_takeoff();
  EXPECT_EQ(uav.mode(), sim::FlightMode::kTakeoff);
}

TEST(Uav, RelaunchAfterLanding) {
  sim::World world(kOrigin);
  world.add_uav(test_uav("u1"), kOrigin);
  auto& uav = world.uav(0);
  uav.command_takeoff();
  world.run(15, 1.0);
  uav.command_return_to_base();
  world.run(40, 1.0);
  ASSERT_EQ(uav.mode(), sim::FlightMode::kLanded);
  uav.command_takeoff();  // a landed vehicle can relaunch
  world.run(20, 1.0);
  EXPECT_TRUE(uav.airborne() || uav.mode() == sim::FlightMode::kHold);
}

TEST(Uav, WaypointTransferValidation) {
  sim::World world(kOrigin);
  world.add_uav(test_uav("u1"), kOrigin);
  auto& uav = world.uav(0);
  EXPECT_THROW(uav.transfer_waypoints_to(uav), std::invalid_argument);
  EXPECT_THROW(uav.lower_waypoints_to(0.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fault injection at world level: delayed-message drain and the lossy-link
// radio model.

#include "sesame/mw/fault_plan.hpp"

TEST(World, StepDrainsDelayedBusMessages) {
  sim::World world(kOrigin, 3);
  world.add_uav(test_uav("u1"), kOrigin);

  sesame::mw::FaultPlan plan;
  sesame::mw::FaultRule rule;
  rule.topic_suffix = "/telemetry";
  rule.delay_probability = 1.0;
  rule.delay_steps = 2;
  plan.rules.push_back(rule);
  sesame::mw::FaultInjector injector(plan);
  auto policy = world.bus().add_delivery_policy(&injector);

  std::vector<double> rx_times;
  auto sub = world.bus().subscribe<sim::Telemetry>(
      sim::telemetry_topic("u1"),
      [&](const sesame::mw::MessageHeader&, const sim::Telemetry& t) {
        rx_times.push_back(t.time_s);
      });

  world.step(1.0);  // publishes t=1 telemetry, delayed 2 steps
  EXPECT_TRUE(rx_times.empty());
  EXPECT_EQ(world.bus().delayed_pending(), 1u);
  world.step(1.0);  // drain #1: not due yet; publishes t=2 (delayed too)
  EXPECT_TRUE(rx_times.empty());
  world.step(1.0);  // drain #2: t=1 telemetry matures
  ASSERT_EQ(rx_times.size(), 1u);
  EXPECT_DOUBLE_EQ(rx_times[0], 1.0);
  world.step(1.0);
  ASSERT_EQ(rx_times.size(), 2u);
  EXPECT_DOUBLE_EQ(rx_times[1], 2.0);
}

TEST(World, LossyLinksDropTelemetryWithDistance) {
  // Fig. 6 geometry writ small: three parked UAVs at increasing range from
  // the GCS. Per the log-linear CommLink model the telemetry drop rate
  // must rise with distance: ~0% inside nominal range, ~63% at 1000 m
  // (quality 0.369), 100% past max range.
  sim::World world(kOrigin, 11);
  const geo::LocalFrame& frame = world.frame();
  world.add_uav(test_uav("near"), frame.to_geo({100.0, 0.0, 0.0}));
  world.add_uav(test_uav("mid"), frame.to_geo({1000.0, 0.0, 0.0}));
  world.add_uav(test_uav("far"), frame.to_geo({2000.0, 0.0, 0.0}));

  sim::LossyLinkConfig llc;
  llc.link.fading_sigma = 0.0;  // pure distance effect
  llc.gcs_enu = {0.0, 0.0, 0.0};
  llc.seed = 99;
  world.enable_lossy_links(llc);
  EXPECT_TRUE(world.lossy_links_enabled());

  std::map<std::string, int> delivered;
  std::vector<sesame::mw::Subscription> subs;
  for (const char* name : {"near", "mid", "far"}) {
    subs.push_back(world.bus().subscribe<sim::Telemetry>(
        sim::telemetry_topic(name),
        [&delivered, name](const sesame::mw::MessageHeader&,
                           const sim::Telemetry&) { ++delivered[name]; }));
  }

  const int steps = 300;
  world.run(steps, 1.0);
  EXPECT_EQ(delivered["near"], steps);          // inside nominal range
  EXPECT_GT(delivered["mid"], 70);              // ~110 of 300 expected
  EXPECT_LT(delivered["mid"], 150);
  EXPECT_EQ(delivered["far"], 0);               // beyond max range
  EXPECT_GT(delivered["near"], delivered["mid"]);
  EXPECT_GT(delivered["mid"], delivered["far"]);
}

TEST(World, LossyLinksDoNotPerturbTrajectories) {
  // The link model's RNG is private: a clean run and a lossy run with the
  // same world seed must fly byte-identical trajectories.
  const auto fly = [](bool lossy) {
    sim::World world(kOrigin, 21);
    sim::UavConfig cfg;
    cfg.name = "u1";
    world.add_uav(cfg, kOrigin);  // default GPS noise: consumes world RNG
    if (lossy) {
      sim::LossyLinkConfig llc;
      llc.gcs_enu = {0.0, 0.0, 0.0};
      world.enable_lossy_links(llc);
    }
    auto& uav = world.uav_by_name("u1");
    uav.add_waypoint({400.0, 300.0, 30.0});
    uav.command_takeoff();
    std::vector<geo::EnuPoint> track;
    for (int i = 0; i < 60; ++i) {
      world.step(1.0);
      track.push_back(world.uav_by_name("u1").true_position());
    }
    return track;
  };
  const auto clean = fly(false);
  const auto lossy = fly(true);
  ASSERT_EQ(clean.size(), lossy.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_DOUBLE_EQ(clean[i].east_m, lossy[i].east_m);
    EXPECT_DOUBLE_EQ(clean[i].north_m, lossy[i].north_m);
    EXPECT_DOUBLE_EQ(clean[i].up_m, lossy[i].up_m);
  }
}

TEST(SpatialGrid, QueryReturnsAscendingCandidatesFromOverlappingCells) {
  sim::SpatialGrid grid(10.0);
  const std::vector<geo::EnuPoint> pts{{5.0, 5.0, 0.0},
                                       {-3.0, -7.0, 0.0},
                                       {25.0, 5.0, 0.0},
                                       {5.0, 6.0, 10.0},
                                       {95.0, 95.0, 0.0}};
  grid.rebuild(pts.size(),
               [&pts](std::size_t i) -> const geo::EnuPoint& { return pts[i]; });
  EXPECT_EQ(grid.indexed_points(), pts.size());

  std::vector<std::uint32_t> out;
  grid.query_rect(0.0, 9.0, 0.0, 9.0, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 3}));

  out.clear();
  grid.query_rect(-10.0, 30.0, -10.0, 10.0, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 1, 2, 3}));  // sorted

  out.clear();
  grid.query_rect(200.0, 300.0, 200.0, 300.0, out);
  EXPECT_TRUE(out.empty());

  // Rebuild drops stale points and reuses buckets.
  grid.rebuild(1, [&pts](std::size_t) -> const geo::EnuPoint& { return pts[4]; });
  out.clear();
  grid.query_rect(-10.0, 30.0, -10.0, 10.0, out);
  EXPECT_TRUE(out.empty());

  EXPECT_THROW(sim::SpatialGrid(0.0), std::invalid_argument);
}

TEST(World, HasNeighborWithinMatchesDistancesAndAirborneFilter) {
  sim::World world(kOrigin, 3);
  const geo::LocalFrame& frame = world.frame();
  world.add_uav(test_uav("a"), frame.to_geo({0.0, 0.0, 0.0}));
  world.add_uav(test_uav("b"), frame.to_geo({120.0, 0.0, 0.0}));
  world.add_uav(test_uav("c"), frame.to_geo({5000.0, 0.0, 0.0}));

  EXPECT_TRUE(world.has_neighbor_within(0, 250.0));
  EXPECT_TRUE(world.has_neighbor_within(1, 250.0));
  EXPECT_FALSE(world.has_neighbor_within(2, 250.0));
  EXPECT_FALSE(world.has_neighbor_within(0, 100.0));  // b is 120 m away
  // Everyone is parked: the airborne-only flavour finds nobody.
  EXPECT_FALSE(world.has_neighbor_within(0, 250.0, /*airborne_only=*/true));

  world.uav_by_name("b").command_takeoff();
  world.step(1.0);  // b lifts off; grid refreshes lazily after the step
  EXPECT_TRUE(world.has_neighbor_within(0, 250.0, /*airborne_only=*/true));

  EXPECT_FALSE(world.has_neighbor_within(0, 0.0));
  EXPECT_THROW(world.has_neighbor_within(99, 250.0), std::out_of_range);
}

TEST(World, PerVehicleLinkStreamsSurviveFleetLoss) {
  // Link-quality draws ride per-vehicle RNG streams derived from the
  // lossy-link seed, so one vehicle's mid-run loss (its traffic — and
  // therefore its draws — stop) must not perturb any survivor's drop
  // pattern. Under a shared stream the crash would shift every later draw,
  // silently changing survivors' delivery sequences.
  const auto fly = [](bool crash_u3) {
    sim::World world(kOrigin, 33);
    const geo::LocalFrame& frame = world.frame();
    double north = 0.0;
    for (const char* name : {"u1", "u2", "u3", "u4"}) {
      // Parked ~1000 m from the GCS: drop probability ~0.63, so the
      // delivery sequences are non-trivial mixtures.
      world.add_uav(test_uav(name), frame.to_geo({1000.0, north, 0.0}));
      north += 10.0;
    }
    sim::LossyLinkConfig llc;
    llc.link.fading_sigma = 0.0;  // quality purely from geometry
    llc.gcs_enu = {0.0, 0.0, 0.0};
    llc.seed = 5;
    world.enable_lossy_links(llc);

    std::map<std::string, std::vector<double>> rx;
    std::vector<sesame::mw::Subscription> subs;
    for (const char* name : {"u1", "u2", "u3", "u4"}) {
      subs.push_back(world.bus().subscribe<sim::Telemetry>(
          sim::telemetry_topic(name),
          [&rx, name](const sesame::mw::MessageHeader&,
                      const sim::Telemetry& t) { rx[name].push_back(t.time_s); }));
    }
    for (int i = 0; i < 60; ++i) {
      if (crash_u3 && i == 30) world.uav_by_name("u3").force_crash();
      world.step(1.0);
    }
    return rx;
  };

  auto intact = fly(false);
  auto after_loss = fly(true);
  for (const char* name : {"u1", "u2", "u4"}) {
    EXPECT_EQ(intact[name], after_loss[name]) << name;
  }
  // The wreck itself stops delivering at the crash.
  EXPECT_LT(after_loss["u3"].size(), intact["u3"].size());
}

TEST(World, LossyLinkQualityRecordedPerVehicle) {
  // The link gate mirrors each vehicle's last sampled quality into the
  // fleet arrays: near the GCS ~1, around 1 km ~0.37, past max range ~0.
  sim::World world(kOrigin, 11);
  const geo::LocalFrame& frame = world.frame();
  world.add_uav(test_uav("near"), frame.to_geo({100.0, 0.0, 0.0}));
  world.add_uav(test_uav("far"), frame.to_geo({1000.0, 0.0, 0.0}));
  sim::LossyLinkConfig llc;
  llc.link.fading_sigma = 0.0;
  llc.gcs_enu = {0.0, 0.0, 0.0};
  world.enable_lossy_links(llc);
  world.run(3, 1.0);
  ASSERT_EQ(world.fleet().link_quality.size(), 2u);
  EXPECT_GT(world.fleet().link_quality[0], 0.9);
  EXPECT_LT(world.fleet().link_quality[1], 0.6);
  EXPECT_GT(world.fleet().link_quality[0], world.fleet().link_quality[1]);
}

TEST(World, LossyLinksEnableTwiceThrows) {
  sim::World world(kOrigin);
  world.enable_lossy_links({});
  EXPECT_THROW(world.enable_lossy_links({}), std::logic_error);
}

// A world reused for a second scenario must not replay the first run's
// fault-delayed traffic into freshly wired subscribers.
TEST(World, ResetPendingCommsDiscardsDelayedTraffic) {
  sim::World world(kOrigin, 5);
  world.add_uav(test_uav("u1"), kOrigin);

  sesame::mw::FaultPlan plan;
  sesame::mw::FaultRule rule;
  rule.topic_suffix = "/position_fix";
  rule.delay_probability = 1.0;
  rule.delay_steps = 4;
  plan.rules.push_back(rule);
  sesame::mw::FaultInjector injector(plan);
  auto policy = world.bus().add_delivery_policy(&injector);

  // Run 1 leaves a delayed position fix in flight.
  world.bus().publish(sim::position_fix_topic("u1"), kOrigin, "cl", 0.0);
  EXPECT_EQ(world.bus().delayed_pending(), 1u);

  int run2_fixes = 0;
  auto sub = world.bus().subscribe<geo::GeoPoint>(
      sim::position_fix_topic("u1"),
      [&](const sesame::mw::MessageHeader&, const geo::GeoPoint&) {
        ++run2_fixes;
      });
  EXPECT_EQ(world.reset_pending_comms(), 1u);
  EXPECT_EQ(world.bus().delayed_pending(), 0u);
  EXPECT_TRUE(world.bus().journal().empty());
  world.run(6, 1.0);  // would have matured the stale fix
  EXPECT_EQ(run2_fixes, 0);
}

// ---------------------------------------------------------------------------
// Vehicle-level failure schedules (docs/ROBUSTNESS.md)

TEST(FailureSchedule, ChaosIsSeedDeterministic) {
  const std::vector<std::string> fleet{"u1", "u2", "u3"};
  const auto a = sim::FailureSchedule::chaos(42, fleet);
  const auto b = sim::FailureSchedule::chaos(42, fleet);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].uav, b.events[i].uav);
    EXPECT_EQ(a.events[i].mode, b.events[i].mode);
    EXPECT_DOUBLE_EQ(a.events[i].time_s, b.events[i].time_s);
    EXPECT_DOUBLE_EQ(a.events[i].duration_s, b.events[i].duration_s);
  }
}

TEST(FailureSchedule, ChaosRespectsProfileBounds) {
  sim::ChaosProfile profile;
  profile.max_events_per_uav = 3;
  profile.max_hard_crashes = 1;
  const std::vector<std::string> fleet{"u1", "u2", "u3", "u4"};
  // Many seeds: the bounds must hold for every draw, not just a lucky one.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto s = sim::FailureSchedule::chaos(seed, fleet, profile);
    std::size_t crashes = 0;
    std::map<std::string, std::size_t> per_uav;
    double prev_time = -1.0;
    for (const auto& e : s.events) {
      EXPECT_GE(e.time_s, profile.earliest_time_s);
      EXPECT_LE(e.time_s, profile.latest_time_s);
      EXPECT_GE(e.duration_s, profile.min_duration_s);
      EXPECT_LE(e.duration_s, profile.max_duration_s);
      EXPECT_GE(e.time_s, prev_time);  // sorted by time
      prev_time = e.time_s;
      ++per_uav[e.uav];
      crashes += (e.mode == sim::FailureMode::kHardCrash);
    }
    EXPECT_LE(crashes, profile.max_hard_crashes);
    for (const auto& [uav, n] : per_uav) {
      EXPECT_LE(n, profile.max_events_per_uav) << uav;
    }
  }
}

TEST(FailureSchedule, ModeNamesRoundTrip) {
  for (const auto m :
       {sim::FailureMode::kMotorDegradation, sim::FailureMode::kSensorDropout,
        sim::FailureMode::kBatteryCellFault, sim::FailureMode::kCommsBlackout,
        sim::FailureMode::kHardCrash}) {
    EXPECT_EQ(sim::failure_mode_from_name(sim::failure_mode_name(m)), m);
  }
  EXPECT_THROW(sim::failure_mode_from_name("gremlins"), std::invalid_argument);
}

TEST(FailureInjector, MotorDegradationFailsOneMotor) {
  sim::World world(kOrigin, 7);
  world.add_uav(test_uav("u1"), kOrigin);
  sim::FailureSchedule schedule;
  schedule.events.push_back({"u1", sim::FailureMode::kMotorDegradation, 2.0,
                             0.0, 0.35, 70.0});
  sim::FailureInjector injector(world, schedule);
  world.uav_by_name("u1").command_takeoff();
  world.step(1.0);
  injector.step(world.time_s());
  EXPECT_EQ(world.uav_by_name("u1").motors_failed(), 0u);
  world.step(1.0);
  injector.step(world.time_s());
  EXPECT_EQ(world.uav_by_name("u1").motors_failed(), 1u);
  EXPECT_EQ(injector.events_applied(), 1u);
}

TEST(FailureInjector, SensorDropoutBlindsThenRestores) {
  sim::World world(kOrigin, 7);
  world.add_uav(test_uav("u1"), kOrigin);
  sim::FailureSchedule schedule;
  schedule.events.push_back(
      {"u1", sim::FailureMode::kSensorDropout, 1.0, 3.0, 0.35, 70.0});
  sim::FailureInjector injector(world, schedule);
  for (int i = 0; i < 2; ++i) {
    world.step(1.0);
    injector.step(world.time_s());
  }
  EXPECT_FALSE(world.uav_by_name("u1").vision_sensor_healthy());
  for (int i = 0; i < 4; ++i) {
    world.step(1.0);
    injector.step(world.time_s());
  }
  EXPECT_TRUE(world.uav_by_name("u1").vision_sensor_healthy());
}

TEST(FailureInjector, BatteryCellFaultOnlyCollapsesDownward) {
  sim::World world(kOrigin, 7);
  world.add_uav(test_uav("u1"), kOrigin);
  sim::FailureSchedule schedule;
  schedule.events.push_back(
      {"u1", sim::FailureMode::kBatteryCellFault, 0.5, 0.0, 0.30, 72.0});
  sim::FailureInjector injector(world, schedule);
  world.step(1.0);
  injector.step(world.time_s());
  auto& battery = world.uav_by_name("u1").battery();
  EXPECT_NEAR(battery.soc(), 0.30, 1e-9);
  EXPECT_TRUE(battery.fault_active());
}

TEST(FailureInjector, CommsBlackoutSilencesAndRestoresTheVehicle) {
  sim::World world(kOrigin, 7);
  world.add_uav(test_uav("u1"), kOrigin);
  world.add_uav(test_uav("u2"), kOrigin);
  sim::FailureSchedule schedule;
  schedule.events.push_back(
      {"u1", sim::FailureMode::kCommsBlackout, 2.0, 3.0, 0.35, 70.0});
  sim::FailureInjector injector(world, schedule);

  std::map<std::string, int> telemetry;
  auto s1 = world.bus().subscribe<sim::Telemetry>(
      sim::telemetry_topic("u1"),
      [&](const sesame::mw::MessageHeader&, const sim::Telemetry&) {
        ++telemetry["u1"];
      });
  auto s2 = world.bus().subscribe<sim::Telemetry>(
      sim::telemetry_topic("u2"),
      [&](const sesame::mw::MessageHeader&, const sim::Telemetry&) {
        ++telemetry["u2"];
      });

  // 10 steps; the blackout covers the window (2, 5].
  for (int i = 0; i < 10; ++i) {
    world.step(1.0);
    injector.step(world.time_s());
  }
  EXPECT_EQ(telemetry["u2"], 10);          // bystander unaffected
  EXPECT_EQ(telemetry["u1"], 10 - 3);      // silent while blacked out
  EXPECT_FALSE(injector.comms_blacked_out("u1"));
}

TEST(FailureInjector, HardCrashIsTerminal) {
  sim::World world(kOrigin, 7);
  world.add_uav(test_uav("u1"), kOrigin);
  sim::FailureSchedule schedule;
  schedule.events.push_back(
      {"u1", sim::FailureMode::kHardCrash, 3.0, 0.0, 0.35, 70.0});
  sim::FailureInjector injector(world, schedule);

  int telemetry = 0;
  auto sub = world.bus().subscribe<sim::Telemetry>(
      sim::telemetry_topic("u1"),
      [&](const sesame::mw::MessageHeader&, const sim::Telemetry&) {
        ++telemetry;
      });
  world.uav_by_name("u1").command_takeoff();
  for (int i = 0; i < 10; ++i) {
    world.step(1.0);
    injector.step(world.time_s());
  }
  auto& uav = world.uav_by_name("u1");
  EXPECT_EQ(uav.mode(), sim::FlightMode::kCrashed);
  EXPECT_FALSE(uav.airborne());
  EXPECT_DOUBLE_EQ(uav.true_position().up_m, 0.0);
  EXPECT_EQ(telemetry, 3);  // radio died with the airframe

  // A wreck ignores every command and never flies again.
  uav.command_takeoff();
  uav.command_resume_mission();
  uav.command_return_to_base();
  world.step(1.0);
  EXPECT_EQ(uav.mode(), sim::FlightMode::kCrashed);
}

TEST(FailureInjector, RejectsUnknownVehiclesAndNegativeTimes) {
  sim::World world(kOrigin, 7);
  world.add_uav(test_uav("u1"), kOrigin);
  sim::FailureSchedule unknown;
  unknown.events.push_back(
      {"ghost", sim::FailureMode::kHardCrash, 1.0, 0.0, 0.35, 70.0});
  EXPECT_THROW(sim::FailureInjector(world, unknown), std::out_of_range);
  sim::FailureSchedule negative;
  negative.events.push_back(
      {"u1", sim::FailureMode::kHardCrash, -1.0, 0.0, 0.35, 70.0});
  EXPECT_THROW(sim::FailureInjector(world, negative), std::invalid_argument);
}

TEST(World, HealthHeartbeatsPublishAtPeriod) {
  sim::World world(kOrigin, 7);
  world.add_uav(test_uav("u1"), kOrigin);
  world.enable_health_heartbeats(2.0);
  EXPECT_TRUE(world.health_heartbeats_enabled());
  EXPECT_THROW(world.enable_health_heartbeats(0.0), std::invalid_argument);

  std::vector<sim::HealthHeartbeat> beats;
  auto sub = world.bus().subscribe<sim::HealthHeartbeat>(
      sim::health_topic("u1"),
      [&](const sesame::mw::MessageHeader&, const sim::HealthHeartbeat& hb) {
        beats.push_back(hb);
      });
  world.run(10, 1.0);
  ASSERT_EQ(beats.size(), 5u);  // t = 2, 4, 6, 8, 10
  EXPECT_EQ(beats.front().uav, "u1");
  EXPECT_DOUBLE_EQ(beats.front().time_s, 2.0);
  EXPECT_TRUE(beats.front().vision_sensor_healthy);
}

TEST(World, PingAnswersWithImmediateTelemetry) {
  sim::World world(kOrigin, 7);
  world.add_uav(test_uav("u1"), kOrigin);
  int telemetry = 0;
  auto sub = world.bus().subscribe<sim::Telemetry>(
      sim::telemetry_topic("u1"),
      [&](const sesame::mw::MessageHeader&, const sim::Telemetry&) {
        ++telemetry;
      });
  world.bus().publish(sim::ping_topic("u1"), 0.0, "gcs", 0.0);
  EXPECT_EQ(telemetry, 1);  // pong, without waiting for the next step

  // A crashed vehicle never answers.
  world.crash_uav("u1");
  world.bus().publish(sim::ping_topic("u1"), 1.0, "gcs", 1.0);
  EXPECT_EQ(telemetry, 1);
  EXPECT_THROW(world.crash_uav("ghost"), std::out_of_range);
}

TEST(World, CrashDropsPendingDelayedTraffic) {
  sim::World world(kOrigin, 7);
  world.add_uav(test_uav("u1"), kOrigin);
  world.add_uav(test_uav("u2"), kOrigin);

  sesame::mw::FaultPlan plan;
  sesame::mw::FaultRule rule;
  rule.topic_suffix = "/telemetry";
  rule.delay_probability = 1.0;
  rule.delay_steps = 5;
  plan.rules.push_back(rule);
  sesame::mw::FaultInjector injector(plan);
  auto policy = world.bus().add_delivery_policy(&injector);

  world.step(1.0);  // both vehicles' telemetry now held in the delay queue
  EXPECT_EQ(world.bus().delayed_pending(), 2u);
  world.crash_uav("u1");
  // The wreck's in-flight message is gone; the survivor's still matures.
  EXPECT_EQ(world.bus().delayed_pending(), 1u);
}
