// Tests for the multi-UAV platform: database manager access control,
// UAV/task managers, and MissionRunner end-to-end scenarios (nominal,
// battery fault with/without SESAME).
#include <gtest/gtest.h>

#include "sesame/platform/database.hpp"
#include "sesame/platform/gcs.hpp"
#include "sesame/security/attack_tree.hpp"
#include "sesame/security/ids.hpp"
#include "sesame/platform/managers.hpp"
#include "sesame/platform/mission_runner.hpp"

namespace pf = sesame::platform;
namespace sim = sesame::sim;
namespace cs = sesame::conserts;

namespace {

const sesame::geo::GeoPoint kOrigin{35.1856, 33.3823, 0.0};

pf::RunnerConfig small_scenario() {
  pf::RunnerConfig cfg;
  cfg.n_uavs = 2;
  cfg.area = {0.0, 120.0, 0.0, 120.0};
  cfg.coverage.altitude_m = 20.0;
  cfg.coverage.lane_spacing_m = 30.0;
  cfg.n_persons = 3;
  cfg.max_time_s = 900.0;
  return cfg;
}

}  // namespace

TEST(DatabaseManager, StoresAndServesTelemetry) {
  sim::World world(kOrigin);
  sim::UavConfig uc;
  uc.name = "u1";
  world.add_uav(uc, kOrigin);
  pf::DatabaseManager db(world.bus());
  db.attach_uav("u1");
  db.allow_client("gcs");
  world.run(3, 1.0);
  const auto latest = db.latest("gcs", "u1");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->uav, "u1");
  EXPECT_EQ(db.history("gcs", "u1").size(), 3u);
  EXPECT_EQ(db.records_stored(), 3u);
}

TEST(DatabaseManager, RejectsOutsideClients) {
  sim::World world(kOrigin);
  sim::UavConfig uc;
  uc.name = "u1";
  world.add_uav(uc, kOrigin);
  pf::DatabaseManager db(world.bus());
  db.attach_uav("u1");
  world.run(1, 1.0);
  EXPECT_THROW(db.latest("internet_rando", "u1"), std::runtime_error);
  EXPECT_THROW((pf::DatabaseManager{world.bus(), 0}), std::invalid_argument);
}

TEST(DatabaseManager, HistoryBounded) {
  sim::World world(kOrigin);
  sim::UavConfig uc;
  uc.name = "u1";
  world.add_uav(uc, kOrigin);
  pf::DatabaseManager db(world.bus(), 5);
  db.attach_uav("u1");
  db.allow_client("gcs");
  world.run(12, 1.0);
  EXPECT_EQ(db.history("gcs", "u1").size(), 5u);
  // Oldest dropped: first stored record is from t=8.
  EXPECT_DOUBLE_EQ(db.history("gcs", "u1").front().time_s, 8.0);
}

TEST(DatabaseManager, DiscardsStaleAndDuplicateTelemetry) {
  // Regression: a duplicating/reordering transport must not corrupt the
  // state database — a late copy of an old record may not shadow newer
  // state, and duplicates may not inflate the history.
  sim::World world(kOrigin);
  pf::DatabaseManager db(world.bus());
  db.attach_uav("u1");
  db.allow_client("gcs");
  const auto publish_at = [&](double t, double soc) {
    sim::Telemetry tel;
    tel.uav = "u1";
    tel.time_s = t;
    tel.battery_soc = soc;
    world.bus().publish(sim::telemetry_topic("u1"), tel, "u1", t);
  };
  publish_at(1.0, 0.99);
  publish_at(2.0, 0.98);
  publish_at(2.0, 0.98);  // duplicate delivery
  publish_at(1.5, 0.985);  // reordered stale copy
  publish_at(3.0, 0.97);
  const auto history = db.history("gcs", "u1");
  ASSERT_EQ(history.size(), 3u);
  EXPECT_DOUBLE_EQ(history[0].time_s, 1.0);
  EXPECT_DOUBLE_EQ(history[1].time_s, 2.0);
  EXPECT_DOUBLE_EQ(history[2].time_s, 3.0);
  EXPECT_DOUBLE_EQ(db.latest("gcs", "u1")->battery_soc, 0.97);
  EXPECT_EQ(db.records_stored(), 3u);
  EXPECT_EQ(db.records_rejected(), 2u);
}

TEST(UavManager, RegistrationAndInfo) {
  sim::World world(kOrigin);
  sim::UavConfig uc;
  uc.name = "u1";
  world.add_uav(uc, kOrigin);
  pf::UavManager mgr(world);
  pf::UavInfo info;
  info.name = "u1";
  info.equipment = {"rgb_camera"};
  mgr.register_uav(info);
  EXPECT_EQ(mgr.info("u1").equipment.size(), 1u);
  EXPECT_EQ(mgr.registered().size(), 1u);
  EXPECT_NEAR(mgr.battery_level("u1"), 1.0, 1e-6);
  EXPECT_THROW(mgr.register_uav(info), std::invalid_argument);
  pf::UavInfo ghost;
  ghost.name = "ghost";
  EXPECT_THROW(mgr.register_uav(ghost), std::out_of_range);
  EXPECT_THROW(mgr.info("ghost"), std::out_of_range);
}

TEST(UavManager, AppliesConsertActions) {
  sim::World world(kOrigin);
  sim::UavConfig uc;
  uc.name = "u1";
  world.add_uav(uc, kOrigin);
  pf::UavManager mgr(world);
  pf::UavInfo info;
  info.name = "u1";
  mgr.register_uav(info);

  auto& uav = world.uav_by_name("u1");
  uav.add_waypoint({50.0, 0.0, 30.0});
  uav.command_takeoff();
  world.run(20, 1.0);
  ASSERT_EQ(uav.mode(), sim::FlightMode::kMission);

  EXPECT_TRUE(mgr.apply_action("u1", cs::UavAction::kHold));
  EXPECT_EQ(uav.mode(), sim::FlightMode::kHold);
  EXPECT_EQ(mgr.last_action("u1"), cs::UavAction::kHold);

  EXPECT_TRUE(mgr.apply_action("u1", cs::UavAction::kContinue));
  EXPECT_EQ(uav.mode(), sim::FlightMode::kMission);

  EXPECT_TRUE(mgr.apply_action("u1", cs::UavAction::kEmergencyLand));
  EXPECT_EQ(uav.mode(), sim::FlightMode::kEmergencyLand);
  EXPECT_FALSE(mgr.last_action("u2").has_value());
}

TEST(TaskManager, ServicesRegistryAndPlanning) {
  pf::TaskManager tm;
  ASSERT_EQ(tm.services().size(), 1u);
  EXPECT_EQ(tm.services()[0], "boustrophedon");
  const auto plans =
      tm.plan("boustrophedon", {0, 100, 0, 100}, 2, sesame::sar::CoverageConfig{});
  EXPECT_EQ(plans.size(), 2u);
  EXPECT_THROW(tm.plan("nope", {0, 100, 0, 100}, 2, {}), std::out_of_range);
  EXPECT_THROW(tm.register_service("bad", nullptr), std::invalid_argument);
  tm.register_service("custom", [](const sesame::sar::Area& a, std::size_t n,
                                   const sesame::sar::CoverageConfig& c) {
    return sesame::sar::plan_coverage(a, n, c);
  });
  EXPECT_EQ(tm.services().size(), 2u);
}

TEST(MissionRunner, ValidatesConfig) {
  pf::RunnerConfig cfg = small_scenario();
  cfg.n_uavs = 0;
  EXPECT_THROW(pf::MissionRunner{cfg}, std::invalid_argument);
  cfg = small_scenario();
  cfg.dt_s = 0.0;
  EXPECT_THROW(pf::MissionRunner{cfg}, std::invalid_argument);
}

TEST(MissionRunner, NominalMissionCompletesWithSesame) {
  pf::RunnerConfig cfg = small_scenario();
  cfg.sesame_enabled = true;
  pf::MissionRunner runner(cfg);
  const auto result = runner.run();
  ASSERT_TRUE(result.mission_complete_time_s.has_value());
  EXPECT_GT(result.availability, 0.7);
  EXPECT_GT(result.detection.persons_found, 0u);
  // Time series recorded for both UAVs.
  EXPECT_EQ(result.series.size(), 2u);
  for (const auto& [name, series] : result.series) {
    (void)name;
    EXPECT_FALSE(series.empty());
  }
}

TEST(MissionRunner, NominalMissionCompletesBaseline) {
  pf::RunnerConfig cfg = small_scenario();
  cfg.sesame_enabled = false;
  pf::MissionRunner runner(cfg);
  const auto result = runner.run();
  ASSERT_TRUE(result.mission_complete_time_s.has_value());
  EXPECT_GT(result.availability, 0.7);
}

TEST(MissionRunner, BatteryFaultBaselineReturnsAndSwaps) {
  pf::RunnerConfig cfg = small_scenario();
  cfg.sesame_enabled = false;
  cfg.battery_fault = pf::BatteryFaultEvent{"uav1", 60.0, 0.40, 70.0};
  pf::MissionRunner runner(cfg);
  const auto result = runner.run();
  // The baseline vehicle must have gone home at some point (RTB mode seen).
  bool saw_rtb = false;
  for (const auto& rec : result.series.at("uav1")) {
    if (rec.mode == sim::FlightMode::kReturnToBase) saw_rtb = true;
  }
  EXPECT_TRUE(saw_rtb);
  ASSERT_TRUE(result.mission_complete_time_s.has_value());
}

TEST(MissionRunner, BatteryFaultSesameContinuesAndBeatsBaseline) {
  pf::RunnerConfig with = small_scenario();
  with.sesame_enabled = true;
  with.battery_fault = pf::BatteryFaultEvent{"uav1", 60.0, 0.40, 70.0};
  pf::RunnerConfig without = with;
  without.sesame_enabled = false;

  const auto r_with = pf::MissionRunner(with).run();
  const auto r_without = pf::MissionRunner(without).run();

  ASSERT_TRUE(r_with.mission_complete_time_s.has_value());
  ASSERT_TRUE(r_without.mission_complete_time_s.has_value());
  // SESAME finishes sooner and with higher availability (Fig. 5 shape).
  EXPECT_LT(*r_with.mission_complete_time_s, *r_without.mission_complete_time_s);
  EXPECT_GT(r_with.availability, r_without.availability);

  // P(fail) series for the faulted UAV rises after injection.
  const auto& series = r_with.series.at("uav1");
  double before = 0.0, after = 0.0;
  for (const auto& rec : series) {
    if (rec.time_s < 60.0) before = std::max(before, rec.p_fail);
    if (rec.time_s > 70.0) after = std::max(after, rec.p_fail);
  }
  EXPECT_GT(after, before);
}

TEST(MissionRunner, HighAltitudeTriggersDescendAdaptation) {
  pf::RunnerConfig cfg = small_scenario();
  cfg.sesame_enabled = true;
  cfg.coverage.altitude_m = 60.0;  // high-altitude sweep: uncertainty > 90%
  cfg.descend_altitude_m = 18.0;
  pf::MissionRunner runner(cfg);
  const auto result = runner.run();
  EXPECT_TRUE(result.descended);
  // After descending the recorded altitude drops to the low band.
  double final_alt = 1e9;
  for (const auto& rec : result.series.at("uav1")) {
    if (rec.mode == sim::FlightMode::kMission) final_alt = rec.altitude_m;
  }
  EXPECT_LT(final_alt, 30.0);
}

TEST(MissionRunner, SpoofingDetectedAndSafeLandedWithSesame) {
  pf::RunnerConfig cfg = small_scenario();
  cfg.sesame_enabled = true;
  cfg.spoofing = pf::SpoofingEvent{"uav1", 40.0, 2.0};
  pf::MissionRunner runner(cfg);
  const auto result = runner.run();

  EXPECT_TRUE(result.attack_detected);
  // First counterfeit message lands within one step of the event time.
  EXPECT_NEAR(result.attack_detection_time_s, 41.0, 2.0);
  // The victim safe-landed near its home pad without GPS.
  EXPECT_GE(result.spoofed_uav_landing_error_m, 0.0);
  EXPECT_LT(result.spoofed_uav_landing_error_m, 10.0);
  // Its tasks were redistributed and the mission still completed.
  EXPECT_GT(result.waypoints_redistributed, 0u);
  ASSERT_TRUE(result.mission_complete_time_s.has_value());
  // The victim ends up grounded.
  bool landed = false;
  for (const auto& rec : result.series.at("uav1")) {
    if (rec.mode == sim::FlightMode::kLanded) landed = true;
  }
  EXPECT_TRUE(landed);
}

TEST(MissionRunner, SpoofingUnnoticedWithoutSesame) {
  pf::RunnerConfig cfg = small_scenario();
  cfg.sesame_enabled = false;
  cfg.spoofing = pf::SpoofingEvent{"uav1", 40.0, 2.0};
  pf::MissionRunner runner(cfg);
  const auto result = runner.run();

  EXPECT_FALSE(result.attack_detected);
  EXPECT_LT(result.spoofed_uav_landing_error_m, 0.0);  // never safe-landed
  // The falsified fixes corrupted the mapping: large ground-truth error.
  EXPECT_GT(result.spoofed_uav_peak_error_m, 30.0);
}

TEST(Gcs, LogsModeTransitionsAndBatteryWarnings) {
  sim::World world(kOrigin);
  sim::UavConfig uc;
  uc.name = "u1";
  uc.battery.initial_soc = 0.28;  // crosses the 25% warning mid-flight
  world.add_uav(uc, kOrigin);
  pf::DatabaseManager db(world.bus());
  pf::GroundControlStation gcs(world.bus(), db);
  gcs.watch_uav("u1");

  auto& uav = world.uav_by_name("u1");
  uav.add_waypoint({150.0, 0.0, 30.0});
  uav.command_takeoff();
  world.run(120, 1.0);

  const auto modes = gcs.events_of("mode");
  ASSERT_GE(modes.size(), 3u);  // initial, takeoff->mission, mission->hold
  EXPECT_EQ(modes[0].uav, "u1");

  const auto battery = gcs.events_of("battery");
  ASSERT_EQ(battery.size(), 1u);
  EXPECT_NE(battery[0].message.find("battery low"), std::string::npos);
}

TEST(Gcs, RecordsSecurityEvents) {
  sim::World world(kOrigin);
  sim::UavConfig uc;
  uc.name = "u1";
  world.add_uav(uc, kOrigin);
  pf::DatabaseManager db(world.bus());
  pf::GroundControlStation gcs(world.bus(), db);

  sesame::security::IntrusionDetectionSystem ids(world.bus());
  ids.authorize(sim::position_fix_topic("u1"), "collaborative_localization");
  sesame::security::SecurityEddi eddi(
      world.bus(), sesame::security::make_spoofing_attack_tree());

  world.bus().publish(sim::position_fix_topic("u1"), kOrigin, "attacker", 7.0);
  const auto sec = gcs.events_of("security");
  ASSERT_EQ(sec.size(), 1u);
  EXPECT_DOUBLE_EQ(sec[0].time_s, 7.0);
  EXPECT_NE(sec[0].message.find("attacker"), std::string::npos);
}

TEST(Gcs, RendersStatusTable) {
  sim::World world(kOrigin);
  for (const char* n : {"u1", "u2"}) {
    sim::UavConfig uc;
    uc.name = n;
    world.add_uav(uc, kOrigin);
  }
  pf::DatabaseManager db(world.bus());
  pf::GroundControlStation gcs(world.bus(), db);
  gcs.watch_uav("u1");
  gcs.watch_uav("u2");
  world.uav_by_name("u1").command_takeoff();
  world.run(5, 1.0);
  const std::string status = gcs.render_status();
  EXPECT_NE(status.find("u1"), std::string::npos);
  EXPECT_NE(status.find("u2"), std::string::npos);
  EXPECT_NE(status.find("Takeoff"), std::string::npos);
  EXPECT_NE(status.find("Idle"), std::string::npos);
}

TEST(Gcs, OperatorNotesAndEventLimit) {
  sim::World world(kOrigin);
  pf::DatabaseManager db(world.bus());
  pf::GcsConfig cfg;
  cfg.event_limit = 3;
  pf::GroundControlStation gcs(world.bus(), db, "gcs", cfg);
  for (int i = 0; i < 5; ++i) {
    gcs.log_operator_note(i, "note " + std::to_string(i));
  }
  ASSERT_EQ(gcs.events().size(), 3u);
  EXPECT_EQ(gcs.events().front().message, "note 2");  // oldest dropped
}

TEST(MissionRunner, VisionSensorFaultBlindsDetectionButMissionContinues) {
  pf::RunnerConfig cfg = small_scenario();
  cfg.sesame_enabled = true;
  pf::MissionRunner runner(cfg);
  // Blind uav1's camera before launch: it flies its strip but detects
  // nothing there; uav2's strip is still searched.
  runner.world().uav_by_name("uav1").set_vision_sensor_healthy(false);
  const auto result = runner.run();
  ASSERT_TRUE(result.mission_complete_time_s.has_value());
  // Coverage is roughly halved: only uav2's camera imaged the ground.
  EXPECT_LT(result.area_coverage, 0.75);
  EXPECT_GT(result.area_coverage, 0.25);
}

TEST(MissionRunner, DeepKnowledgeReportPresentAfterWarmup) {
  pf::RunnerConfig cfg = small_scenario();
  cfg.sesame_enabled = true;
  pf::MissionRunner runner(cfg);
  const auto result = runner.run();
  ASSERT_TRUE(result.mission_complete_time_s.has_value());
  // Coverage accounting ran for the whole mission.
  EXPECT_GT(result.area_coverage, 0.9);
}

#include <sstream>

#include "sesame/platform/report.hpp"

TEST(Report, SeriesCsvWellFormed) {
  pf::RunnerConfig cfg = small_scenario();
  cfg.max_time_s = 120.0;
  pf::MissionRunner runner(cfg);
  const auto result = runner.run();
  std::ostringstream out;
  pf::write_series_csv(result, out);
  const std::string csv = out.str();
  // Header plus one row per UAV per tick.
  std::size_t lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  std::size_t expected = 1;
  for (const auto& [name, series] : result.series) {
    (void)name;
    expected += series.size();
  }
  EXPECT_EQ(lines, expected);
  EXPECT_EQ(csv.rfind("uav,time_s,", 0), 0u);  // header first
  EXPECT_NE(csv.find("uav1,"), std::string::npos);
}

TEST(Report, SummaryCsvListsFleet) {
  pf::RunnerConfig cfg = small_scenario();
  cfg.max_time_s = 60.0;
  pf::MissionRunner runner(cfg);
  const auto result = runner.run();
  std::ostringstream out;
  pf::write_summary_csv(result, out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("uav1,"), std::string::npos);
  EXPECT_NE(csv.find("uav2,"), std::string::npos);
  EXPECT_NE(csv.find("fleet,"), std::string::npos);
}

TEST(Report, ExportRejectsBadPath) {
  pf::RunnerConfig cfg = small_scenario();
  cfg.max_time_s = 30.0;
  pf::MissionRunner runner(cfg);
  const auto result = runner.run();
  EXPECT_THROW(
      pf::export_result(result, "/nonexistent_dir/x.csv", "/tmp/ok.csv"),
      std::runtime_error);
}

TEST(MissionRunner, AssuranceTraceRecordsLifecycle) {
  pf::RunnerConfig cfg = small_scenario();
  cfg.sesame_enabled = true;
  cfg.battery_fault = pf::BatteryFaultEvent{"uav1", 60.0, 0.40, 75.0};
  // Tight reliability bands so the short test mission sees the Medium
  // transition before the sweep completes.
  cfg.eddi.reliability.medium_threshold = 0.05;
  cfg.eddi.reliability.low_threshold = 0.50;
  pf::MissionRunner runner(cfg);
  const auto result = runner.run();
  ASSERT_FALSE(result.assurance_trace.empty());
  // The faulted UAV's safety ConSert must have walked down from High.
  const auto safety = cs::uav_consert_names("uav1").safety;
  bool saw_high = false, saw_degraded = false;
  for (const auto& t : result.assurance_trace) {
    if (t.consert != safety) continue;
    if (t.to == cs::guarantees::kReliabilityHigh) saw_high = true;
    if (t.to == cs::guarantees::kReliabilityMedium ||
        t.to == cs::guarantees::kReliabilityLow) {
      saw_degraded = true;
      EXPECT_GT(t.time_s, 60.0);  // only after the fault
    }
  }
  EXPECT_TRUE(saw_high);
  EXPECT_TRUE(saw_degraded);
}

TEST(MissionRunner, BaselineHasNoAssuranceTrace) {
  pf::RunnerConfig cfg = small_scenario();
  cfg.sesame_enabled = false;
  cfg.max_time_s = 120.0;
  pf::MissionRunner runner(cfg);
  EXPECT_TRUE(runner.run().assurance_trace.empty());
}

#include "sesame/platform/gps_watchdog.hpp"
#include "sesame/security/security_eddi.hpp"

TEST(GpsWatchdog, JammingDetectionFeedsAttackTree) {
  sim::World world(kOrigin, 81);
  sim::UavConfig uc;
  uc.name = "u1";
  world.add_uav(uc, kOrigin);
  pf::GpsWatchdog watchdog(world.bus());
  watchdog.watch_uav("u1");
  sesame::security::SecurityEddi eddi(
      world.bus(), sesame::security::make_jamming_attack_tree());

  auto& uav = world.uav_by_name("u1");
  uav.command_takeoff();
  world.run(10, 1.0);
  EXPECT_EQ(watchdog.alerts_raised(), 0u);

  // Jamming starts: fix lost while airborne.
  uav.gps().set_signal_lost(true);
  world.run(2, 1.0);
  EXPECT_FALSE(eddi.attack_detected());  // below the streak threshold
  world.run(2, 1.0);
  EXPECT_TRUE(eddi.attack_detected());
  EXPECT_EQ(watchdog.alerts_raised(), 1u);

  // No alert storm during the outage; re-arms after recovery.
  world.run(20, 1.0);
  EXPECT_EQ(watchdog.alerts_raised(), 1u);
  uav.gps().set_signal_lost(false);
  world.run(3, 1.0);
  uav.gps().set_signal_lost(true);
  world.run(5, 1.0);
  EXPECT_EQ(watchdog.alerts_raised(), 2u);
}

TEST(GpsWatchdog, GroundedVehicleNeverAlerts) {
  sim::World world(kOrigin);
  sim::UavConfig uc;
  uc.name = "u1";
  world.add_uav(uc, kOrigin);
  pf::GpsWatchdog watchdog(world.bus());
  watchdog.watch_uav("u1");
  world.uav_by_name("u1").gps().set_signal_lost(true);
  world.run(20, 1.0);  // idle on the ground with no fix
  EXPECT_EQ(watchdog.alerts_raised(), 0u);
  EXPECT_THROW((pf::GpsWatchdog{world.bus(), {0}}), std::invalid_argument);
}

#include "sesame/platform/config_io.hpp"

TEST(ConfigIo, RoundTripsAllScenarioFields) {
  pf::RunnerConfig cfg;
  cfg.sesame_enabled = false;
  cfg.dt_s = 0.5;
  cfg.max_time_s = 777.0;
  cfg.n_uavs = 5;
  cfg.n_persons = 13;
  cfg.area = {1.0, 201.0, 2.0, 302.0};
  cfg.coverage.altitude_m = 44.0;
  cfg.coverage.lane_spacing_m = 27.0;
  cfg.battery_fault = pf::BatteryFaultEvent{"uav4", 123.0, 0.35, 66.0};
  cfg.spoofing = pf::SpoofingEvent{"uav2", 45.0, 3.5};
  cfg.seed = 987654321;

  const auto doc = pf::config_to_json(cfg);
  const auto back = pf::config_from_json(
      sesame::eddi::ode::parse_json(doc.to_json()));
  EXPECT_EQ(back.sesame_enabled, cfg.sesame_enabled);
  EXPECT_DOUBLE_EQ(back.dt_s, cfg.dt_s);
  EXPECT_DOUBLE_EQ(back.max_time_s, cfg.max_time_s);
  EXPECT_EQ(back.n_uavs, cfg.n_uavs);
  EXPECT_EQ(back.n_persons, cfg.n_persons);
  EXPECT_DOUBLE_EQ(back.area.east_max, 201.0);
  EXPECT_DOUBLE_EQ(back.coverage.altitude_m, 44.0);
  ASSERT_TRUE(back.battery_fault.has_value());
  EXPECT_EQ(back.battery_fault->uav, "uav4");
  EXPECT_DOUBLE_EQ(back.battery_fault->temp_c, 66.0);
  ASSERT_TRUE(back.spoofing.has_value());
  EXPECT_DOUBLE_EQ(back.spoofing->walk_mps, 3.5);
  EXPECT_EQ(back.seed, cfg.seed);
}

TEST(ConfigIo, AbsentKeysKeepDefaults) {
  const auto cfg = pf::config_from_json(
      sesame::eddi::ode::parse_json(R"({"n_uavs": 2})"));
  EXPECT_EQ(cfg.n_uavs, 2u);
  EXPECT_TRUE(cfg.sesame_enabled);  // default
  EXPECT_FALSE(cfg.battery_fault.has_value());
  EXPECT_DOUBLE_EQ(cfg.max_time_s, pf::RunnerConfig{}.max_time_s);
}

TEST(ConfigIo, RejectsUnknownAndMistypedKeys) {
  EXPECT_THROW(pf::config_from_json(
                   sesame::eddi::ode::parse_json(R"({"n_uavss": 2})")),
               std::runtime_error);
  EXPECT_THROW(pf::config_from_json(sesame::eddi::ode::parse_json(
                   R"({"area": {"east_mid": 5}})")),
               std::runtime_error);
  EXPECT_THROW(pf::config_from_json(
                   sesame::eddi::ode::parse_json(R"({"dt_s": "fast"})")),
               std::invalid_argument);
  EXPECT_THROW(pf::config_from_json(sesame::eddi::ode::parse_json(R"([1])")),
               std::invalid_argument);
}

TEST(ConfigIo, FileRoundTrip) {
  pf::RunnerConfig cfg;
  cfg.n_uavs = 4;
  cfg.spoofing = pf::SpoofingEvent{"uav3", 99.0, 1.0};
  const std::string path = "/tmp/sesame_config_test.json";
  pf::save_config(cfg, path);
  const auto back = pf::load_config(path);
  EXPECT_EQ(back.n_uavs, 4u);
  ASSERT_TRUE(back.spoofing.has_value());
  EXPECT_EQ(back.spoofing->uav, "uav3");
  EXPECT_THROW(pf::load_config("/nonexistent/nope.json"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Fault injection: telemetry-staleness watchdog, alert paths under loss,
// and config round-tripping of the new fields.

#include <cmath>

#include "sesame/mw/fault_plan.hpp"

namespace mw = sesame::mw;

TEST(MissionRunner, TelemetryStalenessDemotesCommGuarantee) {
  pf::RunnerConfig cfg = small_scenario();
  cfg.sesame_enabled = true;
  // Total uav1 telemetry blackout from t=60 on — a dead C2 link.
  mw::FaultPlan plan;
  mw::FaultRule rule;
  rule.topic_prefix = "uav/uav1/";
  rule.topic_suffix = "/telemetry";
  rule.drop_probability = 1.0;
  rule.start_time_s = 60.0;
  plan.rules.push_back(rule);
  cfg.fault_plan = plan;
  cfg.telemetry_staleness_window_s = 5.0;

  pf::MissionRunner runner(cfg);
  const auto result = runner.run();

  // The watchdog saw the outage...
  EXPECT_GT(runner.telemetry_staleness_s("uav1"),
            cfg.telemetry_staleness_window_s);
  EXPECT_LE(runner.telemetry_staleness_s("uav2"),
            cfg.telemetry_staleness_window_s);

  // ...and the comm_localization ConSert guarantee was granted, then
  // demoted within the staleness window plus one evaluation period.
  const auto comm = cs::uav_consert_names("uav1").comm_localization;
  bool granted = false, demoted = false;
  double demotion_time_s = -1.0;
  for (const auto& t : result.assurance_trace) {
    if (t.consert != comm) continue;
    if (t.to == cs::guarantees::kCommAvailable) granted = true;
    if (granted && !demoted && t.to.empty()) {
      demoted = true;
      demotion_time_s = t.time_s;
    }
  }
  EXPECT_TRUE(granted);
  ASSERT_TRUE(demoted);
  EXPECT_GT(demotion_time_s, 60.0);
  EXPECT_LE(demotion_time_s, 60.0 + cfg.telemetry_staleness_window_s +
                                 2.0 * cfg.consert_period_s);
}

TEST(GpsWatchdog, JammingAlertSurvivesTelemetryLoss) {
  // The watchdog needs consecutive *received* no-fix samples; a 10%-lossy
  // telemetry stream must still produce the alert, just possibly later.
  sim::World world(kOrigin, 81);
  sim::UavConfig uc;
  uc.name = "u1";
  world.add_uav(uc, kOrigin);

  mw::FaultPlan plan;
  plan.seed = 5150;
  mw::FaultRule rule;
  rule.topic_suffix = "/telemetry";
  rule.drop_probability = 0.10;
  plan.rules.push_back(rule);
  mw::FaultInjector injector(plan);
  auto policy = world.bus().add_delivery_policy(&injector);

  pf::GpsWatchdog watchdog(world.bus());
  watchdog.watch_uav("u1");
  sesame::security::SecurityEddi eddi(
      world.bus(), sesame::security::make_jamming_attack_tree());

  auto& uav = world.uav_by_name("u1");
  uav.command_takeoff();
  world.run(10, 1.0);
  EXPECT_EQ(watchdog.alerts_raised(), 0u);

  uav.gps().set_signal_lost(true);
  world.run(30, 1.0);
  EXPECT_TRUE(eddi.attack_detected());
  EXPECT_GE(watchdog.alerts_raised(), 1u);
}

TEST(ConfigIo, RoundTripsFaultInjectionFields) {
  pf::RunnerConfig cfg;
  cfg.lossy_links = true;
  cfg.telemetry_staleness_window_s = 7.5;
  cfg.comm_link.nominal_range_m = 350.0;
  cfg.comm_link.max_range_m = 900.0;
  cfg.comm_link.fading_sigma = 0.02;
  cfg.comm_link.usable_threshold = 0.4;
  mw::FaultPlan plan;
  plan.seed = 2024;
  mw::FaultRule windowed;
  windowed.topic_prefix = "uav/uav1/";
  windowed.topic_suffix = "/telemetry";
  windowed.source = "uav1";
  windowed.start_time_s = 30.0;
  windowed.stop_time_s = 90.0;
  windowed.drop_probability = 0.2;
  windowed.delay_probability = 0.3;
  windowed.delay_steps = 4;
  windowed.duplicate_probability = 0.1;
  windowed.reorder = true;
  mw::FaultRule open_ended;  // infinite stop must survive the JSON trip
  open_ended.drop_probability = 0.05;
  plan.rules = {windowed, open_ended};
  cfg.fault_plan = plan;

  const auto back = pf::config_from_json(
      sesame::eddi::ode::parse_json(pf::config_to_json(cfg).to_json()));
  EXPECT_TRUE(back.lossy_links);
  EXPECT_DOUBLE_EQ(back.telemetry_staleness_window_s, 7.5);
  EXPECT_DOUBLE_EQ(back.comm_link.nominal_range_m, 350.0);
  EXPECT_DOUBLE_EQ(back.comm_link.usable_threshold, 0.4);
  ASSERT_TRUE(back.fault_plan.has_value());
  EXPECT_EQ(back.fault_plan->seed, 2024u);
  ASSERT_EQ(back.fault_plan->rules.size(), 2u);
  const auto& r0 = back.fault_plan->rules[0];
  EXPECT_EQ(r0.topic_prefix, "uav/uav1/");
  EXPECT_EQ(r0.topic_suffix, "/telemetry");
  EXPECT_EQ(r0.source, "uav1");
  EXPECT_DOUBLE_EQ(r0.start_time_s, 30.0);
  EXPECT_DOUBLE_EQ(r0.stop_time_s, 90.0);
  EXPECT_DOUBLE_EQ(r0.drop_probability, 0.2);
  EXPECT_EQ(r0.delay_steps, 4u);
  EXPECT_TRUE(r0.reorder);
  EXPECT_TRUE(std::isinf(back.fault_plan->rules[1].stop_time_s));
  // Rules are validated on the way in.
  EXPECT_THROW(
      pf::config_from_json(sesame::eddi::ode::parse_json(
          R"({"fault_plan": {"rules": [{"drop_probability": 2.0}]}})")),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fleet failure & recovery (docs/ROBUSTNESS.md): edge-triggered watchdog
// demotion, hard-crash detection with coverage re-planning, and config
// round-tripping of the recovery / invariant / failure-schedule fields.

#include "sesame/obs/sinks.hpp"

namespace obs = sesame::obs;

namespace {

/// Count of `events` carrying an attribute uav=`uav`.
int events_for(const std::vector<obs::TraceEvent>& events,
               const std::string& uav) {
  int n = 0;
  for (const auto& e : events) {
    for (const auto& [key, value] : e.attributes) {
      if (key == "uav" && value == uav) ++n;
    }
  }
  return n;
}

}  // namespace

TEST(MissionRunner, WatchdogDemotionIsEdgeTriggered) {
  pf::RunnerConfig cfg = small_scenario();
  cfg.sesame_enabled = true;
  // One bounded uav1 telemetry outage, t=60..75. Edge-triggering means
  // exactly one demotion event and one re-arm for the whole outage — not
  // one per tick of staleness.
  mw::FaultPlan plan;
  mw::FaultRule rule;
  rule.topic_prefix = "uav/uav1/";
  rule.topic_suffix = "/telemetry";
  rule.drop_probability = 1.0;
  rule.start_time_s = 60.0;
  rule.stop_time_s = 75.0;
  plan.rules.push_back(rule);
  cfg.fault_plan = plan;
  cfg.telemetry_staleness_window_s = 5.0;

  pf::MissionRunner runner(cfg);
  obs::Observability o;
  obs::MemorySink sink;
  o.tracer.set_sink(&sink);
  runner.attach_observability(o);
  const auto result = runner.run();
  ASSERT_GT(result.total_time_s, 75.0);  // outage fully inside the run

  const auto demoted = sink.named("sesame.platform.comm_demoted");
  const auto rearmed = sink.named("sesame.platform.comm_rearmed");
  EXPECT_EQ(events_for(demoted, "uav1"), 1);
  EXPECT_EQ(events_for(rearmed, "uav1"), 1);
  EXPECT_EQ(events_for(demoted, "uav2"), 0);
  EXPECT_DOUBLE_EQ(
      o.metrics.counter("sesame.platform.comm_demotions_total",
                        {{"uav", "uav1"}})
          .value(),
      1.0);
  EXPECT_DOUBLE_EQ(
      o.metrics.counter("sesame.platform.comm_demotions_total",
                        {{"uav", "uav2"}})
          .value(),
      0.0);
}

TEST(MissionRunner, HardCrashEscalatesToLostAndReplansCoverage) {
  pf::RunnerConfig cfg = small_scenario();
  cfg.sesame_enabled = true;
  cfg.recovery_enabled = true;
  sim::FailureSchedule schedule;
  sim::FailureEvent crash;
  crash.uav = "uav1";
  crash.mode = sim::FailureMode::kHardCrash;
  crash.time_s = 60.0;
  schedule.events.push_back(crash);
  cfg.failure_schedule = schedule;

  pf::MissionRunner runner(cfg);
  obs::Observability o;
  obs::MemorySink sink;
  o.tracer.set_sink(&sink);
  runner.attach_observability(o);
  const auto result = runner.run();

  // The wreck was detected, escalated re-ping -> demote -> RTH -> lost.
  EXPECT_EQ(result.uavs_lost, std::vector<std::string>{"uav1"});
  EXPECT_GE(result.recovery_pings, 2u);
  EXPECT_EQ(result.recovery_demotions, 1u);
  EXPECT_EQ(result.recovery_rth_commands, 1u);
  EXPECT_EQ(result.recovery_replans, 1u);
  EXPECT_GT(result.waypoints_redistributed, 0u);

  // Latencies are measured from the crash time. Detection must land within
  // the staleness window plus one escalation tick. In a SESAME run the
  // ConSert dropped-out path can re-plan within one evaluation period —
  // before the heartbeat escalation even completes — so the re-plan bound
  // is the looser of the two responders.
  const double window = std::max(cfg.recovery.staleness_window_s,
                                 cfg.telemetry_staleness_window_s);
  EXPECT_GT(result.time_to_detect_loss_s, 0.0);
  EXPECT_LE(result.time_to_detect_loss_s, window + 2.0 * cfg.dt_s);
  EXPECT_GE(result.time_to_replan_s, 0.0);
  EXPECT_LE(result.time_to_replan_s,
            window + cfg.consert_period_s + 2.0 * cfg.dt_s);

  // The survivor absorbed the coverage; no safety invariant broke.
  EXPECT_TRUE(result.mission_complete_time_s.has_value());
  EXPECT_TRUE(result.invariant_violations.empty());
  EXPECT_EQ(events_for(sink.named("sesame.recovery.uav_lost"), "uav1"), 1);
  EXPECT_EQ(events_for(sink.named("sesame.recovery.rth_commanded"), "uav1"),
            1);
  ASSERT_EQ(sink.named("sesame.recovery.replan").size(), 1u);
}

TEST(ConfigIo, RoundTripsRecoveryAndFailureScheduleFields) {
  pf::RunnerConfig cfg;
  cfg.recovery_enabled = true;
  cfg.health_heartbeat_period_s = 2.5;
  cfg.recovery.staleness_window_s = 6.0;
  cfg.recovery.ping_timeout_s = 3.0;
  cfg.recovery.max_pings = 4;
  cfg.recovery.ping_backoff = 1.5;
  cfg.recovery.demote_grace_s = 7.0;
  cfg.recovery.rth_timeout_s = 25.0;
  cfg.recovery.min_soc_rtb = 0.2;
  cfg.invariants.min_soc_floor = 0.04;
  cfg.invariants.max_evidence_age_s = 12.0;
  sim::FailureSchedule schedule;
  sim::FailureEvent crash;
  crash.uav = "uav2";
  crash.mode = sim::FailureMode::kHardCrash;
  crash.time_s = 120.0;
  sim::FailureEvent blackout;
  blackout.uav = "uav1";
  blackout.mode = sim::FailureMode::kCommsBlackout;
  blackout.time_s = 90.0;
  blackout.duration_s = 30.0;
  sim::FailureEvent cell;
  cell.uav = "uav3";
  cell.mode = sim::FailureMode::kBatteryCellFault;
  cell.time_s = 60.0;
  cell.soc_after = 0.25;
  cell.temp_c = 80.0;
  schedule.events = {crash, blackout, cell};
  cfg.failure_schedule = schedule;

  const auto back = pf::config_from_json(
      sesame::eddi::ode::parse_json(pf::config_to_json(cfg).to_json()));
  EXPECT_TRUE(back.recovery_enabled);
  EXPECT_DOUBLE_EQ(back.health_heartbeat_period_s, 2.5);
  EXPECT_DOUBLE_EQ(back.recovery.staleness_window_s, 6.0);
  EXPECT_DOUBLE_EQ(back.recovery.ping_timeout_s, 3.0);
  EXPECT_EQ(back.recovery.max_pings, 4u);
  EXPECT_DOUBLE_EQ(back.recovery.ping_backoff, 1.5);
  EXPECT_DOUBLE_EQ(back.recovery.demote_grace_s, 7.0);
  EXPECT_DOUBLE_EQ(back.recovery.rth_timeout_s, 25.0);
  EXPECT_DOUBLE_EQ(back.recovery.min_soc_rtb, 0.2);
  EXPECT_DOUBLE_EQ(back.invariants.min_soc_floor, 0.04);
  EXPECT_DOUBLE_EQ(back.invariants.max_evidence_age_s, 12.0);
  ASSERT_TRUE(back.failure_schedule.has_value());
  ASSERT_EQ(back.failure_schedule->events.size(), 3u);
  const auto& e0 = back.failure_schedule->events[0];
  EXPECT_EQ(e0.uav, "uav2");
  EXPECT_EQ(e0.mode, sim::FailureMode::kHardCrash);
  EXPECT_DOUBLE_EQ(e0.time_s, 120.0);
  const auto& e1 = back.failure_schedule->events[1];
  EXPECT_EQ(e1.mode, sim::FailureMode::kCommsBlackout);
  EXPECT_DOUBLE_EQ(e1.duration_s, 30.0);
  const auto& e2 = back.failure_schedule->events[2];
  EXPECT_DOUBLE_EQ(e2.soc_after, 0.25);
  EXPECT_DOUBLE_EQ(e2.temp_c, 80.0);
  // Bad mode names are rejected, not silently defaulted.
  EXPECT_THROW(
      pf::config_from_json(sesame::eddi::ode::parse_json(
          R"({"failure_schedule": {"events": [{"uav": "u1",
              "mode": "gremlins", "time_s": 1.0}]}})")),
      std::invalid_argument);
}
