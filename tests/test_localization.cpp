// Tests for Collaborative Localization: observation geometry, fix fusion
// accuracy, bus publication, and the GPS-free safe-landing guidance.
#include <gtest/gtest.h>

#include "sesame/localization/collaborative.hpp"

namespace loc = sesame::localization;
namespace sim = sesame::sim;
namespace geo = sesame::geo;

namespace {

const geo::GeoPoint kOrigin{35.1856, 33.3823, 0.0};

sim::UavConfig quiet_uav(const std::string& name) {
  sim::UavConfig cfg;
  cfg.name = name;
  cfg.gps.noise_sigma_m = 0.2;
  return cfg;
}

/// World with an affected UAV at altitude and two nearby assistants.
struct Fleet {
  sim::World world{kOrigin, 11};

  Fleet() {
    world.add_uav(quiet_uav("affected"), kOrigin);
    world.add_uav(quiet_uav("helper1"),
                  world.frame().to_geo({40.0, 0.0, 0.0}));
    world.add_uav(quiet_uav("helper2"),
                  world.frame().to_geo({0.0, 40.0, 0.0}));
    for (std::size_t i = 0; i < world.num_uavs(); ++i) {
      world.uav(i).command_takeoff();
    }
    world.run(20, 1.0);  // everyone at mission altitude
  }
};

}  // namespace

TEST(CollaborativeLocalizer, ValidatesConstruction) {
  Fleet f;
  EXPECT_THROW(loc::CollaborativeLocalizer(f.world, "affected", {}),
               std::invalid_argument);
  EXPECT_THROW(loc::CollaborativeLocalizer(f.world, "affected", {"affected"}),
               std::invalid_argument);
  EXPECT_THROW(loc::CollaborativeLocalizer(f.world, "ghost", {"helper1"}),
               std::out_of_range);
  loc::ObservationModel bad;
  bad.detection_range_m = -1.0;
  EXPECT_THROW(loc::CollaborativeLocalizer(f.world, "affected", {"helper1"}, bad),
               std::invalid_argument);
}

TEST(CollaborativeLocalizer, FixAccurateWithTwoAssistants) {
  Fleet f;
  loc::ObservationModel model;
  model.detection_probability = 1.0;
  loc::CollaborativeLocalizer cl(f.world, "affected", {"helper1", "helper2"},
                                 model);
  double worst = 0.0;
  for (int i = 0; i < 20; ++i) {
    const auto fix = cl.update();
    ASSERT_TRUE(fix.has_value());
    EXPECT_EQ(fix->observations_used, 2u);
    worst = std::max(worst, fix->true_error_m);
  }
  // Monocular-depth noise at ~50 m range: metre-level fixes expected.
  EXPECT_LT(worst, 10.0);
  EXPECT_EQ(cl.fixes_published(), 20u);
}

TEST(CollaborativeLocalizer, NoFixWhenOutOfRange) {
  Fleet f;
  loc::ObservationModel model;
  model.detection_range_m = 10.0;  // assistants are ~40+ m away
  loc::CollaborativeLocalizer cl(f.world, "affected", {"helper1", "helper2"},
                                 model);
  EXPECT_FALSE(cl.update().has_value());
  EXPECT_EQ(cl.fixes_published(), 0u);
  ASSERT_EQ(cl.last_attempts().size(), 2u);
  EXPECT_FALSE(cl.last_attempts()[0].detected);
  EXPECT_GT(cl.last_attempts()[0].true_range_m, 10.0);
}

TEST(CollaborativeLocalizer, FixCorrectsGpsLessEstimate) {
  Fleet f;
  sim::Uav& affected = f.world.uav_by_name("affected");
  affected.gps().set_disabled(true);
  // Drift the estimate: dead-reckon through wind.
  f.world.wind().east_mps = 1.5;
  affected.add_waypoint({0.0, 120.0, 30.0});
  affected.command_resume_mission();
  f.world.run(25, 1.0);
  ASSERT_GT(affected.estimation_error_m(), 15.0);

  loc::ObservationModel model;
  model.detection_probability = 1.0;
  model.detection_range_m = 400.0;
  loc::CollaborativeLocalizer cl(f.world, "affected", {"helper1", "helper2"},
                                 model);
  const auto fix = cl.update();
  ASSERT_TRUE(fix.has_value());
  // The published fix reached the UAV through the bus and pulled the
  // estimate near the truth.
  EXPECT_LT(affected.estimation_error_m(), 10.0);
}

TEST(CollaborativeLocalizer, MoreAssistantsTighterFix) {
  loc::ObservationModel model;
  model.detection_probability = 1.0;
  model.detection_range_m = 500.0;
  model.range_noise_frac = 0.06;

  auto mean_error = [&](std::size_t n_helpers) {
    sim::World world(kOrigin, 23);
    world.add_uav(quiet_uav("affected"), kOrigin);
    std::vector<std::string> helpers;
    for (std::size_t i = 0; i < n_helpers; ++i) {
      const std::string name = "h" + std::to_string(i);
      const double angle = 360.0 * static_cast<double>(i) /
                           static_cast<double>(n_helpers);
      world.add_uav(quiet_uav(name),
                    geo::destination(kOrigin, angle, 60.0));
      helpers.push_back(name);
    }
    for (std::size_t i = 0; i < world.num_uavs(); ++i) {
      world.uav(i).command_takeoff();
    }
    world.run(15, 1.0);
    loc::CollaborativeLocalizer cl(world, "affected", helpers, model);
    double total = 0.0;
    const int rounds = 60;
    for (int r = 0; r < rounds; ++r) total += cl.update()->true_error_m;
    return total / rounds;
  };

  EXPECT_LT(mean_error(3), mean_error(1));
}

TEST(SafeLandingGuide, LandsGpsLessUavAtSafePoint) {
  Fleet f;
  sim::Uav& affected = f.world.uav_by_name("affected");
  affected.gps().set_disabled(true);  // the paper's no-GPS condition

  loc::ObservationModel model;
  model.detection_probability = 1.0;
  model.detection_range_m = 600.0;
  loc::CollaborativeLocalizer cl(f.world, "affected", {"helper1", "helper2"},
                                 model);
  const geo::EnuPoint safe_point{60.0, 60.0, 30.0};
  loc::SafeLandingGuide guide(f.world, cl, safe_point);

  for (int i = 0; i < 300 && !guide.landed(); ++i) {
    f.world.step(1.0);
    guide.step();
  }
  ASSERT_TRUE(guide.landed());
  // High-precision landing (paper Fig. 7): within metres of the pad.
  EXPECT_LT(guide.true_distance_to_target_m(), 8.0);
}

TEST(SafeLandingGuide, ValidatesCaptureRadius) {
  Fleet f;
  loc::CollaborativeLocalizer cl(f.world, "affected", {"helper1"});
  EXPECT_THROW(loc::SafeLandingGuide(f.world, cl, {0.0, 0.0, 0.0}, 0.0),
               std::invalid_argument);
}

TEST(SafeLandingGuide, StepReturnsFalseOnceLanded) {
  Fleet f;
  sim::Uav& affected = f.world.uav_by_name("affected");
  loc::ObservationModel model;
  model.detection_probability = 1.0;
  model.detection_range_m = 600.0;
  loc::CollaborativeLocalizer cl(f.world, "affected", {"helper1", "helper2"},
                                 model);
  loc::SafeLandingGuide guide(f.world, cl,
                              affected.true_position());  // land right here
  for (int i = 0; i < 200 && !guide.landed(); ++i) {
    f.world.step(1.0);
    guide.step();
  }
  ASSERT_TRUE(guide.landed());
  EXPECT_FALSE(guide.step());
}

TEST(CollaborativeLocalizer, RangeOnlyTrilaterationWithThreeAssistants) {
  sim::World world(kOrigin, 51);
  world.add_uav(quiet_uav("affected"), kOrigin);
  std::vector<std::string> helpers;
  for (int i = 0; i < 3; ++i) {
    const std::string name = "h" + std::to_string(i);
    world.add_uav(quiet_uav(name),
                  geo::destination(kOrigin, 120.0 * i, 60.0));
    helpers.push_back(name);
  }
  for (std::size_t i = 0; i < world.num_uavs(); ++i) {
    world.uav(i).command_takeoff();
  }
  world.run(15, 1.0);

  loc::ObservationModel model;
  model.method = loc::FixMethod::kRangeOnly;
  model.detection_probability = 1.0;
  model.detection_range_m = 400.0;
  model.range_noise_frac = 0.02;
  loc::CollaborativeLocalizer cl(world, "affected", helpers, model);
  double total = 0.0;
  const int rounds = 40;
  for (int r = 0; r < rounds; ++r) {
    const auto fix = cl.update();
    ASSERT_TRUE(fix.has_value());
    EXPECT_EQ(fix->observations_used, 3u);
    total += fix->true_error_m;
  }
  EXPECT_LT(total / rounds, 5.0);
}

TEST(CollaborativeLocalizer, RangeOnlyFailsWithTwoAssistants) {
  Fleet f;  // only two helpers
  loc::ObservationModel model;
  model.method = loc::FixMethod::kRangeOnly;
  model.detection_probability = 1.0;
  model.detection_range_m = 400.0;
  loc::CollaborativeLocalizer cl(f.world, "affected", {"helper1", "helper2"},
                                 model);
  EXPECT_FALSE(cl.update().has_value());
  EXPECT_EQ(cl.fixes_published(), 0u);
}
