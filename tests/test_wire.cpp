// Wire transport: codec round-trips, COBS/CRC framing, corruption and
// replay rejection, the fuzz contract (decoder never crashes, never
// over-reads, never accepts a bad CRC), and cross-bus federation through
// mw::BusBridge. docs/PROTOCOL.md documents the exact bytes; the golden
// tests below pin them.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "sesame/mathx/rng.hpp"
#include "sesame/mw/bus.hpp"
#include "sesame/mw/bus_bridge.hpp"
#include "sesame/mw/codec.hpp"
#include "sesame/mw/framing.hpp"
#include "sesame/obs/metrics.hpp"
#include "sesame/security/attack_tree.hpp"
#include "sesame/security/ids.hpp"
#include "sesame/security/security_eddi.hpp"
#include "sesame/security/wire_types.hpp"
#include "sesame/sim/wire_types.hpp"
#include "sesame/sim/world.hpp"

namespace {

using namespace sesame;

std::vector<std::uint8_t> bytes_of(std::initializer_list<int> v) {
  std::vector<std::uint8_t> out;
  for (int b : v) out.push_back(static_cast<std::uint8_t>(b));
  return out;
}

std::string hex(std::span<const std::uint8_t> b) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  for (std::uint8_t x : b) {
    s.push_back(digits[x >> 4]);
    s.push_back(digits[x & 0xF]);
  }
  return s;
}

// --- COBS ------------------------------------------------------------------

TEST(Cobs, KnownVectors) {
  // The classic examples: {00} -> 01 01 00, {11 22 00 33} -> 03 11 22 02 33 00
  std::vector<std::uint8_t> out;
  mw::cobs_encode(bytes_of({0x00}), out);
  EXPECT_EQ(hex(out), "010100");
  out.clear();
  mw::cobs_encode(bytes_of({0x11, 0x22, 0x00, 0x33}), out);
  EXPECT_EQ(hex(out), "031122023300");
}

TEST(Cobs, RoundTripsArbitraryContent) {
  mathx::Rng rng(2026);
  for (int len : {0, 1, 2, 253, 254, 255, 256, 509, 1024}) {
    std::vector<std::uint8_t> in(static_cast<std::size_t>(len));
    for (auto& b : in)
      b = static_cast<std::uint8_t>(rng.uniform_index(256));
    std::vector<std::uint8_t> wire;
    mw::cobs_encode(in, wire);
    ASSERT_FALSE(wire.empty());
    EXPECT_EQ(wire.back(), 0u);  // delimiter
    // No zero byte before the delimiter.
    for (std::size_t i = 0; i + 1 < wire.size(); ++i)
      EXPECT_NE(wire[i], 0u) << "embedded zero at " << i << " len " << len;
    std::vector<std::uint8_t> back;
    ASSERT_TRUE(mw::cobs_decode({wire.data(), wire.size() - 1}, back));
    EXPECT_EQ(back, in);
  }
}

TEST(Cobs, RejectsMalformed) {
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(mw::cobs_decode({}, out));
  // Code byte pointing past the end.
  EXPECT_FALSE(mw::cobs_decode(bytes_of({0x05, 0x11}), out));
  // Embedded zero (delimiters never appear inside a packet).
  EXPECT_FALSE(mw::cobs_decode(bytes_of({0x02, 0x11, 0x00, 0x01}), out));
}

// --- CRC32 -----------------------------------------------------------------

TEST(Crc32, CheckValue) {
  const std::string check = "123456789";
  EXPECT_EQ(mw::crc32_ieee(
                {reinterpret_cast<const std::uint8_t*>(check.data()),
                 check.size()}),
            0xCBF43926u);
  EXPECT_EQ(mw::crc32_ieee({}), 0u);
}

// --- WireReader ------------------------------------------------------------

TEST(WireReader, PoisonsOnOverReadAndStaysPoisoned) {
  const auto buf = bytes_of({0x01, 0x02});
  mw::WireReader r{std::span<const std::uint8_t>(buf)};
  EXPECT_EQ(r.u16(), 0x0201u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.u32(), 0u);  // over-read: poisoned, returns zero
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // still poisoned even though a byte "fits"
  EXPECT_EQ(r.str16(), std::string_view{});
}

TEST(WireReader, StringViewsBorrowFromInput) {
  mw::WireWriter w;
  w.str16("telemetry");
  const std::vector<std::uint8_t> buf = w.take();
  mw::WireReader r{std::span<const std::uint8_t>(buf)};
  const std::string_view v = r.str16();
  EXPECT_EQ(v, "telemetry");
  EXPECT_GE(reinterpret_cast<const std::uint8_t*>(v.data()), buf.data());
  EXPECT_LE(reinterpret_cast<const std::uint8_t*>(v.data()) + v.size(),
            buf.data() + buf.size());
}

TEST(WireReader, RejectsNonCanonicalBool) {
  const auto buf = bytes_of({0x02});
  mw::WireReader r{std::span<const std::uint8_t>(buf)};
  r.boolean();
  EXPECT_FALSE(r.ok());
}

// --- Codec -----------------------------------------------------------------

mw::OutboundMessage fix_msg() {
  mw::OutboundMessage m;
  m.topic = "uav/uav1/position_fix";
  m.source = "gcs";
  m.seq = 7;
  m.time_s = 12.5;
  return m;
}

TEST(Codec, RoundTripsPrimitives) {
  mw::Codec codec;
  const std::vector<std::uint8_t> wire = codec.encode(fix_msg(), 42.25);
  const auto m = mw::Codec::decode(wire);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->version, mw::Codec::kVersion);
  EXPECT_EQ(m->payload_tag, mw::Codec::kF64Tag);
  EXPECT_EQ(m->seq, 7u);
  EXPECT_DOUBLE_EQ(m->time_s, 12.5);
  EXPECT_EQ(m->topic, "uav/uav1/position_fix");
  EXPECT_EQ(m->source, "gcs");
  const auto v = codec.decode_payload<double>(m->payload_tag, m->payload);
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(*v, 42.25);
}

TEST(Codec, DecodeIsZeroCopy) {
  mw::Codec codec;
  const std::vector<std::uint8_t> wire =
      codec.encode(fix_msg(), std::string("hello"));
  const auto m = mw::Codec::decode(wire);
  ASSERT_TRUE(m.has_value());
  const auto inside = [&](std::string_view v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    return p >= wire.data() && p + v.size() <= wire.data() + wire.size();
  };
  EXPECT_TRUE(inside(m->topic));
  EXPECT_TRUE(inside(m->source));
  EXPECT_TRUE(inside(m->payload));
}

TEST(Codec, RoundTripsTelemetry) {
  mw::Codec codec;
  sim::register_wire_types(codec);
  sim::Telemetry t;
  t.uav = "uav2";
  t.reported_position = {35.18, 33.38, 42.0};
  t.altitude_m = 42.0;
  t.battery_soc = 0.73;
  t.battery_temp_c = 31.5;
  t.mode = sim::FlightMode::kMission;
  t.time_s = 99.5;
  t.gps_fix = false;
  mw::OutboundMessage m = fix_msg();
  m.topic = "uav/uav2/telemetry";
  m.source = "uav2";
  const auto wire = codec.encode(m, t);
  const auto d = mw::Codec::decode(wire);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->payload_tag, sim::kTelemetryTag);
  const auto back =
      codec.decode_payload<sim::Telemetry>(d->payload_tag, d->payload);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->uav, "uav2");
  EXPECT_DOUBLE_EQ(back->reported_position.lat_deg, 35.18);
  EXPECT_DOUBLE_EQ(back->reported_position.lon_deg, 33.38);
  EXPECT_DOUBLE_EQ(back->battery_soc, 0.73);
  EXPECT_EQ(back->mode, sim::FlightMode::kMission);
  EXPECT_DOUBLE_EQ(back->time_s, 99.5);
  EXPECT_FALSE(back->gps_fix);
}

TEST(Codec, RoundTripsSecurityEvent) {
  mw::Codec codec;
  security::register_wire_types(codec);
  security::SecurityEvent e;
  e.tree = "ros_spoofing";
  e.time_s = 61.0;
  e.severity = security::Severity::kCritical;
  e.attack_path = {"inject", "falsify telemetry"};
  e.mitigations = {"authenticate publishers"};
  e.suspicious_sources = {"attacker"};
  const auto wire = codec.encode(fix_msg(), e);
  const auto d = mw::Codec::decode(wire);
  ASSERT_TRUE(d.has_value());
  const auto back = codec.decode_payload<security::SecurityEvent>(
      d->payload_tag, d->payload);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->tree, "ros_spoofing");
  EXPECT_EQ(back->severity, security::Severity::kCritical);
  EXPECT_EQ(back->attack_path,
            (std::vector<std::string>{"inject", "falsify telemetry"}));
  EXPECT_EQ(back->suspicious_sources, std::vector<std::string>{"attacker"});
}

TEST(Codec, UnregisteredTypeThrowsOnEncodeAndFailsEncodeAny) {
  mw::Codec codec;  // no sim types registered
  sim::Telemetry t;
  EXPECT_THROW(codec.encode(fix_msg(), t), std::invalid_argument);
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(codec.encode_any(fix_msg(), std::any(std::cref(t)),
                                std::type_index(typeid(sim::Telemetry)),
                                out));
  EXPECT_TRUE(out.empty());
}

TEST(Codec, DuplicateTagRegistrationThrows) {
  mw::Codec codec;
  EXPECT_THROW(codec.register_type<float>(
                   mw::Codec::kF64Tag, "clash",
                   [](mw::WireWriter&, const float&) {},
                   [](mw::WireReader&) { return 0.0f; }),
               std::invalid_argument);
  EXPECT_THROW(codec.register_type<double>(
                   0x77, "clash",
                   [](mw::WireWriter&, const double&) {},
                   [](mw::WireReader&) { return 0.0; }),
               std::invalid_argument);
}

TEST(Codec, EveryTruncationFailsStructuralDecode) {
  mw::Codec codec;
  sim::register_wire_types(codec);
  geo::GeoPoint p{35.0, 33.0, 20.0};
  const auto wire = codec.encode(fix_msg(), p);
  for (std::size_t n = 0; n < wire.size(); ++n) {
    EXPECT_FALSE(mw::Codec::decode({wire.data(), n}).has_value())
        << "truncation to " << n << " bytes decoded";
  }
  // ... and trailing garbage is rejected too (strict framing).
  auto longer = wire;
  longer.push_back(0xAA);
  EXPECT_FALSE(mw::Codec::decode(longer).has_value());
}

TEST(Codec, UnsupportedVersionDecodesStructurallyButIsNotDelivered) {
  mw::Codec codec;
  auto wire = codec.encode(fix_msg(), 1.0);
  wire[0] = 0x02;  // version 2
  wire[1] = 0x00;
  const auto m = mw::Codec::decode(wire);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->version, 2u);
  mw::Bus bus;
  EXPECT_EQ(codec.deliver(bus, *m), mw::DeliverResult::kUnsupportedVersion);
  EXPECT_EQ(bus.messages_published(), 0u);
}

TEST(Codec, DeliverPublishesOnBus) {
  mw::Codec codec;
  sim::register_wire_types(codec);
  const auto wire = codec.encode(fix_msg(), geo::GeoPoint{1.0, 2.0, 3.0});
  mw::Bus bus;
  geo::GeoPoint got{};
  double got_time = 0.0;
  std::string got_source;
  auto sub = bus.subscribe<geo::GeoPoint>(
      "uav/uav1/position_fix",
      [&](const mw::MessageHeader& h, const geo::GeoPoint& p) {
        got = p;
        got_time = h.time_s;
        got_source = std::string(h.source);
      });
  const auto m = mw::Codec::decode(wire);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(codec.deliver(bus, *m), mw::DeliverResult::kDelivered);
  EXPECT_DOUBLE_EQ(got.lat_deg, 1.0);
  EXPECT_DOUBLE_EQ(got.lon_deg, 2.0);
  EXPECT_DOUBLE_EQ(got.alt_m, 3.0);
  EXPECT_DOUBLE_EQ(got_time, 12.5);
  EXPECT_EQ(got_source, "gcs");
}

TEST(Codec, UnknownTagAndMalformedPayloadAreDistinguished) {
  mw::Codec codec;
  mw::Bus bus;
  auto wire = codec.encode(fix_msg(), 1.0);
  // Patch the tag (offset 2, u32 LE) to something unregistered.
  wire[2] = 0x99;
  auto m = mw::Codec::decode(wire);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(codec.deliver(bus, *m), mw::DeliverResult::kUnknownTag);
  // A short f64 payload: registered tag, bad bytes.
  mw::WireWriter w;
  w.u16(mw::Codec::kVersion);
  w.u32(mw::Codec::kF64Tag);
  w.u64(0);
  w.f64(0.0);
  w.str16("t");
  w.str16("s");
  w.str32("abc");  // 3 bytes where f64 needs 8
  const auto bad = w.take();
  m = mw::Codec::decode(bad);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(codec.deliver(bus, *m), mw::DeliverResult::kMalformedPayload);
  EXPECT_EQ(bus.messages_published(), 0u);
}

// --- Golden bytes (docs/PROTOCOL.md §7 worked example) ---------------------

// The exact encoding of the PROTOCOL.md worked example: a geo.GeoPoint
// position fix on uav/uav1/position_fix from "gcs", seq 7, t=12.5 s.
// Changing these bytes is a wire-protocol break — bump Codec::kVersion.
constexpr const char* kGoldenMessageHex =
    "0100"               // version = 1 (u16 LE)
    "10000000"           // payload tag = 0x10 geo.GeoPoint (u32 LE)
    "0700000000000000"   // origin seq = 7 (u64 LE)
    "0000000000002940"   // time_s = 12.5 (f64 LE)
    "1500"               // topic length = 21
    "7561762f756176312f706f736974696f6e5f666978"  // "uav/uav1/position_fix"
    "0300"               // source length = 3
    "676373"             // "gcs"
    "18000000"           // payload length = 24 (u32 LE)
    "0000000000984140"   // lat_deg  = 35.1875 (f64 LE)
    "0000000000b04040"   // lon_deg  = 33.375  (f64 LE)
    "0000000000003e40";  // alt_m    = 30.0    (f64 LE)

TEST(Codec, GoldenMessageBytesMatchProtocolDoc) {
  mw::Codec codec;
  sim::register_wire_types(codec);
  mw::OutboundMessage m;
  m.topic = "uav/uav1/position_fix";
  m.source = "gcs";
  m.seq = 7;
  m.time_s = 12.5;
  const geo::GeoPoint p{35.1875, 33.375, 30.0};
  const auto wire = codec.encode(m, p);
  EXPECT_EQ(hex(wire), std::string(kGoldenMessageHex));
}

// --- Framing ---------------------------------------------------------------

/// Collects delivered message payloads.
struct Sink {
  std::vector<std::vector<std::uint8_t>> messages;
  mw::Framing::MessageSink fn() {
    return [this](std::span<const std::uint8_t> payload, std::uint64_t) {
      messages.emplace_back(payload.begin(), payload.end());
    };
  }
};

/// Pumps both directions until quiet.
void pump(mw::Framing& a, mw::Framing& b, Sink& sa, Sink& sb) {
  for (int i = 0; i < 64; ++i) {
    const auto fa = a.take_outbound();
    const auto fb = b.take_outbound();
    if (fa.empty() && fb.empty()) return;
    if (!fa.empty()) b.feed(fa, sb.fn());
    if (!fb.empty()) a.feed(fb, sa.fn());
  }
  FAIL() << "link did not quiesce";
}

TEST(Framing, HandshakeEstablishesAndNegotiatesVersion) {
  mw::Framing a, b;
  Sink sa, sb;
  EXPECT_FALSE(a.established());
  a.start();
  b.start();
  pump(a, b, sa, sb);
  EXPECT_TRUE(a.established());
  EXPECT_TRUE(b.established());
  EXPECT_EQ(a.negotiated_version(), mw::Framing::kProtocolVersion);
  EXPECT_EQ(b.negotiated_version(), mw::Framing::kProtocolVersion);
}

TEST(Framing, MessagesQueueUntilEstablished) {
  mw::Framing a, b;
  Sink sa, sb;
  const auto payload = bytes_of({1, 2, 3});
  a.send_message(payload);  // before any handshake
  EXPECT_EQ(a.queued_messages(), 1u);
  a.start();
  b.start();
  pump(a, b, sa, sb);
  ASSERT_EQ(sb.messages.size(), 1u);
  EXPECT_EQ(sb.messages[0], payload);
}

TEST(Framing, RoundTripsMessagesBothWays) {
  mw::Framing a, b;
  Sink sa, sb;
  a.start();
  b.start();
  pump(a, b, sa, sb);
  a.send_message(bytes_of({0xDE, 0xAD, 0x00, 0xBE, 0xEF}));
  b.send_message(bytes_of({0x01}));
  pump(a, b, sa, sb);
  ASSERT_EQ(sb.messages.size(), 1u);
  EXPECT_EQ(sb.messages[0], bytes_of({0xDE, 0xAD, 0x00, 0xBE, 0xEF}));
  ASSERT_EQ(sa.messages.size(), 1u);
  EXPECT_EQ(sa.messages[0], bytes_of({0x01}));
  EXPECT_EQ(a.counters().messages_tx, 1u);
  EXPECT_EQ(a.counters().messages_rx, 1u);
  EXPECT_EQ(a.counters().crc_errors, 0u);
}

TEST(Framing, WindowStallsAndReleases) {
  mw::FramingConfig small;
  small.window = 2;  // B grants A two in-flight messages
  mw::Framing a;     // default window toward B
  mw::Framing b(small);
  Sink sa, sb;
  a.start();
  b.start();
  pump(a, b, sa, sb);
  EXPECT_EQ(a.send_credit(), 2u);
  for (int i = 0; i < 5; ++i) a.send_message(bytes_of({i}));
  EXPECT_EQ(a.queued_messages(), 3u);  // 2 in flight, 3 stalled
  EXPECT_EQ(a.counters().window_stalls, 3u);
  pump(a, b, sa, sb);  // credits flow back, queue drains
  EXPECT_EQ(sb.messages.size(), 5u);
  EXPECT_EQ(a.queued_messages(), 0u);
  EXPECT_EQ(a.send_credit(), 2u);  // all credit returned
}

TEST(Framing, CorruptedFrameIsRejectedAndLinkResyncs) {
  mw::Framing a, b;
  Sink sa, sb;
  a.start();
  b.start();
  pump(a, b, sa, sb);
  a.send_message(bytes_of({0x11, 0x22, 0x33}));
  auto wire = a.take_outbound();
  ASSERT_GT(wire.size(), 4u);
  wire[2] ^= 0x40;  // corrupt one bit mid-frame
  b.feed(wire, sb.fn());
  EXPECT_TRUE(sb.messages.empty());
  EXPECT_EQ(b.counters().crc_errors + b.counters().cobs_errors +
                b.counters().malformed_frames,
            1u);
  EXPECT_EQ(b.counters().resyncs, 1u);
  // The link keeps working afterwards.
  a.send_message(bytes_of({0x44}));
  pump(a, b, sa, sb);
  ASSERT_EQ(sb.messages.size(), 1u);
  EXPECT_EQ(sb.messages[0], bytes_of({0x44}));
}

TEST(Framing, EverySingleBitFlipIsRejected) {
  mw::Framing a;
  a.start();
  {  // establish a against a scratch peer
    mw::Framing peer;
    Sink sa, sp;
    peer.start();
    pump(a, peer, sa, sp);
  }
  a.send_message(bytes_of({0xAB, 0x00, 0xCD}));
  const auto wire = a.take_outbound();
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupted = wire;
      corrupted[i] ^= static_cast<std::uint8_t>(1 << bit);
      mw::Framing fresh;
      Sink s;
      fresh.feed(corrupted, s.fn());
      fresh.feed(bytes_of({0x00}), s.fn());  // flush any partial packet
      EXPECT_TRUE(s.messages.empty())
          << "bit " << bit << " of byte " << i << " delivered";
    }
  }
}

TEST(Framing, ReplayedFrameIsRejected) {
  mw::Framing a, b;
  Sink sa, sb;
  a.start();
  b.start();
  pump(a, b, sa, sb);
  a.send_message(bytes_of({0x77}));
  const auto wire = a.take_outbound();
  b.feed(wire, sb.fn());
  ASSERT_EQ(sb.messages.size(), 1u);
  b.feed(wire, sb.fn());  // verbatim replay
  EXPECT_EQ(sb.messages.size(), 1u);
  EXPECT_EQ(b.counters().replays_rejected, 1u);
}

TEST(Framing, SequenceGapIsCountedButAccepted) {
  mw::Framing a, b;
  Sink sa, sb;
  a.start();
  b.start();
  pump(a, b, sa, sb);
  a.send_message(bytes_of({0x01}));
  const auto first = a.take_outbound();
  a.send_message(bytes_of({0x02}));
  a.take_outbound();  // frame lost in transit
  a.send_message(bytes_of({0x03}));
  const auto third = a.take_outbound();
  b.feed(first, sb.fn());
  b.feed(third, sb.fn());
  EXPECT_EQ(sb.messages.size(), 2u);
  EXPECT_EQ(b.counters().seq_gaps, 1u);
  EXPECT_EQ(b.counters().replays_rejected, 0u);
}

TEST(Framing, FragmentedDeliveryReassembles) {
  mw::Framing a, b;
  Sink sa, sb;
  a.start();
  b.start();
  pump(a, b, sa, sb);
  a.send_message(bytes_of({0x10, 0x20, 0x30, 0x40}));
  const auto wire = a.take_outbound();
  // One byte at a time — partial packets buffer across feeds.
  for (const std::uint8_t byte : wire) {
    b.feed(std::span<const std::uint8_t>(&byte, 1), sb.fn());
  }
  ASSERT_EQ(sb.messages.size(), 1u);
  EXPECT_EQ(sb.messages[0], bytes_of({0x10, 0x20, 0x30, 0x40}));
}

/// Toy authenticated transform: XOR stream "cipher" + additive MAC. Not
/// cryptography — exercises the hook's contract (protect grows the frame,
/// unprotect verifies and strips).
class XorMacTransform : public mw::SecurityTransform {
 public:
  explicit XorMacTransform(std::uint8_t key) : key_(key) {}
  void protect(std::vector<std::uint8_t>& frame) override {
    std::uint16_t mac = static_cast<std::uint16_t>(key_ * 257u);
    for (auto& b : frame) {
      b ^= key_;
      mac = static_cast<std::uint16_t>(mac + b);
    }
    frame.push_back(static_cast<std::uint8_t>(mac));
    frame.push_back(static_cast<std::uint8_t>(mac >> 8));
  }
  bool unprotect(std::vector<std::uint8_t>& frame) override {
    if (frame.size() < 2) return false;
    const std::uint16_t wire_mac = static_cast<std::uint16_t>(
        frame[frame.size() - 2] | (frame[frame.size() - 1] << 8));
    frame.resize(frame.size() - 2);
    std::uint16_t mac = static_cast<std::uint16_t>(key_ * 257u);
    for (auto& b : frame) {
      mac = static_cast<std::uint16_t>(mac + b);
      b ^= key_;
    }
    return mac == wire_mac;
  }

 private:
  std::uint8_t key_;
};

TEST(Framing, SecurityTransformRoundTrips) {
  XorMacTransform ka(0x5A), kb(0x5A);
  mw::FramingConfig ca, cb;
  ca.transform = &ka;
  cb.transform = &kb;
  mw::Framing a(ca), b(cb);
  Sink sa, sb;
  a.start();
  b.start();
  pump(a, b, sa, sb);
  ASSERT_TRUE(a.established());
  a.send_message(bytes_of({0x42, 0x00, 0x42}));
  pump(a, b, sa, sb);
  ASSERT_EQ(sb.messages.size(), 1u);
  EXPECT_EQ(sb.messages[0], bytes_of({0x42, 0x00, 0x42}));
}

TEST(Framing, MismatchedKeysFailAuthenticationNotCrc) {
  XorMacTransform ka(0x5A), kb(0xA5);  // different keys
  mw::FramingConfig ca, cb;
  ca.transform = &ka;
  cb.transform = &kb;
  mw::Framing a(ca), b(cb);
  Sink sb;
  a.start();
  b.feed(a.take_outbound(), sb.fn());
  EXPECT_FALSE(b.established());
  EXPECT_GE(b.counters().auth_failures, 1u);
  EXPECT_EQ(b.counters().crc_errors, 0u);  // CRC covers protected bytes
}

TEST(Framing, FutureVersionPeerNegotiatesDownToOurs) {
  // Hand-craft an Init advertising max version 7 (a future build).
  std::vector<std::uint8_t> frame;
  frame.push_back(0x01);  // kInit
  for (int i = 0; i < 8; ++i)
    frame.push_back(i == 0 ? 1 : 0);  // link seq 1
  frame.push_back(8);
  frame.push_back(0);  // window 8
  frame.push_back(7);
  frame.push_back(0);  // max version 7
  const std::uint32_t crc = mw::crc32_ieee(frame);
  for (int i = 0; i < 4; ++i)
    frame.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  std::vector<std::uint8_t> wire;
  mw::cobs_encode(frame, wire);
  mw::Framing b;
  Sink sb;
  b.feed(wire, sb.fn());
  EXPECT_TRUE(b.established());
  EXPECT_EQ(b.negotiated_version(), 1u);
  EXPECT_EQ(b.send_credit(), 8u);
}

// --- Fuzz: the decoder survival contract -----------------------------------

TEST(Fuzz, RandomBytesNeverCrashCodecDecode) {
  mathx::Rng rng(0xC0DEC);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> buf(rng.uniform_index(300));
    for (auto& b : buf)
      b = static_cast<std::uint8_t>(rng.uniform_index(256));
    // Must not crash, over-read (ASan job) or throw.
    (void)mw::Codec::decode(buf);
  }
}

TEST(Fuzz, RandomBytesNeverDeliverThroughFraming) {
  mathx::Rng rng(0xF8A);
  mw::Framing b;
  Sink s;
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> buf(rng.uniform_index(300));
    for (auto& x : buf)
      x = static_cast<std::uint8_t>(rng.uniform_index(256));
    b.feed(buf, s.fn());
  }
  // 1 - 2^-32 per packet that random bytes fail the CRC; over 2000 tries
  // a delivery still means the check is broken.
  EXPECT_TRUE(s.messages.empty());
  EXPECT_GT(b.counters().resyncs, 0u);
}

TEST(Fuzz, RandomPayloadBytesNeverCrashRegisteredDecoders) {
  mw::Codec codec;
  sim::register_wire_types(codec);
  security::register_wire_types(codec);
  mw::Bus bus;
  auto sub = bus.subscribe<sim::Telemetry>(
      "t", [](const mw::MessageHeader&, const sim::Telemetry&) {});
  mathx::Rng rng(0xDECADE);
  const std::uint32_t tags[] = {
      mw::Codec::kF64Tag,     mw::Codec::kStringTag,
      sim::kGeoPointTag,      sim::kTelemetryTag,
      sim::kHealthHeartbeatTag, security::kIdsAlertTag,
      security::kSecurityEventTag};
  int delivered = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    mw::WireWriter w;
    w.u16(mw::Codec::kVersion);
    w.u32(tags[rng.uniform_index(std::size(tags))]);
    w.u64(iter);
    w.f64(1.0);
    w.str16("t");
    w.str16("s");
    std::string payload(rng.uniform_index(64), '\0');
    for (auto& c : payload)
      c = static_cast<char>(rng.uniform_index(256));
    w.str32(payload);
    const auto wire = w.take();
    const auto m = mw::Codec::decode(wire);
    ASSERT_TRUE(m.has_value());
    // Either result is fine; crashing or throwing is not.
    if (codec.deliver(bus, *m) == mw::DeliverResult::kDelivered) ++delivered;
  }
  // Random bytes occasionally form a valid f64/string payload — but a
  // structured Telemetry almost never; mostly this must reject.
  EXPECT_LT(delivered, 2000);
}

// --- BusBridge: cross-bus federation ---------------------------------------

struct FederationFixture {
  mw::Codec codec;
  mw::Bus bus_a, bus_b;
  mw::BusBridge bridge_a, bridge_b;

  FederationFixture(mw::BridgeConfig ca = {}, mw::BridgeConfig cb = {})
      : bridge_a(bus_a, prepared(), std::move(ca)),
        bridge_b(bus_b, codec, std::move(cb)) {
    bridge_a.start();
    bridge_b.start();
    mw::BusBridge::pump(bridge_a, bridge_b);
  }

 private:
  const mw::Codec& prepared() {
    sim::register_wire_types(codec);
    security::register_wire_types(codec);
    return codec;
  }
};

TEST(BusBridge, FederatesAPublishToBByteIdentically) {
  FederationFixture f;
  sim::Telemetry got;
  double got_time = 0.0;
  std::string got_topic, got_source;
  std::size_t deliveries = 0;
  auto sub = f.bus_b.subscribe<sim::Telemetry>(
      "uav/uav1/telemetry",
      [&](const mw::MessageHeader& h, const sim::Telemetry& t) {
        got = t;
        got_time = h.time_s;
        got_topic = std::string(h.topic);
        got_source = std::string(h.source);
        ++deliveries;
      });
  sim::Telemetry t;
  t.uav = "uav1";
  t.reported_position = {35.25, 33.5, 28.0};
  t.battery_soc = 0.81;
  t.mode = sim::FlightMode::kMission;
  t.time_s = 17.5;
  f.bus_a.publish("uav/uav1/telemetry", t, "uav1", 17.5);
  mw::BusBridge::pump(f.bridge_a, f.bridge_b);
  ASSERT_EQ(deliveries, 1u);
  EXPECT_EQ(got_topic, "uav/uav1/telemetry");
  EXPECT_EQ(got_source, "uav1");
  EXPECT_DOUBLE_EQ(got_time, 17.5);
  EXPECT_EQ(got.uav, "uav1");
  EXPECT_DOUBLE_EQ(got.reported_position.lat_deg, 35.25);
  EXPECT_DOUBLE_EQ(got.battery_soc, 0.81);
  EXPECT_EQ(got.mode, sim::FlightMode::kMission);
  EXPECT_EQ(f.bridge_a.bridge_counters().forwarded, 1u);
  EXPECT_EQ(f.bridge_b.bridge_counters().delivered, 1u);
}

TEST(BusBridge, NoEchoLoop) {
  FederationFixture f;
  std::size_t deliveries_a = 0, deliveries_b = 0;
  auto sub_a = f.bus_a.subscribe<double>(
      "ping", [&](const mw::MessageHeader&, double) { ++deliveries_a; });
  auto sub_b = f.bus_b.subscribe<double>(
      "ping", [&](const mw::MessageHeader&, double) { ++deliveries_b; });
  f.bus_a.publish("ping", 1.0, "gcs", 0.0);
  mw::BusBridge::pump(f.bridge_a, f.bridge_b);
  EXPECT_EQ(deliveries_a, 1u);  // local delivery only
  EXPECT_EQ(deliveries_b, 1u);  // federated once, not ping-ponged
  EXPECT_EQ(f.bridge_a.bridge_counters().forwarded, 1u);
  EXPECT_EQ(f.bridge_b.bridge_counters().forwarded, 0u);
  EXPECT_EQ(f.bridge_b.bridge_counters().skipped_remote_origin, 1u);
}

TEST(BusBridge, BidirectionalTrafficAndLocalReactionsAreForwarded) {
  FederationFixture f;
  // B reacts to A's telemetry with a locally-sourced alert; the reaction
  // must cross back to A (split horizon keys on source, not topic).
  std::vector<std::string> alerts_on_a;
  auto sub_alert = f.bus_a.subscribe<std::string>(
      "alerts", [&](const mw::MessageHeader&, const std::string& s) {
        alerts_on_a.push_back(s);
      });
  auto sub_tel = f.bus_b.subscribe<double>(
      "metric", [&](const mw::MessageHeader& h, double v) {
        if (v > 0.5) {
          f.bus_b.publish("alerts", std::string("too high"), "analyzer",
                          h.time_s);
        }
      });
  f.bus_a.publish("metric", 0.9, "uav1", 3.0);
  mw::BusBridge::pump(f.bridge_a, f.bridge_b);
  ASSERT_EQ(alerts_on_a.size(), 1u);
  EXPECT_EQ(alerts_on_a[0], "too high");
}

TEST(BusBridge, TopicPrefixFilterLimitsForwarding) {
  mw::BridgeConfig ca;
  ca.forward_prefixes = {"uav/"};
  FederationFixture f(std::move(ca));
  std::size_t got = 0;
  auto sub1 = f.bus_b.subscribe<double>(
      "uav/uav1/ping", [&](const mw::MessageHeader&, double) { ++got; });
  auto sub2 = f.bus_b.subscribe<double>(
      "internal/debug", [&](const mw::MessageHeader&, double) { ++got; });
  f.bus_a.publish("uav/uav1/ping", 1.0, "gcs", 0.0);
  f.bus_a.publish("internal/debug", 2.0, "gcs", 0.0);
  mw::BusBridge::pump(f.bridge_a, f.bridge_b);
  EXPECT_EQ(got, 1u);
  EXPECT_EQ(f.bridge_a.bridge_counters().skipped_filtered, 1u);
}

TEST(BusBridge, UnregisteredPayloadTypesAreSkippedAndCounted) {
  FederationFixture f;
  struct Unregistered {
    int x = 0;
  };
  f.bus_a.publish("weird", Unregistered{1}, "gcs", 0.0);
  mw::BusBridge::pump(f.bridge_a, f.bridge_b);
  EXPECT_EQ(f.bridge_a.bridge_counters().skipped_unknown_type, 1u);
  EXPECT_EQ(f.bridge_a.bridge_counters().forwarded, 0u);
}

TEST(BusBridge, ReceivingBusFaultPoliciesObserveBridgedTraffic) {
  FederationFixture f;
  // A drop-everything policy on the receiving bus: bridged messages enter
  // through the ordinary publish pipeline, so the policy rules there.
  struct DropAll : mw::DeliveryPolicy {
    mw::FaultDecision decide(const mw::MessageHeader&) override {
      mw::FaultDecision d;
      d.drop = true;
      return d;
    }
  } drop_all;
  auto policy = f.bus_b.add_delivery_policy(&drop_all);
  std::size_t got = 0;
  auto sub = f.bus_b.subscribe<double>(
      "ping", [&](const mw::MessageHeader&, double) { ++got; });
  f.bus_a.publish("ping", 1.0, "gcs", 0.0);
  mw::BusBridge::pump(f.bridge_a, f.bridge_b);
  EXPECT_EQ(got, 0u);  // dropped in flight on bus B
  EXPECT_EQ(f.bus_b.faults_dropped(), 1u);
  // The bridge did its job: the message was decoded and republished.
  EXPECT_EQ(f.bridge_b.bridge_counters().delivered, 1u);
}

TEST(BusBridge, CorruptedWireTrafficIsCountedNotDelivered) {
  FederationFixture f;
  std::size_t got = 0;
  auto sub = f.bus_b.subscribe<double>(
      "ping", [&](const mw::MessageHeader&, double) { ++got; });
  f.bus_a.publish("ping", 1.0, "gcs", 0.0);
  auto wire = f.bridge_a.take_outbound();
  ASSERT_FALSE(wire.empty());
  wire[wire.size() / 2] ^= 0x10;
  f.bridge_b.feed_inbound(wire);
  EXPECT_EQ(got, 0u);
  EXPECT_GE(f.bridge_b.link_counters().resyncs, 1u);
}

TEST(BusBridge, MetricsMirrorCounters) {
  obs::MetricsRegistry registry;
  // Distinct link labels keep the two endpoints' series apart.
  mw::BridgeConfig ca, cb;
  ca.name = "gcs_link";
  cb.name = "uav_link";
  FederationFixture f(std::move(ca), std::move(cb));
  f.bridge_a.set_metrics(&registry);
  f.bridge_b.set_metrics(&registry);
  f.bus_a.publish("ping", 1.0, "gcs", 0.0);
  mw::BusBridge::pump(f.bridge_a, f.bridge_b);
  const auto snap = registry.snapshot();
  const auto* fwd = snap.find("sesame.wire.messages_forwarded_total",
                              {{"link", "gcs_link"}});
  ASSERT_NE(fwd, nullptr);
  EXPECT_DOUBLE_EQ(fwd->value, 1.0);
  const auto* del = snap.find("sesame.wire.messages_delivered_total",
                              {{"link", "uav_link"}});
  ASSERT_NE(del, nullptr);
  EXPECT_DOUBLE_EQ(del->value, 1.0);
  const auto* frames = snap.find("sesame.wire.frames_tx_total",
                                 {{"link", "gcs_link"}});
  ASSERT_NE(frames, nullptr);
  EXPECT_GE(frames->value, 2.0);  // Init + message at least
}

TEST(BusBridge, ReplayedWireBytesAreRejectedAtTheLink) {
  FederationFixture f;
  std::size_t got = 0;
  auto sub = f.bus_b.subscribe<double>(
      "cmd", [&](const mw::MessageHeader&, double) { ++got; });
  f.bus_a.publish("cmd", 9.0, "gcs", 1.0);
  const auto wire = f.bridge_a.take_outbound();
  f.bridge_b.feed_inbound(wire);
  EXPECT_EQ(got, 1u);
  f.bridge_b.feed_inbound(wire);  // attacker replays the captured bytes
  EXPECT_EQ(got, 1u);
  EXPECT_GE(f.bridge_b.link_counters().replays_rejected, 1u);
}

}  // namespace
