// Tests for SafeML: distance measures against hand-computed values and
// statistical properties, permutation testing, and the sliding-window
// monitor's confidence mapping.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "sesame/mathx/rng.hpp"
#include "sesame/safeml/distances.hpp"
#include "sesame/safeml/monitor.hpp"

namespace sml = sesame::safeml;
namespace mx = sesame::mathx;

namespace {

std::vector<double> normal_sample(mx::Rng& rng, std::size_t n, double mean,
                                  double sd) {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(rng.normal(mean, sd));
  return out;
}

}  // namespace

TEST(Distances, IdenticalSamplesAreZero) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  for (auto m : sml::all_measures()) {
    EXPECT_NEAR(sml::distance(m, xs, xs), 0.0, 1e-12) << sml::measure_name(m);
  }
}

TEST(Distances, EmptySampleThrows) {
  const std::vector<double> xs{1.0};
  for (auto m : sml::all_measures()) {
    EXPECT_THROW(sml::distance(m, {}, xs), std::invalid_argument);
    EXPECT_THROW(sml::distance(m, xs, {}), std::invalid_argument);
  }
}

TEST(Distances, KsDisjointSamplesIsOne) {
  EXPECT_DOUBLE_EQ(sml::ks_distance({1.0, 2.0}, {10.0, 11.0}), 1.0);
}

TEST(Distances, KsHandComputed) {
  // F_a steps at 1,3; F_b steps at 2,4. Max gap = 0.5.
  EXPECT_DOUBLE_EQ(sml::ks_distance({1.0, 3.0}, {2.0, 4.0}), 0.5);
}

TEST(Distances, KsSymmetric) {
  mx::Rng rng(3);
  const auto a = normal_sample(rng, 50, 0.0, 1.0);
  const auto b = normal_sample(rng, 60, 0.5, 1.2);
  EXPECT_DOUBLE_EQ(sml::ks_distance(a, b), sml::ks_distance(b, a));
}

TEST(Distances, KuiperAtLeastKs) {
  mx::Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const auto a = normal_sample(rng, 40, 0.0, 1.0);
    const auto b = normal_sample(rng, 40, rng.uniform(-1.0, 1.0), 1.0);
    EXPECT_GE(sml::kuiper_distance(a, b) + 1e-12, sml::ks_distance(a, b));
  }
}

TEST(Distances, WassersteinPureShiftEqualsShift) {
  // W1 between X and X + c is exactly |c|.
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  std::vector<double> b;
  for (double x : a) b.push_back(x + 2.5);
  EXPECT_NEAR(sml::wasserstein_distance(a, b), 2.5, 1e-12);
}

TEST(Distances, WassersteinScalesWithUnits) {
  mx::Rng rng(7);
  const auto a = normal_sample(rng, 100, 0.0, 1.0);
  const auto b = normal_sample(rng, 100, 1.0, 1.0);
  std::vector<double> a10, b10;
  for (double x : a) a10.push_back(10.0 * x);
  for (double x : b) b10.push_back(10.0 * x);
  EXPECT_NEAR(sml::wasserstein_distance(a10, b10),
              10.0 * sml::wasserstein_distance(a, b), 1e-9);
}

TEST(Distances, GrowWithShiftMagnitude) {
  // Every measure should increase monotonically (statistically) with the
  // mean shift between distributions.
  mx::Rng rng(11);
  const auto ref = normal_sample(rng, 400, 0.0, 1.0);
  for (auto m : sml::all_measures()) {
    const auto near = normal_sample(rng, 400, 0.2, 1.0);
    const auto far = normal_sample(rng, 400, 2.0, 1.0);
    EXPECT_LT(sml::distance(m, ref, near), sml::distance(m, ref, far))
        << sml::measure_name(m);
  }
}

TEST(Distances, AndersonDarlingSensitiveToTails) {
  // Same mean/median but heavier tails: AD should detect it clearly.
  mx::Rng rng(13);
  const auto ref = normal_sample(rng, 500, 0.0, 1.0);
  const auto heavy = normal_sample(rng, 500, 0.0, 3.0);
  EXPECT_GT(sml::anderson_darling_distance(ref, heavy), 0.05);
}

TEST(Distances, CvmBoundedByKsSquared) {
  // CvM uses squared gaps, so it is <= KS^2 * (na*nb/n^2) * steps bound;
  // sanity: CvM <= KS * steps scale. We just check CvM <= AD since AD
  // upweights the same integrand.
  mx::Rng rng(17);
  const auto a = normal_sample(rng, 100, 0.0, 1.0);
  const auto b = normal_sample(rng, 100, 1.0, 1.0);
  EXPECT_LE(sml::cramer_von_mises_distance(a, b),
            sml::anderson_darling_distance(a, b) + 1e-9);
}

TEST(Distances, MeasureNamesDistinct) {
  std::set<std::string> names;
  for (auto m : sml::all_measures()) names.insert(sml::measure_name(m));
  EXPECT_EQ(names.size(), sml::all_measures().size());
}

TEST(PermutationTest, SameDistributionHighP) {
  mx::Rng rng(19);
  const auto a = normal_sample(rng, 60, 0.0, 1.0);
  const auto b = normal_sample(rng, 60, 0.0, 1.0);
  const double p =
      sml::permutation_p_value(sml::Measure::kKolmogorovSmirnov, a, b, rng, 100);
  EXPECT_GT(p, 0.05);
}

TEST(PermutationTest, ShiftedDistributionLowP) {
  mx::Rng rng(23);
  const auto a = normal_sample(rng, 60, 0.0, 1.0);
  const auto b = normal_sample(rng, 60, 1.5, 1.0);
  const double p =
      sml::permutation_p_value(sml::Measure::kKolmogorovSmirnov, a, b, rng, 100);
  EXPECT_LT(p, 0.05);
}

TEST(PermutationTest, ValidatesArguments) {
  mx::Rng rng(1);
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW(
      sml::permutation_p_value(sml::Measure::kKolmogorovSmirnov, xs, xs, rng, 0),
      std::invalid_argument);
}

TEST(Monitor, ConstructionValidation) {
  sml::MonitorConfig cfg;
  EXPECT_THROW(sml::Monitor(cfg, {}), std::invalid_argument);
  EXPECT_THROW(sml::Monitor(cfg, {{}}), std::invalid_argument);
  cfg.window = 1;
  EXPECT_THROW(sml::Monitor(cfg, {{1.0, 2.0}}), std::invalid_argument);
  cfg.window = 8;
  cfg.full_scale = 0.0;
  EXPECT_THROW(sml::Monitor(cfg, {{1.0, 2.0}}), std::invalid_argument);
  cfg.full_scale = 1.0;
  cfg.low_threshold = 0.9;
  cfg.high_threshold = 0.5;
  EXPECT_THROW(sml::Monitor(cfg, {{1.0, 2.0}}), std::invalid_argument);
}

TEST(Monitor, NotReadyUntilWindowFull) {
  mx::Rng rng(29);
  sml::MonitorConfig cfg;
  cfg.window = 8;
  sml::Monitor mon(cfg, {normal_sample(rng, 100, 0.0, 1.0)});
  for (int i = 0; i < 7; ++i) {
    mon.push({rng.normal(0.0, 1.0)});
    EXPECT_FALSE(mon.ready());
    EXPECT_FALSE(mon.assess().has_value());
  }
  mon.push({0.0});
  EXPECT_TRUE(mon.ready());
  EXPECT_TRUE(mon.assess().has_value());
}

TEST(Monitor, InDistributionDataHighConfidence) {
  mx::Rng rng(31);
  sml::MonitorConfig cfg;
  cfg.window = 64;
  sml::Monitor mon(cfg, {normal_sample(rng, 500, 0.0, 1.0)});
  for (int i = 0; i < 64; ++i) mon.push({rng.normal(0.0, 1.0)});
  const auto a = mon.assess();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->level, sml::ConfidenceLevel::kHigh);
  EXPECT_GT(a->confidence, 0.75);
}

TEST(Monitor, ShiftedDataLowConfidence) {
  mx::Rng rng(37);
  sml::MonitorConfig cfg;
  cfg.window = 64;
  sml::Monitor mon(cfg, {normal_sample(rng, 500, 0.0, 1.0)});
  for (int i = 0; i < 64; ++i) mon.push({rng.normal(5.0, 1.0)});
  const auto a = mon.assess();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->level, sml::ConfidenceLevel::kLow);
  EXPECT_LT(a->confidence, 0.4);
}

TEST(Monitor, SlidingWindowRecovers) {
  // After a burst of shifted data, pushing in-distribution data slides the
  // bad samples out and confidence recovers.
  mx::Rng rng(41);
  sml::MonitorConfig cfg;
  cfg.window = 32;
  sml::Monitor mon(cfg, {normal_sample(rng, 500, 0.0, 1.0)});
  for (int i = 0; i < 32; ++i) mon.push({rng.normal(5.0, 1.0)});
  const double bad = mon.assess()->confidence;
  for (int i = 0; i < 32; ++i) mon.push({rng.normal(0.0, 1.0)});
  const double good = mon.assess()->confidence;
  EXPECT_GT(good, bad + 0.3);
}

TEST(Monitor, MultiFeatureAggregation) {
  mx::Rng rng(43);
  sml::MonitorConfig cfg;
  cfg.window = 32;
  sml::Monitor mon(cfg, {normal_sample(rng, 300, 0.0, 1.0),
                         normal_sample(rng, 300, 10.0, 2.0)});
  EXPECT_EQ(mon.num_features(), 2u);
  for (int i = 0; i < 32; ++i) {
    mon.push({rng.normal(0.0, 1.0), rng.normal(10.0, 2.0)});
  }
  EXPECT_EQ(mon.assess()->level, sml::ConfidenceLevel::kHigh);
  EXPECT_THROW(mon.push({1.0}), std::invalid_argument);
}

TEST(Monitor, ResetClearsWindow) {
  mx::Rng rng(47);
  sml::MonitorConfig cfg;
  cfg.window = 8;
  sml::Monitor mon(cfg, {normal_sample(rng, 100, 0.0, 1.0)});
  for (int i = 0; i < 8; ++i) mon.push({0.0});
  EXPECT_TRUE(mon.ready());
  mon.reset();
  EXPECT_FALSE(mon.ready());
  EXPECT_EQ(mon.buffered(), 0u);
}

TEST(Monitor, ConfidenceLevelNames) {
  EXPECT_EQ(sml::confidence_level_name(sml::ConfidenceLevel::kHigh), "High");
  EXPECT_EQ(sml::confidence_level_name(sml::ConfidenceLevel::kMedium), "Medium");
  EXPECT_EQ(sml::confidence_level_name(sml::ConfidenceLevel::kLow), "Low");
}

#include "sesame/safeml/calibration.hpp"

TEST(Calibration, ValidatesArguments) {
  mx::Rng rng(1);
  std::vector<std::vector<double>> ref{{1.0, 2.0, 3.0, 4.0}};
  EXPECT_THROW(sml::calibrate_monitor(sml::Measure::kKolmogorovSmirnov, {},
                                      4, rng),
               std::invalid_argument);
  EXPECT_THROW(sml::calibrate_monitor(sml::Measure::kKolmogorovSmirnov, ref,
                                      8, rng),
               std::invalid_argument);  // reference smaller than window
  EXPECT_THROW(sml::calibrate_monitor(sml::Measure::kKolmogorovSmirnov, ref,
                                      4, rng, 5),
               std::invalid_argument);  // too few trials
  EXPECT_THROW(sml::calibrate_monitor(sml::Measure::kKolmogorovSmirnov, ref,
                                      4, rng, 100, 0.4, 0.7),
               std::invalid_argument);  // thresholds inverted
}

TEST(Calibration, CleanDataClassifiesHigh) {
  mx::Rng rng(97);
  const auto reference = std::vector<std::vector<double>>{
      normal_sample(rng, 500, 0.0, 1.0), normal_sample(rng, 500, 10.0, 2.0)};
  const auto report = sml::calibrate_monitor(
      sml::Measure::kKolmogorovSmirnov, reference, 64, rng);
  EXPECT_GT(report.config.full_scale, 0.0);
  EXPECT_GE(report.self_distance_p95, report.self_distance_p50);

  sml::Monitor mon(report.config, reference);
  int high = 0;
  const int rounds = 50;
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < 64; ++i) {
      mon.push({rng.normal(0.0, 1.0), rng.normal(10.0, 2.0)});
    }
    if (mon.assess()->level == sml::ConfidenceLevel::kHigh) ++high;
  }
  // Calibration targets ~95% High on clean data.
  EXPECT_GT(high, rounds * 3 / 4);
}

TEST(Calibration, ShiftedDataStillFlagged) {
  mx::Rng rng(101);
  const auto reference =
      std::vector<std::vector<double>>{normal_sample(rng, 500, 0.0, 1.0)};
  const auto report = sml::calibrate_monitor(
      sml::Measure::kWasserstein, reference, 64, rng);
  sml::Monitor mon(report.config, reference);
  for (int i = 0; i < 64; ++i) mon.push({rng.normal(4.0, 1.0)});
  EXPECT_EQ(mon.assess()->level, sml::ConfidenceLevel::kLow);
}

TEST(Calibration, WorksForEveryMeasure) {
  mx::Rng rng(103);
  const auto reference =
      std::vector<std::vector<double>>{normal_sample(rng, 300, 0.0, 1.0)};
  for (auto m : sml::all_measures()) {
    const auto report = sml::calibrate_monitor(m, reference, 32, rng, 100);
    EXPECT_GT(report.config.full_scale, 0.0) << sml::measure_name(m);
    EXPECT_EQ(report.config.measure, m);
  }
}

TEST(Monitor, PerFeatureDissimilarityIsolatesDriftedChannel) {
  mx::Rng rng(107);
  sml::MonitorConfig cfg;
  cfg.window = 48;
  sml::Monitor mon(cfg, {normal_sample(rng, 300, 0.0, 1.0),
                         normal_sample(rng, 300, 10.0, 2.0)});
  EXPECT_TRUE(mon.per_feature_dissimilarity().empty());  // not ready yet
  // Feature 0 stays in distribution; feature 1 drifts hard.
  for (int i = 0; i < 48; ++i) {
    mon.push({rng.normal(0.0, 1.0), rng.normal(30.0, 2.0)});
  }
  const auto per = mon.per_feature_dissimilarity();
  ASSERT_EQ(per.size(), 2u);
  EXPECT_LT(per[0], 0.4);
  EXPECT_GT(per[1], 0.9);
  // The aggregate equals the mean of the per-feature distances.
  const auto a = mon.assess();
  ASSERT_TRUE(a.has_value());
  EXPECT_NEAR(a->dissimilarity, (per[0] + per[1]) / 2.0, 1e-12);
}

#include "sesame/safeml/drift.hpp"

TEST(DriftDetector, ValidatesConfig) {
  sml::DriftDetectorConfig cfg;
  cfg.threshold = 0.0;
  EXPECT_THROW((sml::DriftDetector{cfg}), std::invalid_argument);
  cfg = {};
  cfg.slack = -0.1;
  EXPECT_THROW((sml::DriftDetector{cfg}), std::invalid_argument);
}

TEST(DriftDetector, NoAlarmOnInControlStream) {
  mx::Rng rng(111);
  sml::DriftDetectorConfig cfg;
  cfg.reference = 0.10;
  cfg.slack = 0.05;
  cfg.threshold = 0.5;
  sml::DriftDetector detector(cfg);
  for (int i = 0; i < 2000; ++i) {
    detector.push(std::max(0.0, rng.normal(0.10, 0.02)));
  }
  EXPECT_FALSE(detector.alarmed());
}

TEST(DriftDetector, FastDetectionOfSustainedShift) {
  mx::Rng rng(113);
  sml::DriftDetectorConfig cfg;
  cfg.reference = 0.10;
  cfg.slack = 0.05;
  cfg.threshold = 0.5;
  sml::DriftDetector detector(cfg);
  for (int i = 0; i < 500; ++i) {
    detector.push(std::max(0.0, rng.normal(0.10, 0.02)));
  }
  ASSERT_FALSE(detector.alarmed());
  // Shift of +0.25 in dissimilarity: expected detection delay ~ h/(shift-k)
  // = 0.5/0.2 ~ 3 samples.
  int delay = 0;
  while (!detector.push(std::max(0.0, rng.normal(0.35, 0.02)))) ++delay;
  EXPECT_LT(delay, 10);
  ASSERT_TRUE(detector.alarm_index().has_value());
  EXPECT_GE(*detector.alarm_index(), 500u);
}

TEST(DriftDetector, AlarmLatchesUntilReset) {
  sml::DriftDetector detector({0.0, 0.0, 0.1});
  EXPECT_TRUE(detector.push(1.0));
  EXPECT_TRUE(detector.push(0.0));  // latched despite clean sample
  detector.reset();
  EXPECT_FALSE(detector.alarmed());
  EXPECT_EQ(detector.samples_seen(), 0u);
}

TEST(DriftDetector, TransientBlipDoesNotAlarm) {
  sml::DriftDetectorConfig cfg;
  cfg.reference = 0.1;
  cfg.slack = 0.05;
  cfg.threshold = 1.0;
  sml::DriftDetector detector(cfg);
  // One big blip then back to normal: statistic decays via the slack.
  detector.push(0.6);
  for (int i = 0; i < 50; ++i) detector.push(0.05);
  EXPECT_FALSE(detector.alarmed());
  EXPECT_LT(detector.statistic(), 0.2);
}

TEST(Distances, SortedVariantMatchesUnsortedForAllMeasures) {
  mx::Rng rng(1234);
  std::vector<double> a, b;
  for (int i = 0; i < 200; ++i) a.push_back(rng.normal(0.0, 1.0));
  for (int i = 0; i < 150; ++i) b.push_back(rng.normal(0.4, 1.3));

  std::vector<double> a_sorted = a, b_sorted = b;
  std::sort(a_sorted.begin(), a_sorted.end());
  std::sort(b_sorted.begin(), b_sorted.end());

  for (const auto m : sml::all_measures()) {
    EXPECT_EQ(sml::distance(m, a, b),
              sml::distance_sorted(m, a_sorted, b_sorted))
        << sml::measure_name(m);
  }
}

TEST(Distances, SortedVariantRejectsEmptySamples) {
  const std::vector<double> some{1.0, 2.0};
  EXPECT_THROW(
      sml::distance_sorted(sml::Measure::kKolmogorovSmirnov, {}, some),
      std::invalid_argument);
  EXPECT_THROW(
      sml::distance_sorted(sml::Measure::kKolmogorovSmirnov, some, {}),
      std::invalid_argument);
}
