// Tests for the pub/sub middleware: delivery, typing, taps, journal,
// subscription lifetimes, and the deliberate injectability property the
// spoofing scenario relies on.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sesame/mw/bus.hpp"
#include "sesame/obs/metrics.hpp"

namespace mw = sesame::mw;

namespace {

struct Telemetry {
  int uav_id = 0;
  double lat = 0.0;
  double lon = 0.0;
};

}  // namespace

TEST(Bus, DeliversToSubscriber) {
  mw::Bus bus;
  std::vector<int> received;
  auto sub = bus.subscribe<int>(
      "counter", [&](const mw::MessageHeader&, const int& v) {
        received.push_back(v);
      });
  bus.publish("counter", 1, "node_a", 0.0);
  bus.publish("counter", 2, "node_a", 0.1);
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0], 1);
  EXPECT_EQ(received[1], 2);
}

TEST(Bus, HeaderCarriesMetadata) {
  mw::Bus bus;
  mw::MessageHeader seen;
  auto sub = bus.subscribe<int>(
      "t", [&](const mw::MessageHeader& h, const int&) { seen = h; });
  bus.publish("t", 7, "uav_1", 12.5);
  EXPECT_EQ(seen.source, "uav_1");
  EXPECT_EQ(seen.topic, "t");
  EXPECT_DOUBLE_EQ(seen.time_s, 12.5);
}

TEST(Bus, SequenceNumbersMonotone) {
  mw::Bus bus;
  std::vector<std::uint64_t> seqs;
  auto sub = bus.subscribe<int>(
      "t", [&](const mw::MessageHeader& h, const int&) { seqs.push_back(h.seq); });
  bus.publish("t", 0, "a", 0.0);
  bus.publish("other", 0, "a", 0.0);  // consumes a sequence number too
  bus.publish("t", 0, "a", 0.0);
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_LT(seqs[0], seqs[1]);
}

TEST(Bus, TopicsAreIsolated) {
  mw::Bus bus;
  int count_a = 0, count_b = 0;
  auto sa = bus.subscribe<int>("a", [&](const mw::MessageHeader&, const int&) {
    ++count_a;
  });
  auto sb = bus.subscribe<int>("b", [&](const mw::MessageHeader&, const int&) {
    ++count_b;
  });
  bus.publish("a", 1, "n", 0.0);
  EXPECT_EQ(count_a, 1);
  EXPECT_EQ(count_b, 0);
}

TEST(Bus, MultipleSubscribersInOrder) {
  mw::Bus bus;
  std::vector<std::string> order;
  auto s1 = bus.subscribe<int>("t", [&](const mw::MessageHeader&, const int&) {
    order.push_back("first");
  });
  auto s2 = bus.subscribe<int>("t", [&](const mw::MessageHeader&, const int&) {
    order.push_back("second");
  });
  bus.publish("t", 0, "n", 0.0);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "first");
  EXPECT_EQ(order[1], "second");
}

TEST(Bus, StructPayloadsCopiedFaithfully) {
  mw::Bus bus;
  Telemetry seen;
  auto sub = bus.subscribe<Telemetry>(
      "telemetry", [&](const mw::MessageHeader&, const Telemetry& t) { seen = t; });
  bus.publish("telemetry", Telemetry{3, 35.1, 33.4}, "uav_3", 1.0);
  EXPECT_EQ(seen.uav_id, 3);
  EXPECT_DOUBLE_EQ(seen.lat, 35.1);
}

TEST(Bus, TypeMismatchThrows) {
  mw::Bus bus;
  auto sub = bus.subscribe<int>("t", [](const mw::MessageHeader&, const int&) {});
  EXPECT_THROW(bus.publish("t", 1.5, "n", 0.0), std::runtime_error);
}

TEST(Bus, UnsubscribeOnTokenDestruction) {
  mw::Bus bus;
  int count = 0;
  {
    auto sub = bus.subscribe<int>("t", [&](const mw::MessageHeader&, const int&) {
      ++count;
    });
    bus.publish("t", 0, "n", 0.0);
  }
  bus.publish("t", 0, "n", 0.0);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(bus.subscriber_count("t"), 0u);
}

TEST(Bus, SubscriptionResetAndMove) {
  mw::Bus bus;
  int count = 0;
  auto sub = bus.subscribe<int>("t", [&](const mw::MessageHeader&, const int&) {
    ++count;
  });
  EXPECT_TRUE(sub.active());
  mw::Subscription moved = std::move(sub);
  EXPECT_TRUE(moved.active());
  bus.publish("t", 0, "n", 0.0);
  EXPECT_EQ(count, 1);
  moved.reset();
  EXPECT_FALSE(moved.active());
  bus.publish("t", 0, "n", 0.0);
  EXPECT_EQ(count, 1);
}

TEST(Bus, TapSeesAllTopics) {
  mw::Bus bus;
  std::vector<std::string> seen;
  auto tap = bus.add_tap([&](const mw::MessageHeader& h, const std::any&,
                             std::type_index) { seen.push_back(h.topic); });
  bus.publish("a", 1, "n", 0.0);
  bus.publish("b", 2.0, "n", 0.0);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "a");
  EXPECT_EQ(seen[1], "b");
}

TEST(Bus, TapCanInspectPayload) {
  mw::Bus bus;
  double value = 0.0;
  auto tap = bus.add_tap([&](const mw::MessageHeader&, const std::any& payload,
                             std::type_index type) {
    if (type == std::type_index(typeid(Telemetry))) {
      value = std::any_cast<std::reference_wrapper<const Telemetry>>(payload)
                  .get()
                  .lat;
    }
  });
  bus.publish("telemetry", Telemetry{1, 35.5, 33.0}, "uav_1", 0.0);
  EXPECT_DOUBLE_EQ(value, 35.5);
}

TEST(Bus, JournalRecordsHeaders) {
  mw::Bus bus;
  bus.publish("a", 1, "alice", 0.5);
  bus.publish("b", 2, "bob", 1.5);
  ASSERT_EQ(bus.journal().size(), 2u);
  EXPECT_EQ(bus.journal()[0].header.source, "alice");
  EXPECT_EQ(bus.journal()[1].header.topic, "b");
  bus.clear_journal();
  EXPECT_TRUE(bus.journal().empty());
}

TEST(Bus, JournalCanBeDisabled) {
  mw::Bus bus;
  bus.enable_journal(false);
  bus.publish("a", 1, "n", 0.0);
  EXPECT_TRUE(bus.journal().empty());
  EXPECT_EQ(bus.messages_published(), 1u);
}

// The security-critical property the paper's attack scenario exploits:
// the bus does not authenticate sources, so an attacker node can publish
// to a topic that legitimate nodes trust.
TEST(Bus, UnauthenticatedInjectionIsPossible) {
  mw::Bus bus;
  std::vector<std::string> sources;
  auto sub = bus.subscribe<Telemetry>(
      "uav_1/position",
      [&](const mw::MessageHeader& h, const Telemetry&) {
        sources.push_back(h.source);
      });
  bus.publish("uav_1/position", Telemetry{1, 35.0, 33.0}, "uav_1", 0.0);
  bus.publish("uav_1/position", Telemetry{1, 0.0, 0.0}, "attacker", 0.1);
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_EQ(sources[1], "attacker");  // delivered — no authentication
}

TEST(Bus, ReentrantUnsubscribeDuringDelivery) {
  mw::Bus bus;
  int calls = 0;
  mw::Subscription sub;
  sub = bus.subscribe<int>("t", [&](const mw::MessageHeader&, const int&) {
    ++calls;
    sub.reset();  // unsubscribe from inside the handler
  });
  bus.publish("t", 0, "n", 0.0);
  bus.publish("t", 0, "n", 0.0);
  EXPECT_EQ(calls, 1);
}

TEST(Bus, PublisherRestrictionDropsUnauthorized) {
  mw::Bus bus;
  bus.restrict_publisher("uav_1/position_fix", "collaborative_localization");
  int delivered = 0;
  auto sub = bus.subscribe<int>(
      "uav_1/position_fix",
      [&](const mw::MessageHeader&, const int&) { ++delivered; });
  bus.publish("uav_1/position_fix", 1, "collaborative_localization", 0.0);
  bus.publish("uav_1/position_fix", 2, "attacker", 0.1);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(bus.rejected_publications(), 1u);
}

TEST(Bus, TapsStillSeeRejectedTraffic) {
  // A network IDS inspects traffic before the transport drops it.
  mw::Bus bus;
  bus.restrict_publisher("cmd", "operator");
  int tapped = 0;
  auto tap = bus.add_tap(
      [&](const mw::MessageHeader&, const std::any&, std::type_index) {
        ++tapped;
      });
  bus.publish("cmd", 1, "attacker", 0.0);
  EXPECT_EQ(tapped, 1);
  EXPECT_EQ(bus.rejected_publications(), 1u);
}

TEST(Bus, RestrictionIsPerTopic) {
  mw::Bus bus;
  bus.restrict_publisher("protected", "alice");
  int open_count = 0;
  auto sub = bus.subscribe<int>(
      "open", [&](const mw::MessageHeader&, const int&) { ++open_count; });
  bus.publish("open", 1, "anyone", 0.0);
  EXPECT_EQ(open_count, 1);
  EXPECT_EQ(bus.rejected_publications(), 0u);
}

TEST(BusMetrics, PublishIncrementsPerTopicCounter) {
  mw::Bus bus;
  sesame::obs::MetricsRegistry reg;
  bus.set_metrics(&reg);
  auto sub = bus.subscribe<int>("uav/uav1/telemetry",
                                [](const mw::MessageHeader&, const int&) {});
  bus.publish("uav/uav1/telemetry", 1, "uav1", 0.0);
  bus.publish("uav/uav1/telemetry", 2, "uav1", 1.0);
  bus.publish("other", 3, "uav2", 1.0);
  EXPECT_DOUBLE_EQ(
      reg.counter("sesame.mw.publish_total", {{"topic", "uav/uav1/telemetry"}})
          .value(),
      2.0);
  EXPECT_DOUBLE_EQ(
      reg.counter("sesame.mw.publish_total", {{"topic", "other"}}).value(),
      1.0);
}

TEST(BusMetrics, DeliverCountsHandlerInvocations) {
  mw::Bus bus;
  sesame::obs::MetricsRegistry reg;
  bus.set_metrics(&reg);
  auto s1 = bus.subscribe<int>("t", [](const mw::MessageHeader&, const int&) {});
  auto s2 = bus.subscribe<int>("t", [](const mw::MessageHeader&, const int&) {});
  bus.publish("t", 1, "n", 0.0);
  EXPECT_DOUBLE_EQ(
      reg.counter("sesame.mw.deliver_total", {{"topic", "t"}}).value(), 2.0);
  // The latency histogram saw exactly one fan-out.
  EXPECT_EQ(reg.histogram("sesame.mw.delivery_latency_seconds",
                          {{"topic", "t"}})
                .count(),
            1u);
}

TEST(BusMetrics, RejectedPublicationsAreCounted) {
  mw::Bus bus;
  sesame::obs::MetricsRegistry reg;
  bus.set_metrics(&reg);
  bus.restrict_publisher("cmd", "operator");
  bus.publish("cmd", 1, "attacker", 0.0);
  EXPECT_DOUBLE_EQ(reg.counter("sesame.mw.rejected_total").value(), 1.0);
  // The attempt still shows in publish_total, mirroring the journal.
  EXPECT_DOUBLE_EQ(
      reg.counter("sesame.mw.publish_total", {{"topic", "cmd"}}).value(), 1.0);
}

TEST(BusMetrics, DetachStopsCounting) {
  mw::Bus bus;
  sesame::obs::MetricsRegistry reg;
  bus.set_metrics(&reg);
  bus.publish("t", 1, "n", 0.0);
  bus.set_metrics(nullptr);
  bus.publish("t", 2, "n", 0.0);
  EXPECT_DOUBLE_EQ(
      reg.counter("sesame.mw.publish_total", {{"topic", "t"}}).value(), 1.0);
}

#include "sesame/mw/node.hpp"

TEST(NodeHandle, BakesSourceIntoPublications) {
  mw::Bus bus;
  mw::NodeHandle node(bus, "uav_7");
  std::string seen_source;
  auto sub = node.subscribe<int>(
      "t", [&](const mw::MessageHeader& h, const int&) {
        seen_source = h.source;
      });
  node.publish("t", 42, 1.5);
  EXPECT_EQ(seen_source, "uav_7");
  EXPECT_EQ(node.name(), "uav_7");
  EXPECT_THROW(mw::NodeHandle(bus, ""), std::invalid_argument);
}

TEST(NodeHandle, WorksWithPublisherRestrictions) {
  mw::Bus bus;
  bus.restrict_publisher("cmd", "operator");
  mw::NodeHandle operator_node(bus, "operator");
  mw::NodeHandle rogue_node(bus, "rogue");
  int delivered = 0;
  auto sub = bus.subscribe<int>(
      "cmd", [&](const mw::MessageHeader&, const int&) { ++delivered; });
  operator_node.publish("cmd", 1, 0.0);
  rogue_node.publish("cmd", 2, 0.1);
  EXPECT_EQ(delivered, 1);
}
