// Tests for the pub/sub middleware: delivery, typing, taps, journal,
// subscription lifetimes, and the deliberate injectability property the
// spoofing scenario relies on.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sesame/mw/bus.hpp"
#include "sesame/obs/metrics.hpp"

namespace mw = sesame::mw;

namespace {

struct Telemetry {
  int uav_id = 0;
  double lat = 0.0;
  double lon = 0.0;
};

}  // namespace

TEST(Bus, DeliversToSubscriber) {
  mw::Bus bus;
  std::vector<int> received;
  auto sub = bus.subscribe<int>(
      "counter", [&](const mw::MessageHeader&, const int& v) {
        received.push_back(v);
      });
  bus.publish("counter", 1, "node_a", 0.0);
  bus.publish("counter", 2, "node_a", 0.1);
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0], 1);
  EXPECT_EQ(received[1], 2);
}

TEST(Bus, HeaderCarriesMetadata) {
  mw::Bus bus;
  mw::MessageHeader seen;
  auto sub = bus.subscribe<int>(
      "t", [&](const mw::MessageHeader& h, const int&) { seen = h; });
  bus.publish("t", 7, "uav_1", 12.5);
  EXPECT_EQ(seen.source, "uav_1");
  EXPECT_EQ(seen.topic, "t");
  EXPECT_DOUBLE_EQ(seen.time_s, 12.5);
}

TEST(Bus, SequenceNumbersMonotone) {
  mw::Bus bus;
  std::vector<std::uint64_t> seqs;
  auto sub = bus.subscribe<int>(
      "t", [&](const mw::MessageHeader& h, const int&) { seqs.push_back(h.seq); });
  bus.publish("t", 0, "a", 0.0);
  bus.publish("other", 0, "a", 0.0);  // consumes a sequence number too
  bus.publish("t", 0, "a", 0.0);
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_LT(seqs[0], seqs[1]);
}

TEST(Bus, TopicsAreIsolated) {
  mw::Bus bus;
  int count_a = 0, count_b = 0;
  auto sa = bus.subscribe<int>("a", [&](const mw::MessageHeader&, const int&) {
    ++count_a;
  });
  auto sb = bus.subscribe<int>("b", [&](const mw::MessageHeader&, const int&) {
    ++count_b;
  });
  bus.publish("a", 1, "n", 0.0);
  EXPECT_EQ(count_a, 1);
  EXPECT_EQ(count_b, 0);
}

TEST(Bus, MultipleSubscribersInOrder) {
  mw::Bus bus;
  std::vector<std::string> order;
  auto s1 = bus.subscribe<int>("t", [&](const mw::MessageHeader&, const int&) {
    order.push_back("first");
  });
  auto s2 = bus.subscribe<int>("t", [&](const mw::MessageHeader&, const int&) {
    order.push_back("second");
  });
  bus.publish("t", 0, "n", 0.0);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "first");
  EXPECT_EQ(order[1], "second");
}

TEST(Bus, StructPayloadsCopiedFaithfully) {
  mw::Bus bus;
  Telemetry seen;
  auto sub = bus.subscribe<Telemetry>(
      "telemetry", [&](const mw::MessageHeader&, const Telemetry& t) { seen = t; });
  bus.publish("telemetry", Telemetry{3, 35.1, 33.4}, "uav_3", 1.0);
  EXPECT_EQ(seen.uav_id, 3);
  EXPECT_DOUBLE_EQ(seen.lat, 35.1);
}

TEST(Bus, TypeMismatchThrows) {
  mw::Bus bus;
  auto sub = bus.subscribe<int>("t", [](const mw::MessageHeader&, const int&) {});
  EXPECT_THROW(bus.publish("t", 1.5, "n", 0.0), std::runtime_error);
}

TEST(Bus, UnsubscribeOnTokenDestruction) {
  mw::Bus bus;
  int count = 0;
  {
    auto sub = bus.subscribe<int>("t", [&](const mw::MessageHeader&, const int&) {
      ++count;
    });
    bus.publish("t", 0, "n", 0.0);
  }
  bus.publish("t", 0, "n", 0.0);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(bus.subscriber_count("t"), 0u);
}

TEST(Bus, SubscriptionResetAndMove) {
  mw::Bus bus;
  int count = 0;
  auto sub = bus.subscribe<int>("t", [&](const mw::MessageHeader&, const int&) {
    ++count;
  });
  EXPECT_TRUE(sub.active());
  mw::Subscription moved = std::move(sub);
  EXPECT_TRUE(moved.active());
  bus.publish("t", 0, "n", 0.0);
  EXPECT_EQ(count, 1);
  moved.reset();
  EXPECT_FALSE(moved.active());
  bus.publish("t", 0, "n", 0.0);
  EXPECT_EQ(count, 1);
}

TEST(Bus, TapSeesAllTopics) {
  mw::Bus bus;
  std::vector<std::string> seen;
  auto tap = bus.add_tap([&](const mw::MessageHeader& h, const std::any&,
                             std::type_index) { seen.emplace_back(h.topic); });
  bus.publish("a", 1, "n", 0.0);
  bus.publish("b", 2.0, "n", 0.0);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "a");
  EXPECT_EQ(seen[1], "b");
}

TEST(Bus, TapCanInspectPayload) {
  mw::Bus bus;
  double value = 0.0;
  auto tap = bus.add_tap([&](const mw::MessageHeader&, const std::any& payload,
                             std::type_index type) {
    if (type == std::type_index(typeid(Telemetry))) {
      value = std::any_cast<std::reference_wrapper<const Telemetry>>(payload)
                  .get()
                  .lat;
    }
  });
  bus.publish("telemetry", Telemetry{1, 35.5, 33.0}, "uav_1", 0.0);
  EXPECT_DOUBLE_EQ(value, 35.5);
}

TEST(Bus, JournalRecordsHeaders) {
  mw::Bus bus;
  bus.publish("a", 1, "alice", 0.5);
  bus.publish("b", 2, "bob", 1.5);
  ASSERT_EQ(bus.journal().size(), 2u);
  EXPECT_EQ(bus.journal()[0].header.source, "alice");
  EXPECT_EQ(bus.journal()[1].header.topic, "b");
  bus.clear_journal();
  EXPECT_TRUE(bus.journal().empty());
}

TEST(Bus, JournalCanBeDisabled) {
  mw::Bus bus;
  bus.enable_journal(false);
  bus.publish("a", 1, "n", 0.0);
  EXPECT_TRUE(bus.journal().empty());
  EXPECT_EQ(bus.messages_published(), 1u);
}

// The security-critical property the paper's attack scenario exploits:
// the bus does not authenticate sources, so an attacker node can publish
// to a topic that legitimate nodes trust.
TEST(Bus, UnauthenticatedInjectionIsPossible) {
  mw::Bus bus;
  std::vector<std::string> sources;
  auto sub = bus.subscribe<Telemetry>(
      "uav_1/position",
      [&](const mw::MessageHeader& h, const Telemetry&) {
        sources.emplace_back(h.source);
      });
  bus.publish("uav_1/position", Telemetry{1, 35.0, 33.0}, "uav_1", 0.0);
  bus.publish("uav_1/position", Telemetry{1, 0.0, 0.0}, "attacker", 0.1);
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_EQ(sources[1], "attacker");  // delivered — no authentication
}

TEST(Bus, ReentrantUnsubscribeDuringDelivery) {
  mw::Bus bus;
  int calls = 0;
  mw::Subscription sub;
  sub = bus.subscribe<int>("t", [&](const mw::MessageHeader&, const int&) {
    ++calls;
    sub.reset();  // unsubscribe from inside the handler
  });
  bus.publish("t", 0, "n", 0.0);
  bus.publish("t", 0, "n", 0.0);
  EXPECT_EQ(calls, 1);
}

TEST(Bus, PublisherRestrictionDropsUnauthorized) {
  mw::Bus bus;
  bus.restrict_publisher("uav_1/position_fix", "collaborative_localization");
  int delivered = 0;
  auto sub = bus.subscribe<int>(
      "uav_1/position_fix",
      [&](const mw::MessageHeader&, const int&) { ++delivered; });
  bus.publish("uav_1/position_fix", 1, "collaborative_localization", 0.0);
  bus.publish("uav_1/position_fix", 2, "attacker", 0.1);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(bus.rejected_publications(), 1u);
}

TEST(Bus, TapsStillSeeRejectedTraffic) {
  // A network IDS inspects traffic before the transport drops it.
  mw::Bus bus;
  bus.restrict_publisher("cmd", "operator");
  int tapped = 0;
  auto tap = bus.add_tap(
      [&](const mw::MessageHeader&, const std::any&, std::type_index) {
        ++tapped;
      });
  bus.publish("cmd", 1, "attacker", 0.0);
  EXPECT_EQ(tapped, 1);
  EXPECT_EQ(bus.rejected_publications(), 1u);
}

TEST(Bus, RestrictionIsPerTopic) {
  mw::Bus bus;
  bus.restrict_publisher("protected", "alice");
  int open_count = 0;
  auto sub = bus.subscribe<int>(
      "open", [&](const mw::MessageHeader&, const int&) { ++open_count; });
  bus.publish("open", 1, "anyone", 0.0);
  EXPECT_EQ(open_count, 1);
  EXPECT_EQ(bus.rejected_publications(), 0u);
}

TEST(BusMetrics, PublishIncrementsPerTopicCounter) {
  mw::Bus bus;
  sesame::obs::MetricsRegistry reg;
  bus.set_metrics(&reg);
  auto sub = bus.subscribe<int>("uav/uav1/telemetry",
                                [](const mw::MessageHeader&, const int&) {});
  bus.publish("uav/uav1/telemetry", 1, "uav1", 0.0);
  bus.publish("uav/uav1/telemetry", 2, "uav1", 1.0);
  bus.publish("other", 3, "uav2", 1.0);
  EXPECT_DOUBLE_EQ(
      reg.counter("sesame.mw.publish_total", {{"topic", "uav/uav1/telemetry"}})
          .value(),
      2.0);
  EXPECT_DOUBLE_EQ(
      reg.counter("sesame.mw.publish_total", {{"topic", "other"}}).value(),
      1.0);
}

TEST(BusMetrics, DeliverCountsHandlerInvocations) {
  mw::Bus bus;
  sesame::obs::MetricsRegistry reg;
  bus.set_metrics(&reg);
  auto s1 = bus.subscribe<int>("t", [](const mw::MessageHeader&, const int&) {});
  auto s2 = bus.subscribe<int>("t", [](const mw::MessageHeader&, const int&) {});
  bus.publish("t", 1, "n", 0.0);
  EXPECT_DOUBLE_EQ(
      reg.counter("sesame.mw.deliver_total", {{"topic", "t"}}).value(), 2.0);
  // The latency histogram saw exactly one fan-out.
  EXPECT_EQ(reg.histogram("sesame.mw.delivery_latency_seconds",
                          {{"topic", "t"}})
                .count(),
            1u);
}

TEST(BusMetrics, RejectedPublicationsAreCounted) {
  mw::Bus bus;
  sesame::obs::MetricsRegistry reg;
  bus.set_metrics(&reg);
  bus.restrict_publisher("cmd", "operator");
  bus.publish("cmd", 1, "attacker", 0.0);
  EXPECT_DOUBLE_EQ(reg.counter("sesame.mw.rejected_total").value(), 1.0);
  // The attempt still shows in publish_total, mirroring the journal.
  EXPECT_DOUBLE_EQ(
      reg.counter("sesame.mw.publish_total", {{"topic", "cmd"}}).value(), 1.0);
}

TEST(BusMetrics, DetachStopsCounting) {
  mw::Bus bus;
  sesame::obs::MetricsRegistry reg;
  bus.set_metrics(&reg);
  bus.publish("t", 1, "n", 0.0);
  bus.set_metrics(nullptr);
  bus.publish("t", 2, "n", 0.0);
  EXPECT_DOUBLE_EQ(
      reg.counter("sesame.mw.publish_total", {{"topic", "t"}}).value(), 1.0);
}

#include "sesame/mw/node.hpp"

TEST(NodeHandle, BakesSourceIntoPublications) {
  mw::Bus bus;
  mw::NodeHandle node(bus, "uav_7");
  std::string seen_source;
  auto sub = node.subscribe<int>(
      "t", [&](const mw::MessageHeader& h, const int&) {
        seen_source = h.source;
      });
  node.publish("t", 42, 1.5);
  EXPECT_EQ(seen_source, "uav_7");
  EXPECT_EQ(node.name(), "uav_7");
  EXPECT_THROW(mw::NodeHandle(bus, ""), std::invalid_argument);
}

TEST(NodeHandle, WorksWithPublisherRestrictions) {
  mw::Bus bus;
  bus.restrict_publisher("cmd", "operator");
  mw::NodeHandle operator_node(bus, "operator");
  mw::NodeHandle rogue_node(bus, "rogue");
  int delivered = 0;
  auto sub = bus.subscribe<int>(
      "cmd", [&](const mw::MessageHeader&, const int&) { ++delivered; });
  operator_node.publish("cmd", 1, 0.0);
  rogue_node.publish("cmd", 2, 0.1);
  EXPECT_EQ(delivered, 1);
}

// ---------------------------------------------------------------------------
// Bus correctness regressions.

TEST(Bus, TapMayAddTapDuringFanOut) {
  // Regression: publish used to iterate the live tap map while invoking
  // taps, so a tap registering another tap invalidated the iterator (UB).
  mw::Bus bus;
  int second_tap_calls = 0;
  mw::Subscription late_tap;
  auto first_tap = bus.add_tap(
      [&](const mw::MessageHeader&, const std::any&, std::type_index) {
        if (!late_tap.active()) {
          late_tap = bus.add_tap(
              [&](const mw::MessageHeader&, const std::any&, std::type_index) {
                ++second_tap_calls;
              });
        }
      });
  bus.publish("t", 1, "n", 0.0);
  EXPECT_EQ(second_tap_calls, 0);  // registered mid-flight: misses this one
  bus.publish("t", 2, "n", 1.0);
  EXPECT_EQ(second_tap_calls, 1);
}

TEST(Bus, TapMayReleaseOtherTapDuringFanOut) {
  // Regression companion: erasing a map entry mid-iteration was UB too.
  // The released tap still observes the in-flight message (the fan-out
  // works on a copy of the tap list) and nothing afterwards.
  mw::Bus bus;
  int released_tap_calls = 0;
  mw::Subscription victim = bus.add_tap(
      [&](const mw::MessageHeader&, const std::any&, std::type_index) {
        ++released_tap_calls;
      });
  auto killer = bus.add_tap(
      [&](const mw::MessageHeader&, const std::any&, std::type_index) {
        victim.reset();
      });
  bus.publish("t", 1, "n", 0.0);
  EXPECT_EQ(released_tap_calls, 1);
  bus.publish("t", 2, "n", 1.0);
  EXPECT_EQ(released_tap_calls, 1);
}

TEST(Bus, TypeMismatchDeliversToNoOneAtAll) {
  // Regression: the type check used to fire mid-fan-out, after earlier
  // same-type handlers had already run — a half-delivered publication.
  mw::Bus bus;
  int delivered = 0;
  auto ok = bus.subscribe<int>(
      "t", [&](const mw::MessageHeader&, const int&) { ++delivered; });
  auto bad = bus.subscribe<double>("t",
                                   [](const mw::MessageHeader&, const double&) {});
  EXPECT_THROW(bus.publish("t", 1, "n", 0.0), std::runtime_error);
  EXPECT_EQ(delivered, 0);  // all-or-nothing: nobody saw the bad publication
}

TEST(Bus, MessagesPublishedExcludesAclRejected) {
  // Regression: messages_published() returned the raw sequence counter,
  // which also counts publications the ACL rejected.
  mw::Bus bus;
  bus.restrict_publisher("cmd", "operator");
  bus.publish("cmd", 1, "operator", 0.0);
  bus.publish("cmd", 2, "attacker", 0.1);
  bus.publish("cmd", 3, "attacker", 0.2);
  EXPECT_EQ(bus.messages_published(), 1u);
  EXPECT_EQ(bus.rejected_publications(), 2u);
}

TEST(Bus, SubscriptionSelfMoveAssignmentKeepsRegistration) {
  mw::Bus bus;
  int delivered = 0;
  auto sub = bus.subscribe<int>(
      "t", [&](const mw::MessageHeader&, const int&) { ++delivered; });
  auto& alias = sub;  // defeats trivial self-move lint, not the bug
  sub = std::move(alias);
  EXPECT_TRUE(sub.active());
  bus.publish("t", 1, "n", 0.0);
  EXPECT_EQ(delivered, 1);
}

TEST(BusMetrics, ThrowingHandlerStillRecordsCompletedDeliveries) {
  // Regression: a throwing handler used to skip the deliver/latency
  // instruments entirely, under-counting the handlers that did run.
  mw::Bus bus;
  sesame::obs::MetricsRegistry reg;
  bus.set_metrics(&reg);
  auto ok = bus.subscribe<int>("t", [](const mw::MessageHeader&, const int&) {});
  auto boom = bus.subscribe<int>("t", [](const mw::MessageHeader&, const int&) {
    throw std::runtime_error("handler failure");
  });
  EXPECT_THROW(bus.publish("t", 1, "n", 0.0), std::runtime_error);
  EXPECT_DOUBLE_EQ(
      reg.counter("sesame.mw.deliver_total", {{"topic", "t"}}).value(), 1.0);
  EXPECT_EQ(
      reg.histogram("sesame.mw.delivery_latency_seconds", {{"topic", "t"}})
          .count(),
      1u);
}

// ---------------------------------------------------------------------------
// Fault injection.

#include "sesame/mw/fault_plan.hpp"

TEST(FaultPlan, ParserReadsSeedAndRules) {
  const auto plan = mw::parse_fault_plan(
      "# stress schedule\n"
      "seed 99\n"
      "rule topic=uav/uav1/ suffix=/telemetry drop=0.25 delay=0.5:3 dup=0.1\n"
      "rule source=attacker drop=1.0 from=60 until=120 reorder\n");
  EXPECT_EQ(plan.seed, 99u);
  ASSERT_EQ(plan.rules.size(), 2u);
  EXPECT_EQ(plan.rules[0].topic_prefix, "uav/uav1/");
  EXPECT_EQ(plan.rules[0].topic_suffix, "/telemetry");
  EXPECT_DOUBLE_EQ(plan.rules[0].drop_probability, 0.25);
  EXPECT_DOUBLE_EQ(plan.rules[0].delay_probability, 0.5);
  EXPECT_EQ(plan.rules[0].delay_steps, 3u);
  EXPECT_DOUBLE_EQ(plan.rules[0].duplicate_probability, 0.1);
  EXPECT_FALSE(plan.rules[0].reorder);
  EXPECT_EQ(plan.rules[1].source, "attacker");
  EXPECT_DOUBLE_EQ(plan.rules[1].start_time_s, 60.0);
  EXPECT_DOUBLE_EQ(plan.rules[1].stop_time_s, 120.0);
  EXPECT_TRUE(plan.rules[1].reorder);
}

TEST(FaultPlan, ParserRejectsMalformedInput) {
  EXPECT_THROW(mw::parse_fault_plan(""), std::runtime_error);
  EXPECT_THROW(mw::parse_fault_plan("# only a comment\n"), std::runtime_error);
  EXPECT_THROW(mw::parse_fault_plan("bogus 1\n"), std::runtime_error);
  EXPECT_THROW(mw::parse_fault_plan("rule drop=maybe\n"), std::runtime_error);
  EXPECT_THROW(mw::parse_fault_plan("rule color=red\n"), std::runtime_error);
  EXPECT_THROW(mw::parse_fault_plan("rule drop=1.5\n"), std::invalid_argument);
  EXPECT_THROW(mw::parse_fault_plan("rule drop=0.5 from=9 until=3\n"),
               std::invalid_argument);
  EXPECT_THROW(mw::load_fault_plan("/nonexistent/faults.plan"),
               std::runtime_error);
}

TEST(FaultPlan, FirstMatchingRuleWins) {
  mw::FaultRule specific;
  specific.topic_prefix = "uav/uav1/";
  mw::FaultRule broad;
  broad.drop_probability = 1.0;
  mw::FaultPlan plan;
  plan.rules = {specific, broad};  // specific (no-op) shadows broad

  mw::FaultInjector injector(plan);
  mw::MessageHeader h;
  h.topic = "uav/uav1/telemetry";
  EXPECT_FALSE(injector.decide(h).drop);
  h.topic = "uav/uav2/telemetry";
  EXPECT_TRUE(injector.decide(h).drop);
}

TEST(FaultPlan, RuleWindowGatesMatching) {
  mw::FaultRule rule;
  rule.start_time_s = 10.0;
  rule.stop_time_s = 20.0;
  mw::MessageHeader h;
  h.topic = "t";
  h.time_s = 9.9;
  EXPECT_FALSE(rule.matches(h));
  h.time_s = 10.0;
  EXPECT_TRUE(rule.matches(h));
  h.time_s = 20.0;  // stop is exclusive
  EXPECT_FALSE(rule.matches(h));
}

TEST(FaultInjection, DropRuleSuppressesDeliveryButCountsAsPublished) {
  mw::Bus bus;
  mw::FaultPlan plan;
  mw::FaultRule rule;
  rule.topic_prefix = "lossy";
  rule.drop_probability = 1.0;
  plan.rules.push_back(rule);
  mw::FaultInjector injector(plan);
  auto policy = bus.add_delivery_policy(&injector);

  int delivered = 0;
  auto sub = bus.subscribe<int>(
      "lossy", [&](const mw::MessageHeader&, const int&) { ++delivered; });
  int safe = 0;
  auto sub2 = bus.subscribe<int>(
      "safe", [&](const mw::MessageHeader&, const int&) { ++safe; });
  bus.publish("lossy", 1, "n", 0.0);
  bus.publish("safe", 2, "n", 0.0);
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(safe, 1);
  // Accepted by the transport, lost on the link: still "published".
  EXPECT_EQ(bus.messages_published(), 2u);
  EXPECT_EQ(bus.faults_dropped(), 1u);
  EXPECT_EQ(bus.journal().size(), 2u);  // the journal records the attempt
}

TEST(FaultInjection, DelayedMessageArrivesAfterNDrains) {
  mw::Bus bus;
  mw::FaultPlan plan;
  mw::FaultRule rule;
  rule.delay_probability = 1.0;
  rule.delay_steps = 2;
  plan.rules.push_back(rule);
  mw::FaultInjector injector(plan);
  auto policy = bus.add_delivery_policy(&injector);

  std::vector<int> received;
  auto sub = bus.subscribe<int>(
      "t", [&](const mw::MessageHeader&, const int& v) { received.push_back(v); });
  bus.publish("t", 7, "n", 0.0);
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(bus.delayed_pending(), 1u);
  EXPECT_EQ(bus.drain_delayed(), 0u);  // one step down, one to go
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(bus.drain_delayed(), 1u);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], 7);
  EXPECT_EQ(bus.delayed_pending(), 0u);
  EXPECT_EQ(bus.faults_delayed(), 1u);
}

TEST(FaultInjection, DuplicateDeliversTwice) {
  mw::Bus bus;
  mw::FaultPlan plan;
  mw::FaultRule rule;
  rule.duplicate_probability = 1.0;
  plan.rules.push_back(rule);
  mw::FaultInjector injector(plan);
  auto policy = bus.add_delivery_policy(&injector);

  int delivered = 0;
  auto sub = bus.subscribe<int>(
      "t", [&](const mw::MessageHeader&, const int&) { ++delivered; });
  bus.publish("t", 1, "n", 0.0);
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(bus.faults_duplicated(), 1u);
  EXPECT_EQ(bus.messages_published(), 1u);  // one publication, two copies
}

TEST(FaultInjection, ReorderedDelayedMessageOvertakesEarlierOne) {
  mw::Bus bus;

  // Handwritten policy: delay the first message plainly, the second with
  // reorder, letting both mature on the same drain.
  class Script : public mw::DeliveryPolicy {
   public:
    mw::FaultDecision decide(const mw::MessageHeader&) override {
      mw::FaultDecision d;
      d.delay_steps = 1;
      d.reorder = calls_++ > 0;
      return d;
    }

   private:
    int calls_ = 0;
  };
  Script script;
  auto policy = bus.add_delivery_policy(&script);

  std::vector<int> received;
  auto sub = bus.subscribe<int>(
      "t", [&](const mw::MessageHeader&, const int& v) { received.push_back(v); });
  bus.publish("t", 1, "n", 0.0);
  bus.publish("t", 2, "n", 0.1);
  EXPECT_EQ(bus.drain_delayed(), 2u);
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0], 2);  // the reordered message jumped the queue
  EXPECT_EQ(received[1], 1);
}

TEST(FaultInjection, SameSeedReproducesDecisions) {
  mw::FaultPlan plan;
  plan.seed = 4242;
  mw::FaultRule rule;
  rule.drop_probability = 0.3;
  rule.delay_probability = 0.3;
  rule.duplicate_probability = 0.3;
  plan.rules.push_back(rule);

  const auto run = [&plan] {
    mw::FaultInjector injector(plan);
    std::vector<std::string> decisions;
    for (int i = 0; i < 200; ++i) {
      mw::MessageHeader h;
      h.topic = "t";
      h.time_s = i;
      const auto d = injector.decide(h);
      decisions.push_back(std::to_string(d.drop) + ":" +
                          std::to_string(d.delay_steps) + ":" +
                          std::to_string(d.duplicates));
    }
    return decisions;
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultInjection, UnmatchedTrafficConsumesNoRandomness) {
  // Determinism contract: rule-free topics must not advance the fault
  // stream, so adding chatter on other topics never shifts the faults.
  mw::FaultPlan plan;
  plan.seed = 7;
  mw::FaultRule rule;
  rule.topic_prefix = "watched";
  rule.drop_probability = 0.5;
  plan.rules.push_back(rule);

  const auto run = [&plan](bool with_chatter) {
    mw::FaultInjector injector(plan);
    std::vector<bool> drops;
    for (int i = 0; i < 100; ++i) {
      if (with_chatter) {
        // The header holds a view; the owning string must outlive decide().
        const std::string noise_topic = "unwatched/" + std::to_string(i);
        mw::MessageHeader noise;
        noise.topic = noise_topic;
        injector.decide(noise);
      }
      mw::MessageHeader h;
      h.topic = "watched";
      drops.push_back(injector.decide(h).drop);
    }
    return drops;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(FaultInjection, ReleasingPolicyStopsFaulting) {
  mw::Bus bus;
  mw::FaultPlan plan;
  mw::FaultRule rule;
  rule.drop_probability = 1.0;
  plan.rules.push_back(rule);
  mw::FaultInjector injector(plan);
  auto policy = bus.add_delivery_policy(&injector);

  int delivered = 0;
  auto sub = bus.subscribe<int>(
      "t", [&](const mw::MessageHeader&, const int&) { ++delivered; });
  bus.publish("t", 1, "n", 0.0);
  EXPECT_EQ(delivered, 0);
  policy.reset();
  bus.publish("t", 2, "n", 1.0);
  EXPECT_EQ(delivered, 1);
  EXPECT_THROW(bus.add_delivery_policy(nullptr), std::invalid_argument);
}

TEST(FaultInjection, FaultCountersExportedPerTopic) {
  mw::Bus bus;
  sesame::obs::MetricsRegistry reg;
  bus.set_metrics(&reg);
  mw::FaultPlan plan;
  mw::FaultRule drop_rule;
  drop_rule.topic_prefix = "a";
  drop_rule.drop_probability = 1.0;
  mw::FaultRule dup_rule;
  dup_rule.topic_prefix = "b";
  dup_rule.duplicate_probability = 1.0;
  plan.rules = {drop_rule, dup_rule};
  mw::FaultInjector injector(plan);
  auto policy = bus.add_delivery_policy(&injector);

  auto sub = bus.subscribe<int>("b", [](const mw::MessageHeader&, const int&) {});
  bus.publish("a", 1, "n", 0.0);
  bus.publish("b", 2, "n", 0.0);
  EXPECT_DOUBLE_EQ(
      reg.counter("sesame.mw.fault_dropped_total", {{"topic", "a"}}).value(),
      1.0);
  EXPECT_DOUBLE_EQ(
      reg.counter("sesame.mw.fault_duplicated_total", {{"topic", "b"}}).value(),
      1.0);
  EXPECT_DOUBLE_EQ(
      reg.counter("sesame.mw.fault_delayed_total", {{"topic", "a"}}).value(),
      0.0);
}

TEST(FaultInjection, TelemetryStressPlanIsValid) {
  const auto plan = mw::FaultPlan::telemetry_stress();
  ASSERT_FALSE(plan.rules.empty());
  for (const auto& rule : plan.rules) EXPECT_NO_THROW(rule.validate());
  mw::MessageHeader h;
  h.topic = "uav/uav1/telemetry";
  EXPECT_TRUE(plan.rules[0].matches(h));
}

TEST(Bus, ClearDelayedDiscardsPendingDeliveries) {
  mw::Bus bus;
  mw::FaultPlan plan;
  mw::FaultRule rule;
  rule.delay_probability = 1.0;
  rule.delay_steps = 3;
  plan.rules.push_back(rule);
  mw::FaultInjector injector(plan);
  auto policy = bus.add_delivery_policy(&injector);

  int delivered = 0;
  auto sub = bus.subscribe<int>(
      "t", [&](const mw::MessageHeader&, const int&) { ++delivered; });
  bus.publish("t", 1, "n", 0.0);
  bus.publish("t", 2, "n", 0.0);
  EXPECT_EQ(bus.delayed_pending(), 2u);
  EXPECT_EQ(bus.clear_delayed(), 2u);
  EXPECT_EQ(bus.delayed_pending(), 0u);
  for (int i = 0; i < 5; ++i) bus.drain_delayed();
  EXPECT_EQ(delivered, 0);  // discarded, not delivered late
  // Discards are not fault drops: the counter reflects link faults only.
  EXPECT_EQ(bus.faults_dropped(), 0u);
}

TEST(Bus, ClearDelayedBySourceDropsOnlyThatSender) {
  // Mid-run vehicle removal: the removed vehicle's in-flight (delayed)
  // messages must be drained without touching other senders' deliveries.
  mw::Bus bus;
  mw::FaultPlan plan;
  mw::FaultRule rule;
  rule.delay_probability = 1.0;
  rule.delay_steps = 1;
  plan.rules.push_back(rule);
  mw::FaultInjector injector(plan);
  auto policy = bus.add_delivery_policy(&injector);

  std::vector<std::string> delivered;
  auto sub = bus.subscribe<int>(
      "t", [&](const mw::MessageHeader& h, const int&) {
        delivered.emplace_back(h.source);
      });
  bus.publish("t", 1, "uav1", 0.0);
  bus.publish("t", 2, "uav2", 0.0);
  bus.publish("t", 3, "uav1", 0.0);
  EXPECT_EQ(bus.delayed_pending(), 3u);

  EXPECT_EQ(bus.clear_delayed(bus.intern_source("uav1")), 2u);
  EXPECT_EQ(bus.delayed_pending(), 1u);
  // A source with nothing pending clears nothing.
  EXPECT_EQ(bus.clear_delayed(bus.intern_source("uav3")), 0u);

  bus.drain_delayed();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], "uav2");
}

// Regression for the cross-run replay bug: without clear_delayed() between
// runs, a reused bus delivered run 1's delayed messages into run 2's
// freshly subscribed handlers.
TEST(Bus, ReusedBusStartsSecondRunClean) {
  mw::Bus bus;
  mw::FaultPlan plan;
  mw::FaultRule rule;
  rule.delay_probability = 1.0;
  rule.delay_steps = 2;
  plan.rules.push_back(rule);
  mw::FaultInjector injector(plan);
  auto policy = bus.add_delivery_policy(&injector);

  // Run 1: publishes traffic that is still in flight when the run ends.
  std::vector<int> run1_received;
  {
    auto sub = bus.subscribe<int>("uav/uav1/telemetry",
                                  [&](const mw::MessageHeader&, const int& v) {
                                    run1_received.push_back(v);
                                  });
    bus.publish("uav/uav1/telemetry", 11, "uav1", 0.0);
    bus.drain_delayed();  // one step: message still one drain away
  }
  EXPECT_TRUE(run1_received.empty());
  EXPECT_EQ(bus.delayed_pending(), 1u);

  // Between runs: the reset the World performs on reuse/teardown.
  bus.clear_delayed();
  bus.clear_journal();

  // Run 2: a fresh subscriber must never see run 1's in-flight message.
  std::vector<int> run2_received;
  auto sub = bus.subscribe<int>("uav/uav1/telemetry",
                                [&](const mw::MessageHeader&, const int& v) {
                                  run2_received.push_back(v);
                                });
  for (int i = 0; i < 5; ++i) bus.drain_delayed();
  EXPECT_TRUE(run2_received.empty());
  bus.publish("uav/uav1/telemetry", 22, "uav1", 10.0);
  bus.drain_delayed();
  bus.drain_delayed();
  ASSERT_EQ(run2_received.size(), 1u);
  EXPECT_EQ(run2_received[0], 22);  // run 2 traffic only
}

TEST(BusJournal, RingBufferKeepsNewestAndCountsDrops) {
  mw::Bus bus;
  bus.set_journal_capacity(4);
  for (int i = 0; i < 10; ++i) {
    bus.publish("t" + std::to_string(i), i, "src", static_cast<double>(i));
  }
  const auto entries = bus.journal();
  ASSERT_EQ(entries.size(), 4u);
  // The ring keeps the newest entries in publication order.
  EXPECT_EQ(entries[0].header.topic, "t6");
  EXPECT_EQ(entries[1].header.topic, "t7");
  EXPECT_EQ(entries[2].header.topic, "t8");
  EXPECT_EQ(entries[3].header.topic, "t9");
  EXPECT_EQ(bus.journal_dropped(), 6u);
}

TEST(BusJournal, ClearResetsRingAndDropCounter) {
  mw::Bus bus;
  bus.set_journal_capacity(2);
  for (int i = 0; i < 5; ++i) bus.publish("t", i, "src", 0.0);
  EXPECT_EQ(bus.journal_dropped(), 3u);
  bus.clear_journal();
  EXPECT_TRUE(bus.journal().empty());
  EXPECT_EQ(bus.journal_dropped(), 0u);
  bus.publish("t", 9, "src", 1.0);
  ASSERT_EQ(bus.journal().size(), 1u);
  EXPECT_EQ(bus.journal_dropped(), 0u);
}

TEST(BusJournal, ShrinkingCapacityKeepsNewestEntries) {
  mw::Bus bus;
  for (int i = 0; i < 6; ++i) {
    bus.publish("t" + std::to_string(i), i, "src", 0.0);
  }
  bus.set_journal_capacity(3);
  const auto entries = bus.journal();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].header.topic, "t3");
  EXPECT_EQ(entries[2].header.topic, "t5");
}

TEST(Bus, DeliveryOrderSurvivesUnsubscribe) {
  // The documented guarantee: subscribers receive messages in subscription
  // order, and unsubscribing one must not reorder the survivors (ordered
  // compaction, not swap-and-pop).
  mw::Bus bus;
  std::vector<std::string> order;
  auto s1 = bus.subscribe<int>(
      "t", [&](const mw::MessageHeader&, const int&) { order.push_back("s1"); });
  auto s2 = bus.subscribe<int>(
      "t", [&](const mw::MessageHeader&, const int&) { order.push_back("s2"); });
  auto s3 = bus.subscribe<int>(
      "t", [&](const mw::MessageHeader&, const int&) { order.push_back("s3"); });
  auto s4 = bus.subscribe<int>(
      "t", [&](const mw::MessageHeader&, const int&) { order.push_back("s4"); });
  bus.publish("t", 0, "n", 0.0);
  ASSERT_EQ(order, (std::vector<std::string>{"s1", "s2", "s3", "s4"}));

  order.clear();
  s2.reset();  // drop a middle subscriber
  bus.publish("t", 1, "n", 1.0);
  EXPECT_EQ(order, (std::vector<std::string>{"s1", "s3", "s4"}));

  order.clear();
  auto s5 = bus.subscribe<int>(
      "t", [&](const mw::MessageHeader&, const int&) { order.push_back("s5"); });
  bus.publish("t", 2, "n", 2.0);
  // New subscriptions append after the survivors, in their original order.
  EXPECT_EQ(order, (std::vector<std::string>{"s1", "s3", "s4", "s5"}));
}
