// Golden-journal regression test for the bus hot path.
//
// Runs a fixed, fully seeded "faulty mission" at the bus level — telemetry
// traffic through a FaultInjector (drop / delay / duplicate / reorder), an
// ACL-restricted command topic probed by an attacker, and subscriber churn
// mid-run — and digests everything observable about it: the journal, the
// exact delivery order each subscriber saw, the fault counters, and the
// deterministic slice of the metrics snapshot.
//
// The expected constants below were recorded on the string-keyed bus
// before the topic-interning optimisation (PR "faster-than-real-time hot
// path"). They pin the externally observable semantics of the publish →
// journal → taps → ACL → fault-policy → delivery pipeline: any change to
// delivery order, fault realization, ACL accounting, or journal contents
// shows up as a digest mismatch here. An optimisation must reproduce them
// bit for bit.
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "sesame/mw/bus.hpp"
#include "sesame/mw/fault_plan.hpp"
#include "sesame/obs/metrics.hpp"

namespace mw = sesame::mw;
namespace obs = sesame::obs;

namespace {

/// FNV-1a 64-bit, fed field-by-field with length-prefixed strings so the
/// digest is unambiguous (no separator collisions).
struct Digest {
  std::uint64_t h = 0xcbf29ce484222325ULL;

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ULL;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

/// Everything observable about the golden run.
struct GoldenRun {
  std::uint64_t journal_digest = 0;
  std::uint64_t delivery_digest = 0;
  std::uint64_t metrics_digest = 0;
  std::size_t journal_size = 0;
  std::size_t deliveries = 0;
  std::uint64_t published = 0;
  std::uint64_t rejected = 0;
  std::uint64_t dropped = 0;
  std::uint64_t delayed = 0;
  std::uint64_t duplicated = 0;
};

GoldenRun run_golden_mission() {
  mw::Bus bus;
  obs::MetricsRegistry metrics;
  bus.set_metrics(&metrics);

  // The CI stress plan: seed 1337, drop 0.10 / delay 0.20 (2 drains,
  // reordering) / duplicate 0.10 on every */telemetry topic.
  mw::FaultInjector injector(mw::FaultPlan::telemetry_stress());
  auto policy = bus.add_delivery_policy(&injector);

  // SROS2-style mitigation on the command topic; the attacker's
  // publications below must be rejected (and counted) before delivery.
  bus.restrict_publisher("gcs/commands", "gcs");

  Digest delivery;
  std::size_t delivered = 0;
  const auto telemetry_recorder = [&](const char* who) {
    return [&delivery, &delivered, who](const mw::MessageHeader& h,
                                        const double& v) {
      delivery.str(who);
      delivery.str(h.topic);
      delivery.str(h.source);
      delivery.u64(h.seq);
      delivery.f64(h.time_s);
      delivery.f64(v);
      ++delivered;
    };
  };
  auto sub_a = bus.subscribe<double>("uav/uav1/telemetry",
                                     telemetry_recorder("A"));
  auto sub_b = bus.subscribe<double>("uav/uav1/telemetry",
                                     telemetry_recorder("B"));
  auto sub_c = bus.subscribe<double>("uav/uav2/telemetry",
                                     telemetry_recorder("C"));
  auto sub_g = bus.subscribe<int>(
      "gcs/commands",
      [&delivery, &delivered](const mw::MessageHeader& h, const int& v) {
        delivery.str("G");
        delivery.str(h.topic);
        delivery.str(h.source);
        delivery.u64(h.seq);
        delivery.f64(h.time_s);
        delivery.u64(static_cast<std::uint64_t>(v));
        ++delivered;
      });
  mw::Subscription sub_d;  // joins late, at step 40

  for (int step = 0; step < 60; ++step) {
    const double t = 0.5 * step;
    bus.drain_delayed();
    bus.publish("uav/uav1/telemetry", 100.0 + step, "uav1", t);
    bus.publish("uav/uav2/telemetry", 200.0 + step, "uav2", t);
    if (step % 10 == 3) bus.publish("gcs/commands", step, "gcs", t);
    if (step % 10 == 7) bus.publish("gcs/commands", step, "attacker", t);
    if (step == 30) {
      // Unsubscribe the middle uav1 subscriber: A must keep receiving
      // before any later-registered subscriber (delivery order follows
      // subscription order, preserved across unsubscribes).
      sub_b.reset();
    }
    if (step == 40) {
      sub_d = bus.subscribe<double>("uav/uav1/telemetry",
                                    telemetry_recorder("D"));
    }
  }
  // Flush in-flight delayed messages (longest hold in the plan: 2 drains).
  for (int i = 0; i < 4; ++i) bus.drain_delayed();

  GoldenRun run;
  Digest journal;
  for (const auto& entry : bus.journal()) {
    journal.u64(entry.header.seq);
    journal.f64(entry.header.time_s);
    journal.str(entry.header.source);
    journal.str(entry.header.topic);
    journal.str(entry.type_name);
  }
  Digest metric_digest;
  const obs::MetricsSnapshot snap = metrics.snapshot();
  for (const auto& s : snap.samples) {
    // Wall-clock series (latency histograms) are not deterministic; every
    // other bus metric is a pure function of the seeded run.
    if (s.name.find("_seconds") != std::string::npos) continue;
    metric_digest.str(s.name);
    for (const auto& [k, v] : s.labels) {
      metric_digest.str(k);
      metric_digest.str(v);
    }
    metric_digest.u64(static_cast<std::uint64_t>(s.kind));
    metric_digest.f64(s.value);
    metric_digest.u64(s.observations);
  }

  run.journal_digest = journal.h;
  run.delivery_digest = delivery.h;
  run.metrics_digest = metric_digest.h;
  run.journal_size = bus.journal().size();
  run.deliveries = delivered;
  run.published = bus.messages_published();
  run.rejected = bus.rejected_publications();
  run.dropped = bus.faults_dropped();
  run.delayed = bus.faults_delayed();
  run.duplicated = bus.faults_duplicated();
  return run;
}

}  // namespace

TEST(GoldenJournal, SeededFaultyMissionReproducesRecordedSemantics) {
  const GoldenRun run = run_golden_mission();

  // Recorded on the pre-interning bus (see file header). Sixty steps,
  // two telemetry streams, six gcs commands accepted, six attacker
  // publications rejected by the ACL.
  EXPECT_EQ(run.journal_size, 132u);
  EXPECT_EQ(run.published, 126u);
  EXPECT_EQ(run.rejected, 6u);
  EXPECT_EQ(run.dropped, 13u);
  EXPECT_EQ(run.delayed, 17u);
  EXPECT_EQ(run.duplicated, 17u);
  EXPECT_EQ(run.deliveries, 183u);
  EXPECT_EQ(run.journal_digest, 516674654540931889ULL);
  EXPECT_EQ(run.delivery_digest, 12660038593612396153ULL);
  EXPECT_EQ(run.metrics_digest, 1728166694832778573ULL);
}

TEST(GoldenJournal, DigestIsStableAcrossRepeatedRuns) {
  const GoldenRun a = run_golden_mission();
  const GoldenRun b = run_golden_mission();
  EXPECT_EQ(a.journal_digest, b.journal_digest);
  EXPECT_EQ(a.delivery_digest, b.delivery_digest);
  EXPECT_EQ(a.metrics_digest, b.metrics_digest);
}
