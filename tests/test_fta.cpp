// Tests for the fault-tree engine: gate algebra, complex basic events,
// minimal cut sets, and importance measures.
#include <cmath>

#include <gtest/gtest.h>

#include "sesame/fta/fault_tree.hpp"
#include "sesame/markov/ctmc.hpp"
#include "sesame/mathx/rng.hpp"

namespace fta = sesame::fta;
namespace mk = sesame::markov;

TEST(BasicEvent, ConstantProbability) {
  auto e = fta::make_basic("e", 0.3);
  EXPECT_DOUBLE_EQ(e->probability(0.0), 0.3);
  EXPECT_DOUBLE_EQ(e->probability(100.0), 0.3);
  EXPECT_THROW(fta::make_basic("bad", 1.5), std::invalid_argument);
  EXPECT_THROW(fta::make_basic("bad", -0.1), std::invalid_argument);
}

TEST(ExponentialEvent, MatchesClosedForm) {
  auto e = fta::make_exponential("e", 0.001);
  EXPECT_DOUBLE_EQ(e->probability(0.0), 0.0);
  EXPECT_NEAR(e->probability(1000.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_THROW(fta::make_exponential("bad", -1.0), std::invalid_argument);
}

TEST(ComplexEvent, DelegatesToModel) {
  auto e = fta::make_complex("markov", [](double t) { return t / 100.0; });
  EXPECT_DOUBLE_EQ(e->probability(50.0), 0.5);
  EXPECT_THROW(fta::make_complex("null", nullptr), std::invalid_argument);
}

TEST(ComplexEvent, BackedByCtmc) {
  mk::CtmcBuilder b;
  const auto up = b.add_state("up");
  const auto down = b.add_state("down");
  b.add_transition(up, down, 0.01);
  auto chain = std::make_shared<mk::Ctmc>(b.build());
  auto e = fta::make_complex("battery", [chain](double t) {
    return chain->probability_in({1.0, 0.0}, t, {1});
  });
  EXPECT_NEAR(e->probability(100.0), 1.0 - std::exp(-1.0), 1e-9);
}

TEST(AndGate, MultipliesProbabilities) {
  auto g = fta::make_and(
      "g", {fta::make_basic("a", 0.5), fta::make_basic("b", 0.4)});
  EXPECT_NEAR(g->probability(0.0), 0.2, 1e-12);
}

TEST(OrGate, InclusionExclusion) {
  auto g = fta::make_or(
      "g", {fta::make_basic("a", 0.5), fta::make_basic("b", 0.4)});
  EXPECT_NEAR(g->probability(0.0), 0.7, 1e-12);
}

TEST(Gates, RejectEmptyChildren) {
  EXPECT_THROW(fta::make_and("g", {}), std::invalid_argument);
  EXPECT_THROW(fta::make_or("g", {}), std::invalid_argument);
}

TEST(KofN, TwoOfThreeIdentical) {
  const double p = 0.1;
  auto g = fta::make_k_of_n("g", 2,
                            {fta::make_basic("a", p), fta::make_basic("b", p),
                             fta::make_basic("c", p)});
  // P(>=2 of 3) = 3p^2(1-p) + p^3
  EXPECT_NEAR(g->probability(0.0), 3 * p * p * (1 - p) + p * p * p, 1e-12);
}

TEST(KofN, NonIdenticalChildren) {
  auto g = fta::make_k_of_n("g", 2,
                            {fta::make_basic("a", 0.1), fta::make_basic("b", 0.2),
                             fta::make_basic("c", 0.3)});
  // Direct enumeration: ab(1-c) + a(1-b)c + (1-a)bc + abc
  const double expected = 0.1 * 0.2 * 0.7 + 0.1 * 0.8 * 0.3 + 0.9 * 0.2 * 0.3 +
                          0.1 * 0.2 * 0.3;
  EXPECT_NEAR(g->probability(0.0), expected, 1e-12);
}

TEST(KofN, BoundaryKValues) {
  auto a = fta::make_basic("a", 0.2);
  auto b = fta::make_basic("b", 0.5);
  // k = 1 behaves as OR, k = N behaves as AND.
  auto or_like = fta::make_k_of_n("or", 1, {a, b});
  auto and_like = fta::make_k_of_n("and", 2, {a, b});
  EXPECT_NEAR(or_like->probability(0.0), 1.0 - 0.8 * 0.5, 1e-12);
  EXPECT_NEAR(and_like->probability(0.0), 0.1, 1e-12);
  EXPECT_THROW(fta::make_k_of_n("bad", 0, {a, b}), std::invalid_argument);
  EXPECT_THROW(fta::make_k_of_n("bad", 3, {a, b}), std::invalid_argument);
}

TEST(FaultTree, BasicEventEnumeration) {
  auto tree = fta::FaultTree(
      "t", fta::make_or("top", {fta::make_basic("a", 0.1),
                                fta::make_and("g", {fta::make_basic("b", 0.1),
                                                    fta::make_basic("c", 0.1)})}));
  const auto events = tree.basic_events();
  EXPECT_EQ(events.size(), 3u);
  EXPECT_TRUE(events.count("a"));
  EXPECT_TRUE(events.count("b"));
  EXPECT_TRUE(events.count("c"));
}

TEST(FaultTree, MinimalCutSetsOrOfAnd) {
  auto top = fta::make_or(
      "top", {fta::make_basic("a", 0.1),
              fta::make_and("g", {fta::make_basic("b", 0.1),
                                  fta::make_basic("c", 0.1)})});
  fta::FaultTree tree("t", top);
  const auto cuts = tree.minimal_cut_sets();
  ASSERT_EQ(cuts.size(), 2u);
  EXPECT_EQ(cuts[0], (fta::CutSet{"a"}));
  EXPECT_EQ(cuts[1], (fta::CutSet{"b", "c"}));
}

TEST(FaultTree, AbsorptionRemovesSupersets) {
  // top = a OR (a AND b) -> only {a} is minimal.
  auto a = fta::make_basic("a", 0.1);
  auto top = fta::make_or("top", {a, fta::make_and("g", {a, fta::make_basic("b", 0.1)})});
  fta::FaultTree tree("t", top);
  const auto cuts = tree.minimal_cut_sets();
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0], (fta::CutSet{"a"}));
}

TEST(FaultTree, KofNCutSets) {
  auto g = fta::make_k_of_n("g", 2,
                            {fta::make_basic("a", 0.1), fta::make_basic("b", 0.1),
                             fta::make_basic("c", 0.1)});
  fta::FaultTree tree("t", g);
  const auto cuts = tree.minimal_cut_sets();
  ASSERT_EQ(cuts.size(), 3u);  // {a,b}, {a,c}, {b,c}
  for (const auto& cs : cuts) EXPECT_EQ(cs.size(), 2u);
}

TEST(FaultTree, BirnbaumImportance) {
  // top = a OR b with p_a=0.1, p_b=0.2.
  auto tree = fta::FaultTree(
      "t", fta::make_or("top", {fta::make_basic("a", 0.1),
                                fta::make_basic("b", 0.2)}));
  // I_B(a) = P(top|a=1) - P(top|a=0) = 1 - 0.2 = 0.8
  EXPECT_NEAR(tree.birnbaum_importance("a", 0.0), 0.8, 1e-12);
  EXPECT_NEAR(tree.birnbaum_importance("b", 0.0), 0.9, 1e-12);
  EXPECT_THROW(tree.birnbaum_importance("zz", 0.0), std::invalid_argument);
}

TEST(FaultTree, FussellVeselyImportance) {
  auto tree = fta::FaultTree(
      "t", fta::make_or("top", {fta::make_basic("a", 0.1),
                                fta::make_basic("b", 0.2)}));
  const double p_top = 1.0 - 0.9 * 0.8;
  EXPECT_NEAR(tree.fussell_vesely_importance("a", 0.0), (p_top - 0.2) / p_top,
              1e-12);
  EXPECT_THROW(tree.fussell_vesely_importance("zz", 0.0), std::invalid_argument);
}

TEST(FaultTree, NullTopThrows) {
  EXPECT_THROW(fta::FaultTree("t", nullptr), std::invalid_argument);
}

// Property: gate probabilities stay within [0,1] and OR >= max child,
// AND <= min child, for random trees.
TEST(FaultTreeProperty, GateBounds) {
  sesame::mathx::Rng rng(53);
  for (int trial = 0; trial < 50; ++trial) {
    const double pa = rng.uniform();
    const double pb = rng.uniform();
    const double pc = rng.uniform();
    auto a = fta::make_basic("a", pa);
    auto b = fta::make_basic("b", pb);
    auto c = fta::make_basic("c", pc);
    const double por = fta::make_or("or", {a, b, c})->probability(0.0);
    const double pand = fta::make_and("and", {a, b, c})->probability(0.0);
    const double pk = fta::make_k_of_n("k", 2, {a, b, c})->probability(0.0);
    const double lo = std::min({pa, pb, pc});
    const double hi = std::max({pa, pb, pc});
    EXPECT_GE(por, hi - 1e-12);
    EXPECT_LE(pand, lo + 1e-12);
    EXPECT_GE(pk, pand - 1e-12);
    EXPECT_LE(pk, por + 1e-12);
    EXPECT_GE(pk, 0.0);
    EXPECT_LE(pk, 1.0);
  }
}

// Property: k-of-N via DP matches brute-force enumeration.
TEST(FaultTreeProperty, KofNMatchesEnumeration) {
  sesame::mathx::Rng rng(59);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.uniform_index(4);  // 2..5 children
    const std::size_t k = 1 + rng.uniform_index(n);
    std::vector<double> ps;
    std::vector<fta::NodePtr> children;
    for (std::size_t i = 0; i < n; ++i) {
      ps.push_back(rng.uniform());
      children.push_back(fta::make_basic("e" + std::to_string(i), ps.back()));
    }
    const double got = fta::make_k_of_n("g", k, children)->probability(0.0);
    double expected = 0.0;
    for (std::size_t mask = 0; mask < (1u << n); ++mask) {
      std::size_t bits = 0;
      double p = 1.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) {
          p *= ps[i];
          ++bits;
        } else {
          p *= 1.0 - ps[i];
        }
      }
      if (bits >= k) expected += p;
    }
    EXPECT_NEAR(got, expected, 1e-10) << "n=" << n << " k=" << k;
  }
}

TEST(RankImportance, OrdersByBirnbaumDescending) {
  // top = a OR b OR c: for an OR gate, Birnbaum importance of e_i is
  // prod_{j != i}(1 - p_j) — the event whose *peers* are least likely has
  // the highest Birnbaum importance, so c (peers a=0.1, b=0.3) ranks first.
  auto tree = fta::FaultTree(
      "t", fta::make_or("top", {fta::make_basic("a", 0.1),
                                fta::make_basic("b", 0.3),
                                fta::make_basic("c", 0.5)}));
  const auto ranking = fta::rank_importance(tree, 0.0);
  ASSERT_EQ(ranking.size(), 3u);
  EXPECT_EQ(ranking[0].event, "c");
  EXPECT_EQ(ranking[2].event, "a");
  for (std::size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_GE(ranking[i - 1].birnbaum, ranking[i].birnbaum);
  }
  // FV is also higher for the more likely event here: c again.
  EXPECT_GT(ranking[0].fussell_vesely, ranking[2].fussell_vesely);
}

TEST(RankImportance, DeterministicTieBreakByName) {
  auto tree = fta::FaultTree(
      "t", fta::make_or("top", {fta::make_basic("z", 0.2),
                                fta::make_basic("a", 0.2)}));
  const auto ranking = fta::rank_importance(tree, 0.0);
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].event, "a");  // equal Birnbaum -> name order
}
