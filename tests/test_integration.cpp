// Cross-module integration tests: full pipelines spanning the simulator,
// middleware, EDDI monitors, ConSert network, and platform — the paths the
// paper's three evaluation scenarios exercise end-to-end.
#include <gtest/gtest.h>

#include "sesame/eddi/uav_eddi.hpp"
#include "sesame/localization/collaborative.hpp"
#include "sesame/platform/mission_runner.hpp"
#include "sesame/security/attack_tree.hpp"
#include "sesame/security/ids.hpp"
#include "sesame/security/security_eddi.hpp"

namespace {

using namespace sesame;

const geo::GeoPoint kOrigin{35.1856, 33.3823, 0.0};

// ---------------------------------------------------------------------------
// Scenario: Fig. 6 + Fig. 7 pipeline — injection, detection, mitigation,
// GPS-free landing — wired exactly as the benches do it.
// ---------------------------------------------------------------------------

TEST(SpoofingPipeline, DetectionThenCollaborativeLanding) {
  sim::World world(kOrigin, 77);
  for (const char* name : {"victim", "assist1", "assist2"}) {
    sim::UavConfig cfg;
    cfg.name = name;
    world.add_uav(cfg, kOrigin);
  }
  sim::Uav& victim = world.uav_by_name("victim");
  victim.add_waypoint({0.0, 500.0, 30.0});
  world.uav_by_name("assist1").add_waypoint({40.0, 60.0, 30.0});
  world.uav_by_name("assist2").add_waypoint({-40.0, 60.0, 30.0});
  for (std::size_t i = 0; i < world.num_uavs(); ++i) {
    world.uav(i).command_takeoff();
  }

  security::IntrusionDetectionSystem ids(world.bus());
  ids.authorize(sim::position_fix_topic("victim"), "collaborative_localization");
  security::SecurityEddi eddi(world.bus(),
                              security::make_spoofing_attack_tree());
  double detection_time = -1.0;
  eddi.on_event([&](const security::SecurityEvent& ev) {
    if (detection_time < 0.0) detection_time = ev.time_s;
  });

  // Phase 1: attack at t=30, detection expected on the first bogus message.
  double offset = 0.0;
  for (int t = 0; t < 60; ++t) {
    world.step(1.0);
    if (t >= 30) {
      offset += 2.0;
      world.bus().publish(sim::position_fix_topic("victim"),
                          geo::destination(victim.true_geo(), 90.0, offset),
                          "attacker", world.time_s());
    }
  }
  ASSERT_TRUE(eddi.attack_detected());
  EXPECT_NEAR(detection_time, 31.0, 1.5);
  // The falsified fixes really steered the vehicle (Fig. 6 deviation).
  EXPECT_LT(victim.true_position().east_m, -10.0);

  // Phase 2: mitigation — GPS distrusted, CL guides to the pad (Fig. 7).
  victim.gps().set_disabled(true);
  localization::ObservationModel model;
  model.detection_range_m = 700.0;
  model.detection_probability = 1.0;
  localization::CollaborativeLocalizer cl(world, "victim",
                                          {"assist1", "assist2"}, model);
  localization::SafeLandingGuide guide(world, cl, {10.0, 10.0, 30.0});
  for (int t = 0; t < 400 && !guide.landed(); ++t) {
    world.step(1.0);
    guide.step();
  }
  ASSERT_TRUE(guide.landed());
  EXPECT_LT(guide.true_distance_to_target_m(), 8.0);
  EXPECT_FALSE(victim.gps().read(victim.true_geo(), 1.0).has_value());
}

// ---------------------------------------------------------------------------
// Scenario: EDDI evidence feeds the ConSert network and the action follows
// the degradation sequence high-reliability -> medium -> abort.
// ---------------------------------------------------------------------------

TEST(EddiConsertPipeline, ReliabilityDegradationWalksActionLattice) {
  mathx::Rng rng(55);
  std::vector<std::vector<double>> reference(3);
  for (int i = 0; i < 200; ++i) {
    reference[0].push_back(rng.normal(1.0, 0.1));
    reference[1].push_back(rng.normal(0.8, 0.05));
    reference[2].push_back(rng.normal(25.0, 2.0));
  }
  eddi::UavEddiConfig cfg;
  cfg.safeml.window = 8;
  cfg.reliability.medium_threshold = 0.3;
  cfg.reliability.low_threshold = 0.88;
  cfg.reliability.abort_threshold = 0.90;
  eddi::UavEddi uav_eddi("u", cfg, reference);

  conserts::ConSertNetwork net;
  conserts::add_uav_conserts(net, "u");

  auto evaluate = [&] {
    conserts::EvaluationContext ctx;
    conserts::apply_evidence(ctx, "u", uav_eddi.consert_evidence());
    return conserts::uav_action(net.evaluate(ctx), "u");
  };

  eddi::EddiInputs in;
  in.dt_s = 5.0;
  in.telemetry.battery_soc = 0.95;
  in.telemetry.battery_temp_c = 30.0;
  in.frame_features = {rng.normal(1.0, 0.1), rng.normal(0.8, 0.05),
                       rng.normal(25.0, 2.0)};
  in.comm_link_good = true;
  in.nearby_uav_available = true;
  in.vision_sensor_healthy = true;
  in.altitude_band = sinadra::AltitudeBand::kLow;

  // Healthy: continue with capacity to take over.
  for (int i = 0; i < 10; ++i) {
    in.frame_features = {rng.normal(1.0, 0.1), rng.normal(0.8, 0.05),
                         rng.normal(25.0, 2.0)};
    uav_eddi.tick(in);
  }
  EXPECT_EQ(evaluate(), conserts::UavAction::kContinueExtended);

  // Battery fault: cumulative probability climbs through the lattice.
  in.telemetry.battery_soc = 0.40;
  in.telemetry.battery_temp_c = 70.0;
  bool saw_continue = false, saw_abortish = false;
  for (int i = 0; i < 120; ++i) {
    in.frame_features = {rng.normal(1.0, 0.1), rng.normal(0.8, 0.05),
                         rng.normal(25.0, 2.0)};
    uav_eddi.tick(in);
    const auto action = evaluate();
    const auto& rel = uav_eddi.assessment().reliability;
    if (rel.level == safedrones::ReliabilityLevel::kMedium &&
        action == conserts::UavAction::kContinue) {
      saw_continue = true;
    }
    if (rel.abort_recommended) {
      saw_abortish = true;
      break;
    }
  }
  EXPECT_TRUE(saw_continue);  // medium reliability still continues (Fig. 5)
  EXPECT_TRUE(saw_abortish);  // and the 0.9 threshold eventually fires
}

// ---------------------------------------------------------------------------
// Scenario: platform managers observing a live mission over the bus.
// ---------------------------------------------------------------------------

TEST(PlatformPipeline, DatabaseTracksMissionTelemetry) {
  platform::RunnerConfig cfg;
  cfg.n_uavs = 2;
  cfg.area = {0.0, 100.0, 0.0, 100.0};
  cfg.n_persons = 2;
  cfg.max_time_s = 600.0;
  platform::MissionRunner runner(cfg);

  // Attach an external observer database before running.
  platform::DatabaseManager db(runner.world().bus());
  db.allow_client("gcs");
  for (const auto& name : runner.uav_names()) db.attach_uav(name);

  const auto result = runner.run();
  ASSERT_TRUE(result.mission_complete_time_s.has_value());

  for (const auto& name : runner.uav_names()) {
    const auto latest = db.latest("gcs", name);
    ASSERT_TRUE(latest.has_value()) << name;
    EXPECT_NEAR(latest->time_s, result.total_time_s, 1e-9);
    const auto history = db.history("gcs", name);
    EXPECT_GT(history.size(), 50u);
    // Battery is monotone non-increasing while airborne (no swaps here).
    for (std::size_t i = 1; i < history.size(); ++i) {
      EXPECT_LE(history[i].battery_soc, history[i - 1].battery_soc + 1e-9);
    }
  }
}

// ---------------------------------------------------------------------------
// Scenario: EDDI ODE export round-trips with the attached security model.
// ---------------------------------------------------------------------------

TEST(OdePipeline, FullEddiExportRoundTrips) {
  mathx::Rng rng(66);
  std::vector<std::vector<double>> reference(2);
  for (int i = 0; i < 50; ++i) {
    reference[0].push_back(rng.normal(0.0, 1.0));
    reference[1].push_back(rng.normal(5.0, 1.0));
  }
  mw::Bus bus;
  auto security = std::make_shared<security::SecurityEddi>(
      bus, security::make_spoofing_attack_tree());
  eddi::UavEddi e("uav1", {}, reference);
  e.attach_security(security);

  auto model = std::make_shared<deepknowledge::Mlp>(
      std::vector<std::size_t>{4, 6, 1}, rng);
  std::vector<std::vector<double>> train;
  for (int i = 0; i < 40; ++i) {
    train.push_back({rng.normal(), rng.normal(), rng.normal(), rng.normal()});
  }
  auto analyzer =
      std::make_shared<deepknowledge::Analyzer>(*model, train, train);
  e.attach_deepknowledge(model, analyzer, 8);

  const auto doc = e.to_ode();
  const auto& models = doc.at("models").as_array();
  EXPECT_EQ(models.size(), 5u);  // SafeDrones, SafeML, DK, SINADRA, Security
  const auto parsed = eddi::ode::parse_json(doc.to_json());
  EXPECT_EQ(parsed.to_json(), doc.to_json());
  // Technology names present.
  std::set<std::string> technologies;
  for (const auto& m : models) {
    technologies.insert(m.at("technology").as_string());
  }
  EXPECT_TRUE(technologies.count("SafeDrones"));
  EXPECT_TRUE(technologies.count("SecurityEDDI"));
}

// ---------------------------------------------------------------------------
// Scenario: altitude change propagates through perception features into
// SafeML confidence and the ConSert vision guarantee.
// ---------------------------------------------------------------------------

TEST(PerceptionPipeline, AltitudeShiftFlipsVisionGuarantee) {
  mathx::Rng rng(88);
  perception::PersonDetector detector{perception::DetectorConfig{}};
  std::vector<std::vector<double>> reference(
      perception::FrameFeatures::kNumFeatures);
  for (int i = 0; i < 300; ++i) {
    const auto v = detector.frame_features(18.0, rng).as_vector();
    for (std::size_t k = 0; k < v.size(); ++k) reference[k].push_back(v[k]);
  }
  eddi::UavEddiConfig cfg;
  cfg.safeml.window = 16;
  eddi::UavEddi e("u", cfg, reference);

  conserts::ConSertNetwork net;
  conserts::add_uav_conserts(net, "u");
  auto vision_granted = [&] {
    conserts::EvaluationContext ctx;
    conserts::apply_evidence(ctx, "u", e.consert_evidence());
    const auto eval = net.evaluate(ctx);
    return eval.grants.count(
               {conserts::uav_consert_names("u").vision_localization,
                conserts::guarantees::kVisionAvailable}) > 0;
  };

  eddi::EddiInputs in;
  in.vision_sensor_healthy = true;
  in.gps_fix_available = false;  // vision is the only candidate channel
  for (int i = 0; i < 20; ++i) {
    in.frame_features = detector.frame_features(18.0, rng).as_vector();
    e.tick(in);
  }
  EXPECT_TRUE(vision_granted());

  // Climb: features shift, SafeML confidence collapses, guarantee drops.
  for (int i = 0; i < 20; ++i) {
    in.frame_features = detector.frame_features(75.0, rng).as_vector();
    e.tick(in);
  }
  EXPECT_FALSE(vision_granted());
}

}  // namespace

// ---------------------------------------------------------------------------
// System-level determinism: two identical runs produce identical results.
// ---------------------------------------------------------------------------

TEST(Determinism, FullScenarioBitReproducible) {
  auto run_once = [] {
    platform::RunnerConfig cfg;
    cfg.n_uavs = 2;
    cfg.area = {0.0, 120.0, 0.0, 120.0};
    cfg.n_persons = 4;
    cfg.max_time_s = 400.0;
    cfg.battery_fault = platform::BatteryFaultEvent{"uav1", 50.0, 0.40, 70.0};
    cfg.seed = 4242;
    platform::MissionRunner runner(cfg);
    return runner.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.series.size(), b.series.size());
  for (const auto& [name, series_a] : a.series) {
    const auto& series_b = b.series.at(name);
    ASSERT_EQ(series_a.size(), series_b.size()) << name;
    for (std::size_t i = 0; i < series_a.size(); ++i) {
      EXPECT_EQ(series_a[i].p_fail, series_b[i].p_fail);
      EXPECT_EQ(series_a[i].soc, series_b[i].soc);
      EXPECT_EQ(series_a[i].mode, series_b[i].mode);
      EXPECT_EQ(series_a[i].sar_uncertainty, series_b[i].sar_uncertainty);
    }
  }
  EXPECT_EQ(a.mission_complete_time_s, b.mission_complete_time_s);
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.detection.persons_found, b.detection.persons_found);
  EXPECT_EQ(a.assurance_trace.size(), b.assurance_trace.size());
}

// ---------------------------------------------------------------------------
// Jamming end-to-end: watchdog -> jamming attack tree -> ConSert fallback.
// ---------------------------------------------------------------------------

#include "sesame/platform/gps_watchdog.hpp"

TEST(JammingPipeline, WatchdogTreeAndConsertFallback) {
  sim::World world(kOrigin, 33);
  for (const char* name : {"victim", "buddy"}) {
    sim::UavConfig cfg;
    cfg.name = name;
    world.add_uav(cfg, kOrigin);
  }
  sim::Uav& victim = world.uav_by_name("victim");
  victim.add_waypoint({0.0, 200.0, 30.0});
  world.uav_by_name("buddy").add_waypoint({30.0, 30.0, 30.0});
  for (std::size_t i = 0; i < world.num_uavs(); ++i) {
    world.uav(i).command_takeoff();
  }

  platform::GpsWatchdog watchdog(world.bus());
  watchdog.watch_uav("victim");
  security::SecurityEddi jam_eddi(world.bus(),
                                  security::make_jamming_attack_tree());

  world.run(15, 1.0);
  ASSERT_FALSE(jam_eddi.attack_detected());

  // Jamming starts.
  victim.gps().set_signal_lost(true);
  world.run(5, 1.0);
  ASSERT_TRUE(jam_eddi.attack_detected());

  // The ConSert fallback: no GPS evidence, but the buddy enables the
  // communication-localization guarantee -> the vehicle can continue.
  conserts::ConSertNetwork net;
  conserts::add_uav_conserts(net, "victim");
  conserts::UavEvidence e;
  e.gps_quality_good = false;  // no fix
  e.no_security_attack = true; // jamming is availability, not integrity
  e.comm_link_good = true;
  e.nearby_uav_available = true;
  e.vision_sensor_healthy = true;
  e.reliability_high = true;
  conserts::EvaluationContext ctx;
  conserts::apply_evidence(ctx, "victim", e);
  EXPECT_EQ(conserts::uav_action(net.evaluate(ctx), "victim"),
            conserts::UavAction::kContinue);

  // And the mitigation text points at collaborative localization.
  ASSERT_FALSE(jam_eddi.tree().mitigations().empty());
  EXPECT_NE(jam_eddi.tree().mitigations()[0].find("collaborative"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Motor failure mid-mission flows through telemetry into SafeDrones.
// ---------------------------------------------------------------------------

TEST(MotorFailurePipeline, DegradedPropulsionRaisesRiskButMissionFinishes) {
  platform::RunnerConfig cfg;
  cfg.n_uavs = 2;
  cfg.area = {0.0, 120.0, 0.0, 120.0};
  cfg.n_persons = 2;
  cfg.max_time_s = 600.0;
  // Make propulsion risk visible at mission scale.
  cfg.eddi.reliability.propulsion.motor_failure_rate = 2e-4;
  platform::MissionRunner runner(cfg);
  runner.world().uav_by_name("uav1").fail_motor();  // tolerated loss
  const auto result = runner.run();
  ASSERT_TRUE(result.mission_complete_time_s.has_value());
  // The degraded UAV's propulsion term dominates its healthy peer's.
  const auto& hurt = runner.uav_eddi("uav1").assessment();
  const auto& fine = runner.uav_eddi("uav2").assessment();
  EXPECT_GT(hurt.reliability.p_propulsion, fine.reliability.p_propulsion);
}

// ---------------------------------------------------------------------------
// Fault injection end-to-end: reproducibility under a fault plan, and the
// Fig. 6 security pipeline on a lossy link.
// ---------------------------------------------------------------------------

#include "sesame/mw/fault_plan.hpp"

TEST(Determinism, FaultPlanRunIsBitReproducible) {
  // Same seed + same fault plan + lossy links => identical event journal
  // and identical recorded state series, run after run.
  //
  // JournalEntry holds views into bus-owned name tables, so the journal is
  // copied into owning strings here *before* the runner (and its bus) dies.
  struct JournalRow {
    std::uint64_t seq;
    double time_s;
    std::string source;
    std::string topic;
    std::string type_name;
  };
  auto run_once = [] {
    platform::RunnerConfig cfg;
    cfg.n_uavs = 2;
    cfg.area = {0.0, 120.0, 0.0, 120.0};
    cfg.n_persons = 4;
    cfg.max_time_s = 300.0;
    cfg.seed = 4242;
    cfg.lossy_links = true;
    mw::FaultPlan plan = mw::FaultPlan::telemetry_stress();
    mw::FaultRule fix_rule;  // exercise the delay queue on the fix channel
    fix_rule.topic_suffix = "/position_fix";
    fix_rule.delay_probability = 0.5;
    fix_rule.delay_steps = 2;
    plan.rules.push_back(fix_rule);
    cfg.fault_plan = plan;
    cfg.spoofing = platform::SpoofingEvent{"uav1", 40.0, 2.0};
    platform::MissionRunner runner(cfg);
    auto result = runner.run();
    std::vector<JournalRow> rows;
    for (const auto& e : runner.world().bus().journal()) {
      rows.push_back({e.header.seq, e.header.time_s,
                      std::string(e.header.source), std::string(e.header.topic),
                      std::string(e.type_name)});
    }
    return std::make_pair(std::move(result), std::move(rows));
  };
  const auto [a, journal_a] = run_once();
  const auto [b, journal_b] = run_once();

  ASSERT_EQ(journal_a.size(), journal_b.size());
  for (std::size_t i = 0; i < journal_a.size(); ++i) {
    EXPECT_EQ(journal_a[i].seq, journal_b[i].seq);
    EXPECT_EQ(journal_a[i].time_s, journal_b[i].time_s);
    EXPECT_EQ(journal_a[i].source, journal_b[i].source);
    EXPECT_EQ(journal_a[i].topic, journal_b[i].topic);
    EXPECT_EQ(journal_a[i].type_name, journal_b[i].type_name);
  }
  ASSERT_EQ(a.series.size(), b.series.size());
  for (const auto& [name, series_a] : a.series) {
    const auto& series_b = b.series.at(name);
    ASSERT_EQ(series_a.size(), series_b.size()) << name;
    for (std::size_t i = 0; i < series_a.size(); ++i) {
      EXPECT_EQ(series_a[i].p_fail, series_b[i].p_fail);
      EXPECT_EQ(series_a[i].soc, series_b[i].soc);
      EXPECT_EQ(series_a[i].mode, series_b[i].mode);
      EXPECT_EQ(series_a[i].altitude_m, series_b[i].altitude_m);
    }
  }
  EXPECT_EQ(a.attack_detected, b.attack_detected);
  EXPECT_EQ(a.attack_detection_time_s, b.attack_detection_time_s);
  EXPECT_EQ(a.assurance_trace.size(), b.assurance_trace.size());
}

TEST(SpoofingPipeline, DetectionSurvivesTelemetryLoss) {
  // Satellite of the Fig. 6 scenario: with 10% of telemetry lost in
  // flight, the IDS still sees the counterfeit position fixes and the
  // platform still detects, mitigates, and safe-lands the victim.
  platform::RunnerConfig cfg;
  cfg.n_uavs = 2;
  cfg.area = {0.0, 120.0, 0.0, 120.0};
  cfg.n_persons = 3;
  cfg.max_time_s = 900.0;
  cfg.sesame_enabled = true;
  cfg.spoofing = platform::SpoofingEvent{"uav1", 40.0, 2.0};
  mw::FaultPlan plan;
  plan.seed = 616;
  mw::FaultRule rule;
  rule.topic_suffix = "/telemetry";
  rule.drop_probability = 0.10;
  plan.rules.push_back(rule);
  cfg.fault_plan = plan;

  platform::MissionRunner runner(cfg);
  const auto result = runner.run();

  EXPECT_TRUE(result.attack_detected);
  EXPECT_NEAR(result.attack_detection_time_s, 41.0, 5.0);
  EXPECT_GE(result.spoofed_uav_landing_error_m, 0.0);
  EXPECT_LT(result.spoofed_uav_landing_error_m, 15.0);
  EXPECT_GT(runner.world().bus().faults_dropped(), 0u);
}

// ---------------------------------------------------------------------------
// Scenario: fleet robustness (docs/ROBUSTNESS.md) — one vehicle is lost
// mid-mission to a hard crash, the recovery subsystem detects and writes it
// off, and the survivors absorb its coverage. The acceptance bar: at least
// 90% of the nominal run's area coverage, with zero safety-invariant
// violations.
TEST(RecoveryPipeline, HardCrashSurvivorsAbsorbCoverage) {
  const auto scenario = [] {
    platform::RunnerConfig cfg;
    cfg.n_uavs = 3;
    cfg.area = {0.0, 180.0, 0.0, 180.0};
    cfg.coverage.altitude_m = 20.0;
    cfg.coverage.lane_spacing_m = 30.0;
    cfg.n_persons = 4;
    cfg.max_time_s = 900.0;
    cfg.sesame_enabled = true;
    cfg.seed = 21;
    return cfg;
  };

  platform::RunnerConfig nominal = scenario();
  platform::MissionRunner nominal_runner(nominal);
  const auto nominal_result = nominal_runner.run();
  ASSERT_TRUE(nominal_result.mission_complete_time_s.has_value());
  ASSERT_GT(nominal_result.area_coverage, 0.5);

  platform::RunnerConfig crashed = scenario();
  crashed.recovery_enabled = true;
  sim::FailureSchedule schedule;
  sim::FailureEvent crash;
  crash.uav = "uav2";
  crash.mode = sim::FailureMode::kHardCrash;
  crash.time_s = 0.4 * nominal_result.mission_complete_time_s.value();
  schedule.events.push_back(crash);
  crashed.failure_schedule = schedule;

  platform::MissionRunner crashed_runner(crashed);
  const auto crashed_result = crashed_runner.run();

  // The loss was detected and the coverage re-planned to the survivors.
  EXPECT_EQ(crashed_result.uavs_lost, std::vector<std::string>{"uav2"});
  EXPECT_GT(crashed_result.waypoints_redistributed, 0u);
  EXPECT_GE(crashed_result.recovery_replans, 1u);
  EXPECT_TRUE(crashed_result.mission_complete_time_s.has_value());

  // Coverage holds: losing a third of the fleet costs < 10% of the area.
  EXPECT_GE(crashed_result.area_coverage,
            0.9 * nominal_result.area_coverage);
  // Absorbing the strip costs time, never safety.
  EXPECT_TRUE(crashed_result.invariant_violations.empty());
  EXPECT_GE(crashed_result.total_time_s, nominal_result.total_time_s);
}
