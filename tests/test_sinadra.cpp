// Tests for SINADRA: the SAR missed-person risk network's qualitative
// behaviour (risk ordering across situations) and adaptation thresholds.
#include <gtest/gtest.h>

#include "sesame/sinadra/risk.hpp"

namespace sn = sesame::sinadra;

TEST(SarRiskModel, ValidatesConfig) {
  sn::RiskConfig cfg;
  cfg.rescan_threshold = 0.8;
  cfg.descend_threshold = 0.5;
  EXPECT_THROW(sn::SarRiskModel{cfg}, std::invalid_argument);
}

TEST(SarRiskModel, NoEvidenceGivesModerateRisk) {
  sn::SarRiskModel model;
  const auto r = model.assess({});
  EXPECT_GT(r.criticality, 0.0);
  EXPECT_LT(r.criticality, 1.0);
  EXPECT_GE(r.p_missed_person, 0.0);
  EXPECT_LE(r.p_missed_person, 1.0);
}

TEST(SarRiskModel, HighAltitudeRiskierThanLow) {
  sn::SarRiskModel model;
  sn::SituationEvidence low;
  low.altitude = sn::AltitudeBand::kLow;
  sn::SituationEvidence high;
  high.altitude = sn::AltitudeBand::kHigh;
  EXPECT_LT(model.assess(low).criticality, model.assess(high).criticality);
}

TEST(SarRiskModel, PoorVisibilityRaisesRisk) {
  sn::SarRiskModel model;
  sn::SituationEvidence good;
  good.visibility = sn::Visibility::kGood;
  sn::SituationEvidence poor;
  poor.visibility = sn::Visibility::kPoor;
  EXPECT_LT(model.assess(good).criticality, model.assess(poor).criticality);
}

TEST(SarRiskModel, DenseAreaRaisesRisk) {
  sn::SarRiskModel model;
  sn::SituationEvidence sparse;
  sparse.density = sn::PersonDensity::kSparse;
  sparse.altitude = sn::AltitudeBand::kHigh;
  sn::SituationEvidence dense = sparse;
  dense.density = sn::PersonDensity::kDense;
  EXPECT_LT(model.assess(sparse).p_missed_person,
            model.assess(dense).p_missed_person);
}

TEST(SarRiskModel, LowPerceptionConfidenceRaisesRisk) {
  sn::SarRiskModel model;
  sn::SituationEvidence confident;
  confident.safeml = sn::PerceptionConfidence::kHigh;
  confident.deepknowledge = sn::PerceptionConfidence::kHigh;
  sn::SituationEvidence uncertain;
  uncertain.safeml = sn::PerceptionConfidence::kLow;
  uncertain.deepknowledge = sn::PerceptionConfidence::kLow;
  EXPECT_LT(model.assess(confident).criticality,
            model.assess(uncertain).criticality);
}

TEST(SarRiskModel, TwoMonitorsStrongerThanOne) {
  // Concordant low confidence from both monitors is stronger evidence of
  // degraded perception than from SafeML alone.
  sn::SarRiskModel model;
  sn::SituationEvidence one;
  one.safeml = sn::PerceptionConfidence::kLow;
  sn::SituationEvidence both = one;
  both.deepknowledge = sn::PerceptionConfidence::kLow;
  EXPECT_LT(model.assess(one).p_missed_person,
            model.assess(both).p_missed_person);
}

TEST(SarRiskModel, NominalSituationProceeds) {
  sn::SarRiskModel model;
  sn::SituationEvidence e;
  e.altitude = sn::AltitudeBand::kLow;
  e.visibility = sn::Visibility::kGood;
  e.density = sn::PersonDensity::kSparse;
  e.safeml = sn::PerceptionConfidence::kHigh;
  e.deepknowledge = sn::PerceptionConfidence::kHigh;
  const auto r = model.assess(e);
  EXPECT_EQ(r.recommendation, sn::Adaptation::kProceed);
  EXPECT_LT(r.criticality, 0.3);
}

TEST(SarRiskModel, WorstCaseDemandsDescend) {
  sn::SarRiskModel model;
  sn::SituationEvidence e;
  e.altitude = sn::AltitudeBand::kHigh;
  e.visibility = sn::Visibility::kPoor;
  e.density = sn::PersonDensity::kDense;
  e.safeml = sn::PerceptionConfidence::kLow;
  e.deepknowledge = sn::PerceptionConfidence::kLow;
  const auto r = model.assess(e);
  EXPECT_EQ(r.recommendation, sn::Adaptation::kDescendAndRescan);
  EXPECT_GT(r.criticality, 0.7);
}

TEST(SarRiskModel, IntermediateCaseRescans) {
  sn::SarRiskModel model;
  sn::SituationEvidence e;
  e.altitude = sn::AltitudeBand::kHigh;
  e.density = sn::PersonDensity::kDense;
  e.safeml = sn::PerceptionConfidence::kMedium;
  const auto r = model.assess(e);
  EXPECT_TRUE(r.recommendation == sn::Adaptation::kRescan ||
              r.recommendation == sn::Adaptation::kDescendAndRescan);
}

TEST(SarRiskModel, CriticalityConsistentWithPosterior) {
  // criticality = 0.5*P(medium) + P(high) must bound P(high).
  sn::SarRiskModel model;
  for (auto alt : {sn::AltitudeBand::kLow, sn::AltitudeBand::kHigh}) {
    sn::SituationEvidence e;
    e.altitude = alt;
    const auto r = model.assess(e);
    EXPECT_GE(r.criticality, r.p_missed_person);
    EXPECT_LE(r.criticality, r.p_missed_person + 0.5 + 1e-12);
  }
}

TEST(AdaptationNames, Distinct) {
  EXPECT_EQ(sn::adaptation_name(sn::Adaptation::kProceed), "Proceed");
  EXPECT_EQ(sn::adaptation_name(sn::Adaptation::kRescan), "Rescan");
  EXPECT_EQ(sn::adaptation_name(sn::Adaptation::kDescendAndRescan),
            "DescendAndRescan");
}

#include "sesame/sinadra/filter.hpp"

TEST(RiskFilter, ValidatesConfig) {
  sn::FilterConfig cfg;
  cfg.alpha = 0.0;
  EXPECT_THROW(sn::RiskFilter{cfg}, std::invalid_argument);
  cfg.alpha = 0.5;
  cfg.hysteresis = -0.1;
  EXPECT_THROW(sn::RiskFilter{cfg}, std::invalid_argument);
}

TEST(RiskFilter, SmoothsCriticality) {
  sn::RiskFilter filter;
  sn::RiskAssessment raw;
  raw.criticality = 1.0;
  const auto first = filter.update(raw);
  EXPECT_DOUBLE_EQ(first.criticality, 1.0);  // primed with first sample
  raw.criticality = 0.0;
  const auto second = filter.update(raw);
  EXPECT_GT(second.criticality, 0.5);  // smoothing resists the jump
}

TEST(RiskFilter, EscalatesImmediately) {
  sn::FilterConfig cfg;
  cfg.alpha = 1.0;  // no smoothing: isolate the hysteresis logic
  sn::RiskFilter filter(cfg);
  sn::RiskAssessment raw;
  raw.criticality = 0.8;  // above descend threshold (0.70)
  EXPECT_EQ(filter.update(raw).recommendation,
            sn::Adaptation::kDescendAndRescan);
  EXPECT_EQ(filter.transitions(), 1u);
}

TEST(RiskFilter, DeEscalationNeedsHysteresisMargin) {
  sn::FilterConfig cfg;
  cfg.alpha = 1.0;
  cfg.hysteresis = 0.08;
  sn::RiskFilter filter(cfg);
  sn::RiskAssessment raw;
  raw.criticality = 0.5;  // above rescan threshold (0.45)
  EXPECT_EQ(filter.update(raw).recommendation, sn::Adaptation::kRescan);
  raw.criticality = 0.42;  // below threshold but inside the margin
  EXPECT_EQ(filter.update(raw).recommendation, sn::Adaptation::kRescan);
  raw.criticality = 0.30;  // clear of the margin
  EXPECT_EQ(filter.update(raw).recommendation, sn::Adaptation::kProceed);
}

TEST(RiskFilter, SuppressesFlappingAroundThreshold) {
  // Raw samples oscillate across the rescan threshold; the raw model would
  // flap every sample, the filter should settle.
  sn::SarRiskModel model;
  sn::RiskFilter filter;
  std::size_t raw_flaps = 0;
  sn::Adaptation prev_raw = sn::Adaptation::kProceed;
  for (int i = 0; i < 60; ++i) {
    sn::RiskAssessment raw;
    raw.criticality = (i % 2 == 0) ? 0.48 : 0.42;  // straddles 0.45
    raw.recommendation = raw.criticality >= 0.45 ? sn::Adaptation::kRescan
                                                 : sn::Adaptation::kProceed;
    if (raw.recommendation != prev_raw) ++raw_flaps;
    prev_raw = raw.recommendation;
    filter.update(raw);
  }
  EXPECT_GT(raw_flaps, 20u);           // raw decision flaps constantly
  EXPECT_LE(filter.transitions(), 2u);  // filtered decision settles
}

TEST(RiskFilter, ResetClearsState) {
  sn::RiskFilter filter;
  sn::RiskAssessment raw;
  raw.criticality = 0.9;
  filter.update(raw);
  filter.reset();
  EXPECT_DOUBLE_EQ(filter.smoothed_criticality(), 0.0);
  EXPECT_EQ(filter.current_recommendation(), sn::Adaptation::kProceed);
  EXPECT_EQ(filter.transitions(), 0u);
}

TEST(SarRiskModel, ExplainNamesMostProbableSituation) {
  sn::SarRiskModel model;
  // Good conditions: the most probable explanation is good detection.
  sn::SituationEvidence good;
  good.altitude = sn::AltitudeBand::kLow;
  good.visibility = sn::Visibility::kGood;
  good.safeml = sn::PerceptionConfidence::kHigh;
  EXPECT_EQ(model.explain(good).detection_quality, "good");

  // Degraded conditions: the explanation flips to poor detection.
  sn::SituationEvidence bad;
  bad.altitude = sn::AltitudeBand::kHigh;
  bad.visibility = sn::Visibility::kPoor;
  bad.safeml = sn::PerceptionConfidence::kLow;
  bad.deepknowledge = sn::PerceptionConfidence::kLow;
  EXPECT_EQ(model.explain(bad).detection_quality, "poor");
}

TEST(SarRiskModel, ExplanationKeepsEvidenceStates) {
  sn::SarRiskModel model;
  sn::SituationEvidence e;
  e.altitude = sn::AltitudeBand::kMedium;
  e.density = sn::PersonDensity::kDense;
  const auto expl = model.explain(e);
  EXPECT_EQ(expl.situation.at("altitude"), "medium");
  EXPECT_EQ(expl.situation.at("density"), "dense");
  // Every network variable appears.
  EXPECT_EQ(expl.situation.size(), model.network().num_variables());
}

TEST(RiskFilter, SmoothsModelDrivenAltitudeTransition) {
  // Feed the filter real model assessments across an altitude climb: the
  // recommendation escalates once and does not flap on the way.
  sn::SarRiskModel model;
  sn::RiskFilter filter;
  std::size_t flaps_before = filter.transitions();
  for (int i = 0; i < 10; ++i) {
    sn::SituationEvidence e;
    e.altitude = sn::AltitudeBand::kLow;
    e.safeml = sn::PerceptionConfidence::kHigh;
    filter.update(model.assess(e));
  }
  EXPECT_EQ(filter.current_recommendation(), sn::Adaptation::kProceed);
  for (int i = 0; i < 30; ++i) {
    sn::SituationEvidence e;
    e.altitude = sn::AltitudeBand::kHigh;
    e.visibility = sn::Visibility::kPoor;
    e.safeml = sn::PerceptionConfidence::kLow;
    e.deepknowledge = sn::PerceptionConfidence::kLow;
    e.density = sn::PersonDensity::kDense;
    filter.update(model.assess(e));
  }
  EXPECT_EQ(filter.current_recommendation(),
            sn::Adaptation::kDescendAndRescan);
  // Escalation happened in at most two steps (Proceed->Rescan->Descend).
  EXPECT_LE(filter.transitions() - flaps_before, 2u);
}

TEST(SarRiskModel, MemoisedAssessIsStableAndComplete) {
  const sn::SarRiskModel model;
  sn::SituationEvidence nominal;
  nominal.altitude = sn::AltitudeBand::kLow;
  nominal.visibility = sn::Visibility::kGood;
  nominal.density = sn::PersonDensity::kSparse;
  nominal.safeml = sn::PerceptionConfidence::kHigh;
  nominal.deepknowledge = sn::PerceptionConfidence::kHigh;

  const auto first = model.assess(nominal);
  // Memo hit must replay the identical assessment.
  const auto again = model.assess(nominal);
  EXPECT_EQ(again.p_missed_person, first.p_missed_person);
  EXPECT_EQ(again.criticality, first.criticality);
  EXPECT_EQ(again.recommendation, first.recommendation);

  // A different evidence combination is keyed separately.
  sn::SituationEvidence worst = nominal;
  worst.altitude = sn::AltitudeBand::kHigh;
  worst.visibility = sn::Visibility::kPoor;
  worst.density = sn::PersonDensity::kDense;
  worst.safeml = sn::PerceptionConfidence::kLow;
  worst.deepknowledge = sn::PerceptionConfidence::kLow;
  const auto bad = model.assess(worst);
  EXPECT_GT(bad.criticality, first.criticality);
  // And the first key still replays unchanged afterwards.
  EXPECT_EQ(model.assess(nominal).criticality, first.criticality);
}
