// Reproduces paper Section V-B: "Search and Rescue Accuracy Results".
//
// The paper's narrative: at high altitude the combined uncertainty from
// SafeML + DeepKnowledge + SINADRA exceeds the 90% threshold; the ConSert
// layer commands a descent; at the lower altitude the uncertainty falls to
// ~75% and the SAR algorithm's accuracy reaches 99.8%. Without SESAME the
// uncertainty is never addressed and accuracy stays low.
//
// This bench sweeps mission altitude, prints the uncertainty and detection
// accuracy per altitude (the monotone relationship behind the result),
// then runs the full adaptive scenario with and without SESAME.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstdio>

#include "sesame/platform/mission_runner.hpp"

namespace {

using namespace sesame;

platform::RunnerConfig vb_config(bool sesame_on, double altitude_m) {
  platform::RunnerConfig cfg;
  cfg.sesame_enabled = sesame_on;
  cfg.n_uavs = 3;
  cfg.area = {0.0, 240.0, 0.0, 240.0};
  cfg.coverage.altitude_m = altitude_m;
  cfg.coverage.lane_spacing_m = 30.0;
  cfg.n_persons = 10;
  cfg.max_time_s = 1200.0;
  cfg.descend_altitude_m = 18.0;
  cfg.seed = 17;
  return cfg;
}

/// Steady-state SAR uncertainty and detection accuracy at one altitude,
/// measured on a non-adaptive run (descend adaptation disabled by making
/// the patience unreachably large).
struct AltitudePoint {
  double uncertainty = 0.0;
  double detection_accuracy = 0.0;
  double recall = 0.0;
};

AltitudePoint measure_altitude(double altitude_m) {
  auto cfg = vb_config(true, altitude_m);
  cfg.descend_patience = 1 << 20;  // never descend: isolate the altitude
  platform::MissionRunner runner(cfg);
  const auto result = runner.run();
  AltitudePoint p;
  // Mean reported uncertainty over the mission (once monitors are warm).
  double acc = 0.0;
  std::size_t n = 0;
  for (const auto& [name, series] : result.series) {
    (void)name;
    for (const auto& r : series) {
      if (r.time_s > 80.0 && r.mode == sim::FlightMode::kMission) {
        acc += r.sar_uncertainty;
        ++n;
      }
    }
  }
  p.uncertainty = n ? acc / static_cast<double>(n) : 1.0;
  // The deterministic detector accuracy at this altitude (the quantity the
  // paper quotes as "algorithmic accuracy").
  perception::PersonDetector detector{perception::DetectorConfig{}};
  p.detection_accuracy = detector.detection_probability(altitude_m);
  p.recall = result.detection.recall();
  return p;
}

void report() {
  std::printf("==============================================================\n");
  std::printf("Section V-B — Search and Rescue Accuracy\n");
  std::printf("==============================================================\n");

  std::printf("\nAltitude sweep (uncertainty is the SafeML+DeepKnowledge+"
              "SINADRA combination, threshold 90%%):\n");
  std::printf("%-14s %-18s %-20s %s\n", "altitude (m)", "uncertainty (%)",
              "det. accuracy (%)", "over threshold?");
  for (double alt : {15.0, 20.0, 30.0, 40.0, 50.0, 60.0}) {
    const auto p = measure_altitude(alt);
    std::printf("%-14.0f %-18.1f %-20.2f %s\n", alt, 100.0 * p.uncertainty,
                100.0 * p.detection_accuracy,
                p.uncertainty > 0.90 ? "YES -> descend" : "no");
  }

  // Full adaptive scenario: start high; SESAME descends, baseline stays.
  auto sesame = platform::MissionRunner(vb_config(true, 55.0)).run();
  auto baseline = platform::MissionRunner(vb_config(false, 55.0)).run();

  // Post-descend uncertainty in the SESAME run.
  double low_alt_unc = 0.0;
  std::size_t n = 0;
  for (const auto& [name, series] : sesame.series) {
    (void)name;
    for (const auto& r : series) {
      if (r.mode == sim::FlightMode::kMission && r.altitude_m < 25.0) {
        low_alt_unc += r.sar_uncertainty;
        ++n;
      }
    }
  }
  if (n) low_alt_unc /= static_cast<double>(n);

  perception::PersonDetector detector{perception::DetectorConfig{}};
  std::printf("\n%-44s %-12s %s\n", "metric", "paper", "measured");
  std::printf("%-44s %-12s %s\n", "high-altitude uncertainty > 90%", "yes",
              measure_altitude(55.0).uncertainty > 0.90 ? "yes" : "no");
  std::printf("%-44s %-12s %s\n", "SESAME descends to low altitude", "yes",
              sesame.descended ? "yes" : "no");
  std::printf("%-44s %-12s %.1f %%\n", "uncertainty after descending", "~75 %",
              100.0 * low_alt_unc);
  std::printf("%-44s %-12s %.2f %%\n", "SAR accuracy after descending",
              "99.8 %", 100.0 * detector.detection_probability(18.0));
  std::printf("%-44s %-12s %.1f %%\n", "mission recall with SESAME", "high",
              100.0 * sesame.detection.recall());
  std::printf("%-44s %-12s %.1f %%\n", "mission recall without SESAME", "lower",
              100.0 * baseline.detection.recall());
  std::printf("\nShape checks: SESAME recall >= baseline recall: %s | "
              "descend fired: %s | post-descend uncertainty < 90%%: %s\n\n",
              sesame.detection.recall() >= baseline.detection.recall()
                  ? "PASS" : "FAIL",
              sesame.descended ? "PASS" : "FAIL",
              (n > 0 && low_alt_unc < 0.90) ? "PASS" : "FAIL");
}

void BM_UncertaintyPipelineTick(benchmark::State& state) {
  mathx::Rng rng(3);
  perception::PersonDetector detector{perception::DetectorConfig{}};
  std::vector<std::vector<double>> reference(
      perception::FrameFeatures::kNumFeatures);
  for (int i = 0; i < 400; ++i) {
    const auto v = detector.frame_features(18.0, rng).as_vector();
    for (std::size_t k = 0; k < v.size(); ++k) reference[k].push_back(v[k]);
  }
  eddi::UavEddi uav_eddi("bench", {}, reference);
  eddi::EddiInputs in;
  for (auto _ : state) {
    in.frame_features = detector.frame_features(40.0, rng).as_vector();
    benchmark::DoNotOptimize(uav_eddi.tick(in));
  }
}
BENCHMARK(BM_UncertaintyPipelineTick);

void BM_SinadraAssessment(benchmark::State& state) {
  sinadra::SarRiskModel model;
  sinadra::SituationEvidence e;
  e.altitude = sinadra::AltitudeBand::kHigh;
  e.safeml = sinadra::PerceptionConfidence::kLow;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.assess(e));
  }
}
BENCHMARK(BM_SinadraAssessment);

}  // namespace

int main(int argc, char** argv) {
  report();
  return sesame::bench::run_main(argc, argv);
}
