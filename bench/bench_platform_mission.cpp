// End-to-end platform benchmark (paper Fig. 4): the complete 3-UAV SAR
// mission with every EDDI attached, with-vs-without SESAME, plus the
// runtime overhead the SESAME stack adds per simulated second — the
// integration-cost number an adopter of the platform would ask for.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "sesame/obs/observability.hpp"
#include "sesame/platform/mission_runner.hpp"

namespace {

using namespace sesame;

platform::RunnerConfig mission_config(bool sesame_on) {
  platform::RunnerConfig cfg;
  cfg.sesame_enabled = sesame_on;
  cfg.n_uavs = 3;
  cfg.area = {0.0, 300.0, 0.0, 300.0};
  cfg.coverage.altitude_m = 20.0;
  cfg.coverage.lane_spacing_m = 30.0;
  cfg.n_persons = 8;
  cfg.max_time_s = 1200.0;
  return cfg;
}

void report() {
  std::printf("==============================================================\n");
  std::printf("Platform — full 3-UAV SAR mission (Fig. 4 integration)\n");
  std::printf("==============================================================\n");

  const auto with = platform::MissionRunner(mission_config(true)).run();
  const auto without = platform::MissionRunner(mission_config(false)).run();

  std::printf("\n%-34s %-16s %s\n", "metric", "SESAME", "baseline");
  std::printf("%-34s %-16.0f %.0f\n", "mission completion (s)",
              with.mission_complete_time_s.value_or(-1),
              without.mission_complete_time_s.value_or(-1));
  std::printf("%-34s %-16.1f %.1f\n", "fleet availability (%)",
              100.0 * with.availability, 100.0 * without.availability);
  std::printf("%-34s %-16zu %zu\n", "persons found", with.detection.persons_found,
              without.detection.persons_found);
  std::printf("%-34s %-16.1f %.1f\n", "detection recall (%)",
              100.0 * with.detection.recall(),
              100.0 * without.detection.recall());
  std::printf("%-34s %-16.1f %.1f\n", "detection precision (%)",
              100.0 * with.detection.precision(),
              100.0 * without.detection.precision());
  std::printf("%-34s %-16s %s\n", "final mission decision",
              conserts::mission_decision_name(with.final_decision).c_str(),
              conserts::mission_decision_name(without.final_decision).c_str());
  std::printf("\nShape check: both complete and SESAME recall >= baseline: "
              "%s\n",
              (with.mission_complete_time_s && without.mission_complete_time_s &&
               with.detection.recall() >= without.detection.recall() - 1e-9)
                  ? "PASS" : "FAIL");

  // Combined-adversity run: spoofing attack mid-mission, full response
  // pipeline (detection -> GPS distrust -> task redistribution -> CL safe
  // landing) inside the platform loop.
  auto attack_cfg = mission_config(true);
  attack_cfg.spoofing = platform::SpoofingEvent{"uav1", 50.0, 2.0};
  const auto attacked = platform::MissionRunner(attack_cfg).run();
  std::printf("\nSpoofing-attack mission (SESAME response pipeline):\n");
  std::printf("%-40s %s\n", "attack detected",
              attacked.attack_detected ? "yes" : "NO");
  std::printf("%-40s %.0f s\n", "detection latency after onset",
              attacked.attack_detection_time_s - 50.0);
  std::printf("%-40s %zu\n", "waypoints redistributed",
              attacked.waypoints_redistributed);
  std::printf("%-40s %.1f m\n", "victim safe-landing error",
              attacked.spoofed_uav_landing_error_m);
  std::printf("%-40s %s\n", "mission still completed",
              attacked.mission_complete_time_s ? "yes" : "NO");
  std::printf("\nShape check: attack handled and mission completed: %s\n\n",
              (attacked.attack_detected &&
               attacked.spoofed_uav_landing_error_m >= 0.0 &&
               attacked.spoofed_uav_landing_error_m < 15.0 &&
               attacked.mission_complete_time_s)
                  ? "PASS" : "FAIL");
}

void BM_MissionWithSesame(benchmark::State& state) {
  for (auto _ : state) {
    platform::MissionRunner runner(mission_config(true));
    benchmark::DoNotOptimize(runner.run());
  }
}
BENCHMARK(BM_MissionWithSesame)->Unit(benchmark::kMillisecond);

// Observability overhead: the same mission with the full metrics registry
// attached and every span/event delivered to a sink that discards them —
// the acceptance bar is < 5% regression vs BM_MissionWithSesame.
struct NullSink final : obs::TraceSink {
  void consume(const obs::TraceEvent&) override {}
};

void BM_MissionWithSesameObserved(benchmark::State& state) {
  NullSink sink;
  for (auto _ : state) {
    obs::Observability o;
    o.tracer.set_sink(&sink);
    platform::MissionRunner runner(mission_config(true));
    runner.attach_observability(o);
    benchmark::DoNotOptimize(runner.run());
  }
}
BENCHMARK(BM_MissionWithSesameObserved)->Unit(benchmark::kMillisecond);

void BM_MissionBaseline(benchmark::State& state) {
  for (auto _ : state) {
    platform::MissionRunner runner(mission_config(false));
    benchmark::DoNotOptimize(runner.run());
  }
}
BENCHMARK(BM_MissionBaseline)->Unit(benchmark::kMillisecond);

void BM_WorldStepOnly(benchmark::State& state) {
  const geo::GeoPoint origin{35.1856, 33.3823, 0.0};
  sim::World world(origin, 1);
  for (int i = 0; i < 3; ++i) {
    sim::UavConfig cfg;
    cfg.name = "uav" + std::to_string(i);
    world.add_uav(cfg, origin);
    world.uav(static_cast<std::size_t>(i)).command_takeoff();
  }
  for (auto _ : state) {
    world.step(1.0);
  }
}
BENCHMARK(BM_WorldStepOnly);

}  // namespace

int main(int argc, char** argv) {
  report();
  return sesame::bench::run_main(argc, argv);
}
