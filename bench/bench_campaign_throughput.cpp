// Campaign throughput: Monte Carlo runs/second vs. worker-pool size.
//
// The campaign layer is the batching surface every later performance PR is
// measured on; this bench records how scenario-run throughput scales with
// --jobs on the host. Each iteration executes a fixed small campaign (the
// baseline arm keeps per-run cost dominated by simulation, not monitor
// calibration) and reports runs/sec as a counter, so
//   bench_campaign_throughput --benchmark_counters_tabular=true
// prints a thread-scaling table directly, and
//   bench_campaign_throughput --json out.json
// writes the machine-readable report the committed
// BENCH_campaign_throughput.json baseline is regenerated from (see
// docs/PERFORMANCE.md).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"
#include "sesame/campaign/campaign.hpp"

namespace {

using namespace sesame;

platform::RunnerConfig small_scenario(bool sesame_on) {
  platform::RunnerConfig config = campaign::ScenarioFactory::default_scenario();
  config.n_uavs = 2;
  config.area = {0.0, 150.0, 0.0, 150.0};
  config.n_persons = 3;
  config.max_time_s = 200.0;
  config.sesame_enabled = sesame_on;
  return config;
}

void bench_campaign(benchmark::State& state, bool sesame_on) {
  const campaign::ScenarioFactory factory(small_scenario(sesame_on));
  campaign::CampaignConfig config;
  config.runs = 16;
  config.jobs = static_cast<std::size_t>(state.range(0));
  config.seed = 42;
  config.collect_metrics = true;

  std::size_t runs_done = 0;
  for (auto _ : state) {
    const auto result = campaign::run_campaign(factory, config);
    benchmark::DoNotOptimize(result.summaries.data());
    runs_done += result.runs;
  }
  state.counters["runs_per_s"] = benchmark::Counter(
      static_cast<double>(runs_done), benchmark::Counter::kIsRate);
  state.counters["jobs"] = static_cast<double>(config.jobs);
}

void BM_CampaignBaseline(benchmark::State& state) {
  bench_campaign(state, /*sesame_on=*/false);
}

void BM_CampaignSesame(benchmark::State& state) {
  bench_campaign(state, /*sesame_on=*/true);
}

}  // namespace

BENCHMARK(BM_CampaignBaseline)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CampaignSesame)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  return sesame::bench::run_main(argc, argv);
}
