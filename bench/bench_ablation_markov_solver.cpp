// Ablation B — Markov transient-solver cost and the reconfiguration design
// choice in SafeDrones.
//
// Two questions behind the SafeDrones design:
//   1. What does a runtime reliability evaluation cost as the propulsion
//      model grows (quad -> hexa -> octa, uniformization vs dense expm)?
//      The paper's "lightweight technologies" constraint makes this the
//      relevant ablation for running the monitor on a Jetson-class device.
//   2. How much reliability does motor reconfiguration actually buy?
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstdio>

#include "sesame/markov/ctmc.hpp"
#include "sesame/mathx/rng.hpp"
#include "sesame/safedrones/models.hpp"

namespace {

using namespace sesame;

/// A dense random generator matrix with n states (worst case for expm).
mathx::Matrix random_generator(std::size_t n, mathx::Rng& rng) {
  mathx::Matrix q(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      q(i, j) = rng.uniform(0.0, 0.2);
      row += q(i, j);
    }
    q(i, i) = -row;
  }
  return q;
}

void report() {
  std::printf("==============================================================\n");
  std::printf("Ablation B — Markov reliability models: accuracy & tolerance\n");
  std::printf("==============================================================\n");

  std::printf("\nReconfiguration benefit (motor failure rate 2e-6 /s):\n");
  std::printf("%-10s %-22s %-22s %s\n", "airframe", "P(fail, 30 min) w/",
              "P(fail, 30 min) w/o", "MTTF gain");
  for (auto af : {safedrones::Airframe::kQuad, safedrones::Airframe::kHexa,
                  safedrones::Airframe::kOcta}) {
    safedrones::PropulsionConfig with;
    with.airframe = af;
    with.motor_failure_rate = 2e-6;
    with.reconfiguration = true;
    auto without = with;
    without.reconfiguration = false;
    safedrones::PropulsionModel mw(with), mo(without);
    std::printf("%-10zu %-22.3e %-22.3e %.1fx\n", safedrones::rotor_count(af),
                mw.failure_probability(1800.0), mo.failure_probability(1800.0),
                mw.mttf() / mo.mttf());
  }

  std::printf("\nUniformization vs dense expm agreement on random chains:\n");
  std::printf("%-10s %-16s\n", "states", "max |delta|");
  mathx::Rng rng(17);
  for (std::size_t n : {4, 8, 16, 32}) {
    const auto q = random_generator(n, rng);
    markov::Ctmc chain(q);
    std::vector<double> pi0(n, 0.0);
    pi0[0] = 1.0;
    const auto uni = chain.transient(pi0, 3.0);
    const auto exact = mathx::expm(q * 3.0).apply_transposed(pi0);
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      worst = std::max(worst, std::abs(uni[i] - exact[i]));
    }
    std::printf("%-10zu %-16.3e\n", n, worst);
  }
  std::printf("\n");
}

void BM_TransientUniformization(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mathx::Rng rng(23);
  markov::Ctmc chain(random_generator(n, rng));
  std::vector<double> pi0(n, 0.0);
  pi0[0] = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.transient(pi0, 3.0));
  }
  state.SetComplexityN(static_cast<long>(n));
}
BENCHMARK(BM_TransientUniformization)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Complexity();

void BM_TransientExpm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mathx::Rng rng(23);
  const auto q = random_generator(n, rng);
  std::vector<double> pi0(n, 0.0);
  pi0[0] = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mathx::expm(q * 3.0).apply_transposed(pi0));
  }
  state.SetComplexityN(static_cast<long>(n));
}
BENCHMARK(BM_TransientExpm)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Complexity();

void BM_PropulsionEvaluation(benchmark::State& state) {
  safedrones::PropulsionConfig cfg;
  cfg.airframe = static_cast<safedrones::Airframe>(state.range(0));
  cfg.motor_failure_rate = 2e-6;
  safedrones::PropulsionModel model(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.failure_probability(1800.0));
  }
}
BENCHMARK(BM_PropulsionEvaluation)->Arg(0)->Arg(1)->Arg(2);

void BM_MeanTimeToAbsorption(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  markov::CtmcBuilder b;
  for (std::size_t i = 0; i < n; ++i) b.add_state("s" + std::to_string(i));
  for (std::size_t i = 0; i + 1 < n; ++i) b.add_transition(i, i + 1, 0.5);
  const auto chain = b.build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.mean_time_to_absorption(0));
  }
}
BENCHMARK(BM_MeanTimeToAbsorption)->Arg(8)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  report();
  return sesame::bench::run_main(argc, argv);
}
