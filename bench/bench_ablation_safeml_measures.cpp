// Ablation A — SafeML distance-measure comparison.
//
// The SafeML papers evaluate several ECDF distance measures; the SESAME
// integration must pick one for the runtime monitor. This ablation
// compares all six on the axes that matter for the UAV deployment:
//   - drift-detection power: true-positive rate at a fixed false-positive
//     budget across increasing distribution shifts, and
//   - runtime cost per window (the Jetson-class compute constraint the
//     paper's "lightweight technologies" requirement refers to).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "sesame/mathx/rng.hpp"
#include "sesame/mathx/stats.hpp"
#include "sesame/safeml/distances.hpp"

namespace {

using namespace sesame;
using safeml::Measure;

constexpr std::size_t kReference = 400;
constexpr std::size_t kWindow = 64;
constexpr int kTrials = 200;

std::vector<double> sample(mathx::Rng& rng, std::size_t n, double mean,
                           double sd) {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(rng.normal(mean, sd));
  return out;
}

/// Detection threshold at ~5% false-positive rate, calibrated from clean
/// windows, then the true-positive rate under shift.
double detection_power(Measure m, double shift, mathx::Rng& rng) {
  const auto reference = sample(rng, kReference, 0.0, 1.0);
  std::vector<double> clean_scores;
  clean_scores.reserve(kTrials);
  for (int t = 0; t < kTrials; ++t) {
    clean_scores.push_back(
        safeml::distance(m, reference, sample(rng, kWindow, 0.0, 1.0)));
  }
  const double threshold = mathx::quantile(clean_scores, 0.95);
  int hits = 0;
  for (int t = 0; t < kTrials; ++t) {
    if (safeml::distance(m, reference, sample(rng, kWindow, shift, 1.0)) >
        threshold) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / kTrials;
}

void report() {
  std::printf("==============================================================\n");
  std::printf("Ablation A — SafeML statistical distance measures\n");
  std::printf("==============================================================\n");
  std::printf("\nTrue-positive rate at 5%% false-positive budget "
              "(reference n=%zu, window n=%zu, %d trials):\n",
              kReference, kWindow, kTrials);
  std::printf("%-18s", "measure");
  const std::vector<double> shifts{0.1, 0.25, 0.5, 1.0, 2.0};
  for (double s : shifts) std::printf(" shift=%-6.2f", s);
  std::printf("\n");
  for (auto m : safeml::all_measures()) {
    mathx::Rng rng(1234);  // same stream per measure: paired comparison
    std::printf("%-18s", safeml::measure_name(m).c_str());
    for (double s : shifts) {
      std::printf(" %-12.2f", detection_power(m, s, rng));
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: power rises with shift for every measure; "
              "tail-weighted measures (AD, DTS) lead at small shifts.\n\n");
}

void BM_Distance(benchmark::State& state) {
  const auto m = static_cast<Measure>(state.range(0));
  mathx::Rng rng(7);
  const auto a = sample(rng, kReference, 0.0, 1.0);
  const auto b = sample(rng, kWindow, 0.5, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(safeml::distance(m, a, b));
  }
  state.SetLabel(safeml::measure_name(m));
}
BENCHMARK(BM_Distance)->DenseRange(0, 5);

void BM_PermutationPValue(benchmark::State& state) {
  mathx::Rng rng(7);
  const auto a = sample(rng, 128, 0.0, 1.0);
  const auto b = sample(rng, kWindow, 0.5, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(safeml::permutation_p_value(
        Measure::kKolmogorovSmirnov, a, b, rng, 100));
  }
}
BENCHMARK(BM_PermutationPValue)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  return sesame::bench::run_main(argc, argv);
}
