// Shared `--json <path>` reporter flag for the bench binaries.
//
// The committed BENCH_*.json baselines (see docs/PERFORMANCE.md) and the
// CI bench-smoke job both consume machine-readable bench output. Google
// Benchmark already ships a JSON file reporter behind the unwieldy pair
// `--benchmark_out=<path> --benchmark_out_format=json`; this header maps
// the ergonomic `--json <path>` (or `--json=<path>`) spelling onto it and
// provides the common main() used by every bench that records baselines:
//
//   bench_bus_publish --json out.json [--benchmark_filter=...]
//
// Everything else on the command line passes through to the library
// untouched, so the usual --benchmark_* flags keep working.
#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

namespace sesame::bench {

/// Rewrites `--json <path>` / `--json=<path>` into the library's
/// out-file flags, leaving every other argument in place. Returns the
/// rewritten argument vector; `storage` owns the rewritten strings and
/// must outlive it.
inline std::vector<char*> rewrite_json_flag(int argc, char** argv,
                                            std::vector<std::string>& storage) {
  // Pointers into `storage` must stay stable while we append.
  storage.reserve(static_cast<std::size_t>(argc) + 2);
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  if (argc > 0) args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    std::string path;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
    } else {
      args.push_back(argv[i]);
      continue;
    }
    storage.push_back("--benchmark_out=" + path);
    args.push_back(storage.back().data());
    storage.push_back("--benchmark_out_format=json");
    args.push_back(storage.back().data());
  }
  return args;
}

/// Drop-in replacement for BENCHMARK_MAIN()'s body with `--json` support.
inline int run_main(int argc, char** argv) {
  std::vector<std::string> storage;
  std::vector<char*> args = rewrite_json_flag(argc, argv, storage);
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace sesame::bench
