// Reproduces paper Fig. 7: "Collaborative Localization showing how the
// spoofed UAV collaborated with the assisting UAV to safe land for further
// investigation" — the spoofed UAV operates with NO GPS signal and is
// guided to a high-precision landing by assisting UAVs.
//
// Prints the approach track of the affected UAV (distance-to-pad and the
// collaborative fix error over time) and the final landing error, then
// compares against the un-assisted alternative (dead reckoning only).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstdio>

#include "sesame/localization/collaborative.hpp"
#include "sesame/sim/world.hpp"

namespace {

using namespace sesame;

const geo::GeoPoint kOrigin{35.1856, 33.3823, 0.0};
const geo::EnuPoint kSafePad{25.0, 25.0, 30.0};

struct LandingOutcome {
  bool landed = false;
  double landing_error_m = 0.0;
  double time_s = 0.0;
  std::size_t fixes = 0;
};

sim::World make_fleet(std::uint64_t seed) {
  sim::World world(kOrigin, seed);
  // Unobserved wind: the dead-reckoning estimator cannot see it, so the
  // GPS-less comparison below is honest about drift.
  world.wind().east_mps = 1.2;
  world.wind().gust_sigma_mps = 0.3;
  for (const char* name : {"affected", "assist1", "assist2"}) {
    sim::UavConfig cfg;
    cfg.name = name;
    world.add_uav(cfg, kOrigin);
  }
  // The affected UAV is mid-mission away from the pad; assistants nearby.
  world.uav_by_name("affected").add_waypoint({150.0, 150.0, 30.0});
  world.uav_by_name("assist1").add_waypoint({120.0, 120.0, 30.0});
  world.uav_by_name("assist2").add_waypoint({180.0, 120.0, 30.0});
  for (std::size_t i = 0; i < world.num_uavs(); ++i) {
    world.uav(i).command_takeoff();
  }
  world.run(45, 1.0);  // fleet on station
  // Attack aftermath: receiver disabled after Security EDDI detection.
  world.uav_by_name("affected").gps().set_disabled(true);
  return world;
}

LandingOutcome guided_landing(bool with_cl, bool print_track) {
  sim::World world = make_fleet(5);
  sim::Uav& affected = world.uav_by_name("affected");

  localization::ObservationModel model;
  model.detection_range_m = 500.0;
  model.detection_probability = 0.95;
  localization::CollaborativeLocalizer cl(world, "affected",
                                          {"assist1", "assist2"}, model);
  localization::SafeLandingGuide guide(world, cl, kSafePad);

  if (print_track) {
    std::printf("%-8s %-16s %-18s %-16s %s\n", "t (s)", "dist to pad (m)",
                "CL fix error (m)", "est error (m)", "mode");
  }
  LandingOutcome out;
  for (int t = 0; t < 400 && !guide.landed(); ++t) {
    world.step(1.0);
    if (with_cl) {
      guide.step();
    } else {
      // Dead-reckoning alternative: same route commands, no fixes.
      if (t == 0) {
        affected.clear_waypoints();
        affected.add_waypoint(kSafePad);
        affected.command_resume_mission();
      }
      if (geo::enu_ground_distance_m(affected.estimated_position(), kSafePad) <
          5.0) {
        affected.command_emergency_land();
      }
    }
    if (print_track && t % 10 == 0) {
      const auto& fix = cl.last_fix();
      std::printf("%-8.0f %-16.1f %-18.2f %-16.2f %s\n", world.time_s(),
                  geo::enu_ground_distance_m(affected.true_position(), kSafePad),
                  fix ? fix->true_error_m : -1.0,
                  affected.estimation_error_m(),
                  sim::flight_mode_name(affected.mode()).c_str());
    }
  }
  out.landed = affected.mode() == sim::FlightMode::kLanded;
  out.landing_error_m =
      geo::enu_ground_distance_m(affected.true_position(), kSafePad);
  out.time_s = world.time_s();
  out.fixes = cl.fixes_published();
  return out;
}

void report() {
  std::printf("==============================================================\n");
  std::printf("Fig. 7 — Collaborative Localization safe landing without GPS\n");
  std::printf("==============================================================\n\n");

  std::printf("Approach track (GPS disabled, collaborative fixes only):\n");
  const LandingOutcome with_cl = guided_landing(true, true);
  const LandingOutcome without_cl = guided_landing(false, false);

  std::printf("\n%-44s %-16s %s\n", "metric", "paper", "measured");
  std::printf("%-44s %-16s %s\n", "UAV operates without GPS", "yes", "yes");
  std::printf("%-44s %-16s %s\n", "safe landing achieved (CL)", "yes",
              with_cl.landed ? "yes" : "no");
  std::printf("%-44s %-16s %.1f m\n", "landing error with CL",
              "high precision", with_cl.landing_error_m);
  std::printf("%-44s %-16s %.1f m\n", "landing error dead-reckoning only",
              "n/a (fails)", without_cl.landing_error_m);
  std::printf("%-44s %-16s %zu\n", "collaborative fixes published", "-",
              with_cl.fixes);
  std::printf("\nShape checks: CL lands within 8 m: %s | CL beats dead "
              "reckoning: %s\n\n",
              (with_cl.landed && with_cl.landing_error_m < 8.0) ? "PASS"
                                                                : "FAIL",
              with_cl.landing_error_m < without_cl.landing_error_m ? "PASS"
                                                                   : "FAIL");
}

void BM_CollaborativeFix(benchmark::State& state) {
  sim::World world = make_fleet(7);
  localization::ObservationModel model;
  model.detection_range_m = 500.0;
  model.detection_probability = 1.0;
  localization::CollaborativeLocalizer cl(world, "affected",
                                          {"assist1", "assist2"}, model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cl.update());
  }
}
BENCHMARK(BM_CollaborativeFix);

void BM_FullGuidedLanding(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(guided_landing(true, false));
  }
}
BENCHMARK(BM_FullGuidedLanding)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  return sesame::bench::run_main(argc, argv);
}
