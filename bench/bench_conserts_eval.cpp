// Exercises the paper's Fig. 1 hierarchical ConSert network: enumerates
// the evidence space, prints the resulting action lattice and mission
// decisions, and times the runtime evaluation (the cost that matters for
// "shifting assurance to runtime" on constrained UAV hardware).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstdio>

#include "sesame/conserts/uav_network.hpp"

namespace {

using namespace sesame::conserts;

UavEvidence evidence_from_mask(unsigned mask) {
  UavEvidence e;
  e.gps_quality_good = mask & 1u;
  e.no_security_attack = mask & 2u;
  e.vision_sensor_healthy = mask & 4u;
  e.safeml_confidence_high = mask & 8u;
  e.comm_link_good = mask & 16u;
  e.nearby_uav_available = mask & 32u;
  // Reliability: two bits select exactly one of High/Medium/Low/none.
  const unsigned rel = (mask >> 6) & 3u;
  e.reliability_high = rel == 1;
  e.reliability_medium = rel == 2;
  e.reliability_low = rel == 3;
  return e;
}

void report() {
  std::printf("==============================================================\n");
  std::printf("Fig. 1 — Hierarchical ConSert UAV network evaluation\n");
  std::printf("==============================================================\n");

  ConSertNetwork net;
  add_uav_conserts(net, "uav1");

  // Sweep the full evidence space; count the resulting actions.
  std::size_t counts[5] = {0, 0, 0, 0, 0};
  const unsigned total = 1u << 8;
  for (unsigned mask = 0; mask < total; ++mask) {
    EvaluationContext ctx;
    apply_evidence(ctx, "uav1", evidence_from_mask(mask));
    const auto eval = net.evaluate(ctx);
    counts[static_cast<int>(uav_action(eval, "uav1"))]++;
  }
  std::printf("\nAction distribution over all %u evidence combinations:\n",
              total);
  for (int a = 0; a < 5; ++a) {
    std::printf("  %-32s %zu\n",
                uav_action_name(static_cast<UavAction>(a)).c_str(), counts[a]);
  }

  // Representative rows of the decision table.
  struct Row {
    const char* description;
    UavEvidence e;
  };
  auto nominal = [] {
    UavEvidence e;
    e.gps_quality_good = e.no_security_attack = e.vision_sensor_healthy =
        e.safeml_confidence_high = e.comm_link_good = e.nearby_uav_available =
            true;
    e.reliability_high = true;
    return e;
  };
  std::vector<Row> rows;
  rows.push_back({"all evidence nominal", nominal()});
  {
    auto e = nominal();
    e.no_security_attack = false;
    rows.push_back({"security attack flagged", e});
  }
  {
    auto e = nominal();
    e.reliability_high = false;
    e.reliability_low = true;
    rows.push_back({"SafeDrones reliability low", e});
  }
  {
    auto e = nominal();
    e.gps_quality_good = false;
    e.comm_link_good = false;
    e.safeml_confidence_high = false;
    rows.push_back({"GPS lost, no comms, SafeML low", e});
  }
  std::printf("\n%-36s %s\n", "situation", "UAV ConSert action");
  for (const auto& row : rows) {
    EvaluationContext ctx;
    apply_evidence(ctx, "uav1", row.e);
    const auto eval = net.evaluate(ctx);
    std::printf("%-36s %s\n", row.description,
                uav_action_name(uav_action(eval, "uav1")).c_str());
  }

  // Mission decider over a degrading 3-UAV fleet.
  std::printf("\nMission decider (3 UAVs):\n");
  std::printf("  all continue              -> %s\n",
              mission_decision_name(decide_mission(
                  {UavAction::kContinue, UavAction::kContinue,
                   UavAction::kContinueExtended})).c_str());
  std::printf("  one lands, taker present  -> %s\n",
              mission_decision_name(decide_mission(
                  {UavAction::kEmergencyLand, UavAction::kContinue,
                   UavAction::kContinueExtended})).c_str());
  std::printf("  one lands, no taker       -> %s\n\n",
              mission_decision_name(decide_mission(
                  {UavAction::kEmergencyLand, UavAction::kContinue,
                   UavAction::kContinue})).c_str());
}

void BM_SingleUavEvaluation(benchmark::State& state) {
  ConSertNetwork net;
  add_uav_conserts(net, "uav1");
  EvaluationContext ctx;
  UavEvidence e;
  e.gps_quality_good = e.no_security_attack = e.reliability_high = true;
  apply_evidence(ctx, "uav1", e);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.evaluate(ctx));
  }
}
BENCHMARK(BM_SingleUavEvaluation);

void BM_FleetEvaluation(benchmark::State& state) {
  const auto n_uavs = static_cast<std::size_t>(state.range(0));
  ConSertNetwork net;
  EvaluationContext ctx;
  for (std::size_t i = 0; i < n_uavs; ++i) {
    const std::string name = "uav" + std::to_string(i);
    add_uav_conserts(net, name);
    UavEvidence e;
    e.gps_quality_good = e.no_security_attack = e.reliability_high = true;
    apply_evidence(ctx, name, e);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.evaluate(ctx));
  }
  state.SetComplexityN(static_cast<long>(n_uavs));
}
BENCHMARK(BM_FleetEvaluation)->Arg(1)->Arg(3)->Arg(10)->Arg(30)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  report();
  return sesame::bench::run_main(argc, argv);
}
