// Campaign-service benchmarks: the two service-level SLOs that the
// committed BENCH_service.json baseline gates in CI
// (docs/SERVICE.md, docs/PERFORMANCE.md).
//
//  - BM_ServiceQueuedThroughput: sustained campaigns/second through a
//    saturated queue — a batch of distinct-seed submissions is enqueued at
//    once and the iteration waits for all of them, so admission, fair
//    scheduling, executor handoff and report generation are all on the
//    measured path. items_per_second == completed campaigns/second (the
//    CI-gated figure).
//  - BM_ServiceSubmitToFirstResult: latency from submit() returning to the
//    first completed run of that submission, sampled per iteration on a
//    service with both executors busy-capable; the p50/p99 land in the
//    counters. This is the operator-facing "how long until I see data"
//    number.
//  - BM_ServiceCacheHit: repeat-submission path — digest lookup + cached
//    report handout with no executor involvement.
//
// Campaigns use the same tiny baseline scenario as
// bench_campaign_throughput so per-run simulation cost stays small and
// the service machinery dominates.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "sesame/platform/config_io.hpp"
#include "sesame/service/service.hpp"
#include "sesame/service/submission.hpp"

namespace {

using namespace sesame;

service::Submission tiny_submission(std::uint64_t seed) {
  platform::RunnerConfig config =
      campaign::ScenarioFactory::default_scenario();
  config.n_uavs = 2;
  config.area = {0.0, 150.0, 0.0, 150.0};
  config.n_persons = 3;
  config.max_time_s = 200.0;
  config.sesame_enabled = false;
  service::Submission s;
  s.config_json = platform::config_to_json(config).to_json();
  s.runs = 4;
  s.seed = seed;
  return s;
}

/// Seeds never repeat across iterations, so the result cache cannot turn
/// a throughput measurement into a cache measurement.
std::uint64_t next_seed() {
  static std::uint64_t seed = 1;
  return seed++;
}

void BM_ServiceQueuedThroughput(benchmark::State& state) {
  const std::size_t batch = 8;
  std::size_t campaigns = 0;
  for (auto _ : state) {
    service::ServiceLimits limits;
    limits.executors = static_cast<std::size_t>(state.range(0));
    service::CampaignService svc(limits);
    std::vector<std::uint64_t> jobs;
    for (std::size_t i = 0; i < batch; ++i) {
      const auto outcome = svc.submit(tiny_submission(next_seed()));
      if (outcome.accepted) jobs.push_back(outcome.job_id);
    }
    for (const auto id : jobs) {
      benchmark::DoNotOptimize(svc.wait(id).state);
    }
    campaigns += jobs.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(campaigns));
  state.counters["executors"] = static_cast<double>(state.range(0));
}

void BM_ServiceSubmitToFirstResult(benchmark::State& state) {
  service::ServiceLimits limits;
  limits.executors = 2;
  service::CampaignService svc(limits);
  std::vector<double> latencies_s;
  for (auto _ : state) {
    const auto submitted = std::chrono::steady_clock::now();
    const auto outcome = svc.submit(tiny_submission(next_seed()));
    if (!outcome.accepted) continue;
    // Spin until the first run of THIS submission lands.
    while (svc.status(outcome.job_id).runs_completed == 0) {
      std::this_thread::yield();
    }
    latencies_s.push_back(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - submitted)
                              .count());
    benchmark::DoNotOptimize(svc.wait(outcome.job_id).state);
  }
  if (!latencies_s.empty()) {
    std::sort(latencies_s.begin(), latencies_s.end());
    const auto at = [&](double q) {
      const std::size_t i = static_cast<std::size_t>(
          q * static_cast<double>(latencies_s.size() - 1));
      return latencies_s[i];
    };
    state.counters["first_result_p50_s"] = at(0.50);
    state.counters["first_result_p99_s"] = at(0.99);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(latencies_s.size()));
}

void BM_ServiceCacheHit(benchmark::State& state) {
  service::CampaignService svc;
  const service::Submission s = tiny_submission(next_seed());
  benchmark::DoNotOptimize(svc.wait(svc.submit(s).job_id).state);
  std::size_t hits = 0;
  for (auto _ : state) {
    const auto outcome = svc.submit(s);
    benchmark::DoNotOptimize(svc.report(outcome.job_id).size());
    ++hits;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(hits));
}

}  // namespace

// UseRealTime: campaigns execute on the service's own threads, so wall
// time — not this thread's CPU time — is the denominator that means
// "campaigns per second".
BENCHMARK(BM_ServiceQueuedThroughput)->Arg(1)->Arg(2)
    ->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServiceSubmitToFirstResult)->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServiceCacheHit)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  return sesame::bench::run_main(argc, argv);
}
