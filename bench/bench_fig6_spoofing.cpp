// Reproduces paper Fig. 6: "UAV area mapping mission with and without
// spoofing attack" plus the detection headline of Section V-C ("spoofing
// attack was detected immediately by the Security EDDI").
//
// The paper's attack is a ROS *message* spoofing attack: falsified data is
// injected on a topic the navigation stack trusts. Here the attacker node
// publishes counterfeit position fixes on the victim's position-fix topic
// at 1 Hz, walking the victim's estimate east — so the real vehicle is
// pushed west off its mapping lane (the red trajectory). The clean run is
// the blue trajectory. With the SESAME stack attached, the IDS flags the
// unauthorized publisher on the first message and the Security EDDI
// traces the attack tree to its root goal.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cmath>
#include <cstdio>
#include <vector>

#include "sesame/security/attack_tree.hpp"
#include "sesame/security/ids.hpp"
#include "sesame/security/security_eddi.hpp"
#include "sesame/sim/world.hpp"

namespace {

using namespace sesame;

const geo::GeoPoint kOrigin{35.1856, 33.3823, 0.0};
constexpr double kSpoofStart = 60.0;
constexpr double kDuration = 180.0;
constexpr double kSpoofWalkMps = 2.0;  // attacker's eastward walk rate

struct Trajectory {
  std::vector<geo::EnuPoint> truth;
  double detection_time = -1.0;  // Security EDDI event time, -1 = never
};

/// Runs the mapping leg. When `spoofed`, an attacker node injects
/// counterfeit position fixes from t=60 s. When `monitored`, the IDS and
/// Security EDDI watch the fix topic. When `authenticated`, the bus
/// enforces the publisher ACL (the attack-tree mitigation), so the
/// counterfeit fixes never reach the navigation stack.
Trajectory run_leg(bool spoofed, bool monitored, bool authenticated = false) {
  sim::World world(kOrigin, 99);
  sim::UavConfig cfg;
  cfg.name = "uav1";
  world.add_uav(cfg, kOrigin);
  sim::Uav& uav = world.uav_by_name("uav1");
  uav.add_waypoint({0.0, 1500.0, 30.0});  // mapping lane due north
  uav.command_takeoff();

  std::unique_ptr<security::IntrusionDetectionSystem> ids;
  std::unique_ptr<security::SecurityEddi> eddi;
  Trajectory out;
  if (authenticated) {
    world.bus().restrict_publisher(sim::position_fix_topic("uav1"),
                                   "collaborative_localization");
  }
  if (monitored) {
    ids = std::make_unique<security::IntrusionDetectionSystem>(world.bus());
    // Only Collaborative Localization may publish fixes.
    ids->authorize(sim::position_fix_topic("uav1"),
                   "collaborative_localization");
    ids->track_position_topic(sim::position_fix_topic("uav1"));
    eddi = std::make_unique<security::SecurityEddi>(
        world.bus(), security::make_spoofing_attack_tree());
    eddi->on_event([&](const security::SecurityEvent& ev) {
      if (out.detection_time < 0.0) out.detection_time = ev.time_s;
    });
  }

  double spoof_offset = 0.0;
  for (double t = 0.0; t < kDuration; t += 1.0) {
    world.step(1.0);
    if (spoofed && t >= kSpoofStart) {
      // Counterfeit fix: the victim's true position walked east — the
      // navigation stack trusts it verbatim (no publisher authentication).
      spoof_offset += kSpoofWalkMps;
      const geo::GeoPoint fake =
          geo::destination(uav.true_geo(), 90.0, spoof_offset);
      world.bus().publish(sim::position_fix_topic("uav1"), fake, "attacker",
                          world.time_s());
    }
    out.truth.push_back(uav.true_position());
  }
  return out;
}

void report() {
  std::printf("==============================================================\n");
  std::printf("Fig. 6 — Area mapping with and without spoofing attack\n");
  std::printf("==============================================================\n");

  const Trajectory clean = run_leg(false, false);
  const Trajectory attacked = run_leg(true, true);
  const Trajectory mitigated = run_leg(true, true, /*authenticated=*/true);

  std::printf("\nGround-truth trajectories (attack starts at t=%.0f s):\n",
              kSpoofStart);
  std::printf("%-8s %-24s %-24s %s\n", "t (s)", "clean (E, N)",
              "spoofed (E, N)", "deviation (m)");
  for (std::size_t i = 0; i < clean.truth.size(); i += 15) {
    const auto& c = clean.truth[i];
    const auto& a = attacked.truth[i];
    const double dev = geo::enu_ground_distance_m(c, a);
    std::printf("%-8zu (%8.1f, %8.1f)     (%8.1f, %8.1f)     %8.1f\n", i,
                c.east_m, c.north_m, a.east_m, a.north_m, dev);
  }

  const double final_dev = geo::enu_ground_distance_m(
      clean.truth.back(), attacked.truth.back());
  std::printf("\n%-44s %-14s %s\n", "metric", "paper", "measured");
  std::printf("%-44s %-14s %.1f m\n", "final trajectory deviation",
              "visible drift", final_dev);
  std::printf("%-44s %-14s %s\n", "attack detected by Security EDDI",
              "immediately",
              attacked.detection_time >= 0.0
                  ? (std::to_string(attacked.detection_time - kSpoofStart) +
                     " s after onset").c_str()
                  : "NOT DETECTED");
  // Mitigation ablation: the attack-tree mitigation (authenticated
  // publishers) keeps the vehicle on its lane while the IDS still alerts.
  const double mitigated_dev = geo::enu_ground_distance_m(
      clean.truth.back(), mitigated.truth.back());
  std::printf("%-44s %-14s %.1f m (detected: %s)\n",
              "deviation with publisher authentication", "n/a",
              mitigated_dev, mitigated.detection_time >= 0.0 ? "yes" : "no");

  std::printf("\nShape checks: deviation > 50 m at end: %s | detection within "
              "2 s of onset: %s | clean run stays on lane: %s | "
              "mitigation holds lane: %s\n\n",
              final_dev > 50.0 ? "PASS" : "FAIL",
              (attacked.detection_time >= 0.0 &&
               attacked.detection_time - kSpoofStart <= 2.0)
                  ? "PASS" : "FAIL",
              std::abs(clean.truth.back().east_m) < 5.0 ? "PASS" : "FAIL",
              mitigated_dev < 5.0 ? "PASS" : "FAIL");
}

void BM_SpoofedLeg(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_leg(true, true));
  }
}
BENCHMARK(BM_SpoofedLeg)->Unit(benchmark::kMillisecond);

void BM_IdsInspectionPerMessage(benchmark::State& state) {
  sim::World world(kOrigin, 1);
  security::IntrusionDetectionSystem ids(world.bus());
  ids.track_position_topic("pos");
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    world.bus().publish("pos", geo::destination(kOrigin, 90.0, t), "uav1", t);
  }
}
BENCHMARK(BM_IdsInspectionPerMessage);

}  // namespace

int main(int argc, char** argv) {
  report();
  return sesame::bench::run_main(argc, argv);
}
