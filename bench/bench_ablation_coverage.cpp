// Ablation D — sweep-lane spacing vs area coverage, mission time and
// detection recall.
//
// The platform's coverage planner must trade mission duration against
// gap-free imaging: lanes wider than the camera footprint finish faster
// but leave unscanned corridors where persons are missed. This ablation
// quantifies that trade-off and locates the knee (lane spacing == footprint
// width), validating the default configuration used by the Fig. 4/Fig. 5
// scenarios. A second sweep varies the fleet size at fixed spacing — the
// paper's core multi-UAV claim that more vehicles cut response time.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstdio>

#include "sesame/platform/mission_runner.hpp"

namespace {

using namespace sesame;

struct Outcome {
  double coverage = 0.0;
  double recall = 0.0;
  double time_s = 0.0;
};

Outcome run_with(double lane_spacing_m, std::size_t n_uavs) {
  platform::RunnerConfig cfg;
  cfg.sesame_enabled = true;
  cfg.n_uavs = n_uavs;
  cfg.area = {0.0, 240.0, 0.0, 240.0};
  cfg.coverage.altitude_m = 20.0;  // footprint ~27 m wide
  cfg.coverage.lane_spacing_m = lane_spacing_m;
  cfg.n_persons = 12;
  cfg.max_time_s = 1500.0;
  cfg.seed = 23;
  platform::MissionRunner runner(cfg);
  const auto r = runner.run();
  Outcome o;
  o.coverage = r.area_coverage;
  o.recall = r.detection.recall();
  o.time_s = r.mission_complete_time_s.value_or(cfg.max_time_s);
  return o;
}

void report() {
  std::printf("==============================================================\n");
  std::printf("Ablation D — lane spacing & fleet size vs coverage/time\n");
  std::printf("==============================================================\n");

  std::printf("\nLane-spacing sweep (3 UAVs, 20 m altitude, footprint ~27 m):\n");
  std::printf("%-18s %-14s %-12s %s\n", "lane spacing (m)", "coverage (%)",
              "recall (%)", "mission time (s)");
  for (double spacing : {15.0, 25.0, 35.0, 50.0, 70.0}) {
    const auto o = run_with(spacing, 3);
    std::printf("%-18.0f %-14.1f %-12.1f %.0f\n", spacing, 100.0 * o.coverage,
                100.0 * o.recall, o.time_s);
  }
  std::printf("Expected shape: coverage ~100%% while spacing <= footprint "
              "width, dropping beyond; mission time falls with spacing.\n");

  std::printf("\nFleet-size sweep (25 m lanes):\n");
  std::printf("%-10s %-14s %-12s %s\n", "UAVs", "coverage (%)", "recall (%)",
              "mission time (s)");
  double prev_time = 1e18;
  bool monotone = true;
  for (std::size_t n : {1, 2, 3, 4}) {
    const auto o = run_with(25.0, n);
    std::printf("%-10zu %-14.1f %-12.1f %.0f\n", n, 100.0 * o.coverage,
                100.0 * o.recall, o.time_s);
    if (o.time_s > prev_time + 1e-9) monotone = false;
    prev_time = o.time_s;
  }
  std::printf("\nShape check: mission time monotone decreasing in fleet "
              "size: %s\n\n", monotone ? "PASS" : "FAIL");
}

void BM_MissionVsFleetSize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_with(30.0, n));
  }
}
BENCHMARK(BM_MissionVsFleetSize)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  return sesame::bench::run_main(argc, argv);
}
