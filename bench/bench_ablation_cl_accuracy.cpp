// Ablation C — Collaborative Localization accuracy vs assistant count and
// sensor noise.
//
// The paper deploys CL with a network of three UAVs; this ablation
// quantifies how fix accuracy scales with the number of assisting UAVs and
// with the monocular-depth error, justifying the three-vehicle fleet.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstdio>

#include "sesame/localization/collaborative.hpp"
#include "sesame/mathx/stats.hpp"
#include "sesame/sim/world.hpp"

namespace {

using namespace sesame;

const geo::GeoPoint kOrigin{35.1856, 33.3823, 0.0};

struct Accuracy {
  double mean_error_m = 0.0;
  double p95_error_m = 0.0;
};

Accuracy measure(std::size_t assistants, double range_noise_frac,
                 double bearing_noise_deg, std::uint64_t seed) {
  sim::World world(kOrigin, seed);
  sim::UavConfig cfg;
  cfg.name = "affected";
  world.add_uav(cfg, kOrigin);
  std::vector<std::string> helpers;
  for (std::size_t i = 0; i < assistants; ++i) {
    sim::UavConfig h;
    h.name = "h" + std::to_string(i);
    const double angle = 360.0 * static_cast<double>(i) /
                         static_cast<double>(assistants);
    world.add_uav(h, geo::destination(kOrigin, angle, 70.0));
    helpers.push_back(h.name);
  }
  for (std::size_t i = 0; i < world.num_uavs(); ++i) {
    world.uav(i).command_takeoff();
  }
  world.run(15, 1.0);

  localization::ObservationModel model;
  model.detection_probability = 1.0;
  model.detection_range_m = 600.0;
  model.range_noise_frac = range_noise_frac;
  model.bearing_noise_deg = bearing_noise_deg;
  localization::CollaborativeLocalizer cl(world, "affected", helpers, model);

  std::vector<double> errors;
  for (int r = 0; r < 300; ++r) {
    const auto fix = cl.update();
    if (fix) errors.push_back(fix->true_error_m);
  }
  Accuracy a;
  a.mean_error_m = mathx::mean(errors);
  a.p95_error_m = mathx::quantile(errors, 0.95);
  return a;
}

void report() {
  std::printf("==============================================================\n");
  std::printf("Ablation C — Collaborative Localization accuracy scaling\n");
  std::printf("==============================================================\n");

  std::printf("\nFix error vs number of assisting UAVs "
              "(range noise 4%%, bearing noise 2 deg):\n");
  std::printf("%-14s %-16s %s\n", "assistants", "mean error (m)",
              "p95 error (m)");
  for (std::size_t n : {1, 2, 3, 4, 6}) {
    const auto a = measure(n, 0.04, 2.0, 31);
    std::printf("%-14zu %-16.2f %.2f\n", n, a.mean_error_m, a.p95_error_m);
  }

  std::printf("\nFix error vs monocular-depth noise (2 assistants):\n");
  std::printf("%-20s %-16s %s\n", "range noise (%)", "mean error (m)",
              "p95 error (m)");
  for (double f : {0.01, 0.02, 0.04, 0.08, 0.16}) {
    const auto a = measure(2, f, 2.0, 37);
    std::printf("%-20.0f %-16.2f %.2f\n", 100.0 * f, a.mean_error_m,
                a.p95_error_m);
  }

  std::printf("\nFix error vs bearing noise (2 assistants, 4%% range noise):\n");
  std::printf("%-20s %-16s %s\n", "bearing noise (deg)", "mean error (m)",
              "p95 error (m)");
  for (double b : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const auto a = measure(2, 0.04, b, 41);
    std::printf("%-20.1f %-16.2f %.2f\n", b, a.mean_error_m, a.p95_error_m);
  }
  std::printf("\nExpected shape: error falls with more assistants and rises "
              "with either noise source; the paper's 3-UAV network sits at "
              "metre-level accuracy — enough for the <0.75 m collaborative-"
              "navigation guarantee only with tight sensors, and for safe "
              "landing in all configurations.\n\n");
}

void BM_FixUpdate(benchmark::State& state) {
  const auto assistants = static_cast<std::size_t>(state.range(0));
  sim::World world(kOrigin, 5);
  sim::UavConfig cfg;
  cfg.name = "affected";
  world.add_uav(cfg, kOrigin);
  std::vector<std::string> helpers;
  for (std::size_t i = 0; i < assistants; ++i) {
    sim::UavConfig h;
    h.name = "h" + std::to_string(i);
    world.add_uav(h, geo::destination(kOrigin, 120.0 * i, 70.0));
    helpers.push_back(h.name);
  }
  localization::ObservationModel model;
  model.detection_probability = 1.0;
  model.detection_range_m = 600.0;
  localization::CollaborativeLocalizer cl(world, "affected", helpers, model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cl.update());
  }
}
BENCHMARK(BM_FixUpdate)->Arg(1)->Arg(2)->Arg(3)->Arg(6);

}  // namespace

int main(int argc, char** argv) {
  report();
  return sesame::bench::run_main(argc, argv);
}
