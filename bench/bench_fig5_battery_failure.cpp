// Reproduces paper Fig. 5: "Probability of Failure of a UAV with Battery
// Failure" plus the headline availability numbers of Section V-A.
//
// Scenario: a 3-UAV SAR mission sized so the sweep completes around the
// 510th second. At t=250 s, UAV-2's battery thermally faults (SoC 80% ->
// 40%, cell at 70 C).
//   - Without SESAME (paper red line): the vehicle aborts immediately,
//     returns to base, swaps the pack (60 s) and resumes — availability
//     ~80%, mission finishes late.
//   - With SESAME (paper blue line): SafeDrones' cumulative P(fail) rises
//     after the fault; the vehicle keeps flying until the 0.9 abort
//     threshold, by which time the mission is essentially complete —
//     availability ~91%, ~11% better completion time.
//
// The run prints the P(fail) time series (the figure's y-axis) and the
// paper-vs-measured summary, then google-benchmark times the runtime
// reliability evaluation path.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstdio>

#include "sesame/platform/mission_runner.hpp"

namespace {

using namespace sesame;

platform::RunnerConfig fig5_config(bool sesame_on) {
  platform::RunnerConfig cfg;
  cfg.sesame_enabled = sesame_on;
  cfg.n_uavs = 3;
  // Sized so the sweep takes roughly 500 s at 8 m/s cruise.
  cfg.area = {0.0, 300.0, 0.0, 620.0};
  cfg.coverage.altitude_m = 20.0;  // at reference altitude: no descend event
  cfg.coverage.lane_spacing_m = 30.0;
  cfg.n_persons = 8;
  cfg.max_time_s = 2000.0;
  cfg.battery_fault = platform::BatteryFaultEvent{"uav2", 250.0, 0.40, 68.5};
  // Paper thresholds: fly on until P(fail) reaches 0.9.
  cfg.eddi.reliability.medium_threshold = 0.30;
  cfg.eddi.reliability.low_threshold = 0.88;
  cfg.eddi.reliability.abort_threshold = 0.90;
  return cfg;
}

void report() {
  std::printf("==============================================================\n");
  std::printf("Fig. 5 — Probability of Failure of a UAV with Battery Failure\n");
  std::printf("==============================================================\n");

  auto with = platform::MissionRunner(fig5_config(true)).run();
  auto without = platform::MissionRunner(fig5_config(false)).run();

  std::printf("\nP(fail) time series of the faulted UAV (SESAME run):\n");
  std::printf("%-8s %-10s %-7s %-9s %s\n", "t (s)", "P(fail)", "SoC",
              "temp(C)", "mode");
  double crossed_09 = -1.0;
  for (const auto& r : with.series.at("uav2")) {
    if (static_cast<long>(r.time_s) % 25 == 0) {
      std::printf("%-8.0f %-10.4f %-7.2f %-9.1f %s\n", r.time_s, r.p_fail,
                  r.soc, r.battery_temp_c,
                  sim::flight_mode_name(r.mode).c_str());
    }
    if (crossed_09 < 0.0 && r.p_fail >= 0.9) crossed_09 = r.time_s;
  }

  const double t_with = with.mission_complete_time_s.value_or(-1.0);
  const double t_without = without.mission_complete_time_s.value_or(-1.0);
  const double improvement =
      (t_without > 0 && t_with > 0) ? 100.0 * (t_without - t_with) / t_without
                                    : 0.0;

  std::printf("\n%-36s %-14s %s\n", "metric", "paper", "measured");
  std::printf("%-36s %-14s %.0f s\n", "fault injection", "250 s", 250.0);
  std::printf("%-36s %-14s %s\n", "P(fail) reaches 0.9 (SESAME)", "~510 s",
              crossed_09 > 0 ? (std::to_string((int)crossed_09) + " s").c_str()
                             : "never (mission ended first)");
  std::printf("%-36s %-14s %.0f s\n", "mission completion (SESAME)", "~510 s",
              t_with);
  std::printf("%-36s %-14s %.0f s\n", "mission completion (baseline)",
              "~later", t_without);
  const double avail_with = with.availability_per_uav.at("uav2");
  const double avail_without = without.availability_per_uav.at("uav2");
  std::printf("%-36s %-14s %.1f %%\n", "faulted-UAV availability (SESAME)",
              "91 %", 100.0 * avail_with);
  std::printf("%-36s %-14s %.1f %%\n", "faulted-UAV availability (baseline)",
              "80 %", 100.0 * avail_without);
  std::printf("%-36s %-14s %.1f %%\n", "mission-time improvement", "11 %",
              improvement);
  std::printf("%-36s %-14s %zu waypoints\n", "task redistribution", "yes",
              with.waypoints_redistributed);
  std::printf("\nShape checks: SESAME availability > baseline: %s | "
              "SESAME completes sooner: %s\n\n",
              avail_with > avail_without ? "PASS" : "FAIL",
              (t_with > 0 && (t_without < 0 || t_with < t_without)) ? "PASS"
                                                                    : "FAIL");
}

void BM_ReliabilityEvaluate(benchmark::State& state) {
  safedrones::ReliabilityMonitor monitor;
  safedrones::TelemetrySnapshot snap;
  snap.battery_soc = 0.4;
  snap.battery_temp_c = 70.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.evaluate(snap, 600.0));
  }
}
BENCHMARK(BM_ReliabilityEvaluate);

void BM_BatteryTrackerAdvance(benchmark::State& state) {
  safedrones::BatteryRuntimeTracker tracker;
  tracker.observe_soc(0.4);
  for (auto _ : state) {
    tracker.advance(1.0, 70.0);
    benchmark::DoNotOptimize(tracker.failure_probability());
  }
}
BENCHMARK(BM_BatteryTrackerAdvance);

void BM_Fig5FullScenario(benchmark::State& state) {
  for (auto _ : state) {
    platform::MissionRunner runner(fig5_config(true));
    benchmark::DoNotOptimize(runner.run());
  }
}
BENCHMARK(BM_Fig5FullScenario)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  return sesame::bench::run_main(argc, argv);
}
