// Microbenchmarks for the bus publish→deliver hot path.
//
// Every simulated second funnels through Bus::publish (telemetry, position
// fixes, alerts), so per-publish overhead bounds how much faster than real
// time the whole stack can run. These benches isolate the pipeline stages:
// bare fan-out, fan-out width, journaling, tap + fault-policy bookkeeping,
// and subscription churn. `BM_BusPublishSteadyState` is the number the CI
// bench-smoke job gates on (>20% regression vs the committed
// BENCH_bus_publish.json baseline fails the build).
//
//   bench_bus_publish --json bus.json     # machine-readable results
//
// See docs/PERFORMANCE.md for the measurement methodology.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "sesame/mw/bus.hpp"
#include "sesame/mw/fault_plan.hpp"
#include "sesame/obs/metrics.hpp"

namespace {

using namespace sesame;

/// Telemetry-sized payload: what the real hot path carries.
struct Telemetry {
  double lat = 35.18;
  double lon = 33.38;
  double alt = 20.0;
  double soc = 0.9;
};

/// Steady state of a mission run: a warm topic, a few subscribers, no
/// journal growth, no instrumentation — the configuration the ≥2×
/// campaign-throughput target lives or dies on.
void BM_BusPublishSteadyState(benchmark::State& state) {
  mw::Bus bus;
  bus.enable_journal(false);
  std::uint64_t sink = 0;
  std::vector<mw::Subscription> subs;
  for (int i = 0; i < 3; ++i) {
    subs.push_back(bus.subscribe<Telemetry>(
        "uav/uav1/telemetry",
        [&sink](const mw::MessageHeader& h, const Telemetry&) {
          sink += h.seq;
        }));
  }
  const Telemetry t;
  double time_s = 0.0;
  for (auto _ : state) {
    bus.publish("uav/uav1/telemetry", t, "uav1", time_s);
    time_s += 0.5;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BusPublishSteadyState);

/// Steady state through the interned fast path: ids resolved once up
/// front, publish(TopicId, ..., SourceId, ...) thereafter — what
/// sim::World and MissionRunner actually call per tick. The delta against
/// BM_BusPublishSteadyState is the price of the string-keyed shim.
void BM_BusPublishInterned(benchmark::State& state) {
  mw::Bus bus;
  bus.enable_journal(false);
  std::uint64_t sink = 0;
  std::vector<mw::Subscription> subs;
  for (int i = 0; i < 3; ++i) {
    subs.push_back(bus.subscribe<Telemetry>(
        "uav/uav1/telemetry",
        [&sink](const mw::MessageHeader& h, const Telemetry&) {
          sink += h.seq;
        }));
  }
  const mw::TopicId topic = bus.intern_topic("uav/uav1/telemetry");
  const mw::SourceId source = bus.intern_source("uav1");
  const Telemetry t;
  double time_s = 0.0;
  for (auto _ : state) {
    bus.publish(topic, t, source, time_s);
    time_s += 0.5;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BusPublishInterned);

/// Fan-out width: per-publish cost with N subscribers on the topic.
void BM_BusPublishFanout(benchmark::State& state) {
  mw::Bus bus;
  bus.enable_journal(false);
  std::uint64_t sink = 0;
  std::vector<mw::Subscription> subs;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    subs.push_back(bus.subscribe<Telemetry>(
        "uav/uav1/telemetry",
        [&sink](const mw::MessageHeader& h, const Telemetry&) {
          sink += h.seq;
        }));
  }
  const Telemetry t;
  for (auto _ : state) {
    bus.publish("uav/uav1/telemetry", t, "uav1", 1.0);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BusPublishFanout)->Arg(1)->Arg(4)->Arg(16);

/// Journal cost: steady state plus the per-attempt journal record.
void BM_BusPublishJournaled(benchmark::State& state) {
  mw::Bus bus;  // journal enabled by default
  std::uint64_t sink = 0;
  auto sub = bus.subscribe<Telemetry>(
      "uav/uav1/telemetry",
      [&sink](const mw::MessageHeader& h, const Telemetry&) { sink += h.seq; });
  const Telemetry t;
  std::uint64_t n = 0;
  for (auto _ : state) {
    bus.publish("uav/uav1/telemetry", t, "uav1", 1.0);
    // Keep the journal from growing without bound across bench iterations.
    if ((++n & 0xFFFFu) == 0) bus.clear_journal();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BusPublishJournaled);

/// Tap + fault-policy bookkeeping: an IDS-style tap observes every
/// attempt and a FaultInjector (whose rule never matches this topic) is
/// consulted for every accepted publication.
void BM_BusPublishWithTapAndPolicy(benchmark::State& state) {
  mw::Bus bus;
  bus.enable_journal(false);
  std::uint64_t sink = 0;
  auto sub = bus.subscribe<Telemetry>(
      "uav/uav1/telemetry",
      [&sink](const mw::MessageHeader& h, const Telemetry&) { sink += h.seq; });
  std::uint64_t taps_seen = 0;
  auto tap = bus.add_tap(
      [&taps_seen](const mw::MessageHeader&, const std::any&,
                   std::type_index) { ++taps_seen; });
  mw::FaultPlan plan;
  plan.seed = 7;
  mw::FaultRule rule;
  rule.topic_prefix = "gcs/";  // never matches the benched topic
  rule.drop_probability = 0.5;
  plan.rules.push_back(rule);
  mw::FaultInjector injector(plan);
  auto policy = bus.add_delivery_policy(&injector);
  const Telemetry t;
  for (auto _ : state) {
    bus.publish("uav/uav1/telemetry", t, "uav1", 1.0);
  }
  benchmark::DoNotOptimize(sink);
  benchmark::DoNotOptimize(taps_seen);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BusPublishWithTapAndPolicy);

/// Instrumented publish: metrics registry attached (per-topic counters and
/// the delivery-latency histogram on the fan-out).
void BM_BusPublishWithMetrics(benchmark::State& state) {
  mw::Bus bus;
  bus.enable_journal(false);
  obs::MetricsRegistry metrics;
  bus.set_metrics(&metrics);
  std::uint64_t sink = 0;
  auto sub = bus.subscribe<Telemetry>(
      "uav/uav1/telemetry",
      [&sink](const mw::MessageHeader& h, const Telemetry&) { sink += h.seq; });
  const Telemetry t;
  for (auto _ : state) {
    bus.publish("uav/uav1/telemetry", t, "uav1", 1.0);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BusPublishWithMetrics);

/// Publish into the void: no subscribers, journal off — the floor of the
/// pipeline (header build + topic resolution + counters).
void BM_BusPublishNoSubscribers(benchmark::State& state) {
  mw::Bus bus;
  bus.enable_journal(false);
  const Telemetry t;
  for (auto _ : state) {
    bus.publish("uav/uav1/telemetry", t, "uav1", 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BusPublishNoSubscribers);

/// Subscription churn on a busy topic: subscribe + unsubscribe with 16
/// standing subscribers (handlers re-subscribing mid-mission, scenario
/// teardown).
void BM_BusSubscribeUnsubscribe(benchmark::State& state) {
  mw::Bus bus;
  bus.enable_journal(false);
  std::vector<mw::Subscription> standing;
  for (int i = 0; i < 16; ++i) {
    standing.push_back(bus.subscribe<Telemetry>(
        "uav/uav1/telemetry",
        [](const mw::MessageHeader&, const Telemetry&) {}));
  }
  for (auto _ : state) {
    auto s = bus.subscribe<Telemetry>(
        "uav/uav1/telemetry",
        [](const mw::MessageHeader&, const Telemetry&) {});
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BusSubscribeUnsubscribe);

}  // namespace

int main(int argc, char** argv) {
  return sesame::bench::run_main(argc, argv);
}
