// Fleet-scale world stepping: how fast does sim::World advance N vehicles?
//
// The struct-of-arrays fleet state plus the phase-split step (batched
// guidance, then per-vehicle integration) is what lets a 1,000-vehicle
// fleet step faster than real time on one core; these benches measure
// exactly that. `BM_FleetStep/<N>` sweeps N = 4 → 1024 and reports both
// steps/s (items_per_second — the number the CI bench-smoke job gates on
// against BENCH_fleet_scaling.json) and sim-seconds per wall second
// (`sim_x_realtime`; ≥ 1 at N = 1024 in a Release build is the acceptance
// floor). BM_FleetNeighborSweep adds the grid-backed proximity query every
// vehicle runs per platform tick, replacing the old all-pairs scan.
//
//   bench_fleet_scaling --json fleet.json    # machine-readable results
//
// See docs/PERFORMANCE.md for the measurement methodology.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <string>

#include "bench_json.hpp"
#include "sesame/geo/geodesy.hpp"
#include "sesame/sim/uav.hpp"
#include "sesame/sim/world.hpp"

namespace {

using namespace sesame;

const geo::GeoPoint kOrigin{35.1856, 33.3823, 0.0};
constexpr double kDtS = 1.0;

/// Builds an airborne fleet of `n` vehicles spread along the southern edge
/// of an n-scaled area, each flying a long northbound leg (so every bench
/// iteration exercises the mission-guidance path, not the hover path).
void spawn_fleet(sim::World& world, std::size_t n) {
  const double width_m = 100.0 * static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    sim::UavConfig uc;
    uc.name = "uav" + std::to_string(i + 1);
    const double east = (static_cast<double>(i) + 0.5) * width_m /
                        static_cast<double>(n);
    const geo::EnuPoint home{east, -20.0, 0.0};
    const std::size_t ix = world.add_uav(uc, world.frame().to_geo(home));
    sim::Uav& uav = world.uav(ix);
    uav.add_waypoint({east, 4000.0, uc.mission_altitude_m});
    uav.add_waypoint({east, 0.0, uc.mission_altitude_m});
    uav.command_takeoff();
  }
  // Lift through the takeoff transient so the steady state is Mission.
  for (int warm = 0; warm < 20; ++warm) world.step(kDtS);
}

/// One world step across the whole fleet: plan + integrate + telemetry.
void BM_FleetStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::World world(kOrigin, 42);
  spawn_fleet(world, n);
  for (auto _ : state) {
    world.step(kDtS);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["sim_x_realtime"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kDtS,
      benchmark::Counter::kIsRate);
  state.counters["uavs"] = static_cast<double>(n);
}
BENCHMARK(BM_FleetStep)->Arg(4)->Arg(32)->Arg(256)->Arg(1024);

/// World step plus the per-vehicle proximity query the platform layer runs
/// every tick (collaborative-localization availability, 250 m radius) —
/// grid-backed instead of the all-pairs scan.
void BM_FleetNeighborSweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::World world(kOrigin, 42);
  spawn_fleet(world, n);
  std::uint64_t neighbors = 0;
  for (auto _ : state) {
    world.step(kDtS);
    for (std::size_t i = 0; i < n; ++i) {
      neighbors += world.has_neighbor_within(i, 250.0, /*airborne_only=*/true)
                       ? 1u
                       : 0u;
    }
  }
  benchmark::DoNotOptimize(neighbors);
  state.SetItemsProcessed(state.iterations());
  state.counters["uavs"] = static_cast<double>(n);
}
BENCHMARK(BM_FleetNeighborSweep)->Arg(4)->Arg(32)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  return sesame::bench::run_main(argc, argv);
}
