// Microbenchmarks for the wire transport: codec encode/decode, the framed
// COBS+CRC path, and full bus-to-bus federation, against the in-process
// publish path as the reference. The interesting numbers are msgs/s
// through a bridge pair and bytes/msg on the wire (items_per_second and
// the bytes_per_msg counter in the JSON output) — the cost of taking the
// paper's broker topology out of process.
//
//   bench_wire --json wire.json          # machine-readable results
//
// CI gates BM_BridgeFederation against the committed BENCH_wire.json
// baseline (>20% regression fails), like the bus-publish benches.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "sesame/mw/bus.hpp"
#include "sesame/mw/bus_bridge.hpp"
#include "sesame/mw/codec.hpp"
#include "sesame/mw/framing.hpp"
#include "sesame/sim/wire_types.hpp"
#include "sesame/sim/world.hpp"

namespace {

using namespace sesame;

sim::Telemetry bench_telemetry() {
  sim::Telemetry t;
  t.uav = "uav1";
  t.reported_position = {35.1875, 33.375, 30.0};
  t.altitude_m = 30.0;
  t.battery_soc = 0.9;
  t.battery_temp_c = 28.5;
  t.mode = sim::FlightMode::kMission;
  t.time_s = 17.5;
  return t;
}

mw::OutboundMessage bench_header() {
  mw::OutboundMessage m;
  m.topic = "uav/uav1/telemetry";
  m.source = "uav1";
  m.seq = 1;
  m.time_s = 17.5;
  return m;
}

/// Message encode alone: struct -> wire bytes.
void BM_CodecEncodeTelemetry(benchmark::State& state) {
  mw::Codec codec;
  sim::register_wire_types(codec);
  const sim::Telemetry t = bench_telemetry();
  const mw::OutboundMessage m = bench_header();
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto wire = codec.encode(m, t);
    bytes = wire.size();
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["bytes_per_msg"] = static_cast<double>(bytes);
}
BENCHMARK(BM_CodecEncodeTelemetry);

/// Structural decode + typed payload decode + publish onto a live bus —
/// the receive half of a bridge, without the framing layer.
void BM_CodecDecodeDeliver(benchmark::State& state) {
  mw::Codec codec;
  sim::register_wire_types(codec);
  const auto wire = codec.encode(bench_header(), bench_telemetry());
  mw::Bus bus;
  bus.enable_journal(false);
  std::uint64_t sink = 0;
  auto sub = bus.subscribe<sim::Telemetry>(
      "uav/uav1/telemetry",
      [&sink](const mw::MessageHeader& h, const sim::Telemetry&) {
        sink += h.seq;
      });
  for (auto _ : state) {
    const auto m = mw::Codec::decode(wire);
    codec.deliver(bus, *m);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodecDecodeDeliver);

/// Frame + COBS + CRC down and back up again, no bus: the transport tax.
void BM_FramingRoundTrip(benchmark::State& state) {
  mw::Codec codec;
  sim::register_wire_types(codec);
  const auto message = codec.encode(bench_header(), bench_telemetry());
  mw::Framing a, b;
  a.start();
  b.start();
  const mw::Framing::MessageSink drop_credit =
      [](std::span<const std::uint8_t>, std::uint64_t) {};
  b.feed(a.take_outbound(), drop_credit);
  a.feed(b.take_outbound(), drop_credit);
  b.feed(a.take_outbound(), drop_credit);
  std::uint64_t delivered = 0;
  const mw::Framing::MessageSink sink =
      [&delivered](std::span<const std::uint8_t> payload, std::uint64_t) {
        delivered += payload.size();
      };
  std::size_t wire_bytes = 0;
  for (auto _ : state) {
    a.send_message(message);
    const auto wire = a.take_outbound();
    wire_bytes = wire.size();
    b.feed(wire, sink);
    // Return the credit so the window never closes.
    a.feed(b.take_outbound(), drop_credit);
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations());
  state.counters["bytes_per_msg"] = static_cast<double>(wire_bytes);
}
BENCHMARK(BM_FramingRoundTrip);

/// The whole stack: publish on bus A, tap -> encode -> frame -> bytes ->
/// deframe -> decode -> republish on bus B, credits flowing back. This is
/// the number to compare with BM_InProcessPublish.
void BM_BridgeFederation(benchmark::State& state) {
  mw::Codec codec;
  sim::register_wire_types(codec);
  mw::Bus bus_a, bus_b;
  bus_a.enable_journal(false);
  bus_b.enable_journal(false);
  mw::BusBridge bridge_a(bus_a, codec), bridge_b(bus_b, codec);
  bridge_a.start();
  bridge_b.start();
  mw::BusBridge::pump(bridge_a, bridge_b);
  std::uint64_t sink = 0;
  auto sub = bus_b.subscribe<sim::Telemetry>(
      "uav/uav1/telemetry",
      [&sink](const mw::MessageHeader& h, const sim::Telemetry&) {
        sink += h.seq;
      });
  const sim::Telemetry t = bench_telemetry();
  double time_s = 0.0;
  for (auto _ : state) {
    bus_a.publish("uav/uav1/telemetry", t, "uav1", time_s);
    time_s += 0.5;
    mw::BusBridge::pump(bridge_a, bridge_b);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
  const auto& wire = bridge_a.link_counters();
  if (wire.messages_tx > 0) {
    state.counters["bytes_per_msg"] =
        static_cast<double>(wire.bytes_tx) /
        static_cast<double>(wire.messages_tx);
  }
}
BENCHMARK(BM_BridgeFederation);

/// Reference: the same telemetry publish staying in-process (one bus, one
/// subscriber). The federation slowdown factor is this / federation.
void BM_InProcessPublish(benchmark::State& state) {
  mw::Bus bus;
  bus.enable_journal(false);
  std::uint64_t sink = 0;
  auto sub = bus.subscribe<sim::Telemetry>(
      "uav/uav1/telemetry",
      [&sink](const mw::MessageHeader& h, const sim::Telemetry&) {
        sink += h.seq;
      });
  const sim::Telemetry t = bench_telemetry();
  double time_s = 0.0;
  for (auto _ : state) {
    bus.publish("uav/uav1/telemetry", t, "uav1", time_s);
    time_s += 0.5;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InProcessPublish);

}  // namespace

int main(int argc, char** argv) {
  return sesame::bench::run_main(argc, argv);
}
