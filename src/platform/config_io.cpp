#include "sesame/platform/config_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sesame::platform {

namespace ode = eddi::ode;

eddi::ode::Value config_to_json(const RunnerConfig& config) {
  ode::Value doc;
  doc["sesame_enabled"] = config.sesame_enabled;
  doc["dt_s"] = config.dt_s;
  doc["max_time_s"] = config.max_time_s;
  doc["consert_period_s"] = config.consert_period_s;
  doc["consert_eval_cache"] = config.consert_eval_cache;
  doc["battery_swap_time_s"] = config.battery_swap_time_s;
  doc["baseline_rtb_soc"] = config.baseline_rtb_soc;
  doc["n_uavs"] = config.n_uavs;
  doc["n_persons"] = config.n_persons;
  doc["descend_altitude_m"] = config.descend_altitude_m;
  doc["descend_patience"] = config.descend_patience;
  doc["lossy_links"] = config.lossy_links;
  doc["telemetry_staleness_window_s"] = config.telemetry_staleness_window_s;
  doc["recovery_enabled"] = config.recovery_enabled;
  doc["health_heartbeat_period_s"] = config.health_heartbeat_period_s;
  doc["seed"] = static_cast<double>(config.seed);

  ode::Value recovery;
  recovery["staleness_window_s"] = config.recovery.staleness_window_s;
  recovery["ping_timeout_s"] = config.recovery.ping_timeout_s;
  recovery["max_pings"] = static_cast<double>(config.recovery.max_pings);
  recovery["ping_backoff"] = config.recovery.ping_backoff;
  recovery["demote_grace_s"] = config.recovery.demote_grace_s;
  recovery["rth_timeout_s"] = config.recovery.rth_timeout_s;
  recovery["min_soc_rtb"] = config.recovery.min_soc_rtb;
  doc["recovery"] = recovery;

  ode::Value invariants;
  invariants["min_soc_floor"] = config.invariants.min_soc_floor;
  invariants["max_evidence_age_s"] = config.invariants.max_evidence_age_s;
  doc["invariants"] = invariants;

  if (config.failure_schedule) {
    ode::Value events{ode::Value::Array{}};
    for (const auto& e : config.failure_schedule->events) {
      ode::Value ev;
      ev["uav"] = e.uav;
      ev["mode"] = std::string(sim::failure_mode_name(e.mode));
      ev["time_s"] = e.time_s;
      ev["duration_s"] = e.duration_s;
      ev["soc_after"] = e.soc_after;
      ev["temp_c"] = e.temp_c;
      events.push_back(ev);
    }
    ode::Value schedule;
    schedule["events"] = events;
    doc["failure_schedule"] = schedule;
  }

  ode::Value comm_link;
  comm_link["nominal_range_m"] = config.comm_link.nominal_range_m;
  comm_link["max_range_m"] = config.comm_link.max_range_m;
  comm_link["fading_sigma"] = config.comm_link.fading_sigma;
  comm_link["usable_threshold"] = config.comm_link.usable_threshold;
  doc["comm_link"] = comm_link;

  if (config.fault_plan) {
    ode::Value plan;
    plan["seed"] = static_cast<double>(config.fault_plan->seed);
    ode::Value rules{ode::Value::Array{}};
    for (const auto& r : config.fault_plan->rules) {
      ode::Value rule;
      if (!r.topic_prefix.empty()) rule["topic_prefix"] = r.topic_prefix;
      if (!r.topic_suffix.empty()) rule["topic_suffix"] = r.topic_suffix;
      if (!r.source.empty()) rule["source"] = r.source;
      rule["start_time_s"] = r.start_time_s;
      // Infinity is not representable in JSON; absent = never stops.
      if (std::isfinite(r.stop_time_s)) rule["stop_time_s"] = r.stop_time_s;
      rule["drop_probability"] = r.drop_probability;
      rule["delay_probability"] = r.delay_probability;
      rule["delay_steps"] = static_cast<double>(r.delay_steps);
      rule["duplicate_probability"] = r.duplicate_probability;
      rule["reorder"] = r.reorder;
      rules.push_back(rule);
    }
    plan["rules"] = rules;
    doc["fault_plan"] = plan;
  }

  ode::Value area;
  area["east_min"] = config.area.east_min;
  area["east_max"] = config.area.east_max;
  area["north_min"] = config.area.north_min;
  area["north_max"] = config.area.north_max;
  doc["area"] = area;

  ode::Value coverage;
  coverage["altitude_m"] = config.coverage.altitude_m;
  coverage["lane_spacing_m"] = config.coverage.lane_spacing_m;
  coverage["along_track_spacing_m"] = config.coverage.along_track_spacing_m;
  doc["coverage"] = coverage;

  if (config.battery_fault) {
    ode::Value ev;
    ev["uav"] = config.battery_fault->uav;
    ev["time_s"] = config.battery_fault->time_s;
    ev["soc_after"] = config.battery_fault->soc_after;
    ev["temp_c"] = config.battery_fault->temp_c;
    doc["battery_fault"] = ev;
  }
  if (config.spoofing) {
    ode::Value ev;
    ev["uav"] = config.spoofing->uav;
    ev["time_s"] = config.spoofing->time_s;
    ev["walk_mps"] = config.spoofing->walk_mps;
    doc["spoofing"] = ev;
  }
  return doc;
}

namespace {

[[noreturn]] void unknown_key(const std::string& scope, const std::string& key) {
  throw std::runtime_error("config_from_json: unknown key '" + key + "' in " +
                           scope);
}

double number(const ode::Value& v, const char* what) {
  if (!v.is_number()) {
    throw std::invalid_argument(std::string("config_from_json: ") + what +
                                " must be a number");
  }
  return v.as_number();
}

}  // namespace

RunnerConfig config_from_json(const eddi::ode::Value& doc) {
  if (!doc.is_object()) {
    throw std::invalid_argument("config_from_json: top level must be an object");
  }
  RunnerConfig config;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "sesame_enabled") {
      if (!value.is_bool()) {
        throw std::invalid_argument("config_from_json: sesame_enabled bool");
      }
      config.sesame_enabled = value.as_bool();
    } else if (key == "dt_s") {
      config.dt_s = number(value, "dt_s");
    } else if (key == "max_time_s") {
      config.max_time_s = number(value, "max_time_s");
    } else if (key == "consert_period_s") {
      config.consert_period_s = number(value, "consert_period_s");
    } else if (key == "consert_eval_cache") {
      if (!value.is_bool()) {
        throw std::invalid_argument("config_from_json: consert_eval_cache bool");
      }
      config.consert_eval_cache = value.as_bool();
    } else if (key == "battery_swap_time_s") {
      config.battery_swap_time_s = number(value, "battery_swap_time_s");
    } else if (key == "baseline_rtb_soc") {
      config.baseline_rtb_soc = number(value, "baseline_rtb_soc");
    } else if (key == "n_uavs") {
      config.n_uavs = static_cast<std::size_t>(number(value, "n_uavs"));
    } else if (key == "n_persons") {
      config.n_persons = static_cast<std::size_t>(number(value, "n_persons"));
    } else if (key == "descend_altitude_m") {
      config.descend_altitude_m = number(value, "descend_altitude_m");
    } else if (key == "descend_patience") {
      config.descend_patience =
          static_cast<int>(number(value, "descend_patience"));
    } else if (key == "lossy_links") {
      if (!value.is_bool()) {
        throw std::invalid_argument("config_from_json: lossy_links bool");
      }
      config.lossy_links = value.as_bool();
    } else if (key == "telemetry_staleness_window_s") {
      config.telemetry_staleness_window_s =
          number(value, "telemetry_staleness_window_s");
    } else if (key == "recovery_enabled") {
      if (!value.is_bool()) {
        throw std::invalid_argument("config_from_json: recovery_enabled bool");
      }
      config.recovery_enabled = value.as_bool();
    } else if (key == "health_heartbeat_period_s") {
      config.health_heartbeat_period_s =
          number(value, "health_heartbeat_period_s");
    } else if (key == "recovery") {
      for (const auto& [rkey, rvalue] : value.as_object()) {
        if (rkey == "staleness_window_s") config.recovery.staleness_window_s = number(rvalue, rkey.c_str());
        else if (rkey == "ping_timeout_s") config.recovery.ping_timeout_s = number(rvalue, rkey.c_str());
        else if (rkey == "max_pings") config.recovery.max_pings = static_cast<std::size_t>(number(rvalue, rkey.c_str()));
        else if (rkey == "ping_backoff") config.recovery.ping_backoff = number(rvalue, rkey.c_str());
        else if (rkey == "demote_grace_s") config.recovery.demote_grace_s = number(rvalue, rkey.c_str());
        else if (rkey == "rth_timeout_s") config.recovery.rth_timeout_s = number(rvalue, rkey.c_str());
        else if (rkey == "min_soc_rtb") config.recovery.min_soc_rtb = number(rvalue, rkey.c_str());
        else unknown_key("recovery", rkey);
      }
    } else if (key == "invariants") {
      for (const auto& [ikey, ivalue] : value.as_object()) {
        if (ikey == "min_soc_floor") config.invariants.min_soc_floor = number(ivalue, ikey.c_str());
        else if (ikey == "max_evidence_age_s") config.invariants.max_evidence_age_s = number(ivalue, ikey.c_str());
        else unknown_key("invariants", ikey);
      }
    } else if (key == "failure_schedule") {
      sim::FailureSchedule schedule;
      for (const auto& [skey, svalue] : value.as_object()) {
        if (skey == "events") {
          if (!svalue.is_array()) {
            throw std::invalid_argument(
                "config_from_json: failure_schedule.events array");
          }
          for (const auto& evalue : svalue.as_array()) {
            sim::FailureEvent ev;
            for (const auto& [ekey, evv] : evalue.as_object()) {
              if (ekey == "uav") ev.uav = evv.as_string();
              else if (ekey == "mode") ev.mode = sim::failure_mode_from_name(evv.as_string());
              else if (ekey == "time_s") ev.time_s = number(evv, ekey.c_str());
              else if (ekey == "duration_s") ev.duration_s = number(evv, ekey.c_str());
              else if (ekey == "soc_after") ev.soc_after = number(evv, ekey.c_str());
              else if (ekey == "temp_c") ev.temp_c = number(evv, ekey.c_str());
              else unknown_key("failure_schedule event", ekey);
            }
            schedule.events.push_back(std::move(ev));
          }
        } else unknown_key("failure_schedule", skey);
      }
      config.failure_schedule = std::move(schedule);
    } else if (key == "seed") {
      config.seed = static_cast<std::uint64_t>(number(value, "seed"));
    } else if (key == "comm_link") {
      for (const auto& [lkey, lvalue] : value.as_object()) {
        if (lkey == "nominal_range_m") config.comm_link.nominal_range_m = number(lvalue, lkey.c_str());
        else if (lkey == "max_range_m") config.comm_link.max_range_m = number(lvalue, lkey.c_str());
        else if (lkey == "fading_sigma") config.comm_link.fading_sigma = number(lvalue, lkey.c_str());
        else if (lkey == "usable_threshold") config.comm_link.usable_threshold = number(lvalue, lkey.c_str());
        else unknown_key("comm_link", lkey);
      }
    } else if (key == "fault_plan") {
      mw::FaultPlan plan;
      for (const auto& [pkey, pvalue] : value.as_object()) {
        if (pkey == "seed") {
          plan.seed = static_cast<std::uint64_t>(number(pvalue, "fault_plan.seed"));
        } else if (pkey == "rules") {
          if (!pvalue.is_array()) {
            throw std::invalid_argument("config_from_json: fault_plan.rules array");
          }
          for (const auto& rvalue : pvalue.as_array()) {
            mw::FaultRule rule;
            for (const auto& [rkey, rv] : rvalue.as_object()) {
              if (rkey == "topic_prefix") rule.topic_prefix = rv.as_string();
              else if (rkey == "topic_suffix") rule.topic_suffix = rv.as_string();
              else if (rkey == "source") rule.source = rv.as_string();
              else if (rkey == "start_time_s") rule.start_time_s = number(rv, rkey.c_str());
              else if (rkey == "stop_time_s") rule.stop_time_s = number(rv, rkey.c_str());
              else if (rkey == "drop_probability") rule.drop_probability = number(rv, rkey.c_str());
              else if (rkey == "delay_probability") rule.delay_probability = number(rv, rkey.c_str());
              else if (rkey == "delay_steps") rule.delay_steps = static_cast<std::size_t>(number(rv, rkey.c_str()));
              else if (rkey == "duplicate_probability") rule.duplicate_probability = number(rv, rkey.c_str());
              else if (rkey == "reorder") {
                if (!rv.is_bool()) {
                  throw std::invalid_argument("config_from_json: reorder bool");
                }
                rule.reorder = rv.as_bool();
              } else unknown_key("fault_plan rule", rkey);
            }
            rule.validate();
            plan.rules.push_back(std::move(rule));
          }
        } else unknown_key("fault_plan", pkey);
      }
      config.fault_plan = std::move(plan);
    } else if (key == "area") {
      for (const auto& [akey, avalue] : value.as_object()) {
        if (akey == "east_min") config.area.east_min = number(avalue, akey.c_str());
        else if (akey == "east_max") config.area.east_max = number(avalue, akey.c_str());
        else if (akey == "north_min") config.area.north_min = number(avalue, akey.c_str());
        else if (akey == "north_max") config.area.north_max = number(avalue, akey.c_str());
        else unknown_key("area", akey);
      }
    } else if (key == "coverage") {
      for (const auto& [ckey, cvalue] : value.as_object()) {
        if (ckey == "altitude_m") config.coverage.altitude_m = number(cvalue, ckey.c_str());
        else if (ckey == "lane_spacing_m") config.coverage.lane_spacing_m = number(cvalue, ckey.c_str());
        else if (ckey == "along_track_spacing_m") config.coverage.along_track_spacing_m = number(cvalue, ckey.c_str());
        else unknown_key("coverage", ckey);
      }
    } else if (key == "battery_fault") {
      BatteryFaultEvent ev;
      for (const auto& [ekey, evalue] : value.as_object()) {
        if (ekey == "uav") ev.uav = evalue.as_string();
        else if (ekey == "time_s") ev.time_s = number(evalue, ekey.c_str());
        else if (ekey == "soc_after") ev.soc_after = number(evalue, ekey.c_str());
        else if (ekey == "temp_c") ev.temp_c = number(evalue, ekey.c_str());
        else unknown_key("battery_fault", ekey);
      }
      config.battery_fault = ev;
    } else if (key == "spoofing") {
      SpoofingEvent ev;
      for (const auto& [ekey, evalue] : value.as_object()) {
        if (ekey == "uav") ev.uav = evalue.as_string();
        else if (ekey == "time_s") ev.time_s = number(evalue, ekey.c_str());
        else if (ekey == "walk_mps") ev.walk_mps = number(evalue, ekey.c_str());
        else unknown_key("spoofing", ekey);
      }
      config.spoofing = ev;
    } else {
      unknown_key("config", key);
    }
  }
  return config;
}

void save_config(const RunnerConfig& config, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_config: cannot open " + path);
  out << config_to_json(config).to_json() << '\n';
}

RunnerConfig load_config(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_config: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return config_from_json(eddi::ode::parse_json(buffer.str()));
}

}  // namespace sesame::platform
