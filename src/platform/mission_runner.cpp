#include "sesame/platform/mission_runner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "sesame/geo/geodesy.hpp"
#include "sesame/mathx/stats.hpp"
#include "sesame/safeml/distances.hpp"
#include "sesame/security/attack_tree.hpp"

namespace sesame::platform {

namespace {

// Mission-area anchor (Nicosia test field, as in the KIOS deployments).
const geo::GeoPoint kOrigin{35.1856, 33.3823, 0.0};

sinadra::AltitudeBand altitude_band(double altitude_m) {
  if (altitude_m < 25.0) return sinadra::AltitudeBand::kLow;
  if (altitude_m < 45.0) return sinadra::AltitudeBand::kMedium;
  return sinadra::AltitudeBand::kHigh;
}

}  // namespace

MissionRunner::MissionRunner(RunnerConfig config) : config_(std::move(config)) {
  if (config_.n_uavs == 0) throw std::invalid_argument("MissionRunner: no UAVs");
  if (config_.dt_s <= 0.0 || config_.max_time_s <= 0.0 ||
      config_.consert_period_s <= 0.0 ||
      config_.telemetry_staleness_window_s <= 0.0 ||
      config_.health_heartbeat_period_s <= 0.0) {
    throw std::invalid_argument("MissionRunner: non-positive timing");
  }
  if (!config_.fault_plan) {
    // CI stress hook: a plan file named in the environment applies to every
    // runner that was not given an explicit plan.
    if (const char* path = std::getenv("SESAME_FAULT_PLAN")) {
      config_.fault_plan = mw::load_fault_plan(path);
    }
  }
  comm_link_ = sim::CommLink(config_.comm_link);
  setup_world();
  if (config_.sesame_enabled) setup_sesame();
}

void MissionRunner::setup_world() {
  world_ = std::make_unique<sim::World>(kOrigin, config_.seed);

  for (std::size_t i = 0; i < config_.n_uavs; ++i) {
    sim::UavConfig uc;
    uc.name = "uav" + std::to_string(i + 1);
    uc.mission_altitude_m = config_.coverage.altitude_m;
    names_.push_back(uc.name);
    // Bases spread along the southern edge of the area.
    const geo::EnuPoint home_enu{
        config_.area.east_min +
            (static_cast<double>(i) + 0.5) * config_.area.width() /
                static_cast<double>(config_.n_uavs),
        config_.area.north_min - 20.0, 0.0};
    home_enu_.push_back(home_enu);
    world_->add_uav(uc, world_->frame().to_geo(home_enu));
  }

  // Persons scattered uniformly across the mission area.
  for (std::size_t p = 0; p < config_.n_persons; ++p) {
    world_->add_person(
        {world_->rng().uniform(config_.area.east_min, config_.area.east_max),
         world_->rng().uniform(config_.area.north_min, config_.area.north_max),
         0.0});
  }

  uav_manager_ = std::make_unique<UavManager>(*world_);
  task_manager_ = std::make_unique<TaskManager>();
  database_ = std::make_unique<DatabaseManager>(world_->bus());
  database_->allow_client("gcs");
  for (const auto& name : names_) {
    UavInfo info;
    info.name = name;
    info.equipment = {"rgb_camera", "jetson_xavier_nx", "gps", "radio"};
    uav_manager_->register_uav(info);
    database_->attach_uav(name);
  }

  plans_ = task_manager_->plan("boustrophedon", config_.area, config_.n_uavs,
                               config_.coverage);
  mission_ = std::make_unique<sar::SarMission>(*world_, names_, plans_);
  mission_->enable_coverage_tracking(config_.area);

  if (config_.fault_plan) {
    fault_injector_ = std::make_unique<mw::FaultInjector>(*config_.fault_plan);
    fault_policy_sub_ = world_->bus().add_delivery_policy(fault_injector_.get());
  }
  if (config_.lossy_links) {
    sim::LossyLinkConfig llc;
    llc.link = config_.comm_link;
    // GCS at the middle of the southern base line, level with the pads.
    llc.gcs_enu = {(config_.area.east_min + config_.area.east_max) / 2.0,
                   config_.area.north_min - 20.0, 0.0};
    // Fading/drop stream decoupled from the world seed so turning the link
    // model on never changes trajectories of the same-seed clean run.
    llc.seed = config_.seed ^ 0x9E3779B97F4A7C15ULL;
    world_->enable_lossy_links(llc);
  }

  // Telemetry-staleness watchdog: track the newest *received* sample per
  // UAV. max() keeps reordered or delayed arrivals from rolling time back.
  last_telemetry_rx_s_.assign(names_.size(), 0.0);
  watchdog_demoted_.assign(names_.size(), 0);
  swap_until_.assign(names_.size(), -1.0);
  for (std::size_t i = 0; i < names_.size(); ++i) {
    telemetry_subscriptions_.push_back(world_->bus().subscribe<sim::Telemetry>(
        sim::telemetry_topic(names_[i]),
        [this, i](const mw::MessageHeader&, const sim::Telemetry& t) {
          auto& last = last_telemetry_rx_s_[i];
          last = std::max(last, t.time_s);
        }));
  }

  // Vehicle-level fault timetable; composes with the message-level
  // fault_plan above (both can be active in one run).
  if (config_.failure_schedule) {
    vehicle_failures_ = std::make_unique<sim::FailureInjector>(
        *world_, *config_.failure_schedule);
  }
  invariants_ = std::make_unique<InvariantChecker>(config_.invariants);
  if (config_.recovery_enabled) setup_recovery();

  for (const auto& name : names_) {
    world_->uav_by_name(name).command_takeoff();
  }
}

void MissionRunner::setup_recovery() {
  world_->enable_health_heartbeats(config_.health_heartbeat_period_s);
  last_health_rx_s_.assign(names_.size(), 0.0);
  for (std::size_t i = 0; i < names_.size(); ++i) {
    health_subscriptions_.push_back(
        world_->bus().subscribe<sim::HealthHeartbeat>(
            sim::health_topic(names_[i]),
            [this, i](const mw::MessageHeader&,
                      const sim::HealthHeartbeat& hb) {
              auto& last = last_health_rx_s_[i];
              last = std::max(last, hb.time_s);
            }));
  }

  RecoveryHooks hooks;
  hooks.ping = [this](const std::string& name) {
    // The ping rides the bus so a blacked-out vehicle genuinely misses it;
    // a reachable one answers with an immediate telemetry publication.
    world_->bus().publish(sim::ping_topic(name), world_->time_s(), "gcs",
                          world_->time_s());
  };
  hooks.demote = [this](const std::string& name) {
    set_comm_demoted(name, true);
  };
  hooks.command_rth = [this](const std::string& name) {
    uav_manager_->apply_action(name, conserts::UavAction::kReturnToBase);
  };
  hooks.declare_lost = [this](const std::string& name) { declare_lost(name); };
  RecoveryConfig rc = config_.recovery;
  // The escalation window tracks the watchdog window unless overridden.
  rc.staleness_window_s =
      std::max(rc.staleness_window_s, config_.telemetry_staleness_window_s);
  recovery_ =
      std::make_unique<RecoveryManager>(names_, rc, std::move(hooks));
}

std::size_t MissionRunner::uav_ix(const std::string& name) const {
  return world_->uav_by_name(name).fleet_index();
}

void MissionRunner::set_comm_demoted(const std::string& name, bool demoted) {
  set_comm_demoted_ix(uav_ix(name), demoted);
}

void MissionRunner::set_comm_demoted_ix(std::size_t i, bool demoted) {
  std::uint8_t& flag = watchdog_demoted_[i];
  if (static_cast<bool>(flag) == demoted) return;  // edge-triggered
  flag = demoted ? 1 : 0;
  if (obs_ != nullptr) {
    const std::string& name = names_[i];
    if (demoted) {
      if (i < comm_demotion_counters_.size() &&
          comm_demotion_counters_[i] != nullptr) {
        comm_demotion_counters_[i]->inc();
      }
      obs_->tracer.event("sesame.platform.comm_demoted",
                         {{"uav", name},
                          {"t_s", obs::attr_value(world_->time_s())}});
    } else {
      obs_->tracer.event("sesame.platform.comm_rearmed",
                         {{"uav", name},
                          {"t_s", obs::attr_value(world_->time_s())}});
    }
  }
}

void MissionRunner::update_watchdog() {
  const double now_s = world_->time_s();
  for (std::size_t i = 0; i < names_.size(); ++i) {
    const double staleness_s = std::max(0.0, now_s - last_telemetry_rx_s_[i]);
    set_comm_demoted_ix(i, staleness_s > config_.telemetry_staleness_window_s);
  }
}

double MissionRunner::recovery_staleness_s(const std::string& name) const {
  // Last contact of any kind: telemetry or health heartbeat. Heartbeats
  // dodge the lossy-link model (they are small and heavily coded), so a
  // vehicle only looks silent when its radio is genuinely gone.
  const std::size_t i = uav_ix(name);
  double last = i < last_telemetry_rx_s_.size() ? last_telemetry_rx_s_[i] : 0.0;
  if (i < last_health_rx_s_.size()) last = std::max(last, last_health_rx_s_[i]);
  return std::max(0.0, world_->time_s() - last);
}

double MissionRunner::failure_onset_s(const std::string& name) const {
  if (!config_.failure_schedule) return -1.0;
  double onset = -1.0;
  for (const auto& e : config_.failure_schedule->events) {
    if (e.uav != name) continue;
    if (e.mode != sim::FailureMode::kHardCrash &&
        e.mode != sim::FailureMode::kCommsBlackout) {
      continue;
    }
    if (onset < 0.0 || e.time_s < onset) onset = e.time_s;
  }
  return onset;
}

void MissionRunner::declare_lost(const std::string& name) {
  // The wreck's in-flight traffic must not arrive after the write-off.
  world_->drop_pending_from(name);

  const auto& active = mission_->active_uavs();
  if (std::find(active.begin(), active.end(), name) == active.end()) return;

  // In SESAME runs the ConSert dropped-out path may already have moved the
  // wreck's waypoints to a survivor (it reacts within one evaluation
  // period). Nothing left to absorb: just strike the vehicle off the
  // mission roster so the lost_uav_serving invariant sees it inert.
  if (world_->uav_by_name(name).waypoints_remaining() == 0) {
    mission_->retire(name);
    return;
  }

  // Re-plan coverage: hand the lost vehicle's remaining waypoints to the
  // least-loaded surviving mission vehicle.
  std::string takeover;
  std::size_t best_load = ~std::size_t{0};
  for (const auto& candidate : active) {
    if (candidate == name) continue;
    if (recovery_ && recovery_->lost(candidate)) continue;
    const sim::Uav& c = world_->uav_by_name(candidate);
    if (!c.airborne() || c.mode() == sim::FlightMode::kEmergencyLand ||
        c.mode() == sim::FlightMode::kReturnToBase) {
      continue;
    }
    if (c.waypoints_remaining() < best_load) {
      best_load = c.waypoints_remaining();
      takeover = candidate;
    }
  }
  if (!takeover.empty()) {
    recovery_redistributed_ += mission_->redistribute(name, takeover);
    world_->uav_by_name(takeover).command_resume_mission();
    ++recovery_replans_;
    if (first_replan_time_s_ < 0.0) first_replan_time_s_ = world_->time_s();
    if (obs_ != nullptr) {
      obs_->tracer.event("sesame.recovery.replan",
                         {{"from", name},
                          {"to", takeover},
                          {"t_s", obs::attr_value(world_->time_s())}});
    }
  } else {
    // No survivor can absorb the tasks: retire the vehicle so the mission
    // stops counting it (its remaining coverage is abandoned).
    mission_->retire(name);
  }
}

double MissionRunner::telemetry_staleness_s(const std::string& name) const {
  const std::size_t i = uav_ix(name);
  if (i >= last_telemetry_rx_s_.size()) return 0.0;
  return std::max(0.0, world_->time_s() - last_telemetry_rx_s_[i]);
}

std::vector<std::vector<double>> MissionRunner::collect_safeml_reference() {
  // Training-time reference: frame features captured across the validated
  // low-altitude band (the detector's training domain). A single-altitude
  // reference would make SafeML flag a 2 m altitude change as drift.
  const auto& detector = mission_->detector();
  std::vector<std::vector<double>> reference(
      perception::FrameFeatures::kNumFeatures);
  for (int i = 0; i < 400; ++i) {
    const double alt = world_->rng().uniform(0.7 * config_.descend_altitude_m,
                                             1.6 * config_.descend_altitude_m);
    const auto v = detector.frame_features(alt, world_->rng()).as_vector();
    for (std::size_t k = 0; k < v.size(); ++k) reference[k].push_back(v[k]);
  }
  return reference;
}

void MissionRunner::setup_sesame() {
  // IDS + Security EDDI watching the fix channels.
  ids_ = std::make_unique<security::IntrusionDetectionSystem>(world_->bus());
  for (const auto& name : names_) {
    ids_->authorize(sim::position_fix_topic(name), "collaborative_localization");
    ids_->track_position_topic(sim::position_fix_topic(name));
  }
  security_ = std::make_shared<security::SecurityEddi>(
      world_->bus(), security::make_spoofing_attack_tree());

  // Per-UAV attack attribution from the alert stream.
  alert_subscription_ = world_->bus().subscribe<security::IdsAlert>(
      security::ids_alert_topic(),
      [this](const mw::MessageHeader&, const security::IdsAlert& alert) {
        for (const auto& name : names_) {
          if (alert.topic == sim::position_fix_topic(name)) {
            compromised_.insert(name);
          }
        }
      });

  auto reference = collect_safeml_reference();

  // The platform deployment pins the Wasserstein measure: KS saturates at
  // 1.0, which leaves too little contrast between the band-internal
  // variation of clean flight and a genuine altitude-regime shift. The
  // scale is calibrated below, so the measure's units cancel out.
  config_.eddi.safeml.measure = safeml::Measure::kWasserstein;
  config_.eddi.safeml.full_scale = 1e-9;  // floor; calibration raises it
  // Confidence bands for the calibrated scale: clean single-altitude
  // windows sit ~p95 (-> confidence 0.6, classified High); the
  // high-altitude regime lands several band-widths out (-> near 0).
  config_.eddi.safeml.high_threshold = 0.60;
  config_.eddi.safeml.low_threshold = 0.30;

  // Design-time SafeML calibration: runtime windows come from a *single*
  // altitude at a time while the reference spans the validated band, so
  // the no-drift self-distance is nonzero. Size full_scale from the p95
  // self-distance of single-altitude windows inside the band, exactly as
  // a deployment would calibrate against held-out validation flights.
  {
    const auto& detector = mission_->detector();
    // The reference sample is fixed across trials: sort it once and use
    // the sorted-input distance fast path per trial window.
    std::vector<std::vector<double>> reference_sorted = reference;
    for (auto& r : reference_sorted) std::sort(r.begin(), r.end());
    std::vector<double> self_distances;
    for (int trial = 0; trial < 60; ++trial) {
      const double alt = world_->rng().uniform(
          0.8 * config_.descend_altitude_m, 1.4 * config_.descend_altitude_m);
      std::vector<std::vector<double>> window(reference.size());
      for (std::size_t i = 0; i < config_.eddi.safeml.window; ++i) {
        const auto v = detector.frame_features(alt, world_->rng()).as_vector();
        for (std::size_t k = 0; k < v.size(); ++k) window[k].push_back(v[k]);
      }
      double total = 0.0;
      for (std::size_t k = 0; k < reference.size(); ++k) {
        std::sort(window[k].begin(), window[k].end());
        total += safeml::distance_sorted(config_.eddi.safeml.measure,
                                         reference_sorted[k], window[k]);
      }
      self_distances.push_back(total / static_cast<double>(reference.size()));
    }
    const double p95 = mathx::quantile(self_distances, 0.95);
    config_.eddi.safeml.full_scale =
        std::max(config_.eddi.safeml.full_scale,
                 p95 / (1.0 - config_.eddi.safeml.high_threshold));
  }

  // DeepKnowledge design-time assets: a small detector-verifier MLP trained
  // on low-altitude detection features, analyzed against the high-altitude
  // (shifted) regime. Shared across the fleet (one model per vehicle type).
  const auto& detector = mission_->detector();
  std::vector<std::vector<double>> dk_train, dk_targets, dk_shifted;
  for (int i = 0; i < 200; ++i) {
    perception::Detection d;
    d.confidence = world_->rng().uniform(0.6, 0.999);
    // Training domain: the low-altitude band the detector was validated
    // at; the shifted domain is the high-altitude regime.
    const double train_alt =
        world_->rng().uniform(0.7 * config_.descend_altitude_m,
                              1.6 * config_.descend_altitude_m);
    dk_train.push_back(detector.detection_features(d, train_alt, world_->rng()));
    dk_targets.push_back({1.0});
    d.confidence = world_->rng().uniform(0.2, 0.9);
    dk_shifted.push_back(detector.detection_features(
        d, world_->rng().uniform(50.0, 75.0), world_->rng()));
  }
  auto dk_model = std::make_shared<deepknowledge::Mlp>(
      std::vector<std::size_t>{perception::PersonDetector::kDetectionFeatureCount,
                               8, 1},
      world_->rng());
  for (int epoch = 0; epoch < 3; ++epoch) {
    dk_model->train_epoch(dk_train, dk_targets, 0.05, world_->rng());
  }
  auto dk_analyzer = std::make_shared<deepknowledge::Analyzer>(
      *dk_model, dk_train, dk_shifted);

  // DK in-domain baseline: coverage uncertainty of single-altitude windows
  // inside the validated band (mirrors the SafeML calibration above).
  {
    double acc = 0.0;
    const int trials = 20;
    for (int trial = 0; trial < trials; ++trial) {
      const double alt = world_->rng().uniform(
          0.8 * config_.descend_altitude_m, 1.4 * config_.descend_altitude_m);
      std::vector<std::vector<double>> window;
      for (int i = 0; i < 16; ++i) {
        perception::Detection d;
        d.confidence = std::clamp(
            world_->rng().normal(detector.detection_probability(alt), 0.08),
            0.01, 0.999);
        window.push_back(detector.detection_features(d, alt, world_->rng()));
      }
      acc += dk_analyzer->assess(*dk_model, window).uncertainty;
    }
    config_.eddi.dk_uncertainty_baseline = acc / trials;
  }

  eddis_.reserve(names_.size());
  for (const auto& name : names_) {
    auto e = std::make_unique<eddi::UavEddi>(name, config_.eddi, reference);
    e->attach_security(security_);
    e->attach_deepknowledge(dk_model, dk_analyzer, 16);
    eddis_.push_back(std::move(e));
    conserts::add_uav_conserts(consert_network_, name);
  }
  assurance_trace_ = std::make_unique<conserts::AssuranceTrace>(
      consert_network_, config_.consert_eval_cache);
}

void MissionRunner::attach_observability(obs::Observability& o) {
  obs_ = &o;
  world_->set_metrics(&o.metrics);
  if (ids_) ids_->set_observability(&o);
  ticks_counter_ = &o.metrics.counter("sesame.mission.ticks_total");
  consert_evals_counter_ = &o.metrics.counter("sesame.mission.consert_evals_total");
  staleness_gauges_.assign(names_.size(), nullptr);
  comm_demotion_counters_.assign(names_.size(), nullptr);
  for (std::size_t i = 0; i < names_.size(); ++i) {
    const auto& name = names_[i];
    staleness_gauges_[i] = &o.metrics.gauge(
        "sesame.platform.telemetry_staleness_s", {{"uav", name}});
    comm_demotion_counters_[i] = &o.metrics.counter(
        "sesame.platform.comm_demotions_total", {{"uav", name}});
  }
  if (recovery_) recovery_->attach_observability(&o);
  if (invariants_) invariants_->attach_observability(&o);
}

eddi::EddiInputs MissionRunner::gather_inputs(const std::string& name) {
  const sim::Uav& uav = world_->uav_by_name(name);
  eddi::EddiInputs in;
  in.dt_s = config_.dt_s;
  in.telemetry.battery_soc = uav.battery().soc();
  in.telemetry.battery_temp_c = uav.battery().temperature_c();
  // Jetson junction temperature tracks ambient plus compute load.
  in.telemetry.processor_temp_c = 45.0 + (uav.airborne() ? 10.0 : 0.0);
  in.telemetry.motors_failed = uav.motors_failed();

  const double alt = uav.true_position().up_m;
  if (uav.airborne() && alt > 1.0 && uav.vision_sensor_healthy()) {
    const auto& detector = mission_->detector();
    in.frame_features = detector.frame_features(alt, world_->rng()).as_vector();
    // DeepKnowledge channel: per-detection features of this tick's frame.
    perception::Detection d;
    d.confidence = std::clamp(
        world_->rng().normal(detector.detection_probability(alt), 0.08), 0.01,
        0.999);
    in.detection_features = {detector.detection_features(d, alt, world_->rng())};
  }
  in.altitude_band = altitude_band(alt);
  in.visibility = sinadra::Visibility::kGood;
  in.density = config_.n_persons > 5 ? sinadra::PersonDensity::kDense
                                     : sinadra::PersonDensity::kSparse;
  in.gps_fix_available = !uav.gps().signal_lost() && !uav.gps().disabled();
  in.vision_sensor_healthy = uav.vision_sensor_healthy();
  // C2 link quality at the range from the ground station (home pad),
  // gated by the staleness watchdog: a link budget that looks fine on
  // paper is still not good evidence when no telemetry actually arrives.
  // The watchdog flag is edge-triggered (one demotion per outage, single
  // re-arm on recovery) and updated at the top of every tick, so the
  // evidence stream is identical to comparing raw staleness here.
  in.comm_link_good =
      comm_link_.usable(geo::enu_ground_distance_m(
          uav.true_position(), home_enu_[uav.fleet_index()])) &&
      watchdog_demoted_[uav.fleet_index()] == 0;
  // A nearby airborne fleet member within 250 m can assist (CL
  // availability). Grid-backed: the all-pairs scan dominated the tick at
  // fleet scale.
  in.nearby_uav_available =
      world_->has_neighbor_within(uav.fleet_index(), 250.0,
                                  /*airborne_only=*/true);
  return in;
}

void MissionRunner::baseline_policy(const std::string& name,
                                    RunnerResult& result) {
  (void)result;
  sim::Uav& uav = world_->uav_by_name(name);
  constexpr double kPendingLanding = 1e18;
  constexpr double kNoSwap = -1.0;
  double& swap_at = swap_until_[uav.fleet_index()];

  // Swap pending or in progress.
  if (swap_at != kNoSwap) {
    if (uav.mode() == sim::FlightMode::kLanded) {
      if (swap_at >= kPendingLanding) {
        // Just touched down: start the swap clock.
        swap_at = world_->time_s() + config_.battery_swap_time_s;
      } else if (world_->time_s() >= swap_at) {
        uav.battery().swap();
        swap_at = kNoSwap;
        uav.command_takeoff();
      }
    }
    return;
  }

  // Naive firmware reaction: low pack -> return, swap, resume.
  if (uav.airborne() && uav.battery().soc() < config_.baseline_rtb_soc &&
      uav.waypoints_remaining() > 0) {
    uav.command_return_to_base();
    swap_at = kPendingLanding;
  }
}

void MissionRunner::inject_spoofed_fix(RunnerResult& result) {
  (void)result;
  const auto& ev = *config_.spoofing;
  const sim::Uav& victim = world_->uav_by_name(ev.uav);
  // Once the victim is grounded (safe-landed), the attacker gives up.
  if (!victim.airborne()) return;
  spoof_offset_m_ += ev.walk_mps * config_.dt_s;
  const geo::GeoPoint fake =
      geo::destination(victim.true_geo(), 90.0, spoof_offset_m_);
  world_->bus().publish(sim::position_fix_topic(ev.uav), fake, "attacker",
                        world_->time_s());
}

void MissionRunner::start_spoof_response(const std::string& victim,
                                         RunnerResult& result) {
  spoof_response_started_ = true;
  result.attack_detected = true;
  result.attack_detection_time_s = world_->time_s();

  sim::Uav& uav = world_->uav_by_name(victim);
  // Stop trusting the compromised navigation input (ConSert mitigation).
  uav.gps().set_disabled(true);

  // Hand the victim's remaining tasks to a continuing fleet member.
  const auto active = mission_->active_uavs();
  if (std::find(active.begin(), active.end(), victim) != active.end()) {
    for (const auto& candidate : active) {
      if (candidate == victim) continue;
      if (world_->uav_by_name(candidate).airborne()) {
        result.waypoints_redistributed +=
            mission_->redistribute(victim, candidate);
        break;
      }
    }
  }

  // Collaborative Localization brings it home without GPS (Fig. 7).
  std::vector<std::string> assistants;
  for (const auto& name : names_) {
    if (name != victim) assistants.push_back(name);
  }
  if (!assistants.empty()) {
    localization::ObservationModel model;
    model.detection_range_m = 800.0;
    model.detection_probability = 0.95;
    cl_ = std::make_unique<localization::CollaborativeLocalizer>(
        *world_, victim, assistants, model);
    geo::EnuPoint pad = home_enu_[uav.fleet_index()];
    pad.up_m = config_.coverage.altitude_m;
    landing_guide_ = std::make_unique<localization::SafeLandingGuide>(
        *world_, *cl_, pad);
  }
}

RunnerResult MissionRunner::run() {
  RunnerResult result;

  // Tracing: one root span for the run, one child span per fleet phase
  // (launch -> search -> recovery), plus per-evaluation spans below. All
  // inert when no observability is attached.
  obs::Span run_span;
  obs::Span phase_span;
  std::string phase_name;
  const auto end_phase = [&] {
    if (phase_span.recording()) {
      phase_span.set_attribute("t_end_s", world_->time_s());
    }
    phase_span.end();
  };
  const auto begin_phase = [&](const std::string& next) {
    phase_name = next;
    if (obs_ == nullptr) return;
    end_phase();
    phase_span = obs_->tracer.start_span(
        "sesame.mission.phase",
        {{"phase", next}, {"t_start_s", obs::attr_value(world_->time_s())}});
  };
  if (obs_ != nullptr) {
    run_span = obs_->tracer.start_span(
        "sesame.mission.run",
        {{"uavs", std::to_string(names_.size())},
         {"sesame", config_.sesame_enabled ? "on" : "off"}});
  }
  begin_phase("launch");

  std::map<std::string, double> productive_s;
  std::map<std::string, conserts::UavAction> current_action;
  for (const auto& name : names_) {
    productive_s[name] = 0.0;
    current_action[name] = conserts::UavAction::kContinue;
  }
  double next_consert_eval = 0.0;

  while (world_->time_s() < config_.max_time_s) {
    // Event injection.
    if (config_.battery_fault && !fault_injected_ &&
        world_->time_s() >= config_.battery_fault->time_s) {
      world_->uav_by_name(config_.battery_fault->uav)
          .battery()
          .inject_thermal_fault(config_.battery_fault->soc_after,
                                config_.battery_fault->temp_c);
      fault_injected_ = true;
    }

    world_->step(config_.dt_s);
    if (vehicle_failures_) vehicle_failures_->step(world_->time_s());
    update_watchdog();
    if (recovery_) {
      recovery_->step(world_->time_s(), [this](const std::string& n) {
        return recovery_staleness_s(n);
      });
      // Hard energy floor: a serving vehicle that sinks below the reserve
      // needed to make it home is recalled regardless of what the
      // assurance lattice currently permits.
      for (const auto& name : names_) {
        sim::Uav& uav = world_->uav_by_name(name);
        const bool serving = uav.mode() == sim::FlightMode::kTakeoff ||
                             uav.mode() == sim::FlightMode::kMission ||
                             uav.mode() == sim::FlightMode::kHold;
        if (serving && uav.battery().soc() < config_.recovery.min_soc_rtb) {
          uav.command_return_to_base();
        }
      }
    }
    if (ticks_counter_ != nullptr) ticks_counter_->inc();
    if (phase_name == "launch" &&
        std::all_of(names_.begin(), names_.end(), [&](const std::string& n) {
          return world_->uav_by_name(n).mode() != sim::FlightMode::kTakeoff;
        })) {
      begin_phase("search");
    }

    // Spoofing attack and (SESAME-only) automated response.
    if (config_.spoofing && world_->time_s() >= config_.spoofing->time_s) {
      inject_spoofed_fix(result);
      const sim::Uav& victim = world_->uav_by_name(config_.spoofing->uav);
      result.spoofed_uav_peak_error_m =
          std::max(result.spoofed_uav_peak_error_m, victim.estimation_error_m());
      if (config_.sesame_enabled && !spoof_response_started_ && security_ &&
          security_->attack_detected()) {
        start_spoof_response(config_.spoofing->uav, result);
      }
    }
    if (landing_guide_) {
      landing_guide_->step();
      if (landing_guide_->landed() &&
          result.spoofed_uav_landing_error_m < 0.0) {
        result.spoofed_uav_landing_error_m =
            landing_guide_->true_distance_to_target_m();
      }
    }

    mission_->tick();
    // Safety invariant: every detection credited this tick must come from
    // a live vehicle with a healthy camera.
    for (const auto& name : mission_->last_tick_detectors()) {
      const sim::Uav& uav = world_->uav_by_name(name);
      invariants_->check_detection_source(world_->time_s(), name,
                                          uav.vision_sensor_healthy(),
                                          uav.mode());
    }

    // Per-UAV assessment and control.
    std::vector<conserts::UavAction> actions;
    const bool consert_due = world_->time_s() >= next_consert_eval;
    if (consert_due) next_consert_eval += config_.consert_period_s;

    if (config_.sesame_enabled) {
      // EDDIs tick every step (their trackers and monitors integrate over
      // time, and gather_inputs draws world randomness); the evidence
      // context is only materialized on ConSert-evaluation ticks, since
      // consert_evidence() is a pure read of the EDDI state.
      for (std::size_t i = 0; i < names_.size(); ++i) {
        eddis_[i]->tick(gather_inputs(names_[i]));
      }
      if (consert_due) {
        conserts::EvaluationContext ctx;
        for (std::size_t i = 0; i < names_.size(); ++i) {
          const auto& name = names_[i];
          auto evidence = eddis_[i]->consert_evidence();
          // Per-UAV attribution: only vehicles whose own channels were
          // attacked lose the no-attack evidence.
          evidence.no_security_attack = !compromised_.count(name);
          // Safety invariant: ConSert demands must never be satisfied by
          // stale evidence — comm_link_good asserted while the telemetry
          // feeding it has gone silent is a checker violation.
          invariants_->check_evidence_fresh(world_->time_s(), name,
                                            evidence.comm_link_good,
                                            telemetry_staleness_s(name));
          conserts::apply_evidence(ctx, name, evidence);
        }
        obs::Span eval_span;
        if (obs_ != nullptr) {
          eval_span = obs_->tracer.start_span(
              "sesame.mission.consert_eval",
              {{"t_s", obs::attr_value(world_->time_s())}});
          consert_evals_counter_->inc();
        }
        const auto eval = assurance_trace_->evaluate(ctx, world_->time_s());
        for (std::size_t i = 0; i < names_.size(); ++i) {
          const auto& name = names_[i];
          auto action = conserts::uav_action(eval, name);
          const auto& assessment = eddis_[i]->assessment();
          // Safety EDDI corrective action overrides the lattice: crossing
          // the abort threshold forces an emergency landing (Fig. 5).
          if (assessment.reliability.abort_recommended) {
            action = conserts::UavAction::kEmergencyLand;
          }
          current_action[name] = action;
          uav_manager_->apply_action(name, action);
        }
        // Mission-level task redistribution (Fig. 1 decider): a UAV that
        // dropped out with tasks pending hands its remaining waypoints to a
        // continuing fleet member.
        const auto active = mission_->active_uavs();
        for (const auto& name : active) {
          const sim::Uav& uav = world_->uav_by_name(name);
          const bool dropped_out = uav.mode() == sim::FlightMode::kEmergencyLand ||
                                   uav.mode() == sim::FlightMode::kReturnToBase ||
                                   uav.mode() == sim::FlightMode::kLanded ||
                                   uav.mode() == sim::FlightMode::kCrashed;
          if (!dropped_out || uav.waypoints_remaining() == 0) continue;
          // Pick the continuing UAV with the fewest remaining tasks.
          std::string takeover;
          std::size_t best_load = ~std::size_t{0};
          for (const auto& candidate : mission_->active_uavs()) {
            if (candidate == name) continue;
            const sim::Uav& c = world_->uav_by_name(candidate);
            if (!c.airborne() || c.mode() == sim::FlightMode::kEmergencyLand ||
                c.mode() == sim::FlightMode::kReturnToBase) {
              continue;
            }
            if (c.waypoints_remaining() < best_load) {
              best_load = c.waypoints_remaining();
              takeover = candidate;
            }
          }
          if (!takeover.empty()) {
            const std::size_t moved = mission_->redistribute(name, takeover);
            result.waypoints_redistributed += moved;
            world_->uav_by_name(takeover).command_resume_mission();
            // A crashed vehicle's absorption is a fleet-recovery re-plan:
            // the chaos campaign's time_to_replan metric measures the
            // fastest responder, whichever path that is.
            if (moved > 0 && uav.mode() == sim::FlightMode::kCrashed) {
              ++recovery_replans_;
              if (first_replan_time_s_ < 0.0) {
                first_replan_time_s_ = world_->time_s();
              }
              if (obs_ != nullptr) {
                obs_->tracer.event(
                    "sesame.recovery.replan",
                    {{"from", name},
                     {"to", takeover},
                     {"t_s", obs::attr_value(world_->time_s())}});
              }
            }
          }
        }

        // Section V-B adaptation: persistent over-threshold uncertainty
        // demands a descend-and-rescan.
        const bool exceeded = std::any_of(
            eddis_.begin(), eddis_.end(), [](const auto& e) {
              return e->assessment().uncertainty_exceeded;
            });
        over_threshold_streak_ = exceeded ? over_threshold_streak_ + 1 : 0;
        if (!descended_ && over_threshold_streak_ >= config_.descend_patience) {
          // SINADRA descend-and-RESCAN: each UAV re-plans its strip at the
          // low altitude, with lane spacing shrunk to match the smaller
          // footprint, and sweeps it again — persons possibly missed at
          // the unreliable high altitude get a second, accurate pass.
          sar::CoverageConfig low = config_.coverage;
          low.altitude_m = config_.descend_altitude_m;
          low.lane_spacing_m = config_.coverage.lane_spacing_m *
                               config_.descend_altitude_m /
                               config_.coverage.altitude_m;
          for (std::size_t i = 0; i < names_.size(); ++i) {
            const auto active = mission_->active_uavs();
            if (std::find(active.begin(), active.end(), names_[i]) ==
                active.end()) {
              continue;  // dropped out: its strip went to another UAV
            }
            sim::Uav& uav = world_->uav_by_name(names_[i]);
            uav.clear_waypoints();
            const auto replanned = sar::plan_coverage(plans_[i].strip, 1, low);
            for (const auto& wp : replanned.at(0).waypoints) {
              uav.add_waypoint(wp);
            }
            uav.command_resume_mission();
          }
          descended_ = true;
        }
      }
    } else {
      for (const auto& name : names_) baseline_policy(name, result);
    }

    // Recording.
    for (const auto& name : names_) {
      const sim::Uav& uav = world_->uav_by_name(name);
      UavTickRecord rec;
      rec.time_s = world_->time_s();
      rec.soc = uav.battery().soc();
      rec.battery_temp_c = uav.battery().temperature_c();
      rec.mode = uav.mode();
      rec.altitude_m = uav.true_position().up_m;
      rec.action = current_action[name];
      if (config_.sesame_enabled) {
        const auto& a = eddis_[uav.fleet_index()]->assessment();
        rec.p_fail = a.reliability.probability_of_failure;
        rec.sar_uncertainty = a.sar_uncertainty;
      }
      result.series[name].push_back(rec);
      if (uav.fleet_index() < staleness_gauges_.size() &&
          staleness_gauges_[uav.fleet_index()] != nullptr) {
        staleness_gauges_[uav.fleet_index()]->set(
            telemetry_staleness_s(name));
      }

      // Safety invariants checked once per tick per vehicle.
      invariants_->check_min_soc(world_->time_s(), name, rec.soc, rec.mode);
      if (recovery_ && recovery_->lost(name)) {
        const auto& active = mission_->active_uavs();
        const bool mission_active =
            std::find(active.begin(), active.end(), name) != active.end();
        invariants_->check_lost_uav_inactive(world_->time_s(), name,
                                             /*declared_lost=*/true, rec.mode,
                                             mission_active);
      }

      // Available = airborne and able to serve (Fig. 5 availability).
      const bool available = uav.mode() == sim::FlightMode::kTakeoff ||
                             uav.mode() == sim::FlightMode::kMission ||
                             uav.mode() == sim::FlightMode::kHold;
      if (available) productive_s[name] += config_.dt_s;
      actions.push_back(current_action[name]);
    }

    if (!result.mission_complete_time_s && mission_->complete()) {
      result.mission_complete_time_s = world_->time_s();
      if (obs_ != nullptr) {
        obs_->tracer.event("sesame.mission.complete",
                           {{"t_s", obs::attr_value(world_->time_s())}});
      }
      if (phase_name == "search") begin_phase("recovery");
    }

    // Stop when the mission is complete and everyone is grounded or idle,
    // with a grace period for the final landing.
    const bool all_grounded = std::all_of(
        names_.begin(), names_.end(), [&](const std::string& n) {
          const auto mode = world_->uav_by_name(n).mode();
          return mode == sim::FlightMode::kLanded ||
                 mode == sim::FlightMode::kIdle ||
                 mode == sim::FlightMode::kHold ||
                 mode == sim::FlightMode::kCrashed;
        });
    if (result.mission_complete_time_s && all_grounded) break;

    result.final_decision = conserts::decide_mission(actions);
  }

  result.total_time_s = world_->time_s();
  result.detection = mission_->stats();
  result.descended = descended_;
  result.invariant_violations = invariants_->violations();
  result.recovery_replans = recovery_replans_;
  result.waypoints_redistributed += recovery_redistributed_;
  if (recovery_) {
    result.uavs_lost = recovery_->lost_uavs();
    result.recovery_pings = recovery_->pings_sent();
    result.recovery_demotions = recovery_->demotions();
    result.recovery_rth_commands = recovery_->rth_commands();
    // Time-to-detect / time-to-replan are measured from the scheduled
    // onset of the first silencing fault (hard crash or comms blackout)
    // of the earliest-lost vehicle; -1 when unknown.
    double earliest_lost = -1.0;
    std::string first_lost;
    for (const auto& name : result.uavs_lost) {
      const double t = recovery_->times(name).lost_s;
      if (earliest_lost < 0.0 || (t >= 0.0 && t < earliest_lost)) {
        earliest_lost = t;
        first_lost = name;
      }
    }
    if (!first_lost.empty()) {
      const double onset = failure_onset_s(first_lost);
      const double detect = recovery_->times(first_lost).detect_s;
      if (onset >= 0.0 && detect >= onset) {
        result.time_to_detect_loss_s = detect - onset;
      }
      if (onset >= 0.0 && first_replan_time_s_ >= onset) {
        result.time_to_replan_s = first_replan_time_s_ - onset;
      }
    }
  }
  if (const auto* tracker = mission_->coverage()) {
    result.area_coverage = tracker->fraction_covered();
  }
  if (assurance_trace_) {
    result.assurance_trace = assurance_trace_->transitions();
  }
  double avail = 0.0;
  for (const auto& name : names_) {
    const double a = productive_s[name] / result.total_time_s;
    result.availability_per_uav[name] = a;
    avail += a;
  }
  result.availability = avail / static_cast<double>(names_.size());

  end_phase();
  if (run_span.recording()) {
    run_span.set_attribute("total_time_s", result.total_time_s);
    run_span.set_attribute("availability", result.availability);
    run_span.set_attribute(
        "decision", conserts::mission_decision_name(result.final_decision));
  }
  run_span.end();
  return result;
}

}  // namespace sesame::platform
