#include "sesame/platform/gcs.hpp"

#include <sstream>

namespace sesame::platform {

GroundControlStation::GroundControlStation(mw::Bus& bus,
                                           DatabaseManager& database,
                                           std::string client_id,
                                           GcsConfig config)
    : bus_(&bus), database_(&database), client_id_(std::move(client_id)),
      config_(config) {
  database_->allow_client(client_id_);

  // Fleet-wide security feed.
  subscriptions_.push_back(bus_->subscribe<security::SecurityEvent>(
      security::security_event_topic(),
      [this](const mw::MessageHeader&, const security::SecurityEvent& ev) {
        GcsEvent e;
        e.time_s = ev.time_s;
        e.category = "security";
        e.message = "attack goal achieved on tree '" + ev.tree + "' (severity " +
                    security::severity_name(ev.severity) + ")";
        for (const auto& s : ev.suspicious_sources) {
          e.message += "; suspicious source: " + s;
        }
        push_event(std::move(e));
      }));
}

void GroundControlStation::watch_uav(const std::string& name) {
  database_->attach_uav(name);
  watched_.push_back(name);
  subscriptions_.push_back(bus_->subscribe<sim::Telemetry>(
      sim::telemetry_topic(name),
      [this, name](const mw::MessageHeader&, const sim::Telemetry& t) {
        // Mode transitions.
        const auto it = last_mode_.find(name);
        if (it == last_mode_.end() || it->second != t.mode) {
          GcsEvent e;
          e.time_s = t.time_s;
          e.category = "mode";
          e.uav = name;
          e.message = (it == last_mode_.end() ? std::string("initial mode ")
                                              : std::string("mode -> ")) +
                      sim::flight_mode_name(t.mode);
          push_event(std::move(e));
          last_mode_[name] = t.mode;
        }
        // Low-battery warning, once per crossing.
        bool& warned = battery_warned_[name];
        if (t.battery_soc < config_.low_battery_warning_soc && !warned) {
          warned = true;
          GcsEvent e;
          e.time_s = t.time_s;
          e.category = "battery";
          e.uav = name;
          std::ostringstream os;
          os << "battery low: " << static_cast<int>(100.0 * t.battery_soc)
             << "%";
          e.message = os.str();
          push_event(std::move(e));
        } else if (t.battery_soc >= config_.low_battery_warning_soc) {
          warned = false;  // re-arm after a swap
        }
      }));
}

void GroundControlStation::log_operator_note(double time_s,
                                             const std::string& message) {
  GcsEvent e;
  e.time_s = time_s;
  e.category = "operator";
  e.message = message;
  push_event(std::move(e));
}

std::vector<GcsEvent> GroundControlStation::events_of(
    const std::string& category) const {
  std::vector<GcsEvent> out;
  for (const auto& e : events_) {
    if (e.category == category) out.push_back(e);
  }
  return out;
}

std::string GroundControlStation::render_status() const {
  std::ostringstream os;
  os << "UAV      LAT        LON        ALT(m)  BATT  GPS  MODE\n";
  for (const auto& name : watched_) {
    const auto latest = database_->latest(client_id_, name);
    if (!latest.has_value()) {
      os << name << "  (no telemetry)\n";
      continue;
    }
    char line[160];
    std::snprintf(line, sizeof line,
                  "%-8s %-10.5f %-10.5f %-7.1f %3.0f%%  %-4s %s\n",
                  name.c_str(), latest->reported_position.lat_deg,
                  latest->reported_position.lon_deg, latest->altitude_m,
                  100.0 * latest->battery_soc, latest->gps_fix ? "ok" : "LOST",
                  sim::flight_mode_name(latest->mode).c_str());
    os << line;
  }
  return os.str();
}

void GroundControlStation::push_event(GcsEvent event) {
  events_.push_back(std::move(event));
  if (events_.size() > config_.event_limit) {
    events_.erase(events_.begin());
  }
}

}  // namespace sesame::platform
