#include "sesame/platform/managers.hpp"

#include <stdexcept>

namespace sesame::platform {

UavManager::UavManager(sim::World& world) : world_(&world) {}

void UavManager::register_uav(UavInfo info) {
  world_->uav_by_name(info.name);  // throws when the vehicle does not exist
  const std::string name = info.name;
  if (!infos_.emplace(name, std::move(info)).second) {
    throw std::invalid_argument("UavManager: duplicate registration " + name);
  }
}

const UavInfo& UavManager::info(const std::string& name) const {
  check_registered(name);
  return infos_.at(name);
}

std::vector<std::string> UavManager::registered() const {
  std::vector<std::string> out;
  out.reserve(infos_.size());
  for (const auto& [name, info] : infos_) {
    (void)info;
    out.push_back(name);
  }
  return out;
}

double UavManager::battery_level(const std::string& name) const {
  check_registered(name);
  return world_->uav_by_name(name).battery().soc();
}

bool UavManager::apply_action(const std::string& name,
                              conserts::UavAction action) {
  check_registered(name);
  sim::Uav& uav = world_->uav_by_name(name);
  const sim::FlightMode before = uav.mode();
  switch (action) {
    case conserts::UavAction::kContinueExtended:
    case conserts::UavAction::kContinue:
      if (uav.mode() == sim::FlightMode::kHold) uav.command_resume_mission();
      break;
    case conserts::UavAction::kHold:
      uav.command_hold();
      break;
    case conserts::UavAction::kReturnToBase:
      uav.command_return_to_base();
      break;
    case conserts::UavAction::kEmergencyLand:
      uav.command_emergency_land();
      break;
  }
  last_actions_[name] = action;
  return uav.mode() != before;
}

std::optional<conserts::UavAction> UavManager::last_action(
    const std::string& name) const {
  const auto it = last_actions_.find(name);
  if (it == last_actions_.end()) return std::nullopt;
  return it->second;
}

void UavManager::check_registered(const std::string& name) const {
  if (!infos_.count(name)) {
    throw std::out_of_range("UavManager: unregistered UAV " + name);
  }
}

TaskManager::TaskManager() {
  register_service("boustrophedon",
                   [](const sar::Area& area, std::size_t n,
                      const sar::CoverageConfig& cfg) {
                     return sar::plan_coverage(area, n, cfg);
                   });
}

void TaskManager::register_service(const std::string& name,
                                   CoverageService service) {
  if (!service) throw std::invalid_argument("TaskManager: null service");
  services_[name] = std::move(service);
}

std::vector<std::string> TaskManager::services() const {
  std::vector<std::string> out;
  out.reserve(services_.size());
  for (const auto& [name, svc] : services_) {
    (void)svc;
    out.push_back(name);
  }
  return out;
}

std::vector<sar::SweepPlan> TaskManager::plan(
    const std::string& service, const sar::Area& area, std::size_t n_uavs,
    const sar::CoverageConfig& config) const {
  const auto it = services_.find(service);
  if (it == services_.end()) {
    throw std::out_of_range("TaskManager: unknown service " + service);
  }
  return it->second(area, n_uavs, config);
}

}  // namespace sesame::platform
