#include "sesame/platform/recovery.hpp"

#include <cmath>
#include <stdexcept>

namespace sesame::platform {

std::string recovery_state_name(RecoveryState s) {
  switch (s) {
    case RecoveryState::kHealthy: return "healthy";
    case RecoveryState::kPinging: return "pinging";
    case RecoveryState::kDemoted: return "demoted";
    case RecoveryState::kRthCommanded: return "rth_commanded";
    case RecoveryState::kLost: return "lost";
  }
  return "unknown";
}

RecoveryManager::RecoveryManager(std::vector<std::string> uavs,
                                 RecoveryConfig config, RecoveryHooks hooks)
    : uavs_(std::move(uavs)), config_(config), hooks_(std::move(hooks)) {
  if (uavs_.empty()) {
    throw std::invalid_argument("RecoveryManager: no vehicles");
  }
  if (config_.staleness_window_s <= 0.0 || config_.ping_timeout_s <= 0.0 ||
      config_.demote_grace_s <= 0.0 || config_.rth_timeout_s <= 0.0 ||
      config_.ping_backoff < 1.0) {
    throw std::invalid_argument("RecoveryManager: non-positive bound");
  }
  tracks_.resize(uavs_.size());
  for (std::size_t i = 0; i < uavs_.size(); ++i) index_[uavs_[i]] = i;
  if (index_.size() != uavs_.size()) {
    throw std::invalid_argument("RecoveryManager: duplicate vehicle name");
  }
}

std::size_t RecoveryManager::index_of(const std::string& uav) const {
  const auto it = index_.find(uav);
  if (it == index_.end()) {
    throw std::out_of_range("RecoveryManager: unknown vehicle " + uav);
  }
  return it->second;
}

void RecoveryManager::attach_observability(obs::Observability* o) {
  obs_ = o;
  ping_counters_.assign(uavs_.size(), nullptr);
  demote_counters_.assign(uavs_.size(), nullptr);
  rth_counters_.assign(uavs_.size(), nullptr);
  lost_counter_ = nullptr;
  recovered_counter_ = nullptr;
  if (o == nullptr) return;
  lost_counter_ = &o->metrics.counter("sesame.platform.uav_lost_total");
  recovered_counter_ =
      &o->metrics.counter("sesame.platform.recovery_recovered_total");
  for (std::size_t i = 0; i < uavs_.size(); ++i) {
    const auto& name = uavs_[i];
    ping_counters_[i] = &o->metrics.counter(
        "sesame.platform.recovery_pings_total", {{"uav", name}});
    demote_counters_[i] = &o->metrics.counter(
        "sesame.platform.recovery_demotions_total", {{"uav", name}});
    rth_counters_[i] = &o->metrics.counter(
        "sesame.platform.rth_commanded_total", {{"uav", name}});
  }
}

void RecoveryManager::emit(const char* event, const std::string& uav,
                           double now_s) {
  if (obs_ == nullptr) return;
  obs_->tracer.event(std::string("sesame.recovery.") + event,
                     {{"uav", uav}, {"t_s", obs::attr_value(now_s)}});
}

RecoveryState RecoveryManager::state(const std::string& uav) const {
  return tracks_[index_of(uav)].state;
}

const RecoveryTimes& RecoveryManager::times(const std::string& uav) const {
  return tracks_[index_of(uav)].times;
}

std::vector<std::string> RecoveryManager::lost_uavs() const {
  std::vector<std::string> lost;
  for (std::size_t i = 0; i < uavs_.size(); ++i) {
    if (tracks_[i].state == RecoveryState::kLost) lost.push_back(uavs_[i]);
  }
  return lost;
}

void RecoveryManager::step(double now_s, const StalenessFn& staleness) {
  for (std::size_t i = 0; i < uavs_.size(); ++i) {
    const std::string& name = uavs_[i];
    Track& track = tracks_[i];
    if (track.state == RecoveryState::kLost) continue;  // terminal

    if (staleness(name) <= config_.staleness_window_s) {
      if (track.state != RecoveryState::kHealthy) {
        // Single re-arm on recovery: one hook call per outage, however many
        // escalation steps it climbed.
        track.state = RecoveryState::kHealthy;
        track.pings = 0;
        ++recoveries_;
        if (recovered_counter_ != nullptr) recovered_counter_->inc();
        emit("recovered", name, now_s);
        if (hooks_.recovered) hooks_.recovered(name);
      }
      continue;
    }
    escalate(i, now_s);
  }
}

void RecoveryManager::escalate(std::size_t i, double now_s) {
  const std::string& name = uavs_[i];
  Track& track = tracks_[i];
  switch (track.state) {
    case RecoveryState::kHealthy:
      track.state = RecoveryState::kPinging;
      track.times.detect_s = now_s;
      track.pings = 1;
      track.deadline_s = now_s + config_.ping_timeout_s;
      ++pings_sent_;
      if (i < ping_counters_.size() && ping_counters_[i] != nullptr) {
        ping_counters_[i]->inc();
      }
      emit("ping", name, now_s);
      if (hooks_.ping) hooks_.ping(name);
      break;

    case RecoveryState::kPinging:
      if (now_s < track.deadline_s) break;
      if (track.pings < config_.max_pings) {
        track.deadline_s =
            now_s + config_.ping_timeout_s *
                        std::pow(config_.ping_backoff,
                                 static_cast<double>(track.pings));
        ++track.pings;
        ++pings_sent_;
        if (i < ping_counters_.size() && ping_counters_[i] != nullptr) {
          ping_counters_[i]->inc();
        }
        emit("ping", name, now_s);
        if (hooks_.ping) hooks_.ping(name);
      } else {
        track.state = RecoveryState::kDemoted;
        track.deadline_s = now_s + config_.demote_grace_s;
        ++demotions_;
        if (i < demote_counters_.size() && demote_counters_[i] != nullptr) {
          demote_counters_[i]->inc();
        }
        emit("demote", name, now_s);
        if (hooks_.demote) hooks_.demote(name);
      }
      break;

    case RecoveryState::kDemoted:
      if (now_s < track.deadline_s) break;
      track.state = RecoveryState::kRthCommanded;
      track.deadline_s = now_s + config_.rth_timeout_s;
      ++rth_commands_;
      if (i < rth_counters_.size() && rth_counters_[i] != nullptr) {
        rth_counters_[i]->inc();
      }
      emit("rth_commanded", name, now_s);
      if (hooks_.command_rth) hooks_.command_rth(name);
      break;

    case RecoveryState::kRthCommanded:
      if (now_s < track.deadline_s) break;
      track.state = RecoveryState::kLost;
      track.times.lost_s = now_s;
      if (lost_counter_ != nullptr) lost_counter_->inc();
      emit("uav_lost", name, now_s);
      if (hooks_.declare_lost) hooks_.declare_lost(name);
      break;

    case RecoveryState::kLost:
      break;  // unreachable: filtered by step()
  }
}

}  // namespace sesame::platform
