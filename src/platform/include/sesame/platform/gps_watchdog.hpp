// GPS watchdog: the physical-layer attack sensor.
//
// The paper notes the Security EDDI framework "can incorporate additional
// sensors for physical attack detection" beyond the network IDS. GNSS
// jamming is the canonical case: it is invisible to traffic inspection but
// obvious in telemetry — an airborne vehicle that suddenly reports no fix.
// The watchdog monitors fleet telemetry and publishes a CAPEC-601 alert on
// the IDS alert topic after N consecutive fix-less samples, feeding the
// denial-of-navigation attack tree (make_jamming_attack_tree).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sesame/mw/bus.hpp"
#include "sesame/obs/observability.hpp"
#include "sesame/sim/world.hpp"

namespace sesame::platform {

struct GpsWatchdogConfig {
  /// Consecutive airborne no-fix telemetry samples before alerting.
  std::size_t consecutive_losses = 3;
};

class GpsWatchdog {
 public:
  GpsWatchdog(mw::Bus& bus, GpsWatchdogConfig config = {});

  /// Starts monitoring a UAV's telemetry.
  void watch_uav(const std::string& name);

  std::size_t alerts_raised() const noexcept { return alerts_raised_; }

  /// Attaches (nullptr: detaches) observability: each jamming detection
  /// increments `sesame.platform.gps_watchdog_alerts_total{uav}` and emits
  /// a structured `sesame.platform.gps_fix_lost` trace event.
  void set_observability(obs::Observability* o) noexcept { obs_ = o; }

 private:
  mw::Bus* bus_;
  obs::Observability* obs_ = nullptr;
  GpsWatchdogConfig config_;
  std::vector<mw::Subscription> subscriptions_;
  std::map<std::string, std::size_t> loss_streak_;
  std::map<std::string, bool> alerted_;  // once per outage
  std::size_t alerts_raised_ = 0;

  void on_telemetry(const std::string& name, const sim::Telemetry& t);
};

}  // namespace sesame::platform
