// End-to-end SAR scenario engine: the paper's Fig. 4 platform.
//
// Wires the world simulator, the SAR mission, the per-UAV EDDIs, the IDS +
// Security EDDI, and the ConSert network into one stepped loop, with the
// event injections the evaluation section uses (battery thermal fault,
// message spoofing) and the with/without-SESAME comparison switch.
//
// Behavioural contract mirroring Section V:
//  - SESAME on: the fleet flies while SafeDrones' P(fail) stays below the
//    abort threshold (0.9); crossing it forces an emergency landing. The
//    ConSert network maps degraded evidence onto Hold/Return actions; SAR
//    uncertainty above the 90% threshold triggers the SINADRA descend-and-
//    rescan adaptation.
//  - SESAME off (baseline): naive firmware only — a battery fault triggers
//    an immediate return-to-base and battery swap; spoofing and perception
//    degradation go unnoticed.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sesame/conserts/assurance_trace.hpp"
#include "sesame/eddi/uav_eddi.hpp"
#include "sesame/mw/fault_plan.hpp"
#include "sesame/obs/observability.hpp"
#include "sesame/localization/collaborative.hpp"
#include "sesame/platform/database.hpp"
#include "sesame/platform/invariants.hpp"
#include "sesame/platform/managers.hpp"
#include "sesame/platform/recovery.hpp"
#include "sesame/sar/mission.hpp"
#include "sesame/security/ids.hpp"
#include "sesame/sim/comm_link.hpp"
#include "sesame/security/security_eddi.hpp"
#include "sesame/sim/failure_schedule.hpp"
#include "sesame/sim/world.hpp"

namespace sesame::platform {

/// Scenario event: battery thermal fault (paper Fig. 5).
struct BatteryFaultEvent {
  std::string uav;
  double time_s = 250.0;
  double soc_after = 0.40;
  double temp_c = 70.0;
};

/// Scenario event: ROS message spoofing attack (paper Figs. 6-7). From
/// `time_s` an attacker node injects counterfeit position fixes for `uav`,
/// walking its estimate east at `walk_mps`. With SESAME enabled the
/// Security EDDI detects the injection; the platform response disables the
/// victim's GPS input and hands it to Collaborative Localization for a
/// safe landing at its home pad. Without SESAME the attack goes unnoticed.
struct SpoofingEvent {
  std::string uav;
  double time_s = 60.0;
  double walk_mps = 2.0;
};

struct RunnerConfig {
  bool sesame_enabled = true;
  double dt_s = 1.0;
  double max_time_s = 1500.0;
  /// ConSert evaluation period (paper: runtime evaluation, not per-frame).
  double consert_period_s = 5.0;
  /// Route ConSert evaluation through the dirty-flag evaluation cache
  /// (conserts::CachedNetworkEvaluator). Results are identical with the
  /// cache on or off; the switch exists for A/B verification and as an
  /// escape hatch.
  bool consert_eval_cache = true;
  /// Baseline battery-swap turnaround on the ground.
  double battery_swap_time_s = 60.0;
  /// Baseline returns to base when state of charge falls below this.
  double baseline_rtb_soc = 0.45;
  std::size_t n_uavs = 3;
  sar::Area area{0.0, 300.0, 0.0, 300.0};
  sar::CoverageConfig coverage;
  std::size_t n_persons = 8;
  std::optional<BatteryFaultEvent> battery_fault;
  std::optional<SpoofingEvent> spoofing;
  /// Mission altitude the SINADRA descend adaptation drops to.
  double descend_altitude_m = 18.0;
  /// Consecutive over-threshold assessments before descending.
  int descend_patience = 3;
  eddi::UavEddiConfig eddi;
  /// C2 link budget: each UAV's comm_link_good evidence comes from the
  /// link quality at its range from the ground station (its home pad).
  sim::CommLinkConfig comm_link;
  /// Fault schedule applied to every bus publication (drop/delay/dup/
  /// reorder; see docs/FAULT_INJECTION.md). When unset, the constructor
  /// falls back to the path in the SESAME_FAULT_PLAN environment variable
  /// — the hook the CI stress job uses.
  std::optional<mw::FaultPlan> fault_plan;
  /// Model the UAV↔GCS radio: telemetry and position-fix messages are
  /// dropped with distance-dependent probability (comm_link budget, GCS
  /// at the middle of the southern base line).
  bool lossy_links = false;
  /// Telemetry-staleness watchdog: a UAV whose last received telemetry is
  /// older than this loses its comm_link_good evidence, demoting the
  /// comm_localization ConSert guarantee until telemetry resumes. The
  /// demotion is edge-triggered: one demotion event per outage, one re-arm
  /// when telemetry resumes.
  double telemetry_staleness_window_s = 5.0;
  /// Vehicle-level fault timetable (docs/ROBUSTNESS.md): timed motor /
  /// sensor / battery / comms-blackout / hard-crash events applied as
  /// mission time passes. Composes with fault_plan (message-level faults).
  std::optional<sim::FailureSchedule> failure_schedule;
  /// Fleet failure-detection & recovery: health heartbeats, the staleness
  /// escalation state machine (re-ping → demote → RTH → declare lost) and
  /// coverage re-planning for lost vehicles. Opt-in: the heartbeat and
  /// ping traffic changes bus counters, so nominal scenarios keep it off.
  bool recovery_enabled = false;
  RecoveryConfig recovery;
  /// Health-heartbeat period while recovery is enabled.
  double health_heartbeat_period_s = 1.0;
  /// Safety-invariant checker bounds. The checker always runs; it draws no
  /// randomness and publishes nothing, so it never perturbs a run.
  InvariantConfig invariants;
  std::uint64_t seed = 7;
};

/// One time-series sample for one UAV.
struct UavTickRecord {
  double time_s = 0.0;
  double p_fail = 0.0;
  double soc = 1.0;
  double battery_temp_c = 25.0;
  sim::FlightMode mode = sim::FlightMode::kIdle;
  conserts::UavAction action = conserts::UavAction::kContinue;
  double altitude_m = 0.0;
  double sar_uncertainty = 0.0;
};

/// Scenario outcome.
struct RunnerResult {
  std::map<std::string, std::vector<UavTickRecord>> series;
  sar::DetectionStats detection;
  /// Time at which every waypoint was consumed; nullopt when never.
  std::optional<double> mission_complete_time_s;
  double total_time_s = 0.0;
  /// Fraction of scenario time each UAV was *available* (airborne in
  /// Takeoff/Mission/Hold, i.e. able to serve the mission): the
  /// availability metric of Fig. 5. Return-to-base legs, battery swaps on
  /// the ground, emergency landings and grounded time count as
  /// unavailable.
  std::map<std::string, double> availability_per_uav;
  /// Fleet mean of availability_per_uav.
  double availability = 0.0;
  /// Number of waypoints moved between UAVs by task redistribution.
  std::size_t waypoints_redistributed = 0;
  /// Whether the SINADRA descend adaptation fired (Section V-B).
  bool descended = false;
  conserts::MissionDecision final_decision =
      conserts::MissionDecision::kCannotComplete;
  /// Security outcome of a SpoofingEvent scenario.
  bool attack_detected = false;
  double attack_detection_time_s = -1.0;
  /// Final ground distance between the spoofed UAV and its home pad
  /// (meaningful when a spoofing event ran; the safe-landing error).
  double spoofed_uav_landing_error_m = -1.0;
  /// Peak ground-truth deviation of the spoofed UAV from its estimate.
  double spoofed_uav_peak_error_m = 0.0;
  /// Fraction of the mission area actually imaged by camera footprints.
  double area_coverage = 0.0;
  /// Best-guarantee transitions recorded by the assurance trace (SESAME
  /// runs only): the runtime certification evidence trail.
  std::vector<conserts::GuaranteeTransition> assurance_trace;
  /// Safety-invariant violations recorded this run (docs/ROBUSTNESS.md).
  /// Empty in a correct build — any entry is a platform regression.
  std::vector<InvariantViolation> invariant_violations;
  /// Vehicles the recovery escalation declared lost (vehicle order).
  std::vector<std::string> uavs_lost;
  /// Recovery latencies for the earliest-lost vehicle, relative to its
  /// failure onset (mission seconds; -1 when nothing was lost or the onset
  /// is unknown): onset → escalation start, and onset → first coverage
  /// re-plan.
  double time_to_detect_loss_s = -1.0;
  double time_to_replan_s = -1.0;
  /// Escalation activity (0 while recovery is off or never triggered).
  std::size_t recovery_pings = 0;
  std::size_t recovery_demotions = 0;
  std::size_t recovery_rth_commands = 0;
  std::size_t recovery_replans = 0;
};

class MissionRunner {
 public:
  explicit MissionRunner(RunnerConfig config);

  /// Runs the scenario to completion (all UAVs grounded and mission over,
  /// or max_time reached) and returns the recorded outcome.
  RunnerResult run();

  /// Attaches observability for the next run() (call before it; the bundle
  /// must outlive the runner). Wires the metrics registry into the world
  /// and bus, the tracer into the IDS, and makes run() emit:
  ///  - a root `sesame.mission.run` span,
  ///  - one `sesame.mission.phase` span per fleet phase
  ///    (launch → search → recovery),
  ///  - one `sesame.mission.consert_eval` span per periodic ConSert
  ///    network evaluation (SESAME runs only),
  ///  - a `sesame.mission.complete` event when the last waypoint is
  ///    consumed, and `sesame.mission.ticks_total` /
  ///    `sesame.mission.consert_evals_total` counters.
  void attach_observability(obs::Observability& o);

  /// Access to the world (benches inspect trajectories after run()).
  sim::World& world() noexcept { return *world_; }

  /// UAV names used by the scenario ("uav1".."uavN").
  const std::vector<std::string>& uav_names() const noexcept { return names_; }

  /// The named UAV's EDDI (SESAME runs only; throws std::out_of_range
  /// otherwise) — diagnostics access to per-monitor assessments.
  const eddi::UavEddi& uav_eddi(const std::string& name) const {
    return *eddis_.at(uav_ix(name));
  }

  /// Age of the named UAV's last *received* telemetry (mission clock
  /// seconds). 0 while telemetry flows every tick; grows under link loss.
  double telemetry_staleness_s(const std::string& name) const;

  /// The recovery state machine, or nullptr while recovery is disabled.
  const RecoveryManager* recovery() const noexcept { return recovery_.get(); }

  /// The safety-invariant checker (always present after construction).
  const InvariantChecker& invariants() const noexcept { return *invariants_; }

 private:
  RunnerConfig config_;
  std::unique_ptr<sim::World> world_;
  // Vehicle names in add order; per-vehicle runner state below is held in
  // vectors parallel to names_ (index == World fleet index), so the
  // per-tick loops are linear sweeps instead of string-map lookups at
  // fleet scale. Name-keyed entry points resolve through uav_ix().
  std::vector<std::string> names_;
  std::vector<geo::EnuPoint> home_enu_;
  std::vector<sar::SweepPlan> plans_;  // parallel to names_
  std::unique_ptr<sar::SarMission> mission_;
  std::unique_ptr<UavManager> uav_manager_;
  std::unique_ptr<TaskManager> task_manager_;
  std::unique_ptr<DatabaseManager> database_;
  std::unique_ptr<security::IntrusionDetectionSystem> ids_;
  std::shared_ptr<security::SecurityEddi> security_;
  std::vector<std::unique_ptr<eddi::UavEddi>> eddis_;  // parallel to names_
  conserts::ConSertNetwork consert_network_;
  std::unique_ptr<conserts::AssuranceTrace> assurance_trace_;
  sim::CommLink comm_link_{sim::CommLinkConfig{}};

  obs::Observability* obs_ = nullptr;
  obs::Counter* ticks_counter_ = nullptr;
  obs::Counter* consert_evals_counter_ = nullptr;

  // Baseline battery-swap state per vehicle: -1 = no swap pending,
  // >= 1e18 = landing commanded, else the mission time the swap finishes.
  std::vector<double> swap_until_;
  bool fault_injected_ = false;
  int over_threshold_streak_ = 0;
  bool descended_ = false;

  // Spoofing-scenario state. Attack attribution is per-UAV: an IDS alert
  // on a vehicle's fix topic marks only that vehicle compromised, so the
  // rest of the fleet keeps its GPS-based navigation guarantees.
  std::set<std::string> compromised_;
  mw::Subscription alert_subscription_;
  double spoof_offset_m_ = 0.0;
  bool spoof_response_started_ = false;
  std::unique_ptr<localization::CollaborativeLocalizer> cl_;
  std::unique_ptr<localization::SafeLandingGuide> landing_guide_;

  // Fault-injection wiring. Subscriptions are declared after world_ so
  // they release their bus registrations before the bus is destroyed.
  std::unique_ptr<mw::FaultInjector> fault_injector_;
  mw::Subscription fault_policy_sub_;
  std::vector<double> last_telemetry_rx_s_;
  std::vector<mw::Subscription> telemetry_subscriptions_;
  std::vector<obs::Gauge*> staleness_gauges_;

  // Failure & recovery wiring (docs/ROBUSTNESS.md). vehicle_failures_
  // holds a bus policy registration, so it too is declared after world_.
  std::unique_ptr<sim::FailureInjector> vehicle_failures_;
  std::unique_ptr<RecoveryManager> recovery_;
  std::unique_ptr<InvariantChecker> invariants_;
  /// Edge-triggered comm demotion state: one demotion per outage, one
  /// re-arm on recovery (gather_inputs reads this, not raw staleness).
  std::vector<std::uint8_t> watchdog_demoted_;
  std::vector<double> last_health_rx_s_;
  std::vector<mw::Subscription> health_subscriptions_;
  std::vector<obs::Counter*> comm_demotion_counters_;
  std::size_t recovery_replans_ = 0;
  std::size_t recovery_redistributed_ = 0;
  double first_replan_time_s_ = -1.0;

  void inject_spoofed_fix(RunnerResult& result);
  void start_spoof_response(const std::string& victim, RunnerResult& result);

  void setup_world();
  void setup_sesame();
  void setup_recovery();
  void update_watchdog();
  /// Fleet index of a scenario vehicle (== its position in names_).
  std::size_t uav_ix(const std::string& name) const;
  void set_comm_demoted(const std::string& name, bool demoted);
  void set_comm_demoted_ix(std::size_t i, bool demoted);
  double recovery_staleness_s(const std::string& name) const;
  double failure_onset_s(const std::string& name) const;
  void declare_lost(const std::string& name);
  std::vector<std::vector<double>> collect_safeml_reference();
  eddi::EddiInputs gather_inputs(const std::string& name);
  void baseline_policy(const std::string& name, RunnerResult& result);
};

}  // namespace sesame::platform
