// Ground Control Station (paper Section IV-A).
//
// The operator-facing aggregation point: watches the fleet's telemetry,
// logs operationally relevant events (mode transitions, low-battery
// warnings, security events), and renders the textual status view the
// web/control GUIs display. Pure consumer — it commands nothing itself;
// task assignment goes through the UAV/Task managers.
#pragma once

#include <string>
#include <vector>

#include "sesame/mw/bus.hpp"
#include "sesame/platform/database.hpp"
#include "sesame/security/security_eddi.hpp"
#include "sesame/sim/world.hpp"

namespace sesame::platform {

struct GcsEvent {
  double time_s = 0.0;
  std::string category;  ///< "mode" | "battery" | "security" | "operator"
  std::string uav;       ///< empty for fleet-wide events
  std::string message;
};

struct GcsConfig {
  /// State-of-charge below which a battery warning is logged (once per
  /// crossing).
  double low_battery_warning_soc = 0.25;
  /// Cap on the retained event log (oldest dropped).
  std::size_t event_limit = 10000;
};

class GroundControlStation {
 public:
  /// Attaches to the bus and registers itself as a database client named
  /// `client_id`.
  GroundControlStation(mw::Bus& bus, DatabaseManager& database,
                       std::string client_id = "gcs", GcsConfig config = {});

  /// Starts watching a UAV's telemetry: logs flight-mode transitions and
  /// low-battery crossings.
  void watch_uav(const std::string& name);

  /// Manually logged operator note.
  void log_operator_note(double time_s, const std::string& message);

  const std::vector<GcsEvent>& events() const noexcept { return events_; }

  /// Events of one category (copy).
  std::vector<GcsEvent> events_of(const std::string& category) const;

  /// Renders the current fleet status as a fixed-width text table (the
  /// web-GUI view): one row per watched UAV with position, battery, mode.
  std::string render_status() const;

 private:
  mw::Bus* bus_;
  DatabaseManager* database_;
  std::string client_id_;
  GcsConfig config_;
  std::vector<std::string> watched_;
  std::vector<mw::Subscription> subscriptions_;
  std::vector<GcsEvent> events_;
  std::map<std::string, sim::FlightMode> last_mode_;
  std::map<std::string, bool> battery_warned_;

  void push_event(GcsEvent event);
};

}  // namespace sesame::platform
