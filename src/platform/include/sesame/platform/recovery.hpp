// Fleet-level failure detection and recovery (docs/ROBUSTNESS.md).
//
// The RecoveryManager is the GCS-side watchdog over vehicle liveness: it
// consumes a per-UAV staleness signal (mission seconds since the last
// telemetry *or* health heartbeat arrived) and escalates through a bounded
// state machine when a vehicle goes quiet:
//
//   Healthy --staleness > window--> Pinging --pings exhausted--> Demoted
//     --grace elapsed--> RthCommanded --timeout--> Lost (terminal)
//
// Every transition fires a caller-supplied hook; the manager itself owns
// no world, bus, or mission reference, which keeps it unit-testable and
// keeps all side effects (publishing pings, demoting ConSert evidence,
// commanding RTH, re-planning coverage) in the platform layer that wires
// it. Any state except Lost returns to Healthy the moment the staleness
// signal recovers (a blackout that ends re-arms the vehicle); Lost is
// terminal — a vehicle written off stays written off even if its radio
// comes back, it just flies home with no tasks.
//
// Determinism: the manager iterates vehicles in construction order, holds
// no randomness, and advances purely on the staleness values it is handed,
// so identical runs produce identical escalation timelines.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sesame/obs/observability.hpp"

namespace sesame::platform {

/// Escalation bounds. With the defaults a vehicle that goes permanently
/// silent at time T is declared lost at T + window + ping_timeout * (1 +
/// backoff) + demote_grace + rth_timeout = T + 36 s.
struct RecoveryConfig {
  /// Staleness above this starts the escalation (matches the telemetry
  /// watchdog window by default).
  double staleness_window_s = 5.0;
  /// Wait after the first re-ping before concluding it went unanswered.
  double ping_timeout_s = 2.0;
  /// Re-pings before demoting. Each successive wait is multiplied by
  /// `ping_backoff` (bounded retry with exponential backoff).
  std::size_t max_pings = 2;
  double ping_backoff = 2.0;
  /// Time between ConSert demotion and commanding return-to-home.
  double demote_grace_s = 5.0;
  /// Time after the RTH command before the vehicle is declared lost.
  double rth_timeout_s = 20.0;
  /// Platform safety net: a serving vehicle below this state of charge is
  /// sent home (keeps the min-SoC invariant enforceable under battery
  /// faults). Applied by MissionRunner, not by the state machine.
  double min_soc_rtb = 0.10;
};

enum class RecoveryState { kHealthy, kPinging, kDemoted, kRthCommanded, kLost };

std::string recovery_state_name(RecoveryState s);

/// Side effects of the escalation, supplied by the owner. Unset hooks are
/// skipped. Hooks run synchronously inside step(), in vehicle order.
struct RecoveryHooks {
  std::function<void(const std::string&)> ping;          ///< publish a re-ping
  std::function<void(const std::string&)> demote;        ///< drop ConSert service level
  std::function<void(const std::string&)> command_rth;   ///< send the vehicle home
  std::function<void(const std::string&)> declare_lost;  ///< write it off, re-plan
  std::function<void(const std::string&)> recovered;     ///< staleness recovered
};

/// Escalation timestamps of one vehicle (mission seconds; -1 = never).
struct RecoveryTimes {
  double detect_s = -1.0;  ///< first staleness trip (escalation start)
  double lost_s = -1.0;    ///< declared lost
};

class RecoveryManager {
 public:
  RecoveryManager(std::vector<std::string> uavs, RecoveryConfig config,
                  RecoveryHooks hooks);

  /// Attaches (nullptr: detaches) observability. While attached the manager
  /// maintains `sesame.platform.recovery_pings_total{uav}`,
  /// `sesame.platform.recovery_demotions_total{uav}`,
  /// `sesame.platform.rth_commanded_total{uav}`,
  /// `sesame.platform.uav_lost_total` and
  /// `sesame.platform.recovery_recovered_total`, and emits
  /// `sesame.recovery.{ping,demote,rth_commanded,uav_lost,recovered}`
  /// trace events.
  void attach_observability(obs::Observability* o);

  /// Per-UAV staleness signal (mission seconds since last contact).
  using StalenessFn = std::function<double(const std::string&)>;

  /// Advances the state machine to `now_s`. Call once per platform tick.
  void step(double now_s, const StalenessFn& staleness);

  RecoveryState state(const std::string& uav) const;
  bool lost(const std::string& uav) const {
    return state(uav) == RecoveryState::kLost;
  }
  /// True from demotion until recovery (or forever once lost).
  bool demoted(const std::string& uav) const {
    const RecoveryState s = state(uav);
    return s == RecoveryState::kDemoted || s == RecoveryState::kRthCommanded ||
           s == RecoveryState::kLost;
  }

  std::vector<std::string> lost_uavs() const;
  const RecoveryTimes& times(const std::string& uav) const;

  std::size_t pings_sent() const noexcept { return pings_sent_; }
  std::size_t demotions() const noexcept { return demotions_; }
  std::size_t rth_commands() const noexcept { return rth_commands_; }
  std::size_t recoveries() const noexcept { return recoveries_; }

  const RecoveryConfig& config() const noexcept { return config_; }

 private:
  struct Track {
    RecoveryState state = RecoveryState::kHealthy;
    double deadline_s = 0.0;
    std::size_t pings = 0;
    RecoveryTimes times;
  };

  std::size_t index_of(const std::string& uav) const;
  void escalate(std::size_t i, double now_s);
  void emit(const char* event, const std::string& uav, double now_s);

  // Vehicles in construction order; tracks_ and the per-UAV counters are
  // parallel vectors indexed the same way, so the per-tick step() loop is
  // a linear sweep instead of N string-map lookups at fleet scale. The
  // name-keyed public API resolves through index_.
  std::vector<std::string> uavs_;
  RecoveryConfig config_;
  RecoveryHooks hooks_;
  std::vector<Track> tracks_;
  std::map<std::string, std::size_t, std::less<>> index_;

  std::size_t pings_sent_ = 0;
  std::size_t demotions_ = 0;
  std::size_t rth_commands_ = 0;
  std::size_t recoveries_ = 0;

  obs::Observability* obs_ = nullptr;
  obs::Counter* lost_counter_ = nullptr;
  obs::Counter* recovered_counter_ = nullptr;
  std::vector<obs::Counter*> ping_counters_;
  std::vector<obs::Counter*> demote_counters_;
  std::vector<obs::Counter*> rth_counters_;
};

}  // namespace sesame::platform
