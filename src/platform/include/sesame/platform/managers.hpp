// UAV Manager and Task Manager of the multi-UAV control platform
// (paper Section IV-A).
//
// The UAV Manager identifies each vehicle (type, id, equipment), tracks
// battery level, and translates platform-level commands — in particular
// the ConSert action lattice — into vehicle-compatible instructions. The
// Task Manager exposes cooperation algorithms (coverage planning, task
// redistribution) as services that can be extended without disrupting the
// platform.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sesame/conserts/uav_network.hpp"
#include "sesame/sar/coverage.hpp"
#include "sesame/sim/world.hpp"

namespace sesame::platform {

/// Registration record of a vehicle.
struct UavInfo {
  std::string name;
  std::string type = "hexarotor";  ///< airframe/vendor identification
  std::vector<std::string> equipment;  ///< e.g. {"rgb_camera", "jetson_nx"}
};

class UavManager {
 public:
  explicit UavManager(sim::World& world);

  /// Registers a vehicle that exists in the world.
  void register_uav(UavInfo info);

  const UavInfo& info(const std::string& name) const;
  std::vector<std::string> registered() const;

  /// Current battery level in [0, 1].
  double battery_level(const std::string& name) const;

  /// Translates a ConSert action into vehicle commands. Returns true when
  /// the command changed the vehicle's mode.
  bool apply_action(const std::string& name, conserts::UavAction action);

  /// The action last applied to each UAV (diagnostics).
  std::optional<conserts::UavAction> last_action(const std::string& name) const;

 private:
  sim::World* world_;
  std::map<std::string, UavInfo> infos_;
  std::map<std::string, conserts::UavAction> last_actions_;

  void check_registered(const std::string& name) const;
};

/// A cooperation algorithm offered as a service: maps a mission area and
/// fleet size to per-UAV sweep plans.
using CoverageService =
    std::function<std::vector<sar::SweepPlan>(const sar::Area&, std::size_t,
                                              const sar::CoverageConfig&)>;

class TaskManager {
 public:
  TaskManager();

  /// Registers/overrides a named algorithm. The default "boustrophedon"
  /// service wraps sar::plan_coverage.
  void register_service(const std::string& name, CoverageService service);

  std::vector<std::string> services() const;

  /// Runs a registered service; throws std::out_of_range on unknown name.
  std::vector<sar::SweepPlan> plan(const std::string& service,
                                   const sar::Area& area, std::size_t n_uavs,
                                   const sar::CoverageConfig& config) const;

 private:
  std::map<std::string, CoverageService> services_;
};

}  // namespace sesame::platform
