// Scenario-configuration files.
//
// Batch experimentation (parameter sweeps, CI regression scenarios) wants
// runner configurations as data, not code. This serializes RunnerConfig
// to/from the same JSON document model the ODE exports use. Unknown keys
// are rejected (a typo silently reverting to a default is the worst
// failure mode for an experiment config); absent keys keep their
// defaults, so files only state what they change.
#pragma once

#include <string>

#include "sesame/eddi/ode.hpp"
#include "sesame/platform/mission_runner.hpp"

namespace sesame::platform {

/// Serializes every scenario-level field (fleet, area, coverage, events,
/// timing, seed). Monitor-calibration internals are runtime-derived and
/// not part of the file format.
eddi::ode::Value config_to_json(const RunnerConfig& config);

/// Parses a configuration, starting from defaults. Throws
/// std::runtime_error on malformed JSON or unknown keys, and
/// std::invalid_argument on structurally wrong values.
RunnerConfig config_from_json(const eddi::ode::Value& doc);

/// File convenience wrappers.
void save_config(const RunnerConfig& config, const std::string& path);
RunnerConfig load_config(const std::string& path);

}  // namespace sesame::platform
