// Database manager of the multi-UAV control platform (paper Section IV-A).
//
// Provides an API for telemetry storage and retrieval. UAVs report their
// state over the bus; the manager persists the latest record and a bounded
// history per vehicle. Access mirrors the paper's behaviour: requests must
// come from sources inside the platform network (a whitelist here), so
// external clients cannot read fleet state.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sesame/mw/bus.hpp"
#include "sesame/sim/world.hpp"

namespace sesame::platform {

class DatabaseManager {
 public:
  /// `history_limit` bounds the per-UAV history (oldest entries dropped).
  explicit DatabaseManager(mw::Bus& bus, std::size_t history_limit = 4096);

  /// Starts persisting telemetry of the named UAV.
  void attach_uav(const std::string& name);

  /// Whitelists a client source for queries.
  void allow_client(const std::string& source);

  /// Latest telemetry; `client` must be whitelisted or std::runtime_error
  /// is thrown (the paper's network-origin check).
  std::optional<sim::Telemetry> latest(const std::string& client,
                                       const std::string& uav) const;

  /// Full stored history (oldest first).
  std::vector<sim::Telemetry> history(const std::string& client,
                                      const std::string& uav) const;

  std::size_t records_stored() const noexcept { return records_stored_; }

  /// Stale or duplicate telemetry discarded (record time not newer than
  /// the stored head) — non-zero only on a faulty/lossy transport.
  std::size_t records_rejected() const noexcept { return records_rejected_; }

 private:
  mw::Bus* bus_;
  std::size_t history_limit_;
  std::set<std::string> allowed_clients_;
  std::map<std::string, std::deque<sim::Telemetry>> store_;
  std::vector<mw::Subscription> subscriptions_;
  std::size_t records_stored_ = 0;
  std::size_t records_rejected_ = 0;

  void check_client(const std::string& client) const;
};

}  // namespace sesame::platform
