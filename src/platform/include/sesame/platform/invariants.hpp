// Per-step safety invariants (docs/ROBUSTNESS.md).
//
// A small tripwire library: MissionRunner calls one check per invariant
// per tick, each check receives exactly the facts it judges, and any
// violated invariant is recorded (and exported as a structured obs event
// plus a labelled counter). The checks assert properties the platform is
// *supposed* to uphold by construction — a violation means a regression in
// the recovery/re-planning logic, not a simulated failure:
//
//   lost_uav_serving  — no waypoint is served by a declared-lost vehicle
//   min_soc_floor     — no vehicle serves the mission below the SoC floor
//   blind_detection   — no detection comes from an unhealthy/crashed sensor
//   stale_evidence    — no ConSert demand is satisfied by stale comm evidence
//
// The checker draws no randomness and publishes nothing, so enabling it
// never perturbs a run.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sesame/obs/observability.hpp"
#include "sesame/sim/uav.hpp"

namespace sesame::platform {

struct InvariantConfig {
  /// Minimum state of charge a vehicle may serve the mission at. Below it
  /// the vehicle must be heading home or landing (which are the *response*
  /// and therefore exempt).
  double min_soc_floor = 0.05;
  /// ConSert comm evidence older than this must not satisfy a demand.
  double max_evidence_age_s = 10.0;
};

struct InvariantViolation {
  std::string invariant;  ///< one of the four names above
  std::string uav;
  double time_s = 0.0;
  std::string detail;
};

class InvariantChecker {
 public:
  explicit InvariantChecker(InvariantConfig config = {});

  /// Attaches (nullptr: detaches) observability: violations increment
  /// `sesame.platform.invariant_violations_total{invariant}` and emit a
  /// `sesame.invariant.violation` trace event.
  void attach_observability(obs::Observability* o);

  /// A declared-lost vehicle must not carry mission tasks: it may not be
  /// listed as mission-active and may not be flying the mission.
  void check_lost_uav_inactive(double now_s, const std::string& uav,
                               bool declared_lost, sim::FlightMode mode,
                               bool mission_active);

  /// A vehicle serving the mission (Takeoff/Mission/Hold) must be above
  /// the SoC floor; heading home or landing is exempt.
  void check_min_soc(double now_s, const std::string& uav, double soc,
                     sim::FlightMode mode);

  /// A vehicle credited with this tick's detections must have a healthy
  /// vision sensor and must not be a wreck.
  void check_detection_source(double now_s, const std::string& uav,
                              bool vision_healthy, sim::FlightMode mode);

  /// Comm-link evidence handed to the ConSert network must be fresh: it
  /// must not claim a good link when no telemetry has arrived for longer
  /// than max_evidence_age_s.
  void check_evidence_fresh(double now_s, const std::string& uav,
                            bool comm_evidence_good, double staleness_s);

  const std::vector<InvariantViolation>& violations() const noexcept {
    return violations_;
  }
  std::size_t total() const noexcept { return violations_.size(); }

  const InvariantConfig& config() const noexcept { return config_; }

 private:
  void record(const char* invariant, const std::string& uav, double now_s,
              std::string detail);

  InvariantConfig config_;
  std::vector<InvariantViolation> violations_;
  obs::Observability* obs_ = nullptr;
};

}  // namespace sesame::platform
