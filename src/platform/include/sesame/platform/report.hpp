// Result export: scenario time series and summaries as CSV, so the
// figures can be regenerated with any external plotting tool (the repo's
// benches print the same data as text tables).
#pragma once

#include <iosfwd>
#include <string>

#include "sesame/platform/mission_runner.hpp"

namespace sesame::platform {

/// Writes the per-UAV time series as CSV with header
/// `uav,time_s,p_fail,soc,battery_temp_c,mode,action,altitude_m,sar_uncertainty`.
void write_series_csv(const RunnerResult& result, std::ostream& out);

/// Writes a one-row-per-UAV summary CSV (availability etc.).
void write_summary_csv(const RunnerResult& result, std::ostream& out);

/// Convenience: both writers to files; throws std::runtime_error when a
/// file cannot be opened.
void export_result(const RunnerResult& result, const std::string& series_path,
                   const std::string& summary_path);

}  // namespace sesame::platform
