#include "sesame/platform/invariants.hpp"

#include <stdexcept>

namespace sesame::platform {

InvariantChecker::InvariantChecker(InvariantConfig config) : config_(config) {
  if (config_.min_soc_floor < 0.0 || config_.min_soc_floor >= 1.0 ||
      config_.max_evidence_age_s <= 0.0) {
    throw std::invalid_argument("InvariantChecker: bad config");
  }
}

void InvariantChecker::attach_observability(obs::Observability* o) {
  obs_ = o;
}

void InvariantChecker::record(const char* invariant, const std::string& uav,
                              double now_s, std::string detail) {
  if (obs_ != nullptr) {
    obs_->metrics
        .counter("sesame.platform.invariant_violations_total",
                 {{"invariant", invariant}})
        .inc();
    obs_->tracer.event("sesame.invariant.violation",
                       {{"invariant", invariant},
                        {"uav", uav},
                        {"t_s", obs::attr_value(now_s)},
                        {"detail", detail}});
  }
  violations_.push_back(
      InvariantViolation{invariant, uav, now_s, std::move(detail)});
}

void InvariantChecker::check_lost_uav_inactive(double now_s,
                                               const std::string& uav,
                                               bool declared_lost,
                                               sim::FlightMode mode,
                                               bool mission_active) {
  if (!declared_lost) return;
  if (mission_active) {
    record("lost_uav_serving", uav, now_s,
           "declared-lost vehicle still listed mission-active");
  }
  if (mode == sim::FlightMode::kMission) {
    record("lost_uav_serving", uav, now_s,
           "declared-lost vehicle flying the mission");
  }
}

void InvariantChecker::check_min_soc(double now_s, const std::string& uav,
                                     double soc, sim::FlightMode mode) {
  const bool serving = mode == sim::FlightMode::kTakeoff ||
                       mode == sim::FlightMode::kMission ||
                       mode == sim::FlightMode::kHold;
  if (serving && soc < config_.min_soc_floor) {
    record("min_soc_floor", uav, now_s,
           "soc " + std::to_string(soc) + " below floor while serving");
  }
}

void InvariantChecker::check_detection_source(double now_s,
                                              const std::string& uav,
                                              bool vision_healthy,
                                              sim::FlightMode mode) {
  if (!vision_healthy) {
    record("blind_detection", uav, now_s,
           "detection credited to a blacked-out vision sensor");
  }
  if (mode == sim::FlightMode::kCrashed) {
    record("blind_detection", uav, now_s,
           "detection credited to a crashed vehicle");
  }
}

void InvariantChecker::check_evidence_fresh(double now_s,
                                            const std::string& uav,
                                            bool comm_evidence_good,
                                            double staleness_s) {
  if (comm_evidence_good && staleness_s > config_.max_evidence_age_s) {
    record("stale_evidence", uav, now_s,
           "comm_link_good asserted with telemetry " +
               std::to_string(staleness_s) + "s stale");
  }
}

}  // namespace sesame::platform
