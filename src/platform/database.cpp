#include "sesame/platform/database.hpp"

#include <stdexcept>

namespace sesame::platform {

DatabaseManager::DatabaseManager(mw::Bus& bus, std::size_t history_limit)
    : bus_(&bus), history_limit_(history_limit) {
  if (history_limit_ == 0) {
    throw std::invalid_argument("DatabaseManager: zero history limit");
  }
}

void DatabaseManager::attach_uav(const std::string& name) {
  if (store_.count(name)) return;  // already attached
  store_[name];  // create the (empty) history slot
  subscriptions_.push_back(bus_->subscribe<sim::Telemetry>(
      sim::telemetry_topic(name),
      [this, name](const mw::MessageHeader&, const sim::Telemetry& t) {
        auto& history = store_[name];
        // The transport may duplicate or reorder messages (see
        // docs/FAULT_INJECTION.md); a state database must not let a late
        // copy of an old record shadow newer state.
        if (!history.empty() && t.time_s <= history.back().time_s) {
          ++records_rejected_;
          return;
        }
        history.push_back(t);
        if (history.size() > history_limit_) history.pop_front();
        ++records_stored_;
      }));
}

void DatabaseManager::allow_client(const std::string& source) {
  allowed_clients_.insert(source);
}

void DatabaseManager::check_client(const std::string& client) const {
  if (!allowed_clients_.count(client)) {
    throw std::runtime_error("DatabaseManager: client '" + client +
                             "' is outside the platform network");
  }
}

std::optional<sim::Telemetry> DatabaseManager::latest(
    const std::string& client, const std::string& uav) const {
  check_client(client);
  const auto it = store_.find(uav);
  if (it == store_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

std::vector<sim::Telemetry> DatabaseManager::history(
    const std::string& client, const std::string& uav) const {
  check_client(client);
  const auto it = store_.find(uav);
  if (it == store_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

}  // namespace sesame::platform
