#include "sesame/platform/report.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace sesame::platform {

void write_series_csv(const RunnerResult& result, std::ostream& out) {
  out << "uav,time_s,p_fail,soc,battery_temp_c,mode,action,altitude_m,"
         "sar_uncertainty\n";
  for (const auto& [name, series] : result.series) {
    for (const auto& r : series) {
      out << name << ',' << r.time_s << ',' << r.p_fail << ',' << r.soc << ','
          << r.battery_temp_c << ',' << sim::flight_mode_name(r.mode) << ','
          << conserts::uav_action_name(r.action) << ',' << r.altitude_m << ','
          << r.sar_uncertainty << '\n';
    }
  }
}

void write_summary_csv(const RunnerResult& result, std::ostream& out) {
  out << "uav,availability\n";
  for (const auto& [name, availability] : result.availability_per_uav) {
    out << name << ',' << availability << '\n';
  }
  out << "fleet," << result.availability << '\n';
}

void export_result(const RunnerResult& result, const std::string& series_path,
                   const std::string& summary_path) {
  std::ofstream series(series_path);
  if (!series) {
    throw std::runtime_error("export_result: cannot open " + series_path);
  }
  write_series_csv(result, series);
  std::ofstream summary(summary_path);
  if (!summary) {
    throw std::runtime_error("export_result: cannot open " + summary_path);
  }
  write_summary_csv(result, summary);
}

}  // namespace sesame::platform
