#include "sesame/platform/gps_watchdog.hpp"

#include <stdexcept>

#include "sesame/security/ids.hpp"

namespace sesame::platform {

GpsWatchdog::GpsWatchdog(mw::Bus& bus, GpsWatchdogConfig config)
    : bus_(&bus), config_(config) {
  if (config_.consecutive_losses == 0) {
    throw std::invalid_argument("GpsWatchdog: zero loss threshold");
  }
}

void GpsWatchdog::watch_uav(const std::string& name) {
  subscriptions_.push_back(bus_->subscribe<sim::Telemetry>(
      sim::telemetry_topic(name),
      [this, name](const mw::MessageHeader&, const sim::Telemetry& t) {
        on_telemetry(name, t);
      }));
}

void GpsWatchdog::on_telemetry(const std::string& name,
                               const sim::Telemetry& t) {
  const bool airborne = t.mode == sim::FlightMode::kTakeoff ||
                        t.mode == sim::FlightMode::kMission ||
                        t.mode == sim::FlightMode::kHold ||
                        t.mode == sim::FlightMode::kReturnToBase;
  if (!airborne || t.gps_fix) {
    loss_streak_[name] = 0;
    alerted_[name] = false;  // fix recovered: re-arm
    return;
  }
  if (++loss_streak_[name] < config_.consecutive_losses || alerted_[name]) {
    return;
  }
  alerted_[name] = true;
  ++alerts_raised_;
  if (obs_ != nullptr) {
    obs_->metrics.counter("sesame.platform.gps_watchdog_alerts_total",
                          {{"uav", name}})
        .inc();
    obs_->tracer.event("sesame.platform.gps_fix_lost",
                       {{"uav", name},
                        {"capec", "CAPEC-601"},
                        {"streak", std::to_string(loss_streak_[name])},
                        {"time_s", obs::attr_value(t.time_s)}});
  }
  security::IdsAlert alert;
  alert.rule = "gps_fix_lost";
  alert.capec_id = "CAPEC-601";
  alert.topic = sim::telemetry_topic(name);
  alert.source = name;
  alert.time_s = t.time_s;
  alert.detail = std::to_string(loss_streak_[name]) +
                 " consecutive airborne samples without a GNSS fix";
  bus_->publish(security::ids_alert_topic(), alert, "gps_watchdog", t.time_s);
}

}  // namespace sesame::platform
