#include "sesame/obs/sinks.hpp"

#include <cstdio>
#include <stdexcept>

namespace sesame::obs {

std::vector<TraceEvent> MemorySink::named(const std::string& name) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.name == name) out.push_back(e);
  }
  return out;
}

JsonLinesSink::JsonLinesSink(const std::string& path) : file_(path) {
  if (!file_) {
    throw std::runtime_error("JsonLinesSink: cannot open " + path);
  }
  out_ = &file_;
}

void JsonLinesSink::consume(const TraceEvent& event) {
  *out_ << to_json_line(event) << '\n';
  ++events_written_;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_json_line(const TraceEvent& event) {
  char num[64];
  std::string out = "{\"kind\":\"";
  out += event.kind == TraceEvent::Kind::kSpan ? "span" : "event";
  out += "\",\"name\":\"" + json_escape(event.name) + "\"";
  out += ",\"span_id\":" + std::to_string(event.span_id);
  out += ",\"parent_id\":" + std::to_string(event.parent_id);
  std::snprintf(num, sizeof num, "%.1f", event.start_us);
  out += ",\"start_us\":";
  out += num;
  if (event.kind == TraceEvent::Kind::kSpan) {
    std::snprintf(num, sizeof num, "%.1f", event.duration_us);
    out += ",\"duration_us\":";
    out += num;
  }
  if (!event.attributes.empty()) {
    out += ",\"attrs\":{";
    bool first = true;
    for (const auto& [k, v] : event.attributes) {
      if (!first) out += ',';
      first = false;
      out += "\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
    }
    out += '}';
  }
  out += '}';
  return out;
}

}  // namespace sesame::obs
