#include "sesame/obs/trace.hpp"

#include <cstdio>

namespace sesame::obs {

std::string attr_value(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

Span& Span::operator=(Span&& o) noexcept {
  end();
  tracer_ = o.tracer_;
  name_ = std::move(o.name_);
  attributes_ = std::move(o.attributes_);
  id_ = o.id_;
  parent_ = o.parent_;
  start_us_ = o.start_us_;
  o.tracer_ = nullptr;
  return *this;
}

void Span::set_attribute(const std::string& key, const std::string& value) {
  if (tracer_ == nullptr) return;
  attributes_.emplace_back(key, value);
}

void Span::set_attribute(const std::string& key, double value) {
  set_attribute(key, attr_value(value));
}

void Span::end() {
  if (tracer_ == nullptr) return;
  tracer_->finish(*this);
  tracer_ = nullptr;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Span Tracer::start_span(std::string name, Labels attributes) {
  if (sink_ == nullptr) return Span{};
  const std::uint64_t id = next_id_++;
  const std::uint64_t parent = current_;
  current_ = id;
  return Span(this, std::move(name), std::move(attributes), id, parent,
              now_us());
}

void Tracer::event(std::string name, Labels attributes) {
  if (sink_ == nullptr) return;
  TraceEvent e;
  e.kind = TraceEvent::Kind::kEvent;
  e.name = std::move(name);
  e.span_id = next_id_++;
  e.parent_id = current_;
  e.start_us = now_us();
  e.attributes = std::move(attributes);
  sink_->consume(e);
}

void Tracer::finish(Span& span) {
  // Restore nesting: spans are well-nested in this single-threaded
  // codebase, so the finishing span is the innermost one.
  current_ = span.parent_;
  if (sink_ == nullptr) return;
  TraceEvent e;
  e.kind = TraceEvent::Kind::kSpan;
  e.name = std::move(span.name_);
  e.span_id = span.id_;
  e.parent_id = span.parent_;
  e.start_us = span.start_us_;
  e.duration_us = now_us() - span.start_us_;
  e.attributes = std::move(span.attributes_);
  sink_->consume(e);
}

}  // namespace sesame::obs
