#include "sesame/obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace sesame::obs {

namespace {

/// Serializes a (sorted) label set into a map key.
std::string labels_key(const Labels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key += '\x1f';
    key += v;
    key += '\x1e';
  }
  return key;
}

Labels sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Trim to the shortest round-trippable-ish form for readability.
  char shorter[32];
  std::snprintf(shorter, sizeof shorter, "%.6g", v);
  if (std::atof(shorter) == v) return shorter;
  return buf;
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; dots (our convention)
/// and anything else exotic become underscores.
std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string prometheus_label_value(const std::string& v) {
  std::string out;
  for (const char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string prometheus_labels(const Labels& labels,
                              const std::string& extra_key = "",
                              const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += prometheus_name(k) + "=\"" + prometheus_label_value(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += '}';
  return out;
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: no bucket bounds");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("Histogram: bounds must ascend strictly");
    }
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) noexcept {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++counts_[i];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      // Interpolate within the bucket, bracketed by the observed extremes:
      // the first bucket's true lower edge is the observed min (not 0 —
      // series can be negative), and the overflow bucket's upper edge is
      // the observed max (not the last finite bound).
      double lo = i == 0 ? min_ : bounds_[i - 1];
      double hi = i >= bounds_.size() ? max_ : bounds_[i];
      lo = std::max(lo, min_);
      hi = std::min(hi, max_);
      if (hi <= lo) return lo;  // all of the bucket's range collapsed
      const double within =
          (target - cumulative) / static_cast<double>(counts_[i]);
      return lo + within * (hi - lo);
    }
    cumulative = next;
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  merge_raw(other.bounds_, other.counts_, other.count_, other.sum_,
            other.min_observed(), other.max_observed());
}

void Histogram::merge_raw(const std::vector<double>& bounds,
                          const std::vector<std::size_t>& counts,
                          std::size_t count, double sum, double min_observed,
                          double max_observed) {
  if (bounds != bounds_ || counts.size() != counts_.size()) {
    throw std::invalid_argument("Histogram::merge: bucket bounds differ");
  }
  if (count == 0) return;
  std::size_t first = counts.size();
  std::size_t last = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] > 0) {
      if (first == counts.size()) first = i;
      last = i;
    }
  }
  if (first == counts.size()) {
    throw std::invalid_argument(
        "Histogram::merge: sample claims observations but every bucket is "
        "empty");
  }
  // Claimed extremes must be consistent with the bucket mass: the min lies
  // in the first occupied bucket (lower edge exclusive) and the max in the
  // last. MetricSample is a public struct, so external producers (wire
  // peers, hand-built samples) can leave min/max defaulted to 0 while the
  // mass sits elsewhere; trusting such values drags the merged extremes to
  // 0 and collapses quantile bracketing onto the bucket bounds. Fall back
  // to the occupied buckets' finite edges instead. NaN claims fail every
  // comparison and take the same fallback.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const double min_lo = first == 0 ? -kInf : bounds_[first - 1];
  const double min_hi = first < bounds_.size() ? bounds_[first] : kInf;
  const double max_lo = last == 0 ? -kInf : bounds_[last - 1];
  const double max_hi = last < bounds_.size() ? bounds_[last] : kInf;
  const bool consistent = min_observed <= max_observed &&
                          min_observed > min_lo && min_observed <= min_hi &&
                          max_observed > max_lo && max_observed <= max_hi;
  if (!consistent) {
    min_observed = bounds_[first == 0 ? 0 : first - 1];
    max_observed = bounds_[last < bounds_.size() ? last : bounds_.size() - 1];
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += counts[i];
  if (count_ == 0) {
    min_ = min_observed;
    max_ = max_observed;
  } else {
    min_ = std::min(min_, min_observed);
    max_ = std::max(max_, max_observed);
  }
  count_ += count;
  sum_ += sum;
}

std::vector<double> latency_buckets_s() {
  return {1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5,
          2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 1e-2};
}

std::vector<double> duration_buckets_s() {
  return {1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
          1e-3, 2.5e-3, 5e-3, 1e-2, 5e-2, 0.25, 1.0};
}

const MetricSample* MetricsSnapshot::find(const std::string& name,
                                          const Labels& labels) const {
  for (const auto& s : samples) {
    if (s.name != name) continue;
    if (!labels.empty() && sorted(labels) != s.labels) continue;
    return &s;
  }
  return nullptr;
}

MetricsRegistry::Family& MetricsRegistry::family_of(const std::string& name,
                                                    MetricKind kind) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.kind = kind;
  } else if (it->second.kind != kind) {
    throw std::logic_error("MetricsRegistry: '" + name + "' registered as " +
                           kind_name(it->second.kind) + ", requested as " +
                           kind_name(kind));
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels) {
  Family& fam = family_of(name, MetricKind::kCounter);
  labels = sorted(std::move(labels));
  const std::string key = labels_key(labels);
  auto [it, inserted] = fam.counters.try_emplace(key);
  if (inserted) {
    it->second = std::make_unique<Counter>();
    fam.label_sets[key] = std::move(labels);
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels) {
  Family& fam = family_of(name, MetricKind::kGauge);
  labels = sorted(std::move(labels));
  const std::string key = labels_key(labels);
  auto [it, inserted] = fam.gauges.try_emplace(key);
  if (inserted) {
    it->second = std::make_unique<Gauge>();
    fam.label_sets[key] = std::move(labels);
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name, Labels labels,
                                      std::vector<double> bounds) {
  Family& fam = family_of(name, MetricKind::kHistogram);
  if (fam.bounds.empty()) fam.bounds = std::move(bounds);
  labels = sorted(std::move(labels));
  const std::string key = labels_key(labels);
  auto [it, inserted] = fam.histograms.try_emplace(key);
  if (inserted) {
    it->second = std::make_unique<Histogram>(fam.bounds);
    fam.label_sets[key] = std::move(labels);
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, fam] : families_) {
    const auto emit = [&](const std::string& key, MetricSample sample) {
      sample.name = name;
      sample.kind = fam.kind;
      sample.labels = fam.label_sets.at(key);
      snap.samples.push_back(std::move(sample));
    };
    for (const auto& [key, c] : fam.counters) {
      MetricSample s;
      s.value = c->value();
      emit(key, std::move(s));
    }
    for (const auto& [key, g] : fam.gauges) {
      MetricSample s;
      s.value = g->value();
      s.gauge_stamp = g->stamp();
      emit(key, std::move(s));
    }
    for (const auto& [key, h] : fam.histograms) {
      MetricSample s;
      s.value = h->sum();
      s.observations = h->count();
      s.bucket_bounds = h->bounds();
      s.bucket_counts = h->bucket_counts();
      s.min_observed = h->min_observed();
      s.max_observed = h->max_observed();
      emit(key, std::move(s));
    }
  }
  return snap;
}

void MetricsRegistry::merge(const MetricsSnapshot& snapshot) {
  merge(snapshot, ++merge_seq_);
}

void MetricsRegistry::merge(const MetricsSnapshot& snapshot,
                            std::uint64_t gauge_stamp) {
  // Keep the internal sequence ahead of explicit stamps so interleaving
  // the two forms cannot hand an un-stamped merge a stale (losing) stamp.
  merge_seq_ = std::max(merge_seq_, gauge_stamp);
  for (const auto& s : snapshot.samples) {
    switch (s.kind) {
      case MetricKind::kCounter:
        counter(s.name, s.labels).inc(s.value);
        break;
      case MetricKind::kGauge:
        gauge(s.name, s.labels).merge_stamped(s.value, gauge_stamp);
        break;
      case MetricKind::kHistogram:
        histogram(s.name, s.labels, s.bucket_bounds)
            .merge_raw(s.bucket_bounds, s.bucket_counts, s.observations,
                       s.value, s.min_observed, s.max_observed);
        break;
    }
  }
}

std::size_t MetricsRegistry::series_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [name, fam] : families_) {
    (void)name;
    n += fam.counters.size() + fam.gauges.size() + fam.histograms.size();
  }
  return n;
}

std::string MetricsRegistry::render_prometheus() const {
  return obs::render_prometheus(snapshot());
}

std::string render_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_family;
  for (const auto& s : snapshot.samples) {
    const std::string pname = prometheus_name(s.name);
    if (pname != last_family) {
      out += "# TYPE " + pname + " " + kind_name(s.kind) + "\n";
      last_family = pname;
    }
    switch (s.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += pname + prometheus_labels(s.labels) + " " +
               fmt_double(s.value) + "\n";
        break;
      case MetricKind::kHistogram: {
        std::size_t cumulative = 0;
        for (std::size_t i = 0; i < s.bucket_bounds.size(); ++i) {
          cumulative += s.bucket_counts[i];
          out += pname + "_bucket" +
                 prometheus_labels(s.labels, "le",
                                   fmt_double(s.bucket_bounds[i])) +
                 " " + std::to_string(cumulative) + "\n";
        }
        out += pname + "_bucket" + prometheus_labels(s.labels, "le", "+Inf") +
               " " + std::to_string(s.observations) + "\n";
        out += pname + "_sum" + prometheus_labels(s.labels) + " " +
               fmt_double(s.value) + "\n";
        out += pname + "_count" + prometheus_labels(s.labels) + " " +
               std::to_string(s.observations) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace sesame::obs
