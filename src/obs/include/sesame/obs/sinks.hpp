// Trace sinks: an in-memory sink for tests/inspection and a JSON-lines
// file sink for offline analysis (one self-contained JSON object per
// line — loadable with `jq`, pandas, or any trace viewer after a trivial
// conversion; see docs/OBSERVABILITY.md for the schema and a real capture).
#pragma once

#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "sesame/obs/trace.hpp"

namespace sesame::obs {

/// Buffers every event in memory; what unit tests assert against.
class MemorySink : public TraceSink {
 public:
  void consume(const TraceEvent& event) override { events_.push_back(event); }

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  void clear() { events_.clear(); }

  /// Events with the given name, in arrival (i.e. span *end*) order.
  std::vector<TraceEvent> named(const std::string& name) const;

 private:
  std::vector<TraceEvent> events_;
};

/// Writes one JSON object per line:
///   {"kind":"span","name":"sesame.mission.run","span_id":1,"parent_id":0,
///    "start_us":12.0,"duration_us":3456.7,"attrs":{"uavs":"3"}}
/// Events omit "duration_us". Strings are JSON-escaped.
class JsonLinesSink : public TraceSink {
 public:
  /// Streams to `out` (caller keeps ownership; must outlive the sink).
  explicit JsonLinesSink(std::ostream& out) : out_(&out) {}
  /// Opens `path` for writing; throws std::runtime_error when that fails.
  explicit JsonLinesSink(const std::string& path);

  void consume(const TraceEvent& event) override;

  std::size_t events_written() const noexcept { return events_written_; }

 private:
  std::ofstream file_;
  std::ostream* out_ = nullptr;
  std::size_t events_written_ = 0;
};

/// Serializes one event to the JSON-lines form (without trailing newline).
std::string to_json_line(const TraceEvent& event);

/// JSON string escaping for the sink and any other JSON writers.
std::string json_escape(const std::string& s);

}  // namespace sesame::obs
