// Metrics primitives: counters, gauges, fixed-bucket histograms, and the
// registry that owns them.
//
// Design goals, in order:
//  1. Hot-path cost of an *attached* metric is one pointer-indirect add —
//     instrumented components look their instruments up once and cache the
//     returned reference (addresses are stable for the registry's lifetime).
//  2. Hot-path cost of a *detached* component is one branch: every
//     instrumentation point in the codebase guards on a nullable
//     `MetricsRegistry*`, so uninstrumented runs pay nothing measurable.
//  3. No dependencies beyond the standard library, single-threaded like the
//     rest of the simulator (the world steps deterministically; metrics
//     inherit that determinism except for wall-clock duration samples).
//
// Naming convention (see docs/OBSERVABILITY.md): dotted lowercase paths,
// `sesame.<module>.<metric>`, counters suffixed `_total`, histograms carrying
// their unit (`_seconds`). `render_prometheus()` maps dots to underscores.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace sesame::obs {

/// Sorted key/value pairs attached to a metric series (or a trace event).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing count (messages published, alerts raised...).
class Counter {
 public:
  void inc(double n = 1.0) noexcept { value_ += n; }
  /// Monotone raise to an externally maintained cumulative count (no-op
  /// when `v` is not ahead). Components that keep their own tallies — the
  /// wire bridge's `mw::LinkCounters` — mirror them into the registry
  /// with this instead of tracking per-sample deltas.
  void raise_to(double v) noexcept {
    if (v > value_) value_ = v;
  }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Point-in-time value (mission clock, fleet availability...).
///
/// A gauge carries a merge *stamp* alongside its value: the provenance
/// order (run index, merge sequence) of the snapshot that last set it
/// through a merge. Live `set`/`add` calls leave the stamp untouched —
/// stamps only matter when snapshots of different registries are folded
/// together, where "which value survives" must not depend on merge order.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double d) noexcept { value_ += d; }
  double value() const noexcept { return value_; }

  /// Deterministic merge: the (stamp, value) pair wins lexicographically —
  /// a higher stamp replaces, an equal stamp keeps the larger value (so
  /// folding the same snapshot set in any permutation lands on one
  /// result), a lower stamp is ignored.
  void merge_stamped(double v, std::uint64_t stamp) noexcept {
    if (stamp > stamp_ || (stamp == stamp_ && v > value_)) {
      value_ = v;
      stamp_ = stamp;
    }
  }
  std::uint64_t stamp() const noexcept { return stamp_; }

 private:
  double value_ = 0.0;
  std::uint64_t stamp_ = 0;
};

/// Fixed-bucket histogram: upper bounds are set at registration and never
/// reallocate, so `observe` is a linear scan over a handful of doubles.
class Histogram {
 public:
  /// `bounds` are strictly ascending bucket upper limits; an implicit
  /// +Inf bucket catches the overflow. Throws std::invalid_argument on an
  /// empty or non-ascending bound list.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  std::size_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket (non-cumulative) counts; back() is the +Inf overflow bucket.
  const std::vector<std::size_t>& bucket_counts() const noexcept {
    return counts_;
  }
  /// Smallest / largest value observed so far; 0 while empty. These tighten
  /// quantile interpolation at the distribution's edges (the first bucket
  /// reaches down to min, the overflow bucket up to max) and survive merges.
  double min_observed() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max_observed() const noexcept { return count_ == 0 ? 0.0 : max_; }

  /// Bucket-interpolated quantile estimate (q in [0,1]); 0 when empty.
  /// Interpolation is bracketed by the observed min/max, so quantiles of
  /// series with mass in the overflow bucket (or below the first bound,
  /// e.g. negative-valued error gauges) stay inside the observed range.
  double quantile(double q) const;

  /// Folds another histogram's observations into this one (campaign-level
  /// roll-up of per-run registries). Throws std::invalid_argument when the
  /// bucket bounds differ or a sample claims observations without any
  /// bucket mass. Merging an empty side is a no-op and never disturbs the
  /// observed extremes; extremes inconsistent with the bucket mass (e.g. a
  /// wire peer's defaulted zeros) are replaced by the occupied buckets'
  /// finite edges rather than trusted.
  void merge(const Histogram& other);

 private:
  friend class MetricsRegistry;  // snapshot merge uses merge_raw
  void merge_raw(const std::vector<double>& bounds,
                 const std::vector<std::size_t>& counts, std::size_t count,
                 double sum, double min_observed, double max_observed);

  std::vector<double> bounds_;        // ascending upper limits
  std::vector<std::size_t> counts_;   // bounds_.size() + 1 (overflow)
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;  // valid only while count_ > 0
  double max_ = 0.0;
};

/// Default bucket ladder for sub-millisecond code-path latencies (seconds).
std::vector<double> latency_buckets_s();
/// Default bucket ladder for multi-millisecond step/phase durations (seconds).
std::vector<double> duration_buckets_s();

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One series in a snapshot: the metric's identity plus its current value.
struct MetricSample {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;                        ///< counter/gauge value, histogram sum
  std::size_t observations = 0;              ///< histogram count
  std::vector<double> bucket_bounds;         ///< histogram only
  std::vector<std::size_t> bucket_counts;    ///< histogram only (non-cumulative)
  double min_observed = 0.0;                 ///< histogram only; 0 when empty
  double max_observed = 0.0;                 ///< histogram only; 0 when empty
  std::uint64_t gauge_stamp = 0;             ///< gauge only; merge provenance
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;  ///< sorted by (name, labels)

  /// First sample matching name (+ labels when given); nullptr when absent.
  const MetricSample* find(const std::string& name,
                           const Labels& labels = {}) const;
};

/// Owns every metric. Registration is idempotent: asking for the same
/// (name, labels) again returns the same instance, so call sites can simply
/// re-request instead of caching when off the hot path. Registering one
/// name as two different kinds throws std::logic_error.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  /// `bounds` applies on first registration of the family; later calls
  /// reuse the family's bounds.
  Histogram& histogram(const std::string& name, Labels labels = {},
                       std::vector<double> bounds = latency_buckets_s());

  /// Point-in-time copy of every series, sorted by (name, labels).
  MetricsSnapshot snapshot() const;

  /// Folds a snapshot (typically of another registry — one campaign run's
  /// metrics) into this registry: counters add their value, histograms add
  /// their bucket counts / sum / min / max, gauges merge by stamp (see
  /// below). Series absent here are created. Throws std::logic_error on a
  /// kind clash and std::invalid_argument on histogram bound mismatch.
  ///
  /// Gauge determinism: each gauge keeps the value of the highest-stamped
  /// merge it has seen (ties keep the larger value), so folding a fixed
  /// set of stamped snapshots produces the same result in any merge order.
  /// The one-argument form stamps the whole snapshot with an internal
  /// sequence number (monotone per registry), which preserves the legacy
  /// "last merge wins" behaviour for strictly in-order callers; pass an
  /// explicit stamp (e.g. the campaign run index + 1) whenever merges may
  /// happen out of order — concurrent service tenants, completion-order
  /// streaming.
  void merge(const MetricsSnapshot& snapshot);
  void merge(const MetricsSnapshot& snapshot, std::uint64_t gauge_stamp);

  /// Prometheus text exposition (v0.0.4) of the current state: dotted
  /// names become underscored, histograms expand to cumulative
  /// `_bucket{le=...}` series plus `_sum` and `_count`.
  std::string render_prometheus() const;

  std::size_t series_count() const noexcept;

 private:
  struct Family {
    MetricKind kind = MetricKind::kCounter;
    std::vector<double> bounds;  // histograms only
    // Keyed by the serialized label set; pointers are address-stable.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
    std::map<std::string, Labels> label_sets;
  };

  Family& family_of(const std::string& name, MetricKind kind);

  std::map<std::string, Family> families_;
  std::uint64_t merge_seq_ = 0;  ///< stamps un-stamped merges (last wins)
};

/// Renders a snapshot in the Prometheus text format (what
/// MetricsRegistry::render_prometheus uses internally).
std::string render_prometheus(const MetricsSnapshot& snapshot);

}  // namespace sesame::obs
