// Span-based structured tracing with a pluggable sink.
//
// A `Tracer` without a sink is disabled: `start_span` returns an inert
// Span and `event` is a branch — components keep a nullable `Tracer*` and
// pay nothing when tracing is off. With a sink attached, every finished
// span and every instantaneous event is handed to the sink as a
// `TraceEvent` (see sinks.hpp for the JSON-lines file sink and the
// in-memory sink tests use).
//
// Nesting is tracked by the tracer itself (the codebase is single-threaded
// by design): the innermost open span is the parent of whatever starts
// next, so `sesame.mission.consert_eval` spans emitted inside the
// `sesame.mission.run` span carry its id as `parent_id` with no plumbing
// at the call sites.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

#include "sesame/obs/metrics.hpp"  // obs::Labels

namespace sesame::obs {

/// One record handed to the sink: a finished span or an instantaneous event.
struct TraceEvent {
  enum class Kind { kSpan, kEvent };
  Kind kind = Kind::kEvent;
  std::string name;
  std::uint64_t span_id = 0;    ///< unique per tracer; 0 never issued
  std::uint64_t parent_id = 0;  ///< 0 = root (no enclosing span)
  double start_us = 0.0;        ///< wall clock, relative to tracer creation
  double duration_us = 0.0;     ///< spans only
  Labels attributes;
};

/// Receives trace records; implementations must not re-enter the tracer.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void consume(const TraceEvent& event) = 0;
};

class Tracer;

/// RAII handle for an open span: records duration from construction to
/// `end()` (or destruction) and restores the tracer's nesting level.
/// Movable, not copyable. A default-constructed / inert Span is a no-op.
class Span {
 public:
  Span() = default;
  Span(Span&& o) noexcept { *this = std::move(o); }
  Span& operator=(Span&& o) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  /// Attaches a key/value to the span (kept until the span ends).
  void set_attribute(const std::string& key, const std::string& value);
  void set_attribute(const std::string& key, double value);

  /// Finishes the span and emits it to the sink; idempotent.
  void end();

  bool recording() const noexcept { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::string name, Labels attributes,
       std::uint64_t id, std::uint64_t parent, double start_us)
      : tracer_(tracer),
        name_(std::move(name)),
        attributes_(std::move(attributes)),
        id_(id),
        parent_(parent),
        start_us_(start_us) {}

  Tracer* tracer_ = nullptr;  // null = inert
  std::string name_;
  Labels attributes_;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  double start_us_ = 0.0;
};

class Tracer {
 public:
  Tracer();

  /// Attaches (or, with nullptr, detaches) the sink. The sink must outlive
  /// the tracer or be detached first; spans still open when the sink is
  /// swapped emit to the new sink when they end.
  void set_sink(TraceSink* sink) noexcept { sink_ = sink; }
  bool enabled() const noexcept { return sink_ != nullptr; }

  /// Opens a span as a child of the innermost open span. When disabled,
  /// returns an inert Span (no allocation beyond the moved-in strings).
  [[nodiscard]] Span start_span(std::string name, Labels attributes = {});

  /// Emits an instantaneous structured event (anomaly detections, alerts),
  /// parented to the innermost open span.
  void event(std::string name, Labels attributes = {});

  /// Microseconds of wall clock since tracer construction.
  double now_us() const;

 private:
  friend class Span;
  void finish(Span& span);

  TraceSink* sink_ = nullptr;
  std::uint64_t next_id_ = 1;
  std::uint64_t current_ = 0;  // innermost open span (single-threaded)
  std::chrono::steady_clock::time_point epoch_;
};

/// Formats a double the way span/event attributes expect ("%.6g").
std::string attr_value(double v);

}  // namespace sesame::obs
