// The bundle instrumented components attach to: one metrics registry plus
// one tracer. Constructed by the entry point that wants telemetry
// (scenario_cli --metrics/--trace, fleet_dashboard, a test) and handed down
// by pointer; components that never receive one skip all instrumentation.
//
//   obs::Observability o;
//   obs::JsonLinesSink sink("trace.jsonl");
//   o.tracer.set_sink(&sink);
//   runner.attach_observability(o);
//   ... run ...
//   std::fputs(o.metrics.render_prometheus().c_str(), stdout);
#pragma once

#include "sesame/obs/metrics.hpp"
#include "sesame/obs/trace.hpp"

namespace sesame::obs {

struct Observability {
  MetricsRegistry metrics;
  Tracer tracer;
};

}  // namespace sesame::obs
