// Discrete Bayesian networks with exact inference by variable elimination.
//
// SINADRA (Reich & Trapp, EDCC 2020) performs situation-aware dynamic risk
// assessment by propagating runtime evidence (detector uncertainty, weather,
// altitude band, terrain) through a Bayesian network whose query node is the
// mission-level risk. This module provides the generic substrate: named
// variables with finite domains, conditional probability tables, evidence,
// and posterior queries.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sesame::bayes {

/// Index of a variable within a network.
using VarId = std::size_t;

/// A discrete random variable: a name plus named states.
struct Variable {
  std::string name;
  std::vector<std::string> states;
};

/// A factor over a set of variables: the core datum of variable
/// elimination. Values are stored in row-major order over the cartesian
/// product of the variables' domains, with the *last* variable in `vars`
/// varying fastest.
class Factor {
 public:
  Factor() = default;
  Factor(std::vector<VarId> vars, std::vector<std::size_t> cardinalities,
         std::vector<double> values);

  const std::vector<VarId>& vars() const noexcept { return vars_; }
  const std::vector<double>& values() const noexcept { return values_; }

  /// Pointwise product; variables are unioned.
  Factor multiply(const Factor& other) const;

  /// Sums out one variable.
  Factor marginalize(VarId var) const;

  /// Restricts one variable to a fixed state (evidence application).
  Factor reduce(VarId var, std::size_t state) const;

  /// Normalizes values to sum to 1. No-op on an all-zero factor.
  void normalize();

  std::size_t cardinality_of(VarId var) const;

 private:
  std::vector<VarId> vars_;
  std::vector<std::size_t> cards_;  // parallel to vars_
  std::vector<double> values_;

  std::size_t stride_of(std::size_t pos) const;
};

/// A Bayesian network under construction and query.
///
/// Usage:
///   Network net;
///   auto rain  = net.add_variable("rain", {"no", "yes"});
///   auto grass = net.add_variable("grass_wet", {"no", "yes"});
///   net.set_prior(rain, {0.8, 0.2});
///   net.set_cpt(grass, {rain}, {0.9, 0.1,   // rain=no
///                               0.2, 0.8}); // rain=yes
///   auto posterior = net.query(rain, {{grass, "yes"}});
class Network {
 public:
  /// Adds a variable; at least two states required.
  VarId add_variable(std::string name, std::vector<std::string> states);

  std::size_t num_variables() const noexcept { return variables_.size(); }
  const Variable& variable(VarId id) const { return variables_.at(id); }

  /// Finds a variable by name; nullopt when absent.
  std::optional<VarId> find(const std::string& name) const;

  /// State index by name for a variable; throws on unknown state.
  std::size_t state_index(VarId var, const std::string& state) const;

  /// Root prior: probabilities over the variable's states (must sum to 1).
  void set_prior(VarId var, std::vector<double> probabilities);

  /// Conditional probability table. `values` is laid out with parent
  /// configurations as rows (first parent slowest) and the child's states
  /// as columns; each row must sum to 1.
  void set_cpt(VarId child, std::vector<VarId> parents,
               std::vector<double> values);

  /// Evidence: observed states per variable.
  using Evidence = std::map<VarId, std::size_t>;

  /// Convenience evidence construction from state names.
  Evidence make_evidence(
      const std::vector<std::pair<std::string, std::string>>& items) const;

  /// Posterior distribution over `target` given the evidence, via variable
  /// elimination (min-degree-ish ordering: ascending id excluding target and
  /// evidence). Throws std::logic_error if any variable lacks a CPT/prior,
  /// std::runtime_error when the evidence has zero probability.
  std::vector<double> query(VarId target, const Evidence& evidence = {}) const;

  /// Posterior probability of a single named state of `target`.
  double query_state(VarId target, const std::string& state,
                     const Evidence& evidence = {}) const;

  /// Most probable explanation: the jointly most likely assignment of all
  /// non-evidence variables given the evidence, found by exhaustive
  /// enumeration over the hidden-variable space (exact; the SESAME
  /// networks are small). Returns state indices for every variable
  /// (evidence variables keep their observed states). Throws like query().
  std::map<VarId, std::size_t> most_probable_explanation(
      const Evidence& evidence = {}) const;

  /// Joint probability of a complete assignment (chain rule over CPTs).
  double joint_probability(const std::map<VarId, std::size_t>& assignment) const;

 private:
  std::vector<Variable> variables_;
  // Per-variable CPT as a factor over {parents..., child}.
  std::vector<std::optional<Factor>> cpts_;
  std::vector<std::vector<VarId>> parents_;

  void check_var(VarId var, const char* who) const;
};

}  // namespace sesame::bayes
