#include "sesame/bayes/network.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sesame::bayes {

namespace {

std::size_t product(const std::vector<std::size_t>& xs) {
  return std::accumulate(xs.begin(), xs.end(), std::size_t{1},
                         std::multiplies<>());
}

/// Maps an assignment (parallel to vars) to a flat row-major index with the
/// last variable fastest.
std::size_t flat_index(const std::vector<std::size_t>& assignment,
                       const std::vector<std::size_t>& cards) {
  std::size_t idx = 0;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    idx = idx * cards[i] + assignment[i];
  }
  return idx;
}

}  // namespace

Factor::Factor(std::vector<VarId> vars, std::vector<std::size_t> cardinalities,
               std::vector<double> values)
    : vars_(std::move(vars)), cards_(std::move(cardinalities)),
      values_(std::move(values)) {
  if (vars_.size() != cards_.size()) {
    throw std::invalid_argument("Factor: vars/cards size mismatch");
  }
  for (std::size_t c : cards_) {
    if (c < 1) throw std::invalid_argument("Factor: zero cardinality");
  }
  if (values_.size() != product(cards_)) {
    throw std::invalid_argument("Factor: value count mismatch");
  }
  for (double v : values_) {
    if (v < 0.0 || !std::isfinite(v)) {
      throw std::invalid_argument("Factor: negative or non-finite value");
    }
  }
}

std::size_t Factor::cardinality_of(VarId var) const {
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i] == var) return cards_[i];
  }
  throw std::out_of_range("Factor::cardinality_of: variable not in factor");
}

Factor Factor::multiply(const Factor& other) const {
  // Union of variables, preserving this factor's order then the new ones.
  std::vector<VarId> uvars = vars_;
  std::vector<std::size_t> ucards = cards_;
  for (std::size_t i = 0; i < other.vars_.size(); ++i) {
    if (std::find(uvars.begin(), uvars.end(), other.vars_[i]) == uvars.end()) {
      uvars.push_back(other.vars_[i]);
      ucards.push_back(other.cards_[i]);
    }
  }
  // Position of each union variable in each operand (or npos).
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::vector<std::size_t> pos_a(uvars.size(), npos), pos_b(uvars.size(), npos);
  for (std::size_t u = 0; u < uvars.size(); ++u) {
    for (std::size_t i = 0; i < vars_.size(); ++i) {
      if (vars_[i] == uvars[u]) pos_a[u] = i;
    }
    for (std::size_t i = 0; i < other.vars_.size(); ++i) {
      if (other.vars_[i] == uvars[u]) pos_b[u] = i;
    }
  }

  const std::size_t total = product(ucards);
  std::vector<double> out(total, 0.0);
  std::vector<std::size_t> assign(uvars.size(), 0);
  std::vector<std::size_t> a_assign(vars_.size(), 0);
  std::vector<std::size_t> b_assign(other.vars_.size(), 0);
  for (std::size_t idx = 0; idx < total; ++idx) {
    for (std::size_t u = 0; u < uvars.size(); ++u) {
      if (pos_a[u] != npos) a_assign[pos_a[u]] = assign[u];
      if (pos_b[u] != npos) b_assign[pos_b[u]] = assign[u];
    }
    out[idx] = values_[flat_index(a_assign, cards_)] *
               other.values_[flat_index(b_assign, other.cards_)];
    // Advance the union assignment (last variable fastest).
    for (std::size_t u = uvars.size(); u-- > 0;) {
      if (++assign[u] < ucards[u]) break;
      assign[u] = 0;
    }
  }
  return Factor(std::move(uvars), std::move(ucards), std::move(out));
}

Factor Factor::marginalize(VarId var) const {
  const auto it = std::find(vars_.begin(), vars_.end(), var);
  if (it == vars_.end()) {
    throw std::out_of_range("Factor::marginalize: variable not in factor");
  }
  const std::size_t k = static_cast<std::size_t>(it - vars_.begin());

  std::vector<VarId> nvars;
  std::vector<std::size_t> ncards;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    if (i == k) continue;
    nvars.push_back(vars_[i]);
    ncards.push_back(cards_[i]);
  }
  std::vector<double> out(std::max<std::size_t>(1, product(ncards)), 0.0);

  std::vector<std::size_t> assign(vars_.size(), 0);
  std::vector<std::size_t> nassign;
  nassign.reserve(nvars.size());
  for (std::size_t idx = 0; idx < values_.size(); ++idx) {
    nassign.clear();
    for (std::size_t i = 0; i < vars_.size(); ++i) {
      if (i != k) nassign.push_back(assign[i]);
    }
    out[nvars.empty() ? 0 : flat_index(nassign, ncards)] += values_[idx];
    for (std::size_t i = vars_.size(); i-- > 0;) {
      if (++assign[i] < cards_[i]) break;
      assign[i] = 0;
    }
  }
  if (nvars.empty()) {
    return Factor({}, {}, {out[0]});
  }
  return Factor(std::move(nvars), std::move(ncards), std::move(out));
}

Factor Factor::reduce(VarId var, std::size_t state) const {
  const auto it = std::find(vars_.begin(), vars_.end(), var);
  if (it == vars_.end()) {
    throw std::out_of_range("Factor::reduce: variable not in factor");
  }
  const std::size_t k = static_cast<std::size_t>(it - vars_.begin());
  if (state >= cards_[k]) throw std::out_of_range("Factor::reduce: state");

  std::vector<VarId> nvars;
  std::vector<std::size_t> ncards;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    if (i == k) continue;
    nvars.push_back(vars_[i]);
    ncards.push_back(cards_[i]);
  }
  std::vector<double> out;
  out.reserve(std::max<std::size_t>(1, product(ncards)));

  std::vector<std::size_t> assign(vars_.size(), 0);
  for (std::size_t idx = 0; idx < values_.size(); ++idx) {
    if (assign[k] == state) out.push_back(values_[idx]);
    for (std::size_t i = vars_.size(); i-- > 0;) {
      if (++assign[i] < cards_[i]) break;
      assign[i] = 0;
    }
  }
  return Factor(std::move(nvars), std::move(ncards), std::move(out));
}

void Factor::normalize() {
  const double sum = std::accumulate(values_.begin(), values_.end(), 0.0);
  if (sum <= 0.0) return;
  for (double& v : values_) v /= sum;
}

std::size_t Factor::stride_of(std::size_t pos) const {
  std::size_t s = 1;
  for (std::size_t i = pos + 1; i < cards_.size(); ++i) s *= cards_[i];
  return s;
}

VarId Network::add_variable(std::string name, std::vector<std::string> states) {
  if (states.size() < 2) {
    throw std::invalid_argument("add_variable: need >= 2 states");
  }
  if (find(name).has_value()) {
    throw std::invalid_argument("add_variable: duplicate name " + name);
  }
  variables_.push_back({std::move(name), std::move(states)});
  cpts_.emplace_back(std::nullopt);
  parents_.emplace_back();
  return variables_.size() - 1;
}

std::optional<VarId> Network::find(const std::string& name) const {
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    if (variables_[i].name == name) return i;
  }
  return std::nullopt;
}

std::size_t Network::state_index(VarId var, const std::string& state) const {
  check_var(var, "state_index");
  const auto& states = variables_[var].states;
  const auto it = std::find(states.begin(), states.end(), state);
  if (it == states.end()) {
    throw std::invalid_argument("state_index: unknown state '" + state +
                                "' of " + variables_[var].name);
  }
  return static_cast<std::size_t>(it - states.begin());
}

void Network::set_prior(VarId var, std::vector<double> probabilities) {
  set_cpt(var, {}, std::move(probabilities));
}

void Network::set_cpt(VarId child, std::vector<VarId> parents,
                      std::vector<double> values) {
  check_var(child, "set_cpt");
  std::vector<VarId> fvars;
  std::vector<std::size_t> fcards;
  std::size_t rows = 1;
  for (VarId p : parents) {
    check_var(p, "set_cpt(parent)");
    if (p == child) throw std::invalid_argument("set_cpt: child as own parent");
    fvars.push_back(p);
    fcards.push_back(variables_[p].states.size());
    rows *= variables_[p].states.size();
  }
  const std::size_t cols = variables_[child].states.size();
  fvars.push_back(child);
  fcards.push_back(cols);
  if (values.size() != rows * cols) {
    throw std::invalid_argument("set_cpt: expected " + std::to_string(rows * cols) +
                                " values, got " + std::to_string(values.size()));
  }
  for (std::size_t r = 0; r < rows; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < cols; ++c) s += values[r * cols + c];
    if (std::abs(s - 1.0) > 1e-9) {
      throw std::invalid_argument("set_cpt: row " + std::to_string(r) +
                                  " does not sum to 1");
    }
  }
  cpts_[child] = Factor(std::move(fvars), std::move(fcards), std::move(values));
  parents_[child] = std::move(parents);
}

Network::Evidence Network::make_evidence(
    const std::vector<std::pair<std::string, std::string>>& items) const {
  Evidence ev;
  for (const auto& [var_name, state_name] : items) {
    const auto var = find(var_name);
    if (!var) throw std::invalid_argument("make_evidence: unknown variable " + var_name);
    ev[*var] = state_index(*var, state_name);
  }
  return ev;
}

std::vector<double> Network::query(VarId target, const Evidence& evidence) const {
  check_var(target, "query");
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    if (!cpts_[i].has_value()) {
      throw std::logic_error("query: variable '" + variables_[i].name +
                             "' has no CPT/prior");
    }
  }
  for (const auto& [var, state] : evidence) {
    check_var(var, "query(evidence)");
    if (state >= variables_[var].states.size()) {
      throw std::out_of_range("query: evidence state out of range");
    }
  }

  // Querying an observed variable yields a point mass on the observed state.
  if (const auto it = evidence.find(target); it != evidence.end()) {
    std::vector<double> point(variables_[target].states.size(), 0.0);
    point[it->second] = 1.0;
    return point;
  }

  // Collect CPT factors with evidence applied.
  std::vector<Factor> factors;
  factors.reserve(variables_.size());
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    Factor f = *cpts_[i];
    for (const auto& [var, state] : evidence) {
      if (std::find(f.vars().begin(), f.vars().end(), var) != f.vars().end()) {
        f = f.reduce(var, state);
      }
    }
    factors.push_back(std::move(f));
  }

  // Eliminate all hidden variables in ascending-id order.
  for (VarId v = 0; v < variables_.size(); ++v) {
    if (v == target || evidence.count(v)) continue;
    // Multiply all factors mentioning v, then sum v out.
    Factor combined({}, {}, {1.0});
    bool any = false;
    std::vector<Factor> remaining;
    remaining.reserve(factors.size());
    for (auto& f : factors) {
      if (std::find(f.vars().begin(), f.vars().end(), v) != f.vars().end()) {
        combined = any ? combined.multiply(f) : std::move(f);
        any = true;
      } else {
        remaining.push_back(std::move(f));
      }
    }
    if (any) remaining.push_back(combined.marginalize(v));
    factors = std::move(remaining);
  }

  // Multiply what is left into the posterior over target.
  Factor result({}, {}, {1.0});
  bool any = false;
  for (auto& f : factors) {
    result = any ? result.multiply(f) : std::move(f);
    any = true;
  }
  const double total =
      std::accumulate(result.values().begin(), result.values().end(), 0.0);
  if (total <= 0.0) {
    throw std::runtime_error("query: evidence has zero probability");
  }
  // The surviving factor is over {target} only.
  if (result.vars().size() != 1 || result.vars()[0] != target) {
    throw std::logic_error("query: internal elimination error");
  }
  std::vector<double> posterior = result.values();
  for (double& p : posterior) p /= total;
  return posterior;
}

double Network::query_state(VarId target, const std::string& state,
                            const Evidence& evidence) const {
  return query(target, evidence).at(state_index(target, state));
}

double Network::joint_probability(
    const std::map<VarId, std::size_t>& assignment) const {
  if (assignment.size() != variables_.size()) {
    throw std::invalid_argument("joint_probability: incomplete assignment");
  }
  double p = 1.0;
  for (VarId v = 0; v < variables_.size(); ++v) {
    if (!cpts_[v].has_value()) {
      throw std::logic_error("joint_probability: variable '" +
                             variables_[v].name + "' has no CPT/prior");
    }
    // Reduce the CPT factor by the assignment of every variable it spans.
    Factor f = *cpts_[v];
    for (const VarId fv : std::vector<VarId>(f.vars())) {
      const auto it = assignment.find(fv);
      if (it == assignment.end() ||
          it->second >= variables_[fv].states.size()) {
        throw std::invalid_argument("joint_probability: bad assignment");
      }
      f = f.reduce(fv, it->second);
    }
    p *= f.values().at(0);
  }
  return p;
}

std::map<VarId, std::size_t> Network::most_probable_explanation(
    const Evidence& evidence) const {
  for (const auto& [var, state] : evidence) {
    check_var(var, "most_probable_explanation");
    if (state >= variables_[var].states.size()) {
      throw std::out_of_range("most_probable_explanation: evidence state");
    }
  }
  // Hidden variables to enumerate.
  std::vector<VarId> hidden;
  for (VarId v = 0; v < variables_.size(); ++v) {
    if (!evidence.count(v)) hidden.push_back(v);
  }

  std::map<VarId, std::size_t> assignment;
  for (const auto& [var, state] : evidence) assignment[var] = state;
  for (const VarId v : hidden) assignment[v] = 0;

  std::map<VarId, std::size_t> best = assignment;
  double best_p = -1.0;
  while (true) {
    const double p = joint_probability(assignment);
    if (p > best_p) {
      best_p = p;
      best = assignment;
    }
    // Advance the hidden-variable odometer.
    std::size_t pos = 0;
    for (; pos < hidden.size(); ++pos) {
      const VarId v = hidden[pos];
      if (++assignment[v] < variables_[v].states.size()) break;
      assignment[v] = 0;
    }
    if (pos == hidden.size()) break;
  }
  if (best_p <= 0.0) {
    throw std::runtime_error(
        "most_probable_explanation: evidence has zero probability");
  }
  return best;
}

void Network::check_var(VarId var, const char* who) const {
  if (var >= variables_.size()) {
    throw std::out_of_range(std::string(who) + ": variable id out of range");
  }
}

}  // namespace sesame::bayes
