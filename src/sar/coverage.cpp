#include "sesame/sar/coverage.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sesame::sar {

std::vector<SweepPlan> plan_coverage(const Area& area, std::size_t n_uavs,
                                     const CoverageConfig& config) {
  if (area.width() <= 0.0 || area.height() <= 0.0) {
    throw std::invalid_argument("plan_coverage: degenerate area");
  }
  if (n_uavs == 0) throw std::invalid_argument("plan_coverage: zero UAVs");
  if (config.lane_spacing_m <= 0.0 || config.along_track_spacing_m <= 0.0 ||
      config.altitude_m <= 0.0) {
    throw std::invalid_argument("plan_coverage: non-positive config value");
  }

  std::vector<SweepPlan> plans;
  const double strip_width = area.width() / static_cast<double>(n_uavs);
  for (std::size_t u = 0; u < n_uavs; ++u) {
    SweepPlan plan;
    plan.strip = area;
    plan.strip.east_min = area.east_min + strip_width * static_cast<double>(u);
    plan.strip.east_max = plan.strip.east_min + strip_width;

    // North-south lanes east-to-west across the strip, serpentine order.
    const auto lanes = static_cast<std::size_t>(
        std::ceil(plan.strip.width() / config.lane_spacing_m));
    bool northbound = true;
    for (std::size_t lane = 0; lane <= lanes; ++lane) {
      const double east = std::min(
          plan.strip.east_min + static_cast<double>(lane) * config.lane_spacing_m,
          plan.strip.east_max);
      // Sample waypoints along the lane for progress granularity.
      const double from = northbound ? area.north_min : area.north_max;
      const double to = northbound ? area.north_max : area.north_min;
      const double dir = northbound ? 1.0 : -1.0;
      for (double n = from;; n += dir * config.along_track_spacing_m) {
        const double clamped = northbound ? std::min(n, to) : std::max(n, to);
        plan.waypoints.push_back({east, clamped, config.altitude_m});
        if (clamped == to) break;
      }
      northbound = !northbound;
      if (east >= plan.strip.east_max) break;
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

double plan_length_m(const SweepPlan& plan) {
  double total = 0.0;
  for (std::size_t i = 1; i < plan.waypoints.size(); ++i) {
    total += geo::enu_distance_m(plan.waypoints[i - 1], plan.waypoints[i]);
  }
  return total;
}

double coverage_fraction(const CoverageConfig& config,
                         double footprint_width_m) {
  if (footprint_width_m <= 0.0) return 0.0;
  return std::min(1.0, footprint_width_m / config.lane_spacing_m);
}

}  // namespace sesame::sar
