#include "sesame/sar/coverage_tracker.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sesame::sar {

CoverageTracker::CoverageTracker(const Area& area, double cell_m)
    : area_(area), cell_m_(cell_m) {
  if (area_.width() <= 0.0 || area_.height() <= 0.0) {
    throw std::invalid_argument("CoverageTracker: degenerate area");
  }
  if (cell_m_ <= 0.0) {
    throw std::invalid_argument("CoverageTracker: non-positive cell size");
  }
  cells_east_ = static_cast<std::size_t>(std::ceil(area_.width() / cell_m_));
  cells_north_ = static_cast<std::size_t>(std::ceil(area_.height() / cell_m_));
  covered_.assign(cells_east_ * cells_north_, 0);
  exact_grid_ =
      static_cast<double>(cells_east_) * cell_m_ == area_.width() &&
      static_cast<double>(cells_north_) * cell_m_ == area_.height();
}

double CoverageTracker::fraction_covered() const {
  if (covered_.empty()) return 0.0;
  if (exact_grid_) {
    return static_cast<double>(covered_count_) /
           static_cast<double>(covered_.size());
  }
  return covered_area_m2_ / (area_.width() * area_.height());
}

double CoverageTracker::fraction_covered(const Area& region) const {
  // Intersection of the query region with the tracked area.
  const double east_lo = std::max(region.east_min, area_.east_min);
  const double east_hi = std::min(region.east_max, area_.east_max);
  const double north_lo = std::max(region.north_min, area_.north_min);
  const double north_hi = std::min(region.north_max, area_.north_max);
  if (east_hi <= east_lo || north_hi <= north_lo) return 0.0;

  const auto cell_of = [&](double offset_m) {
    return static_cast<std::size_t>(std::max(0.0, offset_m / cell_m_));
  };
  const std::size_t ie_lo = cell_of(east_lo - area_.east_min);
  const std::size_t in_lo = cell_of(north_lo - area_.north_min);

  double region_area = 0.0;
  double covered_area = 0.0;
  for (std::size_t in = in_lo; in < cells_north_; ++in) {
    const double cell_n_lo = area_.north_min + static_cast<double>(in) * cell_m_;
    if (cell_n_lo >= north_hi) break;
    const double ext_n = std::min(cell_n_lo + cell_extent_north(in), north_hi) -
                         std::max(cell_n_lo, north_lo);
    if (ext_n <= 0.0) continue;
    const std::size_t row = in * cells_east_;
    for (std::size_t ie = ie_lo; ie < cells_east_; ++ie) {
      const double cell_e_lo =
          area_.east_min + static_cast<double>(ie) * cell_m_;
      if (cell_e_lo >= east_hi) break;
      const double ext_e =
          std::min(cell_e_lo + cell_extent_east(ie), east_hi) -
          std::max(cell_e_lo, east_lo);
      if (ext_e <= 0.0) continue;
      const double overlap = ext_e * ext_n;
      region_area += overlap;
      if (covered_[row + ie]) covered_area += overlap;
    }
  }
  return region_area > 0.0 ? covered_area / region_area : 0.0;
}

void CoverageTracker::mark(const sim::Footprint& footprint) {
  if (footprint.area_m2() <= 0.0) return;
  // Cell-index window overlapping the footprint rectangle.
  const double east_lo = footprint.center_east_m - footprint.half_width_m;
  const double east_hi = footprint.center_east_m + footprint.half_width_m;
  const double north_lo = footprint.center_north_m - footprint.half_height_m;
  const double north_hi = footprint.center_north_m + footprint.half_height_m;

  const auto clamp_east = [&](double e) {
    return std::clamp((e - area_.east_min) / cell_m_, 0.0,
                      static_cast<double>(cells_east_));
  };
  const auto clamp_north = [&](double n) {
    return std::clamp((n - area_.north_min) / cell_m_, 0.0,
                      static_cast<double>(cells_north_));
  };
  const auto ie_lo = static_cast<std::size_t>(clamp_east(east_lo));
  const auto ie_hi = static_cast<std::size_t>(std::ceil(clamp_east(east_hi)));
  const auto in_lo = static_cast<std::size_t>(clamp_north(north_lo));
  const auto in_hi = static_cast<std::size_t>(std::ceil(clamp_north(north_hi)));

  for (std::size_t in = in_lo; in < in_hi && in < cells_north_; ++in) {
    // Cell centres (of the clipped extent, for a partial edge row) must lie
    // inside the footprint; the north half of that test is row-invariant,
    // so it runs once per row.
    const double ext_n = cell_extent_north(in);
    const double centre_north =
        area_.north_min + static_cast<double>(in) * cell_m_ + 0.5 * ext_n;
    if (std::abs(centre_north - footprint.center_north_m) >
        footprint.half_height_m) {
      continue;
    }
    const std::size_t row = in * cells_east_;
    for (std::size_t ie = ie_lo; ie < ie_hi && ie < cells_east_; ++ie) {
      const double ext_e = cell_extent_east(ie);
      const double centre_east =
          area_.east_min + static_cast<double>(ie) * cell_m_ + 0.5 * ext_e;
      if (std::abs(centre_east - footprint.center_east_m) >
          footprint.half_width_m) {
        continue;
      }
      const std::size_t idx = row + ie;
      if (!covered_[idx]) {
        covered_[idx] = 1;
        ++covered_count_;
        covered_area_m2_ += ext_e * ext_n;
      }
    }
  }
}

bool CoverageTracker::covered_at(const geo::EnuPoint& p) const {
  if (!area_.contains(p)) return false;
  const auto ie = std::min(
      cells_east_ - 1,
      static_cast<std::size_t>((p.east_m - area_.east_min) / cell_m_));
  const auto in = std::min(
      cells_north_ - 1,
      static_cast<std::size_t>((p.north_m - area_.north_min) / cell_m_));
  return covered_[index(ie, in)] != 0;
}

void CoverageTracker::reset() {
  std::fill(covered_.begin(), covered_.end(), std::uint8_t{0});
  covered_count_ = 0;
  covered_area_m2_ = 0.0;
}

}  // namespace sesame::sar
