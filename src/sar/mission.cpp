#include "sesame/sar/mission.hpp"

#include <algorithm>
#include <stdexcept>

namespace sesame::sar {

double DetectionStats::precision() const {
  const std::size_t total = true_detections + false_alarms;
  if (total == 0) return 1.0;
  return static_cast<double>(true_detections) / static_cast<double>(total);
}

double DetectionStats::recall() const {
  if (persons_total == 0) return 1.0;
  return static_cast<double>(persons_found) / static_cast<double>(persons_total);
}

SarMission::SarMission(sim::World& world, std::vector<std::string> uav_names,
                       std::vector<SweepPlan> plans,
                       perception::DetectorConfig detector)
    : world_(&world), active_uavs_(std::move(uav_names)), detector_(detector) {
  if (active_uavs_.size() != plans.size() || active_uavs_.empty()) {
    throw std::invalid_argument("SarMission: UAV/plan count mismatch");
  }
  for (std::size_t i = 0; i < active_uavs_.size(); ++i) {
    sim::Uav& uav = world_->uav_by_name(active_uavs_[i]);
    uav.clear_waypoints();
    for (const auto& wp : plans[i].waypoints) uav.add_waypoint(wp);
  }
  stats_.persons_total = world_->persons().size();
  total_assigned_ = total_remaining();
}

double SarMission::progress() const {
  if (total_assigned_ == 0) return 1.0;
  const std::size_t remaining = total_remaining();
  return 1.0 - static_cast<double>(remaining) /
                   static_cast<double>(total_assigned_);
}

double SarMission::eta_s(double fleet_speed_mps) const {
  if (fleet_speed_mps <= 0.0) {
    throw std::invalid_argument("SarMission::eta_s: non-positive speed");
  }
  double longest_m = 0.0;
  double total_m = 0.0;
  std::size_t active_airborne = 0;
  for (const auto& name : active_uavs_) {
    const double d = world_->uav_by_name(name).remaining_path_length_m();
    total_m += d;
    longest_m = std::max(longest_m, d);
    ++active_airborne;
  }
  if (total_m == 0.0 || active_airborne == 0) return 0.0;
  // The fleet finishes when its most-loaded member does; with balanced
  // strips that is close to total / fleet, so take the max of both bounds.
  return std::max(longest_m,
                  total_m / static_cast<double>(active_airborne)) /
         fleet_speed_mps;
}

void SarMission::enable_coverage_tracking(const Area& area, double cell_m) {
  tracker_.emplace(area, cell_m);
}

void SarMission::tick() {
  ++stats_.frames;
  last_tick_detectors_.clear();
  auto& persons = world_->persons();
  if (person_grid_.indexed_points() != persons.size()) {
    person_grid_.rebuild(persons.size(),
                         [&persons](std::size_t i) -> const geo::EnuPoint& {
                           return persons[i].position;
                         });
  }
  for (const auto& name : active_uavs_) {
    const sim::Uav& uav = world_->uav_by_name(name);
    if (!uav.airborne()) continue;
    if (!uav.vision_sensor_healthy()) continue;  // camera blind: no frames
    const auto fp = detector_.camera().footprint(uav.true_position());
    if (tracker_) tracker_->mark(fp);
    candidate_scratch_.clear();
    person_grid_.query_rect(fp.center_east_m - fp.half_width_m,
                            fp.center_east_m + fp.half_width_m,
                            fp.center_north_m - fp.half_height_m,
                            fp.center_north_m + fp.half_height_m,
                            candidate_scratch_);
    const auto detections = detector_.detect(uav.true_position(), persons,
                                             candidate_scratch_, world_->rng());
    if (!detections.empty()) last_tick_detectors_.push_back(name);
    person_tracker_.update(detections);
    for (const auto& d : detections) {
      if (d.person_index.has_value()) {
        ++stats_.true_detections;
        auto& person = persons[*d.person_index];
        if (!person.detected) {
          person.detected = true;
          ++stats_.persons_found;
        }
      } else {
        ++stats_.false_alarms;
      }
    }
  }
}

std::size_t SarMission::remaining_waypoints(const std::string& uav) const {
  return world_->uav_by_name(uav).waypoints_remaining();
}

std::size_t SarMission::total_remaining() const {
  std::size_t total = 0;
  for (const auto& name : active_uavs_) total += remaining_waypoints(name);
  return total;
}

bool SarMission::complete() const { return total_remaining() == 0; }

std::size_t SarMission::redistribute(const std::string& failed_uav,
                                     const std::string& takeover_uav) {
  const auto it =
      std::find(active_uavs_.begin(), active_uavs_.end(), failed_uav);
  if (it == active_uavs_.end()) {
    throw std::invalid_argument("redistribute: unknown mission UAV " + failed_uav);
  }
  if (failed_uav == takeover_uav) {
    throw std::invalid_argument("redistribute: takeover UAV equals failed UAV");
  }
  if (std::find(active_uavs_.begin(), active_uavs_.end(), takeover_uav) ==
      active_uavs_.end()) {
    throw std::invalid_argument("redistribute: unknown takeover UAV " +
                                takeover_uav);
  }

  sim::Uav& failed = world_->uav_by_name(failed_uav);
  sim::Uav& takeover = world_->uav_by_name(takeover_uav);

  const std::size_t moved = failed.transfer_waypoints_to(takeover);
  active_uavs_.erase(it);
  return moved;
}

std::size_t SarMission::retire(const std::string& uav) {
  const auto it = std::find(active_uavs_.begin(), active_uavs_.end(), uav);
  if (it == active_uavs_.end()) {
    throw std::invalid_argument("retire: unknown mission UAV " + uav);
  }
  sim::Uav& vehicle = world_->uav_by_name(uav);
  const std::size_t stranded = vehicle.waypoints_remaining();
  vehicle.clear_waypoints();
  active_uavs_.erase(it);
  return stranded;
}

}  // namespace sesame::sar
