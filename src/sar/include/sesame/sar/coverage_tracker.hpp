// Ground-coverage accounting.
//
// The platform's stated mission goal is "maximizing area coverage"; this
// tracker rasterizes the mission area into cells and marks every cell seen
// by a camera footprint, yielding the covered-area fraction over time —
// the metric that validates lane-spacing choices and quantifies what a
// dropped-out UAV costs before task redistribution kicks in.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sesame/sar/coverage.hpp"
#include "sesame/sim/camera.hpp"

namespace sesame::sar {

class CoverageTracker {
 public:
  /// Rasterizes `area` into square cells of `cell_m` metres. Throws
  /// std::invalid_argument on a degenerate area or non-positive cell size.
  CoverageTracker(const Area& area, double cell_m = 5.0);

  std::size_t cells_east() const noexcept { return cells_east_; }
  std::size_t cells_north() const noexcept { return cells_north_; }
  std::size_t cells_total() const noexcept { return covered_.size(); }
  std::size_t cells_covered() const noexcept { return covered_count_; }

  /// Fraction of the area (by true ground area, not cell count) seen at
  /// least once. Edge cells of a region whose extent is not an exact
  /// multiple of the cell size carry only their real (clipped) area, so
  /// partial rows/columns no longer over-report coverage.
  double fraction_covered() const;

  /// Covered ground area in square metres (edge cells clipped to the area).
  double covered_area_m2() const noexcept { return covered_area_m2_; }

  /// Fraction of `region` (clipped to the tracker's area) that is covered,
  /// with boundary cells weighted by their intersection with the region.
  /// Overlapping sweep regions share the underlying cells, so querying two
  /// overlapping strips never double-counts the shared ground: each cell's
  /// area is credited once globally, and per-region queries of a disjoint
  /// partition sum exactly to the global covered area. Returns 0 when the
  /// region does not intersect the tracker's area.
  double fraction_covered(const Area& region) const;

  /// Marks every cell whose centre (of its clipped extent, for edge cells)
  /// lies inside the footprint.
  void mark(const sim::Footprint& footprint);

  /// Whether the cell containing the point has been covered. Points
  /// outside the area return false.
  bool covered_at(const geo::EnuPoint& p) const;

  void reset();

 private:
  Area area_;
  double cell_m_;
  std::size_t cells_east_;
  std::size_t cells_north_;
  // One byte per cell: the mark() inner loop is the baseline arm's hottest
  // path, and byte stores beat vector<bool>'s bit twiddling there.
  std::vector<std::uint8_t> covered_;
  std::size_t covered_count_ = 0;
  double covered_area_m2_ = 0.0;
  // True when the area divides evenly into cells; fraction_covered() then
  // reduces to the exact covered-count ratio (no floating-point area sums).
  bool exact_grid_ = true;

  std::size_t index(std::size_t ie, std::size_t in) const {
    return in * cells_east_ + ie;
  }
  // Clipped extents of a cell (only the last row/column can be partial).
  double cell_extent_east(std::size_t ie) const {
    return std::min(cell_m_, area_.width() - static_cast<double>(ie) * cell_m_);
  }
  double cell_extent_north(std::size_t in) const {
    return std::min(cell_m_,
                    area_.height() - static_cast<double>(in) * cell_m_);
  }
};

}  // namespace sesame::sar
