// Ground-coverage accounting.
//
// The platform's stated mission goal is "maximizing area coverage"; this
// tracker rasterizes the mission area into cells and marks every cell seen
// by a camera footprint, yielding the covered-area fraction over time —
// the metric that validates lane-spacing choices and quantifies what a
// dropped-out UAV costs before task redistribution kicks in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sesame/sar/coverage.hpp"
#include "sesame/sim/camera.hpp"

namespace sesame::sar {

class CoverageTracker {
 public:
  /// Rasterizes `area` into square cells of `cell_m` metres. Throws
  /// std::invalid_argument on a degenerate area or non-positive cell size.
  CoverageTracker(const Area& area, double cell_m = 5.0);

  std::size_t cells_east() const noexcept { return cells_east_; }
  std::size_t cells_north() const noexcept { return cells_north_; }
  std::size_t cells_total() const noexcept { return covered_.size(); }
  std::size_t cells_covered() const noexcept { return covered_count_; }

  /// Fraction of the area's cells seen at least once.
  double fraction_covered() const;

  /// Marks every cell whose centre lies inside the footprint.
  void mark(const sim::Footprint& footprint);

  /// Whether the cell containing the point has been covered. Points
  /// outside the area return false.
  bool covered_at(const geo::EnuPoint& p) const;

  void reset();

 private:
  Area area_;
  double cell_m_;
  std::size_t cells_east_;
  std::size_t cells_north_;
  // One byte per cell: the mark() inner loop is the baseline arm's hottest
  // path, and byte stores beat vector<bool>'s bit twiddling there.
  std::vector<std::uint8_t> covered_;
  std::size_t covered_count_ = 0;

  std::size_t index(std::size_t ie, std::size_t in) const {
    return in * cells_east_ + ie;
  }
};

}  // namespace sesame::sar
