// SAR mission orchestration: assigns sweep plans to UAVs, runs the person
// detector every tick, keeps detection/accuracy bookkeeping, and supports
// the task-redistribution behaviour of the mission-level ConSert ("&
// redistribute task among remaining capable UAVs", paper Fig. 1).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sesame/perception/detector.hpp"
#include "sesame/perception/tracker.hpp"
#include "sesame/sar/coverage.hpp"
#include "sesame/sar/coverage_tracker.hpp"
#include "sesame/sim/spatial_grid.hpp"
#include "sesame/sim/world.hpp"

namespace sesame::sar {

/// Aggregate detection quality statistics of a mission.
struct DetectionStats {
  std::size_t frames = 0;
  std::size_t true_detections = 0;   ///< detections matching a real person
  std::size_t false_alarms = 0;
  std::size_t persons_total = 0;
  std::size_t persons_found = 0;

  /// Precision of raw detections (1.0 when no detections yet).
  double precision() const;
  /// Fraction of persons found so far.
  double recall() const;
};

class SarMission {
 public:
  /// Assigns one sweep plan per UAV (sizes must match; UAVs are world
  /// names). Waypoints are pushed to the vehicles; takeoff must be
  /// commanded by the caller (the platform layer owns mode decisions).
  SarMission(sim::World& world, std::vector<std::string> uav_names,
             std::vector<SweepPlan> plans, perception::DetectorConfig detector = {});

  /// Runs one detection tick: every airborne mission UAV images the ground
  /// and detections are matched against the world's persons (marking them
  /// detected). Call once per world step.
  void tick();

  const DetectionStats& stats() const noexcept { return stats_; }

  /// Remaining waypoints of one UAV.
  std::size_t remaining_waypoints(const std::string& uav) const;

  /// Total remaining waypoints across the fleet.
  std::size_t total_remaining() const;

  /// True when every UAV consumed its plan.
  bool complete() const;

  /// Fraction of the originally assigned waypoints already consumed,
  /// in [0, 1] (redistributed waypoints count against the fleet total).
  double progress() const;

  /// Estimated seconds to consume the remaining waypoints, from the
  /// remaining leg lengths at `fleet_speed_mps` with the work split across
  /// the active vehicles. 0 when complete; conservative (ignores turns).
  double eta_s(double fleet_speed_mps) const;

  /// Removes `failed_uav` from the mission and appends its unfinished
  /// waypoints to `takeover_uav`'s queue (task redistribution). Returns
  /// the number of reassigned waypoints.
  std::size_t redistribute(const std::string& failed_uav,
                           const std::string& takeover_uav);

  /// Removes a vehicle from the mission *without* reassigning its tasks
  /// (no surviving vehicle could absorb them); its remaining waypoints are
  /// abandoned. Returns the number of waypoints stranded. Throws
  /// std::invalid_argument on a vehicle that is not mission-active.
  std::size_t retire(const std::string& uav);

  /// UAVs currently carrying mission tasks.
  const std::vector<std::string>& active_uavs() const noexcept {
    return active_uavs_;
  }

  /// UAVs whose camera produced at least one detection on the most recent
  /// tick() (the safety-invariant checker cross-references these against
  /// sensor health: a detection must never come from a blind sensor).
  const std::vector<std::string>& last_tick_detectors() const noexcept {
    return last_tick_detectors_;
  }

  const perception::PersonDetector& detector() const noexcept {
    return detector_;
  }

  /// Enables ground-coverage accounting over `area`; every subsequent tick
  /// marks the cells inside each airborne UAV's camera footprint.
  void enable_coverage_tracking(const Area& area, double cell_m = 5.0);

  /// The tracker, or nullptr when tracking was not enabled.
  const CoverageTracker* coverage() const noexcept {
    return tracker_ ? &*tracker_ : nullptr;
  }

  /// The multi-frame person tracker fed by every tick's detections: its
  /// confirmed tracks are the persons the GCS reports (raw detections are
  /// noisy and include false alarms).
  const perception::PersonTracker& person_tracker() const noexcept {
    return person_tracker_;
  }

 private:
  sim::World* world_;
  std::vector<std::string> active_uavs_;
  std::vector<std::string> last_tick_detectors_;
  perception::PersonDetector detector_;
  perception::PersonTracker person_tracker_;
  DetectionStats stats_;
  std::optional<CoverageTracker> tracker_;
  std::size_t total_assigned_ = 0;

  // Spatial index over the world's (static) person positions: each tick
  // queries the camera footprint instead of scanning every person per
  // vehicle. Rebuilt only when the person count changes.
  sim::SpatialGrid person_grid_{50.0};
  std::vector<std::uint32_t> candidate_scratch_;
};

}  // namespace sesame::sar
