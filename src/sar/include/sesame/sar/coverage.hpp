// SAR coverage planning: rectangular-area decomposition among N UAVs and
// boustrophedon (lawnmower) sweep paths — the multi-UAV scanning pattern
// of the paper's Fig. 4 (three UAVs sweeping adjacent strips).
#pragma once

#include <cstddef>
#include <vector>

#include "sesame/geo/geodesy.hpp"

namespace sesame::sar {

/// Axis-aligned mission area in world ENU metres.
struct Area {
  double east_min = 0.0;
  double east_max = 0.0;
  double north_min = 0.0;
  double north_max = 0.0;

  double width() const { return east_max - east_min; }
  double height() const { return north_max - north_min; }
  bool contains(const geo::EnuPoint& p) const {
    return p.east_m >= east_min && p.east_m <= east_max &&
           p.north_m >= north_min && p.north_m <= north_max;
  }
};

struct CoverageConfig {
  double altitude_m = 30.0;
  /// Distance between adjacent sweep lines. Choose <= camera footprint
  /// width at the mission altitude for gap-free coverage.
  double lane_spacing_m = 25.0;
  /// Waypoint spacing along a sweep line (granularity of progress
  /// bookkeeping; the vehicle flies straight between them anyway).
  double along_track_spacing_m = 50.0;
};

/// One UAV's sweep assignment.
struct SweepPlan {
  Area strip;                          ///< sub-area assigned to the UAV
  std::vector<geo::EnuPoint> waypoints;  ///< boustrophedon path at altitude
};

/// Splits `area` into `n_uavs` equal-width north-south strips and plans a
/// boustrophedon sweep for each. Throws std::invalid_argument on a
/// degenerate area, zero UAV count, or non-positive spacings.
std::vector<SweepPlan> plan_coverage(const Area& area, std::size_t n_uavs,
                                     const CoverageConfig& config);

/// Total path length of a plan (metres).
double plan_length_m(const SweepPlan& plan);

/// Fraction of the area covered by camera footprints of width
/// `footprint_width_m` sweeping along the plan lanes (1.0 when lane
/// spacing <= footprint width).
double coverage_fraction(const CoverageConfig& config, double footprint_width_m);

}  // namespace sesame::sar
