#include "sesame/mathx/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sesame::mathx {

namespace {
void require_nonempty(const std::vector<double>& xs, const char* who) {
  if (xs.empty()) {
    throw std::invalid_argument(std::string(who) + ": empty input");
  }
}
}  // namespace

double mean(const std::vector<double>& xs) {
  require_nonempty(xs, "mean");
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) throw std::invalid_argument("variance: need >= 2 samples");
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double median(std::vector<double> xs) {
  require_nonempty(xs, "median");
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  if (n % 2 == 1) return xs[n / 2];
  return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double quantile(std::vector<double> xs, double q) {
  require_nonempty(xs, "quantile");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q out of range");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double min_value(const std::vector<double>& xs) {
  require_nonempty(xs, "min_value");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(const std::vector<double>& xs) {
  require_nonempty(xs, "max_value");
  return *std::max_element(xs.begin(), xs.end());
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("pearson: need equal sizes >= 2");
  }
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) {
    throw std::invalid_argument("pearson: zero-variance input");
  }
  return sxy / std::sqrt(sxx * syy);
}

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Ecdf::Ecdf(std::vector<double> sample) : sorted_(std::move(sample)) {
  if (sorted_.empty()) throw std::invalid_argument("Ecdf: empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::inverse(double q) const {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("Ecdf::inverse: q range");
  if (q <= 0.0) return sorted_.front();
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size()))) - 1;
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_quantile(double p) {
  if (p <= 0.0 || p >= 1.0) {
    throw std::invalid_argument("normal_quantile: p must be in (0,1)");
  }
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: invalid range or bin count");
  }
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_center(std::size_t i) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * w;
}

double Histogram::density(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

}  // namespace sesame::mathx
