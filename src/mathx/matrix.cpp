#include "sesame/mathx/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace sesame::mathx {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const std::vector<double>& diag) {
  Matrix m(diag.size(), diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

Matrix& Matrix::operator+=(const Matrix& o) {
  if (rows_ != o.rows_ || cols_ != o.cols_) {
    throw std::invalid_argument("Matrix+=: dimension mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  if (rows_ != o.rows_ || cols_ != o.cols_) {
    throw std::invalid_argument("Matrix-=: dimension mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("Matrix*: dimension mismatch");
  }
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out(i, j) += aik * b(k, j);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::apply(const std::vector<double>& v) const {
  if (v.size() != cols_) {
    throw std::invalid_argument("Matrix::apply: dimension mismatch");
  }
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += (*this)(i, j) * v[j];
    out[i] = acc;
  }
  return out;
}

std::vector<double> Matrix::apply_transposed(const std::vector<double>& v) const {
  if (v.size() != rows_) {
    throw std::invalid_argument("Matrix::apply_transposed: dimension mismatch");
  }
  std::vector<double> out(cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double vi = v[i];
    if (vi == 0.0) continue;
    for (std::size_t j = 0; j < cols_; ++j) out[j] += vi * (*this)(i, j);
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

double Matrix::norm_inf() const {
  double best = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) row += std::abs((*this)(i, j));
    best = std::max(best, row);
  }
  return best;
}

double Matrix::norm_max() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::abs(x));
  return best;
}

bool Matrix::approx_equal(const Matrix& o, double tol) const {
  if (rows_ != o.rows_ || cols_ != o.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - o.data_[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  for (std::size_t i = 0; i < rows_; ++i) {
    os << '[';
    for (std::size_t j = 0; j < cols_; ++j) {
      if (j) os << ", ";
      os << (*this)(i, j);
    }
    os << "]\n";
  }
  return os.str();
}

std::vector<double> solve_linear(Matrix a, std::vector<double> b) {
  if (!a.is_square() || a.rows() != b.size()) {
    throw std::invalid_argument("solve_linear: dimension mismatch");
  }
  const std::size_t n = a.rows();
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
    }
    if (std::abs(a(pivot, col)) < 1e-14) {
      throw std::runtime_error("solve_linear: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(col, j), a(pivot, j));
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) * inv;
      if (f == 0.0) continue;
      for (std::size_t j = col; j < n; ++j) a(r, j) -= f * a(col, j);
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= a(i, j) * x[j];
    x[i] = acc / a(i, i);
  }
  return x;
}

namespace {

// Solves A * X = B column by column (shared pivoting would be faster but the
// matrices here are tiny).
Matrix solve_matrix(const Matrix& a, const Matrix& b) {
  Matrix x(b.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    std::vector<double> col(b.rows());
    for (std::size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
    std::vector<double> sol = solve_linear(a, std::move(col));
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = sol[i];
  }
  return x;
}

}  // namespace

Matrix expm(const Matrix& a) {
  if (!a.is_square()) throw std::invalid_argument("expm: non-square matrix");
  const std::size_t n = a.rows();
  if (n == 0) return a;

  // Scale so that ||A/2^s||_inf <= 0.5, apply the (6,6) Pade approximant,
  // then square s times.
  const double norm = a.norm_inf();
  int s = 0;
  if (norm > 0.5) {
    s = static_cast<int>(std::ceil(std::log2(norm / 0.5)));
  }
  Matrix as = a * std::pow(2.0, -s);

  // Pade(6,6): N = sum c_k A^k, D = sum (-1)^k c_k A^k.
  static constexpr double kCoef[7] = {
      1.0, 1.0 / 2, 5.0 / 44, 1.0 / 66, 1.0 / 792, 1.0 / 15840, 1.0 / 665280};
  Matrix power = Matrix::identity(n);
  Matrix num = Matrix::identity(n);  // will be overwritten term by term
  Matrix den = Matrix::identity(n);
  num *= kCoef[0];
  den *= kCoef[0];
  for (int k = 1; k <= 6; ++k) {
    power = power * as;
    Matrix term = power * kCoef[k];
    num += term;
    if (k % 2 == 0) {
      den += term;
    } else {
      den -= term;
    }
  }
  Matrix result = solve_matrix(den, num);
  for (int i = 0; i < s; ++i) result = result * result;
  return result;
}

}  // namespace sesame::mathx
