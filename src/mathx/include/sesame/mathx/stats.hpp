// Descriptive statistics and empirical-CDF machinery shared by SafeML
// (statistical distance monitoring), SINADRA, and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace sesame::mathx {

/// Arithmetic mean. Throws std::invalid_argument on empty input.
double mean(const std::vector<double>& xs);

/// Unbiased sample variance (n-1 denominator). Requires size >= 2.
double variance(const std::vector<double>& xs);

/// Sample standard deviation.
double stddev(const std::vector<double>& xs);

/// Median (average of middle pair for even sizes). Input copied & sorted.
double median(std::vector<double> xs);

/// Linear-interpolation quantile, q in [0,1]. Input copied & sorted.
double quantile(std::vector<double> xs, double q);

/// min/max over a non-empty vector.
double min_value(const std::vector<double>& xs);
double max_value(const std::vector<double>& xs);

/// Pearson correlation of equally-sized samples (size >= 2).
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Running (Welford) accumulator for streaming mean/variance, used by the
/// runtime monitors that cannot buffer full histories.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// Unbiased variance; 0 until two samples have been seen.
  double variance() const noexcept;
  double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Empirical cumulative distribution function over a sample.
/// Evaluation is O(log n) per query.
class Ecdf {
 public:
  /// Builds from a sample (copied and sorted). Throws on empty input.
  explicit Ecdf(std::vector<double> sample);

  /// F(x) = P[X <= x] under the empirical distribution.
  double operator()(double x) const;

  /// Sorted sample values.
  const std::vector<double>& sorted() const noexcept { return sorted_; }
  std::size_t size() const noexcept { return sorted_.size(); }

  /// Inverse CDF (empirical quantile) for q in [0, 1].
  double inverse(double q) const;

 private:
  std::vector<double> sorted_;
};

/// Standard normal CDF.
double normal_cdf(double z);

/// Standard normal quantile (Acklam's rational approximation, |err|<1e-9).
double normal_quantile(double p);

/// Simple 1-D histogram with uniform bins on [lo, hi]; out-of-range samples
/// clamp to the edge bins. Used by workload generators and report code.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  double bin_center(std::size_t i) const;
  /// Fraction of mass in bin i; 0 when empty.
  double density(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace sesame::mathx
