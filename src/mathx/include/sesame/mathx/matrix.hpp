// Dense dynamic-size matrix for the small linear-algebra needs of the
// SESAME stack (Markov generators, Bayesian CPT manipulation, MLP layers).
//
// The matrices involved are tiny (Markov propulsion models have < 100
// states), so the implementation favours clarity and numerical robustness
// over blocking/vectorization tricks.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

namespace sesame::mathx {

/// Row-major dense matrix of doubles.
///
/// Invariants: rows() * cols() == data().size(); both dimensions may be 0
/// only for a default-constructed empty matrix.
class Matrix {
 public:
  Matrix() = default;

  /// Creates an r x c matrix with every entry set to `fill`.
  Matrix(std::size_t r, std::size_t c, double fill = 0.0)
      : rows_(r), cols_(c), data_(r * c, fill) {}

  /// Creates a matrix from nested initializer lists; all rows must have the
  /// same length. Throws std::invalid_argument on ragged input.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of order n.
  static Matrix identity(std::size_t n);

  /// Square matrix with `diag` on the diagonal.
  static Matrix diagonal(const std::vector<double>& diag);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }
  bool is_square() const noexcept { return rows_ == cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access; throws std::out_of_range.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  const std::vector<double>& data() const noexcept { return data_; }
  std::vector<double>& data() noexcept { return data_; }

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  /// Matrix product; dimensions must agree (throws std::invalid_argument).
  friend Matrix operator*(const Matrix& a, const Matrix& b);

  /// Matrix-vector product (length must equal cols()).
  std::vector<double> apply(const std::vector<double>& v) const;

  /// Left multiplication of a row vector: returns v^T * this.
  std::vector<double> apply_transposed(const std::vector<double>& v) const;

  Matrix transposed() const;

  /// Maximum absolute row sum (the induced infinity norm).
  double norm_inf() const;

  /// Maximum absolute entry.
  double norm_max() const;

  /// True when every |a_ij - b_ij| <= tol.
  bool approx_equal(const Matrix& o, double tol = 1e-12) const;

  /// Human-readable rendering, one row per line (debugging / logging).
  std::string to_string(int precision = 6) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A*x = b with partial-pivot Gaussian elimination.
/// Throws std::invalid_argument on dimension mismatch and
/// std::runtime_error when A is (numerically) singular.
std::vector<double> solve_linear(Matrix a, std::vector<double> b);

/// Matrix exponential e^A via scaling-and-squaring with a 6th-order Pade
/// approximant. Suitable for the small generator matrices used by the
/// Markov reliability models.
Matrix expm(const Matrix& a);

}  // namespace sesame::mathx
