// Deterministic random-number generation for simulation and bootstrap
// resampling. A single seeded engine type is used everywhere so that every
// experiment in the repository is exactly reproducible.
#pragma once

#include <cstdint>
#include <vector>

namespace sesame::mathx {

/// xoshiro256++ engine. Fast, high-quality, and — unlike std::mt19937 —
/// guaranteed to produce identical streams on every platform, which keeps
/// the benchmark outputs reproducible.
class Rng {
 public:
  /// Seeds via splitmix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x5E5A4E5EED5ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal deviate (Box-Muller with caching).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential deviate with the given rate (lambda > 0).
  double exponential(double rate);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Samples an index according to non-negative weights (need not sum to 1).
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace sesame::mathx
