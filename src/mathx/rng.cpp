#include "sesame/mathx/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sesame::mathx {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_index: n == 0");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % n);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate <= 0");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("Rng::categorical: zero total weight");
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: land on last positive weight
}

}  // namespace sesame::mathx
