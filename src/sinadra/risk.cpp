#include "sesame/sinadra/risk.hpp"

#include <stdexcept>

namespace sesame::sinadra {

namespace {

/// Packs the five evidence enums (each <= 4 values) into 2 bits apiece.
std::uint16_t pack_evidence_key(const SituationEvidence& e) {
  return static_cast<std::uint16_t>(
      static_cast<unsigned>(e.altitude) |
      (static_cast<unsigned>(e.visibility) << 2) |
      (static_cast<unsigned>(e.density) << 4) |
      (static_cast<unsigned>(e.safeml) << 6) |
      (static_cast<unsigned>(e.deepknowledge) << 8));
}

}  // namespace

std::string adaptation_name(Adaptation a) {
  switch (a) {
    case Adaptation::kProceed: return "Proceed";
    case Adaptation::kRescan: return "Rescan";
    case Adaptation::kDescendAndRescan: return "DescendAndRescan";
  }
  return "unknown";
}

SarRiskModel::SarRiskModel(RiskConfig config) : config_(config) {
  if (!(config_.rescan_threshold < config_.descend_threshold) ||
      config_.rescan_threshold <= 0.0 || config_.descend_threshold >= 1.0) {
    throw std::invalid_argument("SarRiskModel: bad thresholds");
  }

  altitude_ = net_.add_variable("altitude", {"low", "medium", "high"});
  visibility_ = net_.add_variable("visibility", {"good", "poor"});
  density_ = net_.add_variable("density", {"sparse", "dense"});
  detection_quality_ =
      net_.add_variable("detection_quality", {"good", "degraded", "poor"});
  safeml_ = net_.add_variable("safeml", {"high", "medium", "low"});
  deepknowledge_ = net_.add_variable("deepknowledge", {"high", "medium", "low"});
  missed_risk_ = net_.add_variable("missed_risk", {"low", "medium", "high"});

  // Situation priors (mission profiles skew toward the nominal case).
  net_.set_prior(altitude_, {0.40, 0.40, 0.20});
  net_.set_prior(visibility_, {0.80, 0.20});
  net_.set_prior(density_, {0.70, 0.30});

  // Detection quality is driven by altitude and visibility: low altitude in
  // good visibility is near-ideal; high altitude in poor visibility is poor.
  net_.set_cpt(detection_quality_, {altitude_, visibility_},
               {
                   // good, degraded, poor
                   0.92, 0.07, 0.01,  // low, good
                   0.55, 0.35, 0.10,  // low, poor
                   0.70, 0.25, 0.05,  // medium, good
                   0.30, 0.45, 0.25,  // medium, poor
                   0.25, 0.45, 0.30,  // high, good
                   0.05, 0.35, 0.60,  // high, poor
               });

  // SafeML and DeepKnowledge are noisy sensors of detection quality. The
  // two differ slightly: SafeML (input-distribution distance) is sharper on
  // "poor", DeepKnowledge (neuron coverage) is sharper on "degraded".
  net_.set_cpt(safeml_, {detection_quality_},
               {
                   0.85, 0.12, 0.03,  // quality good  -> confidence high...
                   0.25, 0.55, 0.20,  // degraded
                   0.03, 0.17, 0.80,  // poor
               });
  net_.set_cpt(deepknowledge_, {detection_quality_},
               {
                   0.82, 0.15, 0.03,
                   0.15, 0.65, 0.20,
                   0.05, 0.25, 0.70,
               });

  // Missed-person risk: poor detection in dense areas is the worst case.
  net_.set_cpt(missed_risk_, {detection_quality_, density_},
               {
                   // low, medium, high
                   0.93, 0.06, 0.01,  // good, sparse
                   0.85, 0.12, 0.03,  // good, dense
                   0.55, 0.35, 0.10,  // degraded, sparse
                   0.35, 0.45, 0.20,  // degraded, dense
                   0.15, 0.40, 0.45,  // poor, sparse
                   0.05, 0.25, 0.70,  // poor, dense
               });
}

bayes::Network::Evidence SarRiskModel::to_evidence(
    const SituationEvidence& e) const {
  bayes::Network::Evidence ev;
  switch (e.altitude) {
    case AltitudeBand::kLow: ev[altitude_] = 0; break;
    case AltitudeBand::kMedium: ev[altitude_] = 1; break;
    case AltitudeBand::kHigh: ev[altitude_] = 2; break;
    case AltitudeBand::kUnknown: break;
  }
  switch (e.visibility) {
    case Visibility::kGood: ev[visibility_] = 0; break;
    case Visibility::kPoor: ev[visibility_] = 1; break;
    case Visibility::kUnknown: break;
  }
  switch (e.density) {
    case PersonDensity::kSparse: ev[density_] = 0; break;
    case PersonDensity::kDense: ev[density_] = 1; break;
    case PersonDensity::kUnknown: break;
  }
  const auto map_conf = [](PerceptionConfidence c,
                           bayes::Network::Evidence& out, bayes::VarId var) {
    switch (c) {
      case PerceptionConfidence::kHigh: out[var] = 0; break;
      case PerceptionConfidence::kMedium: out[var] = 1; break;
      case PerceptionConfidence::kLow: out[var] = 2; break;
      case PerceptionConfidence::kUnknown: break;
    }
  };
  map_conf(e.safeml, ev, safeml_);
  map_conf(e.deepknowledge, ev, deepknowledge_);
  return ev;
}

RiskExplanation SarRiskModel::explain(const SituationEvidence& evidence) const {
  const auto mpe = net_.most_probable_explanation(to_evidence(evidence));
  RiskExplanation out;
  for (const auto& [var, state] : mpe) {
    out.situation[net_.variable(var).name] = net_.variable(var).states[state];
  }
  out.detection_quality = out.situation.at("detection_quality");
  return out;
}

RiskAssessment SarRiskModel::assess(const SituationEvidence& evidence) const {
  const std::uint16_t key = pack_evidence_key(evidence);
  if (const auto it = assess_memo_.find(key); it != assess_memo_.end()) {
    return it->second;
  }
  const auto posterior = net_.query(missed_risk_, to_evidence(evidence));
  RiskAssessment r;
  r.p_missed_person = posterior[2];
  // Expected criticality with {low, medium, high} -> {0, 0.5, 1}.
  r.criticality = 0.5 * posterior[1] + posterior[2];
  if (r.criticality >= config_.descend_threshold) {
    r.recommendation = Adaptation::kDescendAndRescan;
  } else if (r.criticality >= config_.rescan_threshold) {
    r.recommendation = Adaptation::kRescan;
  } else {
    r.recommendation = Adaptation::kProceed;
  }
  assess_memo_.emplace(key, r);
  return r;
}

}  // namespace sesame::sinadra
