#include "sesame/sinadra/filter.hpp"

#include <stdexcept>

namespace sesame::sinadra {

RiskFilter::RiskFilter(FilterConfig config) : config_(config) {
  if (config_.alpha <= 0.0 || config_.alpha > 1.0) {
    throw std::invalid_argument("RiskFilter: alpha out of (0,1]");
  }
  if (config_.hysteresis < 0.0) {
    throw std::invalid_argument("RiskFilter: negative hysteresis");
  }
}

Adaptation RiskFilter::recommend(double criticality) const {
  // Escalation thresholds as in the raw model; de-escalation needs the
  // smoothed value to clear the threshold by the hysteresis margin.
  const double rescan = config_.thresholds.rescan_threshold;
  const double descend = config_.thresholds.descend_threshold;
  switch (current_) {
    case Adaptation::kProceed:
      if (criticality >= descend) return Adaptation::kDescendAndRescan;
      if (criticality >= rescan) return Adaptation::kRescan;
      return Adaptation::kProceed;
    case Adaptation::kRescan:
      if (criticality >= descend) return Adaptation::kDescendAndRescan;
      if (criticality < rescan - config_.hysteresis) {
        return Adaptation::kProceed;
      }
      return Adaptation::kRescan;
    case Adaptation::kDescendAndRescan:
      if (criticality < rescan - config_.hysteresis) {
        return Adaptation::kProceed;
      }
      if (criticality < descend - config_.hysteresis) {
        return Adaptation::kRescan;
      }
      return Adaptation::kDescendAndRescan;
  }
  return Adaptation::kProceed;
}

RiskAssessment RiskFilter::update(const RiskAssessment& raw) {
  if (!primed_) {
    smoothed_ = raw.criticality;
    primed_ = true;
  } else {
    smoothed_ += config_.alpha * (raw.criticality - smoothed_);
  }
  const Adaptation next = recommend(smoothed_);
  if (next != current_) {
    current_ = next;
    ++transitions_;
  }
  RiskAssessment out = raw;
  out.criticality = smoothed_;
  out.recommendation = current_;
  return out;
}

void RiskFilter::reset() {
  smoothed_ = 0.0;
  primed_ = false;
  current_ = Adaptation::kProceed;
  transitions_ = 0;
}

}  // namespace sesame::sinadra
