// Temporal filtering of SINADRA risk assessments.
//
// Raw per-tick criticality is noisy (detector confidence fluctuates frame
// to frame); acting on every sample would make the fleet flap between
// Proceed and Rescan. The filter applies exponential smoothing to the
// criticality and hysteresis to the recommended adaptation: escalation is
// immediate once the smoothed value crosses a threshold, de-escalation
// requires the value to drop a margin below it — the standard pattern for
// runtime adaptation debouncing.
#pragma once

#include "sesame/sinadra/risk.hpp"

namespace sesame::sinadra {

struct FilterConfig {
  /// Smoothing factor in (0, 1]: weight of the newest sample.
  double alpha = 0.25;
  /// De-escalation margin: recommendations relax only when the smoothed
  /// criticality falls this far below the escalation threshold.
  double hysteresis = 0.08;
  RiskConfig thresholds;  ///< same thresholds the raw model uses
};

class RiskFilter {
 public:
  explicit RiskFilter(FilterConfig config = {});

  /// Feeds one raw assessment; returns the filtered assessment (smoothed
  /// criticality, debounced recommendation).
  RiskAssessment update(const RiskAssessment& raw);

  double smoothed_criticality() const noexcept { return smoothed_; }
  Adaptation current_recommendation() const noexcept { return current_; }

  /// Number of recommendation changes so far (flap metric).
  std::size_t transitions() const noexcept { return transitions_; }

  void reset();

 private:
  FilterConfig config_;
  double smoothed_ = 0.0;
  bool primed_ = false;
  Adaptation current_ = Adaptation::kProceed;
  std::size_t transitions_ = 0;

  Adaptation recommend(double criticality) const;
};

}  // namespace sesame::sinadra
