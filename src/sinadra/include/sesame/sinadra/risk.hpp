// SINADRA: situation-aware dynamic risk assessment (Reich & Trapp, EDCC
// 2020), instantiated for the SAR mission.
//
// A Bayesian network relates the flight situation (altitude band,
// visibility, expected person density) and the perception health signals
// (SafeML confidence, DeepKnowledge uncertainty) to the risk of *missing a
// person* in the scanned area. The resulting criticality drives the
// adaptation the paper describes in Section III-A4: high criticality means
// the area must be re-scanned (or the UAV must descend); low criticality
// lets the mission proceed.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sesame/bayes/network.hpp"

namespace sesame::sinadra {

/// Discretized situation evidence. Every field is optional in spirit:
/// use the *Unknown value to leave it unobserved.
enum class AltitudeBand { kLow, kMedium, kHigh, kUnknown };
enum class Visibility { kGood, kPoor, kUnknown };
enum class PersonDensity { kSparse, kDense, kUnknown };
enum class PerceptionConfidence { kHigh, kMedium, kLow, kUnknown };

struct SituationEvidence {
  AltitudeBand altitude = AltitudeBand::kUnknown;
  Visibility visibility = Visibility::kUnknown;
  PersonDensity density = PersonDensity::kUnknown;
  /// SafeML confidence level (statistical-distance monitor output).
  PerceptionConfidence safeml = PerceptionConfidence::kUnknown;
  /// DeepKnowledge uncertainty mapped onto the same scale.
  PerceptionConfidence deepknowledge = PerceptionConfidence::kUnknown;
};

/// Recommended adaptation (paper Section III-A4).
enum class Adaptation { kProceed, kRescan, kDescendAndRescan };

std::string adaptation_name(Adaptation a);

struct RiskAssessment {
  double p_missed_person = 0.0;  ///< P(missed-person risk = high)
  double criticality = 0.0;      ///< expected criticality in [0, 1]
  Adaptation recommendation = Adaptation::kProceed;
};

/// Human-readable explanation of an assessment: the jointly most probable
/// situation (state name per network variable) given the evidence — what
/// the operator display shows next to a Rescan/Descend demand.
struct RiskExplanation {
  /// variable name -> most probable state name.
  std::map<std::string, std::string> situation;
  /// The detection-quality state in the explanation (the causal driver).
  std::string detection_quality;
};

struct RiskConfig {
  /// Criticality above which an immediate re-scan is demanded.
  double rescan_threshold = 0.45;
  /// Criticality above which the UAV should also descend before rescanning.
  double descend_threshold = 0.70;
};

/// The SAR missed-person risk model.
class SarRiskModel {
 public:
  explicit SarRiskModel(RiskConfig config = {});

  /// Evaluates the risk network under the given evidence. The evidence
  /// space is tiny (five small enums), and the network plus thresholds are
  /// immutable after construction, so results are memoised per distinct
  /// evidence combination — steady-state ticks with an unchanged situation
  /// skip the Bayesian inference entirely.
  RiskAssessment assess(const SituationEvidence& evidence) const;

  /// Most probable full situation consistent with the evidence (MPE over
  /// the network) — the explanation shown alongside the recommendation.
  RiskExplanation explain(const SituationEvidence& evidence) const;

  /// Read access to the underlying network (analysis/tests).
  const bayes::Network& network() const noexcept { return net_; }

 private:
  RiskConfig config_;
  bayes::Network net_;
  bayes::VarId altitude_, visibility_, density_, safeml_, deepknowledge_;
  bayes::VarId detection_quality_, missed_risk_;
  /// Memo of assess() results keyed by the 2-bit-packed evidence enums.
  /// Mutable: a pure cache over the immutable network, confined to the
  /// owning thread like the rest of the model.
  mutable std::map<std::uint16_t, RiskAssessment> assess_memo_;

  bayes::Network::Evidence to_evidence(const SituationEvidence& e) const;
};

}  // namespace sesame::sinadra
