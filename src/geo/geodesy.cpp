#include "sesame/geo/geodesy.hpp"

#include <algorithm>

namespace sesame::geo {

double haversine_m(const GeoPoint& a, const GeoPoint& b) {
  const double phi1 = deg_to_rad(a.lat_deg);
  const double phi2 = deg_to_rad(b.lat_deg);
  const double dphi = deg_to_rad(b.lat_deg - a.lat_deg);
  const double dlam = deg_to_rad(b.lon_deg - a.lon_deg);
  const double sin_dphi = std::sin(dphi / 2.0);
  const double sin_dlam = std::sin(dlam / 2.0);
  const double h =
      sin_dphi * sin_dphi + std::cos(phi1) * std::cos(phi2) * sin_dlam * sin_dlam;
  return 2.0 * kEarthRadiusM * std::asin(std::min(1.0, std::sqrt(h)));
}

double slant_range_m(const GeoPoint& a, const GeoPoint& b) {
  const double ground = haversine_m(a, b);
  const double dz = b.alt_m - a.alt_m;
  return std::sqrt(ground * ground + dz * dz);
}

double bearing_deg(const GeoPoint& a, const GeoPoint& b) {
  const double phi1 = deg_to_rad(a.lat_deg);
  const double phi2 = deg_to_rad(b.lat_deg);
  const double dlam = deg_to_rad(b.lon_deg - a.lon_deg);
  const double y = std::sin(dlam) * std::cos(phi2);
  const double x = std::cos(phi1) * std::sin(phi2) -
                   std::sin(phi1) * std::cos(phi2) * std::cos(dlam);
  double brg = rad_to_deg(std::atan2(y, x));
  if (brg < 0.0) brg += 360.0;
  return brg;
}

GeoPoint destination(const GeoPoint& origin, double bearing, double distance_m) {
  const double delta = distance_m / kEarthRadiusM;
  const double theta = deg_to_rad(bearing);
  const double phi1 = deg_to_rad(origin.lat_deg);
  const double lam1 = deg_to_rad(origin.lon_deg);
  const double sin_phi2 = std::sin(phi1) * std::cos(delta) +
                          std::cos(phi1) * std::sin(delta) * std::cos(theta);
  const double phi2 = std::asin(std::clamp(sin_phi2, -1.0, 1.0));
  const double y = std::sin(theta) * std::sin(delta) * std::cos(phi1);
  const double x = std::cos(delta) - std::sin(phi1) * sin_phi2;
  const double lam2 = lam1 + std::atan2(y, x);
  GeoPoint out;
  out.lat_deg = rad_to_deg(phi2);
  out.lon_deg = rad_to_deg(lam2);
  // Normalize longitude to [-180, 180).
  while (out.lon_deg >= 180.0) out.lon_deg -= 360.0;
  while (out.lon_deg < -180.0) out.lon_deg += 360.0;
  out.alt_m = origin.alt_m;
  return out;
}

LocalFrame::LocalFrame(const GeoPoint& origin)
    : origin_(origin), cos_lat_(std::cos(deg_to_rad(origin.lat_deg))) {}

EnuPoint LocalFrame::to_enu(const GeoPoint& p) const {
  EnuPoint e;
  e.east_m = deg_to_rad(p.lon_deg - origin_.lon_deg) * kEarthRadiusM * cos_lat_;
  e.north_m = deg_to_rad(p.lat_deg - origin_.lat_deg) * kEarthRadiusM;
  e.up_m = p.alt_m - origin_.alt_m;
  return e;
}

GeoPoint LocalFrame::to_geo(const EnuPoint& p) const {
  GeoPoint g;
  g.lat_deg = origin_.lat_deg + rad_to_deg(p.north_m / kEarthRadiusM);
  g.lon_deg =
      origin_.lon_deg + rad_to_deg(p.east_m / (kEarthRadiusM * cos_lat_));
  g.alt_m = origin_.alt_m + p.up_m;
  return g;
}

double enu_distance_m(const EnuPoint& a, const EnuPoint& b) {
  const double de = a.east_m - b.east_m;
  const double dn = a.north_m - b.north_m;
  const double du = a.up_m - b.up_m;
  return std::sqrt(de * de + dn * dn + du * du);
}

double enu_ground_distance_m(const EnuPoint& a, const EnuPoint& b) {
  const double de = a.east_m - b.east_m;
  const double dn = a.north_m - b.north_m;
  return std::sqrt(de * de + dn * dn);
}

}  // namespace sesame::geo
