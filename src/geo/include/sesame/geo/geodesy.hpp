// Geodesy primitives for the multi-UAV world: WGS-84 coordinates, the
// Haversine great-circle distance used by the paper's Collaborative
// Localization (ref [38]), bearings, and conversion to a local
// east-north-up (ENU) tangent frame for mission-area planning.
#pragma once

#include <cmath>

namespace sesame::geo {

/// Mean Earth radius in metres (spherical model used by the Haversine
/// formula; adequate at mission scales of a few kilometres).
inline constexpr double kEarthRadiusM = 6371008.8;

/// Geodetic position: latitude/longitude in degrees, altitude above ground
/// in metres.
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
  double alt_m = 0.0;
};

/// Local east-north-up coordinates (metres) relative to a tangent origin.
struct EnuPoint {
  double east_m = 0.0;
  double north_m = 0.0;
  double up_m = 0.0;
};

inline double deg_to_rad(double d) { return d * M_PI / 180.0; }
inline double rad_to_deg(double r) { return r * 180.0 / M_PI; }

/// Great-circle ground distance (metres) via the Haversine formula.
/// Altitude is ignored (ground-track distance).
double haversine_m(const GeoPoint& a, const GeoPoint& b);

/// 3-D separation: Haversine ground distance combined with the altitude
/// difference (small-area flat-slant approximation).
double slant_range_m(const GeoPoint& a, const GeoPoint& b);

/// Initial great-circle bearing from `a` to `b`, degrees clockwise from
/// true north in [0, 360).
double bearing_deg(const GeoPoint& a, const GeoPoint& b);

/// Destination point after travelling `distance_m` along `bearing` from
/// `origin` on the great circle. Altitude is carried through unchanged.
GeoPoint destination(const GeoPoint& origin, double bearing_deg,
                     double distance_m);

/// Small-area local tangent-plane projection centred at `origin`.
/// Accurate to centimetres over the few-km mission areas simulated here.
class LocalFrame {
 public:
  explicit LocalFrame(const GeoPoint& origin);

  const GeoPoint& origin() const noexcept { return origin_; }

  EnuPoint to_enu(const GeoPoint& p) const;
  GeoPoint to_geo(const EnuPoint& p) const;

 private:
  GeoPoint origin_;
  double cos_lat_;
};

/// Planar distance in a local frame.
double enu_distance_m(const EnuPoint& a, const EnuPoint& b);

/// Horizontal (ground-plane) distance in a local frame.
double enu_ground_distance_m(const EnuPoint& a, const EnuPoint& b);

}  // namespace sesame::geo
