// Position-fix estimation from range and bearing observations, the
// geometric core of Collaborative Localization: assisting UAVs observe the
// affected UAV with a camera (bearing) and monocular depth estimate (range)
// and the observations are fused into a single geodetic fix via
// trigonometric projection and, for ranges-only sets, nonlinear least
// squares (Gauss-Newton) trilateration.
#pragma once

#include <optional>
#include <vector>

#include "sesame/geo/geodesy.hpp"

namespace sesame::geo {

/// One observation of a target made by an observer at a known position.
struct RangeBearingObservation {
  GeoPoint observer;      ///< observer's own (trusted) position
  double range_m = 0.0;   ///< estimated slant/ground range to the target
  double bearing_deg = 0.0;  ///< estimated bearing to the target, deg from N
  /// 1-sigma uncertainty of the range estimate; used as an inverse-variance
  /// fusion weight. Must be > 0.
  double range_sigma_m = 1.0;
};

/// Range-only observation (e.g. RF time-of-flight between UAVs).
struct RangeObservation {
  GeoPoint observer;
  double range_m = 0.0;
  double range_sigma_m = 1.0;
};

/// Result of a fused fix.
struct FixResult {
  GeoPoint position;       ///< fused estimate
  double rms_residual_m = 0.0;  ///< RMS of per-observation residuals
  int iterations = 0;      ///< Gauss-Newton iterations consumed (0 for direct)
  bool converged = true;
};

/// Projects each range/bearing observation to a point with `destination`
/// and fuses the points with inverse-variance weights. This is the
/// projection-plus-Haversine-refinement scheme of the paper (Section III-C).
/// Requires at least one observation.
FixResult fuse_range_bearing(const std::vector<RangeBearingObservation>& obs);

/// Gauss-Newton trilateration from >= 3 range-only observations (2-D fix in
/// a local tangent frame, altitude is taken as the weighted mean of
/// observer altitudes minus nothing — callers provide target altitude out of
/// band). Returns nullopt when the geometry is degenerate (observers nearly
/// collinear) or the iteration diverges.
std::optional<FixResult> trilaterate(const std::vector<RangeObservation>& obs,
                                     int max_iterations = 25,
                                     double tol_m = 1e-4);

}  // namespace sesame::geo
