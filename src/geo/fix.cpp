#include "sesame/geo/fix.hpp"

#include <cmath>
#include <stdexcept>

#include "sesame/mathx/matrix.hpp"

namespace sesame::geo {

FixResult fuse_range_bearing(const std::vector<RangeBearingObservation>& obs) {
  if (obs.empty()) {
    throw std::invalid_argument("fuse_range_bearing: no observations");
  }
  // Project every observation to a candidate point, then average in a local
  // frame anchored at the first observer (inverse-variance weighting).
  const LocalFrame frame(obs.front().observer);
  double we = 0.0, wn = 0.0, wu = 0.0, wsum = 0.0;
  std::vector<EnuPoint> candidates;
  candidates.reserve(obs.size());
  for (const auto& o : obs) {
    if (o.range_sigma_m <= 0.0) {
      throw std::invalid_argument("fuse_range_bearing: non-positive sigma");
    }
    const GeoPoint projected = destination(o.observer, o.bearing_deg, o.range_m);
    const EnuPoint e = frame.to_enu(projected);
    candidates.push_back(e);
    const double w = 1.0 / (o.range_sigma_m * o.range_sigma_m);
    we += w * e.east_m;
    wn += w * e.north_m;
    wu += w * e.up_m;
    wsum += w;
  }
  EnuPoint fused{we / wsum, wn / wsum, wu / wsum};

  double ss = 0.0;
  for (const auto& c : candidates) {
    const double d = enu_ground_distance_m(c, fused);
    ss += d * d;
  }
  FixResult r;
  r.position = frame.to_geo(fused);
  r.rms_residual_m = std::sqrt(ss / static_cast<double>(candidates.size()));
  r.iterations = 0;
  r.converged = true;
  return r;
}

std::optional<FixResult> trilaterate(const std::vector<RangeObservation>& obs,
                                     int max_iterations, double tol_m) {
  if (obs.size() < 3) return std::nullopt;
  const LocalFrame frame(obs.front().observer);

  // Initial guess: centroid of observers.
  double cx = 0.0, cy = 0.0, calt = 0.0;
  std::vector<EnuPoint> anchors;
  anchors.reserve(obs.size());
  for (const auto& o : obs) {
    if (o.range_sigma_m <= 0.0) return std::nullopt;
    const EnuPoint a = frame.to_enu(o.observer);
    anchors.push_back(a);
    cx += a.east_m;
    cy += a.north_m;
    calt += a.up_m;
  }
  const double n = static_cast<double>(obs.size());
  double x = cx / n, y = cy / n;
  const double alt = calt / n;

  int iter = 0;
  for (; iter < max_iterations; ++iter) {
    // Weighted Gauss-Newton step on residuals r_i = ||p - a_i|| - range_i.
    double h11 = 0.0, h12 = 0.0, h22 = 0.0, g1 = 0.0, g2 = 0.0;
    for (std::size_t i = 0; i < anchors.size(); ++i) {
      const double dx = x - anchors[i].east_m;
      const double dy = y - anchors[i].north_m;
      double dist = std::sqrt(dx * dx + dy * dy);
      if (dist < 1e-9) dist = 1e-9;
      const double w = 1.0 / (obs[i].range_sigma_m * obs[i].range_sigma_m);
      const double res = dist - obs[i].range_m;
      const double jx = dx / dist;
      const double jy = dy / dist;
      h11 += w * jx * jx;
      h12 += w * jx * jy;
      h22 += w * jy * jy;
      g1 += w * jx * res;
      g2 += w * jy * res;
    }
    const double det = h11 * h22 - h12 * h12;
    if (std::abs(det) < 1e-12) return std::nullopt;  // degenerate geometry
    const double step_x = (h22 * g1 - h12 * g2) / det;
    const double step_y = (h11 * g2 - h12 * g1) / det;
    x -= step_x;
    y -= step_y;
    if (std::sqrt(step_x * step_x + step_y * step_y) < tol_m) {
      ++iter;
      break;
    }
  }

  double ss = 0.0;
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    const double dx = x - anchors[i].east_m;
    const double dy = y - anchors[i].north_m;
    const double res = std::sqrt(dx * dx + dy * dy) - obs[i].range_m;
    ss += res * res;
  }
  FixResult r;
  r.position = frame.to_geo(EnuPoint{x, y, alt});
  r.rms_residual_m = std::sqrt(ss / n);
  r.iterations = iter;
  r.converged = iter < max_iterations;
  if (!std::isfinite(x) || !std::isfinite(y)) return std::nullopt;
  return r;
}

}  // namespace sesame::geo
