// Fault Tree Analysis engine with *complex basic events*.
//
// SafeDrones' key mechanism (Kabir et al., IMBSA 2019; Aslansefat et al.,
// IMBSA 2022) is a fault tree whose leaves are not constant-probability
// events but "complex basic events" evaluated by an underlying dynamic
// model — here, a callable that maps mission time to failure probability,
// typically backed by a CTMC (sesame::markov). Gates combine leaf
// probabilities assuming statistical independence; minimal cut sets and
// Birnbaum importance support design-time analysis.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace sesame::fta {

class Node;
using NodePtr = std::shared_ptr<const Node>;

/// A cut set is a set of basic-event names whose joint occurrence fails the
/// top event.
using CutSet = std::set<std::string>;

/// Base class of fault-tree nodes. Immutable after construction; trees are
/// shared via shared_ptr so sub-trees can be reused across trees (the same
/// battery model appears under several UAV-level trees).
class Node {
 public:
  virtual ~Node() = default;

  /// Failure probability of this (sub)tree at mission time t (seconds),
  /// assuming independent basic events.
  virtual double probability(double t) const = 0;

  /// Human-readable name for reporting.
  const std::string& name() const noexcept { return name_; }

  /// Collects the names of all basic events beneath this node.
  virtual void collect_basic_events(std::set<std::string>& out) const = 0;

  /// Evaluates with one basic event forced to a fixed probability —
  /// used for Birnbaum importance. `target` is matched by name.
  virtual double probability_forced(double t, const std::string& target,
                                    double forced_p) const = 0;

  /// Minimal cut sets of this subtree (MOCUS-style expansion).
  virtual std::vector<CutSet> cut_sets() const = 0;

 protected:
  explicit Node(std::string name) : name_(std::move(name)) {}

 private:
  std::string name_;
};

/// Basic event with a constant failure probability.
NodePtr make_basic(std::string name, double probability);

/// Basic event with exponential lifetime: P(t) = 1 - exp(-lambda t).
NodePtr make_exponential(std::string name, double lambda_per_s);

/// Complex basic event: probability supplied by an arbitrary dynamic model
/// (Markov chain, degradation model, learned estimator...). The callable
/// must be pure in t and return values in [0, 1]; out-of-range results are
/// clamped and flag a model defect in debug builds.
NodePtr make_complex(std::string name, std::function<double(double)> model);

/// AND gate: all children must fail.
NodePtr make_and(std::string name, std::vector<NodePtr> children);

/// OR gate: any child failing fails the gate.
NodePtr make_or(std::string name, std::vector<NodePtr> children);

/// k-out-of-N (voter) gate: fails when at least k of the N children have
/// failed. Exact evaluation by dynamic programming over independent
/// non-identical children.
NodePtr make_k_of_n(std::string name, std::size_t k, std::vector<NodePtr> children);

/// A complete fault tree: a named wrapper around the top node with
/// analysis entry points.
class FaultTree {
 public:
  FaultTree(std::string name, NodePtr top);

  const std::string& name() const noexcept { return name_; }
  const NodePtr& top() const noexcept { return top_; }

  /// Top-event probability at mission time t.
  double top_probability(double t) const { return top_->probability(t); }

  /// All basic-event names in the tree.
  std::set<std::string> basic_events() const;

  /// Minimal cut sets (minimality enforced by absorption).
  std::vector<CutSet> minimal_cut_sets() const;

  /// Birnbaum importance of a basic event at time t:
  /// I_B = P(top | e fails) - P(top | e works).
  double birnbaum_importance(const std::string& event, double t) const;

  /// Fussell-Vesely importance: fraction of top-event probability
  /// attributable to cut sets containing the event (rare-event approx).
  double fussell_vesely_importance(const std::string& event, double t) const;

 private:
  std::string name_;
  NodePtr top_;
};

/// One row of an importance ranking.
struct ImportanceEntry {
  std::string event;
  double birnbaum = 0.0;
  double fussell_vesely = 0.0;
};

/// Ranks every basic event of `tree` at mission time t, descending by
/// Birnbaum importance (ties broken by name for determinism) — the
/// maintenance-priority table a reliability report leads with.
std::vector<ImportanceEntry> rank_importance(const FaultTree& tree, double t);

}  // namespace sesame::fta
