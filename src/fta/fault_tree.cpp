#include "sesame/fta/fault_tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace sesame::fta {

namespace {

double clamp01(double p) { return std::min(1.0, std::max(0.0, p)); }

/// Removes non-minimal cut sets by absorption: a set is dropped when a
/// strict subset of it is also a cut set.
std::vector<CutSet> minimize(std::vector<CutSet> sets) {
  std::sort(sets.begin(), sets.end(),
            [](const CutSet& a, const CutSet& b) { return a.size() < b.size(); });
  std::vector<CutSet> out;
  for (const auto& s : sets) {
    const bool absorbed = std::any_of(out.begin(), out.end(), [&](const CutSet& m) {
      return std::includes(s.begin(), s.end(), m.begin(), m.end());
    });
    if (!absorbed) out.push_back(s);
  }
  return out;
}

class LeafNode final : public Node {
 public:
  LeafNode(std::string name, std::function<double(double)> model)
      : Node(std::move(name)), model_(std::move(model)) {}

  double probability(double t) const override {
    const double p = model_(t);
    assert(p >= -1e-9 && p <= 1.0 + 1e-9 && "complex basic event out of range");
    return clamp01(p);
  }

  void collect_basic_events(std::set<std::string>& out) const override {
    out.insert(name());
  }

  double probability_forced(double t, const std::string& target,
                            double forced_p) const override {
    return name() == target ? clamp01(forced_p) : probability(t);
  }

  std::vector<CutSet> cut_sets() const override { return {CutSet{name()}}; }

 private:
  std::function<double(double)> model_;
};

class GateNode : public Node {
 public:
  GateNode(std::string name, std::vector<NodePtr> children)
      : Node(std::move(name)), children_(std::move(children)) {
    if (children_.empty()) {
      throw std::invalid_argument("fault-tree gate '" + Node::name() +
                                  "' has no children");
    }
    for (const auto& c : children_) {
      if (!c) throw std::invalid_argument("fault-tree gate: null child");
    }
  }

  void collect_basic_events(std::set<std::string>& out) const override {
    for (const auto& c : children_) c->collect_basic_events(out);
  }

 protected:
  const std::vector<NodePtr>& children() const noexcept { return children_; }

  std::vector<double> child_probabilities(double t) const {
    std::vector<double> ps;
    ps.reserve(children_.size());
    for (const auto& c : children_) ps.push_back(c->probability(t));
    return ps;
  }

  std::vector<double> child_probabilities_forced(double t,
                                                 const std::string& target,
                                                 double forced_p) const {
    std::vector<double> ps;
    ps.reserve(children_.size());
    for (const auto& c : children_) {
      ps.push_back(c->probability_forced(t, target, forced_p));
    }
    return ps;
  }

 private:
  std::vector<NodePtr> children_;
};

class AndNode final : public GateNode {
 public:
  using GateNode::GateNode;

  double probability(double t) const override {
    double p = 1.0;
    for (const auto& c : children()) p *= c->probability(t);
    return p;
  }

  double probability_forced(double t, const std::string& target,
                            double forced_p) const override {
    double p = 1.0;
    for (const auto& c : children()) p *= c->probability_forced(t, target, forced_p);
    return p;
  }

  std::vector<CutSet> cut_sets() const override {
    // Cartesian union-product of child cut sets.
    std::vector<CutSet> acc{CutSet{}};
    for (const auto& c : children()) {
      std::vector<CutSet> next;
      for (const auto& left : acc) {
        for (const auto& right : c->cut_sets()) {
          CutSet merged = left;
          merged.insert(right.begin(), right.end());
          next.push_back(std::move(merged));
        }
      }
      acc = std::move(next);
    }
    return minimize(std::move(acc));
  }
};

class OrNode final : public GateNode {
 public:
  using GateNode::GateNode;

  double probability(double t) const override {
    double q = 1.0;  // probability that no child fails
    for (const auto& c : children()) q *= 1.0 - c->probability(t);
    return 1.0 - q;
  }

  double probability_forced(double t, const std::string& target,
                            double forced_p) const override {
    double q = 1.0;
    for (const auto& c : children()) {
      q *= 1.0 - c->probability_forced(t, target, forced_p);
    }
    return 1.0 - q;
  }

  std::vector<CutSet> cut_sets() const override {
    std::vector<CutSet> acc;
    for (const auto& c : children()) {
      auto cs = c->cut_sets();
      acc.insert(acc.end(), cs.begin(), cs.end());
    }
    return minimize(std::move(acc));
  }
};

/// Exact probability that at least k of independent events with
/// probabilities ps occur: O(n*k) dynamic programme.
double at_least_k(const std::vector<double>& ps, std::size_t k) {
  const std::size_t n = ps.size();
  // dp[j] = P(exactly j failures among the first i children), capped at k.
  std::vector<double> dp(std::min(k, n) + 1, 0.0);
  dp[0] = 1.0;
  double p_at_least_k = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double p = ps[i];
    // Walk j downward so each child is counted once.
    for (std::size_t j = std::min(i + 1, k); j-- > 0;) {
      const double promoted = dp[j] * p;
      if (j + 1 == k) {
        p_at_least_k += promoted;
      } else {
        dp[j + 1] += promoted;
      }
      dp[j] *= 1.0 - p;
    }
  }
  return clamp01(p_at_least_k);
}

class KofNNode final : public GateNode {
 public:
  KofNNode(std::string name, std::size_t k, std::vector<NodePtr> children)
      : GateNode(std::move(name), std::move(children)), k_(k) {
    if (k_ == 0 || k_ > this->children().size()) {
      throw std::invalid_argument("k-of-N gate: k out of range");
    }
  }

  double probability(double t) const override {
    return at_least_k(child_probabilities(t), k_);
  }

  double probability_forced(double t, const std::string& target,
                            double forced_p) const override {
    return at_least_k(child_probabilities_forced(t, target, forced_p), k_);
  }

  std::vector<CutSet> cut_sets() const override {
    // Expand to OR over all k-sized child combinations of AND.
    const auto& cs = children();
    std::vector<CutSet> acc;
    std::vector<std::size_t> idx(k_);
    // Iterative combination enumeration.
    for (std::size_t i = 0; i < k_; ++i) idx[i] = i;
    while (true) {
      // AND-combine the cut sets of the selected children.
      std::vector<CutSet> combo{CutSet{}};
      for (std::size_t i : idx) {
        std::vector<CutSet> next;
        for (const auto& left : combo) {
          for (const auto& right : cs[i]->cut_sets()) {
            CutSet merged = left;
            merged.insert(right.begin(), right.end());
            next.push_back(std::move(merged));
          }
        }
        combo = std::move(next);
      }
      acc.insert(acc.end(), combo.begin(), combo.end());
      // Advance combination.
      std::size_t pos = k_;
      while (pos > 0) {
        --pos;
        if (idx[pos] != pos + cs.size() - k_) break;
        if (pos == 0) return minimize(std::move(acc));
      }
      if (idx[pos] == pos + cs.size() - k_) return minimize(std::move(acc));
      ++idx[pos];
      for (std::size_t i = pos + 1; i < k_; ++i) idx[i] = idx[i - 1] + 1;
    }
  }

 private:
  std::size_t k_;
};

}  // namespace

NodePtr make_basic(std::string name, double probability) {
  if (probability < 0.0 || probability > 1.0) {
    throw std::invalid_argument("make_basic: probability out of [0,1]");
  }
  return std::make_shared<LeafNode>(
      std::move(name), [probability](double) { return probability; });
}

NodePtr make_exponential(std::string name, double lambda_per_s) {
  if (lambda_per_s < 0.0) {
    throw std::invalid_argument("make_exponential: negative rate");
  }
  return std::make_shared<LeafNode>(std::move(name), [lambda_per_s](double t) {
    return 1.0 - std::exp(-lambda_per_s * std::max(0.0, t));
  });
}

NodePtr make_complex(std::string name, std::function<double(double)> model) {
  if (!model) throw std::invalid_argument("make_complex: empty model");
  return std::make_shared<LeafNode>(std::move(name), std::move(model));
}

NodePtr make_and(std::string name, std::vector<NodePtr> children) {
  return std::make_shared<AndNode>(std::move(name), std::move(children));
}

NodePtr make_or(std::string name, std::vector<NodePtr> children) {
  return std::make_shared<OrNode>(std::move(name), std::move(children));
}

NodePtr make_k_of_n(std::string name, std::size_t k,
                    std::vector<NodePtr> children) {
  return std::make_shared<KofNNode>(std::move(name), k, std::move(children));
}

FaultTree::FaultTree(std::string name, NodePtr top)
    : name_(std::move(name)), top_(std::move(top)) {
  if (!top_) throw std::invalid_argument("FaultTree: null top node");
}

std::set<std::string> FaultTree::basic_events() const {
  std::set<std::string> out;
  top_->collect_basic_events(out);
  return out;
}

std::vector<CutSet> FaultTree::minimal_cut_sets() const {
  return top_->cut_sets();
}

double FaultTree::birnbaum_importance(const std::string& event, double t) const {
  const auto events = basic_events();
  if (events.find(event) == events.end()) {
    throw std::invalid_argument("birnbaum_importance: unknown event " + event);
  }
  return top_->probability_forced(t, event, 1.0) -
         top_->probability_forced(t, event, 0.0);
}

std::vector<ImportanceEntry> rank_importance(const FaultTree& tree, double t) {
  std::vector<ImportanceEntry> out;
  for (const auto& event : tree.basic_events()) {
    ImportanceEntry entry;
    entry.event = event;
    entry.birnbaum = tree.birnbaum_importance(event, t);
    entry.fussell_vesely = tree.fussell_vesely_importance(event, t);
    out.push_back(std::move(entry));
  }
  std::sort(out.begin(), out.end(),
            [](const ImportanceEntry& a, const ImportanceEntry& b) {
              if (a.birnbaum != b.birnbaum) return a.birnbaum > b.birnbaum;
              return a.event < b.event;
            });
  return out;
}

double FaultTree::fussell_vesely_importance(const std::string& event,
                                            double t) const {
  const auto events = basic_events();
  if (events.find(event) == events.end()) {
    throw std::invalid_argument("fussell_vesely_importance: unknown event " + event);
  }
  const double p_top = top_->probability(t);
  if (p_top <= 0.0) return 0.0;
  const double p_without = top_->probability_forced(t, event, 0.0);
  return clamp01((p_top - p_without) / p_top);
}

}  // namespace sesame::fta
