// Synthetic person detector.
//
// Stands in for the tiny-YOLOv4 person-detection model of the paper. The
// substitution preserves the behaviour the evaluation depends on: detection
// quality degrades with altitude (coarser ground sample distance), which is
// what drives the Section V-B result — at high altitude the ML uncertainty
// exceeds the 90% threshold, the ConSert commands a descent, and accuracy
// recovers to ~99.8%.
//
// The detector is a probabilistic model over the camera geometry: each
// person inside the footprint is detected with an altitude-dependent
// probability and localized with altitude-dependent noise; clutter produces
// occasional false alarms. Per-frame image statistics (the SafeML feature
// channel) and per-detection feature vectors (the DeepKnowledge MLP input)
// are generated consistently with the same altitude model.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sesame/mathx/rng.hpp"
#include "sesame/sim/camera.hpp"
#include "sesame/sim/world.hpp"

namespace sesame::perception {

struct DetectorConfig {
  /// Ground sample distance (m/px) at which detection is essentially
  /// perfect; around 15 m altitude with the default camera.
  double gsd_ref_m = 0.02;
  /// Logistic falloff steepness of detection probability per metre of GSD
  /// excess over the reference (default tuned so p(20 m) ~ 0.998 and
  /// p(60 m) ~ 0.6 with the default camera).
  double gsd_falloff = 80.0;
  /// Peak detection probability at the reference GSD (paper: 99.8%).
  double peak_detection_probability = 0.998;
  /// False alarms per frame (Poisson-approximated by Bernoulli per frame).
  double false_alarm_rate = 0.01;
  /// Localization noise at the reference GSD (1 sigma, metres).
  double base_position_sigma_m = 0.3;
};

/// One detection in a frame.
struct Detection {
  /// Index into the world's person list; nullopt for a false alarm.
  std::optional<std::size_t> person_index;
  double confidence = 0.0;        ///< detector score in (0, 1)
  geo::EnuPoint estimated_position;  ///< ground position estimate
};

/// Per-frame image statistics consumed by SafeML (one value per feature).
/// All three shift with altitude, which is how altitude-induced domain
/// shift becomes visible to the statistical distance monitor.
struct FrameFeatures {
  double sharpness = 0.0;   ///< inverse-GSD proxy: lower when higher
  double contrast = 0.0;    ///< target/background contrast proxy
  double target_scale = 0.0;  ///< apparent person size in pixels

  std::vector<double> as_vector() const {
    return {sharpness, contrast, target_scale};
  }
  static constexpr std::size_t kNumFeatures = 3;
};

class PersonDetector {
 public:
  PersonDetector(DetectorConfig config, sim::CameraConfig camera = {});

  const sim::Camera& camera() const noexcept { return camera_; }

  /// Deterministic detection probability for a person in view at the given
  /// altitude (the quantity the SAR accuracy experiment sweeps).
  double detection_probability(double altitude_m) const;

  /// Runs the detector on one frame from a UAV at `uav_pos`. Marks
  /// `persons[i].detected` is NOT done here — the SAR layer owns mission
  /// bookkeeping; this returns raw detections only.
  std::vector<Detection> detect(const geo::EnuPoint& uav_pos,
                                const std::vector<sim::Person>& persons,
                                mathx::Rng& rng) const;

  /// Same frame model restricted to a pre-filtered candidate subset
  /// (typically a spatial index's footprint query). `candidates` must hold
  /// ascending person indices and include every person inside the camera
  /// footprint. Persons outside the footprint draw no randomness, so any
  /// such superset yields a draw sequence — and detections — bit-identical
  /// to the full scan.
  std::vector<Detection> detect(const geo::EnuPoint& uav_pos,
                                const std::vector<sim::Person>& persons,
                                const std::vector<std::uint32_t>& candidates,
                                mathx::Rng& rng) const;

  /// Per-frame image statistics at the given altitude.
  FrameFeatures frame_features(double altitude_m, mathx::Rng& rng) const;

  /// Feature vector of one detection for the DeepKnowledge MLP:
  /// {normalized GSD, confidence, apparent scale, contrast}.
  std::vector<double> detection_features(const Detection& det,
                                         double altitude_m,
                                         mathx::Rng& rng) const;
  static constexpr std::size_t kDetectionFeatureCount = 4;

 private:
  // Shared frame model: enumerates `n_candidates` person indices through
  // `index_of(k)` in the order given. Both public overloads funnel here so
  // the draw sequence cannot diverge between the scan and indexed paths.
  template <class IndexOf>
  std::vector<Detection> detect_core(const geo::EnuPoint& uav_pos,
                                     const std::vector<sim::Person>& persons,
                                     std::size_t n_candidates,
                                     IndexOf&& index_of, mathx::Rng& rng) const;

  DetectorConfig config_;
  sim::Camera camera_;
};

}  // namespace sesame::perception
