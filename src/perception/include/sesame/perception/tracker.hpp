// Multi-frame person tracking.
//
// The Collaborative Localization hardware stack (paper Fig. 2) pairs the
// detector with a "Detection & Tracking" module: raw per-frame detections
// are noisy and contain false alarms, so persons are only reported once a
// track accumulates enough consistent hits. This is a nearest-neighbour
// gating tracker: detections associate to the closest live track within a
// gate, tracks confirm after `confirm_hits` hits and die after
// `max_misses` frames without an update. Confirmed tracks are what the
// GCS plots as red dots (Fig. 4).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "sesame/perception/detector.hpp"

namespace sesame::perception {

struct TrackerConfig {
  /// Association gate: a detection joins a track when within this ground
  /// distance of the track's position estimate.
  double gate_m = 6.0;
  /// Hits before a track is reported as a confirmed person.
  std::size_t confirm_hits = 3;
  /// Consecutive frames without an update before a tentative track dies.
  /// Confirmed tracks are kept (persons do not vanish).
  std::size_t max_misses = 10;
};

struct Track {
  std::size_t id = 0;
  geo::EnuPoint position;      ///< running average of associated detections
  std::size_t hits = 0;
  std::size_t misses = 0;      ///< consecutive frames without an update
  bool confirmed = false;
  double last_confidence = 0.0;
};

class PersonTracker {
 public:
  explicit PersonTracker(TrackerConfig config = {});

  const TrackerConfig& config() const noexcept { return config_; }

  /// Ingests one frame of detections. Association is greedy
  /// nearest-neighbour in detection order; unmatched detections open new
  /// tentative tracks; unmatched tentative tracks age and die.
  void update(const std::vector<Detection>& detections);

  /// All live tracks (tentative + confirmed).
  const std::vector<Track>& tracks() const noexcept { return tracks_; }

  /// Confirmed tracks only (the reported persons).
  std::vector<Track> confirmed() const;

  std::size_t frames_processed() const noexcept { return frames_; }

  /// Closest confirmed track to a point within the gate, if any.
  std::optional<Track> nearest_confirmed(const geo::EnuPoint& p) const;

 private:
  TrackerConfig config_;
  std::vector<Track> tracks_;
  std::size_t next_id_ = 0;
  std::size_t frames_ = 0;
};

}  // namespace sesame::perception
