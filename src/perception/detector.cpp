#include "sesame/perception/detector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sesame::perception {

PersonDetector::PersonDetector(DetectorConfig config, sim::CameraConfig camera)
    : config_(config), camera_(camera) {
  if (config_.gsd_ref_m <= 0.0 || config_.gsd_falloff <= 0.0) {
    throw std::invalid_argument("PersonDetector: non-positive GSD parameters");
  }
  if (config_.peak_detection_probability <= 0.0 ||
      config_.peak_detection_probability > 1.0) {
    throw std::invalid_argument("PersonDetector: peak probability out of (0,1]");
  }
  if (config_.false_alarm_rate < 0.0 || config_.false_alarm_rate >= 1.0) {
    throw std::invalid_argument("PersonDetector: false alarm rate out of [0,1)");
  }
}

double PersonDetector::detection_probability(double altitude_m) const {
  if (altitude_m <= 0.0) return 0.0;
  const double gsd = camera_.ground_sample_distance_m(altitude_m);
  // Logistic decay in GSD beyond the reference resolution, normalized so
  // that zero excess yields exactly the peak probability.
  const double excess = std::max(0.0, gsd - config_.gsd_ref_m);
  const double s = 1.0 / (1.0 + std::exp(config_.gsd_falloff * excess - 4.0));
  return config_.peak_detection_probability * s * (1.0 + std::exp(-4.0));
}

template <class IndexOf>
std::vector<Detection> PersonDetector::detect_core(
    const geo::EnuPoint& uav_pos, const std::vector<sim::Person>& persons,
    std::size_t n_candidates, IndexOf&& index_of, mathx::Rng& rng) const {
  std::vector<Detection> out;
  const double alt = uav_pos.up_m;
  if (alt <= 0.0) return out;
  const auto fp = camera_.footprint(uav_pos);
  const double p_det = detection_probability(alt);
  const double gsd = camera_.ground_sample_distance_m(alt);
  const double sigma =
      config_.base_position_sigma_m * std::max(1.0, gsd / config_.gsd_ref_m);

  for (std::size_t k = 0; k < n_candidates; ++k) {
    const std::size_t i = index_of(k);
    if (!fp.contains(persons[i].position)) continue;
    if (!rng.bernoulli(p_det)) continue;
    Detection d;
    d.person_index = i;
    // Confidence concentrates near p_det with altitude-dependent spread.
    d.confidence = std::clamp(rng.normal(p_det, 0.05 + 0.1 * (1.0 - p_det)),
                              0.01, 0.999);
    d.estimated_position = persons[i].position;
    d.estimated_position.east_m += rng.normal(0.0, sigma);
    d.estimated_position.north_m += rng.normal(0.0, sigma);
    out.push_back(d);
  }

  if (rng.bernoulli(config_.false_alarm_rate)) {
    Detection fa;
    fa.person_index = std::nullopt;
    fa.confidence = std::clamp(rng.normal(0.35, 0.15), 0.01, 0.9);
    fa.estimated_position = {
        fp.center_east_m + rng.uniform(-fp.half_width_m, fp.half_width_m),
        fp.center_north_m + rng.uniform(-fp.half_height_m, fp.half_height_m),
        0.0};
    out.push_back(fa);
  }
  return out;
}

std::vector<Detection> PersonDetector::detect(
    const geo::EnuPoint& uav_pos, const std::vector<sim::Person>& persons,
    mathx::Rng& rng) const {
  return detect_core(uav_pos, persons, persons.size(),
                     [](std::size_t k) { return k; }, rng);
}

std::vector<Detection> PersonDetector::detect(
    const geo::EnuPoint& uav_pos, const std::vector<sim::Person>& persons,
    const std::vector<std::uint32_t>& candidates, mathx::Rng& rng) const {
  return detect_core(
      uav_pos, persons, candidates.size(),
      [&candidates](std::size_t k) {
        return static_cast<std::size_t>(candidates[k]);
      },
      rng);
}

FrameFeatures PersonDetector::frame_features(double altitude_m,
                                             mathx::Rng& rng) const {
  FrameFeatures f;
  const double gsd =
      std::max(1e-4, camera_.ground_sample_distance_m(std::max(1.0, altitude_m)));
  // Sharpness ~ 1/gsd with sensor noise; contrast washes out with range;
  // apparent scale (px) of a 0.5 m-wide person.
  f.sharpness = config_.gsd_ref_m / gsd + rng.normal(0.0, 0.03);
  f.contrast = 0.8 * std::exp(-altitude_m / 120.0) + rng.normal(0.0, 0.02);
  f.target_scale = 0.5 / gsd + rng.normal(0.0, 0.5);
  return f;
}

std::vector<double> PersonDetector::detection_features(const Detection& det,
                                                       double altitude_m,
                                                       mathx::Rng& rng) const {
  const double gsd =
      std::max(1e-4, camera_.ground_sample_distance_m(std::max(1.0, altitude_m)));
  const FrameFeatures f = frame_features(altitude_m, rng);
  return {gsd / config_.gsd_ref_m, det.confidence, f.target_scale, f.contrast};
}

}  // namespace sesame::perception
