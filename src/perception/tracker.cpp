#include "sesame/perception/tracker.hpp"

#include <algorithm>
#include <stdexcept>

namespace sesame::perception {

PersonTracker::PersonTracker(TrackerConfig config) : config_(config) {
  if (config_.gate_m <= 0.0 || config_.confirm_hits == 0 ||
      config_.max_misses == 0) {
    throw std::invalid_argument("PersonTracker: bad config");
  }
}

void PersonTracker::update(const std::vector<Detection>& detections) {
  ++frames_;
  std::vector<bool> track_updated(tracks_.size(), false);

  for (const auto& det : detections) {
    // Greedy nearest-neighbour association within the gate, preferring
    // tracks not yet updated this frame.
    std::size_t best = tracks_.size();
    double best_d = config_.gate_m;
    for (std::size_t i = 0; i < tracks_.size(); ++i) {
      if (track_updated[i]) continue;
      const double d =
          geo::enu_ground_distance_m(tracks_[i].position, det.estimated_position);
      if (d <= best_d) {
        best_d = d;
        best = i;
      }
    }
    if (best < tracks_.size()) {
      Track& t = tracks_[best];
      // Running average sharpens the position as hits accumulate.
      const double n = static_cast<double>(t.hits);
      t.position.east_m =
          (t.position.east_m * n + det.estimated_position.east_m) / (n + 1.0);
      t.position.north_m =
          (t.position.north_m * n + det.estimated_position.north_m) / (n + 1.0);
      ++t.hits;
      t.misses = 0;
      t.last_confidence = det.confidence;
      if (t.hits >= config_.confirm_hits) t.confirmed = true;
      track_updated[best] = true;
    } else {
      Track t;
      t.id = next_id_++;
      t.position = det.estimated_position;
      t.hits = 1;
      t.last_confidence = det.confidence;
      t.confirmed = config_.confirm_hits <= 1;
      tracks_.push_back(t);
      track_updated.push_back(true);
    }
  }

  // Age unmatched tracks; tentative ones die, confirmed ones persist.
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (!track_updated[i]) ++tracks_[i].misses;
  }
  tracks_.erase(std::remove_if(tracks_.begin(), tracks_.end(),
                               [this](const Track& t) {
                                 return !t.confirmed &&
                                        t.misses > config_.max_misses;
                               }),
                tracks_.end());
}

std::vector<Track> PersonTracker::confirmed() const {
  std::vector<Track> out;
  for (const auto& t : tracks_) {
    if (t.confirmed) out.push_back(t);
  }
  return out;
}

std::optional<Track> PersonTracker::nearest_confirmed(
    const geo::EnuPoint& p) const {
  std::optional<Track> best;
  double best_d = config_.gate_m;
  for (const auto& t : tracks_) {
    if (!t.confirmed) continue;
    const double d = geo::enu_ground_distance_m(t.position, p);
    if (d <= best_d) {
      best_d = d;
      best = t;
    }
  }
  return best;
}

}  // namespace sesame::perception
