// The paper's hierarchical UAV ConSert network (Fig. 1), built from the
// generic engine in consert.hpp.
//
// Per UAV:
//   - GPS-based localization ConSert: accurate GPS demands good receiver
//     quality AND no active security attack (Security EDDI).
//   - Vision-based localization ConSert: healthy vision sensor AND high
//     SafeML confidence in the perception model.
//   - Communication-based localization ConSert: healthy links to nearby
//     UAVs (the Collaborative Localization channel).
//   - Navigation ConSert: grades achievable navigation accuracy
//     (<0.5 m / <0.75 m / <1 m) from the localization guarantees.
//   - Safety EDDI ConSert: reliability level from SafeDrones.
//   - UAV ConSert: maps navigation + reliability onto the action lattice
//     Continue-and-take-over / Continue / Hold / Return-to-base, with
//     Emergency Land as the default when nothing is satisfied.
// Mission level:
//   - a decider combines the per-UAV outputs into mission as planned /
//     task redistribution / mission cannot be completed.
#pragma once

#include <string>
#include <vector>

#include "sesame/conserts/consert.hpp"

namespace sesame::conserts {

/// Runtime-evidence flags for one UAV. The adapter in the EDDI layer fills
/// this from the live technologies; tests set fields directly.
struct UavEvidence {
  // GPS-based localization ConSert inputs.
  bool gps_quality_good = false;     ///< receiver metrics nominal
  bool no_security_attack = false;   ///< Security EDDI reports no attack
  // Vision-based localization ConSert inputs.
  bool vision_sensor_healthy = false;
  bool safeml_confidence_high = false;
  // Communication-based localization ConSert inputs.
  bool comm_link_good = false;
  bool nearby_uav_available = false;  ///< an assistant UAV is in range
  // Safety EDDI (SafeDrones) reliability level — exactly one should hold.
  bool reliability_high = false;
  bool reliability_medium = false;
  bool reliability_low = false;
};

/// Evidence key for `field` of the UAV named `uav`; keys are
/// "<uav>/<field>", e.g. "uav1/gps_quality_good".
std::string evidence_key(const std::string& uav, const std::string& field);

/// Writes all evidence flags of one UAV into the context.
void apply_evidence(EvaluationContext& ctx, const std::string& uav,
                    const UavEvidence& evidence);

/// ConSert names for one UAV (all prefixed "<uav>/").
struct UavConsertNames {
  std::string gps_localization;
  std::string vision_localization;
  std::string comm_localization;
  std::string navigation;
  std::string safety;
  std::string uav;
};
UavConsertNames uav_consert_names(const std::string& uav);

/// Well-known guarantee names.
namespace guarantees {
inline const char* kGpsAccurate = "gps_localization_accurate";
inline const char* kVisionAvailable = "vision_localization_available";
inline const char* kCommAvailable = "comm_localization_available";
inline const char* kNavHighPerformance = "navigation_accuracy_0_5m";
inline const char* kNavCollaborative = "navigation_accuracy_0_75m";
inline const char* kNavVision = "navigation_accuracy_1m_vision";
inline const char* kNavAssistant = "navigation_accuracy_1m_assistant";
inline const char* kReliabilityHigh = "reliability_high";
inline const char* kReliabilityMedium = "reliability_medium";
inline const char* kReliabilityLow = "reliability_low";
inline const char* kContinueExtended = "continue_mission_take_over_tasks";
inline const char* kContinue = "continue_mission";
inline const char* kHold = "hold_position";
inline const char* kReturnToBase = "return_to_base";
}  // namespace guarantees

/// Adds the six ConSerts of one UAV to `network`.
void add_uav_conserts(ConSertNetwork& network, const std::string& uav);

/// The UAV-level action lattice (Fig. 1), ordered strongest to weakest.
enum class UavAction {
  kContinueExtended,  ///< continue; can take over additional tasks
  kContinue,
  kHold,
  kReturnToBase,
  kEmergencyLand,  ///< default when no UAV-ConSert guarantee holds
};

std::string uav_action_name(UavAction a);

/// Maps a network evaluation onto the action for one UAV.
UavAction uav_action(const NetworkEvaluation& eval, const std::string& uav);

/// Mission-level decision (Fig. 1 top).
enum class MissionDecision {
  kCompleteAsPlanned,
  kRedistributeTasks,
  kCannotComplete,
};

std::string mission_decision_name(MissionDecision d);

/// The mission decider: all UAVs continuing -> as planned; at least one
/// drops out but some remaining UAV can take over its tasks ->
/// redistribution; otherwise the mission cannot be fully completed.
MissionDecision decide_mission(const std::vector<UavAction>& uav_actions);

}  // namespace sesame::conserts
