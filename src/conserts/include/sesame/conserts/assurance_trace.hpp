// Runtime assurance trace.
//
// Shifting assurance to runtime (the ConSerts premise) obliges the system
// to keep an evidence trail: which guarantees were in force when, and what
// evidence changes moved them. The recorder wraps network evaluation,
// stores a transition whenever a ConSert's best guarantee changes, and
// produces the audit timeline a post-mission safety review replays.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sesame/conserts/consert.hpp"
#include "sesame/conserts/evaluation_cache.hpp"

namespace sesame::conserts {

/// One best-guarantee transition of one ConSert.
struct GuaranteeTransition {
  double time_s = 0.0;
  std::string consert;
  /// Empty = no guarantee held (the implicit default applied).
  std::string from;
  std::string to;
};

class AssuranceTrace {
 public:
  /// The trace snapshots the network's membership (and, with
  /// `cache_evaluations`, its per-ConSert input footprints): the network
  /// must be fully built before construction and not mutated afterwards.
  /// `cache_evaluations` routes evaluation through a CachedNetworkEvaluator
  /// so unchanged evidence skips the condition-tree walks; results are
  /// identical either way.
  explicit AssuranceTrace(const ConSertNetwork& network,
                          bool cache_evaluations = true);

  /// Evaluates the network at `time_s` and records any best-guarantee
  /// transitions. Returns the evaluation.
  NetworkEvaluation evaluate(EvaluationContext& ctx, double time_s);

  const std::vector<GuaranteeTransition>& transitions() const noexcept {
    return transitions_;
  }

  /// Transitions of one ConSert only (copy).
  std::vector<GuaranteeTransition> transitions_of(
      const std::string& consert) const;

  /// The guarantee currently in force for a ConSert (empty = default).
  std::string current(const std::string& consert) const;

  std::size_t evaluations() const noexcept { return evaluations_; }

  /// Evaluation-cache counters (both 0 when caching is disabled).
  std::size_t cache_hits() const noexcept;
  std::size_t cache_misses() const noexcept;

  void clear();

 private:
  const ConSertNetwork* network_;
  std::vector<std::string> names_;  ///< network membership, snapshotted once
  std::optional<CachedNetworkEvaluator> cache_;
  std::map<std::string, std::string> current_;
  std::vector<GuaranteeTransition> transitions_;
  std::size_t evaluations_ = 0;
};

}  // namespace sesame::conserts
