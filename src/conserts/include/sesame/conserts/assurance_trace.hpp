// Runtime assurance trace.
//
// Shifting assurance to runtime (the ConSerts premise) obliges the system
// to keep an evidence trail: which guarantees were in force when, and what
// evidence changes moved them. The recorder wraps network evaluation,
// stores a transition whenever a ConSert's best guarantee changes, and
// produces the audit timeline a post-mission safety review replays.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sesame/conserts/consert.hpp"

namespace sesame::conserts {

/// One best-guarantee transition of one ConSert.
struct GuaranteeTransition {
  double time_s = 0.0;
  std::string consert;
  /// Empty = no guarantee held (the implicit default applied).
  std::string from;
  std::string to;
};

class AssuranceTrace {
 public:
  explicit AssuranceTrace(const ConSertNetwork& network);

  /// Evaluates the network at `time_s` and records any best-guarantee
  /// transitions. Returns the evaluation.
  NetworkEvaluation evaluate(EvaluationContext& ctx, double time_s);

  const std::vector<GuaranteeTransition>& transitions() const noexcept {
    return transitions_;
  }

  /// Transitions of one ConSert only (copy).
  std::vector<GuaranteeTransition> transitions_of(
      const std::string& consert) const;

  /// The guarantee currently in force for a ConSert (empty = default).
  std::string current(const std::string& consert) const;

  std::size_t evaluations() const noexcept { return evaluations_; }

  void clear();

 private:
  const ConSertNetwork* network_;
  std::map<std::string, std::string> current_;
  std::vector<GuaranteeTransition> transitions_;
  std::size_t evaluations_ = 0;
};

}  // namespace sesame::conserts
