// Dirty-flag evaluation cache for ConSert networks.
//
// Condition trees read the evaluation context exclusively through
// EvaluationContext::evidence(name) and ::granted(consert, guarantee), and
// collect_evidence()/collect_demands() enumerate exactly the names each
// tree can touch. A ConSert's satisfied set and best guarantee are
// therefore a pure function of its *input footprint*: the boolean values
// of its referenced evidence plus the grants of the ConSerts it demands
// (always evaluated earlier in topological order — self-demands and
// forward demands are impossible, the network rejects cycles).
//
// The evaluator snapshots that footprint per ConSert on every evaluation
// and replays the cached satisfied/best result when it is unchanged,
// skipping the condition-tree walk. With a 5 s ConSert period over 1 Hz
// telemetry, steady-state missions re-evaluate with identical footprints
// almost every time, so the cache converts the per-evaluation cost from
// "walk every condition tree" to "read |footprint| booleans".
//
// Invalidation contract: results are keyed on footprint values only. The
// network must not be mutated (ConSertNetwork::add) while an evaluator is
// attached; call invalidate() after any mutation to rebuild the footprint
// tables and drop cached results. Evidence/grant changes need no explicit
// invalidation — they are the footprint.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sesame/conserts/consert.hpp"

namespace sesame::conserts {

/// Caching wrapper around ConSertNetwork::evaluate with identical results.
class CachedNetworkEvaluator {
 public:
  /// Binds to a fully built network (the topological order is resolved
  /// here, so this throws on cycles/unknown demands like evaluate()).
  /// The network must outlive the evaluator.
  explicit CachedNetworkEvaluator(const ConSertNetwork& network);

  /// Drop-in replacement for network.evaluate(ctx): same grants, best map,
  /// and order, with per-ConSert results reused when the input footprint
  /// is unchanged since the previous call.
  NetworkEvaluation evaluate(EvaluationContext& ctx);

  /// Rebuilds footprints and drops all cached results. Call after the
  /// bound network gained ConSerts.
  void invalidate();

  /// ConSert evaluations skipped because the footprint was unchanged.
  std::size_t hits() const noexcept { return hits_; }
  /// ConSert evaluations that had to walk the condition trees.
  std::size_t misses() const noexcept { return misses_; }

 private:
  struct Node {
    const ConSert* consert = nullptr;
    std::string name;
    /// Sorted evidence-name footprint (union over all guarantees).
    std::vector<std::string> evidence;
    /// Sorted (consert, guarantee) demand footprint.
    std::vector<std::pair<std::string, std::string>> demands;
    /// Footprint values at the last condition-tree walk.
    std::vector<unsigned char> last_inputs;
    bool valid = false;
    std::vector<std::string> satisfied;
    std::optional<std::string> best;
  };

  const ConSertNetwork* network_;
  std::vector<Node> nodes_;  ///< in evaluation (topological) order
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;

  void rebuild();
};

}  // namespace sesame::conserts
