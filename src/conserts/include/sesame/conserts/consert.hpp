// Conditional Safety Certificates (ConSerts) runtime engine.
//
// ConSerts (Reich et al., SAFECOMP 2020) shift part of the safety argument
// to runtime: each component ships a certificate whose *guarantees* are
// conditional on *runtime evidence* (monitored boolean conditions) and on
// *demands* — guarantees that other components' ConSerts must currently
// provide. At runtime the network is evaluated bottom-up; every ConSert
// offers its highest-priority satisfied guarantee, and the top level maps
// to safe actions (Continue Mission / Hold / Return to Base / Emergency
// Land — paper Fig. 1).
//
// This module is the paper's integrating technology: the EDDI layer feeds
// evidence from SafeDrones / SafeML / DeepKnowledge / SINADRA / Security
// EDDI into a ConSert network built with these primitives.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace sesame::conserts {

class Condition;
using ConditionPtr = std::shared_ptr<const Condition>;

/// Context a condition tree is evaluated against: runtime-evidence values
/// plus the guarantees currently provided by already-evaluated ConSerts.
class EvaluationContext {
 public:
  /// Sets a runtime-evidence value (unset evidence evaluates to false).
  void set_evidence(const std::string& name, bool value);
  bool evidence(const std::string& name) const;
  bool has_evidence(const std::string& name) const;

  /// Records that `consert` currently provides `guarantee`.
  void grant(const std::string& consert, const std::string& guarantee);
  bool granted(const std::string& consert, const std::string& guarantee) const;

  /// All evidence names that were set.
  const std::map<std::string, bool>& all_evidence() const noexcept {
    return evidence_;
  }

  void clear_grants();

 private:
  std::map<std::string, bool> evidence_;
  std::set<std::pair<std::string, std::string>> grants_;
};

/// Boolean condition tree over runtime evidence and demands.
class Condition {
 public:
  virtual ~Condition() = default;
  virtual bool evaluate(const EvaluationContext& ctx) const = 0;

  /// Names of runtime evidence referenced beneath this node.
  virtual void collect_evidence(std::set<std::string>& out) const = 0;
  /// (consert, guarantee) demands referenced beneath this node.
  virtual void collect_demands(
      std::set<std::pair<std::string, std::string>>& out) const = 0;

  /// Leaf: a runtime-evidence flag.
  static ConditionPtr evidence(std::string name);
  /// Leaf: a demand on another ConSert's guarantee.
  static ConditionPtr demand(std::string consert, std::string guarantee);
  /// Constant (used for unconditional/default guarantees).
  static ConditionPtr constant(bool value);
  /// Conjunction / disjunction / negation.
  static ConditionPtr all_of(std::vector<ConditionPtr> children);
  static ConditionPtr any_of(std::vector<ConditionPtr> children);
  static ConditionPtr negate(ConditionPtr child);
};

/// A conditional guarantee. Lower `rank` = stronger/preferred guarantee;
/// the ConSert provides the satisfied guarantee with the smallest rank.
struct Guarantee {
  std::string name;
  int rank = 0;
  ConditionPtr condition;
};

/// One component's conditional safety certificate.
class ConSert {
 public:
  explicit ConSert(std::string name);

  const std::string& name() const noexcept { return name_; }

  /// Adds a guarantee; names must be unique within the ConSert, and the
  /// condition must be non-null.
  ConSert& add_guarantee(std::string name, int rank, ConditionPtr condition);

  const std::vector<Guarantee>& guarantees() const noexcept {
    return guarantees_;
  }
  bool has_guarantee(const std::string& name) const;

  /// Evaluates all guarantees against the context; returns the satisfied
  /// guarantee names (the network grants all of them — a stronger
  /// guarantee subsumes weaker ones only if modelled so).
  std::vector<std::string> satisfied(const EvaluationContext& ctx) const;

  /// The best (lowest-rank) satisfied guarantee, if any.
  std::optional<std::string> best(const EvaluationContext& ctx) const;

  /// All demands referenced by any guarantee: the ConSerts this one
  /// depends on — used for topological evaluation order.
  std::set<std::string> demanded_conserts() const;

 private:
  std::string name_;
  std::vector<Guarantee> guarantees_;
};

/// Result of evaluating a network.
struct NetworkEvaluation {
  /// Every granted (consert, guarantee) pair.
  std::set<std::pair<std::string, std::string>> grants;
  /// Best guarantee per ConSert (absent = only the implicit default).
  std::map<std::string, std::string> best;
  /// Evaluation order used (for diagnostics).
  std::vector<std::string> order;
};

/// Why a guarantee is currently not provided: the referenced runtime
/// evidence that evaluates false and the demands that are not granted.
/// For monotone (negation-free) conditions — all the Fig. 1 models — the
/// guarantee is satisfiable exactly when both lists are empty.
struct GuaranteeExplanation {
  std::string consert;
  std::string guarantee;
  bool satisfied = false;
  std::vector<std::string> missing_evidence;
  std::vector<std::pair<std::string, std::string>> missing_demands;
};

/// Explains one guarantee of one ConSert against a context (typically the
/// context after a network evaluation, so grants are populated). Throws
/// std::invalid_argument when the guarantee does not exist.
GuaranteeExplanation explain_guarantee(const ConSert& consert,
                                       const std::string& guarantee,
                                       const EvaluationContext& ctx);

/// A hierarchical network of ConSerts evaluated bottom-up.
class ConSertNetwork {
 public:
  /// Adds a ConSert; names must be unique.
  void add(ConSert consert);

  bool contains(const std::string& name) const;
  const ConSert& at(const std::string& name) const;
  std::size_t size() const noexcept { return conserts_.size(); }

  /// Names of all ConSerts in the network (sorted).
  std::vector<std::string> names() const;

  /// Evaluates the whole network against the evidence in `ctx` (grants in
  /// `ctx` are cleared first). Throws std::runtime_error on demand cycles
  /// or demands on unknown ConSerts.
  NetworkEvaluation evaluate(EvaluationContext& ctx) const;

  /// Topological (dependencies-first) evaluation order. Computed on first
  /// use and cached until the next add(); evaluate() uses this, so the
  /// Kahn's-algorithm pass runs once per network shape instead of once per
  /// evaluation. Throws like evaluate() on cycles or unknown demands.
  const std::vector<std::string>& evaluation_order() const;

 private:
  std::map<std::string, ConSert> conserts_;
  // Cached evaluation_order(); mutable because caching is not observable.
  mutable std::vector<std::string> order_cache_;
  mutable bool order_dirty_ = true;

  std::vector<std::string> topological_order() const;
};

}  // namespace sesame::conserts
