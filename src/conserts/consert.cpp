#include "sesame/conserts/consert.hpp"

#include <algorithm>
#include <stdexcept>

namespace sesame::conserts {

void EvaluationContext::set_evidence(const std::string& name, bool value) {
  evidence_[name] = value;
}

bool EvaluationContext::evidence(const std::string& name) const {
  const auto it = evidence_.find(name);
  return it != evidence_.end() && it->second;
}

bool EvaluationContext::has_evidence(const std::string& name) const {
  return evidence_.count(name) > 0;
}

void EvaluationContext::grant(const std::string& consert,
                              const std::string& guarantee) {
  grants_.insert({consert, guarantee});
}

bool EvaluationContext::granted(const std::string& consert,
                                const std::string& guarantee) const {
  return grants_.count({consert, guarantee}) > 0;
}

void EvaluationContext::clear_grants() { grants_.clear(); }

namespace {

class EvidenceCondition final : public Condition {
 public:
  explicit EvidenceCondition(std::string name) : name_(std::move(name)) {}
  bool evaluate(const EvaluationContext& ctx) const override {
    return ctx.evidence(name_);
  }
  void collect_evidence(std::set<std::string>& out) const override {
    out.insert(name_);
  }
  void collect_demands(
      std::set<std::pair<std::string, std::string>>&) const override {}

 private:
  std::string name_;
};

class DemandCondition final : public Condition {
 public:
  DemandCondition(std::string consert, std::string guarantee)
      : consert_(std::move(consert)), guarantee_(std::move(guarantee)) {}
  bool evaluate(const EvaluationContext& ctx) const override {
    return ctx.granted(consert_, guarantee_);
  }
  void collect_evidence(std::set<std::string>&) const override {}
  void collect_demands(
      std::set<std::pair<std::string, std::string>>& out) const override {
    out.insert({consert_, guarantee_});
  }

 private:
  std::string consert_;
  std::string guarantee_;
};

class ConstantCondition final : public Condition {
 public:
  explicit ConstantCondition(bool value) : value_(value) {}
  bool evaluate(const EvaluationContext&) const override { return value_; }
  void collect_evidence(std::set<std::string>&) const override {}
  void collect_demands(
      std::set<std::pair<std::string, std::string>>&) const override {}

 private:
  bool value_;
};

class GateCondition : public Condition {
 public:
  explicit GateCondition(std::vector<ConditionPtr> children)
      : children_(std::move(children)) {
    if (children_.empty()) {
      throw std::invalid_argument("ConSert gate condition without children");
    }
    for (const auto& c : children_) {
      if (!c) throw std::invalid_argument("ConSert gate: null child");
    }
  }
  void collect_evidence(std::set<std::string>& out) const override {
    for (const auto& c : children_) c->collect_evidence(out);
  }
  void collect_demands(
      std::set<std::pair<std::string, std::string>>& out) const override {
    for (const auto& c : children_) c->collect_demands(out);
  }

 protected:
  std::vector<ConditionPtr> children_;
};

class AllOfCondition final : public GateCondition {
 public:
  using GateCondition::GateCondition;
  bool evaluate(const EvaluationContext& ctx) const override {
    return std::all_of(children_.begin(), children_.end(),
                       [&](const auto& c) { return c->evaluate(ctx); });
  }
};

class AnyOfCondition final : public GateCondition {
 public:
  using GateCondition::GateCondition;
  bool evaluate(const EvaluationContext& ctx) const override {
    return std::any_of(children_.begin(), children_.end(),
                       [&](const auto& c) { return c->evaluate(ctx); });
  }
};

class NotCondition final : public Condition {
 public:
  explicit NotCondition(ConditionPtr child) : child_(std::move(child)) {
    if (!child_) throw std::invalid_argument("ConSert not: null child");
  }
  bool evaluate(const EvaluationContext& ctx) const override {
    return !child_->evaluate(ctx);
  }
  void collect_evidence(std::set<std::string>& out) const override {
    child_->collect_evidence(out);
  }
  void collect_demands(
      std::set<std::pair<std::string, std::string>>& out) const override {
    child_->collect_demands(out);
  }

 private:
  ConditionPtr child_;
};

}  // namespace

ConditionPtr Condition::evidence(std::string name) {
  return std::make_shared<EvidenceCondition>(std::move(name));
}

ConditionPtr Condition::demand(std::string consert, std::string guarantee) {
  return std::make_shared<DemandCondition>(std::move(consert),
                                           std::move(guarantee));
}

ConditionPtr Condition::constant(bool value) {
  return std::make_shared<ConstantCondition>(value);
}

ConditionPtr Condition::all_of(std::vector<ConditionPtr> children) {
  return std::make_shared<AllOfCondition>(std::move(children));
}

ConditionPtr Condition::any_of(std::vector<ConditionPtr> children) {
  return std::make_shared<AnyOfCondition>(std::move(children));
}

ConditionPtr Condition::negate(ConditionPtr child) {
  return std::make_shared<NotCondition>(std::move(child));
}

ConSert::ConSert(std::string name) : name_(std::move(name)) {
  if (name_.empty()) throw std::invalid_argument("ConSert: empty name");
}

ConSert& ConSert::add_guarantee(std::string name, int rank,
                                ConditionPtr condition) {
  if (!condition) throw std::invalid_argument("add_guarantee: null condition");
  if (has_guarantee(name)) {
    throw std::invalid_argument("add_guarantee: duplicate guarantee " + name);
  }
  guarantees_.push_back({std::move(name), rank, std::move(condition)});
  return *this;
}

bool ConSert::has_guarantee(const std::string& name) const {
  return std::any_of(guarantees_.begin(), guarantees_.end(),
                     [&](const Guarantee& g) { return g.name == name; });
}

std::vector<std::string> ConSert::satisfied(const EvaluationContext& ctx) const {
  std::vector<std::string> out;
  for (const auto& g : guarantees_) {
    if (g.condition->evaluate(ctx)) out.push_back(g.name);
  }
  return out;
}

std::optional<std::string> ConSert::best(const EvaluationContext& ctx) const {
  const Guarantee* best_g = nullptr;
  for (const auto& g : guarantees_) {
    if (!g.condition->evaluate(ctx)) continue;
    if (!best_g || g.rank < best_g->rank) best_g = &g;
  }
  if (!best_g) return std::nullopt;
  return best_g->name;
}

std::set<std::string> ConSert::demanded_conserts() const {
  std::set<std::pair<std::string, std::string>> demands;
  for (const auto& g : guarantees_) g.condition->collect_demands(demands);
  std::set<std::string> out;
  for (const auto& [consert, guarantee] : demands) {
    (void)guarantee;
    out.insert(consert);
  }
  return out;
}

GuaranteeExplanation explain_guarantee(const ConSert& consert,
                                       const std::string& guarantee,
                                       const EvaluationContext& ctx) {
  const Guarantee* target = nullptr;
  for (const auto& g : consert.guarantees()) {
    if (g.name == guarantee) {
      target = &g;
      break;
    }
  }
  if (!target) {
    throw std::invalid_argument("explain_guarantee: unknown guarantee " +
                                guarantee + " of " + consert.name());
  }
  GuaranteeExplanation out;
  out.consert = consert.name();
  out.guarantee = guarantee;
  out.satisfied = target->condition->evaluate(ctx);

  std::set<std::string> evidence;
  target->condition->collect_evidence(evidence);
  for (const auto& e : evidence) {
    if (!ctx.evidence(e)) out.missing_evidence.push_back(e);
  }
  std::set<std::pair<std::string, std::string>> demands;
  target->condition->collect_demands(demands);
  for (const auto& [c, g] : demands) {
    if (!ctx.granted(c, g)) out.missing_demands.push_back({c, g});
  }
  return out;
}

void ConSertNetwork::add(ConSert consert) {
  const std::string name = consert.name();
  if (!conserts_.emplace(name, std::move(consert)).second) {
    throw std::invalid_argument("ConSertNetwork::add: duplicate " + name);
  }
  order_dirty_ = true;
}

bool ConSertNetwork::contains(const std::string& name) const {
  return conserts_.count(name) > 0;
}

std::vector<std::string> ConSertNetwork::names() const {
  std::vector<std::string> out;
  out.reserve(conserts_.size());
  for (const auto& [name, consert] : conserts_) {
    (void)consert;
    out.push_back(name);
  }
  return out;
}

const ConSert& ConSertNetwork::at(const std::string& name) const {
  const auto it = conserts_.find(name);
  if (it == conserts_.end()) {
    throw std::out_of_range("ConSertNetwork::at: " + name);
  }
  return it->second;
}

std::vector<std::string> ConSertNetwork::topological_order() const {
  // Kahn's algorithm over the demand graph (dependencies first).
  std::map<std::string, std::set<std::string>> deps;
  for (const auto& [name, consert] : conserts_) {
    std::set<std::string> demanded = consert.demanded_conserts();
    for (const auto& d : demanded) {
      if (!conserts_.count(d)) {
        throw std::runtime_error("ConSertNetwork: '" + name +
                                 "' demands unknown ConSert '" + d + "'");
      }
    }
    deps[name] = std::move(demanded);
  }
  std::vector<std::string> order;
  while (order.size() < conserts_.size()) {
    bool progressed = false;
    for (auto& [name, remaining] : deps) {
      if (std::find(order.begin(), order.end(), name) != order.end()) continue;
      const bool ready =
          std::all_of(remaining.begin(), remaining.end(), [&](const auto& d) {
            return std::find(order.begin(), order.end(), d) != order.end();
          });
      if (ready) {
        order.push_back(name);
        progressed = true;
      }
    }
    if (!progressed) {
      throw std::runtime_error("ConSertNetwork: demand cycle detected");
    }
  }
  return order;
}

const std::vector<std::string>& ConSertNetwork::evaluation_order() const {
  if (order_dirty_) {
    order_cache_ = topological_order();
    order_dirty_ = false;
  }
  return order_cache_;
}

NetworkEvaluation ConSertNetwork::evaluate(EvaluationContext& ctx) const {
  ctx.clear_grants();
  NetworkEvaluation result;
  result.order = evaluation_order();
  for (const auto& name : result.order) {
    const ConSert& c = conserts_.at(name);
    for (const auto& g : c.satisfied(ctx)) {
      ctx.grant(name, g);
      result.grants.insert({name, g});
    }
    if (const auto b = c.best(ctx); b.has_value()) {
      result.best[name] = *b;
    }
  }
  return result;
}

}  // namespace sesame::conserts
