#include "sesame/conserts/uav_network.hpp"

#include <algorithm>
#include <stdexcept>

namespace sesame::conserts {

namespace g = guarantees;

std::string evidence_key(const std::string& uav, const std::string& field) {
  return uav + "/" + field;
}

void apply_evidence(EvaluationContext& ctx, const std::string& uav,
                    const UavEvidence& e) {
  ctx.set_evidence(evidence_key(uav, "gps_quality_good"), e.gps_quality_good);
  ctx.set_evidence(evidence_key(uav, "no_security_attack"), e.no_security_attack);
  ctx.set_evidence(evidence_key(uav, "vision_sensor_healthy"),
                   e.vision_sensor_healthy);
  ctx.set_evidence(evidence_key(uav, "safeml_confidence_high"),
                   e.safeml_confidence_high);
  ctx.set_evidence(evidence_key(uav, "comm_link_good"), e.comm_link_good);
  ctx.set_evidence(evidence_key(uav, "nearby_uav_available"),
                   e.nearby_uav_available);
  ctx.set_evidence(evidence_key(uav, "reliability_high"), e.reliability_high);
  ctx.set_evidence(evidence_key(uav, "reliability_medium"),
                   e.reliability_medium);
  ctx.set_evidence(evidence_key(uav, "reliability_low"), e.reliability_low);
}

UavConsertNames uav_consert_names(const std::string& uav) {
  UavConsertNames n;
  n.gps_localization = uav + "/gps_localization";
  n.vision_localization = uav + "/vision_localization";
  n.comm_localization = uav + "/comm_localization";
  n.navigation = uav + "/navigation";
  n.safety = uav + "/safety_eddi";
  n.uav = uav + "/uav";
  return n;
}

void add_uav_conserts(ConSertNetwork& network, const std::string& uav) {
  const UavConsertNames names = uav_consert_names(uav);
  const auto ev = [&](const char* field) {
    return Condition::evidence(evidence_key(uav, field));
  };

  // GPS-based localization: quality metrics nominal AND no active attack
  // flagged by the Security EDDI.
  ConSert gps(names.gps_localization);
  gps.add_guarantee(g::kGpsAccurate, 0,
                    Condition::all_of({ev("gps_quality_good"),
                                       ev("no_security_attack")}));
  network.add(std::move(gps));

  // Vision-based localization: healthy sensor AND SafeML confidence.
  ConSert vision(names.vision_localization);
  vision.add_guarantee(g::kVisionAvailable, 0,
                       Condition::all_of({ev("vision_sensor_healthy"),
                                          ev("safeml_confidence_high")}));
  network.add(std::move(vision));

  // Communication-based localization: link health AND a nearby assistant.
  ConSert comm(names.comm_localization);
  comm.add_guarantee(g::kCommAvailable, 0,
                     Condition::all_of({ev("comm_link_good"),
                                        ev("nearby_uav_available")}));
  network.add(std::move(comm));

  // Navigation ConSert (Fig. 1 middle): grades accuracy from localization
  // guarantees.
  ConSert nav(names.navigation);
  nav.add_guarantee(
      g::kNavHighPerformance, 0,
      Condition::demand(names.gps_localization, g::kGpsAccurate));
  nav.add_guarantee(
      g::kNavCollaborative, 1,
      Condition::demand(names.comm_localization, g::kCommAvailable));
  nav.add_guarantee(
      g::kNavVision, 2,
      Condition::demand(names.vision_localization, g::kVisionAvailable));
  nav.add_guarantee(
      g::kNavAssistant, 2,
      Condition::all_of(
          {Condition::demand(names.comm_localization, g::kCommAvailable),
           Condition::demand(names.vision_localization, g::kVisionAvailable)}));
  network.add(std::move(nav));

  // Safety EDDI ConSert: SafeDrones reliability levels.
  ConSert safety(names.safety);
  safety.add_guarantee(g::kReliabilityHigh, 0, ev("reliability_high"));
  safety.add_guarantee(g::kReliabilityMedium, 1, ev("reliability_medium"));
  safety.add_guarantee(g::kReliabilityLow, 2, ev("reliability_low"));
  network.add(std::move(safety));

  // UAV ConSert (Fig. 1 bottom): action lattice.
  ConSert top(names.uav);
  const auto nav_high =
      Condition::demand(names.navigation, g::kNavHighPerformance);
  const auto nav_collab =
      Condition::demand(names.navigation, g::kNavCollaborative);
  const auto nav_vision = Condition::demand(names.navigation, g::kNavVision);
  const auto nav_any = Condition::any_of({nav_high, nav_collab, nav_vision});
  const auto rel_high = Condition::demand(names.safety, g::kReliabilityHigh);
  const auto rel_medium =
      Condition::demand(names.safety, g::kReliabilityMedium);
  const auto rel_low = Condition::demand(names.safety, g::kReliabilityLow);
  const auto rel_at_least_medium = Condition::any_of({rel_high, rel_medium});
  const auto rel_any = Condition::any_of({rel_high, rel_medium, rel_low});

  // Continue and take over extra tasks: best navigation + high reliability.
  top.add_guarantee(g::kContinueExtended, 0,
                    Condition::all_of({nav_high, rel_high}));
  // Continue: navigation good enough (<0.75 m) + reliability >= medium.
  top.add_guarantee(
      g::kContinue, 1,
      Condition::all_of({Condition::any_of({nav_high, nav_collab}),
                         rel_at_least_medium}));
  // Hold: some navigation, any reliability estimate — wait out transients.
  top.add_guarantee(g::kHold, 2, Condition::all_of({nav_any, rel_any}));
  // Return to base: a degraded-navigation route home is still possible.
  top.add_guarantee(g::kReturnToBase, 3, nav_any);
  // Default (no guarantee): Emergency Land — implicit.
  network.add(std::move(top));
}

std::string uav_action_name(UavAction a) {
  switch (a) {
    case UavAction::kContinueExtended: return "ContinueMission+TakeOverTasks";
    case UavAction::kContinue: return "ContinueMission";
    case UavAction::kHold: return "HoldPosition";
    case UavAction::kReturnToBase: return "ReturnToBase";
    case UavAction::kEmergencyLand: return "EmergencyLand";
  }
  return "unknown";
}

UavAction uav_action(const NetworkEvaluation& eval, const std::string& uav) {
  const auto it = eval.best.find(uav_consert_names(uav).uav);
  if (it == eval.best.end()) return UavAction::kEmergencyLand;
  const std::string& best = it->second;
  if (best == g::kContinueExtended) return UavAction::kContinueExtended;
  if (best == g::kContinue) return UavAction::kContinue;
  if (best == g::kHold) return UavAction::kHold;
  if (best == g::kReturnToBase) return UavAction::kReturnToBase;
  throw std::logic_error("uav_action: unexpected guarantee " + best);
}

std::string mission_decision_name(MissionDecision d) {
  switch (d) {
    case MissionDecision::kCompleteAsPlanned: return "CompleteAsPlanned";
    case MissionDecision::kRedistributeTasks: return "RedistributeTasks";
    case MissionDecision::kCannotComplete: return "CannotComplete";
  }
  return "unknown";
}

MissionDecision decide_mission(const std::vector<UavAction>& uav_actions) {
  if (uav_actions.empty()) return MissionDecision::kCannotComplete;
  const auto continuing = [](UavAction a) {
    return a == UavAction::kContinueExtended || a == UavAction::kContinue;
  };
  if (std::all_of(uav_actions.begin(), uav_actions.end(), continuing)) {
    return MissionDecision::kCompleteAsPlanned;
  }
  // Some UAV drops out; redistribution needs at least one remaining UAV
  // able to take over additional tasks.
  const bool taker = std::any_of(
      uav_actions.begin(), uav_actions.end(),
      [](UavAction a) { return a == UavAction::kContinueExtended; });
  return taker ? MissionDecision::kRedistributeTasks
               : MissionDecision::kCannotComplete;
}

}  // namespace sesame::conserts
