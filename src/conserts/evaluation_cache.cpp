#include "sesame/conserts/evaluation_cache.hpp"

#include <set>

namespace sesame::conserts {

CachedNetworkEvaluator::CachedNetworkEvaluator(const ConSertNetwork& network)
    : network_(&network) {
  rebuild();
}

void CachedNetworkEvaluator::invalidate() { rebuild(); }

void CachedNetworkEvaluator::rebuild() {
  nodes_.clear();
  for (const auto& name : network_->evaluation_order()) {
    const ConSert& consert = network_->at(name);
    Node node;
    node.consert = &consert;
    node.name = name;
    std::set<std::string> evidence;
    std::set<std::pair<std::string, std::string>> demands;
    for (const auto& g : consert.guarantees()) {
      g.condition->collect_evidence(evidence);
      g.condition->collect_demands(demands);
    }
    node.evidence.assign(evidence.begin(), evidence.end());
    node.demands.assign(demands.begin(), demands.end());
    nodes_.push_back(std::move(node));
  }
}

NetworkEvaluation CachedNetworkEvaluator::evaluate(EvaluationContext& ctx) {
  ctx.clear_grants();
  NetworkEvaluation result;
  result.order.reserve(nodes_.size());
  std::vector<unsigned char> inputs;
  for (auto& node : nodes_) {
    result.order.push_back(node.name);
    inputs.clear();
    inputs.reserve(node.evidence.size() + node.demands.size());
    for (const auto& e : node.evidence) {
      inputs.push_back(ctx.evidence(e) ? 1 : 0);
    }
    for (const auto& [consert, guarantee] : node.demands) {
      inputs.push_back(ctx.granted(consert, guarantee) ? 1 : 0);
    }
    if (node.valid && inputs == node.last_inputs) {
      ++hits_;
    } else {
      node.satisfied = node.consert->satisfied(ctx);
      node.best = node.consert->best(ctx);
      node.last_inputs = inputs;
      node.valid = true;
      ++misses_;
    }
    for (const auto& g : node.satisfied) {
      ctx.grant(node.name, g);
      result.grants.insert({node.name, g});
    }
    if (node.best.has_value()) result.best[node.name] = *node.best;
  }
  return result;
}

}  // namespace sesame::conserts
