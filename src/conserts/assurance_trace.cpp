#include "sesame/conserts/assurance_trace.hpp"

#include <stdexcept>

namespace sesame::conserts {

AssuranceTrace::AssuranceTrace(const ConSertNetwork& network,
                               bool cache_evaluations)
    : network_(&network), names_(network.names()) {
  if (cache_evaluations) cache_.emplace(network);
}

std::size_t AssuranceTrace::cache_hits() const noexcept {
  return cache_ ? cache_->hits() : 0;
}

std::size_t AssuranceTrace::cache_misses() const noexcept {
  return cache_ ? cache_->misses() : 0;
}

NetworkEvaluation AssuranceTrace::evaluate(EvaluationContext& ctx,
                                           double time_s) {
  const NetworkEvaluation eval =
      cache_ ? cache_->evaluate(ctx) : network_->evaluate(ctx);
  ++evaluations_;
  for (const auto& name : names_) {
    const auto it = eval.best.find(name);
    const std::string now = it == eval.best.end() ? std::string{} : it->second;
    auto& prev = current_[name];
    if (prev != now) {
      transitions_.push_back({time_s, name, prev, now});
      prev = now;
    }
  }
  return eval;
}

std::vector<GuaranteeTransition> AssuranceTrace::transitions_of(
    const std::string& consert) const {
  std::vector<GuaranteeTransition> out;
  for (const auto& t : transitions_) {
    if (t.consert == consert) out.push_back(t);
  }
  return out;
}

std::string AssuranceTrace::current(const std::string& consert) const {
  const auto it = current_.find(consert);
  return it == current_.end() ? std::string{} : it->second;
}

void AssuranceTrace::clear() {
  current_.clear();
  transitions_.clear();
  evaluations_ = 0;
}

}  // namespace sesame::conserts
