#include "sesame/deepknowledge/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace sesame::deepknowledge {

namespace {

/// Collects activations per hidden neuron over a dataset:
/// result[layer][neuron] = vector of activations across inputs.
std::vector<std::vector<std::vector<double>>> collect_activations(
    const Mlp& model, const std::vector<std::vector<double>>& data) {
  std::vector<std::vector<std::vector<double>>> acts(model.num_hidden_layers());
  for (std::size_t l = 0; l < model.num_hidden_layers(); ++l) {
    acts[l].resize(model.hidden_size(l));
  }
  ActivationTrace trace;
  for (const auto& input : data) {
    model.forward_traced(input, trace);
    for (std::size_t l = 0; l < trace.size(); ++l) {
      for (std::size_t n = 0; n < trace[l].size(); ++n) {
        acts[l][n].push_back(trace[l][n]);
      }
    }
  }
  return acts;
}

/// Symmetrized histogram divergence in [0, 1]: half the L1 distance between
/// normalized histograms over the union range (total-variation distance).
double histogram_divergence(const std::vector<double>& a,
                            const std::vector<double>& b, std::size_t bins) {
  double lo = a.front(), hi = a.front();
  for (double x : a) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  for (double x : b) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  if (hi - lo < 1e-12) return 0.0;  // both distributions degenerate & equal
  std::vector<double> ha(bins, 0.0), hb(bins, 0.0);
  const auto bin_of = [&](double x) {
    auto i = static_cast<std::size_t>((x - lo) / (hi - lo) *
                                      static_cast<double>(bins));
    return std::min(i, bins - 1);
  };
  for (double x : a) ha[bin_of(x)] += 1.0 / static_cast<double>(a.size());
  for (double x : b) hb[bin_of(x)] += 1.0 / static_cast<double>(b.size());
  double l1 = 0.0;
  for (std::size_t i = 0; i < bins; ++i) l1 += std::abs(ha[i] - hb[i]);
  return 0.5 * l1;
}

}  // namespace

Analyzer::Analyzer(const Mlp& model, const std::vector<std::vector<double>>& train,
                   const std::vector<std::vector<double>>& shifted,
                   AnalysisConfig config)
    : config_(config) {
  if (train.empty() || shifted.empty()) {
    throw std::invalid_argument("Analyzer: empty dataset");
  }
  if (model.num_hidden_layers() == 0) {
    throw std::invalid_argument("Analyzer: model has no hidden layers");
  }
  if (config_.top_k == 0 || config_.buckets == 0 || config_.histogram_bins == 0) {
    throw std::invalid_argument("Analyzer: zero-size configuration");
  }

  const auto train_acts = collect_activations(model, train);
  const auto shift_acts = collect_activations(model, shifted);

  for (std::size_t l = 0; l < train_acts.size(); ++l) {
    for (std::size_t n = 0; n < train_acts[l].size(); ++n) {
      NeuronProfile p;
      p.id = {l, n};
      const auto& ta = train_acts[l][n];
      p.train_min = *std::min_element(ta.begin(), ta.end());
      p.train_max = *std::max_element(ta.begin(), ta.end());
      p.transfer_score =
          histogram_divergence(ta, shift_acts[l][n], config_.histogram_bins);
      profiles_.push_back(p);
    }
  }
  std::stable_sort(profiles_.begin(), profiles_.end(),
                   [](const NeuronProfile& a, const NeuronProfile& b) {
                     return a.transfer_score > b.transfer_score;
                   });
  const std::size_t k = std::min(config_.top_k, profiles_.size());
  tk_neurons_.assign(profiles_.begin(), profiles_.begin() + static_cast<long>(k));
  double acc = 0.0;
  for (const auto& p : tk_neurons_) acc += p.transfer_score;
  generalisation_shift_ = tk_neurons_.empty() ? 0.0 : acc / static_cast<double>(k);
}

CoverageReport Analyzer::assess(
    const Mlp& model, const std::vector<std::vector<double>>& window) const {
  if (window.empty()) {
    throw std::invalid_argument("Analyzer::assess: empty window");
  }
  // Hit set of (tk_index, bucket); out-of-range activations counted apart.
  std::set<std::pair<std::size_t, std::size_t>> hits;
  std::size_t total_obs = 0;
  std::size_t oor = 0;

  ActivationTrace trace;
  for (const auto& input : window) {
    model.forward_traced(input, trace);
    for (std::size_t t = 0; t < tk_neurons_.size(); ++t) {
      const auto& p = tk_neurons_[t];
      const double a = trace.at(p.id.layer).at(p.id.index);
      ++total_obs;
      const double span = p.train_max - p.train_min;
      if (a < p.train_min - 1e-12 || a > p.train_max + 1e-12) {
        ++oor;
        continue;
      }
      std::size_t bucket = 0;
      if (span > 1e-12) {
        bucket = static_cast<std::size_t>((a - p.train_min) / span *
                                          static_cast<double>(config_.buckets));
        bucket = std::min(bucket, config_.buckets - 1);
      }
      hits.insert({t, bucket});
    }
  }

  CoverageReport r;
  const double total_buckets =
      static_cast<double>(tk_neurons_.size() * config_.buckets);
  r.coverage = total_buckets > 0.0
                   ? static_cast<double>(hits.size()) / total_buckets
                   : 0.0;
  r.out_of_range =
      total_obs > 0 ? static_cast<double>(oor) / static_cast<double>(total_obs)
                    : 0.0;
  // Uncertainty grows as coverage falls and as activations leave the
  // validated range. The window can only populate min(|window|, buckets)
  // buckets per neuron, so normalize coverage by the attainable maximum.
  const double attainable =
      std::min<double>(static_cast<double>(window.size()),
                       static_cast<double>(config_.buckets)) /
      static_cast<double>(config_.buckets);
  const double effective_cov =
      attainable > 0.0 ? std::min(1.0, r.coverage / attainable) : 0.0;
  r.uncertainty = std::clamp(1.0 - effective_cov * (1.0 - r.out_of_range),
                             0.0, 1.0);
  r.window_size = window.size();
  return r;
}

}  // namespace sesame::deepknowledge
