// Coverage-guided test selection.
//
// DeepKnowledge is a *testing* technique at design time: inputs that hit
// previously-unexercised transfer-knowledge-neuron behaviour are the
// valuable test cases. This greedily ranks a candidate input pool by the
// marginal TK-bucket coverage each input adds — the test-suite
// prioritization workflow from the DeepKnowledge paper, reused by the SAR
// use case to pick which captured frames deserve labelling.
#pragma once

#include <cstddef>
#include <vector>

#include "sesame/deepknowledge/analysis.hpp"

namespace sesame::deepknowledge {

/// One ranked candidate.
struct RankedInput {
  std::size_t pool_index = 0;   ///< index into the candidate pool
  std::size_t new_buckets = 0;  ///< TK buckets first covered by this input
  double cumulative_coverage = 0.0;  ///< suite coverage after including it
};

/// Greedy selection: repeatedly picks the candidate covering the most
/// still-uncovered TK buckets, until `budget` inputs are selected or no
/// candidate adds coverage. Ties resolve to the lower pool index, keeping
/// the ranking deterministic. Throws std::invalid_argument on an empty
/// pool or zero budget.
std::vector<RankedInput> select_tests(
    const Analyzer& analyzer, const Mlp& model,
    const std::vector<std::vector<double>>& pool, std::size_t budget);

/// Coverage achieved by an input set (fraction of TK buckets hit) —
/// convenience wrapper over Analyzer::assess for suite-level reporting.
double suite_coverage(const Analyzer& analyzer, const Mlp& model,
                      const std::vector<std::vector<double>>& suite);

}  // namespace sesame::deepknowledge
