// DeepKnowledge analysis (Missaoui, Gerasimou, Matragkas 2024):
// generalization-driven testing of a neural network via transfer-knowledge
// (TK) neurons.
//
// Design-time phase: run the model over its training data and over a
// shifted ("generalization") dataset, compare each hidden neuron's
// activation distribution across the two domains, and select the neurons
// that transfer knowledge — those whose activation behaviour changes most
// under domain shift. Each TK neuron's observed training range is split
// into coverage buckets.
//
// Runtime phase: feed a window of inputs, record which TK-neuron buckets
// are hit, and report a coverage score. Low coverage (runtime activations
// concentrated in few, or out-of-range, buckets) indicates the model is
// operating away from its validated behaviour; the score maps to the
// uncertainty the SAR mission logic consumes.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "sesame/deepknowledge/mlp.hpp"

namespace sesame::deepknowledge {

/// Identifies a hidden neuron by layer and index.
struct NeuronId {
  std::size_t layer = 0;
  std::size_t index = 0;
  friend bool operator==(const NeuronId&, const NeuronId&) = default;
};

/// Design-time statistics of one hidden neuron.
struct NeuronProfile {
  NeuronId id;
  double train_min = 0.0;
  double train_max = 0.0;
  /// Symmetrized histogram divergence between training-domain and
  /// shifted-domain activation distributions, in [0, 1].
  double transfer_score = 0.0;
};

/// Configuration of the analysis.
struct AnalysisConfig {
  std::size_t top_k = 8;        ///< number of TK neurons to select
  std::size_t buckets = 10;     ///< coverage buckets per TK neuron
  std::size_t histogram_bins = 16;  ///< bins for the transfer-score estimate
};

/// Runtime verdict.
struct CoverageReport {
  double coverage = 0.0;       ///< fraction of TK buckets hit, in [0, 1]
  double out_of_range = 0.0;   ///< fraction of activations outside train range
  /// Uncertainty estimate in [0, 1]: high when coverage is low and/or
  /// activations fall outside the validated range.
  double uncertainty = 1.0;
  std::size_t window_size = 0;
};

/// The DeepKnowledge analyzer bound to one model.
class Analyzer {
 public:
  /// Runs the design-time phase. `train` and `shifted` are input datasets
  /// (not labels; only activations matter). Throws std::invalid_argument
  /// on empty datasets or a model without hidden layers.
  Analyzer(const Mlp& model, const std::vector<std::vector<double>>& train,
           const std::vector<std::vector<double>>& shifted,
           AnalysisConfig config = {});

  /// All hidden-neuron profiles, sorted by descending transfer score.
  const std::vector<NeuronProfile>& profiles() const noexcept {
    return profiles_;
  }

  /// The selected transfer-knowledge neurons (top_k highest scores).
  const std::vector<NeuronProfile>& tk_neurons() const noexcept {
    return tk_neurons_;
  }

  const AnalysisConfig& config() const noexcept { return config_; }

  /// Aggregate design-time generalization score in [0, 1]: mean transfer
  /// score of the TK set (higher = more of the model's knowledge shifts
  /// under domain change, i.e. weaker generalization).
  double generalisation_shift() const noexcept { return generalisation_shift_; }

  /// Evaluates coverage of a runtime input window.
  CoverageReport assess(const Mlp& model,
                        const std::vector<std::vector<double>>& window) const;

 private:
  AnalysisConfig config_;
  std::vector<NeuronProfile> profiles_;
  std::vector<NeuronProfile> tk_neurons_;
  double generalisation_shift_ = 0.0;
};

}  // namespace sesame::deepknowledge
