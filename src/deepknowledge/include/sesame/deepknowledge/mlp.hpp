// Minimal multi-layer perceptron with backpropagation training.
//
// Stands in for the tiny-YOLOv4 perception network of the paper: the
// DeepKnowledge analysis (activation traces, transfer-knowledge neurons,
// coverage) needs a real trained network whose internal neuron behaviour
// can be inspected. The synthetic person-detection features used by the
// perception module are low-dimensional, so a small fully-connected net is
// an adequate stand-in while exercising the identical analysis code paths.
#pragma once

#include <cstddef>
#include <vector>

#include "sesame/mathx/matrix.hpp"
#include "sesame/mathx/rng.hpp"

namespace sesame::deepknowledge {

/// Per-layer activations captured during a forward pass.
/// activations[l] holds the post-nonlinearity outputs of hidden layer l
/// (the output layer is not included; use Mlp::forward for outputs).
using ActivationTrace = std::vector<std::vector<double>>;

/// Fully-connected network: ReLU hidden layers, sigmoid output layer,
/// trained with SGD on binary cross-entropy. Deterministically initialized
/// from a caller-provided RNG.
class Mlp {
 public:
  /// `layer_sizes` = {inputs, hidden..., outputs}; needs >= 2 entries and
  /// at least one hidden layer for DeepKnowledge analysis to be useful.
  Mlp(const std::vector<std::size_t>& layer_sizes, mathx::Rng& rng);

  std::size_t input_size() const noexcept { return layer_sizes_.front(); }
  std::size_t output_size() const noexcept { return layer_sizes_.back(); }
  std::size_t num_hidden_layers() const noexcept { return weights_.size() - 1; }
  std::size_t hidden_size(std::size_t layer) const {
    return layer_sizes_.at(layer + 1);
  }

  /// Total number of hidden neurons across all hidden layers.
  std::size_t num_hidden_neurons() const;

  /// Forward pass; returns the sigmoid outputs.
  std::vector<double> forward(const std::vector<double>& input) const;

  /// Forward pass capturing hidden-layer activations.
  std::vector<double> forward_traced(const std::vector<double>& input,
                                     ActivationTrace& trace) const;

  /// One SGD epoch over the dataset (shuffled); returns mean loss.
  /// `targets` entries must have output_size() components in [0, 1].
  double train_epoch(const std::vector<std::vector<double>>& inputs,
                     const std::vector<std::vector<double>>& targets,
                     double learning_rate, mathx::Rng& rng);

  /// Classification accuracy with 0.5 thresholds (single-output models).
  double accuracy(const std::vector<std::vector<double>>& inputs,
                  const std::vector<std::vector<double>>& targets) const;

 private:
  std::vector<std::size_t> layer_sizes_;
  std::vector<mathx::Matrix> weights_;        // weights_[l]: out x in
  std::vector<std::vector<double>> biases_;   // biases_[l]
};

}  // namespace sesame::deepknowledge
