#include "sesame/deepknowledge/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sesame::deepknowledge {

namespace {

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

Mlp::Mlp(const std::vector<std::size_t>& layer_sizes, mathx::Rng& rng)
    : layer_sizes_(layer_sizes) {
  if (layer_sizes_.size() < 2) {
    throw std::invalid_argument("Mlp: need at least input and output layers");
  }
  for (std::size_t s : layer_sizes_) {
    if (s == 0) throw std::invalid_argument("Mlp: zero-size layer");
  }
  for (std::size_t l = 0; l + 1 < layer_sizes_.size(); ++l) {
    const std::size_t in = layer_sizes_[l];
    const std::size_t out = layer_sizes_[l + 1];
    mathx::Matrix w(out, in);
    // He initialization for the ReLU layers, Xavier-ish for the output.
    const double scale = std::sqrt(2.0 / static_cast<double>(in));
    for (std::size_t i = 0; i < out; ++i) {
      for (std::size_t j = 0; j < in; ++j) w(i, j) = rng.normal(0.0, scale);
    }
    weights_.push_back(std::move(w));
    biases_.emplace_back(out, 0.0);
  }
}

std::size_t Mlp::num_hidden_neurons() const {
  std::size_t total = 0;
  for (std::size_t l = 1; l + 1 < layer_sizes_.size(); ++l) {
    total += layer_sizes_[l];
  }
  return total;
}

std::vector<double> Mlp::forward(const std::vector<double>& input) const {
  ActivationTrace ignored;
  return forward_traced(input, ignored);
}

std::vector<double> Mlp::forward_traced(const std::vector<double>& input,
                                        ActivationTrace& trace) const {
  if (input.size() != input_size()) {
    throw std::invalid_argument("Mlp::forward: input size mismatch");
  }
  trace.clear();
  std::vector<double> x = input;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    std::vector<double> z = weights_[l].apply(x);
    for (std::size_t i = 0; i < z.size(); ++i) z[i] += biases_[l][i];
    const bool is_output = (l + 1 == weights_.size());
    if (is_output) {
      for (double& v : z) v = sigmoid(v);
    } else {
      for (double& v : z) v = std::max(0.0, v);
      trace.push_back(z);
    }
    x = std::move(z);
  }
  return x;
}

double Mlp::train_epoch(const std::vector<std::vector<double>>& inputs,
                        const std::vector<std::vector<double>>& targets,
                        double learning_rate, mathx::Rng& rng) {
  if (inputs.size() != targets.size() || inputs.empty()) {
    throw std::invalid_argument("Mlp::train_epoch: bad dataset");
  }
  std::vector<std::size_t> order(inputs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);

  double total_loss = 0.0;
  for (std::size_t idx : order) {
    const auto& input = inputs[idx];
    const auto& target = targets[idx];
    if (target.size() != output_size()) {
      throw std::invalid_argument("Mlp::train_epoch: target size mismatch");
    }

    // Forward, keeping pre-activation inputs of every layer.
    std::vector<std::vector<double>> layer_inputs;  // x fed into layer l
    std::vector<double> x = input;
    std::vector<std::vector<double>> post;  // post-activation per layer
    for (std::size_t l = 0; l < weights_.size(); ++l) {
      layer_inputs.push_back(x);
      std::vector<double> z = weights_[l].apply(x);
      for (std::size_t i = 0; i < z.size(); ++i) z[i] += biases_[l][i];
      if (l + 1 == weights_.size()) {
        for (double& v : z) v = sigmoid(v);
      } else {
        for (double& v : z) v = std::max(0.0, v);
      }
      post.push_back(z);
      x = z;
    }

    // Binary cross-entropy loss and its convenient sigmoid gradient.
    const auto& y = post.back();
    for (std::size_t i = 0; i < y.size(); ++i) {
      const double yi = std::clamp(y[i], 1e-12, 1.0 - 1e-12);
      total_loss += -(target[i] * std::log(yi) +
                      (1.0 - target[i]) * std::log(1.0 - yi));
    }

    // Backward pass. delta starts as dL/dz for the output layer.
    std::vector<double> delta(y.size());
    for (std::size_t i = 0; i < y.size(); ++i) delta[i] = y[i] - target[i];

    for (std::size_t l = weights_.size(); l-- > 0;) {
      const auto& in = layer_inputs[l];
      // Gradient step on weights/biases of layer l.
      std::vector<double> prev_delta(in.size(), 0.0);
      for (std::size_t i = 0; i < delta.size(); ++i) {
        for (std::size_t j = 0; j < in.size(); ++j) {
          prev_delta[j] += weights_[l](i, j) * delta[i];
          weights_[l](i, j) -= learning_rate * delta[i] * in[j];
        }
        biases_[l][i] -= learning_rate * delta[i];
      }
      if (l == 0) break;
      // Through the ReLU of layer l-1.
      const auto& act = post[l - 1];
      for (std::size_t j = 0; j < prev_delta.size(); ++j) {
        if (act[j] <= 0.0) prev_delta[j] = 0.0;
      }
      delta = std::move(prev_delta);
    }
  }
  return total_loss / static_cast<double>(inputs.size());
}

double Mlp::accuracy(const std::vector<std::vector<double>>& inputs,
                     const std::vector<std::vector<double>>& targets) const {
  if (inputs.size() != targets.size() || inputs.empty()) {
    throw std::invalid_argument("Mlp::accuracy: bad dataset");
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto out = forward(inputs[i]);
    bool all_match = true;
    for (std::size_t k = 0; k < out.size(); ++k) {
      if ((out[k] >= 0.5) != (targets[i][k] >= 0.5)) all_match = false;
    }
    if (all_match) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(inputs.size());
}

}  // namespace sesame::deepknowledge
