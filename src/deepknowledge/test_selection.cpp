#include "sesame/deepknowledge/test_selection.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace sesame::deepknowledge {

namespace {

/// TK buckets hit by one input: set of (tk_index, bucket); out-of-range
/// activations contribute nothing (they are anomalies, not coverage).
std::set<std::pair<std::size_t, std::size_t>> buckets_of(
    const Analyzer& analyzer, const Mlp& model,
    const std::vector<double>& input) {
  std::set<std::pair<std::size_t, std::size_t>> hit;
  ActivationTrace trace;
  model.forward_traced(input, trace);
  const std::size_t buckets = analyzer.config().buckets;
  const auto& tk = analyzer.tk_neurons();
  for (std::size_t t = 0; t < tk.size(); ++t) {
    const auto& p = tk[t];
    const double a = trace.at(p.id.layer).at(p.id.index);
    if (a < p.train_min - 1e-12 || a > p.train_max + 1e-12) continue;
    const double span = p.train_max - p.train_min;
    std::size_t bucket = 0;
    if (span > 1e-12) {
      bucket = static_cast<std::size_t>((a - p.train_min) / span *
                                        static_cast<double>(buckets));
      bucket = std::min(bucket, buckets - 1);
    }
    hit.insert({t, bucket});
  }
  return hit;
}

}  // namespace

std::vector<RankedInput> select_tests(
    const Analyzer& analyzer, const Mlp& model,
    const std::vector<std::vector<double>>& pool, std::size_t budget) {
  if (pool.empty()) throw std::invalid_argument("select_tests: empty pool");
  if (budget == 0) throw std::invalid_argument("select_tests: zero budget");

  // Precompute each candidate's bucket set.
  std::vector<std::set<std::pair<std::size_t, std::size_t>>> candidate_buckets;
  candidate_buckets.reserve(pool.size());
  for (const auto& input : pool) {
    candidate_buckets.push_back(buckets_of(analyzer, model, input));
  }

  const double total_buckets = static_cast<double>(
      analyzer.tk_neurons().size() * analyzer.config().buckets);
  std::set<std::pair<std::size_t, std::size_t>> covered;
  std::vector<bool> taken(pool.size(), false);
  std::vector<RankedInput> ranking;

  for (std::size_t round = 0; round < budget; ++round) {
    std::size_t best = pool.size();
    std::size_t best_gain = 0;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (taken[i]) continue;
      std::size_t gain = 0;
      for (const auto& b : candidate_buckets[i]) {
        if (!covered.count(b)) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == pool.size() || best_gain == 0) break;  // nothing adds coverage
    taken[best] = true;
    covered.insert(candidate_buckets[best].begin(),
                   candidate_buckets[best].end());
    RankedInput r;
    r.pool_index = best;
    r.new_buckets = best_gain;
    r.cumulative_coverage =
        total_buckets > 0.0 ? static_cast<double>(covered.size()) / total_buckets
                            : 0.0;
    ranking.push_back(r);
  }
  return ranking;
}

double suite_coverage(const Analyzer& analyzer, const Mlp& model,
                      const std::vector<std::vector<double>>& suite) {
  if (suite.empty()) return 0.0;
  std::set<std::pair<std::size_t, std::size_t>> covered;
  for (const auto& input : suite) {
    const auto hit = buckets_of(analyzer, model, input);
    covered.insert(hit.begin(), hit.end());
  }
  const double total = static_cast<double>(analyzer.tk_neurons().size() *
                                           analyzer.config().buckets);
  return total > 0.0 ? static_cast<double>(covered.size()) / total : 0.0;
}

}  // namespace sesame::deepknowledge
