#include "sesame/localization/collaborative.hpp"

#include <algorithm>
#include <stdexcept>

namespace sesame::localization {

CollaborativeLocalizer::CollaborativeLocalizer(sim::World& world,
                                               std::string affected,
                                               std::vector<std::string> assistants,
                                               ObservationModel model)
    : world_(&world), affected_(std::move(affected)),
      assistants_(std::move(assistants)), model_(model) {
  if (model_.detection_range_m <= 0.0 || model_.range_noise_frac < 0.0 ||
      model_.bearing_noise_deg < 0.0 || model_.detection_probability <= 0.0 ||
      model_.detection_probability > 1.0) {
    throw std::invalid_argument("CollaborativeLocalizer: bad observation model");
  }
  if (assistants_.empty()) {
    throw std::invalid_argument("CollaborativeLocalizer: no assistants");
  }
  world_->uav_by_name(affected_);  // throws early on unknown name
  for (const auto& a : assistants_) {
    if (a == affected_) {
      throw std::invalid_argument(
          "CollaborativeLocalizer: affected UAV cannot assist itself");
    }
    world_->uav_by_name(a);
  }
}

std::optional<CollaborativeFix> CollaborativeLocalizer::update() {
  last_attempts_.clear();
  const sim::Uav& target = world_->uav_by_name(affected_);
  const geo::GeoPoint target_true = target.true_geo();

  std::vector<geo::RangeBearingObservation> observations;
  for (const auto& name : assistants_) {
    const sim::Uav& assistant = world_->uav_by_name(name);
    AssistantObservation attempt;
    attempt.assistant = name;
    // Observation geometry is physical: true positions drive visibility.
    const geo::GeoPoint assistant_true = assistant.true_geo();
    attempt.true_range_m = geo::slant_range_m(assistant_true, target_true);
    if (attempt.true_range_m <= model_.detection_range_m &&
        world_->rng().bernoulli(model_.detection_probability)) {
      attempt.detected = true;
      geo::RangeBearingObservation obs;
      // The assistant reports from its *own estimated* position — its GPS
      // is healthy, so this is near-truth; errors propagate realistically.
      obs.observer = assistant.estimated_geo();
      const double true_ground =
          geo::haversine_m(assistant_true, target_true);
      const double sigma =
          std::max(0.5, model_.range_noise_frac * attempt.true_range_m);
      obs.range_m =
          std::max(0.0, true_ground + world_->rng().normal(0.0, sigma));
      obs.bearing_deg = geo::bearing_deg(assistant_true, target_true) +
                        world_->rng().normal(0.0, model_.bearing_noise_deg);
      obs.range_sigma_m = sigma;
      observations.push_back(obs);
    }
    last_attempts_.push_back(attempt);
  }

  if (observations.empty()) return std::nullopt;

  CollaborativeFix result;
  if (model_.method == FixMethod::kRangeOnly) {
    // Trilateration path: drop the bearings, solve from ranges alone.
    std::vector<geo::RangeObservation> ranges;
    ranges.reserve(observations.size());
    for (const auto& o : observations) {
      geo::RangeObservation r;
      r.observer = o.observer;
      r.range_m = o.range_m;
      r.range_sigma_m = o.range_sigma_m;
      ranges.push_back(r);
    }
    const auto fix = geo::trilaterate(ranges);
    if (!fix.has_value()) return std::nullopt;  // < 3 ranges or degenerate
    result.fix = *fix;
  } else {
    result.fix = geo::fuse_range_bearing(observations);
  }
  result.fix.position.alt_m = target_true.alt_m;
  result.observations_used = observations.size();
  result.true_error_m = geo::haversine_m(result.fix.position, target_true);

  world_->bus().publish(sim::position_fix_topic(affected_), result.fix.position,
                        "collaborative_localization", world_->time_s());
  ++fixes_published_;
  last_fix_ = result;
  return result;
}

SafeLandingGuide::SafeLandingGuide(sim::World& world,
                                   CollaborativeLocalizer& localizer,
                                   geo::EnuPoint safe_point,
                                   double capture_radius_m)
    : world_(&world), localizer_(&localizer), safe_point_(safe_point),
      capture_radius_m_(capture_radius_m) {
  if (capture_radius_m_ <= 0.0) {
    throw std::invalid_argument("SafeLandingGuide: non-positive capture radius");
  }
}

bool SafeLandingGuide::step() {
  sim::Uav& uav = world_->uav_by_name(localizer_->affected());
  if (uav.mode() == sim::FlightMode::kLanded) return false;

  localizer_->update();

  if (!descent_commanded_) {
    if (!waypoint_set_) {
      uav.clear_waypoints();
      geo::EnuPoint approach = safe_point_;
      if (approach.up_m <= 0.0) approach.up_m = uav.true_position().up_m;
      uav.add_waypoint(approach);
      uav.command_resume_mission();
      waypoint_set_ = true;
    }
    // The descent decision uses the *estimated* position (CL-driven): the
    // gap between estimate and truth at touchdown is the landing error the
    // Fig. 7 experiment measures.
    const double est_distance =
        geo::enu_ground_distance_m(uav.estimated_position(), safe_point_);
    if (est_distance <= capture_radius_m_) {
      uav.command_emergency_land();  // controlled descent over the pad
      descent_commanded_ = true;
    }
  }
  return true;
}

bool SafeLandingGuide::landed() const {
  return world_->uav_by_name(localizer_->affected()).mode() ==
         sim::FlightMode::kLanded;
}

double SafeLandingGuide::true_distance_to_target_m() const {
  const sim::Uav& uav = world_->uav_by_name(localizer_->affected());
  return geo::enu_ground_distance_m(uav.true_position(), safe_point_);
}

}  // namespace sesame::localization
