// Collaborative Localization (paper Section III-C).
//
// When a UAV loses trustworthy positioning (GPS spoofed/jammed), nearby
// UAVs detect it with their RGB cameras (tiny-YOLOv4 in the paper, a
// detection-probability model here), estimate range via monocular depth
// (a range-proportional noise model here) and bearing, and the fused fix —
// trigonometric projection + Haversine refinement (sesame::geo) — is
// published on the affected UAV's position-fix topic. The affected UAV
// then navigates on collaborative fixes alone, enabling the Fig. 7
// safe landing without any GPS signal.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sesame/geo/fix.hpp"
#include "sesame/sim/world.hpp"

namespace sesame::localization {

/// How assistant observations are fused into a fix.
enum class FixMethod {
  /// Camera bearing + monocular-depth range per assistant, fused by
  /// trigonometric projection (the paper's primary CL method). Works from
  /// a single assistant.
  kRangeBearing,
  /// Range-only trilateration (e.g. RF time-of-flight between vehicles);
  /// needs at least three assistants with usable ranges but no camera
  /// pointing/bearing estimate at all.
  kRangeOnly,
};

/// Sensor model of an assistant observing the affected UAV.
struct ObservationModel {
  /// Maximum slant range at which the target is detectable.
  double detection_range_m = 150.0;
  /// Probability of detecting the target when within range (per attempt).
  double detection_probability = 0.95;
  /// Monocular-depth range error: sigma = range_noise_frac * range.
  double range_noise_frac = 0.04;
  /// Bearing estimation error (1 sigma, degrees).
  double bearing_noise_deg = 2.0;
  FixMethod method = FixMethod::kRangeBearing;
};

/// One assistant's observation attempt (diagnostics).
struct AssistantObservation {
  std::string assistant;
  bool detected = false;
  double true_range_m = 0.0;
};

/// Result of one collaborative update.
struct CollaborativeFix {
  geo::FixResult fix;
  std::size_t observations_used = 0;
  double true_error_m = 0.0;  ///< ground truth error (simulation only)
};

/// Periodically localizes one affected UAV using its fleet neighbours.
class CollaborativeLocalizer {
 public:
  /// `affected` must name a UAV in `world`; `assistants` are the observing
  /// UAVs (the affected UAV itself is rejected).
  CollaborativeLocalizer(sim::World& world, std::string affected,
                         std::vector<std::string> assistants,
                         ObservationModel model = {});

  const std::string& affected() const noexcept { return affected_; }

  /// Performs one observation round: each assistant within range attempts
  /// a detection; successful observations are fused and the fix published
  /// on position_fix_topic(affected). Returns nullopt when fewer than one
  /// observation succeeded.
  std::optional<CollaborativeFix> update();

  /// Observation attempts of the last update (diagnostics).
  const std::vector<AssistantObservation>& last_attempts() const noexcept {
    return last_attempts_;
  }

  /// Most recent successful fix, if any.
  const std::optional<CollaborativeFix>& last_fix() const noexcept {
    return last_fix_;
  }

  std::size_t fixes_published() const noexcept { return fixes_published_; }

 private:
  sim::World* world_;
  std::string affected_;
  std::vector<std::string> assistants_;
  ObservationModel model_;
  std::vector<AssistantObservation> last_attempts_;
  std::optional<CollaborativeFix> last_fix_;
  std::size_t fixes_published_ = 0;
};

/// Drives an affected UAV to a safe landing point on collaborative fixes
/// alone (paper Fig. 7): navigates to the point, then lands.
class SafeLandingGuide {
 public:
  /// `safe_point` is the designated landing location (world ENU; up_m is
  /// the approach altitude).
  SafeLandingGuide(sim::World& world, CollaborativeLocalizer& localizer,
                   geo::EnuPoint safe_point,
                   double capture_radius_m = 5.0);

  /// Advances the guidance by one tick: runs a localization round, steers
  /// the UAV, and commands the final descent once over the safe point.
  /// Call after each world step. Returns true while still guiding.
  bool step();

  bool landed() const;

  /// Ground distance from the UAV's true position to the safe point.
  double true_distance_to_target_m() const;

 private:
  sim::World* world_;
  CollaborativeLocalizer* localizer_;
  geo::EnuPoint safe_point_;
  double capture_radius_m_;
  bool descent_commanded_ = false;
  bool waypoint_set_ = false;
};

}  // namespace sesame::localization
