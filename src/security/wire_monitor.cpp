#include "sesame/security/wire_monitor.hpp"

#include <stdexcept>
#include <string>

#include "sesame/security/ids.hpp"

namespace sesame::security {

WireMonitor::WireMonitor(mw::Bus& bus, std::string link_name,
                         WireMonitorConfig config)
    : bus_(&bus), link_(std::move(link_name)), config_(config) {
  if (config_.tamper_threshold == 0 || config_.replay_threshold == 0) {
    throw std::invalid_argument("WireMonitor: thresholds must be >= 1");
  }
}

void WireMonitor::observe(const mw::LinkCounters& counters, double now_s) {
  const std::uint64_t tamper_now = counters.crc_errors + counters.cobs_errors +
                                   counters.auth_failures +
                                   counters.malformed_frames;
  const std::uint64_t tamper_last = last_.crc_errors + last_.cobs_errors +
                                    last_.auth_failures +
                                    last_.malformed_frames;
  const std::uint64_t tamper_delta = tamper_now - tamper_last;
  const std::uint64_t replay_delta =
      counters.replays_rejected - last_.replays_rejected;
  last_ = counters;

  if (tamper_delta > 0) {
    if (tamper_.pending == 0) tamper_.onset_s = now_s;
    tamper_.pending += tamper_delta;
  }
  if (replay_delta > 0) {
    if (replay_.pending == 0) replay_.onset_s = now_s;
    replay_.pending += replay_delta;
  }

  if (replay_.pending >= config_.replay_threshold) {
    raise("wire_replay", "CAPEC-594", replay_, replay_.pending, now_s);
  }
  if (tamper_.pending >= config_.tamper_threshold) {
    raise("wire_tampering", "CAPEC-94", tamper_, tamper_.pending, now_s);
  }
}

void WireMonitor::raise(const char* rule, const char* capec,
                        Evidence& evidence, std::uint64_t count,
                        double now_s) {
  ++alerts_raised_;
  const double latency_s =
      evidence.onset_s >= 0.0 ? now_s - evidence.onset_s : 0.0;
  if (obs_ != nullptr) {
    obs_->metrics
        .counter("sesame.security.wire_alerts_total", {{"rule", rule}})
        .inc();
    obs_->metrics
        .histogram("sesame.security.wire_detection_latency_s",
                   {{"link", link_}}, obs::duration_buckets_s())
        .observe(latency_s);
    obs_->tracer.event("sesame.security.wire_alert",
                       {{"rule", rule},
                        {"capec", capec},
                        {"link", link_},
                        {"count", std::to_string(count)},
                        {"time_s", obs::attr_value(now_s)},
                        {"latency_s", obs::attr_value(latency_s)}});
  }
  IdsAlert alert;
  alert.rule = rule;
  alert.capec_id = capec;
  alert.topic = "wire/" + link_;
  alert.source = "wire/" + link_;
  alert.time_s = now_s;
  alert.detail = std::to_string(count) + " frame(s), first evidence at " +
                 std::to_string(evidence.onset_s) + " s";
  bus_->publish(ids_alert_topic(), alert, "wire_monitor", now_s);
  // Re-arm: the next alert needs a fresh threshold's worth of evidence.
  evidence.pending = 0;
  evidence.onset_s = -1.0;
}

}  // namespace sesame::security
