// Attack trees with runtime state.
//
// Each Security EDDI is bound to one attack tree describing how an
// adversary reaches a goal (root) through attack steps (leaves) combined
// by AND/OR gates. Leaves carry the CAPEC-style metadata the paper lists
// (capecId, title, description, severity, likelihood, mitigation). At
// runtime, IDS alerts trigger leaves; when enough leaves fire for the root
// to evaluate true, the adversary's end goal is considered achieved and a
// critical security event is raised.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace sesame::security {

enum class Severity { kLow, kMedium, kHigh, kCritical };

std::string severity_name(Severity s);

/// CAPEC-style attack-step metadata (paper Section III-B).
struct AttackStepInfo {
  std::string capec_id;     ///< e.g. "CAPEC-627" (counterfeit GPS signals)
  std::string title;
  std::string description;
  Severity severity = Severity::kMedium;
  double likelihood = 0.5;  ///< a-priori likelihood in [0, 1]
  std::string mitigation;
};

/// Tree node kinds.
enum class AttackNodeKind { kLeaf, kAnd, kOr };

/// A node in the attack tree. Trees are built once (immutable structure)
/// while trigger state is mutable at runtime.
class AttackNode {
 public:
  static std::shared_ptr<AttackNode> leaf(AttackStepInfo info);
  static std::shared_ptr<AttackNode> and_node(
      std::string title, std::vector<std::shared_ptr<AttackNode>> children);
  static std::shared_ptr<AttackNode> or_node(
      std::string title, std::vector<std::shared_ptr<AttackNode>> children);

  AttackNodeKind kind() const noexcept { return kind_; }
  const std::string& title() const noexcept { return info_.title; }
  const AttackStepInfo& info() const noexcept { return info_; }
  const std::vector<std::shared_ptr<AttackNode>>& children() const noexcept {
    return children_;
  }

  /// Leaf trigger state.
  bool triggered() const noexcept { return triggered_; }
  void set_triggered(bool t);

  /// Evaluates whether this subtree's goal is currently achieved.
  bool achieved() const;

  /// Collects the titles of triggered leaves that contribute to an
  /// achieved subtree (the attack path for reporting).
  void collect_active_path(std::vector<std::string>& out) const;

 private:
  AttackNode(AttackNodeKind kind, AttackStepInfo info,
             std::vector<std::shared_ptr<AttackNode>> children);

  AttackNodeKind kind_;
  AttackStepInfo info_;
  std::vector<std::shared_ptr<AttackNode>> children_;
  bool triggered_ = false;
};

/// A named attack tree with leaf lookup and reset.
class AttackTree {
 public:
  AttackTree(std::string name, std::shared_ptr<AttackNode> root);

  const std::string& name() const noexcept { return name_; }
  const std::shared_ptr<AttackNode>& root() const noexcept { return root_; }

  /// Finds a leaf by CAPEC id; nullptr when absent.
  std::shared_ptr<AttackNode> find_leaf(const std::string& capec_id) const;

  /// Triggers the leaf with the given CAPEC id; returns false when absent.
  bool trigger(const std::string& capec_id);

  /// True when the root goal is achieved.
  bool goal_achieved() const { return root_->achieved(); }

  /// Active (triggered) attack path titles, root-goal context included.
  std::vector<std::string> active_path() const;

  /// Highest severity among triggered leaves; nullopt when none triggered.
  std::optional<Severity> max_triggered_severity() const;

  /// Mitigations of all triggered leaves.
  std::vector<std::string> mitigations() const;

  /// Clears all trigger state.
  void reset();

 private:
  std::string name_;
  std::shared_ptr<AttackNode> root_;

  template <typename Fn>
  void for_each_leaf(const std::shared_ptr<AttackNode>& node, Fn&& fn) const;
};

/// The ROS message-spoofing attack tree of the paper's use case:
///   goal: manipulate area mapping (root, AND)
///     - gain bus access (OR: open network / insider)
///     - inject falsified messages (leaf, CAPEC-594)
///     - evade detection (leaf)
/// plus a GPS-spoofing branch (CAPEC-627).
AttackTree make_spoofing_attack_tree();

/// Denial-of-navigation attack tree: GPS jamming (CAPEC-601 obstruction)
/// or command-link flooding (CAPEC-125) deny the fleet its navigation or
/// C2 capability. The paper notes each Security EDDI is tailored to one
/// attack tree; deployments run one EDDI per tree side by side.
AttackTree make_jamming_attack_tree();

}  // namespace sesame::security
