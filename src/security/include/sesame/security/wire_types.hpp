// Wire schemas for the security-layer payloads (docs/PROTOCOL.md §5):
// IDS alerts and attack-tree security events, so a ground-side analysis
// process can watch `ids/alerts` and `security/events` from across the
// bridge — the paper's MQTT-broker topology, reproduced over the wire
// transport.
#pragma once

#include <cstdint>

#include "sesame/mw/codec.hpp"

namespace sesame::security {

/// security::IdsAlert — `ids/alerts`.
inline constexpr std::uint32_t kIdsAlertTag = 0x20;
/// security::SecurityEvent — `security/events`.
inline constexpr std::uint32_t kSecurityEventTag = 0x21;

/// Registers IdsAlert and SecurityEvent on `codec`.
void register_wire_types(mw::Codec& codec);

}  // namespace sesame::security
