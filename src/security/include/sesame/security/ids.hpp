// Rule-based Intrusion Detection System.
//
// Taps the message bus (the paper's IDS inspects network traffic) and
// publishes alerts on the broker topic `ids/alerts`, which Security EDDIs
// subscribe to — mirroring the paper's MQTT alerting pipeline. Rules:
//   - unauthorized source: a topic's traffic must come from its registered
//     publisher; anything else alerts (identity/injection, CAPEC-151/594).
//   - position jump: consecutive telemetry/fix positions for one UAV that
//     imply a physically impossible velocity (GPS walk-off, CAPEC-627).
//   - flooding: per-source message rate above a threshold (CAPEC-125).
#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "sesame/geo/geodesy.hpp"
#include "sesame/mw/bus.hpp"
#include "sesame/obs/observability.hpp"

namespace sesame::security {

/// Alert published on `ids/alerts`.
struct IdsAlert {
  std::string rule;        ///< "unauthorized_source" | "position_jump" | "flooding"
  std::string capec_id;    ///< attack-tree leaf this maps to
  std::string topic;       ///< offending topic
  std::string source;      ///< offending publisher
  double time_s = 0.0;
  std::string detail;
};

/// Broker topic the IDS publishes alerts on.
inline const char* ids_alert_topic() { return "ids/alerts"; }

struct IdsConfig {
  /// Maximum plausible UAV ground speed; faster implied motion alerts.
  double max_speed_mps = 25.0;
  /// Messages per source within `flood_window_s` before a flooding alert.
  std::size_t flood_threshold = 50;
  double flood_window_s = 1.0;
};

class IntrusionDetectionSystem {
 public:
  /// Attaches to the bus; alerts are published back onto the same bus
  /// under `ids/alerts` (the in-process stand-in for the MQTT broker).
  IntrusionDetectionSystem(mw::Bus& bus, IdsConfig config = {});

  /// Registers the only legitimate publisher for a topic.
  void authorize(const std::string& topic, const std::string& source);

  /// Registers a topic as carrying geo::GeoPoint positions for one UAV so
  /// the position-jump rule can track it.
  void track_position_topic(const std::string& topic);

  std::size_t alerts_raised() const noexcept { return alerts_raised_; }

  /// Attaches (nullptr: detaches) observability: every alert increments
  /// `sesame.security.ids_alerts_total{rule}` and emits a structured
  /// `sesame.security.ids_alert` trace event carrying the rule, CAPEC id,
  /// topic, source and mission time.
  void set_observability(obs::Observability* o) noexcept { obs_ = o; }

 private:
  mw::Bus* bus_;
  obs::Observability* obs_ = nullptr;
  IdsConfig config_;
  mw::Subscription tap_;
  // less<> so string_view headers are looked up without a string allocation
  std::map<std::string, std::string, std::less<>> authorized_;  // topic -> source
  std::map<std::string, std::pair<geo::GeoPoint, double>, std::less<>>
      last_position_;
  std::map<std::string, std::deque<double>, std::less<>>
      recent_times_;  // per source
  std::vector<std::string> position_topics_;
  std::size_t alerts_raised_ = 0;
  bool publishing_alert_ = false;

  void inspect(const mw::MessageHeader& h, const std::any& payload,
               std::type_index type);
  void raise(IdsAlert alert);
};

}  // namespace sesame::security
