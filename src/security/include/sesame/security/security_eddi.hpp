// Security EDDI: the runtime attack monitor.
//
// Each Security EDDI is bound to one attack tree (paper: "a Python script
// tailored to a specific attack tree"). It subscribes to the IDS alert
// topic, maps each alert's CAPEC id onto tree leaves, and when the root
// goal becomes achieved raises a critical security event carrying the
// traced attack path and the tree's mitigations — the hook ConSerts use to
// trigger Collaborative Localization and the safe landing.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sesame/mw/bus.hpp"
#include "sesame/security/attack_tree.hpp"
#include "sesame/security/ids.hpp"

namespace sesame::security {

/// Raised when an attack tree's root goal is achieved.
struct SecurityEvent {
  std::string tree;                 ///< attack-tree name
  double time_s = 0.0;              ///< time of the completing alert
  Severity severity = Severity::kHigh;
  std::vector<std::string> attack_path;  ///< root-to-leaf achieved titles
  std::vector<std::string> mitigations;
  /// Sources implicated by contributing alerts (e.g. the spoofing node).
  std::vector<std::string> suspicious_sources;
};

/// Topic critical security events are published on.
inline const char* security_event_topic() { return "security/events"; }

class SecurityEddi {
 public:
  /// Attaches to the bus and starts monitoring IDS alerts against `tree`.
  SecurityEddi(mw::Bus& bus, AttackTree tree);

  const AttackTree& tree() const noexcept { return tree_; }

  /// Number of alerts consumed / events raised so far.
  std::size_t alerts_consumed() const noexcept { return alerts_consumed_; }
  std::size_t events_raised() const noexcept { return events_raised_; }

  /// True once the goal was reached at least once (sticky until reset).
  bool attack_detected() const noexcept { return events_raised_ > 0; }

  /// Optional direct callback in addition to the bus publication.
  void on_event(std::function<void(const SecurityEvent&)> callback);

  /// Clears the tree's trigger state (after mitigation / investigation).
  void reset();

 private:
  mw::Bus* bus_;
  AttackTree tree_;
  mw::Subscription alert_subscription_;
  std::vector<std::string> suspicious_sources_;
  std::function<void(const SecurityEvent&)> callback_;
  std::size_t alerts_consumed_ = 0;
  std::size_t events_raised_ = 0;
  bool goal_reported_ = false;

  void handle_alert(const IdsAlert& alert);
};

}  // namespace sesame::security
