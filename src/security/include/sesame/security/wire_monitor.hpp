// Wire-link intrusion evidence (ROADMAP item 1 leftover).
//
// The framed transport (mw::Framing) already *counts* hostile or corrupt
// wire traffic — CRC failures, COBS garbage, failed frame authentication,
// replayed sequence numbers — but until now nothing consumed those
// counters as security evidence: an attacker replaying captured frames at
// a bridge was invisible to the Security EDDI. A WireMonitor closes that
// gap. The link owner (bus-bridge pump loop, the campaign service's wire
// listener) polls it with the link's cumulative `mw::LinkCounters` at
// known mission times; the monitor turns counter deltas into `IdsAlert`s
// on the ordinary `ids/alerts` topic:
//
//   - replays_rejected advancing        -> rule "wire_replay", CAPEC-594
//     (captured traffic re-injected on the link = traffic injection);
//   - crc/cobs/auth/malformed advancing -> rule "wire_tampering", CAPEC-94
//     (an adversary-in-the-middle mangling authenticated frames), after a
//     configurable evidence threshold so a single bit-flip on a noisy
//     serial link does not page anyone.
//
// Security EDDIs consume these like any IDS alert: CAPEC-594 completes the
// spoofing tree's injection AND-branch, CAPEC-94 is a leaf of its own (see
// make_spoofing_attack_tree). Detection latency — first suspicious delta
// to the alert that crossed the threshold — lands in the report schema as
// the `sesame.security.wire_detection_latency_s{link}` histogram next to
// `sesame.security.wire_alerts_total{rule}`.
#pragma once

#include <cstdint>
#include <string>

#include "sesame/mw/bus.hpp"
#include "sesame/mw/framing.hpp"
#include "sesame/obs/observability.hpp"

namespace sesame::security {

struct WireMonitorConfig {
  /// Tampering evidence (crc + cobs + auth + malformed deltas) that must
  /// accumulate since the last tampering alert before the next one fires.
  /// 1 alerts on the first corrupt frame; the default tolerates stray
  /// noise on a healthy link. Must be >= 1.
  std::uint64_t tamper_threshold = 3;
  /// Replayed frames before a replay alert; replays never happen by
  /// accident on a compliant peer, so the default alerts immediately.
  std::uint64_t replay_threshold = 1;
};

/// Turns one link's `mw::LinkCounters` into IDS evidence. Single-threaded,
/// like the bus it publishes on; one monitor per link endpoint.
class WireMonitor {
 public:
  /// Alerts are published on `bus` under `ids_alert_topic()` with source
  /// "wire/<link_name>". Throws std::invalid_argument on a zero threshold.
  WireMonitor(mw::Bus& bus, std::string link_name,
              WireMonitorConfig config = {});

  /// Attaches (nullptr: detaches) observability: alerts increment
  /// `sesame.security.wire_alerts_total{rule}` and observe first-evidence
  /// -> alert latency in `sesame.security.wire_detection_latency_s{link}`.
  void set_observability(obs::Observability* o) noexcept { obs_ = o; }

  /// Polls the link's cumulative counters at mission time `now_s`.
  /// Deltas against the previous call become evidence; crossing a
  /// threshold publishes the alert synchronously. Counters must be from
  /// the same Framing instance every call (cumulative, never reset).
  void observe(const mw::LinkCounters& counters, double now_s);

  std::size_t alerts_raised() const noexcept { return alerts_raised_; }

 private:
  struct Evidence {
    std::uint64_t pending = 0;   ///< deltas since the last alert
    double onset_s = -1.0;       ///< time of the first pending delta
  };

  void raise(const char* rule, const char* capec, Evidence& evidence,
             std::uint64_t count, double now_s);

  mw::Bus* bus_;
  obs::Observability* obs_ = nullptr;
  std::string link_;
  WireMonitorConfig config_;
  mw::LinkCounters last_;  ///< zero-initialised: the first observe() sees
                           ///< everything since the link came up
  Evidence tamper_;
  Evidence replay_;
  std::size_t alerts_raised_ = 0;
};

}  // namespace sesame::security
