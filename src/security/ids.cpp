#include "sesame/security/ids.hpp"

#include <algorithm>
#include <sstream>

namespace sesame::security {

IntrusionDetectionSystem::IntrusionDetectionSystem(mw::Bus& bus, IdsConfig config)
    : bus_(&bus), config_(config) {
  if (config_.max_speed_mps <= 0.0 || config_.flood_threshold == 0 ||
      config_.flood_window_s <= 0.0) {
    throw std::invalid_argument("IntrusionDetectionSystem: bad config");
  }
  tap_ = bus_->add_tap([this](const mw::MessageHeader& h, const std::any& payload,
                              std::type_index type) {
    inspect(h, payload, type);
  });
}

void IntrusionDetectionSystem::authorize(const std::string& topic,
                                         const std::string& source) {
  authorized_[topic] = source;
}

void IntrusionDetectionSystem::track_position_topic(const std::string& topic) {
  position_topics_.push_back(topic);
}

void IntrusionDetectionSystem::inspect(const mw::MessageHeader& h,
                                       const std::any& payload,
                                       std::type_index type) {
  // Ignore our own alert traffic (and avoid re-entrant self-inspection).
  if (publishing_alert_ || h.topic == ids_alert_topic()) return;

  // Rule 1: unauthorized source.
  if (const auto it = authorized_.find(h.topic); it != authorized_.end()) {
    if (it->second != h.source) {
      IdsAlert a;
      a.rule = "unauthorized_source";
      a.capec_id = "CAPEC-594";
      a.topic = h.topic;
      a.source = h.source;
      a.time_s = h.time_s;
      a.detail = "expected publisher '" + it->second + "'";
      raise(std::move(a));
    }
  }

  // Rule 2: implied-velocity jump on tracked position topics.
  if (type == std::type_index(typeid(geo::GeoPoint)) &&
      std::find(position_topics_.begin(), position_topics_.end(), h.topic) !=
          position_topics_.end()) {
    const auto& p =
        std::any_cast<std::reference_wrapper<const geo::GeoPoint>>(payload).get();
    const auto it = last_position_.find(h.topic);
    if (it != last_position_.end()) {
      const double dt = h.time_s - it->second.second;
      if (dt > 1e-6) {
        const double speed = geo::haversine_m(it->second.first, p) / dt;
        if (speed > config_.max_speed_mps) {
          IdsAlert a;
          a.rule = "position_jump";
          a.capec_id = "CAPEC-627";
          a.topic = h.topic;
          a.source = h.source;
          a.time_s = h.time_s;
          std::ostringstream os;
          os << "implied speed " << speed << " m/s exceeds "
             << config_.max_speed_mps;
          a.detail = os.str();
          raise(std::move(a));
        }
      }
      it->second = {p, h.time_s};
    } else {
      last_position_.emplace(h.topic, std::pair{p, h.time_s});
    }
  }

  // Rule 3: flooding per source.
  auto times_it = recent_times_.find(h.source);
  if (times_it == recent_times_.end()) {
    times_it = recent_times_.emplace(h.source, std::deque<double>{}).first;
  }
  auto& times = times_it->second;
  times.push_back(h.time_s);
  while (!times.empty() && times.front() < h.time_s - config_.flood_window_s) {
    times.pop_front();
  }
  if (times.size() > config_.flood_threshold) {
    IdsAlert a;
    a.rule = "flooding";
    a.capec_id = "CAPEC-125";
    a.topic = h.topic;
    a.source = h.source;
    a.time_s = h.time_s;
    a.detail = std::to_string(times.size()) + " msgs in window";
    raise(std::move(a));
    times.clear();  // re-arm instead of alerting on every further message
  }
}

void IntrusionDetectionSystem::raise(IdsAlert alert) {
  ++alerts_raised_;
  if (obs_ != nullptr) {
    obs_->metrics.counter("sesame.security.ids_alerts_total",
                          {{"rule", alert.rule}})
        .inc();
    obs_->tracer.event("sesame.security.ids_alert",
                       {{"rule", alert.rule},
                        {"capec", alert.capec_id},
                        {"topic", alert.topic},
                        {"source", alert.source},
                        {"time_s", obs::attr_value(alert.time_s)},
                        {"detail", alert.detail}});
  }
  publishing_alert_ = true;
  bus_->publish(ids_alert_topic(), alert, "ids", alert.time_s);
  publishing_alert_ = false;
}

}  // namespace sesame::security
