#include "sesame/security/attack_tree.hpp"

#include <algorithm>
#include <stdexcept>

namespace sesame::security {

std::string severity_name(Severity s) {
  switch (s) {
    case Severity::kLow: return "Low";
    case Severity::kMedium: return "Medium";
    case Severity::kHigh: return "High";
    case Severity::kCritical: return "Critical";
  }
  return "unknown";
}

AttackNode::AttackNode(AttackNodeKind kind, AttackStepInfo info,
                       std::vector<std::shared_ptr<AttackNode>> children)
    : kind_(kind), info_(std::move(info)), children_(std::move(children)) {
  if (kind_ != AttackNodeKind::kLeaf && children_.empty()) {
    throw std::invalid_argument("AttackNode: gate without children");
  }
  for (const auto& c : children_) {
    if (!c) throw std::invalid_argument("AttackNode: null child");
  }
}

std::shared_ptr<AttackNode> AttackNode::leaf(AttackStepInfo info) {
  if (info.title.empty()) {
    throw std::invalid_argument("AttackNode::leaf: empty title");
  }
  return std::shared_ptr<AttackNode>(
      new AttackNode(AttackNodeKind::kLeaf, std::move(info), {}));
}

std::shared_ptr<AttackNode> AttackNode::and_node(
    std::string title, std::vector<std::shared_ptr<AttackNode>> children) {
  AttackStepInfo info;
  info.title = std::move(title);
  return std::shared_ptr<AttackNode>(
      new AttackNode(AttackNodeKind::kAnd, std::move(info), std::move(children)));
}

std::shared_ptr<AttackNode> AttackNode::or_node(
    std::string title, std::vector<std::shared_ptr<AttackNode>> children) {
  AttackStepInfo info;
  info.title = std::move(title);
  return std::shared_ptr<AttackNode>(
      new AttackNode(AttackNodeKind::kOr, std::move(info), std::move(children)));
}

void AttackNode::set_triggered(bool t) {
  if (kind_ != AttackNodeKind::kLeaf) {
    throw std::logic_error("AttackNode::set_triggered: not a leaf");
  }
  triggered_ = t;
}

bool AttackNode::achieved() const {
  switch (kind_) {
    case AttackNodeKind::kLeaf:
      return triggered_;
    case AttackNodeKind::kAnd:
      return std::all_of(children_.begin(), children_.end(),
                         [](const auto& c) { return c->achieved(); });
    case AttackNodeKind::kOr:
      return std::any_of(children_.begin(), children_.end(),
                         [](const auto& c) { return c->achieved(); });
  }
  return false;
}

void AttackNode::collect_active_path(std::vector<std::string>& out) const {
  if (!achieved()) return;
  out.push_back(info_.title);
  for (const auto& c : children_) {
    if (c->achieved()) c->collect_active_path(out);
  }
}

AttackTree::AttackTree(std::string name, std::shared_ptr<AttackNode> root)
    : name_(std::move(name)), root_(std::move(root)) {
  if (!root_) throw std::invalid_argument("AttackTree: null root");
}

template <typename Fn>
void AttackTree::for_each_leaf(const std::shared_ptr<AttackNode>& node,
                               Fn&& fn) const {
  if (node->kind() == AttackNodeKind::kLeaf) {
    fn(node);
    return;
  }
  for (const auto& c : node->children()) for_each_leaf(c, fn);
}

std::shared_ptr<AttackNode> AttackTree::find_leaf(
    const std::string& capec_id) const {
  std::shared_ptr<AttackNode> found;
  for_each_leaf(root_, [&](const std::shared_ptr<AttackNode>& leaf) {
    if (!found && leaf->info().capec_id == capec_id) found = leaf;
  });
  return found;
}

bool AttackTree::trigger(const std::string& capec_id) {
  const auto leaf = find_leaf(capec_id);
  if (!leaf) return false;
  leaf->set_triggered(true);
  return true;
}

std::vector<std::string> AttackTree::active_path() const {
  std::vector<std::string> out;
  root_->collect_active_path(out);
  return out;
}

std::optional<Severity> AttackTree::max_triggered_severity() const {
  std::optional<Severity> best;
  for_each_leaf(root_, [&](const std::shared_ptr<AttackNode>& leaf) {
    if (!leaf->triggered()) return;
    if (!best || static_cast<int>(leaf->info().severity) >
                     static_cast<int>(*best)) {
      best = leaf->info().severity;
    }
  });
  return best;
}

std::vector<std::string> AttackTree::mitigations() const {
  std::vector<std::string> out;
  for_each_leaf(root_, [&](const std::shared_ptr<AttackNode>& leaf) {
    if (leaf->triggered() && !leaf->info().mitigation.empty()) {
      out.push_back(leaf->info().mitigation);
    }
  });
  return out;
}

void AttackTree::reset() {
  for_each_leaf(root_, [](const std::shared_ptr<AttackNode>& leaf) {
    leaf->set_triggered(false);
  });
}

AttackTree make_spoofing_attack_tree() {
  AttackStepInfo access;
  access.capec_id = "CAPEC-151";
  access.title = "Gain publish access to the robot message bus";
  access.description =
      "The ROS-style bus accepts publications from any reachable node; an "
      "attacker joins the network and assumes a publisher identity.";
  access.severity = Severity::kMedium;
  access.likelihood = 0.6;
  access.mitigation = "Authenticate publishers (e.g. SROS2 / TLS identities).";

  AttackStepInfo inject;
  inject.capec_id = "CAPEC-594";
  inject.title = "Inject falsified traffic on trusted topics";
  inject.description =
      "Falsified position-fix/waypoint messages are published on topics the "
      "navigation stack trusts, steering the area-mapping trajectory.";
  inject.severity = Severity::kHigh;
  inject.likelihood = 0.5;
  inject.mitigation =
      "Cross-validate navigation inputs; trigger Collaborative Localization.";

  AttackStepInfo gps;
  gps.capec_id = "CAPEC-627";
  gps.title = "Counterfeit GPS signals walk the position estimate";
  gps.description =
      "The receiver tracks counterfeit signals whose solution drifts from "
      "the true position at the attacker's chosen rate.";
  gps.severity = Severity::kCritical;
  gps.likelihood = 0.3;
  gps.mitigation =
      "Disable GPS input, switch to collaborative localization, safe-land.";

  AttackStepInfo flood;
  flood.capec_id = "CAPEC-125";
  flood.title = "Flood the command channel";
  flood.description =
      "High-rate bogus publications starve legitimate command traffic.";
  flood.severity = Severity::kMedium;
  flood.likelihood = 0.4;
  flood.mitigation = "Rate-limit per-source publications.";

  AttackStepInfo wire;
  wire.capec_id = "CAPEC-94";
  wire.title = "Tamper with the framed companion-computer link";
  wire.description =
      "An adversary in the middle of the serial/socket link mangles or "
      "replays authenticated frames; the framing layer rejects them (CRC, "
      "auth, replay counters) and the wire monitor raises the evidence.";
  wire.severity = Severity::kHigh;
  wire.likelihood = 0.3;
  wire.mitigation =
      "Authenticated framing with replay windows; re-key and fail over to "
      "a redundant link.";

  auto root = AttackNode::or_node(
      "Manipulate UAV area-mapping mission",
      {AttackNode::and_node("Spoof ROS messages",
                            {AttackNode::leaf(access), AttackNode::leaf(inject)}),
       AttackNode::leaf(gps), AttackNode::leaf(flood),
       AttackNode::leaf(wire)});
  return AttackTree("ros_message_spoofing", std::move(root));
}

AttackTree make_jamming_attack_tree() {
  AttackStepInfo jam;
  jam.capec_id = "CAPEC-601";
  jam.title = "Jam GNSS reception";
  jam.description =
      "Broadband RF noise denies satellite lock; receivers report loss of "
      "fix while airborne (physical-layer sensor alert).";
  jam.severity = Severity::kHigh;
  jam.likelihood = 0.25;
  jam.mitigation =
      "Switch to collaborative/vision localization; hold or return.";

  AttackStepInfo flood;
  flood.capec_id = "CAPEC-125";
  flood.title = "Flood the command-and-control channel";
  flood.description =
      "High-rate bogus publications starve the C2 link, delaying operator "
      "commands and telemetry.";
  flood.severity = Severity::kMedium;
  flood.likelihood = 0.4;
  flood.mitigation = "Rate-limit per-source publications; isolate the source.";

  auto root = AttackNode::or_node(
      "Deny fleet navigation or command capability",
      {AttackNode::leaf(jam), AttackNode::leaf(flood)});
  return AttackTree("denial_of_navigation", std::move(root));
}

}  // namespace sesame::security
