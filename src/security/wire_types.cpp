#include "sesame/security/wire_types.hpp"

#include <string>
#include <vector>

#include "sesame/security/attack_tree.hpp"
#include "sesame/security/ids.hpp"
#include "sesame/security/security_eddi.hpp"

namespace sesame::security {

namespace {

/// String lists travel as u16 count + str16 entries (bounded fan-out:
/// attack paths and mitigation lists are short by construction).
void encode_strings(mw::WireWriter& w, const std::vector<std::string>& v) {
  if (v.size() > 0xFFFF) throw std::length_error("wire string list > 65535");
  w.u16(static_cast<std::uint16_t>(v.size()));
  for (const std::string& s : v) w.str16(s);
}

std::vector<std::string> decode_strings(mw::WireReader& r) {
  const std::uint16_t n = r.u16();
  std::vector<std::string> v;
  // Each entry consumes ≥ 2 bytes, so a count the buffer cannot hold is
  // rejected before any allocation is sized from attacker input.
  if (static_cast<std::size_t>(n) * 2 > r.remaining()) {
    r.fail();
    return v;
  }
  v.reserve(n);
  for (std::uint16_t i = 0; i < n && r.ok(); ++i)
    v.emplace_back(r.str16());
  return v;
}

}  // namespace

void register_wire_types(mw::Codec& codec) {
  codec.register_type<IdsAlert>(
      kIdsAlertTag, "security.IdsAlert",
      [](mw::WireWriter& w, const IdsAlert& a) {
        w.str16(a.rule);
        w.str16(a.capec_id);
        w.str16(a.topic);
        w.str16(a.source);
        w.f64(a.time_s);
        w.str16(a.detail);
      },
      [](mw::WireReader& r) {
        IdsAlert a;
        a.rule = std::string(r.str16());
        a.capec_id = std::string(r.str16());
        a.topic = std::string(r.str16());
        a.source = std::string(r.str16());
        a.time_s = r.f64();
        a.detail = std::string(r.str16());
        return a;
      });
  codec.register_type<SecurityEvent>(
      kSecurityEventTag, "security.SecurityEvent",
      [](mw::WireWriter& w, const SecurityEvent& e) {
        w.str16(e.tree);
        w.f64(e.time_s);
        w.u8(static_cast<std::uint8_t>(e.severity));
        encode_strings(w, e.attack_path);
        encode_strings(w, e.mitigations);
        encode_strings(w, e.suspicious_sources);
      },
      [](mw::WireReader& r) {
        SecurityEvent e;
        e.tree = std::string(r.str16());
        e.time_s = r.f64();
        const std::uint8_t sev = r.u8();
        if (sev > static_cast<std::uint8_t>(Severity::kCritical)) r.fail();
        e.severity = static_cast<Severity>(sev);
        e.attack_path = decode_strings(r);
        e.mitigations = decode_strings(r);
        e.suspicious_sources = decode_strings(r);
        return e;
      });
}

}  // namespace sesame::security
