#include "sesame/security/security_eddi.hpp"

#include <algorithm>

namespace sesame::security {

SecurityEddi::SecurityEddi(mw::Bus& bus, AttackTree tree)
    : bus_(&bus), tree_(std::move(tree)) {
  alert_subscription_ = bus_->subscribe<IdsAlert>(
      ids_alert_topic(),
      [this](const mw::MessageHeader&, const IdsAlert& alert) {
        handle_alert(alert);
      });
}

void SecurityEddi::on_event(std::function<void(const SecurityEvent&)> callback) {
  callback_ = std::move(callback);
}

void SecurityEddi::reset() {
  tree_.reset();
  suspicious_sources_.clear();
  goal_reported_ = false;
}

void SecurityEddi::handle_alert(const IdsAlert& alert) {
  ++alerts_consumed_;
  if (!tree_.trigger(alert.capec_id)) return;  // alert not in this tree

  // CAPEC-594 injection implies the attacker already has bus access; fire
  // the access leaf too so the AND branch reflects the full path.
  if (alert.capec_id == "CAPEC-594") tree_.trigger("CAPEC-151");

  if (std::find(suspicious_sources_.begin(), suspicious_sources_.end(),
                alert.source) == suspicious_sources_.end()) {
    suspicious_sources_.push_back(alert.source);
  }

  if (tree_.goal_achieved() && !goal_reported_) {
    goal_reported_ = true;
    ++events_raised_;
    SecurityEvent ev;
    ev.tree = tree_.name();
    ev.time_s = alert.time_s;
    ev.severity = tree_.max_triggered_severity().value_or(Severity::kHigh);
    ev.attack_path = tree_.active_path();
    ev.mitigations = tree_.mitigations();
    ev.suspicious_sources = suspicious_sources_;
    bus_->publish(security_event_topic(), ev, "security_eddi", alert.time_s);
    if (callback_) callback_(ev);
  }
}

}  // namespace sesame::security
