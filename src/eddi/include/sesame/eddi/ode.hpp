// Minimal Open Dependability Exchange (ODE)-style model export.
//
// The paper's EDDIs are generated from design-time DDI models exchanged in
// the ODE metamodel (Zeller et al., RAMS 2023). This module provides the
// interchange substrate: a small JSON document model with a serializer,
// used to export each EDDI's model inventory (fault trees, Markov models,
// attack trees, monitors) in a machine-readable form.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace sesame::eddi::ode {

/// A JSON-like value: null, bool, number, string, array, object.
class Value {
 public:
  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value>;

  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<double>(i)) {}
  Value(std::size_t u) : data_(static_cast<double>(u)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_number() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<Array>(data_); }
  bool is_object() const { return std::holds_alternative<Object>(data_); }

  bool as_bool() const { return std::get<bool>(data_); }
  double as_number() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  const Array& as_array() const { return std::get<Array>(data_); }
  const Object& as_object() const { return std::get<Object>(data_); }

  /// Object field access; inserts when mutable.
  Value& operator[](const std::string& key);
  const Value& at(const std::string& key) const;

  void push_back(Value v);

  /// Serializes to compact JSON (stable key order via std::map).
  std::string to_json() const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parses JSON produced by Value::to_json (round-trip support). Throws
/// std::runtime_error on malformed input. Supports the full JSON grammar
/// except unicode escapes beyond \uXXXX for the BMP.
Value parse_json(const std::string& text);

}  // namespace sesame::eddi::ode
