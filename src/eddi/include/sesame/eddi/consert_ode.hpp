// ODE export of ConSert networks.
//
// ConSerts are design-time artefacts exchanged along the supply chain (the
// DDI/ODE workflow the paper builds on); this serializes a network's
// structure — every ConSert, its guarantees with ranks, and each
// guarantee's referenced runtime evidence and demands — into the same JSON
// document model the EDDI export uses, so a complete system's assurance
// models ship in one interchange format.
#pragma once

#include "sesame/conserts/assurance_trace.hpp"
#include "sesame/conserts/consert.hpp"
#include "sesame/eddi/ode.hpp"

namespace sesame::eddi {

/// Serializes the network structure. Conditions are exported as their
/// flattened evidence/demand reference sets (sufficient to re-derive the
/// dependency graph; the boolean structure itself is execution logic).
ode::Value consert_network_to_ode(const conserts::ConSertNetwork& network);

/// Serializes a runtime assurance trace (the best-guarantee transition
/// timeline) — the runtime-evidence artefact filed with the mission record.
ode::Value assurance_trace_to_ode(
    const std::vector<conserts::GuaranteeTransition>& transitions);

}  // namespace sesame::eddi
