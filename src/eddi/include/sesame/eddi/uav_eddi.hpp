// The per-UAV Executable Digital Dependability Identity.
//
// Composes the runtime technologies — SafeDrones (reliability), SafeML
// (perception distribution shift), DeepKnowledge (neuron coverage),
// SINADRA (situation risk), Security EDDI (attack trees) — into one
// executable artefact per UAV. Each tick it ingests telemetry and
// perception features, refreshes every model, derives the combined SAR
// uncertainty of Section V-B, and produces the evidence flags the ConSert
// network (Fig. 1) consumes.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sesame/conserts/uav_network.hpp"
#include "sesame/deepknowledge/analysis.hpp"
#include "sesame/eddi/ode.hpp"
#include "sesame/safedrones/uav_reliability.hpp"
#include "sesame/safeml/monitor.hpp"
#include "sesame/security/security_eddi.hpp"
#include "sesame/sinadra/risk.hpp"

namespace sesame::eddi {

struct UavEddiConfig {
  safedrones::ReliabilityConfig reliability;
  safeml::MonitorConfig safeml;
  sinadra::RiskConfig sinadra;
  /// Horizon over which SafeDrones projects the failure probability.
  double reliability_horizon_s = 600.0;
  /// SAR uncertainty calibration (paper Section V-B): even nominal
  /// conditions carry a high residual uncertainty on the reported scale —
  /// ~75% after descending, > 90% at high altitude. The reported value is
  /// floor + span * raw, raw in [0, 1].
  double uncertainty_floor = 0.70;
  double uncertainty_span = 0.30;
  /// Threshold on the reported scale above which perception cannot be
  /// trusted (paper: 90%).
  double uncertainty_threshold = 0.90;
  /// Design-time baseline of the DeepKnowledge uncertainty on in-domain
  /// windows. Runtime windows always sample a slice of the validated
  /// domain, so coverage-based uncertainty has a nonzero floor; the
  /// combination uses (u - baseline) / (1 - baseline), clamped at 0.
  double dk_uncertainty_baseline = 0.0;
};

/// Telemetry + situation inputs for one tick.
struct EddiInputs {
  /// Wall time since the previous tick (drives the cumulative battery
  /// tracker).
  double dt_s = 1.0;
  safedrones::TelemetrySnapshot telemetry;
  /// Per-frame perception features (SafeML channel); empty when the camera
  /// produced no frame this tick.
  std::vector<double> frame_features;
  /// DeepKnowledge per-detection feature vectors of this tick.
  std::vector<std::vector<double>> detection_features;
  sinadra::AltitudeBand altitude_band = sinadra::AltitudeBand::kUnknown;
  sinadra::Visibility visibility = sinadra::Visibility::kUnknown;
  sinadra::PersonDensity density = sinadra::PersonDensity::kUnknown;
  bool gps_fix_available = true;
  bool vision_sensor_healthy = true;
  bool comm_link_good = true;
  bool nearby_uav_available = false;
};

/// Snapshot of every monitor's verdict after a tick.
struct EddiAssessment {
  safedrones::ReliabilityEstimate reliability;
  std::optional<safeml::Assessment> safeml;
  std::optional<deepknowledge::CoverageReport> deepknowledge;
  sinadra::RiskAssessment risk;
  /// Combined SAR uncertainty on the paper's reported scale.
  double sar_uncertainty = 1.0;
  bool uncertainty_exceeded = true;  ///< sar_uncertainty > threshold
};

class UavEddi {
 public:
  /// `safeml_reference` is the training-time reference sample per feature.
  /// DeepKnowledge assets (model + analyzer) are optional; when absent the
  /// combined uncertainty uses SafeML + SINADRA only.
  UavEddi(std::string uav_name, UavEddiConfig config,
          std::vector<std::vector<double>> safeml_reference);

  /// Attaches DeepKnowledge design-time assets. The analyzer must have
  /// been built against `model`. Window: detection features accumulate
  /// until `window` vectors are present, then a report is computed.
  void attach_deepknowledge(std::shared_ptr<const deepknowledge::Mlp> model,
                            std::shared_ptr<const deepknowledge::Analyzer> analyzer,
                            std::size_t window = 32);

  /// Attaches a Security EDDI; its attack_detected() feeds the evidence.
  void attach_security(std::shared_ptr<security::SecurityEddi> security);

  const std::string& uav_name() const noexcept { return name_; }
  const UavEddiConfig& config() const noexcept { return config_; }

  /// Ingests one tick of inputs and refreshes all models.
  const EddiAssessment& tick(const EddiInputs& inputs);

  /// Last assessment (valid after the first tick).
  const EddiAssessment& assessment() const noexcept { return assessment_; }

  /// Whether the attached Security EDDI has detected an attack.
  bool attack_detected() const;

  /// Evidence flags for the ConSert network, derived from the last tick.
  conserts::UavEvidence consert_evidence() const;

  /// ODE-style export of this EDDI's model inventory.
  ode::Value to_ode() const;

 private:
  std::string name_;
  UavEddiConfig config_;
  safedrones::ReliabilityMonitor reliability_;
  /// Cumulative battery-failure tracker (the Fig. 5 P(fail) curve).
  safedrones::BatteryRuntimeTracker battery_tracker_;
  safeml::Monitor safeml_;
  sinadra::SarRiskModel risk_;
  std::shared_ptr<const deepknowledge::Mlp> dk_model_;
  std::shared_ptr<const deepknowledge::Analyzer> dk_analyzer_;
  std::shared_ptr<security::SecurityEddi> security_;
  std::vector<std::vector<double>> dk_window_;
  std::size_t dk_window_size_ = 32;
  EddiAssessment assessment_;
  EddiInputs last_inputs_;
  bool ticked_ = false;

  sinadra::PerceptionConfidence safeml_confidence_band() const;
  sinadra::PerceptionConfidence dk_confidence_band() const;
};

}  // namespace sesame::eddi
